package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	repro "repro"
)

// serveMutateReport is the JSON record `-serve-mutate-out` writes: the
// workload shape, the read/write outcome accounting, the four invariant
// counters (all must be zero), the compaction evidence, and the final
// bit-identity verdict against a from-scratch rebuild over the survivors.
type serveMutateReport struct {
	Dataset       string  `json:"dataset"`
	N             int     `json:"n"`
	Dims          int     `json:"dims"`
	K             int     `json:"k"`
	Mode          string  `json:"mode"`
	Shards        int     `json:"shards"`
	Ops           int     `json:"ops"`
	Concurrency   int     `json:"concurrency"`
	WriteFraction float64 `json:"write_fraction"`
	CompactAt     int     `json:"compact_at"`

	Reads            int `json:"reads"`
	Inserts          int `json:"inserts"`
	Deletes          int `json:"deletes"`
	Overloaded       int `json:"overloaded"`
	DeadlineExceeded int `json:"deadline_exceeded"`
	UnknownID        int `json:"unknown_id"`
	OtherErrors      int `json:"other_errors"`

	Lost          int `json:"lost"`
	Duplicated    int `json:"duplicated"`
	DeletedIDHits int `json:"deleted_id_hits"`
	StaleAcks     int `json:"stale_acks"`

	Compactions uint64 `json:"compactions"`
	Epoch       uint64 `json:"epoch"`
	FinalRows   int    `json:"final_rows"`

	ElapsedMS    float64 `json:"elapsed_ms"`
	Throughput   float64 `json:"throughput_ops"`
	LatencyP50US float64 `json:"latency_p50_us"`
	LatencyP99US float64 `json:"latency_p99_us"`

	VerifiedQueries int  `json:"verified_queries"`
	BitIdentical    bool `json:"bit_identical"`
}

// runServeMutate is the `drtool -serve-mutate` entry point: build the
// engine over the workload, drive it with the mixed read/write load
// generator (background compactions enabled), require the mutation
// invariants and at least one mid-run compaction, then quiesce and verify
// the survivors bit-identical to a from-scratch rebuild.
func runServeMutate(ctx context.Context, w io.Writer, o options) error {
	data, queries, name, err := serveBenchData(o)
	if err != nil {
		return err
	}

	mode := repro.ModeAuto
	switch o.serveMode {
	case "", "auto":
	case "exact":
		mode = repro.ModeExact
	case "approx":
		mode = repro.ModeApprox
	default:
		return fmt.Errorf("unknown -serve-mode %q (auto, exact or approx)", o.serveMode)
	}
	if o.neighbors < 1 {
		return fmt.Errorf("-neighbors %d must be positive", o.neighbors)
	}
	if o.serveMutateWrite < 0 || o.serveMutateWrite > 1 {
		return fmt.Errorf("-serve-mutate-write %v must be in [0,1]", o.serveMutateWrite)
	}

	cfg := repro.ServeConfig{
		Shards:     o.serveShards,
		Workers:    o.serveWorkers,
		QueueDepth: o.serveQueue,
		Probes:     o.probes,
		CompactAt:  o.serveMutateCompactAt,
		LSH:        repro.LSHConfig{Tables: o.tables, Seed: o.serveSeed},
	}
	e, err := repro.NewEngine(data, cfg)
	if err != nil {
		return err
	}
	defer e.Close()

	fmt.Fprintf(w, "serve-mutate: %s n=%d d=%d, %d shards, compact-at %d\n",
		name, data.Rows(), data.Cols(), e.Shards(), o.serveMutateCompactAt)

	mcfg := repro.MutateConfig{
		Ops:           o.serveMutateOps,
		Concurrency:   o.serveConcurrency,
		WriteFraction: o.serveMutateWrite,
		K:             o.neighbors,
		Deadline:      time.Duration(o.serveDeadlineMS * float64(time.Millisecond)),
		Mode:          mode,
		Seed:          o.serveSeed,
	}
	rep, live, err := repro.RunMutateLoad(ctx, e, data, queries, mcfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "load: %d ops, concurrency %d, write fraction %.2f, mode %s\n",
		rep.Ops, rep.Concurrency, rep.WriteFraction, rep.Mode)
	fmt.Fprintf(w, "  reads %d, inserts %d, deletes %d\n", rep.Reads, rep.Inserts, rep.Deletes)
	fmt.Fprintf(w, "  rejected: overloaded %d, deadline %d, unknown-id %d, other %d\n",
		rep.Overloaded, rep.DeadlineExceeded, rep.UnknownID, rep.OtherErrors)
	fmt.Fprintf(w, "  invariants: lost %d, duplicated %d, deleted-id hits %d, stale acks %d\n",
		rep.Lost, rep.Duplicated, rep.DeletedIDHits, rep.StaleAcks)
	fmt.Fprintf(w, "  compactions %d (epoch %d), %d rows surviving\n", rep.Compactions, rep.Epoch, rep.FinalRows)
	fmt.Fprintf(w, "  elapsed %v, %.0f ops/s\n", rep.Elapsed.Round(time.Millisecond), rep.Throughput)

	if rep.Lost != 0 || rep.Duplicated != 0 {
		return fmt.Errorf("serve-mutate: %d lost and %d duplicated operations", rep.Lost, rep.Duplicated)
	}
	if rep.DeletedIDHits != 0 {
		return fmt.Errorf("serve-mutate: deleted IDs returned to readers %d times", rep.DeletedIDHits)
	}
	if rep.StaleAcks != 0 {
		return fmt.Errorf("serve-mutate: %d acknowledged inserts invisible to later reads", rep.StaleAcks)
	}
	if rep.UnknownID != 0 || rep.OtherErrors != 0 {
		return fmt.Errorf("serve-mutate: %d unknown-id and %d untyped errors", rep.UnknownID, rep.OtherErrors)
	}
	st := e.Stats()
	if st.Compactions == 0 && o.serveMutateCompactAt >= 0 {
		// The watermark trigger is asynchronous: on a short run the load can
		// finish while the triggered background compactor is still building.
		// Its install is part of the run's work, so join it (bounded) before
		// judging whether the mid-run compaction requirement held.
		deadline := time.Now().Add(10 * time.Second)
		for st.Compactions == 0 && st.DeltaRows+st.Tombstones >= o.serveMutateCompactAt && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			st = e.Stats()
		}
	}
	if st.Compactions == 0 {
		return fmt.Errorf("serve-mutate: no compaction ran mid-load (lower -serve-mutate-compact-at or raise the write fraction)")
	}

	// Quiesce: fold every pending mutation, then hold the engine to
	// bit-identity against a from-scratch rebuild over the survivors.
	if _, err := e.Compact(ctx); err != nil {
		return fmt.Errorf("serve-mutate: final compaction: %w", err)
	}
	nVerify := o.serveVerify
	if nVerify > queries.Rows() {
		nVerify = queries.Rows()
	}
	identical := true
	if nVerify > 0 {
		if err := repro.VerifyMutated(ctx, e, live, queries, o.neighbors, nVerify); err != nil {
			identical = false
			fmt.Fprintf(w, "verification FAILED: %v\n", err)
		} else {
			fmt.Fprintf(w, "verified %d queries bit-identical to a rebuild over %d survivors\n",
				nVerify, len(live.IDs))
		}
	}

	st = e.Stats()
	fmt.Fprintf(w, "  latency p50 %v, p99 %v\n", st.LatencyP50, st.LatencyP99)

	if o.serveMutateOut != "" {
		js := serveMutateReport{
			Dataset:          name,
			N:                data.Rows(),
			Dims:             data.Cols(),
			K:                o.neighbors,
			Mode:             rep.Mode,
			Shards:           e.Shards(),
			Ops:              rep.Ops,
			Concurrency:      rep.Concurrency,
			WriteFraction:    rep.WriteFraction,
			CompactAt:        o.serveMutateCompactAt,
			Reads:            rep.Reads,
			Inserts:          rep.Inserts,
			Deletes:          rep.Deletes,
			Overloaded:       rep.Overloaded,
			DeadlineExceeded: rep.DeadlineExceeded,
			UnknownID:        rep.UnknownID,
			OtherErrors:      rep.OtherErrors,
			Lost:             rep.Lost,
			Duplicated:       rep.Duplicated,
			DeletedIDHits:    rep.DeletedIDHits,
			StaleAcks:        rep.StaleAcks,
			Compactions:      st.Compactions,
			Epoch:            st.Epoch,
			FinalRows:        rep.FinalRows,
			ElapsedMS:        float64(rep.Elapsed) / float64(time.Millisecond),
			Throughput:       rep.Throughput,
			LatencyP50US:     float64(st.LatencyP50) / float64(time.Microsecond),
			LatencyP99US:     float64(st.LatencyP99) / float64(time.Microsecond),
			VerifiedQueries:  nVerify,
			BitIdentical:     identical,
		}
		f, err := os.Create(o.serveMutateOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(js); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", o.serveMutateOut)
	}
	if !identical {
		return fmt.Errorf("serve-mutate: engine diverged from the from-scratch rebuild")
	}
	return nil
}
