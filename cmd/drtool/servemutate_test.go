package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// serveMutateOptions is a CI-sized mutation workload: enough writes over a
// low compaction watermark that several compactions install mid-run.
func serveMutateOptions() options {
	return options{
		labelCol:             -1,
		neighbors:            5,
		probes:               16,
		serveMutate:          true,
		serveMutateOps:       1200,
		serveMutateWrite:     0.30,
		serveMutateCompactAt: 64,
		serveConcurrency:     8,
		serveVerify:          8,
		serveMode:            "auto",
		serveSeed:            1,
	}
}

func TestServeMutateSynthetic(t *testing.T) {
	out := filepath.Join(t.TempDir(), "mutate.json")
	o := serveMutateOptions()
	o.serveMutateOut = out
	var buf bytes.Buffer
	if err := runServeMutate(context.Background(), &buf, o); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "bit-identical to a rebuild") {
		t.Fatalf("missing verification verdict in output:\n%s", buf.String())
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep serveMutateReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.N != 6598 || rep.Dims != 166 {
		t.Fatalf("workload %dx%d, want 6598x166", rep.N, rep.Dims)
	}
	if !rep.BitIdentical || rep.VerifiedQueries != 8 {
		t.Fatalf("verification: identical=%v over %d queries", rep.BitIdentical, rep.VerifiedQueries)
	}
	if rep.Lost != 0 || rep.Duplicated != 0 || rep.DeletedIDHits != 0 || rep.StaleAcks != 0 {
		t.Fatalf("invariant violations: lost=%d dup=%d hits=%d stale=%d",
			rep.Lost, rep.Duplicated, rep.DeletedIDHits, rep.StaleAcks)
	}
	if rep.Compactions == 0 {
		t.Fatal("no compaction recorded")
	}
	if rep.Inserts == 0 || rep.Deletes == 0 || rep.Reads == 0 {
		t.Fatalf("degenerate mix: reads=%d inserts=%d deletes=%d", rep.Reads, rep.Inserts, rep.Deletes)
	}
	total := rep.Reads + rep.Inserts + rep.Deletes + rep.Overloaded + rep.DeadlineExceeded + rep.UnknownID + rep.OtherErrors
	if total != rep.Ops {
		t.Fatalf("accounting hole: %d outcomes for %d ops", total, rep.Ops)
	}
}

func TestServeMutateCSVInput(t *testing.T) {
	o := serveMutateOptions()
	o.in = writeTestCSV(t)
	o.serveMutateOps = 400
	o.serveMutateCompactAt = 24
	o.serveMode = "exact"
	o.serveVerify = 4
	var buf bytes.Buffer
	if err := runServeMutate(context.Background(), &buf, o); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "compactions") {
		t.Fatalf("no compaction summary in output:\n%s", buf.String())
	}
}

func TestServeMutateErrors(t *testing.T) {
	o := serveMutateOptions()
	o.serveMode = "bogus"
	if err := runServeMutate(context.Background(), new(bytes.Buffer), o); err == nil {
		t.Fatal("bogus mode accepted")
	}
	o = serveMutateOptions()
	o.neighbors = 0
	if err := runServeMutate(context.Background(), new(bytes.Buffer), o); err == nil {
		t.Fatal("zero neighbors accepted")
	}
	o = serveMutateOptions()
	o.serveMutateWrite = 1.5
	if err := runServeMutate(context.Background(), new(bytes.Buffer), o); err == nil {
		t.Fatal("write fraction above 1 accepted")
	}
	o = serveMutateOptions()
	o.serveMutateCompactAt = -1 // auto-compaction disabled: the >=1 compaction gate must fail
	o.serveMutateOps = 200
	if err := runServeMutate(context.Background(), new(bytes.Buffer), o); err == nil {
		t.Fatal("run without any compaction accepted")
	}
	o = serveMutateOptions()
	o.serveMutateOut = filepath.Join(t.TempDir(), "no", "such", "dir.json")
	o.serveMutateOps = 300
	o.serveMutateCompactAt = 16
	o.serveVerify = 1
	if err := runServeMutate(context.Background(), new(bytes.Buffer), o); err == nil {
		t.Fatal("unwritable report path accepted")
	}
}
