package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// storeBenchOptions is a CLI configuration small enough for CI.
func storeBenchOptions() options {
	return options{
		neighbors:     10,
		storeBench:    true,
		storeN:        4000,
		storeD:        48,
		storePrec:     "int8",
		storeQueries:  12,
		storeRescore:  400,
		storeVerify:   3,
		storeRequests: 30,
		storeSeed:     1,
	}
}

func TestStoreBenchSynthetic(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "store.json")
	o := storeBenchOptions()
	o.storePath = filepath.Join(dir, "bench.qvs")
	o.storeOut = out
	var buf bytes.Buffer
	if err := runStoreBench(context.Background(), &buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bit-identical to SearchSetBatch") {
		t.Fatalf("missing verification verdict in output:\n%s", buf.String())
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep storeBenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.N != o.storeN || rep.Dims != o.storeD {
		t.Fatalf("workload %dx%d, want %dx%d", rep.N, rep.Dims, o.storeN, o.storeD)
	}
	if !rep.BitIdentical || rep.VerifiedQueries != 3 {
		t.Fatalf("verification: identical=%v over %d queries", rep.BitIdentical, rep.VerifiedQueries)
	}
	if rep.Recall < 0.99 {
		t.Fatalf("recall %.4f < 0.99 at rescore %d", rep.Recall, rep.Rescore)
	}
	if rep.MemoryCut < 3 {
		t.Fatalf("memory cut %.2fx < 3x (scan %d B/vec vs %d float64)",
			rep.MemoryCut, rep.BytesPerVectorScan, rep.BytesPerVectorF64)
	}
	if rep.BenchRequests != 30 || rep.QPS <= 0 {
		t.Fatalf("throughput run: %d requests at %.1f qps", rep.BenchRequests, rep.QPS)
	}

	// A second run against the same path must reuse the file (no rebuild).
	buf.Reset()
	if err := runStoreBench(context.Background(), &buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "reusing") {
		t.Fatalf("second run rebuilt the store:\n%s", buf.String())
	}
}

func TestStoreBenchInt16FullDims(t *testing.T) {
	o := storeBenchOptions()
	o.storePrec = "int16"
	o.storeFull = 8
	var buf bytes.Buffer
	if err := runStoreBench(context.Background(), &buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "int16 full=8") {
		t.Fatalf("store layout not reported:\n%s", buf.String())
	}
}

func TestStoreBenchErrors(t *testing.T) {
	o := storeBenchOptions()
	o.storePrec = "float8"
	if err := runStoreBench(context.Background(), new(bytes.Buffer), o); err == nil {
		t.Fatal("bogus precision accepted")
	}
	o = storeBenchOptions()
	o.neighbors = 0
	if err := runStoreBench(context.Background(), new(bytes.Buffer), o); err == nil {
		t.Fatal("zero neighbors accepted")
	}
	o = storeBenchOptions()
	o.storeN = 1
	if err := runStoreBench(context.Background(), new(bytes.Buffer), o); err == nil {
		t.Fatal("n=1 accepted")
	}

	// A store whose shape disagrees with the flags must be rejected, not
	// silently benchmarked against the wrong ground truth.
	dir := t.TempDir()
	o = storeBenchOptions()
	o.storePath = filepath.Join(dir, "shape.qvs")
	if err := runStoreBench(context.Background(), new(bytes.Buffer), o); err != nil {
		t.Fatal(err)
	}
	o.storeN += 100
	if err := runStoreBench(context.Background(), new(bytes.Buffer), o); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
