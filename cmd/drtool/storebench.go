package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	repro "repro"
)

// storeBenchReport is the JSON record `-store-out` writes; scripts/bench.sh
// splices it into BENCH_knn.json under the "store" key, so the recall/RSS/
// qps table travels with the kernel numbers.
type storeBenchReport struct {
	Dataset   string `json:"dataset"`
	N         int    `json:"n"`
	Dims      int    `json:"dims"`
	K         int    `json:"k"`
	Precision   string `json:"precision"`
	FullDims    int    `json:"full_dims"`
	PrefixDims  int    `json:"prefix_dims"`
	Shards      int    `json:"shards"`
	Rescore     int    `json:"rescore"`
	ScanWorkers int    `json:"scan_workers"`

	FileBytes          int64   `json:"file_bytes"`
	BytesPerVectorScan int     `json:"bytes_per_vector_scan"`
	BytesPerVectorF64  int     `json:"bytes_per_vector_float64"`
	MemoryCut          float64 `json:"memory_cut"`

	BuildMS       float64 `json:"build_ms,omitempty"`
	GroundTruthMS float64 `json:"ground_truth_ms"`

	Queries         int     `json:"queries"`
	Recall          float64 `json:"recall"`
	VerifiedQueries int     `json:"verified_queries"`
	BitIdentical    bool    `json:"bit_identical"`

	BenchRequests int     `json:"bench_requests"`
	QPS           float64 `json:"qps"`
	ScanGBps      float64 `json:"scan_gbps"`
	LatencyP50US  float64 `json:"latency_p50_us"`
	LatencyP99US  float64 `json:"latency_p99_us"`

	RSSServeMB float64 `json:"rss_serve_mb,omitempty"`
	PeakRSSMB  float64 `json:"peak_rss_mb,omitempty"`
}

// runStoreBench is the `drtool -store-bench` entry point: stream-build a
// quantized store over the scaled musk-like distribution (unless the file
// already exists), serve it through the store-backed engine, and measure
// recall@k against exact ground truth, throughput, and the resident set
// after the full-precision region is dropped from memory.
func runStoreBench(ctx context.Context, w io.Writer, o options) error {
	var prec repro.StorePrecision
	switch o.storePrec {
	case "", "int8":
		prec = repro.StoreInt8
	case "int16":
		prec = repro.StoreInt16
	default:
		return fmt.Errorf("unknown -store-prec %q (want int8 or int16)", o.storePrec)
	}
	if o.storeN < 2 || o.storeD < 1 {
		return fmt.Errorf("-store-n %d / -store-d %d out of range", o.storeN, o.storeD)
	}
	if o.storeQueries < 1 {
		return fmt.Errorf("-store-queries %d must be positive", o.storeQueries)
	}
	k := o.neighbors
	if k < 1 {
		return fmt.Errorf("-neighbors %d must be positive", k)
	}

	path := o.storePath
	if path == "" {
		dir, err := os.MkdirTemp("", "drtool-store")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		path = filepath.Join(dir, "store.qvs")
	}

	// The workload streams n data rows plus the held-out query rows from one
	// musk-like generator, so data and queries share a distribution and no
	// float64 matrix of the data ever materializes.
	gen := repro.MuskLikeConfig(o.storeSeed)
	gen.Name = fmt.Sprintf("musk-like-%dx%d", o.storeN, o.storeD)
	gen.N = o.storeN + o.storeQueries
	gen.Dims = o.storeD
	if len(gen.ConceptStrengths) > o.storeD {
		gen.ConceptStrengths = gen.ConceptStrengths[:o.storeD]
	}
	rs, err := repro.NewRowStream(gen)
	if err != nil {
		return err
	}

	_, statErr := os.Stat(path)
	build := statErr != nil

	// Pass 1: quantization scales (only when building) and the query rows.
	var acc *repro.StoreScales
	if build {
		acc = repro.NewStoreScales(o.storeD)
	}
	queries := repro.NewMatrix(o.storeQueries, o.storeD)
	for i := 0; i < o.storeN; i++ {
		row, _ := rs.Next()
		if acc != nil {
			acc.Add(row)
		}
	}
	for i := 0; i < o.storeQueries; i++ {
		row, _ := rs.Next()
		copy(queries.RawRow(i), row)
	}

	var buildMS float64
	if build {
		start := time.Now()
		cfg := repro.StoreConfig{Precision: prec, FullDims: o.storeFull}
		cfg.Mins, cfg.Steps = acc.Scales(prec)
		// Store dimensions in descending-variance order so the scan's
		// partial-distance prefix captures most of the distance mass and
		// its admissible lower bound rejects points early. Results are
		// unaffected — a permutation only reorders storage.
		cfg.Perm = acc.VarianceOrder()
		if err := rs.Reset(); err != nil {
			return err
		}
		sw, err := repro.CreateStore(path, o.storeN, o.storeD, cfg)
		if err != nil {
			return err
		}
		for i := 0; i < o.storeN; i++ {
			row, _ := rs.Next()
			if err := sw.Append(row); err != nil {
				sw.Close()
				return err
			}
		}
		if err := sw.Close(); err != nil {
			return err
		}
		buildMS = float64(time.Since(start)) / float64(time.Millisecond)
		fmt.Fprintf(w, "built %s in %.0f ms\n", path, buildMS)
	} else {
		fmt.Fprintf(w, "reusing %s\n", path)
	}

	st, err := repro.OpenStore(path)
	if err != nil {
		return err
	}
	defer st.Close()
	if st.Len() != o.storeN || st.Dims() != o.storeD {
		return fmt.Errorf("store %s is %dx%d, flags say %dx%d (delete it or fix -store-n/-store-d)",
			path, st.Len(), st.Dims(), o.storeN, o.storeD)
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	bytesScan := st.BytesPerVectorScan()
	bytesF64 := 8 * st.Dims()
	fmt.Fprintf(w, "store: %s n=%d d=%d %v full=%d, %d bytes (%d B/vector scan vs %d float64, %.1fx cut)\n",
		gen.Name, st.Len(), st.Dims(), st.Precision(), st.FullDims(),
		fi.Size(), bytesScan, bytesF64, float64(bytesF64)/float64(bytesScan))

	// Exact ground truth over the store's own full-precision region (the
	// mmap view — no second copy of the data).
	gtStart := time.Now()
	want := repro.SearchSetBatch(st.ExactMatrix(), queries, k, repro.Euclidean{}, false)
	gtMS := float64(time.Since(gtStart)) / float64(time.Millisecond)
	fmt.Fprintf(w, "ground truth: %d queries x k=%d in %.0f ms\n", o.storeQueries, k, gtMS)

	e, err := repro.NewEngineFromStore(st, repro.ServeConfig{
		Shards:      o.serveShards,
		Rescore:     o.storeRescore,
		ScanWorkers: o.storeWorkers,
	})
	if err != nil {
		return err
	}
	defer e.Close()

	// Bit-identity gate on a query sample: the store-backed exact path must
	// reproduce SearchSetBatch answer for answer.
	nVerify := o.storeVerify
	if nVerify > o.storeQueries {
		nVerify = o.storeQueries
	}
	identical := true
	for i := 0; i < nVerify && identical; i++ {
		res, err := e.SearchMode(ctx, queries.RawRow(i), k, repro.ModeExact)
		if err != nil {
			return fmt.Errorf("verify query %d: %w", i, err)
		}
		if len(res.Neighbors) != len(want[i]) {
			identical = false
			break
		}
		for j := range want[i] {
			if res.Neighbors[j] != want[i][j] {
				identical = false
			}
		}
	}
	if nVerify > 0 {
		status := "bit-identical to SearchSetBatch"
		if !identical {
			status = "MISMATCH against SearchSetBatch"
		}
		fmt.Fprintf(w, "verified %d exact queries: %s\n", nVerify, status)
	}

	// Recall of the budgeted approximate path over every query.
	got := make([][]repro.Neighbor, o.storeQueries)
	for i := range got {
		res, err := e.SearchMode(ctx, queries.RawRow(i), k, repro.ModeApprox)
		if err != nil {
			return fmt.Errorf("approx query %d: %w", i, err)
		}
		got[i] = res.Neighbors
	}
	recall := repro.MeanRecall(got, want)
	fmt.Fprintf(w, "recall@%d = %.4f (rescore budget %d per shard)\n", k, recall, o.storeRescore)
	if o.storeMinRecall > 0 && recall < o.storeMinRecall {
		return fmt.Errorf("store-bench: recall@%d %.4f below required %.4f", k, recall, o.storeMinRecall)
	}

	// Drop the full-precision pages the ground-truth pass faulted in and
	// return freed heap to the OS, so the serving RSS below reflects the
	// quantized working set plus only what phase 2 re-touches.
	st.DropExactPages()
	debug.FreeOSMemory()
	if kb, _ := readRSS(); kb > 0 {
		fmt.Fprintf(w, "rss: %.0f MB after dropping full-precision pages\n", float64(kb)/1024)
	}

	// Throughput: a closed-loop timed run on the approximate path. The
	// store's scan counter across the run converts into effective phase-1
	// bandwidth — points scanned × scan bytes per vector over wall time —
	// the number the memory-bandwidth optimization is accountable to.
	reqs := o.storeRequests
	if reqs < 1 {
		reqs = 100
	}
	scannedBefore := st.Stats().Scanned
	rep, err := repro.RunLoad(ctx, e, queries, repro.LoadConfig{
		Queries:     reqs,
		Concurrency: o.serveConcurrency,
		K:           k,
		Mode:        repro.ModeApprox,
	})
	if err != nil {
		return err
	}
	scanGBps := 0.0
	if sec := rep.Elapsed.Seconds(); sec > 0 {
		scannedRun := st.Stats().Scanned - scannedBefore
		scanGBps = float64(scannedRun) * float64(bytesScan) / sec / 1e9
	}
	est := e.Stats()
	rssKB, hwmKB := readRSS()
	fmt.Fprintf(w, "load: %d requests, %.1f qps, %.2f GB/s scanned, p50 %v, p99 %v\n",
		rep.Served, rep.Throughput, scanGBps, est.LatencyP50, est.LatencyP99)
	if rssKB > 0 {
		fmt.Fprintf(w, "rss: %.0f MB serving (peak %.0f MB)\n", float64(rssKB)/1024, float64(hwmKB)/1024)
	}
	if rep.Lost != 0 || rep.Duplicated != 0 {
		return fmt.Errorf("store-bench: %d lost and %d duplicated responses", rep.Lost, rep.Duplicated)
	}
	if !identical {
		return fmt.Errorf("store-bench: store-backed exact results diverged from SearchSetBatch")
	}

	if o.storeOut != "" {
		js := storeBenchReport{
			Dataset:            gen.Name,
			N:                  st.Len(),
			Dims:               st.Dims(),
			K:                  k,
			Precision:          st.Precision().String(),
			FullDims:           st.FullDims(),
			PrefixDims:         st.PrefixDims(),
			Shards:             e.Shards(),
			Rescore:            o.storeRescore,
			ScanWorkers:        o.storeWorkers,
			FileBytes:          fi.Size(),
			BytesPerVectorScan: bytesScan,
			BytesPerVectorF64:  bytesF64,
			MemoryCut:          float64(bytesF64) / float64(bytesScan),
			BuildMS:            buildMS,
			GroundTruthMS:      gtMS,
			Queries:            o.storeQueries,
			Recall:             recall,
			VerifiedQueries:    nVerify,
			BitIdentical:       identical,
			BenchRequests:      rep.Served,
			QPS:                rep.Throughput,
			ScanGBps:           scanGBps,
			LatencyP50US:       float64(est.LatencyP50) / float64(time.Microsecond),
			LatencyP99US:       float64(est.LatencyP99) / float64(time.Microsecond),
			RSSServeMB:         float64(rssKB) / 1024,
			PeakRSSMB:          float64(hwmKB) / 1024,
		}
		f, err := os.Create(o.storeOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(js); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", o.storeOut)
	}
	return nil
}

// readRSS returns the process's current and peak resident set in kB from
// /proc/self/status, or zeros where that interface does not exist.
func readRSS() (rssKB, hwmKB int64) {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		var dst *int64
		switch {
		case strings.HasPrefix(line, "VmRSS:"):
			dst = &rssKB
		case strings.HasPrefix(line, "VmHWM:"):
			dst = &hwmKB
		default:
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			if v, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
				*dst = v
			}
		}
	}
	return rssKB, hwmKB
}
