// Command drtool analyzes a labelled CSV data set with the coherence model,
// (optionally) writes a reduced representation, and (optionally) benchmarks
// a similarity index — exact or approximate — on the reduced data.
//
// Usage:
//
//	drtool -in data.csv [-header] [-label N] [-scale] [-order eigenvalue|coherence]
//	       [-k N | -threshold F | -energy F | -floor F] [-out reduced.csv] [-report]
//	       [-index kdtree|vafile|rtree|idistance|lsh] [-neighbors K]
//	       [-queries N] [-tables L] [-probes T]
//	drtool -serve-bench [-in data.csv] [-serve-queries N] [-serve-concurrency C]
//	       [-serve-shards P] [-serve-workers W] [-serve-queue Q] [-serve-qps R]
//	       [-serve-deadline MS] [-serve-mode auto|exact|approx] [-serve-verify N]
//	       [-serve-seed S] [-serve-out report.json]
//	drtool -serve-mutate [-in data.csv] [-serve-mutate-ops N] [-serve-mutate-write F]
//	       [-serve-mutate-compact-at W] [-serve-concurrency C] [-neighbors K]
//	       [-serve-shards P] [-serve-mode auto|exact|approx] [-serve-deadline MS]
//	       [-serve-seed S] [-serve-mutate-out report.json]
//	drtool -store-bench [-store path.qvs] [-store-n N] [-store-d D]
//	       [-store-prec int8|int16] [-store-full F] [-store-queries Q]
//	       [-store-rescore R] [-store-verify N] [-store-requests N]
//	       [-store-seed S] [-store-out report.json]
//
// -serve-mutate drives the sharded engine with a mixed read/write workload:
// closed-loop clients interleave k-NN reads with inserts and deletes while
// background compactions fold the accumulated deltas and tombstones into
// fresh snapshot generations. The run fails unless every op completes
// exactly once, every acknowledged insert is visible to later reads, no
// deleted ID is ever returned, at least one compaction installed mid-run,
// and the quiesced engine's exact results are bit-identical to a
// from-scratch rebuild over the surviving rows.
//
// -store-bench stream-builds a quantized vector store over the musk-like
// distribution at the requested scale (reusing the file if it exists),
// verifies the store-backed engine's exact path bit-identical to
// SearchSetBatch, measures recall@k of the budgeted approximate path
// against exact ground truth, then reports serving throughput and resident
// memory after the full-precision region is dropped from the page cache.
//
// The input's label column (default: last) is the semantic class used by the
// feature-stripped quality measurement; it is never part of the features.
// With -index, the chosen structure is built over both the full and the
// reduced representation and a query workload reports the scanned fraction;
// the approximate lsh index additionally reports recall@K against the exact
// neighbors, with -tables hash tables and -probes buckets probed per table.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	repro "repro"
)

// options carries every flag of the CLI.
type options struct {
	in        string
	header    bool
	labelCol  int
	scale     bool
	order     string
	k         int
	threshold float64
	energy    float64
	floor     float64
	out       string
	report    bool

	index     string
	neighbors int
	queries   int
	tables    int
	probes    int

	serveBench       bool
	serveQueries     int
	serveConcurrency int
	serveShards      int
	serveWorkers     int
	serveQueue       int
	serveQPS         float64
	serveDeadlineMS  float64
	serveMode        string
	serveVerify      int
	serveSeed        int64
	serveOut         string

	serveMutate          bool
	serveMutateOps       int
	serveMutateWrite     float64
	serveMutateCompactAt int
	serveMutateOut       string

	storeBench     bool
	storePath      string
	storeN         int
	storeD         int
	storePrec      string
	storeFull      int
	storeQueries   int
	storeRescore   int
	storeWorkers   int
	storeVerify    int
	storeRequests  int
	storeSeed      int64
	storeOut       string
	storeMinRecall float64
}

func main() {
	var o options
	flag.StringVar(&o.in, "in", "", "input CSV path (required)")
	flag.BoolVar(&o.header, "header", false, "input has a header row")
	flag.IntVar(&o.labelCol, "label", -1, "label column index (-1 = last)")
	flag.BoolVar(&o.scale, "scale", true, "studentize dimensions (correlation PCA)")
	flag.StringVar(&o.order, "order", "coherence", "component ordering: eigenvalue or coherence")
	flag.IntVar(&o.k, "k", 0, "retain exactly k components (0 = use -threshold/-energy/-floor)")
	flag.Float64Var(&o.threshold, "threshold", 0, "retain eigenvalues >= F * largest (0 = off)")
	flag.Float64Var(&o.energy, "energy", 0, "retain smallest prefix with >= F of variance (0 = off)")
	flag.Float64Var(&o.floor, "floor", 0, "retain components with coherence >= F (0 = off)")
	flag.StringVar(&o.out, "out", "", "write reduced CSV here")
	flag.BoolVar(&o.report, "report", true, "print the per-component analysis")
	flag.StringVar(&o.index, "index", "", "benchmark an index on the reduced data: kdtree, vafile, rtree, idistance or lsh")
	flag.IntVar(&o.neighbors, "neighbors", 10, "k-NN neighbor count for the index benchmark")
	flag.IntVar(&o.queries, "queries", 25, "query count for the index benchmark")
	flag.IntVar(&o.tables, "tables", 0, "lsh: hash tables (0 = default)")
	flag.IntVar(&o.probes, "probes", 16, "lsh: buckets probed per table")
	flag.BoolVar(&o.serveBench, "serve-bench", false, "benchmark the sharded query engine (without -in, generates the musk-like n=6598 d=166 workload)")
	flag.IntVar(&o.serveQueries, "serve-queries", 10000, "serve-bench: total requests")
	flag.IntVar(&o.serveConcurrency, "serve-concurrency", 32, "serve-bench: closed-loop clients")
	flag.IntVar(&o.serveShards, "serve-shards", 0, "serve-bench: engine shards (0 = GOMAXPROCS)")
	flag.IntVar(&o.serveWorkers, "serve-workers", 0, "serve-bench: request workers (0 = 2*GOMAXPROCS)")
	flag.IntVar(&o.serveQueue, "serve-queue", 0, "serve-bench: admission queue depth (0 = default)")
	flag.Float64Var(&o.serveQPS, "serve-qps", 0, "serve-bench: aggregate request rate (0 = unthrottled)")
	flag.Float64Var(&o.serveDeadlineMS, "serve-deadline", 0, "serve-bench: per-request deadline in ms (0 = none)")
	flag.StringVar(&o.serveMode, "serve-mode", "auto", "serve-bench: search path — auto, exact or approx")
	flag.IntVar(&o.serveVerify, "serve-verify", 64, "serve-bench: queries checked bit-identical to SearchSetBatch")
	flag.Int64Var(&o.serveSeed, "serve-seed", 1, "serve-bench: workload and LSH seed")
	flag.StringVar(&o.serveOut, "serve-out", "", "serve-bench: write a JSON report here (e.g. BENCH_serve.json)")
	flag.BoolVar(&o.serveMutate, "serve-mutate", false, "drive the engine with a mixed read/write workload (inserts, deletes, compactions) and verify the survivors bit-identical to a rebuild")
	flag.IntVar(&o.serveMutateOps, "serve-mutate-ops", 10000, "serve-mutate: total operations (reads + writes)")
	flag.Float64Var(&o.serveMutateWrite, "serve-mutate-write", 0.10, "serve-mutate: write fraction in [0,1] (split between inserts and deletes)")
	flag.IntVar(&o.serveMutateCompactAt, "serve-mutate-compact-at", 256, "serve-mutate: pending-mutation watermark that triggers background compaction")
	flag.StringVar(&o.serveMutateOut, "serve-mutate-out", "", "serve-mutate: write a JSON report here (e.g. BENCH_serve.json)")
	flag.BoolVar(&o.storeBench, "store-bench", false, "build, serve and bench a quantized vector store on the musk-like workload")
	flag.StringVar(&o.storePath, "store", "", "store-bench: store file path (reused if it exists; empty = temp file)")
	flag.IntVar(&o.storeN, "store-n", 1_000_000, "store-bench: data points")
	flag.IntVar(&o.storeD, "store-d", 166, "store-bench: dimensions")
	flag.StringVar(&o.storePrec, "store-prec", "int8", "store-bench: code precision, int8 or int16")
	flag.IntVar(&o.storeFull, "store-full", 0, "store-bench: leading storage dims kept at float32")
	flag.IntVar(&o.storeQueries, "store-queries", 32, "store-bench: held-out query rows (recall probe set)")
	flag.IntVar(&o.storeRescore, "store-rescore", 2000, "store-bench: per-shard exact-rescore budget of the approximate path")
	flag.IntVar(&o.storeWorkers, "store-workers", 0, "store-bench: intra-query scan workers per shard (0 = 1)")
	flag.IntVar(&o.storeVerify, "store-verify", 4, "store-bench: queries checked bit-identical to SearchSetBatch via the exact path")
	flag.IntVar(&o.storeRequests, "store-requests", 100, "store-bench: timed throughput requests")
	flag.Int64Var(&o.storeSeed, "store-seed", 1, "store-bench: generator seed")
	flag.StringVar(&o.storeOut, "store-out", "", "store-bench: write a JSON report here (e.g. BENCH_store.json)")
	flag.Float64Var(&o.storeMinRecall, "store-min-recall", 0, "store-bench: fail unless recall@k reaches this (0 = report only)")
	flag.Parse()

	if o.storeBench {
		if err := runStoreBench(context.Background(), os.Stdout, o); err != nil {
			fmt.Fprintf(os.Stderr, "drtool: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if o.serveBench {
		if err := runServeBench(context.Background(), os.Stdout, o); err != nil {
			fmt.Fprintf(os.Stderr, "drtool: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if o.serveMutate {
		if err := runServeMutate(context.Background(), os.Stdout, o); err != nil {
			fmt.Fprintf(os.Stderr, "drtool: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if o.in == "" {
		fmt.Fprintln(os.Stderr, "drtool: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "drtool: %v\n", err)
		os.Exit(1)
	}
}

func run(o options) error {
	f, err := os.Open(o.in)
	if err != nil {
		return err
	}
	defer f.Close()
	ds, err := repro.ReadCSV(f, o.in, repro.CSVOptions{HasHeader: o.header, LabelColumn: o.labelCol})
	if err != nil {
		return err
	}
	ds, _ = ds.DropConstantColumns(1e-12)
	fmt.Printf("loaded %s\n", ds)

	opts := repro.Options{ComputeCoherence: true}
	if o.scale {
		opts.Scaling = repro.ScalingStudentize
	}
	p, err := repro.FitDataset(ds, opts)
	if err != nil {
		return err
	}

	ordering := repro.ByCoherence
	switch o.order {
	case "coherence":
	case "eigenvalue":
		ordering = repro.ByEigenvalue
	default:
		return fmt.Errorf("unknown -order %q", o.order)
	}

	var components []int
	switch {
	case o.k > 0:
		components = p.TopK(ordering, o.k)
	case o.threshold > 0:
		components = p.ThresholdEigenvalue(o.threshold)
	case o.energy > 0:
		components = p.EnergyTarget(o.energy)
	case o.floor > 0:
		components = p.CoherenceFloor(o.floor)
	default:
		// The paper's scatter-gap heuristic on the chosen ordering.
		vals := make([]float64, ds.Dims())
		for i, idx := range p.Order(ordering) {
			if ordering == repro.ByCoherence {
				vals[i] = p.Coherence[idx]
			} else {
				vals[i] = p.Eigenvalues[idx]
			}
		}
		cut := repro.GapCutoff(vals, 2, ds.Dims())
		components = p.Order(ordering)[:cut]
	}

	if o.report {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "component\teigenvalue\tcoherence\tselected")
		selected := map[int]bool{}
		for _, c := range components {
			selected[c] = true
		}
		for i := range p.Eigenvalues {
			mark := ""
			if selected[i] {
				mark = "*"
			}
			fmt.Fprintf(tw, "%d\t%.4g\t%.4f\t%s\n", i+1, p.Eigenvalues[i], p.Coherence[i], mark)
		}
		tw.Flush()
	}

	fullAcc := repro.DatasetAccuracy(ds)
	reduced := p.ReduceDataset(ds, components, ds.Name+" (reduced)")
	redAcc := repro.DatasetAccuracy(reduced)
	fmt.Printf("retained %d of %d components (%.1f%% of variance)\n",
		len(components), ds.Dims(), 100*p.EnergyFraction(components))
	fmt.Printf("feature-stripped 3-NN accuracy: full %.1f%% -> reduced %.1f%%\n", 100*fullAcc, 100*redAcc)

	if o.index != "" {
		if err := benchIndex(os.Stdout, o, ds, reduced); err != nil {
			return err
		}
	}

	if o.out != "" {
		of, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer of.Close()
		if err := repro.WriteCSV(of, reduced); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.out)
	}
	return nil
}

// benchIndex builds the chosen structure over the full and reduced feature
// matrices and reports per-query work (and recall, for the approximate
// index) on a workload of the first -queries points.
func benchIndex(w *os.File, o options, full, reduced *repro.Dataset) error {
	switch o.index {
	case "kdtree", "vafile", "rtree", "idistance", "lsh":
	default:
		return fmt.Errorf("unknown -index %q (kdtree, vafile, rtree, idistance or lsh)", o.index)
	}
	if o.neighbors < 1 {
		return fmt.Errorf("-neighbors %d must be positive", o.neighbors)
	}
	nq := o.queries
	if nq < 1 {
		return fmt.Errorf("-queries %d must be positive", nq)
	}
	if nq > full.N() {
		nq = full.N()
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "index benchmark: %s, %d-NN, %d queries\n", o.index, o.neighbors, nq)
	fmt.Fprintln(tw, "representation\tdims\tscanned\trecall\tbuckets/query")
	for _, rep := range []*repro.Dataset{full, reduced} {
		if err := benchOneRep(tw, o, rep, nq); err != nil {
			return err
		}
	}
	tw.Flush()
	return nil
}

func benchOneRep(tw *tabwriter.Writer, o options, ds *repro.Dataset, nq int) error {
	queryRows := make([]int, nq)
	for i := range queryRows {
		queryRows[i] = i
	}
	queries := ds.X.SliceRows(queryRows)

	var stats repro.IndexStats
	recall := 1.0
	switch o.index {
	case "lsh":
		ix := repro.BuildLSH(ds.X, repro.LSHConfig{Tables: o.tables, Seed: 1})
		approx, s := ix.KNNApproxSet(queries, o.neighbors, o.probes)
		stats = s
		exact := repro.SearchSetBatch(ds.X, queries, o.neighbors, repro.Euclidean{}, false)
		recall = repro.MeanRecall(approx, exact)
	case "kdtree", "vafile", "rtree", "idistance":
		var ix repro.Index
		switch o.index {
		case "kdtree":
			ix = repro.BuildKDTree(ds.X, 0)
		case "vafile":
			ix = repro.BuildVAFile(ds.X, 6)
		case "rtree":
			ix = repro.BuildRTree(ds.X, 0)
		case "idistance":
			ix = repro.BuildIDistance(ds.X, 16, 1)
		}
		for i := 0; i < nq; i++ {
			_, s := ix.KNN(queries.RawRow(i), o.neighbors)
			stats.Add(s)
		}
	}
	frac := repro.ScanFraction(stats, nq*ds.N())
	buckets := float64(stats.BucketsProbed) / float64(nq)
	fmt.Fprintf(tw, "%s\t%d\t%.1f%%\t%.3f\t%.0f\n", ds.Name, ds.Dims(), 100*frac, recall, buckets)
	return nil
}
