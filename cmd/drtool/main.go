// Command drtool analyzes a labelled CSV data set with the coherence model
// and (optionally) writes a reduced representation.
//
// Usage:
//
//	drtool -in data.csv [-header] [-label N] [-scale] [-order eigenvalue|coherence]
//	       [-k N | -threshold F | -energy F | -floor F] [-out reduced.csv] [-report]
//
// The input's label column (default: last) is the semantic class used by the
// feature-stripped quality measurement; it is never part of the features.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	repro "repro"
)

func main() {
	in := flag.String("in", "", "input CSV path (required)")
	header := flag.Bool("header", false, "input has a header row")
	labelCol := flag.Int("label", -1, "label column index (-1 = last)")
	scale := flag.Bool("scale", true, "studentize dimensions (correlation PCA)")
	order := flag.String("order", "coherence", "component ordering: eigenvalue or coherence")
	k := flag.Int("k", 0, "retain exactly k components (0 = use -threshold/-energy/-floor)")
	threshold := flag.Float64("threshold", 0, "retain eigenvalues >= F * largest (0 = off)")
	energy := flag.Float64("energy", 0, "retain smallest prefix with >= F of variance (0 = off)")
	floor := flag.Float64("floor", 0, "retain components with coherence >= F (0 = off)")
	out := flag.String("out", "", "write reduced CSV here")
	report := flag.Bool("report", true, "print the per-component analysis")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "drtool: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *header, *labelCol, *scale, *order, *k, *threshold, *energy, *floor, *out, *report); err != nil {
		fmt.Fprintf(os.Stderr, "drtool: %v\n", err)
		os.Exit(1)
	}
}

func run(in string, header bool, labelCol int, scale bool, order string, k int, threshold, energy, floor float64, out string, report bool) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	ds, err := repro.ReadCSV(f, in, repro.CSVOptions{HasHeader: header, LabelColumn: labelCol})
	if err != nil {
		return err
	}
	ds, _ = ds.DropConstantColumns(1e-12)
	fmt.Printf("loaded %s\n", ds)

	opts := repro.Options{ComputeCoherence: true}
	if scale {
		opts.Scaling = repro.ScalingStudentize
	}
	p, err := repro.FitDataset(ds, opts)
	if err != nil {
		return err
	}

	ordering := repro.ByCoherence
	switch order {
	case "coherence":
	case "eigenvalue":
		ordering = repro.ByEigenvalue
	default:
		return fmt.Errorf("unknown -order %q", order)
	}

	var components []int
	switch {
	case k > 0:
		components = p.TopK(ordering, k)
	case threshold > 0:
		components = p.ThresholdEigenvalue(threshold)
	case energy > 0:
		components = p.EnergyTarget(energy)
	case floor > 0:
		components = p.CoherenceFloor(floor)
	default:
		// The paper's scatter-gap heuristic on the chosen ordering.
		vals := make([]float64, ds.Dims())
		for i, idx := range p.Order(ordering) {
			if ordering == repro.ByCoherence {
				vals[i] = p.Coherence[idx]
			} else {
				vals[i] = p.Eigenvalues[idx]
			}
		}
		cut := repro.GapCutoff(vals, 2, ds.Dims())
		components = p.Order(ordering)[:cut]
	}

	if report {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "component\teigenvalue\tcoherence\tselected")
		selected := map[int]bool{}
		for _, c := range components {
			selected[c] = true
		}
		for i := range p.Eigenvalues {
			mark := ""
			if selected[i] {
				mark = "*"
			}
			fmt.Fprintf(tw, "%d\t%.4g\t%.4f\t%s\n", i+1, p.Eigenvalues[i], p.Coherence[i], mark)
		}
		tw.Flush()
	}

	fullAcc := repro.DatasetAccuracy(ds)
	reduced := p.ReduceDataset(ds, components, ds.Name+" (reduced)")
	redAcc := repro.DatasetAccuracy(reduced)
	fmt.Printf("retained %d of %d components (%.1f%% of variance)\n",
		len(components), ds.Dims(), 100*p.EnergyFraction(components))
	fmt.Printf("feature-stripped 3-NN accuracy: full %.1f%% -> reduced %.1f%%\n", 100*fullAcc, 100*redAcc)

	if out != "" {
		of, err := os.Create(out)
		if err != nil {
			return err
		}
		defer of.Close()
		if err := repro.WriteCSV(of, reduced); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}
