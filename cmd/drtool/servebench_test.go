package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// serveBenchOptions is a CLI configuration small enough for CI: the
// synthetic musk-like workload with a modest request count.
func serveBenchOptions() options {
	return options{
		labelCol:         -1,
		neighbors:        5,
		probes:           16,
		serveBench:       true,
		serveQueries:     300,
		serveConcurrency: 8,
		serveVerify:      8,
		serveMode:        "auto",
		serveSeed:        1,
	}
}

func TestServeBenchSynthetic(t *testing.T) {
	out := filepath.Join(t.TempDir(), "serve.json")
	o := serveBenchOptions()
	o.serveOut = out
	var buf bytes.Buffer
	if err := runServeBench(context.Background(), &buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bit-identical to SearchSetBatch") {
		t.Fatalf("missing verification verdict in output:\n%s", buf.String())
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep serveBenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.N != 6598 || rep.Dims != 166 {
		t.Fatalf("workload %dx%d, want 6598x166", rep.N, rep.Dims)
	}
	if !rep.BitIdentical || rep.VerifiedQueries != 8 {
		t.Fatalf("verification: identical=%v over %d queries", rep.BitIdentical, rep.VerifiedQueries)
	}
	if rep.Lost != 0 || rep.Duplicated != 0 {
		t.Fatalf("%d lost, %d duplicated", rep.Lost, rep.Duplicated)
	}
	total := rep.Served + rep.Overloaded + rep.DeadlineExceeded + rep.OtherErrors
	if total != rep.Queries {
		t.Fatalf("accounting hole: %d outcomes for %d requests", total, rep.Queries)
	}
}

func TestServeBenchCSVInput(t *testing.T) {
	o := serveBenchOptions()
	o.in = writeTestCSV(t)
	o.serveQueries = 100
	o.serveMode = "exact"
	o.serveVerify = 4
	var buf bytes.Buffer
	if err := runServeBench(context.Background(), &buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "served") {
		t.Fatalf("no load summary in output:\n%s", buf.String())
	}
}

func TestServeBenchModes(t *testing.T) {
	for _, mode := range []string{"exact", "approx"} {
		t.Run(mode, func(t *testing.T) {
			o := serveBenchOptions()
			o.in = writeTestCSV(t)
			o.serveQueries = 60
			o.serveMode = mode
			o.serveVerify = 2
			if err := runServeBench(context.Background(), new(bytes.Buffer), o); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestServeBenchErrors(t *testing.T) {
	o := serveBenchOptions()
	o.serveMode = "bogus"
	if err := runServeBench(context.Background(), new(bytes.Buffer), o); err == nil {
		t.Fatalf("bogus mode accepted")
	}
	o = serveBenchOptions()
	o.neighbors = 0
	if err := runServeBench(context.Background(), new(bytes.Buffer), o); err == nil {
		t.Fatalf("zero neighbors accepted")
	}
	o = serveBenchOptions()
	o.in = filepath.Join(t.TempDir(), "missing.csv")
	if err := runServeBench(context.Background(), new(bytes.Buffer), o); err == nil {
		t.Fatalf("missing input accepted")
	}
	o = serveBenchOptions()
	o.serveOut = filepath.Join(t.TempDir(), "no", "such", "dir.json")
	o.serveQueries = 40
	o.serveVerify = 1
	if err := runServeBench(context.Background(), new(bytes.Buffer), o); err == nil {
		t.Fatalf("unwritable report path accepted")
	}
}
