package main

import (
	"os"
	"path/filepath"
	"testing"

	repro "repro"
)

// writeTestCSV generates a labelled data set and writes it to a temp file.
func writeTestCSV(t *testing.T) string {
	t.Helper()
	ds := repro.IonosphereLike(1)
	path := filepath.Join(t.TempDir(), "data.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := repro.WriteCSV(f, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

// baseOptions is the default CLI configuration the tests mutate.
func baseOptions(in string) options {
	return options{
		in: in, labelCol: -1, scale: true, order: "coherence",
		neighbors: 10, queries: 25, probes: 16,
	}
}

func TestRunEndToEnd(t *testing.T) {
	in := writeTestCSV(t)
	out := filepath.Join(t.TempDir(), "reduced.csv")
	o := baseOptions(in)
	o.k = 8
	o.out = out
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reduced, err := repro.ReadCSV(f, "reduced", repro.CSVOptions{LabelColumn: -1})
	if err != nil {
		t.Fatal(err)
	}
	if reduced.Dims() != 8 || reduced.N() != 351 {
		t.Fatalf("reduced shape %dx%d", reduced.N(), reduced.Dims())
	}
}

func TestRunSelectionModes(t *testing.T) {
	in := writeTestCSV(t)
	cases := []struct {
		name                     string
		k                        int
		threshold, energy, floor float64
	}{
		{"fixed k", 5, 0, 0, 0},
		{"threshold", 0, 0.10, 0, 0},
		{"energy", 0, 0, 0.90, 0},
		{"coherence floor", 0, 0, 0, 0.5},
		{"gap heuristic", 0, 0, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := baseOptions(in)
			o.k, o.threshold, o.energy, o.floor = tc.k, tc.threshold, tc.energy, tc.floor
			if err := run(o); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunEigenvalueOrderAndReport(t *testing.T) {
	in := writeTestCSV(t)
	o := baseOptions(in)
	o.scale = false
	o.order = "eigenvalue"
	o.k = 3
	o.report = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunIndexBenchmarks(t *testing.T) {
	in := writeTestCSV(t)
	for _, ix := range []string{"kdtree", "vafile", "rtree", "idistance", "lsh"} {
		t.Run(ix, func(t *testing.T) {
			o := baseOptions(in)
			o.k = 6
			o.index = ix
			o.queries = 10
			o.neighbors = 5
			if err := run(o); err != nil {
				t.Fatal(err)
			}
		})
	}
	// Query count beyond n is clamped, not an error.
	o := baseOptions(in)
	o.k = 6
	o.index = "lsh"
	o.queries = 100000
	o.tables = 4
	o.probes = 4
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	o := baseOptions(filepath.Join(t.TempDir(), "missing.csv"))
	if err := run(o); err == nil {
		t.Fatalf("missing file accepted")
	}
	in := writeTestCSV(t)
	o = baseOptions(in)
	o.order = "bogus-order"
	if err := run(o); err == nil {
		t.Fatalf("bogus order accepted")
	}
	// Unwritable output path.
	o = baseOptions(in)
	o.k = 3
	o.out = filepath.Join(t.TempDir(), "no", "such", "dir.csv")
	if err := run(o); err == nil {
		t.Fatalf("unwritable output accepted")
	}
	// Bad index configurations.
	o = baseOptions(in)
	o.k = 3
	o.index = "btree"
	if err := run(o); err == nil {
		t.Fatalf("unknown index accepted")
	}
	o = baseOptions(in)
	o.k = 3
	o.index = "lsh"
	o.neighbors = 0
	if err := run(o); err == nil {
		t.Fatalf("zero neighbors accepted")
	}
	o = baseOptions(in)
	o.k = 3
	o.index = "kdtree"
	o.queries = 0
	if err := run(o); err == nil {
		t.Fatalf("zero queries accepted")
	}
}
