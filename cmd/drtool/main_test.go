package main

import (
	"os"
	"path/filepath"
	"testing"

	repro "repro"
)

// writeTestCSV generates a labelled data set and writes it to a temp file.
func writeTestCSV(t *testing.T) string {
	t.Helper()
	ds := repro.IonosphereLike(1)
	path := filepath.Join(t.TempDir(), "data.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := repro.WriteCSV(f, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	in := writeTestCSV(t)
	out := filepath.Join(t.TempDir(), "reduced.csv")
	if err := run(in, false, -1, true, "coherence", 8, 0, 0, 0, out, false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reduced, err := repro.ReadCSV(f, "reduced", repro.CSVOptions{LabelColumn: -1})
	if err != nil {
		t.Fatal(err)
	}
	if reduced.Dims() != 8 || reduced.N() != 351 {
		t.Fatalf("reduced shape %dx%d", reduced.N(), reduced.Dims())
	}
}

func TestRunSelectionModes(t *testing.T) {
	in := writeTestCSV(t)
	cases := []struct {
		name                     string
		k                        int
		threshold, energy, floor float64
	}{
		{"fixed k", 5, 0, 0, 0},
		{"threshold", 0, 0.10, 0, 0},
		{"energy", 0, 0, 0.90, 0},
		{"coherence floor", 0, 0, 0, 0.5},
		{"gap heuristic", 0, 0, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(in, false, -1, true, "coherence", tc.k, tc.threshold, tc.energy, tc.floor, "", false); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunEigenvalueOrderAndReport(t *testing.T) {
	in := writeTestCSV(t)
	if err := run(in, false, -1, false, "eigenvalue", 3, 0, 0, 0, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing.csv"), false, -1, true, "coherence", 0, 0, 0, 0, "", false); err == nil {
		t.Fatalf("missing file accepted")
	}
	in := writeTestCSV(t)
	if err := run(in, false, -1, true, "bogus-order", 0, 0, 0, 0, "", false); err == nil {
		t.Fatalf("bogus order accepted")
	}
	// Unwritable output path.
	if err := run(in, false, -1, true, "coherence", 3, 0, 0, 0, filepath.Join(t.TempDir(), "no", "such", "dir.csv"), false); err == nil {
		t.Fatalf("unwritable output accepted")
	}
}
