package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	repro "repro"
)

// serveBenchData builds the benchmark workload: either the feature matrix
// of -in (queries = a held-out prefix reused as the request stream) or,
// without -in, the database-scale Musk analogue the recall experiments use
// (n = 6598 data rows at d = 166, plus held-out query rows), so the
// acceptance workload needs no external files.
func serveBenchData(o options) (data, queries *repro.Matrix, name string, err error) {
	const nQueries = 128
	if o.in != "" {
		f, err := os.Open(o.in)
		if err != nil {
			return nil, nil, "", err
		}
		defer f.Close()
		ds, err := repro.ReadCSV(f, o.in, repro.CSVOptions{HasHeader: o.header, LabelColumn: o.labelCol})
		if err != nil {
			return nil, nil, "", err
		}
		nq := nQueries
		if nq > ds.N() {
			nq = ds.N()
		}
		rows := make([]int, nq)
		for i := range rows {
			rows[i] = i
		}
		return ds.X, ds.X.SliceRows(rows), ds.Name, nil
	}

	const nData = 6598
	gen := repro.MuskLikeConfig(o.serveSeed)
	gen.N = nData + nQueries
	all, err := repro.Generate(gen)
	if err != nil {
		return nil, nil, "", err
	}
	dataRows := make([]int, nData)
	for i := range dataRows {
		dataRows[i] = i
	}
	queryRows := make([]int, nQueries)
	for i := range queryRows {
		queryRows[i] = nData + i
	}
	return all.X.SliceRows(dataRows), all.X.SliceRows(queryRows), "musk-like", nil
}

// serveBenchReport is the JSON record `-serve-out` writes, designed to sit
// alongside BENCH_knn.json: the workload, the engine layout, the load
// generator's outcome accounting, the engine's own counters, and the
// bit-identity verification verdict.
type serveBenchReport struct {
	Dataset     string  `json:"dataset"`
	N           int     `json:"n"`
	Dims        int     `json:"dims"`
	K           int     `json:"k"`
	Mode        string  `json:"mode"`
	Shards      int     `json:"shards"`
	Workers     int     `json:"workers"`
	QueueCap    int     `json:"queue_cap"`
	Queries     int     `json:"queries"`
	Concurrency int     `json:"concurrency"`
	QPS         float64 `json:"qps,omitempty"`
	DeadlineMS  float64 `json:"deadline_ms,omitempty"`

	Served           int     `json:"served"`
	Exact            int     `json:"exact"`
	Approx           int     `json:"approx"`
	Degraded         int     `json:"degraded"`
	Overloaded       int     `json:"overloaded"`
	DeadlineExceeded int     `json:"deadline_exceeded"`
	OtherErrors      int     `json:"other_errors"`
	Lost             int     `json:"lost"`
	Duplicated       int     `json:"duplicated"`
	ElapsedMS        float64 `json:"elapsed_ms"`
	Throughput       float64 `json:"throughput_qps"`
	MeanWaitUS       float64 `json:"mean_wait_us"`
	LatencyP50US     float64 `json:"latency_p50_us"`
	LatencyP99US     float64 `json:"latency_p99_us"`

	VerifiedQueries int  `json:"verified_queries"`
	BitIdentical    bool `json:"bit_identical"`
}

// runServeBench is the `drtool -serve-bench` entry point: build the sharded
// engine over the workload, verify its exact path bit-identical to the
// single-threaded batch engine on a query sample, drive it with the load
// generator, and report outcome accounting plus latency percentiles. The
// context comes from main (or the test) and flows into every request.
func runServeBench(ctx context.Context, w io.Writer, o options) error {
	data, queries, name, err := serveBenchData(o)
	if err != nil {
		return err
	}

	mode := repro.ModeAuto
	switch o.serveMode {
	case "", "auto":
	case "exact":
		mode = repro.ModeExact
	case "approx":
		mode = repro.ModeApprox
	default:
		return fmt.Errorf("unknown -serve-mode %q (auto, exact or approx)", o.serveMode)
	}
	if o.neighbors < 1 {
		return fmt.Errorf("-neighbors %d must be positive", o.neighbors)
	}

	cfg := repro.ServeConfig{
		Shards:     o.serveShards,
		Workers:    o.serveWorkers,
		QueueDepth: o.serveQueue,
		Probes:     o.probes,
		LSH:        repro.LSHConfig{Tables: o.tables, Seed: o.serveSeed},
	}
	e, err := repro.NewEngine(data, cfg)
	if err != nil {
		return err
	}
	defer e.Close()

	fmt.Fprintf(w, "serve-bench: %s n=%d d=%d, %d shards, queue %d\n",
		name, data.Rows(), data.Cols(), e.Shards(), e.Stats().QueueCap)

	// Bit-identity gate: the sharded exact path must reproduce the
	// single-threaded batch engine answer for answer, bit for bit.
	nVerify := o.serveVerify
	if nVerify > queries.Rows() {
		nVerify = queries.Rows()
	}
	identical := true
	if nVerify > 0 {
		rows := make([]int, nVerify)
		for i := range rows {
			rows[i] = i
		}
		sample := queries.SliceRows(rows)
		want := repro.SearchSetBatch(data, sample, o.neighbors, repro.Euclidean{}, false)
		for i := 0; i < nVerify && identical; i++ {
			res, err := e.SearchMode(ctx, sample.RawRow(i), o.neighbors, repro.ModeExact)
			if err != nil {
				return fmt.Errorf("verify query %d: %w", i, err)
			}
			if len(res.Neighbors) != len(want[i]) {
				identical = false
				break
			}
			for j := range want[i] {
				if res.Neighbors[j] != want[i][j] {
					identical = false
					break
				}
			}
		}
		status := "bit-identical to SearchSetBatch"
		if !identical {
			status = "MISMATCH against SearchSetBatch"
		}
		fmt.Fprintf(w, "verified %d exact queries: %s\n", nVerify, status)
	}

	load := repro.LoadConfig{
		Queries:     o.serveQueries,
		Concurrency: o.serveConcurrency,
		QPS:         o.serveQPS,
		Deadline:    time.Duration(o.serveDeadlineMS * float64(time.Millisecond)),
		K:           o.neighbors,
		Mode:        mode,
	}
	rep, err := repro.RunLoad(ctx, e, queries, load)
	if err != nil {
		return err
	}
	st := e.Stats()

	fmt.Fprintf(w, "load: %d queries, concurrency %d, mode %s\n", rep.Queries, rep.Concurrency, rep.Mode)
	fmt.Fprintf(w, "  served %d (exact %d, approx %d, degraded %d)\n", rep.Served, rep.Exact, rep.Approx, rep.Degraded)
	fmt.Fprintf(w, "  rejected: overloaded %d, deadline %d, other %d; lost %d, duplicated %d\n",
		rep.Overloaded, rep.DeadlineExceeded, rep.OtherErrors, rep.Lost, rep.Duplicated)
	fmt.Fprintf(w, "  elapsed %v, %.0f served/s, mean wait %v\n", rep.Elapsed.Round(time.Millisecond), rep.Throughput, rep.MeanWait)
	fmt.Fprintf(w, "  latency p50 %v, p99 %v\n", st.LatencyP50, st.LatencyP99)

	if rep.Lost != 0 || rep.Duplicated != 0 {
		return fmt.Errorf("serve-bench: %d lost and %d duplicated responses", rep.Lost, rep.Duplicated)
	}
	if !identical {
		return fmt.Errorf("serve-bench: sharded exact results diverged from SearchSetBatch")
	}

	if o.serveOut != "" {
		js := serveBenchReport{
			Dataset:          name,
			N:                data.Rows(),
			Dims:             data.Cols(),
			K:                o.neighbors,
			Mode:             rep.Mode,
			Shards:           e.Shards(),
			Workers:          o.serveWorkers,
			QueueCap:         st.QueueCap,
			Queries:          rep.Queries,
			Concurrency:      rep.Concurrency,
			QPS:              o.serveQPS,
			DeadlineMS:       o.serveDeadlineMS,
			Served:           rep.Served,
			Exact:            rep.Exact,
			Approx:           rep.Approx,
			Degraded:         rep.Degraded,
			Overloaded:       rep.Overloaded,
			DeadlineExceeded: rep.DeadlineExceeded,
			OtherErrors:      rep.OtherErrors,
			Lost:             rep.Lost,
			Duplicated:       rep.Duplicated,
			ElapsedMS:        float64(rep.Elapsed) / float64(time.Millisecond),
			Throughput:       rep.Throughput,
			MeanWaitUS:       float64(rep.MeanWait) / float64(time.Microsecond),
			LatencyP50US:     float64(st.LatencyP50) / float64(time.Microsecond),
			LatencyP99US:     float64(st.LatencyP99) / float64(time.Microsecond),
			VerifiedQueries:  nVerify,
			BitIdentical:     identical,
		}
		f, err := os.Create(o.serveOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(js); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", o.serveOut)
	}
	return nil
}
