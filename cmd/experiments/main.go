// Command experiments regenerates every table and figure of the paper on
// the synthetic data-set analogues, printing aligned text reports.
//
// Usage:
//
//	experiments [-seed N] [-threshold F] [-only name]
//
// Section names for -only: table1, figure1, figure2, scatter, coherence,
// quality, ordering, uniform, contrast, pruning, recall, local, igrid,
// implicit, ablations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/reduction"
)

func main() {
	seed := flag.Int64("seed", 1, "seed for all synthetic data generation")
	threshold := flag.Float64("threshold", 0.01, "Table 1 eigenvalue-threshold fraction (paper OCR reads 1%)")
	only := flag.String("only", "", "run a single section (see doc comment)")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, ThresholdFrac: *threshold}
	out := os.Stdout

	run := func(name string, fn func()) {
		if *only != "" && !strings.EqualFold(*only, name) {
			return
		}
		fmt.Fprintf(out, "==== %s ====\n", name)
		fn()
		fmt.Fprintln(out)
	}

	run("figure1", func() { experiments.Figure1().Format(out) })
	run("figure2", func() { experiments.Figure2().Format(out) })
	run("table1", func() { experiments.Table1(cfg).Format(out) })
	run("scatter", func() {
		// Figures 3, 6, 9 (clean, normalized) and 12, 14 (noisy, raw).
		for _, spec := range experiments.AllClean(*seed) {
			experiments.Scatter(spec, reduction.ScalingStudentize).Format(out)
			fmt.Fprintln(out)
		}
		experiments.Scatter(experiments.NoisyA(*seed), reduction.ScalingNone).Format(out)
		fmt.Fprintln(out)
		experiments.Scatter(experiments.NoisyB(*seed), reduction.ScalingNone).Format(out)
	})
	run("coherence", func() {
		// Figures 4, 7, 10.
		for _, spec := range experiments.AllClean(*seed) {
			experiments.CoherenceDistribution(spec).Format(out)
			fmt.Fprintln(out)
		}
	})
	run("quality", func() {
		// Figures 5, 8, 11.
		for _, spec := range experiments.AllClean(*seed) {
			experiments.ScalingQuality(spec).Format(out)
			fmt.Fprintln(out)
		}
	})
	run("ordering", func() {
		// Figures 13, 15.
		experiments.OrderingQuality(experiments.NoisyA(*seed)).Format(out)
		fmt.Fprintln(out)
		experiments.OrderingQuality(experiments.NoisyB(*seed)).Format(out)
	})
	run("uniform", func() { experiments.UniformCoherence(cfg).Format(out) })
	run("contrast", func() { experiments.ContrastSweep(cfg).Format(out) })
	run("pruning", func() { experiments.IndexPruning(cfg).Format(out) })
	run("recall", func() { experiments.LSHRecall(cfg).Format(out) })
	run("local", func() { experiments.LocalReduction(cfg).Format(out) })
	run("igrid", func() { experiments.IGridComparison(cfg).Format(out) })
	run("implicit", func() { experiments.ImplicitDimensionality(cfg).Format(out) })
	run("ablations", func() {
		experiments.ScalingAblation(cfg).Format(out)
		fmt.Fprintln(out)
		experiments.SelectionAblation(cfg).Format(out)
		fmt.Fprintln(out)
		experiments.MetricAblation(cfg).Format(out)
		fmt.Fprintln(out)
		experiments.NoiseAblation(cfg).Format(out)
	})
}
