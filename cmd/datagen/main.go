// Command datagen writes the synthetic data-set analogues used by the
// experiment suite to CSV files, so they can be inspected or fed to other
// tools (including drtool).
//
// Usage:
//
//	datagen [-seed N] [-dir DIR] [-set name]
//
// Set names: musk, ionosphere, arrhythmia, noisy-a, noisy-b, uniform, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	repro "repro"
)

func main() {
	seed := flag.Int64("seed", 1, "generation seed")
	dir := flag.String("dir", ".", "output directory")
	set := flag.String("set", "all", "which data set to emit")
	flag.Parse()

	sets := map[string]func() *repro.Dataset{
		"musk":       func() *repro.Dataset { return repro.MuskLike(*seed) },
		"ionosphere": func() *repro.Dataset { return repro.IonosphereLike(*seed) },
		"arrhythmia": func() *repro.Dataset { return repro.ArrhythmiaLike(*seed) },
		"noisy-a":    func() *repro.Dataset { d, _ := repro.NoisyDataA(*seed); return d },
		"noisy-b":    func() *repro.Dataset { d, _ := repro.NoisyDataB(*seed); return d },
		"uniform":    func() *repro.Dataset { return repro.UniformCube("uniform", 1000, 50, *seed) },
	}

	var names []string
	if *set == "all" {
		names = []string{"musk", "ionosphere", "arrhythmia", "noisy-a", "noisy-b", "uniform"}
	} else {
		if _, ok := sets[*set]; !ok {
			fmt.Fprintf(os.Stderr, "datagen: unknown set %q\n", *set)
			os.Exit(2)
		}
		names = []string{*set}
	}

	for _, name := range names {
		ds := sets[name]()
		path := filepath.Join(*dir, name+".csv")
		if err := write(path, ds); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%s)\n", path, ds)
	}
}

func write(path string, ds *repro.Dataset) error {
	// Name the features so the CSV round-trips with a header row
	// (drtool -header).
	if ds.FeatureNames == nil {
		names := make([]string, ds.Dims())
		for j := range names {
			names[j] = fmt.Sprintf("f%d", j+1)
		}
		ds.FeatureNames = names
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return repro.WriteCSV(f, ds)
}
