// Command datagen writes the synthetic data-set analogues used by the
// experiment suite to CSV files, so they can be inspected or fed to other
// tools (including drtool), or streams large musk-like sets straight into
// the quantized store format (internal/store).
//
// Usage:
//
//	datagen [-seed N] [-dir DIR] [-set name]
//	datagen -bin out.qvs -n N -d D [-seed N] [-prec int8|int16] [-full F] [-block B]
//
// Set names: musk, ionosphere, arrhythmia, noisy-a, noisy-b, uniform, all.
//
// The -bin mode scales the musk-like latent-factor model to N points in D
// dimensions and writes the store file in two streaming passes (a scale
// pass and an encode pass), so peak memory stays O(D) regardless of N —
// a million-point set never materializes a float64 matrix.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	repro "repro"
	"repro/internal/dataset/synthetic"
	"repro/internal/store"
)

func main() {
	seed := flag.Int64("seed", 1, "generation seed")
	dir := flag.String("dir", ".", "output directory (CSV mode)")
	set := flag.String("set", "all", "which data set to emit (CSV mode)")
	bin := flag.String("bin", "", "write a quantized store file to this path instead of CSVs")
	n := flag.Int("n", 0, "number of points (store mode)")
	d := flag.Int("d", 0, "dimensionality (store mode)")
	prec := flag.String("prec", "int8", "code precision: int8 or int16 (store mode)")
	full := flag.Int("full", 0, "leading storage dims kept at float32 (store mode)")
	block := flag.Int("block", 0, "rows per code block, 0 = default (store mode)")
	flag.Parse()

	if *bin != "" {
		if err := writeStore(*bin, *n, *d, *seed, *prec, *full, *block); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	sets := map[string]func() *repro.Dataset{
		"musk":       func() *repro.Dataset { return repro.MuskLike(*seed) },
		"ionosphere": func() *repro.Dataset { return repro.IonosphereLike(*seed) },
		"arrhythmia": func() *repro.Dataset { return repro.ArrhythmiaLike(*seed) },
		"noisy-a":    func() *repro.Dataset { d, _ := repro.NoisyDataA(*seed); return d },
		"noisy-b":    func() *repro.Dataset { d, _ := repro.NoisyDataB(*seed); return d },
		"uniform":    func() *repro.Dataset { return repro.UniformCube("uniform", 1000, 50, *seed) },
	}

	var names []string
	if *set == "all" {
		names = []string{"musk", "ionosphere", "arrhythmia", "noisy-a", "noisy-b", "uniform"}
	} else {
		if _, ok := sets[*set]; !ok {
			fmt.Fprintf(os.Stderr, "datagen: unknown set %q\n", *set)
			os.Exit(2)
		}
		names = []string{*set}
	}

	for _, name := range names {
		ds := sets[name]()
		path := filepath.Join(*dir, name+".csv")
		if err := write(path, ds); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%s)\n", path, ds)
	}
}

// writeStore streams a musk-like set of n x d points into a store file.
func writeStore(path string, n, d int, seed int64, prec string, full, block int) error {
	if n <= 0 || d <= 0 {
		return fmt.Errorf("store mode needs -n and -d (got n=%d d=%d)", n, d)
	}
	cfg := store.BuildConfig{FullDims: full, BlockRows: block}
	switch prec {
	case "int8":
		cfg.Precision = store.Int8
	case "int16":
		cfg.Precision = store.Int16
	default:
		return fmt.Errorf("unknown -prec %q (want int8 or int16)", prec)
	}

	gen := synthetic.MuskLikeConfig(seed)
	gen.Name = fmt.Sprintf("musk-like-%dx%d", n, d)
	gen.N = n
	gen.Dims = d
	if len(gen.ConceptStrengths) > d {
		gen.ConceptStrengths = gen.ConceptStrengths[:d]
	}
	stream, err := synthetic.NewRowStream(gen)
	if err != nil {
		return err
	}

	// Pass 1: per-dimension min/max for the quantization scales.
	acc := store.NewScaleAccumulator(d)
	for i := 0; i < n; i++ {
		row, _ := stream.Next()
		acc.Add(row)
	}
	cfg.Mins, cfg.Steps = acc.Scales(cfg.Precision)

	// Pass 2: replay the identical rows into the fixed-layout file.
	if err := stream.Reset(); err != nil {
		return err
	}
	w, err := store.Create(path, n, d, cfg)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		row, _ := stream.Next()
		if err := w.Append(row); err != nil {
			w.Close()
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d x %d, %s, %d bytes)\n", path, n, d, prec, st.Size())
	return nil
}

func write(path string, ds *repro.Dataset) error {
	// Name the features so the CSV round-trips with a header row
	// (drtool -header).
	if ds.FeatureNames == nil {
		names := make([]string, ds.Dims())
		for j := range names {
			names[j] = fmt.Sprintf("f%d", j+1)
		}
		ds.FeatureNames = names
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return repro.WriteCSV(f, ds)
}
