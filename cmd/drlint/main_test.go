package main

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

func TestModuleRootFindsGoMod(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	if root == "" {
		t.Fatal("empty module root")
	}
}

// TestCleanTreeHasNoFindings is the CLI-level view of the self-enforcing
// lint: the committed tree must produce zero diagnostics.
func TestCleanTreeHasNoFindings(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := runPattern(root, "./...", analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestFixtureViolationsAreReported points the CLI machinery at a directory
// full of known violations (the analyzers' own fixtures, which the normal
// walk skips as testdata) and checks findings come back positioned.
func TestFixtureViolationsAreReported(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := runPattern(root, "internal/analysis/testdata/src/globalrand", analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("expected findings from the globalrand fixture, got none")
	}
	for _, d := range diags {
		if d.Pos.Line <= 0 || !strings.Contains(d.Pos.Filename, "globalrand") {
			t.Errorf("diagnostic lacks a usable position: %s", d)
		}
	}
}

func TestRunPatternSubtree(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := runPattern(root, "internal/knn/...", analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("internal/knn should lint clean, got %v", diags)
	}
}

// TestRunPatternResultRecordsSuppressions: the atomicmix fixture carries a
// //drlint:ignore directive, and the CLI machinery must keep the suppressed
// finding so baseline gating can flag redundant directives.
func TestRunPatternResultRecordsSuppressions(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	res, err := runPatternResult(root, "internal/analysis/testdata/src/atomicmix", analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) == 0 {
		t.Fatal("expected atomicmix findings from the fixture, got none")
	}
	found := false
	for _, s := range res.Suppressed {
		if s.Diag.Rule == "atomicmix" {
			found = true
		}
	}
	if !found {
		t.Fatalf("the fixture's suppressed atomicmix finding was not recorded: %+v", res.Suppressed)
	}
}

// TestBaselineGateAcceptsRecordedFindings drives the same path main takes
// with -baseline: findings recorded in a baseline no longer fail the run.
func TestBaselineGateAcceptsRecordedFindings(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	res, err := runPatternResult(root, "internal/analysis/testdata/src/errwrap", analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) == 0 {
		t.Fatal("expected errwrap findings from the fixture, got none")
	}
	b := analysis.NewBaseline(root, res.Diags)
	if failing := analysis.Gate(root, res, b); len(failing) != 0 {
		t.Fatalf("baseline did not absorb its own findings: %v", failing)
	}
	if failing := analysis.Gate(root, res, nil); len(failing) != len(res.Diags) {
		t.Fatalf("nil baseline changed the findings: %v", failing)
	}
}

func TestRulesFilter(t *testing.T) {
	if _, err := analysis.ByName([]string{"globalrand"}); err != nil {
		t.Fatal(err)
	}
	if _, err := analysis.ByName([]string{"bogus"}); err == nil {
		t.Fatal("unknown rule accepted")
	}
}

// TestDropFamilyNoWitness pins the -no-witness opt-out: exactly the three
// compiler-witness analyzers drop out, everything else survives.
func TestDropFamilyNoWitness(t *testing.T) {
	all := analysis.All()
	kept := dropFamily(all, "compiler-witness")
	if len(kept) != len(all)-3 {
		t.Fatalf("dropFamily kept %d of %d analyzers, want %d", len(kept), len(all), len(all)-3)
	}
	for _, a := range kept {
		if a.Family == "compiler-witness" {
			t.Errorf("witness analyzer %s survived -no-witness", a.Name)
		}
	}
}
