package main

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

func TestModuleRootFindsGoMod(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	if root == "" {
		t.Fatal("empty module root")
	}
}

// TestCleanTreeHasNoFindings is the CLI-level view of the self-enforcing
// lint: the committed tree must produce zero diagnostics.
func TestCleanTreeHasNoFindings(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := runPattern(root, "./...", analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestFixtureViolationsAreReported points the CLI machinery at a directory
// full of known violations (the analyzers' own fixtures, which the normal
// walk skips as testdata) and checks findings come back positioned.
func TestFixtureViolationsAreReported(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := runPattern(root, "internal/analysis/testdata/src/globalrand", analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("expected findings from the globalrand fixture, got none")
	}
	for _, d := range diags {
		if d.Pos.Line <= 0 || !strings.Contains(d.Pos.Filename, "globalrand") {
			t.Errorf("diagnostic lacks a usable position: %s", d)
		}
	}
}

func TestRunPatternSubtree(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := runPattern(root, "internal/knn/...", analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("internal/knn should lint clean, got %v", diags)
	}
}

func TestRulesFilter(t *testing.T) {
	if _, err := analysis.ByName([]string{"globalrand"}); err != nil {
		t.Fatal(err)
	}
	if _, err := analysis.ByName([]string{"bogus"}); err == nil {
		t.Fatal("unknown rule accepted")
	}
}
