// Command drlint runs this repository's project-specific static analyzers
// over the module and exits nonzero on findings. Seventeen rules in five
// families: four syntactic (dimguard, globalrand, floatcmp,
// goroutinehygiene); four type-aware (atomicmix, lockhold, ctxflow,
// errwrap) over a go/types-checked view of every package; three dataflow
// (hotalloc, unsafelife, asmabi) over a module-local call graph; three
// compiler-witness gates (escapegate, inlinegate, bcegate) that join real
// `go build -gcflags='-m=2 -d=ssa/check_bce/debug=1'` diagnostics against
// the //drlint:hotpath closure; and three determinism rules (maporder,
// seedprov, snapcapture) guarding reproducibility of reported results.
//
// Usage:
//
//	go run ./cmd/drlint ./...          # whole module
//	go run ./cmd/drlint internal/knn   # one directory
//	go run ./cmd/drlint -rules floatcmp,dimguard ./...
//	go run ./cmd/drlint -format sarif ./... > drlint.sarif
//	go run ./cmd/drlint -baseline .drlint-baseline.json ./...
//	go run ./cmd/drlint -baseline .drlint-baseline.json -write-baseline ./...
//	go run ./cmd/drlint -no-witness ./...   # skip the compiler-witness family
//	go run ./cmd/drlint -timing ./...       # per-rule wall-clock report on stderr
//	go run ./cmd/drlint -list
//
// Findings print as file:line:col: [rule] message (-format text), as a JSON
// document (-format json), or as SARIF 2.1.0 for GitHub code scanning
// (-format sarif). With -baseline, recorded findings are accepted and only
// new ones fail the run; -write-baseline records the current findings to
// the -baseline path instead of failing. Suppress an intentional finding
// with a justified directive on the offending line or the line above:
// //drlint:ignore <rule> <reason>.
//
// The compiler-witness family shells out to the active go toolchain; when
// the toolchain is untested or its output unrecognizable the family
// degrades to disabled and a notice prints on stderr (the run still
// succeeds). -no-witness skips the family outright — for cross-compiled CI
// legs (e.g. GOARCH=arm64) where the witness build would describe the
// wrong architecture.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analysis"
)

func main() {
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := flag.Bool("list", false, "list available rules and exit")
	format := flag.String("format", "text", "output format: text, json or sarif")
	baselinePath := flag.String("baseline", "", "baseline file: recorded findings are accepted, only new ones fail")
	writeBaseline := flag.Bool("write-baseline", false, "record the current findings to the -baseline path and exit")
	noWitness := flag.Bool("no-witness", false, "skip the compiler-witness rule family (no go build shell-out)")
	timing := flag.Bool("timing", false, "report per-rule wall-clock time on stderr after the run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: drlint [-rules r1,r2] [-format text|json|sarif] [-baseline file [-write-baseline]] [-no-witness] [-timing] [-list] [patterns...]\n\npatterns are directories or ./... (default ./...)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			family := a.Family
			if a.NeedsAnnotation {
				family += ", needs annotations"
			}
			fmt.Printf("%-16s %-30s %s\n", a.Name, "("+family+")", a.Doc)
		}
		return
	}
	if *rules != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*rules, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *noWitness {
		analyzers = dropFamily(analyzers, "compiler-witness")
	}
	if *timing {
		analysis.EnableTimings()
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "drlint: unknown -format %q (text, json or sarif)\n", *format)
		os.Exit(2)
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "drlint: -write-baseline needs -baseline <file> to know where to write")
		os.Exit(2)
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var res analysis.RunResult
	for _, pat := range patterns {
		r, err := runPatternResult(root, pat, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		res.Diags = append(res.Diags, r.Diags...)
		res.Suppressed = append(res.Suppressed, r.Suppressed...)
	}

	// Surface a degraded witness layer: the run still succeeds, but the
	// user learns the three gates verified nothing this time.
	if n := analysis.WitnessNotice(); n != "" {
		fmt.Fprintln(os.Stderr, "drlint: "+n)
	}
	if *timing {
		for _, rt := range analysis.Timings() {
			fmt.Fprintf(os.Stderr, "drlint: timing %-16s %s\n", rt.Rule, rt.Elapsed.Round(time.Microsecond))
		}
	}

	if *writeBaseline {
		b := analysis.NewBaseline(root, res.Diags)
		f, err := os.Create(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := b.Write(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "drlint: recorded %d finding(s) to %s\n", b.Len(), *baselinePath)
		return
	}

	var baseline *analysis.Baseline
	if *baselinePath != "" {
		baseline, err = analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	failing := analysis.Gate(root, res, baseline)

	switch *format {
	case "text":
		err = analysis.WriteText(os.Stdout, root, failing)
	case "json":
		err = analysis.WriteJSON(os.Stdout, root, failing)
	case "sarif":
		err = analysis.WriteSARIF(os.Stdout, root, analyzers, failing)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(failing) > 0 {
		fmt.Fprintf(os.Stderr, "drlint: %d new finding(s)\n", len(failing))
		os.Exit(1)
	}
}

// dropFamily removes every analyzer of one family from the run set.
func dropFamily(analyzers []*analysis.Analyzer, family string) []*analysis.Analyzer {
	kept := make([]*analysis.Analyzer, 0, len(analyzers))
	for _, a := range analyzers {
		if a.Family != family {
			kept = append(kept, a)
		}
	}
	return kept
}

// runPattern resolves one CLI pattern and returns the surviving findings.
func runPattern(root, pat string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	res, err := runPatternResult(root, pat, analyzers)
	if err != nil {
		return nil, err
	}
	return res.Diags, nil
}

// runPatternResult resolves one CLI pattern: "./..." (or "all") walks the
// module; anything else is a single package directory (or dir/... subtree),
// relative to the module root. Suppressed findings ride along for baseline
// redundancy reporting.
func runPatternResult(root, pat string, analyzers []*analysis.Analyzer) (analysis.RunResult, error) {
	if pat == "./..." || pat == "..." || pat == "all" {
		return analysis.RunModule(root, analyzers)
	}
	dir := strings.TrimSuffix(pat, "/...")
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(root, dir)
	}
	if strings.HasSuffix(pat, "/...") {
		pkgs, err := analysis.LoadUnder(root, dir)
		if err != nil {
			return analysis.RunResult{}, err
		}
		return analysis.RunPackagesResult(pkgs, analyzers), nil
	}
	pkg, err := analysis.LoadDir(root, dir)
	if err != nil {
		return analysis.RunResult{}, err
	}
	if pkg == nil {
		return analysis.RunResult{}, fmt.Errorf("drlint: no Go files in %s", dir)
	}
	return analysis.RunPackagesResult([]*analysis.Package{pkg}, analyzers), nil
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("drlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
