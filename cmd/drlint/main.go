// Command drlint runs this repository's project-specific static analyzers
// (dimension guards, seeded-randomness, float comparison, goroutine
// hygiene) over the module and exits nonzero on findings.
//
// Usage:
//
//	go run ./cmd/drlint ./...          # whole module
//	go run ./cmd/drlint internal/knn   # one directory
//	go run ./cmd/drlint -rules floatcmp,dimguard ./...
//	go run ./cmd/drlint -list
//
// Findings print as file:line:col: [rule] message. Suppress an intentional
// finding with a justified directive on the offending line or the line
// above: //drlint:ignore <rule> <reason>.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := flag.Bool("list", false, "list available rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: drlint [-rules r1,r2] [-list] [patterns...]\n\npatterns are directories or ./... (default ./...)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *rules != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*rules, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var diags []analysis.Diagnostic
	for _, pat := range patterns {
		d, err := runPattern(root, pat, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		diags = append(diags, d...)
	}

	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "drlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// runPattern resolves one CLI pattern: "./..." (or "all") walks the module;
// anything else is a single package directory, relative to the module root.
func runPattern(root, pat string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	if pat == "./..." || pat == "..." || pat == "all" {
		return analysis.Run(root, analyzers)
	}
	dir := strings.TrimSuffix(pat, "/...")
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(root, dir)
	}
	if strings.HasSuffix(pat, "/...") {
		pkgs, err := analysis.LoadUnder(root, dir)
		if err != nil {
			return nil, err
		}
		return analysis.RunPackages(pkgs, analyzers), nil
	}
	pkg, err := analysis.LoadDir(root, dir)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("drlint: no Go files in %s", dir)
	}
	return analysis.RunPackages([]*analysis.Package{pkg}, analyzers), nil
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("drlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
