package repro

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

// These tests exercise the public facade end to end, as an adopting user
// would.

func TestPublicPipeline(t *testing.T) {
	ds := IonosphereLike(1)
	if ds.N() != 351 || ds.Dims() != 34 {
		t.Fatalf("dataset shape: %s", ds)
	}
	p, err := FitDataset(ds, Options{Scaling: ScalingStudentize, ComputeCoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	reduced := p.ReduceDataset(ds, p.TopK(ByCoherence, 8), "reduced")
	if reduced.Dims() != 8 {
		t.Fatalf("reduced dims: %d", reduced.Dims())
	}
	full := DatasetAccuracy(ds)
	red := DatasetAccuracy(reduced)
	if red <= full {
		t.Fatalf("reduction did not improve accuracy: %.3f vs %.3f", red, full)
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	ds := UniformCube("u", 20, 4, 1)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "u", CSVOptions{LabelColumn: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !back.X.Equal(ds.X, 0) {
		t.Fatalf("round trip changed features")
	}
}

func TestPublicARFF(t *testing.T) {
	in := "@relation r\n@attribute a numeric\n@attribute c {x,y}\n@data\n1,x\n2,y\n"
	ds, err := ReadARFF(strings.NewReader(in), "r")
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 || ds.Dims() != 1 {
		t.Fatalf("arff shape: %s", ds)
	}
}

func TestPublicCoherenceClosedForm(t *testing.T) {
	// §3: axis vector on any point with a single nonzero coordinate → CF=1.
	x := []float64{5, 0, 0, 0}
	e := []float64{1, 0, 0, 0}
	if cf := CoherenceFactor(x, e); math.Abs(cf-1) > 1e-12 {
		t.Fatalf("CF = %v", cf)
	}
	if cp := CoherenceProbability(x, e); math.Abs(cp-0.6826894921370859) > 1e-12 {
		t.Fatalf("CP = %v", cp)
	}
}

func TestPublicSearchAndIndexesAgree(t *testing.T) {
	ds := UniformCube("u", 400, 6, 3)
	q := ds.Point(7)
	want := Search(ds.X, q, 5, Euclidean{}, -1)
	for name, idx := range map[string]Index{
		"kdtree": BuildKDTree(ds.X, 0),
		"vafile": BuildVAFile(ds.X, 5),
		"rtree":  BuildRTree(ds.X, 0),
	} {
		got, stats := idx.KNN(q, 5)
		if len(got) != len(want) {
			t.Fatalf("%s: %d results", name, len(got))
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("%s: rank %d dist %v != %v", name, i, got[i].Dist, want[i].Dist)
			}
		}
		if stats.PointsScanned <= 0 {
			t.Fatalf("%s: no work reported", name)
		}
	}
}

func TestPublicGenerateValidates(t *testing.T) {
	if _, err := Generate(LatentFactorConfig{}); err == nil {
		t.Fatalf("zero config accepted")
	}
}

func TestPublicCorruptAndNoisySets(t *testing.T) {
	a, colsA := NoisyDataA(1)
	if a.Dims() != 34 || len(colsA) != 10 {
		t.Fatalf("noisy A: %s cols=%v", a, colsA)
	}
	b, colsB := NoisyDataB(1)
	if b.Dims() != 279 || len(colsB) != 10 {
		t.Fatalf("noisy B: %s cols=%v", b, colsB)
	}
	c := Corrupt(a, []int{0}, 2, 9)
	if c.N() != a.N() {
		t.Fatalf("corrupt changed size")
	}
}

func TestPublicSweepAndContrast(t *testing.T) {
	ds := MuskLike(1)
	p, err := FitDataset(ds, Options{Scaling: ScalingStudentize})
	if err != nil {
		t.Fatal(err)
	}
	curve := Sweep(ds, p, p.Order(ByEigenvalue), "eig", SweepConfig{Dims: []int{5, 20}})
	if len(curve.Points) != 2 || curve.Optimal().Accuracy <= 0.5 {
		t.Fatalf("sweep wrong: %+v", curve)
	}
	rep, err := RelativeContrast(ds.X, ds.X.SliceRows([]int{0, 1}), Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanRelativeContrast <= 0 {
		t.Fatalf("contrast: %+v", rep)
	}
}

// ExampleCoherenceFactor demonstrates the §3 closed form.
func ExampleCoherenceFactor() {
	// Along an axis vector, any point has coherence factor exactly 1:
	// its single contribution is its own standard deviation.
	x := []float64{3.7, -2, 5, 0.4}
	e := []float64{1, 0, 0, 0}
	fmt.Printf("CF = %.0f, P = %.4f\n", CoherenceFactor(x, e), CoherenceProbability(x, e))
	// Output: CF = 1, P = 0.6827
}

// ExampleFitDataset shows the paper's selection rule on a synthetic data
// set.
func ExampleFitDataset() {
	ds := IonosphereLike(1)
	p, _ := FitDataset(ds, Options{Scaling: ScalingStudentize, ComputeCoherence: true})
	reduced := p.ReduceDataset(ds, p.TopK(ByCoherence, 8), "reduced")
	fmt.Println(reduced.Dims(), "dims,", reduced.N(), "points")
	// Output: 8 dims, 351 points
}
