package repro

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/index/lsh"
	"repro/internal/knn"
	"repro/internal/linalg"
)

// TestStressConcurrentEngines hammers every internally-parallel engine —
// knn.SearchSetBatch, knn.SearchSetParallel, linalg.MulTInto, linalg.AtA,
// and the LSH batch build/query — from many goroutines at once over shared
// read-only inputs. Its job is to give `go test -race` (the mode CI runs)
// real contention on the panel/worker code paths: nested parallelism,
// concurrent readers of the same backing arrays, and separately-owned
// output buffers. Any cross-goroutine write the engines accidentally share
// shows up as a race report here.
func TestStressConcurrentEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	const (
		n       = 600
		nq      = 120
		d       = 24
		k       = 5
		rounds  = 4
		callers = 6
	)
	rng := rand.New(rand.NewSource(1234))
	data := linalg.NewDense(n, d)
	queries := linalg.NewDense(nq, d)
	for _, m := range []*linalg.Dense{data, queries} {
		rows, cols := m.Dims()
		for i := 0; i < rows; i++ {
			row := m.RawRow(i)
			for j := 0; j < cols; j++ {
				row[j] = rng.NormFloat64()
			}
		}
	}

	// Reference results computed single-threaded up front; every concurrent
	// caller must reproduce them exactly (the engines advertise determinism
	// for fixed inputs, not just absence of races).
	wantBatch := knn.SearchSetBatch(data, queries, k, knn.Euclidean{}, false)
	wantMulT := linalg.MulT(queries, data)
	wantAtA := linalg.AtA(data)
	ix := lsh.Build(data, lsh.Config{Tables: 6, Hashes: 10, Seed: 99})
	wantLSH, _ := ix.KNNApproxSet(queries, k, 12)

	sameNeighbors := func(t *testing.T, got, want [][]knn.Neighbor, engine string) {
		t.Helper()
		if len(got) != len(want) {
			t.Errorf("%s: %d result rows, want %d", engine, len(got), len(want))
			return
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Errorf("%s: query %d returned %d neighbors, want %d", engine, i, len(got[i]), len(want[i]))
				return
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Errorf("%s: query %d neighbor %d = %+v, want %+v", engine, i, j, got[i][j], want[i][j])
					return
				}
			}
		}
	}

	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(5)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				sameNeighbors(t, knn.SearchSetBatch(data, queries, k, knn.Euclidean{}, false), wantBatch, "SearchSetBatch")
			}
		}()
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				sameNeighbors(t, knn.SearchSetParallel(data, queries, k, knn.Euclidean{}, false), wantBatch, "SearchSetParallel")
			}
		}()
		go func() {
			defer wg.Done()
			dst := linalg.NewDense(nq, n) // per-caller output buffer
			for r := 0; r < rounds; r++ {
				linalg.MulTInto(dst, queries, data)
				if !dst.Equal(wantMulT, 0) {
					t.Error("MulTInto: concurrent result diverged from reference")
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if got := linalg.AtA(data); !got.Equal(wantAtA, 0) {
					t.Error("AtA: concurrent result diverged from reference")
					return
				}
			}
		}()
		go func(seed int64) {
			defer wg.Done()
			// Each caller builds its own index (exercising the parallel
			// build) and also queries the shared prebuilt one.
			own := lsh.Build(data, lsh.Config{Tables: 6, Hashes: 10, Seed: 99 + seed})
			for r := 0; r < rounds; r++ {
				got, _ := ix.KNNApproxSet(queries, k, 12)
				sameNeighbors(t, got, wantLSH, "lsh.KNNApproxSet")
				if _, stats := own.KNNApproxSet(queries, k, 12); stats.BucketsProbed == 0 {
					t.Error("lsh: own-index query probed no buckets")
					return
				}
			}
		}(int64(c))
	}
	wg.Wait()
}
