package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset/synthetic"
	"repro/internal/linalg"
	"repro/internal/reduction"
)

// wellSeparated returns k tight clusters far apart plus their true
// assignment.
func wellSeparated(n, d, k int, seed int64) (*linalg.Dense, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, d)
		for j := range centers[c] {
			centers[c][j] = float64(c*100) + rng.NormFloat64()
		}
	}
	x := linalg.NewDense(n, d)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k
		truth[i] = c
		for j := 0; j < d; j++ {
			x.Set(i, j, centers[c][j]+rng.NormFloat64()*0.5)
		}
	}
	return x, truth
}

func TestKMeansRecoversSeparatedClusters(t *testing.T) {
	x, truth := wellSeparated(300, 4, 3, 1)
	res, err := KMeans(x, KMeansConfig{K: 3, Seed: 1, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The found partition must match the truth up to relabeling: points
	// with equal truth share a cluster, points with different truth don't.
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			same := truth[i] == truth[j]
			found := res.Assign[i] == res.Assign[j]
			if same != found {
				t.Fatalf("pair (%d,%d): truth same=%v, found same=%v", i, j, same, found)
			}
		}
	}
	for c, s := range res.Sizes {
		if s != 100 {
			t.Fatalf("cluster %c size %d", c, s)
		}
	}
	if res.Iterations < 1 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}

func TestKMeansValidation(t *testing.T) {
	x := linalg.NewDense(5, 2)
	if _, err := KMeans(x, KMeansConfig{K: 0}); err == nil {
		t.Fatalf("K=0 accepted")
	}
	if _, err := KMeans(x, KMeansConfig{K: 6}); err == nil {
		t.Fatalf("K>n accepted")
	}
}

func TestKMeansK1(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := linalg.NewDense(50, 3)
	for i := 0; i < 50; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, rng.NormFloat64()+7)
		}
	}
	res, err := KMeans(x, KMeansConfig{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Single centroid = column means.
	for j := 0; j < 3; j++ {
		col := x.Col(j)
		mean := 0.0
		for _, v := range col {
			mean += v
		}
		mean /= 50
		if math.Abs(res.Centroids.At(0, j)-mean) > 1e-9 {
			t.Fatalf("centroid[%d] = %v, want %v", j, res.Centroids.At(0, j), mean)
		}
	}
}

func TestKMeansDuplicatePoints(t *testing.T) {
	// All points identical: must terminate with zero inertia.
	x := linalg.NewDense(20, 2)
	for i := 0; i < 20; i++ {
		x.Set(i, 0, 3)
		x.Set(i, 1, 4)
	}
	res, err := KMeans(x, KMeansConfig{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Fatalf("inertia = %v", res.Inertia)
	}
}

func TestKMeansDeterministicPerSeed(t *testing.T) {
	x, _ := wellSeparated(120, 3, 4, 9)
	a, _ := KMeans(x, KMeansConfig{K: 4, Seed: 7})
	b, _ := KMeans(x, KMeansConfig{K: 4, Seed: 7})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("same seed produced different assignments")
		}
	}
}

func TestKMeansInertiaNonIncreasingInK(t *testing.T) {
	// Property: best-of-restarts inertia should not grow when K increases.
	x, _ := wellSeparated(200, 4, 4, 11)
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		res, err := KMeans(x, KMeansConfig{K: k, Seed: 3, Restarts: 5})
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev*1.001 {
			t.Fatalf("inertia grew from %v to %v at k=%d", prev, res.Inertia, k)
		}
		prev = res.Inertia
	}
}

func TestKMeansAssignmentsAreNearest(t *testing.T) {
	// Property: on convergence, every point is assigned to its nearest
	// centroid.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		d := 1 + rng.Intn(4)
		k := 1 + rng.Intn(4)
		x := linalg.NewDense(n, d)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				x.Set(i, j, rng.NormFloat64())
			}
		}
		res, err := KMeans(x, KMeansConfig{K: k, Seed: seed})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			best := 0
			bestD := math.Inf(1)
			for c := 0; c < k; c++ {
				if dd := sqDist(x.RawRow(i), res.Centroids.RawRow(c)); dd < bestD {
					best, bestD = c, dd
				}
			}
			if sq := sqDist(x.RawRow(i), res.Centroids.RawRow(res.Assign[i])); sq > bestD+1e-9 {
				_ = best
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSilhouette(t *testing.T) {
	x, truth := wellSeparated(90, 3, 3, 13)
	// True clustering: silhouette near 1.
	if s := Silhouette(x, truth, 3); s < 0.9 {
		t.Fatalf("true clustering silhouette = %v", s)
	}
	// Random assignment: silhouette near 0 or negative.
	rng := rand.New(rand.NewSource(4))
	random := make([]int, 90)
	for i := range random {
		random[i] = rng.Intn(3)
	}
	if s := Silhouette(x, random, 3); s > 0.3 {
		t.Fatalf("random clustering silhouette = %v", s)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("mismatched lengths must panic")
		}
	}()
	Silhouette(x, truth[:10], 3)
}

func TestFitLocalOnSubspaceMixture(t *testing.T) {
	ds, err := synthetic.SubspaceMixture(synthetic.SubspaceMixtureConfig{
		Name: "mix", N: 400, Dims: 30, Clusters: 4, LatentPerCluster: 3,
		ConceptStrength: 3, ClassSeparation: 1.5, CenterSpread: 8,
		NoiseStdDev: 1.2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	lr, err := FitLocal(ds.X, LocalConfig{
		Clusters: 4, Ordering: reduction.ByEigenvalue, MaxComponents: 6, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every cluster got members and a small local subspace.
	dims := lr.Dims()
	for c, k := range dims {
		if len(lr.Members[c]) == 0 {
			t.Fatalf("cluster %d empty", c)
		}
		if k < 1 || k > 6 {
			t.Fatalf("cluster %d retained %d dims", c, k)
		}
	}
	// Local reduced search beats a single global reduction of the same
	// total aggressiveness (the §3.1 claim).
	p, err := reduction.Fit(ds.X, reduction.Options{})
	if err != nil {
		t.Fatal(err)
	}
	globalK := 0
	for _, k := range dims {
		if k > globalK {
			globalK = k
		}
	}
	global := p.Transform(ds.X, p.TopK(reduction.ByEigenvalue, globalK))
	globalAcc := accuracyOn(global, ds.Labels)
	localAcc := lr.Accuracy(ds, 3)
	if localAcc <= globalAcc {
		t.Fatalf("local %.3f not above global %.3f at comparable aggressiveness", localAcc, globalAcc)
	}
}

func accuracyOn(x *linalg.Dense, labels []int) float64 {
	matches, total := 0, 0
	for i := 0; i < x.Rows(); i++ {
		best := make([]int, 0, 3)
		bestD := make([]float64, 0, 3)
		for j := 0; j < x.Rows(); j++ {
			if j == i {
				continue
			}
			d := sqDist(x.RawRow(i), x.RawRow(j))
			if len(best) < 3 {
				best = append(best, j)
				bestD = append(bestD, d)
				continue
			}
			worst := 0
			for w := 1; w < 3; w++ {
				if bestD[w] > bestD[worst] {
					worst = w
				}
			}
			if d < bestD[worst] {
				best[worst] = j
				bestD[worst] = d
			}
		}
		for _, j := range best {
			total++
			if labels[j] == labels[i] {
				matches++
			}
		}
	}
	return float64(matches) / float64(total)
}

func TestFitLocalValidation(t *testing.T) {
	x := linalg.NewDense(10, 3)
	if _, err := FitLocal(x, LocalConfig{Clusters: 0}); err == nil {
		t.Fatalf("Clusters=0 accepted")
	}
}

func TestFitLocalSmallClustersFallBackToRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := linalg.NewDense(12, 4)
	for i := 0; i < 12; i++ {
		for j := 0; j < 4; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
	}
	lr, err := FitLocal(x, LocalConfig{Clusters: 3, MinClusterSize: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for c := range lr.PCAs {
		if lr.PCAs[c] != nil {
			t.Fatalf("cluster %d should have fallen back to raw", c)
		}
		if len(lr.Members[c]) > 0 && lr.Reduced[c].Cols() != 4 {
			t.Fatalf("raw fallback changed dimensionality")
		}
	}
	// Search still works and returns exact raw-space neighbors.
	got := lr.KNN(x.Row(0), 3, 0)
	if len(got) != 3 {
		t.Fatalf("results = %v", got)
	}
}

func TestLocalKNNExcludeAndKBounds(t *testing.T) {
	ds, err := synthetic.SubspaceMixture(synthetic.SubspaceMixtureConfig{
		Name: "mix", N: 60, Dims: 8, Clusters: 2, LatentPerCluster: 2,
		ConceptStrength: 2, ClassSeparation: 1, CenterSpread: 5, NoiseStdDev: 0.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	lr, err := FitLocal(ds.X, LocalConfig{Clusters: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := lr.KNN(ds.X.Row(5), 4, 5)
	for _, nb := range res {
		if nb.Index == 5 {
			t.Fatalf("excluded point returned")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("k=0 must panic")
		}
	}()
	lr.KNN(ds.X.Row(0), 0, -1)
}

func TestSubspaceMixtureValidation(t *testing.T) {
	bad := []synthetic.SubspaceMixtureConfig{
		{N: 1, Dims: 4, Clusters: 1, LatentPerCluster: 1, ConceptStrength: 1},
		{N: 10, Dims: 0, Clusters: 1, LatentPerCluster: 1, ConceptStrength: 1},
		{N: 10, Dims: 4, Clusters: 0, LatentPerCluster: 1, ConceptStrength: 1},
		{N: 10, Dims: 4, Clusters: 1, LatentPerCluster: 5, ConceptStrength: 1},
		{N: 10, Dims: 4, Clusters: 1, LatentPerCluster: 1, ConceptStrength: 0},
		{N: 10, Dims: 4, Clusters: 1, LatentPerCluster: 1, ConceptStrength: 1, NoiseStdDev: -1},
	}
	for i, cfg := range bad {
		if _, err := synthetic.SubspaceMixture(cfg); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestSubspaceMixtureStructure(t *testing.T) {
	ds, err := synthetic.SubspaceMixture(synthetic.SubspaceMixtureConfig{
		Name: "mix", N: 200, Dims: 20, Clusters: 4, LatentPerCluster: 2,
		ConceptStrength: 3, ClassSeparation: 1, CenterSpread: 10, NoiseStdDev: 0.3, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.NumClasses() != 2 {
		t.Fatalf("classes = %d (labels must be within-cluster classes, not cluster ids)", ds.NumClasses())
	}
	// k-means with the true cluster count finds well-separated cells.
	km, err := KMeans(ds.X, KMeansConfig{K: 4, Seed: 1, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s := Silhouette(ds.X, km.Assign, 4); s < 0.3 {
		t.Fatalf("subspace clusters not separable: silhouette %v", s)
	}
}
