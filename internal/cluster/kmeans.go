// Package cluster implements the extension the paper sketches in §3.1: for
// data sets whose implicit dimensionality is too high for a single global
// reduction (all eigenvectors have similar coherence probability), a
// generalized projected clustering "may be used in order to decompose the
// data into subsets with low implicit dimensionality and then apply the
// techniques discussed in this paper" per subset (following references [2]
// and [6], local dimensionality reduction).
//
// The package provides the clustering substrate (k-means with k-means++
// seeding) and LocalReduction, which fits an independent PCA — with
// coherence analysis — inside every cluster and answers similarity queries
// by searching the per-cluster subspaces.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// KMeansResult holds a clustering of an n x d point matrix.
type KMeansResult struct {
	// Centroids is a k x d matrix of cluster centers.
	Centroids *linalg.Dense
	// Assign[i] is the cluster of row i.
	Assign []int
	// Sizes[c] is the number of points in cluster c.
	Sizes []int
	// Inertia is the total squared distance of points to their centroids.
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// KMeansConfig configures KMeans.
type KMeansConfig struct {
	// K is the number of clusters (required, >= 1).
	K int
	// MaxIterations bounds the Lloyd loop (0 selects 100).
	MaxIterations int
	// Seed drives the k-means++ initialization.
	Seed int64
	// Restarts runs the whole algorithm this many times with different
	// seeds and keeps the lowest-inertia result (0 selects 1).
	Restarts int
}

// KMeans clusters the rows of x with Lloyd's algorithm and k-means++
// seeding.
func KMeans(x *linalg.Dense, cfg KMeansConfig) (*KMeansResult, error) {
	n, _ := x.Dims()
	if cfg.K < 1 {
		return nil, fmt.Errorf("cluster: K=%d must be >= 1", cfg.K)
	}
	if cfg.K > n {
		return nil, fmt.Errorf("cluster: K=%d exceeds %d points", cfg.K, n)
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 100
	}
	restarts := cfg.Restarts
	if restarts <= 0 {
		restarts = 1
	}
	var best *KMeansResult
	for r := 0; r < restarts; r++ {
		res := kmeansOnce(x, cfg.K, cfg.MaxIterations, cfg.Seed+int64(r))
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

func kmeansOnce(x *linalg.Dense, k, maxIter int, seed int64) *KMeansResult {
	n, d := x.Dims()
	rng := rand.New(rand.NewSource(seed))
	centroids := seedPlusPlus(x, k, rng)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	sizes := make([]int, k)
	inertia := 0.0
	iters := 0
	// The assignment step is the per-iteration hot spot: points × centroids
	// squared distances. Run it as one blocked GEMM per iteration through the
	// norm-cache identity d²(x,c) = ‖x‖² + ‖c‖² − 2⟨x,c⟩. Point norms are
	// loop-invariant and the per-point argmin only needs ‖c‖² − 2⟨x,c⟩; ‖x‖²
	// re-enters when accumulating inertia (clamped at 0 against rounding).
	xn := linalg.RowNormsSq(x)
	gram := linalg.NewDense(n, k)
	for iter := 0; iter < maxIter; iter++ {
		iters = iter + 1
		changed := false
		inertia = 0
		for c := range sizes {
			sizes[c] = 0
		}
		cn := linalg.RowNormsSq(centroids)
		linalg.MulTInto(gram, x, centroids)
		for i := 0; i < n; i++ {
			grow := gram.RawRow(i)
			bestC, bestS := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if s := cn[c] - 2*grow[c]; s < bestS {
					bestC, bestS = c, s
				}
			}
			if assign[i] != bestC {
				assign[i] = bestC
				changed = true
			}
			sizes[bestC]++
			if d2 := xn[i] + bestS; d2 > 0 {
				inertia += d2
			}
		}
		if !changed {
			break
		}
		// Recompute centroids; re-seed any emptied cluster at the point
		// farthest from its centroid.
		next := linalg.NewDense(k, d)
		for i := 0; i < n; i++ {
			linalg.Axpy(1, x.RawRow(i), next.RawRow(assign[i]))
		}
		for c := 0; c < k; c++ {
			if sizes[c] == 0 {
				far := farthestPoint(x, centroids, assign)
				next.SetRow(c, x.Row(far))
				continue
			}
			linalg.ScaleVec(1/float64(sizes[c]), next.RawRow(c))
		}
		centroids = next
	}
	return &KMeansResult{
		Centroids:  centroids,
		Assign:     assign,
		Sizes:      sizes,
		Inertia:    inertia,
		Iterations: iters,
	}
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting.
func seedPlusPlus(x *linalg.Dense, k int, rng *rand.Rand) *linalg.Dense {
	n, d := x.Dims()
	centroids := linalg.NewDense(k, d)
	first := rng.Intn(n)
	centroids.SetRow(0, x.Row(first))
	dist := make([]float64, n)
	for i := 0; i < n; i++ {
		dist[i] = sqDist(x.RawRow(i), centroids.RawRow(0))
	}
	for c := 1; c < k; c++ {
		total := 0.0
		for _, v := range dist {
			total += v
		}
		var pick int
		if total == 0 {
			pick = rng.Intn(n) // all points coincide with chosen centroids
		} else {
			r := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, v := range dist {
				acc += v
				if acc >= r {
					pick = i
					break
				}
			}
		}
		centroids.SetRow(c, x.Row(pick))
		for i := 0; i < n; i++ {
			if dd := sqDist(x.RawRow(i), centroids.RawRow(c)); dd < dist[i] {
				dist[i] = dd
			}
		}
	}
	return centroids
}

func farthestPoint(x, centroids *linalg.Dense, assign []int) int {
	far, farD := 0, -1.0
	for i := 0; i < x.Rows(); i++ {
		d := sqDist(x.RawRow(i), centroids.RawRow(assign[i]))
		if d > farD {
			far, farD = i, d
		}
	}
	return far
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Silhouette returns the mean silhouette coefficient of the clustering — a
// standard internal quality measure in [-1, 1]. Clusters of size 1
// contribute 0. O(n²·d); intended for evaluation, not production loops.
func Silhouette(x *linalg.Dense, assign []int, k int) float64 {
	n := x.Rows()
	if n != len(assign) {
		panic(fmt.Sprintf("cluster: %d assignments for %d points", len(assign), n))
	}
	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	total := 0.0
	sums := make([]float64, k)
	for i := 0; i < n; i++ {
		for c := range sums {
			sums[c] = 0
		}
		ri := x.RawRow(i)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sums[assign[j]] += math.Sqrt(sqDist(ri, x.RawRow(j)))
		}
		own := assign[i]
		if sizes[own] <= 1 {
			continue
		}
		a := sums[own] / float64(sizes[own]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || sizes[c] == 0 {
				continue
			}
			if v := sums[c] / float64(sizes[c]); v < b {
				b = v
			}
		}
		if math.IsInf(b, 1) {
			continue // single non-empty cluster
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
	}
	return total / float64(n)
}
