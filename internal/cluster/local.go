package cluster

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/linalg"
	"repro/internal/reduction"
)

// LocalReduction is the per-cluster dimensionality reduction of the paper's
// §3.1 extension: the data is partitioned with k-means, an independent PCA
// (with coherence analysis) is fitted inside every cluster, and each cluster
// keeps only its own most meaningful directions. Queries are answered by
// projecting the query into every cluster's subspace and merging candidate
// neighbors — the local analogue of reduced-space search (cf. references
// [2] and [6]).
type LocalReduction struct {
	// Clustering is the underlying partition.
	Clustering *KMeansResult
	// Members[c] lists the original row indices in cluster c.
	Members [][]int
	// PCAs[c] is the transform fitted on cluster c (nil for clusters too
	// small to fit, which fall back to raw distances).
	PCAs []*reduction.PCA
	// Components[c] holds the component indices cluster c retains.
	Components [][]int
	// Reduced[c] is cluster c's projected member matrix (or the raw rows
	// when PCAs[c] is nil).
	Reduced []*linalg.Dense
}

// LocalConfig configures FitLocal.
type LocalConfig struct {
	// Clusters is the number of k-means cells (required).
	Clusters int
	// Ordering selects components inside each cluster (ByCoherence
	// implements the paper's rule locally).
	Ordering reduction.Ordering
	// MaxComponents caps the per-cluster subspace dimensionality; the gap
	// heuristic may choose fewer. 0 selects d/2.
	MaxComponents int
	// FixedComponents, when positive, retains exactly this many components
	// in every cluster (bounded by the cluster's dimensionality) instead of
	// the scatter-gap heuristic. Use when the per-cluster implicit
	// dimensionality is known; small clusters make the gap heuristic
	// unreliable (sampling noise inflates the noise eigenvalue edge).
	FixedComponents int
	// Scaling is applied inside each cluster before the decomposition.
	Scaling reduction.Scaling
	// MinClusterSize is the smallest cluster that gets its own transform;
	// smaller clusters keep raw coordinates. 0 selects 2·d points or 10,
	// whichever is larger... capped at the cluster content. Practically:
	// clusters below this size are searched in the original space.
	MinClusterSize int
	// Seed drives k-means.
	Seed int64
}

// FitLocal partitions the data and fits a reduction per cluster.
func FitLocal(x *linalg.Dense, cfg LocalConfig) (*LocalReduction, error) {
	n, d := x.Dims()
	if cfg.Clusters < 1 {
		return nil, fmt.Errorf("cluster: Clusters=%d must be >= 1", cfg.Clusters)
	}
	if cfg.MaxComponents <= 0 {
		cfg.MaxComponents = (d + 1) / 2
	}
	if cfg.MinClusterSize <= 0 {
		cfg.MinClusterSize = 10
	}
	km, err := KMeans(x, KMeansConfig{K: cfg.Clusters, Seed: cfg.Seed, Restarts: 3})
	if err != nil {
		return nil, err
	}
	lr := &LocalReduction{
		Clustering: km,
		Members:    make([][]int, cfg.Clusters),
		PCAs:       make([]*reduction.PCA, cfg.Clusters),
		Components: make([][]int, cfg.Clusters),
		Reduced:    make([]*linalg.Dense, cfg.Clusters),
	}
	for i := 0; i < n; i++ {
		c := km.Assign[i]
		lr.Members[c] = append(lr.Members[c], i)
	}
	for c := 0; c < cfg.Clusters; c++ {
		if len(lr.Members[c]) == 0 {
			continue
		}
		sub := x.SliceRows(lr.Members[c])
		if len(lr.Members[c]) < cfg.MinClusterSize {
			lr.Reduced[c] = sub // too small: raw coordinates
			continue
		}
		p, err := reduction.Fit(sub, reduction.Options{
			Scaling:          cfg.Scaling,
			ComputeCoherence: cfg.Ordering == reduction.ByCoherence,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster %d: %w", c, err)
		}
		order := p.Order(cfg.Ordering)
		var k int
		if cfg.FixedComponents > 0 {
			k = cfg.FixedComponents
			if k > d {
				k = d
			}
		} else {
			vals := make([]float64, d)
			for i, idx := range order {
				if cfg.Ordering == reduction.ByCoherence {
					vals[i] = p.Coherence[idx]
				} else {
					vals[i] = p.Eigenvalues[idx]
				}
			}
			k = reduction.GapCutoff(vals, 1, cfg.MaxComponents)
		}
		lr.PCAs[c] = p
		lr.Components[c] = order[:k]
		lr.Reduced[c] = p.Transform(sub, lr.Components[c])
	}
	return lr, nil
}

// Dims returns the per-cluster retained dimensionalities (0 for empty
// clusters).
func (lr *LocalReduction) Dims() []int {
	out := make([]int, len(lr.Reduced))
	for c, m := range lr.Reduced {
		if m != nil {
			out[c] = m.Cols()
		}
	}
	return out
}

// KNN returns the k nearest neighbors of a raw-space query: the query is
// projected into each cluster's subspace and the per-cluster candidates are
// merged by their subspace distances. Subspace distances from different
// clusters are not a single global metric — this is the deliberate trade of
// local reduction (quality comes from each cluster's own concepts) — so the
// merged ranking is heuristic in exchange for searching only meaningful
// directions. exclude skips one original row index (leave-one-out).
func (lr *LocalReduction) KNN(query []float64, k int, exclude int) []knn.Neighbor {
	if k <= 0 {
		panic(fmt.Sprintf("cluster: k=%d must be positive", k))
	}
	c := knn.NewCollector(k)
	for ci, members := range lr.Members {
		if len(members) == 0 {
			continue
		}
		var q []float64
		if lr.PCAs[ci] != nil {
			q = lr.PCAs[ci].TransformPoint(query, lr.Components[ci])
		} else {
			q = query
		}
		red := lr.Reduced[ci]
		for mi, orig := range members {
			if orig == exclude {
				continue
			}
			c.Offer(orig, dist(red.RawRow(mi), q))
		}
	}
	return c.Results()
}

func dist(a, b []float64) float64 { return math.Sqrt(sqDist(a, b)) }

// Accuracy runs the feature-stripping measurement through the local
// reduction: every point of the original data set queries its k nearest
// neighbors via KNN and class matches are counted, exactly as
// eval.PredictionAccuracy does globally.
func (lr *LocalReduction) Accuracy(ds *dataset.Dataset, k int) float64 {
	matches, total := 0, 0
	for i := 0; i < ds.N(); i++ {
		res := lr.KNN(ds.X.RawRow(i), k, i)
		for _, nb := range res {
			total++
			if ds.Labels[nb.Index] == ds.Labels[i] {
				matches++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(matches) / float64(total)
}
