package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/linalg"
)

// LoadConfig parameterizes RunLoad, the closed-loop load generator behind
// `drtool -serve-bench`.
type LoadConfig struct {
	// Queries is the total number of requests to issue.
	Queries int
	// Concurrency is the number of closed-loop client goroutines.
	Concurrency int
	// QPS throttles the aggregate request rate (0 = unthrottled: every
	// client issues its next request as soon as the previous returns).
	QPS float64
	// Deadline is the per-request context deadline (0 = none).
	Deadline time.Duration
	// K is the neighbor count per query.
	K int
	// Mode selects the search path (ModeAuto exercises degradation).
	Mode Mode
}

// withDefaults fills zero fields.
func (c LoadConfig) withDefaults() LoadConfig {
	if c.Queries <= 0 {
		c.Queries = 10000
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 32
	}
	if c.K <= 0 {
		c.K = 10
	}
	return c
}

// LoadReport is the outcome accounting of one RunLoad. Every issued request
// lands in exactly one of Served / Overloaded / DeadlineExceeded /
// OtherErrors; Lost and Duplicated count bookkeeping violations and must be
// zero — they are what "no request is dropped or answered twice" means
// operationally.
type LoadReport struct {
	Queries     int
	Concurrency int
	Mode        string

	Served           int
	Exact            int
	Approx           int
	Degraded         int
	Overloaded       int
	DeadlineExceeded int
	OtherErrors      int

	// Lost counts request slots that finished with no recorded outcome;
	// Duplicated counts slots with more than one. Both must be zero.
	Lost       int
	Duplicated int

	Elapsed    time.Duration
	Throughput float64 // served requests per second

	// MeanWait is the average queued time of served requests.
	MeanWait time.Duration
}

// RunLoad drives the engine with cfg.Concurrency closed-loop clients
// issuing cfg.Queries requests total, cycling deterministically through the
// rows of queries. Request i is owned by client i%Concurrency, so outcome
// slots are written without coordination and double-completion is
// structurally detectable. Per-request contexts derive from ctx, so the
// caller's cancellation propagates into every in-flight request.
func RunLoad(ctx context.Context, e *Engine, queries *linalg.Dense, cfg LoadConfig) (LoadReport, error) {
	c := cfg.withDefaults()
	nq := queries.Rows()
	if nq == 0 {
		return LoadReport{}, fmt.Errorf("serve: load generator needs a non-empty query set")
	}
	if queries.Cols() != e.Dims() {
		return LoadReport{}, fmt.Errorf("serve: load queries have %d dims, engine serves %d", queries.Cols(), e.Dims())
	}

	const (
		outcomeNone = iota
		outcomeServed
		outcomeServedApprox
		outcomeServedDegraded
		outcomeOverloaded
		outcomeDeadline
		outcomeError
	)
	outcomes := make([]int8, c.Queries)
	writes := make([]int32, c.Queries) // per-slot completion count: must end at 1
	waits := make([]time.Duration, c.Queries)

	// Optional aggregate pacing: each client waits for its slot on a
	// shared ticker. Closed-loop otherwise.
	var tick <-chan time.Time
	if c.QPS > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / c.QPS))
		defer t.Stop()
		tick = t.C
	}

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(c.Concurrency)
	for w := 0; w < c.Concurrency; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < c.Queries; i += c.Concurrency {
				if tick != nil {
					<-tick
				}
				rctx := ctx
				cancel := func() {}
				if c.Deadline > 0 {
					rctx, cancel = context.WithTimeout(ctx, c.Deadline)
				}
				res, err := e.SearchMode(rctx, queries.RawRow(i%nq), c.K, c.Mode)
				cancel()
				writes[i]++
				switch {
				case err == nil:
					waits[i] = res.Wait
					switch {
					case res.Degraded:
						outcomes[i] = outcomeServedDegraded
					case res.Approx:
						outcomes[i] = outcomeServedApprox
					default:
						outcomes[i] = outcomeServed
					}
				case errors.Is(err, ErrOverloaded):
					outcomes[i] = outcomeOverloaded
				case errors.Is(err, ErrDeadline):
					outcomes[i] = outcomeDeadline
				default:
					outcomes[i] = outcomeError
				}
			}
		}(w)
	}
	wg.Wait()

	rep := LoadReport{
		Queries:     c.Queries,
		Concurrency: c.Concurrency,
		Mode:        c.Mode.String(),
		Elapsed:     time.Since(start),
	}
	var waitSum time.Duration
	for i, o := range outcomes {
		switch o {
		case outcomeServed, outcomeServedApprox, outcomeServedDegraded:
			rep.Served++
			waitSum += waits[i]
			switch o {
			case outcomeServed:
				rep.Exact++
			case outcomeServedApprox:
				rep.Approx++
			case outcomeServedDegraded:
				rep.Approx++
				rep.Degraded++
			}
		case outcomeOverloaded:
			rep.Overloaded++
		case outcomeDeadline:
			rep.DeadlineExceeded++
		case outcomeError:
			rep.OtherErrors++
		default:
			rep.Lost++
		}
		if writes[i] > 1 {
			rep.Duplicated++
		}
	}
	if rep.Served > 0 {
		rep.MeanWait = waitSum / time.Duration(rep.Served)
		rep.Throughput = float64(rep.Served) / rep.Elapsed.Seconds()
	}
	return rep, nil
}
