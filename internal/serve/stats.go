package serve

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Latency histogram shape: log10(seconds) over [100ns, 10s) at 20 bins per
// decade. Fixed buckets keep the recorder O(1) per request and O(bins)
// memory no matter how many requests it absorbs; quantiles are read back
// with stats.Histogram.Quantile at one-bin (≈12%) resolution.
const (
	latMinLog = -7.0
	latMaxLog = 1.0
	latBins   = 160
)

// latEpochCap bounds how many per-epoch histograms the recorder retains.
// Older epochs fold into one historical histogram, so aggregate quantiles
// stay exact over the engine's whole life while memory stays O(cap·bins)
// even under compaction-heavy workloads that burn an epoch per second.
const latEpochCap = 32

// counters is the engine's atomic counter block.
type counters struct {
	served   atomic.Uint64
	rejected atomic.Uint64
	deadline atomic.Uint64
	degraded atomic.Uint64
	exact    atomic.Uint64
	approx   atomic.Uint64
	swaps    atomic.Uint64
	// Mutation-path counters. These are cumulative over the engine's life,
	// deliberately independent of the snapshot pointer: a compaction or
	// Swap installs fresh shards (whose per-shard tallies restart), but
	// the mutation history must survive the swap or the load generator's
	// accounting would observe inserts "vanishing" at every compaction.
	inserts     atomic.Uint64
	deletes     atomic.Uint64
	compactions atomic.Uint64
	refits      atomic.Uint64
}

// latencyRecorder keeps one fixed-bucket histogram per snapshot epoch. Keying
// by epoch makes the recorder snapshot-swap-safe: a request records into the
// histogram of the epoch that served it, so a compaction installing epoch
// e+1 mid-flight never splices a stale request's latency into the new
// generation's numbers, and per-epoch percentiles remain readable after the
// swap. Aggregate quantiles merge all retained epochs plus the historical
// fold, which is exact because histogram bins are position-aligned.
type latencyRecorder struct {
	mu     sync.Mutex
	epochs map[uint64]*stats.Histogram
	order  []uint64        // epochs in first-record order, oldest first
	folded *stats.Histogram // merged histograms of evicted epochs
}

func newLatencyRecorder() *latencyRecorder {
	return &latencyRecorder{epochs: make(map[uint64]*stats.Histogram, latEpochCap)}
}

// record adds one request's total latency under the epoch that served it.
func (l *latencyRecorder) record(epoch uint64, d time.Duration) {
	sec := d.Seconds()
	if sec <= 0 {
		sec = 1e-9 // clock-resolution floor; clamps into the first bucket
	}
	x := math.Log10(sec)
	l.mu.Lock()
	h := l.epochs[epoch]
	if h == nil {
		if len(l.order) >= latEpochCap {
			// Fold the oldest epoch into the historical histogram rather
			// than dropping it: aggregate quantiles must cover every
			// request ever served.
			old := l.order[0]
			l.order = l.order[1:]
			if l.folded == nil {
				l.folded = stats.NewHistogram(latMinLog, latMaxLog, latBins)
			}
			l.folded.Merge(l.epochs[old])
			delete(l.epochs, old)
		}
		h = stats.NewHistogram(latMinLog, latMaxLog, latBins)
		l.epochs[epoch] = h
		l.order = append(l.order, epoch)
	}
	h.Add(x)
	l.mu.Unlock()
}

// quantile returns the q-quantile latency over every epoch (retained and
// folded), or 0 before any request.
func (l *latencyRecorder) quantile(q float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := stats.NewHistogram(latMinLog, latMaxLog, latBins)
	if l.folded != nil {
		m.Merge(l.folded)
	}
	for _, h := range l.epochs {
		m.Merge(h)
	}
	if m.Total() == 0 {
		return 0
	}
	return time.Duration(math.Pow(10, m.Quantile(q)) * float64(time.Second))
}

// epochQuantile returns the q-quantile latency of one epoch's requests, or 0
// if that epoch recorded nothing (or has been folded into history).
func (l *latencyRecorder) epochQuantile(epoch uint64, q float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	h := l.epochs[epoch]
	if h == nil || h.Total() == 0 {
		return 0
	}
	return time.Duration(math.Pow(10, h.Quantile(q)) * float64(time.Second))
}

// EngineStats is a point-in-time snapshot of the engine's counters.
type EngineStats struct {
	// Served counts requests answered with a result. Exact + Approx ==
	// Served; Degraded counts the subset of Approx that admission control
	// downgraded.
	Served, Exact, Approx, Degraded uint64
	// Rejected counts ErrOverloaded admissions — query-queue overflow plus
	// Insert rejections at the MaxDelta cap; Deadline counts requests whose
	// context expired before a result was returned.
	Rejected, Deadline uint64
	// Swaps counts snapshot replacements (Swap, SwapStore, and compactor
	// installs); Epoch is the live generation.
	Swaps, Epoch uint64
	// Inserts and Deletes count acknowledged mutations over the engine's
	// life; Compactions counts background/explicit compaction installs and
	// BasisRefits counts drift-triggered PCA basis refreezes. All four are
	// cumulative across snapshot swaps.
	Inserts, Deletes, Compactions, BasisRefits uint64
	// DeltaRows is the live (inserted, not yet compacted or deleted) delta
	// depth at sampling time; Tombstones counts pending deletions not yet
	// folded away by a compaction.
	DeltaRows, Tombstones int
	// QueueDepth/QueueCap describe the admission queue at sampling time.
	QueueDepth, QueueCap int
	// Shards is the live partition count. ShardTasks[i] counts scans
	// executed by shard i this generation; ShardCandidates[i] counts the
	// approximate-path points shard i refined with exact distances.
	Shards          int
	ShardTasks      []uint64
	ShardCandidates []uint64
	// LatencyP50/LatencyP99 are served-request latency percentiles over
	// every epoch (zero before the first served request);
	// EpochLatencyP50/EpochLatencyP99 cover only requests the live epoch
	// served (zero until it serves one).
	LatencyP50, LatencyP99           time.Duration
	EpochLatencyP50, EpochLatencyP99 time.Duration
	// DriftBaselineEnergy/DriftCapturedEnergy are the PCA basis's captured
	// variance fraction at freeze time and at the last decay check (zero
	// when drift tracking is disabled).
	DriftBaselineEnergy, DriftCapturedEnergy float64
}

// Stats samples the engine's counters. Per-shard numbers describe the live
// snapshot only (a Swap starts fresh shard counters with the new shards);
// mutation counters and latency percentiles are cumulative across swaps.
func (e *Engine) Stats() EngineStats {
	e.mut.mu.RLock()
	snap := e.snap.Load()
	deltaRows := e.mut.live
	tombstones := len(e.mut.snapDead) + len(e.mut.deltaDead)
	e.mut.mu.RUnlock()
	s := EngineStats{
		Served:          e.counters.served.Load(),
		Exact:           e.counters.exact.Load(),
		Approx:          e.counters.approx.Load(),
		Degraded:        e.counters.degraded.Load(),
		Rejected:        e.counters.rejected.Load(),
		Deadline:        e.counters.deadline.Load(),
		Swaps:           e.counters.swaps.Load(),
		Inserts:         e.counters.inserts.Load(),
		Deletes:         e.counters.deletes.Load(),
		Compactions:     e.counters.compactions.Load(),
		BasisRefits:     e.counters.refits.Load(),
		DeltaRows:       deltaRows,
		Tombstones:      tombstones,
		Epoch:           snap.epoch,
		QueueDepth:      len(e.queue),
		QueueCap:        cap(e.queue),
		Shards:          len(snap.shards),
		LatencyP50:      e.lat.quantile(0.50),
		LatencyP99:      e.lat.quantile(0.99),
		EpochLatencyP50: e.lat.epochQuantile(snap.epoch, 0.50),
		EpochLatencyP99: e.lat.epochQuantile(snap.epoch, 0.99),
	}
	if e.drift != nil {
		s.DriftBaselineEnergy, s.DriftCapturedEnergy = e.drift.energies()
	}
	s.ShardTasks = make([]uint64, len(snap.shards))
	s.ShardCandidates = make([]uint64, len(snap.shards))
	for i, sh := range snap.shards {
		s.ShardTasks[i] = sh.tasks.Load()
		s.ShardCandidates[i] = sh.candidates.Load()
	}
	return s
}
