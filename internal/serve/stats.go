package serve

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Latency histogram shape: log10(seconds) over [100ns, 10s) at 20 bins per
// decade. Fixed buckets keep the recorder O(1) per request and O(bins)
// memory no matter how many requests it absorbs; quantiles are read back
// with stats.Histogram.Quantile at one-bin (≈12%) resolution.
const (
	latMinLog = -7.0
	latMaxLog = 1.0
	latBins   = 160
)

// counters is the engine's atomic counter block.
type counters struct {
	served   atomic.Uint64
	rejected atomic.Uint64
	deadline atomic.Uint64
	degraded atomic.Uint64
	exact    atomic.Uint64
	approx   atomic.Uint64
	swaps    atomic.Uint64
}

// latencyRecorder is a mutex-guarded fixed-bucket histogram of request
// latencies. A single short critical section per request is cheap next to a
// shard scan; the recorder exists so EngineStats can report percentiles
// without retaining per-request samples.
type latencyRecorder struct {
	mu sync.Mutex
	h  *stats.Histogram
}

func newLatencyRecorder() *latencyRecorder {
	return &latencyRecorder{h: stats.NewHistogram(latMinLog, latMaxLog, latBins)}
}

// record adds one request's total latency.
func (l *latencyRecorder) record(d time.Duration) {
	sec := d.Seconds()
	if sec <= 0 {
		sec = 1e-9 // clock-resolution floor; clamps into the first bucket
	}
	l.mu.Lock()
	l.h.Add(math.Log10(sec))
	l.mu.Unlock()
}

// quantile returns the q-quantile latency, or 0 before any request.
func (l *latencyRecorder) quantile(q float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.h.Total() == 0 {
		return 0
	}
	return time.Duration(math.Pow(10, l.h.Quantile(q)) * float64(time.Second))
}

// EngineStats is a point-in-time snapshot of the engine's counters.
type EngineStats struct {
	// Served counts requests answered with a result. Exact + Approx ==
	// Served; Degraded counts the subset of Approx that admission control
	// downgraded.
	Served, Exact, Approx, Degraded uint64
	// Rejected counts ErrOverloaded admissions (queue full); Deadline
	// counts requests whose context expired before a result was returned.
	Rejected, Deadline uint64
	// Swaps counts snapshot replacements; Epoch is the live generation.
	Swaps, Epoch uint64
	// QueueDepth/QueueCap describe the admission queue at sampling time.
	QueueDepth, QueueCap int
	// Shards is the live partition count. ShardTasks[i] counts scans
	// executed by shard i this generation; ShardCandidates[i] counts the
	// approximate-path points shard i refined with exact distances.
	Shards          int
	ShardTasks      []uint64
	ShardCandidates []uint64
	// LatencyP50/LatencyP99 are served-request latency percentiles from
	// the fixed-bucket histogram (zero before the first served request).
	LatencyP50, LatencyP99 time.Duration
}

// Stats samples the engine's counters. Per-shard numbers describe the live
// snapshot only (a Swap starts fresh shard counters with the new shards).
func (e *Engine) Stats() EngineStats {
	snap := e.snap.Load()
	s := EngineStats{
		Served:     e.counters.served.Load(),
		Exact:      e.counters.exact.Load(),
		Approx:     e.counters.approx.Load(),
		Degraded:   e.counters.degraded.Load(),
		Rejected:   e.counters.rejected.Load(),
		Deadline:   e.counters.deadline.Load(),
		Swaps:      e.counters.swaps.Load(),
		Epoch:      snap.epoch,
		QueueDepth: len(e.queue),
		QueueCap:   cap(e.queue),
		Shards:     len(snap.shards),
		LatencyP50: e.lat.quantile(0.50),
		LatencyP99: e.lat.quantile(0.99),
	}
	s.ShardTasks = make([]uint64, len(snap.shards))
	s.ShardCandidates = make([]uint64, len(snap.shards))
	for i, sh := range snap.shards {
		s.ShardTasks[i] = sh.tasks.Load()
		s.ShardCandidates[i] = sh.candidates.Load()
	}
	return s
}
