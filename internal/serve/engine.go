package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/index/lsh"
	"repro/internal/knn"
	"repro/internal/linalg"
)

// Engine is a sharded, admission-controlled query server over one dataset
// snapshot. All methods are safe for concurrent use; Close releases the
// worker pools.
type Engine struct {
	cfg  Config
	snap atomic.Pointer[snapshot]

	queue  chan *request
	shardq chan shardTask

	// closeMu serializes admission against Close: Search sends on queue
	// only under the read lock with closed false, so Close can safely
	// close(queue) once it holds the write lock and flips closed.
	closeMu sync.RWMutex
	closed  bool

	workers      sync.WaitGroup // request workers
	shardWorkers sync.WaitGroup

	counters counters
	lat      *latencyRecorder
}

// snapshot is one immutable generation of the serving state. Queries load
// it once per request, so a Swap never tears a request across two
// generations. data is the in-memory matrix for dense-backed snapshots and
// nil for store-backed ones; n and d describe the snapshot either way.
type snapshot struct {
	epoch  uint64
	n, d   int
	data   *linalg.Dense
	shards []*shard
}

// backend is the per-shard search implementation. The engine's fan-out,
// admission control, and merge are backend-agnostic: any backend that
// returns per-shard top-k lists with global indices in the canonical
// (distance, index) order composes with the rest of the pipeline. Two
// implementations exist: denseShard (float64 matrix + norms + LSH) and
// quantShard (mmap-backed quantized store, internal/store).
type backend interface {
	// searchExact returns the shard's exact top-k.
	searchExact(query []float64, k int) shardOut
	// searchApprox returns an approximate top-k plus the number of
	// candidates it refined with exact distances.
	searchApprox(query []float64, k, probes int) shardOut
}

// shard is one contiguous partition [lo, hi) of the snapshot's rows,
// delegating scans to its backend.
type shard struct {
	lo, hi int
	be     backend

	// candidates accumulates approximate-path refinement work executed on
	// this shard (for EngineStats.ShardCandidates).
	candidates atomic.Uint64
	// tasks counts shard scans executed (exact or approximate).
	tasks atomic.Uint64
}

// denseShard is the in-memory backend: a view of the snapshot matrix
// (shared backing array, so global row i is local row i-lo and distance
// kernels read the same floats the unsharded path would), cached squared
// row norms, and the shard's LSH tables.
type denseShard struct {
	lo    int
	data  *linalg.Dense
	norms []float64
	lsh   *lsh.Index
}

// request travels through the admission queue.
type request struct {
	ctx      context.Context
	query    []float64
	k        int
	mode     Mode
	degraded bool
	admitted time.Time
	resp     chan response // buffered(1): workers never block responding
}

// response is what a worker hands back to the waiting caller.
type response struct {
	res Result
	err error
}

// shardTask is one shard's share of a fanned-out request.
type shardTask struct {
	sh     *shard
	query  []float64
	k      int
	approx bool
	probes int
	out    chan<- shardOut // buffered(len(shards)): sends never block
}

// shardOut carries a shard's partial top-k (global indices).
type shardOut struct {
	neigh      []knn.Neighbor
	candidates int
}

// New builds an engine over the rows of data and starts its worker pools.
// The matrix is retained, not copied; it must not be mutated while the
// engine serves (use Swap to install new data).
func New(data *linalg.Dense, cfg Config) (*Engine, error) {
	n, d := data.Dims()
	if n == 0 || d == 0 {
		return nil, fmt.Errorf("serve: cannot serve %dx%d data", n, d)
	}
	c := cfg.withDefaults(n, runtime.GOMAXPROCS(0))
	e := newEngine(c)
	e.snap.Store(buildSnapshot(data, c, 1))
	e.start()
	return e, nil
}

// newEngine allocates an engine shell from a resolved config; the caller
// installs the first snapshot and calls start.
func newEngine(c Config) *Engine {
	return &Engine{
		cfg:    c,
		queue:  make(chan *request, c.QueueDepth),
		shardq: make(chan shardTask, c.Shards*c.Workers),
		lat:    newLatencyRecorder(),
	}
}

// start launches the request and shard worker pools.
func (e *Engine) start() {
	e.workers.Add(e.cfg.Workers)
	for w := 0; w < e.cfg.Workers; w++ {
		//drlint:ignore goroutinehygiene long-lived server pool: each worker defers workers.Done and Close joins via workers.Wait after closing the queue
		go e.requestWorker()
	}
	e.shardWorkers.Add(e.cfg.ShardWorkers)
	for w := 0; w < e.cfg.ShardWorkers; w++ {
		//drlint:ignore goroutinehygiene long-lived server pool: each worker defers shardWorkers.Done and Close joins via shardWorkers.Wait after closing shardq
		go e.shardWorker()
	}
}

// buildSnapshot partitions data into cfg.Shards contiguous shards and
// builds each shard's norm cache and LSH tables. Shard i's hash family is
// seeded by a splitmix64 derivation of cfg.LSH.Seed, so the snapshot is
// byte-deterministic for a fixed config.
func buildSnapshot(data *linalg.Dense, cfg Config, epoch uint64) *snapshot {
	n := data.Rows()
	snap := &snapshot{epoch: epoch, n: n, d: data.Cols(), data: data, shards: make([]*shard, cfg.Shards)}
	for s, r := range shardRanges(n, cfg.Shards) {
		lo, hi := r[0], r[1]
		view := data.RowSlice(lo, hi)
		shardCfg := cfg.LSH
		shardCfg.Seed = shardSeed(cfg.LSH.Seed, s)
		snap.shards[s] = &shard{
			lo: lo,
			hi: hi,
			be: &denseShard{
				lo:    lo,
				data:  view,
				norms: linalg.RowNormsSq(view),
				lsh:   lsh.Build(view, shardCfg),
			},
		}
	}
	return snap
}

// shardRanges returns the balanced contiguous partition of n rows into p
// [lo, hi) ranges.
func shardRanges(n, p int) [][2]int {
	out := make([][2]int, p)
	base, extra := n/p, n%p
	lo := 0
	for s := 0; s < p; s++ {
		hi := lo + base
		if s < extra {
			hi++
		}
		out[s] = [2]int{lo, hi}
		lo = hi
	}
	return out
}

// shardSeed expands the root seed into decorrelated per-shard seeds
// (splitmix64 step, matching the LSH index's own table-seed derivation).
func shardSeed(root int64, s int) int64 {
	z := uint64(root) + (uint64(s)+1)*0xD1B54A32D192ED03
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Epoch returns the live snapshot's generation number.
func (e *Engine) Epoch() uint64 { return e.snap.Load().epoch }

// Dims returns the live snapshot's dimensionality.
func (e *Engine) Dims() int { return e.snap.Load().d }

// Len returns the live snapshot's row count.
func (e *Engine) Len() int { return e.snap.Load().n }

// Shards returns the number of partitions of the live snapshot.
func (e *Engine) Shards() int { return len(e.snap.Load().shards) }

// Swap builds a snapshot over new data (a rebuilt reduction, refreshed
// points, or both) and atomically installs it. In-flight queries finish on
// whichever snapshot they loaded; queries admitted after Swap returns see
// only the new one. Returns the new epoch.
func (e *Engine) Swap(data *linalg.Dense) (uint64, error) {
	n, d := data.Dims()
	if n == 0 || d == 0 {
		return 0, fmt.Errorf("serve: cannot swap in %dx%d data", n, d)
	}
	cfg := e.cfg
	if cfg.Shards > n {
		cfg.Shards = n
	}
	next := buildSnapshot(data, cfg, e.snap.Load().epoch+1)
	e.snap.Store(next)
	e.counters.swaps.Add(1)
	return next.epoch, nil
}

// Search serves one query in ModeAuto: exact unless admission control
// degrades it. See SearchMode.
func (e *Engine) Search(ctx context.Context, query []float64, k int) (Result, error) {
	return e.SearchMode(ctx, query, k, ModeAuto)
}

// SearchMode runs one k-NN query through admission control and the sharded
// worker pools. It blocks until the request is served, its context
// expires (ErrDeadline), the queue rejects it (ErrOverloaded), or the
// engine is closed (ErrClosed). Rejected requests do no search work.
func (e *Engine) SearchMode(ctx context.Context, query []float64, k int, mode Mode) (Result, error) {
	if k <= 0 {
		return Result{}, fmt.Errorf("serve: k=%d must be positive", k)
	}
	if err := ctx.Err(); err != nil {
		e.counters.deadline.Add(1)
		return Result{}, fmt.Errorf("%w (before admission: %v)", ErrDeadline, err)
	}
	req := &request{
		ctx:      ctx,
		query:    query,
		k:        k,
		mode:     mode,
		admitted: time.Now(),
		resp:     make(chan response, 1),
	}
	// Degrade-at-admission: the queue depth observed now is the backlog
	// this request would wait behind.
	if mode == ModeAuto && len(e.queue) >= e.degradeDepth() {
		req.degraded = true
	}

	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		return Result{}, ErrClosed
	}
	select {
	case e.queue <- req:
		e.closeMu.RUnlock()
	default:
		e.closeMu.RUnlock()
		e.counters.rejected.Add(1)
		return Result{}, ErrOverloaded
	}

	select {
	case r := <-req.resp:
		if r.err != nil {
			return Result{}, r.err
		}
		e.counters.served.Add(1)
		if r.res.Approx {
			e.counters.approx.Add(1)
		} else {
			e.counters.exact.Add(1)
		}
		if r.res.Degraded {
			e.counters.degraded.Add(1)
		}
		e.lat.record(r.res.Total)
		return r.res, nil
	case <-ctx.Done():
		// The worker will still complete the request and drop its result
		// into the buffered channel; the caller stops waiting now.
		e.counters.deadline.Add(1)
		return Result{}, fmt.Errorf("%w (while awaiting result: %v)", ErrDeadline, ctx.Err())
	}
}

// degradeDepth is the queue length at which ModeAuto degrades.
func (e *Engine) degradeDepth() int {
	d := int(e.cfg.DegradeWatermark * float64(e.cfg.QueueDepth))
	if d < 1 {
		d = 1
	}
	return d
}

// Close stops admission, drains every queued request (they are served
// normally — admitted work is never dropped), and joins both worker pools.
// Safe to call twice.
func (e *Engine) Close() {
	e.closeMu.Lock()
	if e.closed {
		e.closeMu.Unlock()
		return
	}
	e.closed = true
	e.closeMu.Unlock()
	close(e.queue) // no sends can follow: Search checks closed under the lock
	e.workers.Wait()
	close(e.shardq)
	e.shardWorkers.Wait()
}

// requestWorker drains the admission queue until Close. It owns one
// reusable fan-out channel sized to the configured shard maximum (Swap
// only ever clamps the shard count down), so per-request handling does
// not allocate a fresh channel: handle fully drains it before returning,
// leaving it empty for the next request.
func (e *Engine) requestWorker() {
	defer e.workers.Done()
	out := make(chan shardOut, e.cfg.Shards)
	for req := range e.queue {
		e.handle(req, out)
	}
}

// handle fans one admitted request over the shard pool and merges.
//
//drlint:hotpath
func (e *Engine) handle(req *request, out chan shardOut) {
	if err := req.ctx.Err(); err != nil {
		// Expired while queued: reject without scanning. The caller has
		// usually already returned ErrDeadline from its own ctx.Done arm;
		// this response is the worker-side bookkeeping for the same fate.
		req.resp <- response{err: fmt.Errorf("%w (expired while queued: %v)", ErrDeadline, err)}
		return
	}
	snap := e.snap.Load()
	if len(req.query) != snap.d {
		req.resp <- response{err: fmt.Errorf("%w: query has %d dims, index has %d",
			ErrDims, len(req.query), snap.d)}
		return
	}
	wait := time.Since(req.admitted)
	approx := req.mode == ModeApprox || (req.mode == ModeAuto && req.degraded)

	for _, sh := range snap.shards {
		e.shardq <- shardTask{
			sh:     sh,
			query:  req.query,
			k:      req.k,
			approx: approx,
			probes: e.cfg.Probes,
			out:    out,
		}
	}
	merged := make([]knn.Neighbor, 0, len(snap.shards)*req.k)
	candidates := 0
	for range snap.shards {
		o := <-out
		merged = append(merged, o.neigh...)
		candidates += o.candidates
	}
	knn.SortNeighbors(merged)
	if len(merged) > req.k {
		merged = merged[:req.k]
	}
	req.resp <- response{res: Result{
		Neighbors:  merged,
		Approx:     approx,
		Degraded:   req.degraded && approx,
		Epoch:      snap.epoch,
		Wait:       wait,
		Total:      time.Since(req.admitted),
		Candidates: candidates,
	}}
}

// shardWorker executes per-shard scans until Close.
//
//drlint:hotpath
func (e *Engine) shardWorker() {
	//drlint:ignore hotalloc one deferred frame per worker lifetime, not per task; Close relies on it to join the pool
	defer e.shardWorkers.Done()
	for t := range e.shardq {
		t.sh.tasks.Add(1)
		var o shardOut
		if t.approx {
			o = t.sh.be.searchApprox(t.query, t.k, t.probes)
			t.sh.candidates.Add(uint64(o.candidates))
		} else {
			o = t.sh.be.searchExact(t.query, t.k)
		}
		t.out <- o
	}
}

// searchExact scans the shard with the batch-distance identity
// ‖x‖²+‖q‖²−2⟨x,q⟩ over the cached norms — the same arithmetic (and the
// same dotUnitary kernel) knn.SearchSetBatch uses — then rescores admitted
// neighbors with the scalar metric. Merging per-shard results with the
// canonical comparator therefore reproduces the single-threaded batch
// engine bit for bit.
func (s *denseShard) searchExact(query []float64, k int) shardOut {
	n := s.data.Rows()
	if k > n {
		k = n
	}
	qn := linalg.Dot(query, query)
	c := knn.NewCollector(k)
	for i := 0; i < n; i++ {
		d2 := s.norms[i] + qn - 2*linalg.Dot(s.data.RawRow(i), query)
		if d2 < 0 {
			d2 = 0
		}
		c.Offer(s.lo+i, d2)
	}
	res := c.Results()
	e := knn.Euclidean{}
	for i := range res {
		res[i].Dist = e.Distance(s.data.RawRow(res[i].Index-s.lo), query)
	}
	knn.SortNeighbors(res)
	return shardOut{neigh: res}
}

// searchApprox probes the shard's LSH tables and lifts local row ids to
// global ones.
func (s *denseShard) searchApprox(query []float64, k, probes int) shardOut {
	res, st := s.lsh.KNNApprox(query, k, probes)
	for i := range res {
		res[i].Index += s.lo
	}
	return shardOut{neigh: res, candidates: st.CandidateSize}
}
