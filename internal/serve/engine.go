package serve

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/index/lsh"
	"repro/internal/knn"
	"repro/internal/linalg"
)

// Engine is a sharded, admission-controlled query server over one dataset
// snapshot, with a live mutation path (Insert/Delete/Compact) layered on
// top. All methods are safe for concurrent use; Close releases the worker
// pools and joins any in-flight compaction.
type Engine struct {
	cfg  Config
	snap atomic.Pointer[snapshot]

	queue  chan *request
	shardq chan shardTask

	// closeMu serializes admission against Close: Search sends on queue
	// only under the read lock with closed false, so Close can safely
	// close(queue) once it holds the write lock and flips closed. The
	// compactor spawn shares the same protocol (see maybeCompact).
	closeMu sync.RWMutex
	closed  bool

	workers      sync.WaitGroup // request workers
	shardWorkers sync.WaitGroup

	// mut is the mutation state (delta buffers, tombstones); see mutate.go.
	// compactMu serializes compaction cycles, compacting coalesces
	// background triggers, compactWG lets Close join a running compactor.
	mut        mutState
	compactMu  sync.Mutex
	compacting atomic.Bool
	compactWG  sync.WaitGroup

	// drift tracks streaming-PCA basis decay over the mutation stream;
	// nil unless Config.Drift enables it.
	drift *driftMonitor

	counters counters
	lat      *latencyRecorder
}

// snapshot is one immutable generation of the serving state. Queries load
// it once per request, so a Swap never tears a request across two
// generations. data is the in-memory matrix for dense-backed snapshots and
// nil for store-backed ones; n and d describe the snapshot either way.
// exact is the float64 row source shared by the compactor and the drift
// monitor: the matrix itself for dense snapshots, the store's
// full-precision region for store-backed ones. ids maps row positions to
// stable mutation IDs (ascending); nil means the identity mapping.
type snapshot struct {
	epoch  uint64
	n, d   int
	data   *linalg.Dense
	exact  *linalg.Dense
	ids    []int
	shards []*shard
}

// backend is the per-shard search implementation. The engine's fan-out,
// admission control, and merge are backend-agnostic: any backend that
// returns per-shard top-k lists with global indices in the canonical
// (distance, index) order composes with the rest of the pipeline. Two
// implementations exist: denseShard (float64 matrix + norms + LSH) and
// quantShard (mmap-backed quantized store, internal/store).
type backend interface {
	// searchExact returns the shard's exact top-k.
	searchExact(query []float64, k int) shardOut
	// searchApprox returns an approximate top-k plus the number of
	// candidates it refined with exact distances.
	searchApprox(query []float64, k, probes int) shardOut
}

// shard is one contiguous partition [lo, hi) of the snapshot's rows,
// delegating scans to its backend.
type shard struct {
	lo, hi int
	be     backend

	// candidates accumulates approximate-path refinement work executed on
	// this shard (for EngineStats.ShardCandidates).
	candidates atomic.Uint64
	// tasks counts shard scans executed (exact or approximate).
	tasks atomic.Uint64
}

// denseShard is the in-memory backend: a view of the snapshot matrix
// (shared backing array, so global row i is local row i-lo and distance
// kernels read the same floats the unsharded path would), cached squared
// row norms, and the shard's LSH tables.
type denseShard struct {
	lo    int
	data  *linalg.Dense
	norms []float64
	lsh   *lsh.Index
}

// request travels through the admission queue.
type request struct {
	ctx      context.Context
	query    []float64
	k        int
	mode     Mode
	degraded bool
	admitted time.Time
	resp     chan response // buffered(1): workers never block responding
}

// response is what a worker hands back to the waiting caller.
type response struct {
	res Result
	err error
}

// shardTask is one shard's share of a fanned-out request. k is the
// snapshot scan budget (the caller's k plus the shard's tombstone
// over-fetch); deltaK, delta and dead describe the shard's captured delta
// buffer (deltaK 0 skips the delta scan).
type shardTask struct {
	sh     *shard
	query  []float64
	k      int
	approx bool
	probes int
	deltaK int
	delta  deltaView
	dead   []int           // sorted captured delta tombstone IDs
	out    chan<- shardOut // buffered(len(shards)): sends never block
}

// shardOut carries a shard's partial top-k: neigh holds snapshot
// candidates as global row positions (tombstone filtering and ID
// translation happen at the merge), delta holds already-filtered delta
// candidates as stable IDs.
type shardOut struct {
	neigh      []knn.Neighbor
	delta      []knn.Neighbor
	candidates int
}

// New builds an engine over the rows of data and starts its worker pools.
// The matrix is retained, not copied; it must not be mutated while the
// engine serves (use Swap to install new data).
func New(data *linalg.Dense, cfg Config) (*Engine, error) {
	n, d := data.Dims()
	if n == 0 || d == 0 {
		return nil, fmt.Errorf("serve: cannot serve %dx%d data", n, d)
	}
	c := cfg.withDefaults(n, runtime.GOMAXPROCS(0))
	e := newEngine(c)
	snap := buildSnapshot(data, c, 1)
	e.snap.Store(snap)
	e.resetMutationLocked(snap)
	if c.Drift.Components > 0 {
		e.drift = newDriftMonitor(c.Drift, data)
	}
	e.start()
	return e, nil
}

// newEngine allocates an engine shell from a resolved config; the caller
// installs the first snapshot and calls start.
func newEngine(c Config) *Engine {
	return &Engine{
		cfg:    c,
		queue:  make(chan *request, c.QueueDepth),
		shardq: make(chan shardTask, c.Shards*c.Workers),
		lat:    newLatencyRecorder(),
	}
}

// start launches the request and shard worker pools.
func (e *Engine) start() {
	e.workers.Add(e.cfg.Workers)
	for w := 0; w < e.cfg.Workers; w++ {
		//drlint:ignore goroutinehygiene long-lived server pool: each worker defers workers.Done and Close joins via workers.Wait after closing the queue
		go e.requestWorker()
	}
	e.shardWorkers.Add(e.cfg.ShardWorkers)
	for w := 0; w < e.cfg.ShardWorkers; w++ {
		//drlint:ignore goroutinehygiene long-lived server pool: each worker defers shardWorkers.Done and Close joins via shardWorkers.Wait after closing shardq
		go e.shardWorker()
	}
}

// buildSnapshot partitions data into cfg.Shards contiguous shards and
// builds each shard's norm cache and LSH tables. Shard i's hash family is
// seeded by a splitmix64 derivation of cfg.LSH.Seed, so the snapshot is
// byte-deterministic for a fixed config.
func buildSnapshot(data *linalg.Dense, cfg Config, epoch uint64) *snapshot {
	n := data.Rows()
	snap := &snapshot{epoch: epoch, n: n, d: data.Cols(), data: data, exact: data, shards: make([]*shard, cfg.Shards)}
	for s, r := range shardRanges(n, cfg.Shards) {
		lo, hi := r[0], r[1]
		view := data.RowSlice(lo, hi)
		shardCfg := cfg.LSH
		shardCfg.Seed = shardSeed(cfg.LSH.Seed, s)
		snap.shards[s] = &shard{
			lo: lo,
			hi: hi,
			be: &denseShard{
				lo:    lo,
				data:  view,
				norms: linalg.RowNormsSq(view),
				lsh:   lsh.Build(view, shardCfg),
			},
		}
	}
	return snap
}

// shardRanges returns the balanced contiguous partition of n rows into p
// [lo, hi) ranges.
func shardRanges(n, p int) [][2]int {
	out := make([][2]int, p)
	base, extra := n/p, n%p
	lo := 0
	for s := 0; s < p; s++ {
		hi := lo + base
		if s < extra {
			hi++
		}
		out[s] = [2]int{lo, hi}
		lo = hi
	}
	return out
}

// shardSeed expands the root seed into decorrelated per-shard seeds
// (splitmix64 step, matching the LSH index's own table-seed derivation).
func shardSeed(root int64, s int) int64 {
	z := uint64(root) + (uint64(s)+1)*0xD1B54A32D192ED03
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Epoch returns the live snapshot's generation number.
func (e *Engine) Epoch() uint64 { return e.snap.Load().epoch }

// Dims returns the live snapshot's dimensionality.
func (e *Engine) Dims() int { return e.snap.Load().d }

// Len returns the number of rows currently served: snapshot rows plus live
// delta rows, minus pending tombstones.
func (e *Engine) Len() int {
	e.mut.mu.RLock()
	defer e.mut.mu.RUnlock()
	return e.snap.Load().n - len(e.mut.snapDead) + e.mut.live
}

// Shards returns the number of partitions of the live snapshot.
func (e *Engine) Shards() int { return len(e.snap.Load().shards) }

// Swap builds a snapshot over new data (a rebuilt reduction, refreshed
// points, or both) and atomically installs it. In-flight queries finish on
// whichever snapshot they loaded; queries admitted after Swap returns see
// only the new one. Pending mutation state is discarded — a Swap replaces
// the served set wholesale, so delta rows and tombstones of the retired
// generation are meaningless and row IDs restart at the new row count.
// Returns the new epoch.
func (e *Engine) Swap(data *linalg.Dense) (uint64, error) {
	n, d := data.Dims()
	if n == 0 || d == 0 {
		return 0, fmt.Errorf("serve: cannot swap in %dx%d data", n, d)
	}
	cfg := e.cfg
	if cfg.Shards > n {
		cfg.Shards = n
	}
	next := buildSnapshot(data, cfg, e.snap.Load().epoch+1)
	e.installSnapshot(next)
	if e.drift != nil {
		e.drift.reseed(data)
	}
	return next.epoch, nil
}

// installSnapshot stores a wholesale-replacement snapshot and resets the
// mutation state under the mutation lock, so a query can never capture the
// new snapshot paired with the old generation's delta buffers or
// tombstones (or vice versa).
func (e *Engine) installSnapshot(next *snapshot) {
	e.mut.mu.Lock()
	e.snap.Store(next)
	e.resetMutationLocked(next)
	e.mut.mu.Unlock()
	e.counters.swaps.Add(1)
}

// Search serves one query in ModeAuto: exact unless admission control
// degrades it. See SearchMode.
func (e *Engine) Search(ctx context.Context, query []float64, k int) (Result, error) {
	return e.SearchMode(ctx, query, k, ModeAuto)
}

// SearchMode runs one k-NN query through admission control and the sharded
// worker pools. It blocks until the request is served, its context
// expires (ErrDeadline), the queue rejects it (ErrOverloaded), or the
// engine is closed (ErrClosed). Rejected requests do no search work.
func (e *Engine) SearchMode(ctx context.Context, query []float64, k int, mode Mode) (Result, error) {
	if k <= 0 {
		return Result{}, fmt.Errorf("serve: k=%d must be positive", k)
	}
	if err := ctx.Err(); err != nil {
		e.counters.deadline.Add(1)
		return Result{}, fmt.Errorf("%w (before admission: %v)", ErrDeadline, err)
	}
	req := &request{
		ctx:      ctx,
		query:    query,
		k:        k,
		mode:     mode,
		admitted: time.Now(),
		resp:     make(chan response, 1),
	}
	// Degrade-at-admission: the queue depth observed now is the backlog
	// this request would wait behind.
	if mode == ModeAuto && len(e.queue) >= e.degradeDepth() {
		req.degraded = true
	}

	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		return Result{}, ErrClosed
	}
	select {
	case e.queue <- req:
		e.closeMu.RUnlock()
	default:
		e.closeMu.RUnlock()
		e.counters.rejected.Add(1)
		return Result{}, ErrOverloaded
	}

	select {
	case r := <-req.resp:
		if r.err != nil {
			return Result{}, r.err
		}
		e.counters.served.Add(1)
		if r.res.Approx {
			e.counters.approx.Add(1)
		} else {
			e.counters.exact.Add(1)
		}
		if r.res.Degraded {
			e.counters.degraded.Add(1)
		}
		e.lat.record(r.res.Epoch, r.res.Total)
		return r.res, nil
	case <-ctx.Done():
		// The worker will still complete the request and drop its result
		// into the buffered channel; the caller stops waiting now.
		e.counters.deadline.Add(1)
		return Result{}, fmt.Errorf("%w (while awaiting result: %v)", ErrDeadline, ctx.Err())
	}
}

// degradeDepth is the queue length at which ModeAuto degrades.
func (e *Engine) degradeDepth() int {
	d := int(e.cfg.DegradeWatermark * float64(e.cfg.QueueDepth))
	if d < 1 {
		d = 1
	}
	return d
}

// Close stops admission, drains every queued request (they are served
// normally — admitted work is never dropped), joins both worker pools and
// any in-flight background compaction. Safe to call twice.
func (e *Engine) Close() {
	e.closeMu.Lock()
	if e.closed {
		e.closeMu.Unlock()
		return
	}
	e.closed = true
	e.closeMu.Unlock()
	close(e.queue) // no sends can follow: Search checks closed under the lock
	e.workers.Wait()
	close(e.shardq)
	e.shardWorkers.Wait()
	// Background compactors check closed (under closeMu.RLock) before
	// registering, so after the flip above no new one can appear.
	e.compactWG.Wait()
}

// reqScratch is one request worker's reusable per-request state: the
// fan-out channel, the captured per-shard scan budgets and delta views,
// and sorted copies of the tombstone lists. Everything is sized to the
// configured shard maximum (Swap and compaction only ever clamp the shard
// count down), so steady-state handling does not allocate: handle fully
// drains the channel and overwrites the slices on every request.
type reqScratch struct {
	out     chan shardOut
	budget  []int
	views   []deltaView
	deadPos []int // sorted captured snapshot tombstone positions
	deadIDs []int // sorted captured delta tombstone IDs
}

// requestWorker drains the admission queue until Close, owning one
// reqScratch for its lifetime.
func (e *Engine) requestWorker() {
	defer e.workers.Done()
	sc := &reqScratch{
		out:    make(chan shardOut, e.cfg.Shards),
		budget: make([]int, e.cfg.Shards),
		views:  make([]deltaView, e.cfg.Shards),
	}
	for req := range e.queue {
		e.handle(req, sc)
	}
}

// growInts returns a length-n int slice, reusing buf's backing array when
// it is large enough.
//
//drlint:hotpath
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n, 2*n)
	}
	return buf[:n]
}

// handle fans one admitted request over the shard pool and merges. The
// mutation capture (snapshot, per-shard tombstone budgets, delta views,
// tombstone list headers) happens atomically under one read lock, so the
// request sees a point-in-time-consistent image of the served set; the
// scans and the merge then run lock-free against that capture.
//
//drlint:hotpath inline=1
func (e *Engine) handle(req *request, sc *reqScratch) {
	if err := req.ctx.Err(); err != nil {
		// Expired while queued: reject without scanning. The caller has
		// usually already returned ErrDeadline from its own ctx.Done arm;
		// this response is the worker-side bookkeeping for the same fate.
		req.resp <- response{err: fmt.Errorf("%w (expired while queued: %v)", ErrDeadline, err)}
		return
	}
	e.mut.mu.RLock()
	snap := e.snap.Load()
	if len(req.query) != snap.d {
		e.mut.mu.RUnlock()
		req.resp <- response{err: fmt.Errorf("%w: query has %d dims, index has %d",
			ErrDims, len(req.query), snap.d)}
		return
	}
	p := len(snap.shards)
	sc.budget = sc.budget[:p]
	sc.views = sc.views[:p]
	deltaTotal := 0
	for s := 0; s < p; s++ {
		sc.budget[s] = req.k + e.mut.tombSnap[s]
		b := &e.mut.bufs[s]
		v := &sc.views[s]
		v.rows = b.rows
		v.ids = b.ids
		v.norms = b.norms
		v.d = snap.d
		deltaTotal += len(b.ids)
	}
	snapDead := e.mut.snapDead
	deltaDead := e.mut.deltaDead
	e.mut.mu.RUnlock()
	// The captured lists are append-only between installs, so their
	// prefixes stay immutable after the lock is released; sort copies so
	// the filters below are binary searches.
	sc.deadPos = growInts(sc.deadPos, len(snapDead))
	copy(sc.deadPos, snapDead)
	slices.Sort(sc.deadPos)
	sc.deadIDs = growInts(sc.deadIDs, len(deltaDead))
	copy(sc.deadIDs, deltaDead)
	slices.Sort(sc.deadIDs)

	wait := time.Since(req.admitted)
	approx := req.mode == ModeApprox || (req.mode == ModeAuto && req.degraded)

	for s, sh := range snap.shards {
		e.shardq <- shardTask{
			sh:     sh,
			query:  req.query,
			k:      sc.budget[s],
			approx: approx,
			probes: e.cfg.Probes,
			deltaK: req.k,
			delta:  sc.views[s],
			dead:   sc.deadIDs,
			out:    sc.out,
		}
	}
	merged := make([]knn.Neighbor, 0, p*req.k+len(sc.deadPos)+min(deltaTotal, p*req.k))
	candidates := 0
	for s := 0; s < p; s++ {
		o := <-sc.out
		// Tombstone filter on snapshot candidates (positions), then lift
		// positions to stable IDs. Delta candidates arrive pre-filtered
		// and already carry IDs.
		keep := knn.DropNeighbors(o.neigh, sc.deadPos)
		if snap.ids != nil {
			for j := range keep {
				keep[j].Index = snap.ids[keep[j].Index]
			}
		}
		merged = append(merged, keep...)
		merged = append(merged, o.delta...)
		candidates += o.candidates
	}
	knn.SortNeighbors(merged)
	if len(merged) > req.k {
		merged = merged[:req.k]
	}
	req.resp <- response{res: Result{
		Neighbors:  merged,
		Approx:     approx,
		Degraded:   req.degraded && approx,
		Epoch:      snap.epoch,
		Wait:       wait,
		Total:      time.Since(req.admitted),
		Candidates: candidates,
	}}
}

// shardWorker executes per-shard scans until Close. It owns one pooled
// collector for delta scans, refilled lazily so the steady state does not
// allocate.
//
//drlint:hotpath inline=1
func (e *Engine) shardWorker() {
	//drlint:ignore hotalloc one deferred frame per worker lifetime, not per task; Close relies on it to join the pool
	defer e.shardWorkers.Done()
	var coll *knn.Collector
	for t := range e.shardq {
		t.sh.tasks.Add(1)
		var o shardOut
		if t.approx {
			o = t.sh.be.searchApprox(t.query, t.k, t.probes)
			t.sh.candidates.Add(uint64(o.candidates))
		} else {
			o = t.sh.be.searchExact(t.query, t.k)
		}
		if t.deltaK > 0 && len(t.delta.ids) > 0 {
			if coll == nil {
				coll = knn.NewCollector(t.deltaK)
			}
			o.delta = t.delta.scan(t.query, t.deltaK, t.dead, coll)
		}
		t.out <- o
	}
}

// searchExact scans the shard with the batch-distance identity
// ‖x‖²+‖q‖²−2⟨x,q⟩ over the cached norms — the same arithmetic (and the
// same dotUnitary kernel) knn.SearchSetBatch uses — then rescores admitted
// neighbors with the scalar metric. Merging per-shard results with the
// canonical comparator therefore reproduces the single-threaded batch
// engine bit for bit.
func (s *denseShard) searchExact(query []float64, k int) shardOut {
	n := s.data.Rows()
	if k > n {
		k = n
	}
	qn := linalg.Dot(query, query)
	c := knn.NewCollector(k)
	for i := 0; i < n; i++ {
		d2 := s.norms[i] + qn - 2*linalg.Dot(s.data.RawRow(i), query)
		if d2 < 0 {
			d2 = 0
		}
		c.Offer(s.lo+i, d2)
	}
	res := c.Results()
	e := knn.Euclidean{}
	for i := range res {
		res[i].Dist = e.Distance(s.data.RawRow(res[i].Index-s.lo), query)
	}
	knn.SortNeighbors(res)
	return shardOut{neigh: res}
}

// searchApprox probes the shard's LSH tables and lifts local row ids to
// global ones.
func (s *denseShard) searchApprox(query []float64, k, probes int) shardOut {
	res, st := s.lsh.KNNApprox(query, k, probes)
	for i := range res {
		res[i].Index += s.lo
	}
	return shardOut{neigh: res, candidates: st.CandidateSize}
}
