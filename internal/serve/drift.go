package serve

import (
	"sync"
	"sync/atomic"

	"repro/internal/linalg"
	"repro/internal/reduction"
)

// DriftConfig enables streaming-PCA drift tracking of the mutation stream.
// The monitor maintains the covariance sufficient statistics of the served
// set (reduction.CovarianceAccumulator ingests every insert and delete)
// and periodically measures how much of the current variance the PCA basis
// frozen at the last snapshot build still captures
// (CovarianceAccumulator.CapturedEnergy). When that fraction decays below
// DecayThreshold times its at-freeze value, the engine schedules a full
// re-projection compaction and refits the basis — the serving-layer
// realization of the paper's coherence thesis: the projection quality a
// basis promised at build time silently degrades as the data drifts, so
// the trigger watches the basis, not the clock.
type DriftConfig struct {
	// Components is the tracked basis width m. 0 disables drift tracking
	// entirely (the zero value of DriftConfig is "off").
	Components int
	// DecayThreshold is the refit trigger in (0, 1]: decay fires when
	// captured energy falls below DecayThreshold × the at-freeze fraction.
	// 0 selects 0.9.
	DecayThreshold float64
	// CheckEvery evaluates the decay criterion every that-many mutations
	// (each evaluation is O(m·d²)). 0 selects 256.
	CheckEvery int
}

// withDefaults resolves zero fields.
func (c DriftConfig) withDefaults() DriftConfig {
	if c.DecayThreshold <= 0 {
		c.DecayThreshold = 0.9
	}
	if c.DecayThreshold > 1 {
		c.DecayThreshold = 1
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 256
	}
	return c
}

// driftMonitor is the engine-side wrapper: one accumulator, one frozen
// basis, one decay flag the mutation path can poll without locking.
type driftMonitor struct {
	mu         sync.Mutex
	cfg        DriftConfig
	acc        *reduction.CovarianceAccumulator
	basis      *linalg.Dense // d×m frozen leading components; nil until a successful fit
	baseline   float64       // captured-energy fraction at freeze time
	current    float64       // last measured fraction
	sinceCheck int
	decay      atomic.Bool
}

// newDriftMonitor seeds the accumulator over the initial snapshot rows and
// freezes the first basis.
func newDriftMonitor(cfg DriftConfig, data *linalg.Dense) *driftMonitor {
	m := &driftMonitor{cfg: cfg.withDefaults()}
	m.acc = reduction.AccumulateMatrix(data)
	m.mu.Lock()
	m.refitLocked()
	m.mu.Unlock()
	return m
}

// observe ingests one mutation (sign +1 insert, -1 delete) and, every
// CheckEvery mutations, re-evaluates the frozen basis against the current
// covariance.
func (m *driftMonitor) observe(x []float64, sign int) {
	m.mu.Lock()
	if sign > 0 {
		m.acc.Add(x)
	} else if m.acc.N() > 0 {
		m.acc.Remove(x)
	}
	m.sinceCheck++
	if m.basis != nil && m.sinceCheck >= m.cfg.CheckEvery {
		m.sinceCheck = 0
		if m.acc.N() >= 2 {
			f := m.acc.CapturedEnergy(m.basis)
			m.current = f
			if f < m.cfg.DecayThreshold*m.baseline {
				m.decay.Store(true)
			}
		}
	}
	m.mu.Unlock()
}

// decayed reports whether the frozen basis has fallen below the decay
// threshold since the last refit. Lock-free: polled on every mutation.
func (m *driftMonitor) decayed() bool { return m.decay.Load() }

// refit refreezes the basis on the accumulator's current statistics and
// clears the decay flag; reports whether a fit happened (it needs at least
// 2 points and a convergent eigendecomposition — on failure the previous
// basis stays frozen).
func (m *driftMonitor) refit() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.refitLocked()
}

func (m *driftMonitor) refitLocked() bool {
	if m.acc.N() < 2 {
		return false
	}
	p, err := m.acc.FitPCA()
	if err != nil {
		return false
	}
	k := m.cfg.Components
	if k > m.acc.Dims() {
		k = m.acc.Dims()
	}
	cols := make([]int, k)
	for i := range cols {
		cols[i] = i
	}
	m.basis = p.Components.SliceCols(cols)
	m.baseline = m.acc.CapturedEnergy(m.basis)
	m.current = m.baseline
	m.sinceCheck = 0
	m.decay.Store(false)
	return true
}

// reseed rebuilds the accumulator over a wholesale-replaced dataset (Swap /
// SwapStore) and refreezes.
func (m *driftMonitor) reseed(data *linalg.Dense) {
	m.mu.Lock()
	m.acc = reduction.AccumulateMatrix(data)
	m.refitLocked()
	m.mu.Unlock()
}

// energies returns (at-freeze fraction, last measured fraction) for Stats.
func (m *driftMonitor) energies() (baseline, current float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.baseline, m.current
}
