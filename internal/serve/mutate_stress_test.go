package serve

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/index/lsh"
	"repro/internal/linalg"
)

// TestMutateStress is the satellite-2 race harness: concurrent writers,
// readers and forced compactions over one engine, with lost/duplicate
// accounting on every op slot. It is most valuable under `go test -race`
// (the CI mutate-stress job); without the race detector it still checks
// the acknowledgement invariants.
func TestMutateStress(t *testing.T) {
	ops := 6000
	if testing.Short() {
		ops = 1500
	}
	rng := rand.New(rand.NewSource(97))
	const n, d, nq = 400, 16, 64
	data := randMatrix(rng, n, d)
	queries := randMatrix(rng, nq, d)

	e, err := New(data, Config{
		Shards:     4,
		QueueDepth: 8192,
		CompactAt:  192, // force several mid-run background compactions
		LSH:        lsh.Config{Tables: 4, Hashes: 8, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)

	// A dedicated goroutine forces synchronous compactions while the load
	// runs, on top of the background ones the CompactAt watermark triggers,
	// so capture/build/install races with both readers and writers.
	stop := make(chan struct{})
	var forced atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				if _, err := e.Compact(context.Background()); err == nil {
					forced.Add(1)
				}
			}
		}
	}()

	rep, live, err := RunMutateLoad(context.Background(), e, data, queries, MutateConfig{
		Ops:           ops,
		Concurrency:   16,
		WriteFraction: 0.25,
		K:             8,
		Seed:          131,
	})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	if rep.Lost != 0 || rep.Duplicated != 0 {
		t.Fatalf("accounting violations: lost=%d duplicated=%d", rep.Lost, rep.Duplicated)
	}
	if rep.DeletedIDHits != 0 {
		t.Fatalf("deleted IDs returned to readers %d times", rep.DeletedIDHits)
	}
	if rep.StaleAcks != 0 {
		t.Fatalf("%d acked inserts invisible to later exact reads", rep.StaleAcks)
	}
	if rep.UnknownID != 0 || rep.OtherErrors != 0 {
		t.Fatalf("untyped or impossible errors: unknownID=%d other=%d", rep.UnknownID, rep.OtherErrors)
	}
	if rep.Reads+rep.Inserts+rep.Deletes+rep.Overloaded+rep.DeadlineExceeded != rep.Ops {
		t.Fatalf("outcomes do not partition ops: %+v", rep)
	}
	if rep.Compactions == 0 {
		t.Fatalf("no compaction ran (forced=%d); stress never exercised the install path", forced.Load())
	}
	if rep.FinalRows != len(live.IDs) {
		t.Fatalf("report FinalRows=%d, live set has %d", rep.FinalRows, len(live.IDs))
	}

	// Quiesce, then hold the survivors to bit-identity against a rebuild.
	if _, err := e.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := VerifyMutated(context.Background(), e, live, queries, 8, 24); err != nil {
		t.Fatal(err)
	}
	if got := e.Len(); got != len(live.IDs) {
		t.Fatalf("engine Len=%d, ground truth %d", got, len(live.IDs))
	}
}

// TestDriftTriggersRecompaction pins the streaming-PCA wiring: a mutation
// stream that rotates the data's principal subspace must decay the frozen
// basis's captured energy, force a compaction through the decay trigger
// (even though the pending count stays below CompactAt), and refit the
// basis during the install.
func TestDriftTriggersRecompaction(t *testing.T) {
	const n, d = 300, 8
	// Base data: variance concentrated on axis 0.
	rng := rand.New(rand.NewSource(101))
	data := linalg.NewDense(n, d)
	for i := 0; i < n; i++ {
		row := data.RawRow(i)
		row[0] = rng.NormFloat64() * 10
		for j := 1; j < d; j++ {
			row[j] = rng.NormFloat64() * 0.01
		}
	}
	e, err := New(data, Config{
		Shards:     2,
		QueueDepth: 1024,
		CompactAt:  1 << 20, // count watermark unreachable: only decay can trigger
		MaxDelta:   1 << 20,
		Drift: DriftConfig{
			Components:     1,
			DecayThreshold: 0.9,
			CheckEvery:     32,
		},
		LSH: lsh.Config{Tables: 2, Hashes: 4, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	ctx := context.Background()

	st := e.Stats()
	if st.DriftBaselineEnergy <= 0.9 {
		t.Fatalf("baseline captured energy %v, want near 1 for axis-aligned data", st.DriftBaselineEnergy)
	}

	// Insert rows whose variance lives on axis 1: the frozen axis-0 basis
	// captures almost none of it, so the energy fraction decays.
	vec := make([]float64, d)
	deadline := time.Now().Add(10 * time.Second)
	triggered := false
	for i := 0; i < 4000 && !triggered; i++ {
		for j := range vec {
			vec[j] = rng.NormFloat64() * 0.01
		}
		vec[1] = rng.NormFloat64() * 10
		if _, err := e.Insert(ctx, append([]float64(nil), vec...)); err != nil {
			t.Fatal(err)
		}
		if e.Stats().Compactions > 0 {
			triggered = true
		}
	}
	// The trigger spawns a background compactor; give it a bounded moment.
	for !triggered && time.Now().Before(deadline) {
		if e.Stats().Compactions > 0 {
			triggered = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !triggered {
		t.Fatalf("drift decay never forced a compaction (stats: %+v)", e.Stats())
	}
	// Wait for the refit that follows the install.
	var final EngineStats
	for time.Now().Before(deadline) {
		final = e.Stats()
		if final.BasisRefits > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final.BasisRefits == 0 {
		t.Fatalf("compaction installed but basis never refit (stats: %+v)", final)
	}
}
