package serve

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/index/lsh"
	"repro/internal/linalg"
	"repro/internal/store"
)

// mutModel is the test-side ground truth of the served set: stable ID →
// vector for every surviving row.
type mutModel struct {
	rows map[int][]float64
}

func newMutModel(base *linalg.Dense) *mutModel {
	m := &mutModel{rows: make(map[int][]float64, base.Rows())}
	for i := 0; i < base.Rows(); i++ {
		m.rows[i] = append([]float64(nil), base.RawRow(i)...)
	}
	return m
}

// liveSet materializes the surviving rows in ascending ID order.
func (m *mutModel) liveSet(d int) LiveSet {
	ids := make([]int, 0, len(m.rows))
	for id := range m.rows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	rows := linalg.NewDense(len(ids), d)
	for r, id := range ids {
		copy(rows.RawRow(r), m.rows[id])
	}
	return LiveSet{IDs: ids, Rows: rows}
}

// checkBitIdentical asserts the engine's ModeExact results over queries are
// bit-identical to a from-scratch SearchSetBatch over the model's survivors.
func checkBitIdentical(t *testing.T, e *Engine, m *mutModel, queries *linalg.Dense, k int, tag string) {
	t.Helper()
	live := m.liveSet(queries.Cols())
	if err := VerifyMutated(context.Background(), e, live, queries, k, 0); err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
}

// mutTestConfig builds a config with automatic compaction disabled, so
// tests control compaction timing explicitly.
func mutTestConfig(shards int) Config {
	return Config{
		Shards:     shards,
		QueueDepth: 4096,
		CompactAt:  -1,
		LSH:        lsh.Config{Tables: 4, Hashes: 8, Seed: 7},
	}
}

func TestInsertDeleteVisibility(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const n, d, k = 120, 9, 5
	data := randMatrix(rng, n, d)
	e, err := New(data, mutTestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	ctx := context.Background()

	// Inserted IDs continue the snapshot's identity range.
	vec := make([]float64, d)
	for j := range vec {
		vec[j] = 100 + float64(j)
	}
	id, err := e.Insert(ctx, vec)
	if err != nil {
		t.Fatal(err)
	}
	if id != n {
		t.Fatalf("first insert id = %d, want %d", id, n)
	}
	if got := e.Len(); got != n+1 {
		t.Fatalf("Len = %d after insert, want %d", got, n+1)
	}

	// The inserted row is immediately visible at distance zero.
	res, err := e.SearchMode(ctx, vec, 1, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 1 || res.Neighbors[0].Index != id || res.Neighbors[0].Dist != 0 {
		t.Fatalf("post-insert search = %+v, want id %d at distance 0", res.Neighbors, id)
	}

	// Deleting it makes it invisible and shrinks Len.
	if err := e.Delete(ctx, id); err != nil {
		t.Fatal(err)
	}
	if got := e.Len(); got != n {
		t.Fatalf("Len = %d after delete, want %d", got, n)
	}
	res, err = e.SearchMode(ctx, vec, k, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	for _, nb := range res.Neighbors {
		if nb.Index == id {
			t.Fatalf("deleted id %d returned by search", id)
		}
	}

	// Snapshot rows delete too, and searches with the row's own vector no
	// longer find it.
	if err := e.Delete(ctx, 0); err != nil {
		t.Fatal(err)
	}
	res, err = e.SearchMode(ctx, data.RawRow(0), k, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	for _, nb := range res.Neighbors {
		if nb.Index == 0 {
			t.Fatal("deleted snapshot row 0 returned by search")
		}
	}
}

func TestMutationTypedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const n, d = 60, 7
	data := randMatrix(rng, n, d)
	cfg := mutTestConfig(2)
	cfg.MaxDelta = 3
	e, err := New(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Dimension mismatch.
	if _, err := e.Insert(ctx, make([]float64, d+1)); !errors.Is(err, ErrDims) {
		t.Fatalf("short insert err = %v, want ErrDims", err)
	}
	// Duplicate and absent deletes.
	if err := e.Delete(ctx, 5); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(ctx, 5); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("duplicate delete err = %v, want ErrUnknownID", err)
	}
	if err := e.Delete(ctx, 1<<30); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("absent delete err = %v, want ErrUnknownID", err)
	}
	if err := e.Delete(ctx, -3); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("negative delete err = %v, want ErrUnknownID", err)
	}
	// Write admission control: the fourth live delta row is rejected.
	for i := 0; i < cfg.MaxDelta; i++ {
		if _, err := e.Insert(ctx, data.RawRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Insert(ctx, data.RawRow(0)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-cap insert err = %v, want ErrOverloaded", err)
	}
	// Expired context.
	expired, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := e.Insert(expired, data.RawRow(0)); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired insert err = %v, want ErrDeadline", err)
	}
	if err := e.Delete(expired, 1); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired delete err = %v, want ErrDeadline", err)
	}
	if _, err := e.Compact(expired); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired compact err = %v, want ErrDeadline", err)
	}
	// Closed engine.
	e.Close()
	if _, err := e.Insert(ctx, data.RawRow(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed insert err = %v, want ErrClosed", err)
	}
	if err := e.Delete(ctx, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed delete err = %v, want ErrClosed", err)
	}
	if _, err := e.Compact(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed compact err = %v, want ErrClosed", err)
	}
}

// applyOps drives a deterministic interleaving of inserts and deletes
// through both the engine and the model. Roughly 60/40 insert/delete so the
// set grows and the ID space fragments.
func applyOps(t *testing.T, e *Engine, m *mutModel, rng *rand.Rand, d, ops int) {
	t.Helper()
	ctx := context.Background()
	for op := 0; op < ops; op++ {
		if rng.Float64() < 0.6 || len(m.rows) == 0 {
			vec := make([]float64, d)
			for j := range vec {
				vec[j] = rng.NormFloat64()
			}
			id, err := e.Insert(ctx, vec)
			if err != nil {
				t.Fatalf("op %d insert: %v", op, err)
			}
			if _, dup := m.rows[id]; dup {
				t.Fatalf("op %d: engine reissued live id %d", op, id)
			}
			m.rows[id] = vec
		} else {
			ids := make([]int, 0, len(m.rows))
			for id := range m.rows {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			id := ids[rng.Intn(len(ids))]
			if err := e.Delete(ctx, id); err != nil {
				t.Fatalf("op %d delete %d: %v", op, id, err)
			}
			delete(m.rows, id)
		}
	}
}

// TestMutationMatchesRebuild is the property test at the heart of the PR:
// after any interleaving of inserts and deletes — with and without
// interior compactions — the engine's exact results are bit-identical
// under the canonical (dist, index) order to a from-scratch rebuild over
// the surviving rows, across shard counts and both backends.
func TestMutationMatchesRebuild(t *testing.T) {
	const n, d, nq, k, ops = 200, 11, 25, 8, 150
	rng := rand.New(rand.NewSource(47))
	data := randMatrix(rng, n, d)
	queries := randMatrix(rng, nq, d)

	for _, shards := range []int{1, 3, 7} {
		for _, compactEvery := range []int{0, 40} {
			opRng := rand.New(rand.NewSource(101))
			e, err := New(data, mutTestConfig(shards))
			if err != nil {
				t.Fatal(err)
			}
			m := newMutModel(data)
			for chunk := 0; chunk < 3; chunk++ {
				applyOps(t, e, m, opRng, d, ops/3)
				if compactEvery > 0 {
					if _, err := e.Compact(context.Background()); err != nil {
						t.Fatal(err)
					}
				}
				tag := "dense"
				checkBitIdentical(t, e, m, queries, k,
					tagf(tag, shards, compactEvery, chunk))
			}
			e.Close()
		}
	}
}

// TestStoreMutationMatchesRebuild runs the same property against the
// quantized-store backend: deltas and tombstones over an int8 store, with a
// compaction that transitions the engine onto a dense-backed snapshot
// mid-test.
func TestStoreMutationMatchesRebuild(t *testing.T) {
	const n, d, nq, k, ops = 200, 11, 20, 8, 120
	rng := rand.New(rand.NewSource(53))
	data := randMatrix(rng, n, d)
	queries := randMatrix(rng, nq, d)
	st := openTestStore(t, data, store.BuildConfig{Precision: store.Int8})

	for _, shards := range []int{1, 3} {
		for _, compact := range []bool{false, true} {
			opRng := rand.New(rand.NewSource(103))
			e, err := NewFromStore(st, Config{
				Shards:     shards,
				QueueDepth: 4096,
				CompactAt:  -1,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Base ground truth is the store's full-precision region — the
			// float64 bits its own exact path rescores against.
			m := newMutModel(st.ExactMatrix())
			for chunk := 0; chunk < 2; chunk++ {
				applyOps(t, e, m, opRng, d, ops/2)
				if compact {
					if _, err := e.Compact(context.Background()); err != nil {
						t.Fatal(err)
					}
				}
				checkBitIdentical(t, e, m, queries, k,
					tagf("store", shards, boolToInt(compact), chunk))
			}
			e.Close()
		}
	}
}

func tagf(backend string, shards, compactEvery, chunk int) string {
	return backend + "/shards=" + itoa(shards) + "/compact=" + itoa(compactEvery) + "/chunk=" + itoa(chunk)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// mutOp is one entry of a recorded mutation log (TestCompactDeterministic).
type mutOp struct {
	del bool
	id  int       // delete target
	vec []float64 // insert payload
}

// recordOpLog generates a fixed mutation log against a model without an
// engine, so the same log can replay under different compaction schedules.
func recordOpLog(rng *rand.Rand, base *linalg.Dense, ops int) []mutOp {
	d := base.Cols()
	live := make([]int, base.Rows())
	for i := range live {
		live[i] = i
	}
	nextID := base.Rows()
	log := make([]mutOp, 0, ops)
	for op := 0; op < ops; op++ {
		if rng.Float64() < 0.6 || len(live) == 0 {
			vec := make([]float64, d)
			for j := range vec {
				vec[j] = rng.NormFloat64()
			}
			log = append(log, mutOp{vec: vec})
			live = append(live, nextID)
			nextID++
		} else {
			j := rng.Intn(len(live))
			log = append(log, mutOp{del: true, id: live[j]})
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return log
}

// TestCompactDeterministic replays one fixed-seed mutation log under three
// compaction schedules (every 5 ops, every 17 ops, only at the end) and
// requires the final snapshot — row bytes and stable IDs — to be
// byte-identical regardless of when compactions ran. Epochs may differ
// (they count installs, which is timing); the data must not.
func TestCompactDeterministic(t *testing.T) {
	const n, d, ops = 90, 8, 140
	rng := rand.New(rand.NewSource(59))
	data := randMatrix(rng, n, d)
	log := recordOpLog(rand.New(rand.NewSource(61)), data, ops)
	ctx := context.Background()

	type final struct {
		ids  []int
		rows *linalg.Dense
		n    int
	}
	run := func(compactEvery int) final {
		e, err := New(data, mutTestConfig(3))
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for i, op := range log {
			if op.del {
				if err := e.Delete(ctx, op.id); err != nil {
					t.Fatalf("schedule %d op %d delete %d: %v", compactEvery, i, op.id, err)
				}
			} else {
				if _, err := e.Insert(ctx, op.vec); err != nil {
					t.Fatalf("schedule %d op %d insert: %v", compactEvery, i, err)
				}
			}
			if compactEvery > 0 && (i+1)%compactEvery == 0 {
				if _, err := e.Compact(ctx); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := e.Compact(ctx); err != nil {
			t.Fatal(err)
		}
		snap := e.snap.Load()
		ids := snap.ids
		if ids == nil {
			ids = make([]int, snap.n)
			for i := range ids {
				ids[i] = i
			}
		}
		return final{ids: append([]int(nil), ids...), rows: snap.data, n: snap.n}
	}

	ref := run(0)
	for _, every := range []int{5, 17} {
		got := run(every)
		if got.n != ref.n {
			t.Fatalf("schedule %d: %d rows, want %d", every, got.n, ref.n)
		}
		for i := range ref.ids {
			if got.ids[i] != ref.ids[i] {
				t.Fatalf("schedule %d: ids[%d] = %d, want %d", every, i, got.ids[i], ref.ids[i])
			}
		}
		for r := 0; r < ref.n; r++ {
			gr, rr := got.rows.RawRow(r), ref.rows.RawRow(r)
			for c := range rr {
				if math.Float64bits(gr[c]) != math.Float64bits(rr[c]) {
					t.Fatalf("schedule %d: row %d col %d = %v, want %v (bit mismatch)",
						every, r, c, gr[c], rr[c])
				}
			}
		}
	}
}

// TestCompactAllDeleted drives the pathological schedule where every
// captured row is tombstoned: compaction must refuse to build an empty
// snapshot, keep the tombstones pending, and keep answering correctly.
func TestCompactAllDeleted(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	const n, d = 30, 5
	data := randMatrix(rng, n, d)
	e, err := New(data, mutTestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	ctx := context.Background()
	for id := 0; id < n; id++ {
		if err := e.Delete(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	epochBefore := e.Epoch()
	epoch, err := e.Compact(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != epochBefore {
		t.Fatalf("all-deleted compaction advanced epoch %d -> %d", epochBefore, epoch)
	}
	if got := e.Len(); got != 0 {
		t.Fatalf("Len = %d, want 0", got)
	}
	res, err := e.SearchMode(ctx, data.RawRow(0), 3, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 0 {
		t.Fatalf("search over empty set returned %+v", res.Neighbors)
	}
	// The set recovers: an insert is served again and a compaction folds
	// everything down to the single survivor.
	vec := data.RawRow(3)
	id, err := e.Insert(ctx, vec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	res, err = e.SearchMode(ctx, vec, 2, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 1 || res.Neighbors[0].Index != id {
		t.Fatalf("post-recovery search = %+v, want only id %d", res.Neighbors, id)
	}
}

// TestMutationCountersSurviveCompaction pins satellite 4: the mutation
// counters live outside the snapshot, so a compaction (which swaps the
// snapshot and restarts per-shard tallies) must not reset them.
func TestMutationCountersSurviveCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const n, d = 80, 6
	data := randMatrix(rng, n, d)
	e, err := New(data, mutTestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	ctx := context.Background()

	for i := 0; i < 10; i++ {
		if _, err := e.Insert(ctx, data.RawRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	for id := 0; id < 4; id++ {
		if err := e.Delete(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Inserts != 10 || st.Deletes != 4 {
		t.Fatalf("pre-compaction counters: inserts=%d deletes=%d, want 10/4", st.Inserts, st.Deletes)
	}
	if st.DeltaRows != 10 || st.Tombstones != 4 {
		t.Fatalf("pre-compaction depth: delta=%d tombstones=%d, want 10/4", st.DeltaRows, st.Tombstones)
	}
	if _, err := e.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Inserts != 10 || st.Deletes != 4 {
		t.Fatalf("post-compaction counters: inserts=%d deletes=%d, want 10/4 (reset across swap)", st.Inserts, st.Deletes)
	}
	if st.DeltaRows != 0 || st.Tombstones != 0 {
		t.Fatalf("post-compaction depth: delta=%d tombstones=%d, want 0/0", st.DeltaRows, st.Tombstones)
	}
	if st.Compactions != 1 || st.Swaps != 1 {
		t.Fatalf("compactions=%d swaps=%d, want 1/1", st.Compactions, st.Swaps)
	}
	if st.Epoch != 2 {
		t.Fatalf("epoch = %d, want 2", st.Epoch)
	}
	// Another round keeps accumulating rather than restarting.
	if _, err := e.Insert(ctx, data.RawRow(0)); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Inserts != 11 {
		t.Fatalf("inserts = %d after 11th insert, want 11", st.Inserts)
	}
}

// TestLatencyRecorderMergeAcrossEpochs pins the per-epoch histogram
// recorder: epochs record independently, the aggregate quantile merges
// every epoch (including ones folded into history once the retention cap
// is crossed), and a folded epoch stops reporting individually.
func TestLatencyRecorderMergeAcrossEpochs(t *testing.T) {
	l := newLatencyRecorder()
	// Two live epochs with well-separated latencies.
	for i := 0; i < 100; i++ {
		l.record(1, time.Microsecond)
		l.record(2, 100*time.Millisecond)
	}
	p50e1 := l.epochQuantile(1, 0.5)
	p50e2 := l.epochQuantile(2, 0.5)
	if p50e1 <= 0 || p50e2 <= 0 || p50e1 >= p50e2 {
		t.Fatalf("epoch quantiles p50(1)=%v p50(2)=%v, want 0 < p50(1) < p50(2)", p50e1, p50e2)
	}
	// The merged median sits between the two epochs' medians: the merge saw
	// both populations.
	p50 := l.quantile(0.5)
	if p50 < p50e1 || p50 > p50e2 {
		t.Fatalf("merged p50 = %v outside [%v, %v]", p50, p50e1, p50e2)
	}
	// p99 of the merge lands in epoch 2's range.
	if p99 := l.quantile(0.99); p99 < p50e2/2 {
		t.Fatalf("merged p99 = %v, want >= %v", p99, p50e2/2)
	}
	if got := l.epochQuantile(404, 0.5); got != 0 {
		t.Fatalf("unknown epoch quantile = %v, want 0", got)
	}

	// Blow past the retention cap: early epochs fold into history but stay
	// in the aggregate.
	total := 0
	for ep := uint64(1); ep <= latEpochCap+8; ep++ {
		l.record(ep+100, time.Millisecond)
		total++
	}
	if got := l.epochQuantile(101, 0.5); got != 0 {
		t.Fatalf("folded epoch still individually readable: %v", got)
	}
	if got := l.epochQuantile(100+latEpochCap+8, 0.5); got == 0 {
		t.Fatal("live epoch lost its histogram")
	}
	if p99 := l.quantile(0.999); p99 <= 0 {
		t.Fatalf("aggregate quantile after folding = %v, want > 0", p99)
	}
}

// TestEngineEpochLatencySplit drives searches across a compaction and
// checks Stats reports both cumulative and live-epoch percentiles.
func TestEngineEpochLatencySplit(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	const n, d = 60, 5
	data := randMatrix(rng, n, d)
	e, err := New(data, mutTestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	ctx := context.Background()
	q := data.RawRow(0)
	for i := 0; i < 20; i++ {
		if _, err := e.SearchMode(ctx, q, 3, ModeExact); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Insert(ctx, q); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.LatencyP50 <= 0 {
		t.Fatal("cumulative p50 lost after compaction")
	}
	if st.EpochLatencyP50 != 0 {
		t.Fatalf("fresh epoch p50 = %v before it served anything", st.EpochLatencyP50)
	}
	for i := 0; i < 5; i++ {
		if _, err := e.SearchMode(ctx, q, 3, ModeExact); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.EpochLatencyP50 <= 0 {
		t.Fatal("live epoch p50 still zero after serving")
	}
}

// TestSwapDiscardsMutations pins Swap's documented contract: wholesale
// replacement resets pending deltas, tombstones and the ID space.
func TestSwapDiscardsMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	const n, d = 50, 6
	data := randMatrix(rng, n, d)
	e, err := New(data, mutTestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	ctx := context.Background()
	if _, err := e.Insert(ctx, data.RawRow(1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(ctx, 2); err != nil {
		t.Fatal(err)
	}
	next := randMatrix(rng, 35, d)
	if _, err := e.Swap(next); err != nil {
		t.Fatal(err)
	}
	if got := e.Len(); got != 35 {
		t.Fatalf("Len after swap = %d, want 35", got)
	}
	st := e.Stats()
	if st.DeltaRows != 0 || st.Tombstones != 0 {
		t.Fatalf("swap left delta=%d tombstones=%d pending", st.DeltaRows, st.Tombstones)
	}
	// The ID space restarts at the new row count.
	id, err := e.Insert(ctx, next.RawRow(0))
	if err != nil {
		t.Fatal(err)
	}
	if id != 35 {
		t.Fatalf("first post-swap insert id = %d, want 35", id)
	}
}

// FuzzMutationOps decodes an arbitrary byte string into a mutation op log —
// inserts, deletes of plausible and absent IDs, duplicate deletes,
// dimension mismatches, compactions — and asserts the engine never returns
// an untyped error, never diverges from the model's Len, and still matches
// a from-scratch rebuild at the end.
func FuzzMutationOps(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x81, 0x41, 0xc2, 0x10})
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x80, 0x80, 0xff})
	f.Add([]byte("insert-delete-compact"))
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 256 {
			program = program[:256]
		}
		const n, d = 40, 5
		rng := rand.New(rand.NewSource(83))
		data := randMatrix(rng, n, d)
		e, err := New(data, mutTestConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		ctx := context.Background()
		m := newMutModel(data)
		nextID := n
		for pc := 0; pc < len(program); pc++ {
			b := program[pc]
			arg := 0
			if pc+1 < len(program) {
				arg = int(program[pc+1])
			}
			switch b % 5 {
			case 0: // insert
				vec := make([]float64, d)
				for j := range vec {
					vec[j] = float64(arg) + float64(j)*0.25
				}
				id, err := e.Insert(ctx, vec)
				if err != nil {
					t.Fatalf("pc %d insert: %v", pc, err)
				}
				if id != nextID {
					t.Fatalf("pc %d insert id = %d, want %d", pc, id, nextID)
				}
				m.rows[id] = vec
				nextID++
			case 1: // delete an arbitrary (often absent or dead) ID
				id := arg
				err := e.Delete(ctx, id)
				if _, alive := m.rows[id]; alive {
					if err != nil {
						t.Fatalf("pc %d delete live %d: %v", pc, id, err)
					}
					delete(m.rows, id)
				} else if !errors.Is(err, ErrUnknownID) {
					t.Fatalf("pc %d delete dead/absent %d: err = %v, want ErrUnknownID", pc, id, err)
				}
			case 2: // dimension mismatch insert
				if _, err := e.Insert(ctx, make([]float64, d+1+arg%3)); !errors.Is(err, ErrDims) {
					t.Fatalf("pc %d mismatched insert err = %v, want ErrDims", pc, err)
				}
			case 3: // compact
				if _, err := e.Compact(ctx); err != nil {
					t.Fatalf("pc %d compact: %v", pc, err)
				}
			case 4: // expired-context mutation must be a typed deadline
				expired, cancel := context.WithCancel(ctx)
				cancel()
				if _, err := e.Insert(expired, make([]float64, d)); !errors.Is(err, ErrDeadline) {
					t.Fatalf("pc %d expired insert err = %v, want ErrDeadline", pc, err)
				}
			}
			if got := e.Len(); got != len(m.rows) {
				t.Fatalf("pc %d: Len = %d, model has %d", pc, got, len(m.rows))
			}
		}
		if len(m.rows) == 0 {
			return
		}
		queries := randMatrix(rand.New(rand.NewSource(89)), 4, d)
		checkBitIdentical(t, e, m, queries, 5, "fuzz-final")
	})
}
