package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sync"
	"time"

	"repro/internal/knn"
	"repro/internal/linalg"
)

// MutateConfig parameterizes RunMutateLoad, the read/write load generator
// behind `drtool -serve-mutate`.
type MutateConfig struct {
	// Ops is the total number of operations to issue (reads plus writes).
	Ops int
	// Concurrency is the number of closed-loop client goroutines.
	Concurrency int
	// WriteFraction is the probability in [0, 1] that an operation is a
	// write (split roughly evenly between inserts and deletes); the rest
	// are k-NN reads. 0 selects 0.10 — a 90/10 read/write mix.
	WriteFraction float64
	// K is the neighbor count per read.
	K int
	// Deadline is the per-operation context deadline (0 = none).
	Deadline time.Duration
	// Mode selects the search path of ordinary reads (read-your-writes
	// verification reads always run ModeExact, since only the exact path
	// carries the bit-identity contract).
	Mode Mode
	// Seed roots the per-client RNG streams that drive the op mix, the
	// insert payloads, and the delete targets.
	Seed int64
}

// withDefaults fills zero fields.
func (c MutateConfig) withDefaults() MutateConfig {
	if c.Ops <= 0 {
		c.Ops = 10000
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 32
	}
	if c.WriteFraction <= 0 {
		c.WriteFraction = 0.10
	}
	if c.WriteFraction > 1 {
		c.WriteFraction = 1
	}
	if c.K <= 0 {
		c.K = 10
	}
	return c
}

// MutateReport is the outcome accounting of one RunMutateLoad. Every issued
// operation lands in exactly one bucket; the four violation counters —
// Lost, Duplicated, DeletedIDHits, StaleAcks — are what "no acknowledged
// write is ever lost and no deleted row ever resurrects" means
// operationally, and all four must be zero.
type MutateReport struct {
	Ops           int
	Concurrency   int
	WriteFraction float64
	Mode          string

	// Reads counts served read queries; Inserts and Deletes count
	// acknowledged mutations.
	Reads   int
	Inserts int
	Deletes int

	// Typed rejections. UnknownID must be zero here: clients only ever
	// delete IDs they own and have not yet deleted, so an ErrUnknownID is
	// an engine-side accounting bug, not load.
	Overloaded       int
	DeadlineExceeded int
	UnknownID        int
	OtherErrors      int

	// Lost counts op slots that finished with no recorded outcome;
	// Duplicated counts slots with more than one.
	Lost       int
	Duplicated int

	// DeletedIDHits counts read results containing an ID whose deletion the
	// same client had already been acknowledged — a resurrection.
	DeletedIDHits int
	// StaleAcks counts acknowledged inserts that a later ModeExact read by
	// the same client failed to observe — a broken read-your-writes fence.
	StaleAcks int

	// Compactions and Epoch sample the engine after the run: at least one
	// mid-run compaction is what makes the run exercise the full
	// capture/build/install cycle rather than pure delta scanning.
	Compactions uint64
	Epoch       uint64
	// FinalRows is the surviving row count (base − deletes + inserts).
	FinalRows int

	Elapsed    time.Duration
	Throughput float64 // completed operations per second
}

// LiveSet is the ground-truth surviving state after a mutation run: the
// stable IDs still alive (ascending) and their vectors, row-aligned. It is
// what a from-scratch rebuild would serve, so VerifyMutated can hold the
// engine to bit-identity against it.
type LiveSet struct {
	IDs  []int
	Rows *linalg.Dense
}

// Outcome codes of one mutation-load operation slot.
const (
	mOutNone int8 = iota
	mOutRead
	mOutInsert
	mOutDelete
	mOutOverloaded
	mOutDeadline
	mOutUnknown
	mOutError
)

// mutClient is one closed-loop client's private state. Clients partition
// both the op slots (client w owns ops w, w+C, ...) and the deletable rows
// (client w owns base rows w, w+C, ... plus every row it inserted), so all
// bookkeeping is coordination-free and every violation counter is exact.
type mutClient struct {
	rng      *rand.Rand
	alive    []int             // live owned IDs, deletion candidates
	inserted map[int][]float64 // acked inserts (survivors contribute to LiveSet)
	deleted  map[int]struct{}  // acked deletes (must never reappear in reads)
	checkID  int               // pending read-your-writes target, -1 when none
	checkVec []float64
	hits     int // deleted-ID resurrections observed
	stale    int // acked inserts a later exact read missed
}

// RunMutateLoad drives the engine with a mixed read/write workload:
// cfg.Concurrency closed-loop clients issue cfg.Ops operations total —
// k-NN reads cycling through the rows of queries, interleaved with inserts
// (noised copies of base rows) and deletes of rows the client owns. The
// engine must be freshly built over base (stable IDs 0..base.Rows()-1,
// no prior mutations), so the returned LiveSet is exact ground truth.
//
// Three invariants are checked inline and reported, not assumed: every op
// slot completes exactly once (Lost/Duplicated), an acknowledged delete is
// invisible to every later read by that client (DeletedIDHits), and an
// acknowledged insert is visible to the client's next successful exact read
// (StaleAcks).
func RunMutateLoad(ctx context.Context, e *Engine, base, queries *linalg.Dense, cfg MutateConfig) (MutateReport, LiveSet, error) {
	c := cfg.withDefaults()
	nq := queries.Rows()
	baseN, d := base.Dims()
	if nq == 0 || baseN == 0 {
		return MutateReport{}, LiveSet{}, fmt.Errorf("serve: mutation load needs non-empty base and query sets")
	}
	if queries.Cols() != e.Dims() || d != e.Dims() {
		return MutateReport{}, LiveSet{}, fmt.Errorf("serve: mutation load dims (base %d, queries %d) do not match engine (%d)",
			d, queries.Cols(), e.Dims())
	}

	outcomes := make([]int8, c.Ops)
	writes := make([]int32, c.Ops) // per-slot completion count: must end at 1

	clients := make([]*mutClient, c.Concurrency)
	for w := range clients {
		cl := &mutClient{
			rng:      rand.New(rand.NewSource(c.Seed + int64(w)*0x9E3779B9)),
			inserted: make(map[int][]float64),
			deleted:  make(map[int]struct{}),
			checkID:  -1,
		}
		for id := w; id < baseN; id += c.Concurrency {
			cl.alive = append(cl.alive, id)
		}
		clients[w] = cl
	}

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(c.Concurrency)
	for w := 0; w < c.Concurrency; w++ {
		go func(w int) {
			defer wg.Done()
			cl := clients[w]
			for i := w; i < c.Ops; i += c.Concurrency {
				rctx := ctx
				cancel := func() {}
				if c.Deadline > 0 {
					rctx, cancel = context.WithTimeout(ctx, c.Deadline)
				}
				outcomes[i] = cl.step(rctx, e, base, queries, i%nq, c)
				cancel()
				writes[i]++
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := MutateReport{
		Ops:           c.Ops,
		Concurrency:   c.Concurrency,
		WriteFraction: c.WriteFraction,
		Mode:          c.Mode.String(),
		Elapsed:       elapsed,
	}
	for i, o := range outcomes {
		switch o {
		case mOutRead:
			rep.Reads++
		case mOutInsert:
			rep.Inserts++
		case mOutDelete:
			rep.Deletes++
		case mOutOverloaded:
			rep.Overloaded++
		case mOutDeadline:
			rep.DeadlineExceeded++
		case mOutUnknown:
			rep.UnknownID++
		case mOutError:
			rep.OtherErrors++
		default:
			rep.Lost++
		}
		if writes[i] > 1 {
			rep.Duplicated++
		}
	}
	for _, cl := range clients {
		rep.DeletedIDHits += cl.hits
		rep.StaleAcks += cl.stale
	}
	completed := rep.Reads + rep.Inserts + rep.Deletes
	if completed > 0 {
		rep.Throughput = float64(completed) / elapsed.Seconds()
	}

	live := assembleLiveSet(base, clients)
	rep.FinalRows = len(live.IDs)
	st := e.Stats()
	rep.Compactions = st.Compactions
	rep.Epoch = st.Epoch
	return rep, live, nil
}

// step issues one operation and returns its outcome code.
func (cl *mutClient) step(ctx context.Context, e *Engine, base, queries *linalg.Dense, qRow int, c MutateConfig) int8 {
	classify := func(err error) int8 {
		switch {
		case errors.Is(err, ErrOverloaded):
			return mOutOverloaded
		case errors.Is(err, ErrDeadline):
			return mOutDeadline
		case errors.Is(err, ErrUnknownID):
			return mOutUnknown
		default:
			return mOutError
		}
	}

	if cl.rng.Float64() < c.WriteFraction {
		// Write op: even split between insert and delete, falling back to
		// insert when the client has nothing left to delete.
		if cl.rng.Intn(2) == 0 && len(cl.alive) > 0 {
			j := cl.rng.Intn(len(cl.alive))
			id := cl.alive[j]
			if err := e.Delete(ctx, id); err != nil {
				return classify(err)
			}
			cl.alive[j] = cl.alive[len(cl.alive)-1]
			cl.alive = cl.alive[:len(cl.alive)-1]
			cl.deleted[id] = struct{}{}
			delete(cl.inserted, id)
			if id == cl.checkID {
				// The pending read-your-writes target was just deleted by
				// its own writer; absence is now the correct outcome.
				cl.checkID, cl.checkVec = -1, nil
			}
			return mOutDelete
		}
		vec := make([]float64, base.Cols())
		copy(vec, base.RawRow(cl.rng.Intn(base.Rows())))
		for j := range vec {
			vec[j] += cl.rng.NormFloat64() * 0.01
		}
		id, err := e.Insert(ctx, vec)
		if err != nil {
			return classify(err)
		}
		cl.alive = append(cl.alive, id)
		cl.inserted[id] = vec
		cl.checkID, cl.checkVec = id, vec
		return mOutInsert
	}

	// Read op. A pending read-your-writes check replaces the ordinary read:
	// query the inserted vector itself on the exact path and require its ID
	// in the results (distance zero is unbeatable under the canonical
	// order, so absence means the ack was not yet visible — a staleness
	// violation). The check survives failed reads and retries on the next
	// read op.
	if cl.checkID >= 0 {
		res, err := e.SearchMode(ctx, cl.checkVec, c.K, ModeExact)
		if err != nil {
			return classify(err)
		}
		found := false
		for _, nb := range res.Neighbors {
			if nb.Index == cl.checkID {
				found = true
			}
			if _, dead := cl.deleted[nb.Index]; dead {
				cl.hits++
			}
		}
		if !found {
			cl.stale++
		}
		cl.checkID, cl.checkVec = -1, nil
		return mOutRead
	}
	res, err := e.SearchMode(ctx, queries.RawRow(qRow), c.K, c.Mode)
	if err != nil {
		return classify(err)
	}
	for _, nb := range res.Neighbors {
		if _, dead := cl.deleted[nb.Index]; dead {
			cl.hits++
		}
	}
	return mOutRead
}

// assembleLiveSet merges the clients' private bookkeeping into the
// ascending-ID ground truth. Base IDs are the identity range, every insert
// ID exceeds every base ID, and clients' owned sets are disjoint, so the
// concatenation below is globally sorted without a comparison sort over
// the rows.
func assembleLiveSet(base *linalg.Dense, clients []*mutClient) LiveSet {
	baseN, d := base.Dims()
	deadBase := make(map[int]struct{})
	insertedIDs := make([]int, 0)
	insertedRows := make(map[int][]float64)
	for _, cl := range clients {
		for id := range cl.deleted {
			if id < baseN {
				deadBase[id] = struct{}{}
			}
		}
		for id, vec := range cl.inserted {
			insertedIDs = append(insertedIDs, id)
			insertedRows[id] = vec
		}
	}
	ids := make([]int, 0, baseN-len(deadBase)+len(insertedIDs))
	for id := 0; id < baseN; id++ {
		if _, dead := deadBase[id]; !dead {
			ids = append(ids, id)
		}
	}
	slices.Sort(insertedIDs)
	ids = append(ids, insertedIDs...)
	if len(ids) == 0 {
		return LiveSet{}
	}
	rows := linalg.NewDense(len(ids), d)
	for r, id := range ids {
		if id < baseN {
			copy(rows.RawRow(r), base.RawRow(id))
		} else {
			copy(rows.RawRow(r), insertedRows[id])
		}
	}
	return LiveSet{IDs: ids, Rows: rows}
}

// VerifyMutated holds the engine to the bit-identity contract against the
// post-mutation ground truth: for up to sample rows of queries (0 = all),
// the engine's ModeExact top-k must equal knn.SearchSetBatch over
// live.Rows — the from-scratch rebuild over surviving rows — with results
// mapped through live.IDs, equal indices, and distance bits compared with
// math.Float64bits. Call it only after mutation traffic has stopped.
func VerifyMutated(ctx context.Context, e *Engine, live LiveSet, queries *linalg.Dense, k, sample int) error {
	if len(live.IDs) == 0 {
		return fmt.Errorf("serve: VerifyMutated needs a non-empty live set")
	}
	if k > len(live.IDs) {
		k = len(live.IDs)
	}
	nq := queries.Rows()
	if sample <= 0 || sample > nq {
		sample = nq
	}
	qsub := queries.RowSlice(0, sample)
	want := knn.SearchSetBatch(live.Rows, qsub, k, knn.Euclidean{}, false)
	for q := 0; q < sample; q++ {
		res, err := e.SearchMode(ctx, qsub.RawRow(q), k, ModeExact)
		if err != nil {
			return fmt.Errorf("serve: VerifyMutated query %d: %w", q, err)
		}
		if len(res.Neighbors) != len(want[q]) {
			return fmt.Errorf("serve: VerifyMutated query %d: engine returned %d neighbors, rebuild %d",
				q, len(res.Neighbors), len(want[q]))
		}
		for j, nb := range res.Neighbors {
			wantID := live.IDs[want[q][j].Index]
			if nb.Index != wantID {
				return fmt.Errorf("serve: VerifyMutated query %d rank %d: engine id %d, rebuild id %d",
					q, j, nb.Index, wantID)
			}
			if math.Float64bits(nb.Dist) != math.Float64bits(want[q][j].Dist) {
				return fmt.Errorf("serve: VerifyMutated query %d rank %d (id %d): engine dist %v (bits %#x), rebuild %v (bits %#x)",
					q, j, nb.Index, nb.Dist, math.Float64bits(nb.Dist), want[q][j].Dist, math.Float64bits(want[q][j].Dist))
			}
		}
	}
	return nil
}
