package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/index/lsh"
	"repro/internal/linalg"
)

// TestStressSwapOverload is the engine's race-mode workout: many concurrent
// clients mixing modes and deadlines, a rebuilder swapping snapshots mid
// flight, and a queue small enough to overflow under the burst load. It
// asserts the engine's liveness contract — every request ends in exactly
// one of served / ErrOverloaded / ErrDeadline / ErrDims, none lost — and
// the swap contract: a query admitted after a swap completes is served by
// the new epoch (in-flight ones may see either, but never a torn mix).
func TestStressSwapOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(77))
	const (
		n, d     = 20000, 12
		clients  = 12
		perCli   = 40
		swaps    = 6
		k        = 5
		queueCap = 8
	)
	generations := make([]*linalg.Dense, swaps+1)
	for g := range generations {
		generations[g] = randMatrix(rng, n+g, d) // distinct sizes mark generations
	}
	e, err := New(generations[0], Config{
		Shards:           3,
		Workers:          2,
		ShardWorkers:     2,
		QueueDepth:       queueCap,
		DegradeWatermark: 0.5,
		Probes:           8,
		LSH:              lsh.Config{Tables: 3, Hashes: 8, Width: 4, Seed: 21},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	queries := randMatrix(rng, 64, d)

	// minEpoch is a monotone lower bound on the live epoch, advanced by the
	// rebuilder BEFORE Swap returns and read by clients BEFORE admission;
	// a served response must never report an epoch below the bound read
	// before its own admission.
	var minEpoch atomic.Uint64
	minEpoch.Store(1)

	var (
		served, overloaded, deadline, dims, lost atomic.Uint64
	)
	var wg sync.WaitGroup
	wg.Add(clients + 1)

	// Rebuilder: swap through the generations while clients hammer.
	go func() {
		defer wg.Done()
		for g := 1; g <= swaps; g++ {
			time.Sleep(2 * time.Millisecond)
			epoch, err := e.Swap(generations[g])
			if err != nil {
				t.Errorf("swap %d: %v", g, err)
				return
			}
			minEpoch.Store(epoch)
		}
	}()

	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			crng := rand.New(rand.NewSource(int64(1000 + c)))
			for i := 0; i < perCli; i++ {
				mode := Mode(crng.Intn(3))
				q := queries.RawRow(crng.Intn(queries.Rows()))
				floor := minEpoch.Load()
				ctx := context.Background()
				cancel := func() {}
				if crng.Intn(4) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(crng.Intn(3))*time.Millisecond)
				}
				res, err := e.SearchMode(ctx, q, k, mode)
				cancel()
				switch {
				case err == nil:
					served.Add(1)
					if res.Epoch < floor {
						t.Errorf("request admitted at epoch floor %d served by stale epoch %d", floor, res.Epoch)
					}
					if !res.Approx && len(res.Neighbors) != k {
						t.Errorf("exact path served %d neighbors, want %d", len(res.Neighbors), k)
					}
					if len(res.Neighbors) > k {
						t.Errorf("served %d neighbors, more than k=%d", len(res.Neighbors), k)
					}
					// The response's row indices must be valid for the
					// generation that served it (sizes differ per epoch).
					maxRow := n + int(res.Epoch) - 1
					for _, nb := range res.Neighbors {
						if nb.Index < 0 || nb.Index >= maxRow {
							t.Errorf("epoch %d returned row %d outside [0,%d)", res.Epoch, nb.Index, maxRow)
						}
					}
				case errors.Is(err, ErrOverloaded):
					overloaded.Add(1)
				case errors.Is(err, ErrDeadline):
					deadline.Add(1)
				case errors.Is(err, ErrDims):
					dims.Add(1)
				default:
					lost.Add(1)
					t.Errorf("untyped error: %v", err)
				}
			}
		}(c)
	}
	wg.Wait()

	total := served.Load() + overloaded.Load() + deadline.Load() + dims.Load() + lost.Load()
	if total != clients*perCli {
		t.Fatalf("accounting hole: %d outcomes for %d requests", total, clients*perCli)
	}
	if lost.Load() != 0 {
		t.Fatalf("%d untyped outcomes", lost.Load())
	}
	if served.Load() == 0 {
		t.Fatalf("stress run served nothing (overloaded=%d deadline=%d)", overloaded.Load(), deadline.Load())
	}
	if e.Epoch() != swaps+1 {
		t.Fatalf("final epoch %d, want %d", e.Epoch(), swaps+1)
	}

	// After the storm the engine still serves correctly on the final
	// generation.
	res, err := e.SearchMode(context.Background(), queries.RawRow(0), k, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != swaps+1 {
		t.Fatalf("post-storm query served by epoch %d, want %d", res.Epoch, swaps+1)
	}
	st := e.Stats()
	if st.Served != served.Load()+1 {
		t.Fatalf("stats served %d, clients observed %d", st.Served, served.Load()+1)
	}
}
