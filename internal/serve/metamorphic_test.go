package serve

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/knn"
	"repro/internal/linalg"
)

// The knn package checks the metamorphic relations of the scalar and batch
// paths; this file closes the loop for the serving layer: the sharded
// engine's exact path must satisfy the same relations — row permutation,
// dimension negation, and zero-dimension padding leave exact top-k results
// unchanged (ids after un-permutation, distances to 1e-12).

const metamorphicTol = 1e-12

func engineSearchSet(t *testing.T, data, queries *linalg.Dense, shards, k int) [][]knn.Neighbor {
	t.Helper()
	e := newTestEngine(t, data, shards)
	defer e.Close()
	return searchAll(t, e, queries, k, ModeExact)
}

func assertSameNeighbors(t *testing.T, label string, got, want [][]knn.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d queries, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: query %d has %d neighbors, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j].Index != want[i][j].Index {
				t.Fatalf("%s: query %d rank %d id %d, want %d", label, i, j, got[i][j].Index, want[i][j].Index)
			}
			if math.Abs(got[i][j].Dist-want[i][j].Dist) > metamorphicTol {
				t.Fatalf("%s: query %d rank %d dist %v, want %v", label, i, j, got[i][j].Dist, want[i][j].Dist)
			}
		}
	}
}

func TestEngineMetamorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const n, d, nq, k, shards = 350, 17, 30, 8, 3
	data := randMatrix(rng, n, d)
	queries := randMatrix(rng, nq, d)
	base := engineSearchSet(t, data, queries, shards, k)

	t.Run("row permutation", func(t *testing.T) {
		perm := rng.Perm(n)
		got := engineSearchSet(t, data.SliceRows(perm), queries, shards, k)
		for i := range got {
			for j := range got[i] {
				got[i][j].Index = perm[got[i][j].Index]
			}
			knn.SortNeighbors(got[i])
		}
		assertSameNeighbors(t, "engine/permutation", got, base)
	})

	t.Run("dimension negation", func(t *testing.T) {
		col := 5
		negate := func(m *linalg.Dense) *linalg.Dense {
			out := m.Clone()
			for i := 0; i < out.Rows(); i++ {
				out.RawRow(i)[col] *= -1
			}
			return out
		}
		got := engineSearchSet(t, negate(data), negate(queries), shards, k)
		assertSameNeighbors(t, "engine/negation", got, base)
	})

	t.Run("zero-dimension padding", func(t *testing.T) {
		pad := func(m *linalg.Dense) *linalg.Dense {
			out := linalg.NewDense(m.Rows(), m.Cols()+1)
			for i := 0; i < m.Rows(); i++ {
				copy(out.RawRow(i), m.RawRow(i))
			}
			return out
		}
		got := engineSearchSet(t, pad(data), pad(queries), shards, k)
		assertSameNeighbors(t, "engine/zero-pad", got, base)
	})

	// The relations must also survive a snapshot swap: swapping the
	// transformed data into a live engine yields the same answers as an
	// engine built on it from scratch.
	t.Run("swap to permuted data", func(t *testing.T) {
		perm := rng.Perm(n)
		e := newTestEngine(t, data, shards)
		defer e.Close()
		if _, err := e.Swap(data.SliceRows(perm)); err != nil {
			t.Fatal(err)
		}
		got := searchAll(t, e, queries, k, ModeExact)
		for i := range got {
			for j := range got[i] {
				got[i][j].Index = perm[got[i][j].Index]
			}
			knn.SortNeighbors(got[i])
		}
		assertSameNeighbors(t, "engine/swap-permutation", got, base)
	})
}
