package serve

import (
	"context"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/index"
	"repro/internal/knn"
	"repro/internal/linalg"
	"repro/internal/store"
)

// openTestStore writes data into a quantized store file and opens it.
func openTestStore(t *testing.T, data *linalg.Dense, cfg store.BuildConfig) *store.Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "serve.qvs")
	if err := store.Write(path, data, cfg); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func newStoreTestEngine(t *testing.T, st *store.Store, shards, rescore int) *Engine {
	t.Helper()
	e, err := NewFromStore(st, Config{
		Shards:     shards,
		QueueDepth: 4096,
		Rescore:    rescore,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// TestStoreExactMatchesSearchSetBatch extends the engine's core contract to
// the quantized backend: ModeExact over a store-backed snapshot (full
// rescore) must be bit-identical to the single-threaded batch engine over
// the original float64 data, for every shard count.
func TestStoreExactMatchesSearchSetBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n, d, nq, k = 500, 23, 40, 10
	data := randMatrix(rng, n, d)
	queries := randMatrix(rng, nq, d)
	want := knn.SearchSetBatch(data, queries, k, knn.Euclidean{}, false)

	for _, prec := range []store.Precision{store.Int8, store.Int16} {
		st := openTestStore(t, data, store.BuildConfig{Precision: prec})
		for _, shards := range []int{1, 3, 7} {
			e := newStoreTestEngine(t, st, shards, 0)
			got := searchAll(t, e, queries, k, ModeExact)
			for i := range want {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("%v shards=%d query %d: %d neighbors, want %d",
						prec, shards, i, len(got[i]), len(want[i]))
				}
				for j := range want[i] {
					g, w := got[i][j], want[i][j]
					if g.Index != w.Index || math.Float64bits(g.Dist) != math.Float64bits(w.Dist) {
						t.Fatalf("%v shards=%d query %d neighbor %d: got %+v want %+v",
							prec, shards, i, j, g, w)
					}
				}
			}
		}
	}
}

// TestStoreApproxRecallAndCandidates checks that the budgeted approximate
// path returns high-recall results, reports its rescore work, and that the
// reported distances are exact (phase 2 always rescores what it returns).
func TestStoreApproxRecallAndCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	const n, d, nq, k = 800, 23, 40, 10
	data := randMatrix(rng, n, d)
	queries := randMatrix(rng, nq, d)
	want := knn.SearchSetBatch(data, queries, k, knn.Euclidean{}, false)

	st := openTestStore(t, data, store.BuildConfig{Precision: store.Int16})
	e := newStoreTestEngine(t, st, 3, 200)

	got := make([][]knn.Neighbor, nq)
	for i := 0; i < nq; i++ {
		res, err := e.SearchMode(context.Background(), queries.RawRow(i), k, ModeApprox)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Approx {
			t.Fatal("ModeApprox result not marked Approx")
		}
		if res.Candidates <= 0 || res.Candidates > 3*200 {
			t.Fatalf("query %d: %d candidates, want in (0, 600]", i, res.Candidates)
		}
		for _, nb := range res.Neighbors {
			exact := knn.Euclidean{}.Distance(data.RawRow(nb.Index), queries.RawRow(i))
			if math.Float64bits(nb.Dist) != math.Float64bits(exact) {
				t.Fatalf("query %d: neighbor %d reported dist %v, exact %v", i, nb.Index, nb.Dist, exact)
			}
		}
		got[i] = res.Neighbors
	}
	if r := index.MeanRecall(got, want); r < 0.95 {
		t.Fatalf("approx recall %.3f < 0.95", r)
	}
}

// TestStoreScanWorkersBitIdentical pins the intra-query parallelism knob:
// engines differing only in ScanWorkers must serve bit-identical results on
// both the exact and the budgeted approximate path — segment splitting and
// merge order are invisible to callers.
func TestStoreScanWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const n, d, nq, k = 3000, 23, 25, 10
	data := randMatrix(rng, n, d)
	queries := randMatrix(rng, nq, d)
	st := openTestStore(t, data, store.BuildConfig{Precision: store.Int8})

	run := func(scanWorkers int) [][]knn.Neighbor {
		e, err := NewFromStore(st, Config{
			Shards:      2,
			QueueDepth:  4096,
			Rescore:     150,
			ScanWorkers: scanWorkers,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		out := searchAll(t, e, queries, k, ModeExact)
		for i := 0; i < nq; i++ {
			res, err := e.SearchMode(context.Background(), queries.RawRow(i), k, ModeApprox)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res.Neighbors)
		}
		return out
	}

	want := run(1)
	for _, workers := range []int{0, 2, 3} {
		got := run(workers)
		for i := range want {
			for j := range want[i] {
				g, w := got[i][j], want[i][j]
				if g.Index != w.Index || math.Float64bits(g.Dist) != math.Float64bits(w.Dist) {
					t.Fatalf("ScanWorkers=%d result %d neighbor %d: got %+v want %+v",
						workers, i, j, g, w)
				}
			}
		}
	}
}

// TestSwapBetweenDenseAndStore moves one engine across backends and checks
// each generation serves from the right one.
func TestSwapBetweenDenseAndStore(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n, d, k = 300, 13, 5
	dense := randMatrix(rng, n, d)
	other := randMatrix(rng, n, d)
	q := dense.RawRow(0)

	e := newTestEngine(t, dense, 2)
	st := openTestStore(t, other, store.BuildConfig{})
	epoch, err := e.SwapStore(st)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("epoch %d after SwapStore, want 2", epoch)
	}
	res, err := e.SearchMode(context.Background(), q, k, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	want := knn.SearchSetBatch(other, linalg.NewDenseData(1, d, append([]float64(nil), q...)), k, knn.Euclidean{}, false)[0]
	for j := range want {
		if res.Neighbors[j] != want[j] {
			t.Fatalf("store generation neighbor %d: got %+v want %+v", j, res.Neighbors[j], want[j])
		}
	}

	// And back to dense.
	if _, err := e.Swap(dense); err != nil {
		t.Fatal(err)
	}
	res, err = e.SearchMode(context.Background(), q, k, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	if res.Neighbors[0].Index != 0 || res.Neighbors[0].Dist != 0 {
		t.Fatalf("dense generation: query is row 0, got nearest %+v", res.Neighbors[0])
	}
	if res.Epoch != 3 {
		t.Fatalf("epoch %d after Swap back, want 3", res.Epoch)
	}
}

// TestNewFromStoreRejectsNil pins the constructor's error paths.
func TestNewFromStoreRejectsNil(t *testing.T) {
	if _, err := NewFromStore(nil, Config{}); err == nil {
		t.Fatal("nil store accepted")
	}
	e := newTestEngine(t, randMatrix(rand.New(rand.NewSource(1)), 10, 3), 2)
	if _, err := e.SwapStore(nil); err == nil {
		t.Fatal("nil store accepted by SwapStore")
	}
}
