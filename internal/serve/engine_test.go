package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/index/lsh"
	"repro/internal/knn"
	"repro/internal/linalg"
)

// randMatrix fills an n x d matrix from a seeded source.
func randMatrix(rng *rand.Rand, n, d int) *linalg.Dense {
	m := linalg.NewDense(n, d)
	for i := 0; i < n; i++ {
		row := m.RawRow(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	return m
}

// newTestEngine builds a small engine with a roomy queue so tests that do
// not target admission control never see rejections.
func newTestEngine(t *testing.T, data *linalg.Dense, shards int) *Engine {
	t.Helper()
	e, err := New(data, Config{
		Shards:     shards,
		QueueDepth: 4096,
		LSH:        lsh.Config{Tables: 4, Hashes: 8, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// searchAll issues one exact query per row of queries and collects results.
func searchAll(t *testing.T, e *Engine, queries *linalg.Dense, k int, mode Mode) [][]knn.Neighbor {
	t.Helper()
	out := make([][]knn.Neighbor, queries.Rows())
	for i := range out {
		res, err := e.SearchMode(context.Background(), queries.RawRow(i), k, mode)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		out[i] = res.Neighbors
	}
	return out
}

// TestExactMatchesSearchSetBatch is the core correctness contract: the
// sharded exact path must be bit-identical to the single-threaded batch
// engine, for every shard count including degenerate ones.
func TestExactMatchesSearchSetBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, d, nq, k = 500, 23, 60, 10
	data := randMatrix(rng, n, d)
	queries := randMatrix(rng, nq, d)
	want := knn.SearchSetBatch(data, queries, k, knn.Euclidean{}, false)

	for _, shards := range []int{1, 2, 3, 7, 16} {
		e := newTestEngine(t, data, shards)
		got := searchAll(t, e, queries, k, ModeExact)
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("shards=%d query %d: %d neighbors, want %d", shards, i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("shards=%d query %d neighbor %d: got %+v want %+v",
						shards, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestApproxMatchesUnshardedUnion: the sharded approximate path must return
// neighbors drawn from the union of per-shard LSH candidates with exact
// distances, sorted canonically — and with generous probing it should agree
// with exact search on most queries.
func TestApproxRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, d, nq, k = 800, 16, 40, 5
	data := randMatrix(rng, n, d)
	queries := randMatrix(rng, nq, d)
	e, err := New(data, Config{
		Shards:     4,
		QueueDepth: 4096,
		Probes:     64,
		LSH:        lsh.Config{Tables: 8, Hashes: 8, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	exact := knn.SearchSetBatch(data, queries, k, knn.Euclidean{}, false)
	hits, total := 0, 0
	for i := 0; i < nq; i++ {
		res, err := e.SearchMode(context.Background(), queries.RawRow(i), k, ModeApprox)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Approx {
			t.Fatalf("ModeApprox result not flagged approximate")
		}
		if res.Candidates <= 0 {
			t.Fatalf("approximate result refined no candidates")
		}
		set := map[int]bool{}
		for _, nb := range exact[i] {
			set[nb.Index] = true
		}
		for _, nb := range res.Neighbors {
			total++
			if set[nb.Index] {
				hits++
			}
		}
		for j := 1; j < len(res.Neighbors); j++ {
			if knn.LessNeighbor(res.Neighbors[j], res.Neighbors[j-1]) {
				t.Fatalf("approx results out of canonical order at query %d", i)
			}
		}
	}
	if recall := float64(hits) / float64(total); recall < 0.8 {
		t.Fatalf("approx recall %.3f too low for generous probing", recall)
	}
}

// TestKLargerThanData: k beyond the row count returns every row once.
func TestKLargerThanData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := randMatrix(rng, 13, 6)
	e := newTestEngine(t, data, 4)
	res, err := e.SearchMode(context.Background(), data.RawRow(0), 50, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 13 {
		t.Fatalf("k>n returned %d neighbors, want all 13", len(res.Neighbors))
	}
	seen := map[int]bool{}
	for _, nb := range res.Neighbors {
		if seen[nb.Index] {
			t.Fatalf("duplicate index %d in k>n result", nb.Index)
		}
		seen[nb.Index] = true
	}
}

// TestAdmissionOverload saturates a tiny queue with no workers able to keep
// up (the workers are blocked by a slow shard pool is not simulable, so the
// test floods a 1-worker engine) and requires typed ErrOverloaded.
func TestAdmissionOverload(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Large enough that one exact scan takes real time: a single worker
	// cannot keep a depth-4 queue drained against 16 bursting clients.
	data := randMatrix(rng, 100000, 16)
	e, err := New(data, Config{
		Shards:       2,
		Workers:      1,
		ShardWorkers: 1,
		QueueDepth:   4,
		LSH:          lsh.Config{Tables: 2, Hashes: 6, Width: 4, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const clients, perClient = 16, 10
	var mu sync.Mutex
	counts := map[string]int{}
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				_, err := e.SearchMode(context.Background(), data.RawRow((c*perClient+i)%data.Rows()), 5, ModeExact)
				mu.Lock()
				switch {
				case err == nil:
					counts["served"]++
				case errors.Is(err, ErrOverloaded):
					counts["overloaded"]++
				default:
					counts["other"]++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if counts["other"] != 0 {
		t.Fatalf("untyped errors under overload: %v", counts)
	}
	if counts["served"]+counts["overloaded"] != clients*perClient {
		t.Fatalf("lost responses: %v (want %d total)", counts, clients*perClient)
	}
	if counts["overloaded"] == 0 {
		t.Fatalf("flooding a depth-4 queue produced no ErrOverloaded: %v", counts)
	}
	st := e.Stats()
	if st.Rejected != uint64(counts["overloaded"]) {
		t.Fatalf("stats rejected %d, observed %d", st.Rejected, counts["overloaded"])
	}
	if st.Served != uint64(counts["served"]) {
		t.Fatalf("stats served %d, observed %d", st.Served, counts["served"])
	}
}

// TestDegradation fills the queue beyond the watermark and checks that
// ModeAuto requests admitted above it come back flagged Degraded+Approx
// while ModeExact requests never degrade.
func TestDegradation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Expensive exact scans with a deep-enough queue: ModeAuto requests
	// arriving behind the backlog cross the 0.25 watermark and degrade.
	data := randMatrix(rng, 100000, 16)
	e, err := New(data, Config{
		Shards:           2,
		Workers:          1,
		ShardWorkers:     1,
		QueueDepth:       32,
		DegradeWatermark: 0.25,
		Probes:           8,
		LSH:              lsh.Config{Tables: 4, Hashes: 8, Width: 4, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const clients, perClient = 24, 10
	var degraded, servedExact atomic64
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				res, err := e.Search(context.Background(), data.RawRow((c*perClient+i)%data.Rows()), 5)
				if err != nil {
					if !errors.Is(err, ErrOverloaded) {
						t.Errorf("unexpected error: %v", err)
					}
					continue
				}
				if res.Degraded {
					if !res.Approx {
						t.Error("degraded result not marked approximate")
					}
					degraded.add(1)
				} else if !res.Approx {
					servedExact.add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	if degraded.load() == 0 {
		t.Fatalf("no request degraded despite a 0.25 watermark under 24-way load")
	}
	st := e.Stats()
	if st.Degraded != uint64(degraded.load()) {
		t.Fatalf("stats degraded %d, observed %d", st.Degraded, degraded.load())
	}
	if st.Exact != uint64(servedExact.load()) {
		t.Fatalf("stats exact %d, observed %d", st.Exact, servedExact.load())
	}
}

// TestDeadline: an already-expired context is rejected with ErrDeadline
// before admission; a deadline expiring mid-queue also surfaces ErrDeadline.
func TestDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := randMatrix(rng, 500, 16)
	e := newTestEngine(t, data, 2)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := e.SearchMode(ctx, data.RawRow(0), 3, ModeExact)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired context returned %v, want ErrDeadline", err)
	}
	st := e.Stats()
	if st.Deadline == 0 {
		t.Fatalf("deadline rejection not counted")
	}
}

// TestSwap verifies the atomic snapshot swap: results computed against the
// new data, epoch bumped, dims free to change, and stale-dimension queries
// typed as ErrDims.
func TestSwap(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const d, d2 = 12, 9
	dataA := randMatrix(rng, 300, d)
	dataB := randMatrix(rng, 400, d)
	e := newTestEngine(t, dataA, 3)

	q := dataA.RawRow(7)
	before, err := e.SearchMode(context.Background(), q, 4, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	if before.Epoch != 1 {
		t.Fatalf("initial epoch %d, want 1", before.Epoch)
	}

	epoch, err := e.Swap(dataB)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || e.Epoch() != 2 || e.Len() != 400 {
		t.Fatalf("post-swap epoch %d len %d", e.Epoch(), e.Len())
	}
	after, err := e.SearchMode(context.Background(), q, 4, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	if after.Epoch != 2 {
		t.Fatalf("post-swap query served by epoch %d", after.Epoch)
	}
	want := knn.SearchSetBatch(dataB, dataA.RowSlice(7, 8), 4, knn.Euclidean{}, false)[0]
	for j := range want {
		if after.Neighbors[j] != want[j] {
			t.Fatalf("post-swap result %d = %+v, want %+v", j, after.Neighbors[j], want[j])
		}
	}

	// Dimensionality change: old-width queries get a typed rejection.
	if _, err := e.Swap(randMatrix(rng, 200, d2)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SearchMode(context.Background(), q, 4, ModeExact); !errors.Is(err, ErrDims) {
		t.Fatalf("stale-width query returned %v, want ErrDims", err)
	}
	st := e.Stats()
	if st.Swaps != 2 || st.Epoch != 3 {
		t.Fatalf("stats swaps=%d epoch=%d, want 2/3", st.Swaps, st.Epoch)
	}
}

// TestClose: closed engines reject with ErrClosed, Close is idempotent, and
// requests in flight at Close time still complete.
func TestClose(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	data := randMatrix(rng, 400, 8)
	e, err := New(data, Config{Shards: 2, QueueDepth: 64, LSH: lsh.Config{Tables: 2, Hashes: 6, Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search(context.Background(), data.RawRow(0), 3); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent
	if _, err := e.Search(context.Background(), data.RawRow(0), 3); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed engine returned %v, want ErrClosed", err)
	}
}

// TestBadInputs covers per-request validation.
func TestBadInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	data := randMatrix(rng, 50, 5)
	e := newTestEngine(t, data, 2)
	if _, err := e.Search(context.Background(), data.RawRow(0), 0); err == nil {
		t.Fatalf("k=0 accepted")
	}
	if _, err := e.Search(context.Background(), []float64{1, 2}, 3); !errors.Is(err, ErrDims) {
		t.Fatalf("short query returned %v, want ErrDims", err)
	}
}

// TestStatsLatency: served requests populate the latency histogram.
func TestStatsLatency(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := randMatrix(rng, 300, 10)
	e := newTestEngine(t, data, 2)
	for i := 0; i < 20; i++ {
		if _, err := e.Search(context.Background(), data.RawRow(i), 3); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Served != 20 {
		t.Fatalf("served %d, want 20", st.Served)
	}
	if st.LatencyP50 <= 0 || st.LatencyP99 < st.LatencyP50 {
		t.Fatalf("latency percentiles p50=%v p99=%v", st.LatencyP50, st.LatencyP99)
	}
	var tasks uint64
	for _, v := range st.ShardTasks {
		tasks += v
	}
	if tasks != 20*uint64(st.Shards) {
		t.Fatalf("shard tasks %d, want %d", tasks, 20*st.Shards)
	}
}

// atomic64 is a tiny test helper counter.
type atomic64 struct {
	mu sync.Mutex
	v  int
}

func (a *atomic64) add(n int) { a.mu.Lock(); a.v += n; a.mu.Unlock() }
func (a *atomic64) load() int { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
