package serve

import (
	"fmt"
	"runtime"

	"repro/internal/store"
)

// quantShard is the quantized-store backend: one contiguous range of an
// mmap-backed store.Store (shared across the snapshot's shards, since the
// store is already safe for concurrent range scans).
//
// The exact path runs the store's two-phase search with a full rescore
// budget, which is bit-identical to the float64 scan (every point is
// admitted and exactly rescored), so a store-backed engine preserves the
// engine's exact-path contract. The approximate path keeps the quantized
// scan but caps phase-2 rescoring at the configured budget — the store's
// replacement for LSH probing, with the budget playing the role the probe
// count plays on dense shards.
type quantShard struct {
	lo, hi  int
	st      *store.Store
	rescore int // approximate-path budget; <=0 selects rescoreFactor·k
	workers int // intra-query scan parallelism (Config.ScanWorkers)
}

// rescoreFactor scales k into the default approximate rescore budget.
const rescoreFactor = 32

func (s *quantShard) searchExact(query []float64, k int) shardOut {
	neigh, _ := s.st.SearchRangeWorkers(query, s.lo, s.hi, k, s.hi-s.lo, s.workers)
	return shardOut{neigh: neigh}
}

func (s *quantShard) searchApprox(query []float64, k, probes int) shardOut {
	budget := s.rescore
	if budget <= 0 {
		budget = rescoreFactor * k
	}
	neigh, rescored := s.st.SearchRangeWorkers(query, s.lo, s.hi, k, budget, s.workers)
	return shardOut{neigh: neigh, candidates: rescored}
}

// NewFromStore builds an engine whose shards scan a quantized store instead
// of an in-memory matrix. The store is retained, not copied; it must stay
// open while the engine serves. cfg.LSH and cfg.Probes are ignored (the
// store's rescore budget replaces probing); cfg.Rescore bounds the
// approximate path's per-shard exact refinement.
func NewFromStore(st *store.Store, cfg Config) (*Engine, error) {
	if st == nil {
		return nil, fmt.Errorf("serve: nil store")
	}
	n, d := st.Len(), st.Dims()
	if n == 0 || d == 0 {
		return nil, fmt.Errorf("serve: cannot serve %dx%d store", n, d)
	}
	c := cfg.withDefaults(n, runtime.GOMAXPROCS(0))
	e := newEngine(c)
	snap := buildStoreSnapshot(st, c, 1)
	e.snap.Store(snap)
	e.resetMutationLocked(snap)
	if c.Drift.Components > 0 {
		e.drift = newDriftMonitor(c.Drift, st.ExactMatrix())
	}
	e.start()
	return e, nil
}

// buildStoreSnapshot partitions the store's rows into cfg.Shards contiguous
// quantShards over the shared mapping.
func buildStoreSnapshot(st *store.Store, cfg Config, epoch uint64) *snapshot {
	n := st.Len()
	// exact is the store's resident full-precision region: the float64
	// ground truth its own exact path rescores against, and therefore the
	// row source the compactor folds from. A store-backed engine's first
	// compaction consequently produces a dense-backed snapshot over those
	// exact rows, which preserves bit-identity of every later query.
	snap := &snapshot{epoch: epoch, n: n, d: st.Dims(), exact: st.ExactMatrix(), shards: make([]*shard, cfg.Shards)}
	for s, r := range shardRanges(n, cfg.Shards) {
		snap.shards[s] = &shard{
			lo: r[0],
			hi: r[1],
			be: &quantShard{lo: r[0], hi: r[1], st: st, rescore: cfg.Rescore, workers: cfg.ScanWorkers},
		}
	}
	return snap
}

// SwapStore is Swap for a quantized store: it builds a store-backed
// snapshot and atomically installs it, so an engine can move between dense
// and store backends across generations without dropping queries.
func (e *Engine) SwapStore(st *store.Store) (uint64, error) {
	if st == nil {
		return 0, fmt.Errorf("serve: nil store")
	}
	n, d := st.Len(), st.Dims()
	if n == 0 || d == 0 {
		return 0, fmt.Errorf("serve: cannot swap in %dx%d store", n, d)
	}
	cfg := e.cfg
	if cfg.Shards > n {
		cfg.Shards = n
	}
	next := buildStoreSnapshot(st, cfg, e.snap.Load().epoch+1)
	e.installSnapshot(next)
	if e.drift != nil {
		e.drift.reseed(st.ExactMatrix())
	}
	return next.epoch, nil
}
