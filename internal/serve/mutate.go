package serve

import (
	"cmp"
	"context"
	"fmt"
	"slices"
	"sync"

	"repro/internal/knn"
	"repro/internal/linalg"
)

// This file is the engine's write path: Insert and Delete mutate the served
// set without stopping the reader side, and a compactor folds the
// accumulated mutations into a fresh snapshot generation.
//
// The design is a two-level LSM shape specialized for similarity search:
//
//   - The snapshot is immutable. Rows carry stable integer IDs that survive
//     compaction (snapshot.ids; nil means IDs equal row positions, the
//     state of a freshly built engine).
//   - Inserts append to per-shard delta buffers (one per snapshot shard,
//     routed by id mod P). Delta rows are brute-force scanned next to the
//     indexed snapshot with the same norm-cache distance identity the dense
//     backend uses, so exact results stay bit-identical to a from-scratch
//     rebuild over the surviving rows.
//   - Deletes tombstone: a deleted snapshot row lands in snapDead (its
//     position) and a deleted delta row in deltaDead (its ID). Both lists
//     are append-only, so a query can capture their headers under a short
//     read lock and filter against a point-in-time-consistent view without
//     holding any lock during the scan or the merge.
//   - The compactor freezes (snapshot, delta prefix, tombstones) under the
//     read lock, builds a rebuilt snapshot off-lock — re-deriving norm
//     caches and LSH tables via buildSnapshot — and installs it through the
//     same atomic.Pointer epoch machinery Swap uses. Mutations that arrive
//     during the build are re-threaded onto the new generation at install
//     time, so nothing is lost and nothing resurrects.
//
// Exactness of the tombstone filter: each shard scan over-fetches
// k + tombSnap[s] candidates, where tombSnap[s] counts the shard's dead
// positions at capture time. At most tombSnap[s] of the returned candidates
// can be dead, so after filtering, every one of the shard's top-k surviving
// rows is still present — the canonical (distance, index) merge then sees
// exactly the candidates a rebuild over survivors would produce. Delta
// scans instead skip dead rows inline (the scan loop is ours), which needs
// no over-fetch at all.
//
// Visibility contract: a query captures (snapshot, delta views, tombstone
// lengths) atomically under mut.mu.RLock. Mutations acknowledged before the
// query was issued are therefore always visible; mutations that land while
// the query is in flight may or may not be, either outcome being a correct
// linearization.

// mutState is the engine's mutation state. Every field is guarded by mu.
// The slices referenced by bufs, snapDead and deltaDead are append-only
// between snapshot installs: readers capture slice headers under RLock and
// may keep reading the captured prefix after releasing the lock.
type mutState struct {
	mu sync.RWMutex
	// bufs holds the delta rows, one buffer per snapshot shard
	// (len(bufs) == len(snap.shards) at all times); insert id i routes to
	// bufs[i%len(bufs)], so lookups need no directory.
	bufs []deltaBuf
	// snapDead lists tombstoned snapshot positions in delete order;
	// deltaDead lists tombstoned delta-row IDs in delete order.
	snapDead  []int
	deltaDead []int
	// tombSnap counts dead positions per snapshot shard — the query path's
	// per-shard over-fetch budget.
	tombSnap []int
	// tombIDs indexes every live tombstone by ID for duplicate-delete
	// detection. Only the write path reads it.
	tombIDs map[int]struct{}
	// live counts delta rows that are not tombstoned (the write-admission
	// watermark); nextID is the next insert ID, monotone across
	// compactions.
	live   int
	nextID int
}

// deltaBuf is one append-only delta buffer: flat row-major vectors, their
// IDs (ascending) and cached squared norms, index-aligned.
type deltaBuf struct {
	rows  []float64
	ids   []int
	norms []float64
}

// deltaView is a reader's captured prefix of a delta buffer plus the row
// width; shard workers brute-force scan it next to the indexed snapshot.
type deltaView struct {
	rows  []float64
	ids   []int
	norms []float64
	d     int
}

// scan returns the view's top-k live rows as (ID, exact distance) pairs in
// the canonical order. dead is the sorted captured list of tombstoned delta
// IDs; rows on it are skipped inline. The admission pass uses the same
// ‖x‖²+‖q‖²−2⟨x,q⟩ identity and the same dot kernel as the dense backend
// and knn.SearchSetBatch, and admitted rows are rescored with the scalar
// metric, so delta results merge bit-identically with a from-scratch
// rebuild over the surviving rows.
//
//drlint:hotpath inline=6
func (v *deltaView) scan(query []float64, k int, dead []int, c *knn.Collector) []knn.Neighbor {
	n := len(v.ids)
	if k > n {
		k = n
	}
	c.Reset(k)
	qn := linalg.Dot(query, query)
	for i := 0; i < n; i++ {
		if containsSorted(dead, v.ids[i]) {
			continue
		}
		d2 := v.norms[i] + qn - 2*linalg.Dot(v.rows[i*v.d:(i+1)*v.d], query)
		if d2 < 0 {
			d2 = 0
		}
		c.Offer(i, d2)
	}
	res := c.Results()
	eu := knn.Euclidean{}
	for i := range res {
		li := res[i].Index
		res[i].Dist = eu.Distance(v.rows[li*v.d:(li+1)*v.d], query)
		res[i].Index = v.ids[li]
	}
	knn.SortNeighbors(res)
	return res
}

// containsSorted reports whether x occurs in the ascending list s.
//
//drlint:hotpath
func containsSorted(s []int, x int) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == x
}

// resetMutationLocked reinitializes the mutation state for a freshly
// installed snapshot that carries no pending mutations (New, Swap,
// SwapStore). Caller holds mut.mu, or the engine is not yet started.
func (e *Engine) resetMutationLocked(snap *snapshot) {
	p := len(snap.shards)
	e.mut.bufs = make([]deltaBuf, p)
	e.mut.snapDead = nil
	e.mut.deltaDead = nil
	e.mut.tombSnap = make([]int, p)
	e.mut.tombIDs = make(map[int]struct{})
	e.mut.live = 0
	if snap.ids == nil {
		e.mut.nextID = snap.n
	} else {
		e.mut.nextID = snap.ids[len(snap.ids)-1] + 1
	}
}

// snapIDOf returns the stable ID of snapshot position pos.
func snapIDOf(snap *snapshot, pos int) int {
	if snap.ids == nil {
		return pos
	}
	return snap.ids[pos]
}

// snapPosOf returns the position of ID id in the snapshot, or -1 when the
// snapshot does not hold it. snap.ids is ascending by construction, so
// non-identity lookups are a binary search.
func snapPosOf(snap *snapshot, id int) int {
	if id < 0 {
		return -1
	}
	if snap.ids == nil {
		if id < snap.n {
			return id
		}
		return -1
	}
	pos, ok := slices.BinarySearch(snap.ids, id)
	if !ok {
		return -1
	}
	return pos
}

// shardIndexOf returns the index of the shard holding snapshot position
// pos. Shard counts are small (≲ processor count), so a linear walk beats a
// search.
func shardIndexOf(snap *snapshot, pos int) int {
	for i, sh := range snap.shards {
		if pos < sh.hi {
			return i
		}
	}
	return len(snap.shards) - 1
}

// Insert adds a vector to the served set and returns its stable ID. The
// vector is copied. Admission mirrors the query path: ErrDeadline when ctx
// already expired, ErrClosed after Close, ErrDims on a width mismatch, and
// ErrOverloaded once the live delta backlog reaches Config.MaxDelta —
// write backpressure until the compactor catches up. An acknowledged
// insert is visible to every query issued after Insert returns.
func (e *Engine) Insert(ctx context.Context, vec []float64) (int, error) {
	if err := ctx.Err(); err != nil {
		e.counters.deadline.Add(1)
		return 0, fmt.Errorf("%w (before insert: %v)", ErrDeadline, err)
	}
	e.closeMu.RLock()
	closed := e.closed
	e.closeMu.RUnlock()
	if closed {
		return 0, ErrClosed
	}

	e.mut.mu.Lock()
	snap := e.snap.Load()
	if len(vec) != snap.d {
		e.mut.mu.Unlock()
		return 0, fmt.Errorf("%w: insert has %d dims, index has %d", ErrDims, len(vec), snap.d)
	}
	if e.mut.live >= e.cfg.MaxDelta {
		backlog := e.mut.live
		e.mut.mu.Unlock()
		e.counters.rejected.Add(1)
		e.maybeCompact()
		return 0, fmt.Errorf("%w (delta backlog at %d rows awaiting compaction)", ErrOverloaded, backlog)
	}
	id := e.mut.nextID
	e.mut.nextID++
	b := &e.mut.bufs[id%len(e.mut.bufs)]
	b.rows = append(b.rows, vec...)
	b.ids = append(b.ids, id)
	b.norms = append(b.norms, linalg.Dot(vec, vec))
	e.mut.live++
	e.mut.mu.Unlock()

	e.counters.inserts.Add(1)
	if e.drift != nil {
		e.drift.observe(vec, +1)
	}
	e.maybeCompact()
	return id, nil
}

// Delete tombstones the row with the given stable ID. Typed errors mirror
// Insert; an ID that is absent — never issued, already deleted, or already
// deleted and compacted away — returns ErrUnknownID. An acknowledged
// delete is invisible to every query issued after Delete returns.
func (e *Engine) Delete(ctx context.Context, id int) error {
	if err := ctx.Err(); err != nil {
		e.counters.deadline.Add(1)
		return fmt.Errorf("%w (before delete: %v)", ErrDeadline, err)
	}
	e.closeMu.RLock()
	closed := e.closed
	e.closeMu.RUnlock()
	if closed {
		return ErrClosed
	}

	e.mut.mu.Lock()
	snap := e.snap.Load()
	if _, dead := e.mut.tombIDs[id]; dead {
		e.mut.mu.Unlock()
		return fmt.Errorf("%w: id %d already deleted", ErrUnknownID, id)
	}
	var row []float64
	if pos := snapPosOf(snap, id); pos >= 0 {
		e.mut.tombIDs[id] = struct{}{}
		e.mut.snapDead = append(e.mut.snapDead, pos)
		e.mut.tombSnap[shardIndexOf(snap, pos)]++
		if e.drift != nil {
			row = snap.exact.RawRow(pos)
		}
	} else if j, bi := deltaIndexOf(&e.mut, id); j >= 0 {
		e.mut.tombIDs[id] = struct{}{}
		e.mut.deltaDead = append(e.mut.deltaDead, id)
		e.mut.live--
		if e.drift != nil {
			b := &e.mut.bufs[bi]
			row = b.rows[j*snap.d : (j+1)*snap.d]
		}
	} else {
		e.mut.mu.Unlock()
		return fmt.Errorf("%w: id %d is not in the served set", ErrUnknownID, id)
	}
	e.mut.mu.Unlock()

	e.counters.deletes.Add(1)
	if e.drift != nil && row != nil {
		e.drift.observe(row, -1)
	}
	e.maybeCompact()
	return nil
}

// deltaIndexOf locates a live-or-dead delta row by ID: (row index within
// its buffer, buffer index), or (-1, -1). Caller holds mut.mu.
func deltaIndexOf(m *mutState, id int) (int, int) {
	if id < 0 || id >= m.nextID || len(m.bufs) == 0 {
		return -1, -1
	}
	bi := id % len(m.bufs)
	j, ok := slices.BinarySearch(m.bufs[bi].ids, id)
	if !ok {
		return -1, -1
	}
	return j, bi
}

// maybeCompact schedules a background compaction when pending mutation
// state crosses Config.CompactAt, the write path is saturated, or the
// drift monitor reports that the frozen PCA basis has decayed. At most one
// compactor runs at a time; redundant triggers are coalesced.
func (e *Engine) maybeCompact() {
	if e.cfg.CompactAt < 0 {
		return
	}
	e.mut.mu.RLock()
	pending := e.mut.live + len(e.mut.snapDead) + len(e.mut.deltaDead)
	saturated := e.mut.live >= e.cfg.MaxDelta
	e.mut.mu.RUnlock()
	if pending == 0 {
		return
	}
	decayed := e.drift != nil && e.drift.decayed()
	if pending < e.cfg.CompactAt && !saturated && !decayed {
		return
	}
	if !e.compacting.CompareAndSwap(false, true) {
		return
	}
	// The closed check and the WaitGroup Add share the read lock, and Close
	// flips closed under the write lock before waiting, so Close never
	// misses a compactor it must join.
	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		e.compacting.Store(false)
		return
	}
	e.compactWG.Add(1)
	e.closeMu.RUnlock()
	go func() {
		defer e.compactWG.Done()
		defer e.compacting.Store(false)
		e.compactMu.Lock()
		defer e.compactMu.Unlock()
		e.compactOnce()
	}()
}

// Compact synchronously folds the pending delta rows and tombstones into a
// rebuilt snapshot and installs it, returning the epoch serving when it is
// done. With nothing pending (or when a concurrent Swap supersedes the
// rebuild mid-build) the live epoch is returned unchanged. Queries and
// mutations keep flowing throughout: the build runs off-lock against a
// frozen capture, and only the pointer install takes the write lock.
func (e *Engine) Compact(ctx context.Context) (uint64, error) {
	if err := ctx.Err(); err != nil {
		e.counters.deadline.Add(1)
		return 0, fmt.Errorf("%w (before compaction: %v)", ErrDeadline, err)
	}
	e.closeMu.RLock()
	closed := e.closed
	e.closeMu.RUnlock()
	if closed {
		return 0, ErrClosed
	}
	e.compactMu.Lock()
	defer e.compactMu.Unlock()
	return e.compactOnce(), nil
}

// deltaRef addresses one delta row during compaction.
type deltaRef struct{ id, buf, idx int }

// compactOnce performs one capture → build → install cycle. Caller holds
// compactMu (one compaction at a time); mut.mu is taken only for the
// capture and the install, never across the build.
func (e *Engine) compactOnce() uint64 {
	// ---- capture: freeze (snapshot, delta prefixes, tombstones) ----
	e.mut.mu.RLock()
	snap := e.snap.Load()
	if e.mut.live == 0 && len(e.mut.snapDead) == 0 && len(e.mut.deltaDead) == 0 {
		epoch := snap.epoch
		e.mut.mu.RUnlock()
		return epoch
	}
	cuts := make([]int, len(e.mut.bufs))
	views := make([]deltaView, len(e.mut.bufs))
	for i := range e.mut.bufs {
		b := &e.mut.bufs[i]
		cuts[i] = len(b.ids)
		views[i] = deltaView{rows: b.rows, ids: b.ids, norms: b.norms, d: snap.d}
	}
	cutDeadPos := len(e.mut.snapDead)
	cutDeadIDs := len(e.mut.deltaDead)
	frozenDeadPos := append([]int(nil), e.mut.snapDead[:cutDeadPos]...)
	frozenDeadIDs := append([]int(nil), e.mut.deltaDead[:cutDeadIDs]...)
	e.mut.mu.RUnlock()
	slices.Sort(frozenDeadPos)
	slices.Sort(frozenDeadIDs)

	// ---- build: materialize survivors in ascending ID order ----
	// Snapshot IDs are ascending and every delta ID exceeds every snapshot
	// ID (nextID is monotone), so surviving snapshot rows followed by
	// ID-sorted surviving delta rows is the globally sorted order. That
	// order is a function of the mutation history alone — not of when
	// compactions ran — which is what makes compaction deterministic.
	keepPos := make([]int, 0, snap.n)
	for pos := 0; pos < snap.n; pos++ {
		if containsSorted(frozenDeadPos, pos) {
			continue
		}
		keepPos = append(keepPos, pos)
	}
	var refs []deltaRef
	for bi := range views {
		v := &views[bi]
		for j := 0; j < cuts[bi]; j++ {
			if containsSorted(frozenDeadIDs, v.ids[j]) {
				continue
			}
			refs = append(refs, deltaRef{id: v.ids[j], buf: bi, idx: j})
		}
	}
	slices.SortFunc(refs, func(a, b deltaRef) int { return cmp.Compare(a.id, b.id) })
	total := len(keepPos) + len(refs)
	if total == 0 {
		// Everything captured is deleted: an empty snapshot cannot be
		// built (or partitioned), so the tombstones simply stay pending.
		// Queries remain correct — the filter hides every dead row.
		return snap.epoch
	}
	data := linalg.NewDense(total, snap.d)
	ids := make([]int, total)
	r := 0
	for _, pos := range keepPos {
		copy(data.RawRow(r), snap.exact.RawRow(pos))
		ids[r] = snapIDOf(snap, pos)
		r++
	}
	for _, ref := range refs {
		v := &views[ref.buf]
		copy(data.RawRow(r), v.rows[ref.idx*snap.d:(ref.idx+1)*snap.d])
		ids[r] = ref.id
		r++
	}
	cfg := e.cfg
	if cfg.Shards > total {
		cfg.Shards = total
	}
	next := buildSnapshot(data, cfg, snap.epoch+1)
	// IDs are ascending and unique, so they are the identity permutation
	// exactly when the last one equals total-1.
	if ids[total-1] != total-1 {
		next.ids = ids
	}

	// ---- install: swap the snapshot, re-thread concurrent mutations ----
	e.mut.mu.Lock()
	//drlint:ignore snapcapture deliberate re-validation under mut.mu: a Swap may have retired the captured snapshot during the lock-free build
	if cur := e.snap.Load(); cur != snap {
		// A Swap replaced the dataset while we were building; our rebuild
		// describes a retired generation. Discard it.
		epoch := cur.epoch
		e.mut.mu.Unlock()
		return epoch
	}
	pNew := len(next.shards)
	// Delta rows appended after the capture cut move onto the new
	// generation, re-bucketed by id mod pNew in ascending ID order so every
	// buffer's ids stay sorted.
	var leftovers []deltaRef
	for bi := range e.mut.bufs {
		b := &e.mut.bufs[bi]
		for j := cuts[bi]; j < len(b.ids); j++ {
			leftovers = append(leftovers, deltaRef{id: b.ids[j], buf: bi, idx: j})
		}
	}
	slices.SortFunc(leftovers, func(a, b deltaRef) int { return cmp.Compare(a.id, b.id) })
	newBufs := make([]deltaBuf, pNew)
	for _, ref := range leftovers {
		b := &e.mut.bufs[ref.buf]
		nb := &newBufs[ref.id%pNew]
		nb.rows = append(nb.rows, b.rows[ref.idx*snap.d:(ref.idx+1)*snap.d]...)
		nb.ids = append(nb.ids, ref.id)
		nb.norms = append(nb.norms, b.norms[ref.idx])
	}
	// Tombstones recorded after the capture cut target rows that still
	// exist: either a row the rebuild kept (it becomes a dead position of
	// the new snapshot) or a leftover delta row (its ID stays a delta
	// tombstone). Tombstones before the cut were folded away and vanish.
	var newSnapDead, newDeltaDead []int
	newTombSnap := make([]int, pNew)
	newTombIDs := make(map[int]struct{})
	for _, pos := range e.mut.snapDead[cutDeadPos:] {
		id := snapIDOf(snap, pos)
		np := snapPosOf(next, id)
		newSnapDead = append(newSnapDead, np)
		newTombSnap[shardIndexOf(next, np)]++
		newTombIDs[id] = struct{}{}
	}
	for _, id := range e.mut.deltaDead[cutDeadIDs:] {
		if np := snapPosOf(next, id); np >= 0 {
			newSnapDead = append(newSnapDead, np)
			newTombSnap[shardIndexOf(next, np)]++
		} else {
			newDeltaDead = append(newDeltaDead, id)
		}
		newTombIDs[id] = struct{}{}
	}
	e.mut.bufs = newBufs
	e.mut.snapDead = newSnapDead
	e.mut.deltaDead = newDeltaDead
	e.mut.tombSnap = newTombSnap
	e.mut.tombIDs = newTombIDs
	e.mut.live = len(leftovers) - len(newDeltaDead)
	// nextID is untouched: IDs keep ascending across generations.
	e.snap.Store(next)
	e.mut.mu.Unlock()

	e.counters.swaps.Add(1)
	e.counters.compactions.Add(1)
	if e.drift != nil && e.drift.refit() {
		e.counters.refits.Add(1)
	}
	return next.epoch
}
