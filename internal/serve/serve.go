// Package serve is the concurrent query-serving layer of the similarity
// pipeline: a sharded engine that fronts the exact batch-distance path
// (knn.SearchSetBatch's norm-cache kernels) and the approximate multi-probe
// LSH path behind one admission-controlled API.
//
// The design follows the operational setting of Thomasian's clustered /
// reduced-index serving work (PAPERS.md): the dataset is partitioned into P
// contiguous shards, each carrying its own cached squared row norms and its
// own independently seeded LSH tables. A query fans out over the shards on
// a fixed worker pool; per-shard top-k lists are merged with the canonical
// (distance, index) comparator, so the exact path is bit-identical to a
// single-threaded knn.SearchSetBatch over the unsharded data.
//
// Shards search through a small backend interface with two
// implementations: the in-memory dense backend above, and a quantized
// mmap-backed store backend (internal/store, NewFromStore) whose exact
// path runs the store's two-phase search with a full rescore budget —
// preserving the bit-identity contract — and whose approximate path caps
// phase-2 rescoring at Config.Rescore candidates per shard in place of LSH
// probing.
//
// Three serving concerns the single-request CLIs never had to own live
// here:
//
//   - Admission control. Requests pass through a bounded queue; a full
//     queue rejects immediately with ErrOverloaded, a request whose
//     context deadline expires before completion returns ErrDeadline, and
//     when queue depth crosses a configurable watermark, ModeAuto requests
//     degrade gracefully from exact scans to approximate LSH probing
//     instead of queueing further behind work they cannot beat.
//
//   - Index lifecycle. The live snapshot (shards, norms, LSH tables) hangs
//     off an atomic.Pointer; Swap builds a replacement off to the side and
//     installs it with one pointer store, so rebuilds with a new reduction
//     basis or new probe configuration never block in-flight queries.
//
//   - Observability. Every request outcome is counted (served, rejected,
//     degraded, deadline-expired), per-shard candidate work is tracked, and
//     latency is recorded in a fixed-bucket log-scale histogram
//     (internal/stats) from which Stats reports p50/p99.
package serve

import (
	"errors"
	"time"

	"repro/internal/index/lsh"
	"repro/internal/knn"
)

// Typed rejections. Callers branch on these with errors.Is: an overloaded
// engine should be retried after backoff (or the request re-issued in
// ModeApprox), a deadline rejection should be surfaced to the caller, and a
// closed engine is a lifecycle bug.
var (
	// ErrOverloaded reports that the bounded request queue was full at
	// admission time. The request was not enqueued and did no work.
	ErrOverloaded = errors.New("serve: engine overloaded, request queue full")
	// ErrDeadline reports that the request's context expired before a
	// result could be returned — at admission, while queued, or while the
	// caller waited for the merge.
	ErrDeadline = errors.New("serve: request deadline exceeded")
	// ErrClosed reports that the engine has been Closed.
	ErrClosed = errors.New("serve: engine closed")
	// ErrDims reports a query whose dimensionality does not match the live
	// snapshot (possible when a Swap changes the reduction basis while the
	// request is in flight).
	ErrDims = errors.New("serve: query dimensionality does not match live index")
	// ErrUnknownID reports a Delete whose ID is not in the served set:
	// never issued, already deleted, or deleted and since compacted away.
	ErrUnknownID = errors.New("serve: id is not in the served set")
)

// Mode selects the search path of a request.
type Mode int

const (
	// ModeAuto serves exactly while the queue is shallow and degrades to
	// the approximate path when queue depth crosses the watermark.
	ModeAuto Mode = iota
	// ModeExact always runs the exact sharded scan.
	ModeExact
	// ModeApprox always runs the sharded multi-probe LSH path.
	ModeApprox
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeExact:
		return "exact"
	case ModeApprox:
		return "approx"
	default:
		return "Mode(?)"
	}
}

// Config parameterizes New. Zero values select sensible defaults, so
// Config{} is a working single-node configuration.
type Config struct {
	// Shards is P, the number of contiguous data partitions (0 selects
	// GOMAXPROCS, clamped so every shard holds at least one row).
	Shards int
	// Workers is the number of request workers draining the admission
	// queue — the engine's request-level concurrency (0 selects
	// 2·GOMAXPROCS).
	Workers int
	// ShardWorkers sizes the pool that executes per-shard scans (0 selects
	// GOMAXPROCS).
	ShardWorkers int
	// QueueDepth bounds the admission queue (0 selects 256). A full queue
	// rejects with ErrOverloaded.
	QueueDepth int
	// DegradeWatermark is the queue-depth fraction in (0, 1] beyond which
	// ModeAuto requests fall back to the approximate path (0 selects 0.75;
	// 1 disables degradation — the queue rejects before it ever degrades).
	DegradeWatermark float64
	// Probes is the per-table probing depth of the approximate path
	// (0 selects 16). Ignored by store-backed engines.
	Probes int
	// Rescore bounds the exact-refinement budget of the approximate path
	// on store-backed shards (NewFromStore/SwapStore): each shard's
	// quantized scan admits at most Rescore candidates for float64
	// rescoring. 0 selects 32·k at query time. Ignored by dense-backed
	// engines, whose approximate path is LSH probing.
	Rescore int
	// ScanWorkers is the intra-query parallelism of store-backed shards:
	// each shard's quantized scan splits its row range across up to
	// ScanWorkers goroutines (see store.SearchRangeWorkers). Results are
	// bit-identical at any worker count. 0 selects 1 — shards already
	// spread concurrent queries across cores, so intra-query splitting
	// only pays when queries are scarce relative to processors (few large
	// shards, low request concurrency). Ignored by dense-backed engines.
	ScanWorkers int
	// MaxDelta bounds the live (inserted, not yet compacted or deleted)
	// delta rows; Insert rejects with ErrOverloaded beyond it — write
	// admission control mirroring the query queue (0 selects 8192).
	MaxDelta int
	// CompactAt schedules a background compaction once pending mutation
	// state (live delta rows plus tombstones) reaches this size (0 selects
	// 1024; negative disables automatic compaction, leaving Compact to the
	// caller).
	CompactAt int
	// Drift enables streaming-PCA drift tracking of the mutation stream;
	// a decayed basis forces a re-projection compaction. The zero value
	// disables it.
	Drift DriftConfig
	// LSH configures each shard's hash index. LSH.Seed is the root seed;
	// shard i derives an independent seed from it, so a snapshot is
	// deterministic for a fixed config regardless of build parallelism.
	LSH lsh.Config
}

// withDefaults resolves zero fields against the data size n and the number
// of processors procs.
func (c Config) withDefaults(n, procs int) Config {
	if c.Shards <= 0 {
		c.Shards = procs
	}
	if c.Shards > n {
		c.Shards = n
	}
	if c.Workers <= 0 {
		c.Workers = 2 * procs
	}
	if c.ShardWorkers <= 0 {
		c.ShardWorkers = procs
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.DegradeWatermark <= 0 {
		c.DegradeWatermark = 0.75
	}
	if c.DegradeWatermark > 1 {
		c.DegradeWatermark = 1
	}
	if c.Probes <= 0 {
		c.Probes = 16
	}
	if c.ScanWorkers <= 0 {
		c.ScanWorkers = 1
	}
	if c.MaxDelta <= 0 {
		c.MaxDelta = 8192
	}
	if c.CompactAt == 0 {
		c.CompactAt = 1024
	}
	return c
}

// Result is one served query.
type Result struct {
	// Neighbors holds up to k results in the canonical (distance, index)
	// order; indices refer to rows of the snapshot's data matrix.
	Neighbors []knn.Neighbor
	// Approx reports whether the approximate path served the request.
	Approx bool
	// Degraded reports whether admission control downgraded a ModeAuto
	// request to the approximate path (implies Approx).
	Degraded bool
	// Epoch identifies the snapshot that served the query; it increases by
	// one per Swap, so tests can assert which index a response saw.
	Epoch uint64
	// Wait is the time the request spent queued before a worker picked it
	// up; Total is admission-to-merge latency.
	Wait, Total time.Duration
	// Candidates counts the points the approximate path refined with exact
	// distances, summed over shards (zero on the exact path, which scans
	// everything).
	Candidates int
}
