package serve

import (
	"testing"

	"repro/internal/knn"
)

// TestDeltaScanAllocs pins the mutation read path's //drlint:hotpath
// contract at runtime: scanning a captured delta view against a warm
// collector allocates exactly once per call — the Results slice the caller
// keeps (result materialization, exempt under hotalloc). The admission
// loop, tombstone binary search, and rescore pass are allocation-free.
func TestDeltaScanAllocs(t *testing.T) {
	const n, d, k = 64, 8, 4
	v := deltaView{
		rows:  make([]float64, n*d),
		ids:   make([]int, n),
		norms: make([]float64, n),
		d:     d,
	}
	for i := 0; i < n; i++ {
		v.ids[i] = i * 2
		var nrm float64
		for j := 0; j < d; j++ {
			x := float64((i*7919+j*31)%256) / 17
			v.rows[i*d+j] = x
			nrm += x * x
		}
		v.norms[i] = nrm
	}
	query := make([]float64, d)
	for j := range query {
		query[j] = float64(j) / 3
	}
	dead := []int{6, 20, 42}
	c := knn.NewCollector(k)

	avg := testing.AllocsPerRun(500, func() {
		_ = v.scan(query, k, dead, c)
	})
	if avg != 1 {
		t.Errorf("deltaView.scan does %.2f allocs/op, want exactly 1 (the results slice)", avg)
	}
}

// TestContainsSortedZeroAllocs pins the tombstone membership probe: a
// binary search over the captured dead list must never allocate.
func TestContainsSortedZeroAllocs(t *testing.T) {
	dead := make([]int, 1024)
	for i := range dead {
		dead[i] = i * 3
	}
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		containsSorted(dead, i%4096)
		i++
	})
	if avg != 0 {
		t.Errorf("containsSorted does %.2f allocs/op, want 0", avg)
	}
}
