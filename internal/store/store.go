// Package store is the quantized vector storage layer: a block-major,
// per-dimension scalar-quantized point store with a binary on-disk format,
// an mmap-backed read path, and a two-phase search that scans compact
// integer codes and exactly rescores the admitted candidates against the
// full-precision float64 region.
//
// The design applies the paper's coherence thesis to storage: the
// semantically coherent components of a representation deserve full
// fidelity, the rest can be crushed. Each dimension j is stored as an
// unsigned code c with an affine scale (minⱼ, stepⱼ), so a point row costs
// 1 (Int8) or 2 (Int16) bytes per dimension instead of 8. Optionally the
// dimensions are permuted into a caller-chosen order (eigenvalue or
// coherence order from internal/reduction) and the first FullDims of that
// order are kept at float32 precision — "keep the coherent components,
// quantize the tail", the static-pruning recipe of the Matrix Decomposition
// pruning work cited in PAPERS.md.
//
// Search is two-phase. Phase 1 scans the quantized blocks with the
// asymmetric decomposition
//
//	‖q − x̂‖² = Σⱼ aⱼ² − 2·Σⱼ tⱼ·cⱼ + Σⱼ (stepⱼ·cⱼ)²,  aⱼ = qⱼ − minⱼ, tⱼ = aⱼ·stepⱼ
//
// whose only per-point term is the mixed-precision dot Σ tⱼ·cⱼ
// (linalg.DotU8/DotU16, AVX2 on capable hardware) plus a per-point norm
// cached at build time — the same norm-cache shape knn.SearchSetBatch uses.
// Phase 2 rescores the admitted candidates with the scalar Euclidean metric
// against the untouched float64 region and re-sorts under the canonical
// (distance, index) order, so with a full rescore budget the result is
// bit-identical to knn.SearchSetBatch, and with a partial budget only the
// candidate set — never a reported distance — is approximate.
//
// On-disk layout (all offsets 64-byte aligned, little-endian):
//
//	header | perm (d×u32) | mins (d×f64) | steps (d×f64)
//	       | f32 prefix (n×FullDims×f32, row-major)
//	       | codes (block-major: blocks of BlockRows rows, each row
//	         CodeStride bytes, zero-padded)
//	       | snorm (n×f64: Σ (stepⱼcⱼ)² over quantized dims)
//	       | exact (n×d×f64, row-major, original dimension order)
//
// The mmap read path keeps the codes/snorm regions resident (they are
// scanned) while the exact region pages in lazily — only the rows that
// phase 2 actually rescores are ever touched, which is what cuts resident
// vector bytes by ~8× at Int8 against a float64 store.
package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sort"
	"unsafe"
)

// Precision selects the quantized code width.
type Precision uint8

const (
	// Int8 stores one byte per quantized dimension (256 levels).
	Int8 Precision = 1
	// Int16 stores two bytes per quantized dimension (65536 levels).
	Int16 Precision = 2
)

// String names the precision.
func (p Precision) String() string {
	switch p {
	case Int8:
		return "int8"
	case Int16:
		return "int16"
	default:
		return fmt.Sprintf("Precision(%d)", uint8(p))
	}
}

// maxCode returns the largest code value of the precision.
func (p Precision) maxCode() float64 {
	if p == Int16 {
		return 65535
	}
	return 255
}

const (
	magic         = "DRQS"
	formatVersion = 1
	// headerSize is the fixed byte length of the header block.
	headerSize = 256
	// endianSentinel is stored in the header and read back through the
	// zero-copy cast path at Open, so a build whose native byte order does
	// not match the file's little-endian layout fails loudly instead of
	// serving garbage distances.
	endianSentinel uint64 = 0x0102030405060708
	// defaultBlockRows is the block granularity of the code region: the
	// unit of scan parallelism and (later) compaction.
	defaultBlockRows = 4096
	// codeRowAlign pads each code row so rows start 16-byte aligned for the
	// SIMD loads.
	codeRowAlign = 16
	// sectionAlign aligns every region offset.
	sectionAlign = 64
)

// BuildConfig parameterizes store construction. The zero value quantizes
// every dimension to Int8 in the natural dimension order with min/max
// scales computed from the data.
type BuildConfig struct {
	// Precision is the code width (default Int8).
	Precision Precision
	// BlockRows is the number of rows per code block (default 4096).
	BlockRows int
	// Perm, if non-nil, is the storage order: storage dimension j holds
	// original dimension Perm[j]. Pass a coherence or eigenvalue order
	// (internal/reduction) so FullDims keeps the most coherent components
	// at full precision. Must be a permutation of [0, d).
	Perm []int
	// FullDims keeps the first FullDims storage dimensions at float32
	// precision instead of quantizing them (default 0).
	FullDims int
	// Mins and Steps, if non-nil, are externally computed per-dimension
	// scales in ORIGINAL dimension order (e.g. from a whitening transform,
	// or from a streaming min/max pass). Both or neither must be set; when
	// nil, Write computes min/max scales from the matrix. Create (the
	// streaming writer) requires them.
	Mins, Steps []float64
}

// withDefaults resolves zero fields.
func (c BuildConfig) withDefaults() BuildConfig {
	if c.Precision == 0 {
		c.Precision = Int8
	}
	if c.BlockRows <= 0 {
		c.BlockRows = defaultBlockRows
	}
	return c
}

func (c BuildConfig) validate(d int) error {
	if c.Precision != Int8 && c.Precision != Int16 {
		return fmt.Errorf("store: unknown precision %d", c.Precision)
	}
	if c.FullDims < 0 || c.FullDims > d {
		return fmt.Errorf("store: FullDims=%d outside [0, %d]", c.FullDims, d)
	}
	if c.Perm != nil {
		if len(c.Perm) != d {
			return fmt.Errorf("store: perm length %d for %d dims", len(c.Perm), d)
		}
		seen := make([]bool, d)
		for _, p := range c.Perm {
			if p < 0 || p >= d || seen[p] {
				return fmt.Errorf("store: perm is not a permutation of [0,%d)", d)
			}
			seen[p] = true
		}
	}
	if (c.Mins == nil) != (c.Steps == nil) {
		return fmt.Errorf("store: Mins and Steps must be set together")
	}
	if c.Mins != nil && (len(c.Mins) != d || len(c.Steps) != d) {
		return fmt.Errorf("store: scales have %d/%d entries for %d dims", len(c.Mins), len(c.Steps), d)
	}
	return nil
}

// layout is the resolved geometry of a store file.
type layout struct {
	n, d      int
	prec      Precision
	fullDims  int
	blockRows int
	// quantDims = d − fullDims; codeStride is the padded byte length of one
	// code row.
	quantDims  int
	codeStride int

	permOff, minsOff, stepsOff int64
	f32Off, codesOff           int64
	snormOff, exactOff         int64
	fileSize                   int64
}

func align(x int64, a int64) int64 { return (x + a - 1) / a * a }

// computeLayout derives every section offset from the shape parameters.
func computeLayout(n, d int, prec Precision, fullDims, blockRows int) layout {
	l := layout{n: n, d: d, prec: prec, fullDims: fullDims, blockRows: blockRows}
	l.quantDims = d - fullDims
	l.codeStride = int(align(int64(l.quantDims)*int64(prec), codeRowAlign))
	nBlocks := (n + blockRows - 1) / blockRows
	codesLen := int64(nBlocks) * int64(blockRows) * int64(l.codeStride)

	off := int64(headerSize)
	l.permOff = align(off, sectionAlign)
	off = l.permOff + 4*int64(d)
	l.minsOff = align(off, sectionAlign)
	off = l.minsOff + 8*int64(d)
	l.stepsOff = align(off, sectionAlign)
	off = l.stepsOff + 8*int64(d)
	l.f32Off = align(off, sectionAlign)
	off = l.f32Off + 4*int64(fullDims)*int64(n)
	l.codesOff = align(off, sectionAlign)
	off = l.codesOff + codesLen
	l.snormOff = align(off, sectionAlign)
	off = l.snormOff + 8*int64(n)
	l.exactOff = align(off, sectionAlign)
	l.fileSize = l.exactOff + 8*int64(n)*int64(d)
	return l
}

// encodeHeader serializes the layout into the fixed header block.
func (l layout) encodeHeader() []byte {
	h := make([]byte, headerSize)
	copy(h, magic)
	le := binary.LittleEndian
	le.PutUint32(h[4:], formatVersion)
	le.PutUint64(h[8:], endianSentinel)
	le.PutUint64(h[16:], uint64(l.n))
	le.PutUint64(h[24:], uint64(l.d))
	le.PutUint32(h[32:], uint32(l.prec))
	le.PutUint32(h[36:], uint32(l.fullDims))
	le.PutUint32(h[40:], uint32(l.blockRows))
	le.PutUint32(h[44:], uint32(l.codeStride))
	le.PutUint64(h[48:], uint64(l.permOff))
	le.PutUint64(h[56:], uint64(l.minsOff))
	le.PutUint64(h[64:], uint64(l.stepsOff))
	le.PutUint64(h[72:], uint64(l.f32Off))
	le.PutUint64(h[80:], uint64(l.codesOff))
	le.PutUint64(h[88:], uint64(l.snormOff))
	le.PutUint64(h[96:], uint64(l.exactOff))
	le.PutUint64(h[104:], uint64(l.fileSize))
	return h
}

// decodeHeader parses and validates a header block.
func decodeHeader(h []byte) (layout, error) {
	var l layout
	if len(h) < headerSize {
		return l, fmt.Errorf("store: truncated header (%d bytes)", len(h))
	}
	if string(h[:4]) != magic {
		return l, fmt.Errorf("store: bad magic %q", h[:4])
	}
	le := binary.LittleEndian
	if v := le.Uint32(h[4:]); v != formatVersion {
		return l, fmt.Errorf("store: unsupported format version %d (want %d)", v, formatVersion)
	}
	if s := le.Uint64(h[8:]); s != endianSentinel {
		return l, fmt.Errorf("store: endian sentinel mismatch (%#x)", s)
	}
	l.n = int(le.Uint64(h[16:]))
	l.d = int(le.Uint64(h[24:]))
	l.prec = Precision(le.Uint32(h[32:]))
	l.fullDims = int(le.Uint32(h[36:]))
	l.blockRows = int(le.Uint32(h[40:]))
	l.codeStride = int(le.Uint32(h[44:]))
	l.permOff = int64(le.Uint64(h[48:]))
	l.minsOff = int64(le.Uint64(h[56:]))
	l.stepsOff = int64(le.Uint64(h[64:]))
	l.f32Off = int64(le.Uint64(h[72:]))
	l.codesOff = int64(le.Uint64(h[80:]))
	l.snormOff = int64(le.Uint64(h[88:]))
	l.exactOff = int64(le.Uint64(h[96:]))
	l.fileSize = int64(le.Uint64(h[104:]))

	if l.n <= 0 || l.d <= 0 || l.blockRows <= 0 {
		return l, fmt.Errorf("store: invalid shape n=%d d=%d blockRows=%d", l.n, l.d, l.blockRows)
	}
	if l.prec != Int8 && l.prec != Int16 {
		return l, fmt.Errorf("store: unknown precision %d", l.prec)
	}
	if l.fullDims < 0 || l.fullDims > l.d {
		return l, fmt.Errorf("store: fullDims=%d outside [0, %d]", l.fullDims, l.d)
	}
	l.quantDims = l.d - l.fullDims
	want := computeLayout(l.n, l.d, l.prec, l.fullDims, l.blockRows)
	if want != l {
		return l, fmt.Errorf("store: header offsets disagree with computed layout (corrupt or foreign file)")
	}
	return l, nil
}

// endianSentinelNative reads the header sentinel through the same
// native-order cast the data regions use; a mismatch means this build's
// byte order cannot zero-copy the little-endian file.
func endianSentinelNative(h []byte) uint64 {
	return *(*uint64)(unsafe.Pointer(&h[8]))
}

// Zero-copy views over aligned byte regions. Offsets are 64-byte aligned
// by construction, so the casts never misalign.

func castF64(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func castF32(b []byte) []float32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func castU32(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func castU16(b []byte) []uint16 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint16)(unsafe.Pointer(&b[0])), len(b)/2)
}

// quantize maps x to its code under (min, step), clamped to the code range.
// step == 0 marks a constant dimension; its code is always 0 and dequant
// returns min exactly.
func quantize(x, min, step, maxCode float64) uint64 {
	if step == 0 {
		return 0
	}
	c := math.Round((x - min) / step)
	if c < 0 {
		return 0
	}
	if c > maxCode {
		return uint64(maxCode)
	}
	return uint64(c)
}

// ComputeScales returns per-dimension min/max affine scales in original
// dimension order: step = (max − min) / maxCode, so codes span the full
// range and the round-trip error is at most step/2 per dimension.
func ComputeScales(rows func(yield func(row []float64) bool), d int, prec Precision) (mins, steps []float64) {
	acc := NewScaleAccumulator(d)
	rows(func(row []float64) bool {
		acc.Add(row)
		return true
	})
	return acc.Scales(prec)
}

// ScaleAccumulator builds min/max scales from a stream of rows, so callers
// (cmd/datagen) can fix scales in a first pass without holding the matrix.
// It also tracks per-dimension first and second moments, from which
// VarianceOrder derives a variance-descending storage permutation — the
// order that concentrates signal into the leading quantized dimensions
// the scan's early-abandon prefix reads.
type ScaleAccumulator struct {
	mins, maxs []float64
	sum, sumsq []float64
	n          int
}

// NewScaleAccumulator tracks d dimensions.
func NewScaleAccumulator(d int) *ScaleAccumulator {
	a := &ScaleAccumulator{
		mins: make([]float64, d), maxs: make([]float64, d),
		sum: make([]float64, d), sumsq: make([]float64, d),
	}
	for j := range a.mins {
		a.mins[j] = math.Inf(1)
		a.maxs[j] = math.Inf(-1)
	}
	return a
}

// Add folds one row into the running extrema and moments.
func (a *ScaleAccumulator) Add(row []float64) {
	if len(row) != len(a.mins) {
		panic(fmt.Sprintf("store: scale accumulator row has %d dims, want %d", len(row), len(a.mins)))
	}
	for j, x := range row {
		if x < a.mins[j] {
			a.mins[j] = x
		}
		if x > a.maxs[j] {
			a.maxs[j] = x
		}
		a.sum[j] += x
		a.sumsq[j] += x * x
	}
	a.n++
}

// VarianceOrder returns a storage permutation sorting dimensions by
// descending empirical variance (ties broken by ascending dimension
// index, so the order is deterministic). Building a store with this
// permutation front-loads the high-variance dimensions, which is what
// makes partial-distance prefixes admissible *and* effective: per
// Thomasian's stepwise-dimensionality argument, the prefix of a
// variance-sorted order captures most of the distance mass, so prefix
// lower bounds reject most points early. Exact results are unaffected by
// any permutation — it only reorders storage.
func (a *ScaleAccumulator) VarianceOrder() []int {
	d := len(a.mins)
	vars := make([]float64, d)
	if a.n > 0 {
		inv := 1 / float64(a.n)
		for j := range vars {
			mean := a.sum[j] * inv
			v := a.sumsq[j]*inv - mean*mean
			if v > 0 {
				vars[j] = v
			}
		}
	}
	perm := identityPerm(d)
	sort.SliceStable(perm, func(x, y int) bool {
		if vars[perm[x]] > vars[perm[y]] {
			return true
		}
		if vars[perm[x]] < vars[perm[y]] {
			return false
		}
		return perm[x] < perm[y]
	})
	return perm
}

// Scales finalizes (min, step) per dimension for the precision. Constant
// (or never-observed) dimensions get step 0.
func (a *ScaleAccumulator) Scales(prec Precision) (mins, steps []float64) {
	mins = make([]float64, len(a.mins))
	steps = make([]float64, len(a.mins))
	maxCode := prec.maxCode()
	for j := range mins {
		lo, hi := a.mins[j], a.maxs[j]
		if a.n == 0 || lo > hi {
			lo, hi = 0, 0
		}
		mins[j] = lo
		if hi > lo {
			steps[j] = (hi - lo) / maxCode
		}
	}
	return mins, steps
}

// identityPerm returns [0, 1, ..., d).
func identityPerm(d int) []int {
	p := make([]int, d)
	for i := range p {
		p[i] = i
	}
	return p
}

// writeFileRegions is shared by Writer finalization: flush header and the
// small metadata sections.
func writeMeta(f *os.File, l layout, perm []int, mins, steps []float64) error {
	if _, err := f.WriteAt(l.encodeHeader(), 0); err != nil {
		return err
	}
	le := binary.LittleEndian
	pb := make([]byte, 4*l.d)
	for j, p := range perm {
		le.PutUint32(pb[4*j:], uint32(p))
	}
	if _, err := f.WriteAt(pb, l.permOff); err != nil {
		return err
	}
	fb := make([]byte, 8*l.d)
	for j, v := range mins {
		le.PutUint64(fb[8*j:], math.Float64bits(v))
	}
	if _, err := f.WriteAt(fb, l.minsOff); err != nil {
		return err
	}
	for j, v := range steps {
		le.PutUint64(fb[8*j:], math.Float64bits(v))
	}
	if _, err := f.WriteAt(fb, l.stepsOff); err != nil {
		return err
	}
	return nil
}
