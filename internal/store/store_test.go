package store

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/dataset/synthetic"
	"repro/internal/index"
	"repro/internal/knn"
	"repro/internal/linalg"
)

// testData generates a musk-like set with heterogeneous per-dimension
// scales (the hard case for scalar quantization) split into data and
// held-out query rows.
func testData(t testing.TB, n, nq, d int, seed int64) (data, queries *linalg.Dense) {
	t.Helper()
	k := 6
	if k > d {
		k = d
	}
	strengths := make([]float64, k)
	for i := range strengths {
		strengths[i] = []float64{6, 6, 3.5, 3.5, 2, 2}[i%6]
	}
	ds, err := synthetic.Generate(synthetic.LatentFactorConfig{
		Name: "store-test", N: n + nq, Dims: d, Classes: 2,
		ConceptStrengths: strengths, ClassSeparation: 0.9,
		NoiseStdDev: 2.2, ScaleSpread: 1.4, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds.X.RowSlice(0, n), ds.X.RowSlice(n, n+nq)
}

func buildStore(t testing.TB, data *linalg.Dense, cfg BuildConfig) *Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.qvs")
	if err := Write(path, data, cfg); err != nil {
		t.Fatalf("writing store: %v", err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatalf("opening store: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// reversePerm is a fixed non-identity permutation for the variant matrix.
func reversePerm(d int) []int {
	p := make([]int, d)
	for i := range p {
		p[i] = d - 1 - i
	}
	return p
}

// storeVariants is the configuration matrix the contract tests run under:
// both precisions, identity and non-identity storage orders, with and
// without a full-precision prefix, and a block size smaller than n.
func storeVariants(d int) map[string]BuildConfig {
	return map[string]BuildConfig{
		"int8":          {Precision: Int8},
		"int16":         {Precision: Int16},
		"int8-perm":     {Precision: Int8, Perm: reversePerm(d)},
		"int8-full8":    {Precision: Int8, FullDims: 8},
		"int16-full4":   {Precision: Int16, Perm: reversePerm(d), FullDims: 4},
		"int8-smallblk": {Precision: Int8, BlockRows: 64},
	}
}

// TestExactRegionBitIdentical pins the full-precision region: the mmapped
// exact matrix must reproduce the source rows bit for bit.
func TestExactRegionBitIdentical(t *testing.T) {
	data, _ := testData(t, 300, 1, 37, 11)
	for name, cfg := range storeVariants(37) {
		s := buildStore(t, data, cfg)
		em := s.ExactMatrix()
		for i := 0; i < data.Rows(); i++ {
			src, got := data.RawRow(i), em.RawRow(i)
			for j := range src {
				if math.Float64bits(src[j]) != math.Float64bits(got[j]) {
					t.Fatalf("%s: exact[%d][%d] = %x, want %x", name, i, j,
						math.Float64bits(got[j]), math.Float64bits(src[j]))
				}
			}
		}
	}
}

// TestRoundTripErrorBound is the quantization property test: for every
// stored point and every dimension, |dequant(quant(x)) − x| ≤ step/2 (plus
// float32 rounding on full-precision prefix dims).
func TestRoundTripErrorBound(t *testing.T) {
	data, _ := testData(t, 400, 1, 29, 13)
	for name, cfg := range storeVariants(29) {
		s := buildStore(t, data, cfg)
		steps := s.Steps()
		full := make([]bool, 29)
		if f := s.FullDims(); f > 0 {
			perm := cfg.Perm
			if perm == nil {
				perm = identityPerm(29)
			}
			for j := 0; j < f; j++ {
				full[perm[j]] = true
			}
		}
		for i := 0; i < data.Rows(); i++ {
			src, rec := data.RawRow(i), s.DequantRow(i)
			for j := range src {
				err := math.Abs(rec[j] - src[j])
				var bound float64
				if full[j] {
					// float32 round-off: half an ulp at the value's scale.
					bound = math.Abs(src[j])*math.Pow(2, -24) + 1e-300
				} else {
					bound = steps[j]/2*(1+1e-12) + 1e-12*math.Abs(src[j])
				}
				if err > bound {
					t.Fatalf("%s: row %d dim %d: |dequant−x| = %g exceeds bound %g (step %g)",
						name, i, j, err, bound, steps[j])
				}
			}
		}
	}
}

// TestFullRescoreBitIdenticalToSearchSetBatch is the exactness contract:
// with a rescore budget covering every point, two-phase search must return
// results bit-identical to knn.SearchSetBatch under the canonical
// (distance, index) order — distances included, since phase 2 scores with
// the same scalar Euclidean metric against the same float64 bits.
func TestFullRescoreBitIdenticalToSearchSetBatch(t *testing.T) {
	data, queries := testData(t, 500, 24, 31, 17)
	want := knn.SearchSetBatch(data, queries, 10, knn.Euclidean{}, false)
	for name, cfg := range storeVariants(31) {
		s := buildStore(t, data, cfg)
		for qi := 0; qi < queries.Rows(); qi++ {
			got := s.Search(queries.RawRow(qi), 10, s.Len())
			if len(got) != len(want[qi]) {
				t.Fatalf("%s: query %d returned %d neighbors, want %d", name, qi, len(got), len(want[qi]))
			}
			for r := range got {
				if got[r].Index != want[qi][r].Index ||
					math.Float64bits(got[r].Dist) != math.Float64bits(want[qi][r].Dist) {
					t.Fatalf("%s: query %d rank %d: got (%d, %x), want (%d, %x)",
						name, qi, r, got[r].Index, math.Float64bits(got[r].Dist),
						want[qi][r].Index, math.Float64bits(want[qi][r].Dist))
				}
			}
		}
	}
}

// TestPartialRescoreRecall pins the two-phase quality: with a modest
// rescore budget the store must find essentially all true neighbors, and
// every reported distance must still be exact (phase 2 only ever reports
// exact distances).
func TestPartialRescoreRecall(t *testing.T) {
	data, queries := testData(t, 3000, 32, 64, 19)
	k := 10
	want := knn.SearchSetBatch(data, queries, k, knn.Euclidean{}, false)
	for name, cfg := range storeVariants(64) {
		s := buildStore(t, data, cfg)
		got := s.SearchBatch(queries, k, 10*k)
		recall := index.MeanRecall(got, want)
		if recall < 0.99 {
			t.Errorf("%s: recall@%d = %.4f with rescore budget %d, want >= 0.99", name, k, recall, 10*k)
		}
		e := knn.Euclidean{}
		for qi := range got {
			for _, nb := range got[qi] {
				exact := e.Distance(data.RawRow(nb.Index), queries.RawRow(qi))
				if math.Float64bits(exact) != math.Float64bits(nb.Dist) {
					t.Fatalf("%s: query %d neighbor %d reported dist %v, exact %v", name, qi, nb.Index, nb.Dist, exact)
				}
			}
		}
	}
}

// TestSearchRangeMergesToWholeStore splits the store into ranges aligned
// and unaligned with block boundaries and checks that merging per-range
// results under the canonical order reproduces the whole-store search —
// the contract the sharded serving layer relies on.
func TestSearchRangeMergesToWholeStore(t *testing.T) {
	data, queries := testData(t, 700, 8, 23, 23)
	s := buildStore(t, data, BuildConfig{Precision: Int8, BlockRows: 128})
	k := 7
	for qi := 0; qi < queries.Rows(); qi++ {
		q := queries.RawRow(qi)
		whole := s.Search(q, k, s.Len())
		for _, cuts := range [][]int{{0, 350, 700}, {0, 128, 512, 700}, {0, 1, 699, 700}} {
			var merged []knn.Neighbor
			for c := 0; c+1 < len(cuts); c++ {
				part, _ := s.SearchRange(q, cuts[c], cuts[c+1], k, cuts[c+1]-cuts[c])
				merged = append(merged, part...)
			}
			knn.SortNeighbors(merged)
			if len(merged) > k {
				merged = merged[:k]
			}
			for r := range whole {
				if merged[r] != whole[r] {
					t.Fatalf("query %d cuts %v rank %d: merged %+v, whole %+v", qi, cuts, r, merged[r], whole[r])
				}
			}
		}
	}
}

// TestWriterMisuse covers the streaming writer's error paths.
func TestWriterMisuse(t *testing.T) {
	dir := t.TempDir()
	mins := []float64{0, 0}
	steps := []float64{1, 1}

	if _, err := Create(filepath.Join(dir, "a.qvs"), 4, 2, BuildConfig{}); err == nil {
		t.Error("Create without scales must fail")
	}
	w, err := Create(filepath.Join(dir, "b.qvs"), 2, 2, BuildConfig{Mins: mins, Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]float64{1, 2, 3}); err == nil {
		t.Error("Append with wrong dims must fail")
	}
	if err := w.Append([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Error("Close before all rows appended must fail")
	}

	w2, err := Create(filepath.Join(dir, "c.qvs"), 1, 2, BuildConfig{Mins: mins, Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Append([]float64{1, 2}); err == nil {
		t.Error("Append past n must fail")
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := Create(filepath.Join(dir, "d.qvs"), 3, 2,
		BuildConfig{Mins: mins, Steps: steps, Perm: []int{0, 0}}); err == nil {
		t.Error("non-permutation Perm must fail")
	}
}

// TestOpenRejectsCorruptFiles covers the header validation paths.
func TestOpenRejectsCorruptFiles(t *testing.T) {
	data, _ := testData(t, 50, 1, 5, 29)
	dir := t.TempDir()
	path := filepath.Join(dir, "ok.qvs")
	if err := Write(path, data, BuildConfig{}); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"bad magic":       func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version":     func(b []byte) []byte { b[4] = 99; return b },
		"truncated":       func(b []byte) []byte { return b[:len(b)/2] },
		"offset tampered": func(b []byte) []byte { b[80] ^= 0x40; return b },
	}
	for name, corrupt := range cases {
		cp := filepath.Join(dir, "bad.qvs")
		buf := make([]byte, len(raw))
		copy(buf, raw)
		if err := os.WriteFile(cp, corrupt(buf), 0o644); err != nil {
			t.Fatal(err)
		}
		if s, err := Open(cp); err == nil {
			s.Close()
			t.Errorf("%s: Open accepted a corrupt file", name)
		}
	}
}

// TestConcurrentSearchAndClose drives parallel searches to completion and
// then closes; under -race this exercises the mapping-lifetime lock.
func TestConcurrentSearchAndClose(t *testing.T) {
	data, queries := testData(t, 400, 16, 19, 31)
	path := filepath.Join(t.TempDir(), "c.qvs")
	if err := Write(path, data, BuildConfig{}); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for qi := 0; qi < queries.Rows(); qi++ {
				res := s.Search(queries.RawRow(qi), 5, 50)
				if len(res) != 5 {
					t.Errorf("worker %d query %d: %d neighbors", w, qi, len(res))
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	st := s.Stats()
	if st.Scanned == 0 || st.Rescored == 0 {
		t.Errorf("stats not recorded: %+v", st)
	}
}

// TestStreamingWriterMatchesWrite pins the two construction paths against
// each other: Create+Append with externally accumulated scales must produce
// a byte-identical file to the whole-matrix Write path.
func TestStreamingWriterMatchesWrite(t *testing.T) {
	data, _ := testData(t, 256, 1, 17, 37)
	dir := t.TempDir()

	whole := filepath.Join(dir, "whole.qvs")
	if err := Write(whole, data, BuildConfig{Precision: Int16, FullDims: 3}); err != nil {
		t.Fatal(err)
	}

	acc := NewScaleAccumulator(17)
	for i := 0; i < data.Rows(); i++ {
		acc.Add(data.RawRow(i))
	}
	mins, steps := acc.Scales(Int16)
	streamed := filepath.Join(dir, "streamed.qvs")
	w, err := Create(streamed, data.Rows(), 17, BuildConfig{Precision: Int16, FullDims: 3, Mins: mins, Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < data.Rows(); i++ {
		if err := w.Append(data.RawRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	a, err := os.ReadFile(whole)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(streamed)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("file sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("files differ at byte %d", i)
		}
	}
}

func randQuery(rng *rand.Rand, d int) []float64 {
	q := make([]float64, d)
	for j := range q {
		q[j] = rng.NormFloat64()
	}
	return q
}
