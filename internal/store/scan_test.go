package store

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/knn"
)

// naiveSearchRange is the scalar reference for the blocked scan: the
// pre-optimization per-point loop — every point offered straight to the
// collector, no threshold pruning, no prefix early-abandon, no ×4
// kernels, sequential — followed by the same exact rescore. The blocked,
// threshold-pruned, prefix-abandoning, possibly parallel production scan
// must reproduce it bit for bit at every budget.
func naiveSearchRange(s *Store, q []float64, lo, hi, k, rescore int) []knn.Neighbor {
	budget := rescore
	if budget < k {
		budget = k
	}
	if budget > hi-lo {
		budget = hi - lo
	}
	p := s.getPlan(q)
	defer s.putPlan(p)
	c := knn.NewCollector(budget)
	for i := lo; i < hi; i++ {
		c.Offer(i, s.scoreAt(p, i))
	}
	cand := c.Results()
	e := knn.Euclidean{}
	for t := range cand {
		cand[t].Dist = e.Distance(s.exactMat.RawRow(cand[t].Index), q)
	}
	knn.SortNeighbors(cand)
	if len(cand) > k {
		cand = cand[:k]
	}
	return cand
}

// TestBlockedScanBitIdenticalToNaive is the property test of the scan
// rewrite: across the store variant matrix (which covers prefix-enabled
// shapes — quantDims ≥ 64 — and prefix-disabled ones), every budget in
// {k, 2k, n} and worker count in {1, 2, 3} must return exactly the
// neighbors of the naive per-point loop, distances bit-identical. d = 64
// keeps the early-abandon prefix active for the no-full-prefix variants.
func TestBlockedScanBitIdenticalToNaive(t *testing.T) {
	n, d, k := 3000, 64, 10
	data, queries := testData(t, n, 6, d, 41)
	for name, cfg := range storeVariants(d) {
		s := buildStore(t, data, cfg)
		for qi := 0; qi < queries.Rows(); qi++ {
			q := queries.RawRow(qi)
			for _, budget := range []int{k, 2 * k, n} {
				want := naiveSearchRange(s, q, 0, n, k, budget)
				for _, workers := range []int{1, 2, 3} {
					got, rescored := s.SearchRangeWorkers(q, 0, n, k, budget, workers)
					if rescored != budget {
						t.Fatalf("%s q=%d budget=%d w=%d: rescored %d candidates, want %d",
							name, qi, budget, workers, rescored, budget)
					}
					if len(got) != len(want) {
						t.Fatalf("%s q=%d budget=%d w=%d: %d neighbors, want %d",
							name, qi, budget, workers, len(got), len(want))
					}
					for r := range got {
						if got[r].Index != want[r].Index ||
							math.Float64bits(got[r].Dist) != math.Float64bits(want[r].Dist) {
							t.Fatalf("%s q=%d budget=%d w=%d rank %d: got (%d, %x), want (%d, %x)",
								name, qi, budget, workers, r,
								got[r].Index, math.Float64bits(got[r].Dist),
								want[r].Index, math.Float64bits(want[r].Dist))
						}
					}
				}
			}
		}
	}
}

// TestVariantMatrixCoversPrefixStates guards the property test's reach:
// the variant matrix must include at least one store where the
// early-abandon prefix is active and one where it is disabled, or the
// test above silently loses half its subject.
func TestVariantMatrixCoversPrefixStates(t *testing.T) {
	d := 64
	data, _ := testData(t, 200, 1, d, 43)
	withPrefix, withoutPrefix := 0, 0
	for _, cfg := range storeVariants(d) {
		s := buildStore(t, data, cfg)
		if s.PrefixDims() > 0 {
			withPrefix++
		} else {
			withoutPrefix++
		}
	}
	if withPrefix == 0 || withoutPrefix == 0 {
		t.Fatalf("variant matrix covers prefix=%d no-prefix=%d stores; need both", withPrefix, withoutPrefix)
	}
}

// TestSearchRangeWorkersClampsAndMerges exercises the worker clamp (a
// range shorter than minSegmentRows·2 must degrade to one segment) and
// unaligned worker counts against odd ranges.
func TestSearchRangeWorkersClampsAndMerges(t *testing.T) {
	n, d, k := 2600, 32, 5
	data, queries := testData(t, n, 4, d, 47)
	s := buildStore(t, data, BuildConfig{Precision: Int8})
	q := queries.RawRow(0)
	want := naiveSearchRange(s, q, 100, n-100, k, 3*k)
	for _, workers := range []int{0, 1, 2, 7, 100} {
		got, _ := s.SearchRangeWorkers(q, 100, n-100, k, 3*k, workers)
		for r := range want {
			if got[r] != want[r] {
				t.Fatalf("workers=%d rank %d: got %+v, want %+v", workers, r, got[r], want[r])
			}
		}
	}
}

// TestVarianceOrderIsPermutation pins VarianceOrder's contract: a valid
// permutation, sorted by descending variance with deterministic ties.
func TestVarianceOrderIsPermutation(t *testing.T) {
	d := 9
	acc := NewScaleAccumulator(d)
	rng := rand.New(rand.NewSource(51))
	// Dimension j gets standard deviation ~ j for even j, 0 for odd j
	// (constant dims), so the expected order is 8, 6, 4, 2, then the
	// zero-variance dims in index order.
	for i := 0; i < 500; i++ {
		row := make([]float64, d)
		for j := 0; j < d; j += 2 {
			row[j] = float64(j) * rng.NormFloat64()
		}
		for j := 1; j < d; j += 2 {
			row[j] = 7
		}
		acc.Add(row)
	}
	perm := acc.VarianceOrder()
	seen := make([]bool, d)
	for _, j := range perm {
		if j < 0 || j >= d || seen[j] {
			t.Fatalf("VarianceOrder %v is not a permutation of [0,%d)", perm, d)
		}
		seen[j] = true
	}
	wantHead := []int{8, 6, 4, 2}
	for i, w := range wantHead {
		if perm[i] != w {
			t.Fatalf("VarianceOrder head %v, want %v first", perm[:4], wantHead)
		}
	}
	// Zero-variance dims keep ascending index order (stable ties).
	tail := perm[5:]
	for i := 1; i < len(tail); i++ {
		if tail[i-1] >= tail[i] {
			t.Fatalf("VarianceOrder tie-break not ascending: %v", perm)
		}
	}
}

// TestBuildWithVarianceOrderStaysExact builds a store under the
// variance-descending permutation and checks the full-budget path is
// still bit-identical to exact search — permutations reorder storage,
// never results — and that the prefix pass engages.
func TestBuildWithVarianceOrderStaysExact(t *testing.T) {
	n, d, k := 1500, 64, 8
	data, queries := testData(t, n, 6, d, 53)
	acc := NewScaleAccumulator(d)
	for i := 0; i < n; i++ {
		acc.Add(data.RawRow(i))
	}
	s := buildStore(t, data, BuildConfig{Precision: Int8, Perm: acc.VarianceOrder()})
	if s.PrefixDims() == 0 {
		t.Fatal("expected the early-abandon prefix to be enabled at d=64")
	}
	want := knn.SearchSetBatch(data, queries, k, knn.Euclidean{}, false)
	for qi := 0; qi < queries.Rows(); qi++ {
		got := s.Search(queries.RawRow(qi), k, n)
		for r := range got {
			if got[r].Index != want[qi][r].Index ||
				math.Float64bits(got[r].Dist) != math.Float64bits(want[qi][r].Dist) {
				t.Fatalf("query %d rank %d: got (%d, %x), want (%d, %x)", qi, r,
					got[r].Index, math.Float64bits(got[r].Dist),
					want[qi][r].Index, math.Float64bits(want[qi][r].Dist))
			}
		}
	}
}

// TestStressSearchBatchDropExactPages interleaves SearchRange (with and
// without intra-query workers), SearchBatch, and DropExactPages on one
// shared store — DropExactPages was previously only exercised
// sequentially. Under -race this is the concurrency contract of the scan
// caches and the madvise path: dropped exact pages must refault
// transparently mid-rescore, never corrupt results.
func TestStressSearchBatchDropExactPages(t *testing.T) {
	n, d, k := 2500, 64, 5
	data, queries := testData(t, n, 8, d, 59)
	s := buildStore(t, data, BuildConfig{Precision: Int8})
	want := knn.SearchSetBatch(data, queries, k, knn.Euclidean{}, false)

	const iters = 15
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	// Two SearchRange loops at different worker counts.
	for w := 1; w <= 2; w++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				for qi := 0; qi < queries.Rows(); qi++ {
					got, _ := s.SearchRangeWorkers(queries.RawRow(qi), 0, n, k, n, workers)
					for r := range got {
						if got[r] != want[qi][r] {
							errs <- "SearchRangeWorkers diverged from exact under concurrency"
							return
						}
					}
				}
			}
		}(w)
	}
	// A SearchBatch loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for it := 0; it < iters; it++ {
			out := s.SearchBatch(queries, k, n)
			for qi := range out {
				for r := range out[qi] {
					if out[qi][r] != want[qi][r] {
						errs <- "SearchBatch diverged from exact under concurrency"
						return
					}
				}
			}
		}
	}()
	// A DropExactPages loop, yanking the rescore region's residency the
	// whole time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for it := 0; it < 4*iters; it++ {
			s.DropExactPages()
			runtime.Gosched()
		}
	}()
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
