//go:build unix

package store

import (
	"os"
	"syscall"
)

// mapping is a read-only memory map of the whole store file. The fd is
// closed after mapping; the pages stay valid until munmap.
type mapping struct {
	bytes []byte
}

func mapFile(f *os.File, size int64) (mapping, error) {
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return mapping{}, err
	}
	return mapping{bytes: b}, nil
}

func (m mapping) close() error {
	if m.bytes == nil {
		return nil
	}
	return syscall.Munmap(m.bytes)
}

// dropRange asks the kernel to evict the page-aligned interior of
// bytes[lo:hi] from residency. Benchmarks use it to shed ground-truth
// pages before measuring serving RSS; best-effort (no-op off linux).
func (m mapping) dropRange(lo, hi int64) {
	start, end := pageInterior(lo, hi)
	if end <= start {
		return
	}
	madviseDontneed(m.bytes[start:end])
}

// adviseRandom marks bytes[lo:hi] as random-access, disabling readahead.
// Phase-2 rescores fault individual rows; without this, each ~1.3 kB row
// fault drags in the default 128 kB readahead window around it, and a
// budgeted scan quietly repopulates the whole full-precision region.
func (m mapping) adviseRandom(lo, hi int64) {
	start, end := pageInterior(lo, hi)
	if end <= start {
		return
	}
	madviseRandom(m.bytes[start:end])
}

// willneedRange queues asynchronous read-ahead for the pages covering
// bytes[lo:hi] (page-aligned outward, so short ranges still cover their
// row). Best-effort; no-op off linux.
func (m mapping) willneedRange(lo, hi int64) {
	page := int64(os.Getpagesize())
	start := lo / page * page
	end := (hi + page - 1) / page * page
	if end > int64(len(m.bytes)) {
		end = int64(len(m.bytes))
	}
	if end <= start {
		return
	}
	madviseWillneed(m.bytes[start:end])
}

// pageInterior shrinks [lo, hi) to its page-aligned interior.
func pageInterior(lo, hi int64) (int64, int64) {
	page := int64(os.Getpagesize())
	return (lo + page - 1) / page * page, hi / page * page
}
