package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"repro/internal/linalg"
)

// Writer streams rows into a new store file without ever materializing the
// float64 matrix in memory: each Append encodes one row's codes, float32
// prefix, cached quantized norm, and exact bytes into per-region buffers
// that flush with positioned writes at the offsets the layout fixed up
// front. cmd/datagen uses it to emit million-point sets with O(d) memory.
//
// In the file, mins/steps (and codes, and the f32 prefix) are stored in
// STORAGE order — aligned with the permutation — while BuildConfig supplies
// scales in original dimension order; Create converts.
type Writer struct {
	f   *os.File
	l   layout
	cfg BuildConfig

	perm        []int
	mins, steps []float64 // storage order

	next int // rows appended so far

	codeBuf  regionBuf
	f32Buf   regionBuf
	snormBuf regionBuf
	exactBuf regionBuf

	rowCodes []byte
	rowExact []byte
	rowF32   []byte
	rowSnorm [8]byte
}

// regionBuf batches sequential writes into one file region.
type regionBuf struct {
	f    *os.File
	off  int64 // next flush position
	buf  []byte
	fill int
}

func newRegionBuf(f *os.File, off int64, cap int) regionBuf {
	return regionBuf{f: f, off: off, buf: make([]byte, cap)}
}

func (r *regionBuf) write(p []byte) error {
	for len(p) > 0 {
		n := copy(r.buf[r.fill:], p)
		r.fill += n
		p = p[n:]
		if r.fill == len(r.buf) {
			if err := r.flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r *regionBuf) flush() error {
	if r.fill == 0 {
		return nil
	}
	if _, err := r.f.WriteAt(r.buf[:r.fill], r.off); err != nil {
		return err
	}
	r.off += int64(r.fill)
	r.fill = 0
	return nil
}

// Create opens a streaming writer for exactly n rows of d dimensions.
// cfg.Mins/cfg.Steps are required (the encoder must know its scales before
// the first row); use a ScaleAccumulator pass, or Write for in-memory data.
func Create(path string, n, d int, cfg BuildConfig) (*Writer, error) {
	if n <= 0 || d <= 0 {
		return nil, fmt.Errorf("store: cannot create %dx%d store", n, d)
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(d); err != nil {
		return nil, err
	}
	if cfg.Mins == nil {
		return nil, fmt.Errorf("store: Create requires precomputed Mins/Steps (see ScaleAccumulator)")
	}
	perm := cfg.Perm
	if perm == nil {
		perm = identityPerm(d)
	}
	// Reorder the scales into storage order once.
	mins := make([]float64, d)
	steps := make([]float64, d)
	for j := 0; j < d; j++ {
		mins[j] = cfg.Mins[perm[j]]
		steps[j] = cfg.Steps[perm[j]]
	}

	l := computeLayout(n, d, cfg.Precision, cfg.FullDims, cfg.BlockRows)
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(l.fileSize); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	const bufRows = 1024
	w := &Writer{
		f: f, l: l, cfg: cfg,
		perm: perm, mins: mins, steps: steps,
		codeBuf:  newRegionBuf(f, l.codesOff, bufRows*l.codeStride),
		snormBuf: newRegionBuf(f, l.snormOff, bufRows*8),
		exactBuf: newRegionBuf(f, l.exactOff, bufRows*8*d),
		rowCodes: make([]byte, l.codeStride),
		rowExact: make([]byte, 8*d),
	}
	if l.fullDims > 0 {
		w.f32Buf = newRegionBuf(f, l.f32Off, bufRows*4*l.fullDims)
		w.rowF32 = make([]byte, 4*l.fullDims)
	}
	return w, nil
}

// Append encodes one row. It must be called exactly n times before Close.
func (w *Writer) Append(row []float64) error {
	if len(row) != w.l.d {
		return fmt.Errorf("store: row has %d dims, store has %d", len(row), w.l.d)
	}
	if w.next >= w.l.n {
		return fmt.Errorf("store: appended more than %d rows", w.l.n)
	}
	le := binary.LittleEndian
	for j, x := range row {
		le.PutUint64(w.rowExact[8*j:], math.Float64bits(x))
	}
	if err := w.exactBuf.write(w.rowExact); err != nil {
		return err
	}
	F := w.l.fullDims
	for j := 0; j < F; j++ {
		le.PutUint32(w.rowF32[4*j:], math.Float32bits(float32(row[w.perm[j]])))
	}
	if F > 0 {
		if err := w.f32Buf.write(w.rowF32); err != nil {
			return err
		}
	}
	maxCode := w.cfg.Precision.maxCode()
	snorm := 0.0
	for i := range w.rowCodes {
		w.rowCodes[i] = 0 // stride padding stays zero
	}
	for j := F; j < w.l.d; j++ {
		c := quantize(row[w.perm[j]], w.mins[j], w.steps[j], maxCode)
		v := w.steps[j] * float64(c)
		snorm += v * v
		q := j - F
		if w.cfg.Precision == Int8 {
			w.rowCodes[q] = uint8(c)
		} else {
			le.PutUint16(w.rowCodes[2*q:], uint16(c))
		}
	}
	if err := w.codeBuf.write(w.rowCodes); err != nil {
		return err
	}
	le.PutUint64(w.rowSnorm[:], math.Float64bits(snorm))
	if err := w.snormBuf.write(w.rowSnorm[:]); err != nil {
		return err
	}
	w.next++
	return nil
}

// Close flushes every region, writes the header and metadata sections, and
// syncs the file. It fails if fewer than n rows were appended.
func (w *Writer) Close() error {
	if w.next != w.l.n {
		w.f.Close()
		return fmt.Errorf("store: %d of %d rows appended at Close", w.next, w.l.n)
	}
	for _, r := range []*regionBuf{&w.codeBuf, &w.snormBuf, &w.exactBuf} {
		if err := r.flush(); err != nil {
			w.f.Close()
			return err
		}
	}
	if w.l.fullDims > 0 {
		if err := w.f32Buf.flush(); err != nil {
			w.f.Close()
			return err
		}
	}
	if err := writeMeta(w.f, w.l, w.perm, w.mins, w.steps); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Write builds a store file from an in-memory matrix: scales are computed
// from the data unless cfg supplies them, then every row streams through a
// Writer. This is the whole-matrix convenience path used by tests and by
// drtool on CSV-sized data.
func Write(path string, data *linalg.Dense, cfg BuildConfig) error {
	n, d := data.Dims()
	cfg = cfg.withDefaults()
	if err := cfg.validate(d); err != nil {
		return err
	}
	if cfg.Mins == nil {
		acc := NewScaleAccumulator(d)
		for i := 0; i < n; i++ {
			acc.Add(data.RawRow(i))
		}
		cfg.Mins, cfg.Steps = acc.Scales(cfg.Precision)
	}
	w, err := Create(path, n, d, cfg)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := w.Append(data.RawRow(i)); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.Close()
}
