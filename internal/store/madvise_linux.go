//go:build linux

package store

import (
	"syscall"
	"unsafe"
)

// madviseDontneed discards the page-cache residency of a page-aligned
// read-only file mapping (the data stays on disk and faults back in on the
// next touch). Best-effort: errors are ignored.
func madviseDontneed(b []byte) {
	madvise(b, syscall.MADV_DONTNEED)
}

// madviseRandom disables readahead on the range, so a row fault maps in
// that row's page rather than a 128 kB window around it.
func madviseRandom(b []byte) {
	madvise(b, syscall.MADV_RANDOM)
}

// madviseWillneed starts asynchronous read-ahead of the range. Issued
// for every phase-2 candidate row before the rescore loop touches any of
// them, it turns ~budget serial demand faults (each a blocking disk
// round-trip on a cold store) into one batch of overlapping reads.
func madviseWillneed(b []byte) {
	madvise(b, syscall.MADV_WILLNEED)
}

// madviseHugepage asks for transparent huge pages on an anonymous range.
// The scan-side caches are tens of MB streamed once per query; with the
// kernel's default "madvise" THP policy they would sit on 4 kB pages and
// pay a TLB walk every 64 rows of the prefix sweep.
func madviseHugepage(b []byte) {
	const madvHugepage = 14
	madvise(b, madvHugepage)
}

func madvise(b []byte, advice int) {
	if len(b) == 0 {
		return
	}
	syscall.Syscall(syscall.SYS_MADVISE,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), uintptr(advice))
}

// fadviseDontneed evicts the clean page-cache pages of path's [off, off+n)
// range. madvise(MADV_DONTNEED) alone only unmaps: the pages stay cached,
// and the kernel's fault-around batch-maps cached neighbors back on the
// next touch, so a residency measurement would quietly recover the whole
// region. Must run after the range is unmapped (mapped pages are skipped).
// Best-effort: errors are ignored.
func fadviseDontneed(path string, off, n int64) {
	fd, err := syscall.Open(path, syscall.O_RDONLY, 0)
	if err != nil {
		return
	}
	defer syscall.Close(fd)
	const posixFadvDontneed = 4
	syscall.Syscall6(syscall.SYS_FADVISE64,
		uintptr(fd), uintptr(off), uintptr(n), posixFadvDontneed, 0, 0)
}
