package store

import (
	"math/rand"
	"testing"

	"repro/internal/knn"
)

// The store benchmarks measure the phase-1 quantized scan against the
// float64 batch engine on the same data shape. scripts/bench.sh records
// them into BENCH_knn.json next to the float kernels.

func benchStore(b *testing.B, n, d int, cfg BuildConfig, rescore int) {
	data, queries := testData(b, n, 16, d, 101)
	s := buildStore(b, data, cfg)
	rng := rand.New(rand.NewSource(103))
	_ = rng
	b.ReportAllocs()
	b.ResetTimer()
	qi := 0
	for i := 0; i < b.N; i++ {
		res := s.Search(queries.RawRow(qi), 10, rescore)
		if len(res) == 0 {
			b.Fatal("empty result")
		}
		qi = (qi + 1) % queries.Rows()
	}
}

// TestSearchSteadyStateAllocs pins the sync.Pool plumbing: once the
// plan, scratch, and collector pools are warm, a sequential Search must
// not allocate any per-query scan state anew. All that remains per call
// is materializing the sorted results copy the caller keeps — the scan
// itself is pinned at exactly zero by TestScanHotPathZeroAllocs. Before
// pooling, the plan alone added three slice allocations per call on this
// shape, and the collector plus sort.Slice bookkeeping four more.
func TestSearchSteadyStateAllocs(t *testing.T) {
	data, queries := testData(t, 2000, 4, 64, 61)
	for name, cfg := range map[string]BuildConfig{
		"int8":  {Precision: Int8},
		"int16": {Precision: Int16, FullDims: 4},
	} {
		s := buildStore(t, data, cfg)
		q := queries.RawRow(0)
		// Warm the pools and the page cache.
		for i := 0; i < 3; i++ {
			s.Search(q, 10, 100)
		}
		avg := testing.AllocsPerRun(100, func() {
			s.Search(q, 10, 100)
		})
		if avg > 1 {
			t.Errorf("%s: steady-state Search does %.1f allocs/op, want <= 1 (pool plumbing or sort regressed?)", name, avg)
		}
	}
}

func BenchmarkStoreSearchInt8_6598x166(b *testing.B) {
	benchStore(b, 6598, 166, BuildConfig{Precision: Int8}, 100)
}

func BenchmarkStoreSearchInt16_6598x166(b *testing.B) {
	benchStore(b, 6598, 166, BuildConfig{Precision: Int16}, 100)
}

// BenchmarkExactSearch6598x166 is the float64 comparison point: one query
// through the scalar norm-cache scan (knn.Search) on identical data.
func BenchmarkExactSearch6598x166(b *testing.B) {
	data, queries := testData(b, 6598, 16, 166, 101)
	b.ResetTimer()
	qi := 0
	for i := 0; i < b.N; i++ {
		res := knn.Search(data, queries.RawRow(qi), 10, knn.Euclidean{}, -1)
		if len(res) == 0 {
			b.Fatal("empty result")
		}
		qi = (qi + 1) % queries.Rows()
	}
}

func BenchmarkStoreBuild6598x166(b *testing.B) {
	data, _ := testData(b, 6598, 1, 166, 101)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Write(dir+"/bench.qvs", data, BuildConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}
