package store

import "testing"

// TestScanHotPathZeroAllocs pins the //drlint:hotpath contract at
// runtime: with the plan, scratch, and collector pools warm, one full
// phase-1 sweep — plan construction, quantization, the blocked ×4/×8
// kernel scan with prefix early-abandon, and collector admission — does
// zero heap allocations. This is the exact code path hotalloc verifies
// statically; the two must agree, and a regression in either flags the
// same commit.
func TestScanHotPathZeroAllocs(t *testing.T) {
	data, queries := testData(t, 2000, 4, 64, 61)
	for name, cfg := range map[string]BuildConfig{
		"int8":  {Precision: Int8},
		"int16": {Precision: Int16, FullDims: 4},
	} {
		s := buildStore(t, data, cfg)
		q := queries.RawRow(0)
		for i := 0; i < 3; i++ {
			s.Search(q, 10, 100) // warm pools and page cache
		}
		avg := testing.AllocsPerRun(100, func() {
			p := s.getPlan(q)
			c := s.getCollector(100)
			s.scanSegment(p, 0, s.l.n, c)
			s.putCollector(c)
			s.putPlan(p)
		})
		if avg != 0 {
			t.Errorf("%s: warm phase-1 scan does %.1f allocs/op, want 0 (hotalloc contract)", name, avg)
		}
	}
}
