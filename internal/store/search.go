package store

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/knn"
	"repro/internal/linalg"
)

// plan holds the per-query precomputed scan terms of the asymmetric
// decomposition: with aⱼ = q_{perm[j]} − minⱼ over the quantized storage
// dimensions, phase 1 evaluates a2 + snorm[i] − 2·⟨t, codes_i⟩ plus the
// float32-prefix partial distance — one mixed-precision dot per point.
type plan struct {
	t  []float64 // aⱼ·stepⱼ over quantized dims
	a2 float64   // Σ aⱼ²
	qf []float64 // storage-order query over the float32 prefix dims
}

func (s *Store) newPlan(q []float64) plan {
	F := s.l.fullDims
	p := plan{t: make([]float64, s.l.quantDims)}
	if F > 0 {
		p.qf = make([]float64, F)
		for j := 0; j < F; j++ {
			p.qf[j] = q[s.perm[j]]
		}
	}
	for j := F; j < s.l.d; j++ {
		a := q[s.perm[j]] - s.mins[j]
		p.t[j-F] = a * s.steps[j]
		p.a2 += a * a
	}
	return p
}

// approxAt returns the phase-1 squared-distance estimate for point i,
// clamped at zero.
func (s *Store) approxAt(p *plan, i int) float64 {
	row := s.codes[i*s.l.codeStride:]
	var dot float64
	if s.l.prec == Int8 {
		dot = linalg.DotU8(p.t, row[:s.l.quantDims])
	} else {
		dot = linalg.DotU16(p.t, castU16(row[:2*s.l.quantDims]))
	}
	d2 := p.a2 + s.snorm[i] - 2*dot
	if F := s.l.fullDims; F > 0 {
		frow := s.f32[i*F : (i+1)*F]
		for j, qv := range p.qf {
			diff := qv - float64(frow[j])
			d2 += diff * diff
		}
	}
	if d2 < 0 {
		d2 = 0
	}
	return d2
}

// Search returns the k nearest neighbors of q by two-phase search over the
// whole store: a quantized scan admits the rescore-budget best candidates,
// which are exactly rescored against the float64 region and re-sorted
// under the canonical (distance, index) order. rescore < k is treated as
// k; rescore ≥ Len() makes the result bit-identical to exact search (every
// point is admitted and exactly scored).
func (s *Store) Search(q []float64, k, rescore int) []knn.Neighbor {
	res, _ := s.SearchRange(q, 0, s.l.n, k, rescore)
	return res
}

// SearchRange is Search restricted to the contiguous point range [lo, hi)
// — the shard entry point of the serving layer. Returned indices are
// global. The second result is the number of candidates phase 2 rescored.
func (s *Store) SearchRange(q []float64, lo, hi, k, rescore int) ([]knn.Neighbor, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		panic("store: search on closed store")
	}
	if len(q) != s.l.d {
		panic(fmt.Sprintf("store: query has %d dims, store has %d", len(q), s.l.d))
	}
	if lo < 0 || hi > s.l.n || lo >= hi {
		panic(fmt.Sprintf("store: range [%d,%d) outside [0,%d)", lo, hi, s.l.n))
	}
	if k <= 0 {
		panic(fmt.Sprintf("store: k=%d must be positive", k))
	}
	budget := rescore
	if budget < k {
		budget = k
	}
	if budget > hi-lo {
		budget = hi - lo
	}

	p := s.newPlan(q)
	c := knn.NewCollector(budget)
	for i := lo; i < hi; i++ {
		c.Offer(i, s.approxAt(&p, i))
	}
	s.scanned.Add(uint64(hi - lo))

	cand := c.Results()
	e := knn.Euclidean{}
	for t := range cand {
		cand[t].Dist = e.Distance(s.exactMat.RawRow(cand[t].Index), q)
	}
	s.rescored.Add(uint64(len(cand)))
	knn.SortNeighbors(cand)
	if len(cand) > k {
		cand = cand[:k]
	}
	return cand, budget
}

// SearchBatch runs Search for every row of queries, parallelized over up
// to GOMAXPROCS goroutines (queries are independent).
func (s *Store) SearchBatch(queries *linalg.Dense, k, rescore int) [][]knn.Neighbor {
	if queries.Cols() != s.l.d {
		panic(fmt.Sprintf("store: queries have %d dims, store has %d", queries.Cols(), s.l.d))
	}
	nq := queries.Rows()
	out := make([][]knn.Neighbor, nq)
	workers := runtime.GOMAXPROCS(0)
	if workers > nq {
		workers = nq
	}
	if workers <= 1 {
		for i := 0; i < nq; i++ {
			out[i] = s.Search(queries.RawRow(i), k, rescore)
		}
		return out
	}
	chunk := (nq + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < nq; lo += chunk {
		hi := lo + chunk
		if hi > nq {
			hi = nq
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = s.Search(queries.RawRow(i), k, rescore)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// DropExactPages hints the kernel to evict the full-precision region from
// residency (best-effort, linux only): first from this process's page
// tables (madvise MADV_DONTNEED), then from the page cache itself
// (posix_fadvise POSIX_FADV_DONTNEED) — without the second step the clean
// file pages stay cached and fault-around silently maps the whole region
// back on the next scattered rescore. Benchmarks call it between a
// ground-truth pass (which faults the whole exact region in) and the
// serving measurement, so reported RSS reflects the quantized working set
// plus only the pages phase 2 actually touches.
func (s *Store) DropExactPages() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return
	}
	lo := s.l.exactOff
	hi := lo + 8*int64(s.l.n)*int64(s.l.d)
	s.mm.dropRange(lo, hi)
	fadviseDontneed(s.path, lo, hi-lo)
}
