package store

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/knn"
	"repro/internal/linalg"
)

// scanBlockRows is the granularity of the threshold-pruned sweep: the ×4
// integer kernels score this many rows into a flat buffer, then a branchy
// pass offers only entries below the collector's current bound. 256 rows
// keep the score buffer well inside L1 while amortizing the bound reloads.
const scanBlockRows = 256

// minSegmentRows is the smallest per-worker slice of an intra-query
// parallel scan; ranges shorter than workers·minSegmentRows clamp the
// worker count so goroutine fan-out never outweighs the scan itself
// (a 1024-row segment is ~15 µs of kernel work against ~1 µs of
// goroutine bookkeeping).
const minSegmentRows = 1024

// plan holds the per-query precomputed scan terms of the asymmetric
// decomposition: with aⱼ = q_{perm[j]} − minⱼ over the quantized storage
// dimensions, phase 1 evaluates a2 + snorm[i] − 2·Σⱼ t̃ⱼcⱼ plus the
// float32-prefix partial distance. The weights tⱼ = aⱼ·stepⱼ are further
// quantized to 15-bit codes u (t̃ⱼ = tmin + tstep·uⱼ), so the per-point
// work is the exact integer dot Σ uⱼcⱼ and the scan reconstructs
//
//	Σ t̃ⱼcⱼ = tmin·csum[i] + tstep·(Σ uⱼcⱼ)
//
// from the per-row code sum cached at Open. Query-side rounding replaces
// each tⱼ by t̃ⱼ within tstep/2 ≈ (max t − min t)/65534 — it perturbs
// which candidates phase 1 admits by a hair, and phase 2's exact rescore
// is what fixes the reported distances, so results stay exact whenever
// the budget admits the true neighbors (and bit-identical to exact search
// at full budget, where admission order cannot matter).
type plan struct {
	t  []float64 // aⱼ·stepⱼ over quantized dims
	a2 float64   // Σ aⱼ²
	qf []float64 // storage-order query over the float32 prefix dims

	u      []uint16 // Q15 codes of t: uⱼ = round((tⱼ−tmin)/tstep)
	tmin   float64
	tstep  float64
	a2P    float64 // Σ aⱼ² over the early-abandon prefix dims
	margin float64 // FP slack subtracted from prefix lower bounds
}

// scanScratch is the per-segment block buffer, pooled so steady-state
// searches do not allocate.
type scanScratch struct {
	scores []float64
}

func (s *Store) getPlan(q []float64) *plan {
	p, _ := s.planPool.Get().(*plan)
	if p == nil {
		p = &plan{}
	}
	Q := s.l.quantDims
	F := s.l.fullDims
	if cap(p.t) < Q {
		p.t = make([]float64, Q)
		p.u = make([]uint16, Q)
	}
	p.t = p.t[:Q]
	p.u = p.u[:Q]
	if cap(p.qf) < F {
		p.qf = make([]float64, F)
	}
	p.qf = p.qf[:F]
	p.a2 = 0
	for j := 0; j < F; j++ {
		p.qf[j] = q[s.perm[j]]
	}
	for j := F; j < s.l.d; j++ {
		a := q[s.perm[j]] - s.mins[j]
		p.t[j-F] = a * s.steps[j]
		p.a2 += a * a
	}
	p.a2P = 0
	for j := F; j < F+s.prefDims; j++ {
		a := q[s.perm[j]] - s.mins[j]
		p.a2P += a * a
	}
	p.quantizeQ15()
	// The prefix lower bound and the full estimate round differently on
	// the way to their float64 values; this margin dwarfs that rounding
	// (it is ~10⁶ ulps at the distance scale a2+snorm sets) while staying
	// ~10⁻⁹ relative — far below any distance gap that could flip a
	// pruning decision the exact arithmetic would not.
	p.margin = 1e-9 * (p.a2 + s.snormMean + 1)
	return p
}

func (s *Store) putPlan(p *plan) { s.planPool.Put(p) }

// quantizeQ15 maps the scan weights t affinely onto [0, MaxQ15]. A zero
// span (constant t, including the empty case) degenerates to tstep = 0
// with all-zero codes, which reconstructs t̃ⱼ = tmin exactly.
func (p *plan) quantizeQ15() {
	if len(p.t) == 0 {
		p.tmin, p.tstep = 0, 0
		return
	}
	tmin, tmax := p.t[0], p.t[0]
	for _, v := range p.t[1:] {
		if v < tmin {
			tmin = v
		}
		if v > tmax {
			tmax = v
		}
	}
	p.tmin = tmin
	span := tmax - tmin
	if !(span > 0) {
		p.tstep = 0
		for j := range p.u {
			p.u[j] = 0
		}
		return
	}
	p.tstep = span / linalg.MaxQ15
	inv := linalg.MaxQ15 / span
	for j, v := range p.t {
		u := int((v - tmin) * inv)
		// Round-to-nearest with an explicit clamp: FP rounding may land
		// a hair outside [0, MaxQ15].
		if f := (v - tmin) * inv; f-float64(u) >= 0.5 {
			u++
		}
		if u < 0 {
			u = 0
		} else if u > linalg.MaxQ15 {
			u = linalg.MaxQ15
		}
		p.u[j] = uint16(u)
	}
}

// combine folds an exact integer dot into the phase-1 squared-distance
// estimate for point i, clamped at zero. Every scan path — blocked ×4,
// prefix survivors, the scalar reference — funnels through this one
// expression, so they produce bit-identical floats for the same point
// (the integer dots themselves are exact and path-independent).
func (s *Store) combine(p *plan, i int, idot int64) float64 {
	d2 := p.a2 + s.scanAux[2*i] - 2*(p.tmin*s.scanAux[2*i+1]+p.tstep*float64(idot))
	if F := s.l.fullDims; F > 0 {
		frow := s.f32[i*F : (i+1)*F]
		qf := p.qf[:len(frow)] // len(qf) == len(frow) == F; hoists the bounds check out of the loop
		for j, fv := range frow {
			diff := qf[j] - float64(fv)
			d2 += diff * diff
		}
	}
	if d2 < 0 {
		d2 = 0
	}
	return d2
}

// rowDotQ is the unitary integer dot of the plan's query codes against
// code row i.
func (s *Store) rowDotQ(p *plan, i int) int64 {
	if s.l.prec == Int8 {
		row := s.codes[i*s.l.codeStride:]
		return linalg.DotQ15U8(p.u, row[:s.l.quantDims])
	}
	row := s.codes16[i*s.l.codeStride/2:]
	return linalg.DotQ15U16(p.u, row[:s.l.quantDims])
}

// scoreAt returns the phase-1 estimate for point i. It is the scalar
// reference the blocked paths must match bit for bit.
func (s *Store) scoreAt(p *plan, i int) float64 {
	return s.combine(p, i, s.rowDotQ(p, i))
}

func (s *Store) getScratch() *scanScratch {
	sc, _ := s.scratchPool.Get().(*scanScratch)
	if sc == nil {
		sc = &scanScratch{scores: make([]float64, scanBlockRows)}
	}
	return sc
}

// getCollector returns a pooled candidate collector reset to capacity
// budget; steady-state searches reuse heap backing arrays instead of
// allocating one per query.
func (s *Store) getCollector(budget int) *knn.Collector {
	c, _ := s.collPool.Get().(*knn.Collector)
	if c == nil {
		c = knn.NewCollector(budget)
	}
	c.Reset(budget)
	return c
}

func (s *Store) putCollector(c *knn.Collector) { s.collPool.Put(c) }

// parScratch is the pooled fan-out state of one scanParallel call: the
// join group and the per-segment collector list, reused across queries.
type parScratch struct {
	wg    sync.WaitGroup
	colls []*knn.Collector
}

func (s *Store) getPar() *parScratch {
	ps, _ := s.parPool.Get().(*parScratch)
	if ps == nil {
		ps = &parScratch{}
	}
	return ps
}

// scanBlockFull scores rows [base, end) with the ×4 kernels into the flat
// scratch buffer, then offers only entries below the collector's bound.
// Offer admits exactly the candidates with dist < Bound(), so the
// pre-filter changes nothing about the admitted set — it only keeps the
// heap branch out of the kernel loop.
func (s *Store) scanBlockFull(p *plan, sc *scanScratch, base, end int, c *knn.Collector) {
	// rem is the unwritten suffix of scores; keeping the block width in the
	// loop condition (len(rem) >= 8 ⇔ i+8 <= end) lets the prover drop
	// every bounds check on the blk writes. The code-row reslices stay —
	// i*stride geometry is the store's layout contract.
	scores := sc.scores[:end-base]
	var dots [4]int64
	i := base
	rem := scores
	if s.l.prec == Int8 {
		stride := s.l.codeStride
		var dots8 [8]int64
		for ; len(rem) >= 8; i += 8 {
			//drlint:ignore bcegate code-row geometry (i*stride) is the store layout contract; one reslice check per 8 rows
			linalg.DotQ15U8x8(p.u, s.codes[i*stride:], stride, &dots8)
			blk := rem[:8]
			for r := 0; r < 8; r++ {
				blk[r] = s.combine(p, i+r, dots8[r])
			}
			rem = rem[8:]
		}
		for ; len(rem) >= 4; i += 4 {
			//drlint:ignore bcegate code-row geometry (i*stride) is the store layout contract; one reslice check per 4 rows
			linalg.DotQ15U8x4(p.u, s.codes[i*stride:], stride, &dots)
			blk := rem[:4]
			blk[0] = s.combine(p, i, dots[0])
			blk[1] = s.combine(p, i+1, dots[1])
			blk[2] = s.combine(p, i+2, dots[2])
			blk[3] = s.combine(p, i+3, dots[3])
			rem = rem[4:]
		}
	} else {
		stride := s.l.codeStride / 2
		for ; len(rem) >= 4; i += 4 {
			//drlint:ignore bcegate code-row geometry (i*stride) is the store layout contract; one reslice check per 4 rows
			linalg.DotQ15U16x4(p.u, s.codes16[i*stride:], stride, &dots)
			blk := rem[:4]
			blk[0] = s.combine(p, i, dots[0])
			blk[1] = s.combine(p, i+1, dots[1])
			blk[2] = s.combine(p, i+2, dots[2])
			blk[3] = s.combine(p, i+3, dots[3])
			rem = rem[4:]
		}
	}
	for j := range rem {
		rem[j] = s.scoreAt(p, i+j)
	}
	bound := c.Bound()
	for j, v := range scores {
		if v < bound {
			c.Offer(base+j, v)
			bound = c.Bound()
		}
	}
}

// scanBlockPrefix is the early-abandon variant used once the collector is
// full: it scores only the variance-leading prefix plane (a contiguous
// prefDims-wide copy of the leading quantized codes) and computes, per
// row, the admissible lower bound
//
//	lb(i) = prefixEst(i) − tstep·csumSuf[i] − margin
//
// on the full estimate. Writing the suffix terms as Σ (aⱼ−stepⱼcⱼ)² −
// 2eⱼcⱼ with eⱼ = t̃ⱼ−tⱼ the query-rounding error (|eⱼ| ≤ tstep/2) shows
// fullEst − prefixEst ≥ −tstep·Σ_suffix cⱼ, so any row with lb(i) ≥
// Bound() would have been rejected by Offer anyway and is skipped without
// touching its full code row; survivors get the exact full estimate and
// the same admission test as the full pass. Bound() only shrinks during a
// scan, so using a momentarily stale bound never prunes a row the naive
// loop would admit — blocked+prefix stays bit-identical to the scalar
// reference at every budget.
func (s *Store) scanBlockPrefix(p *plan, sc *scanScratch, base, end int, c *knn.Collector) (survivors int) {
	P := s.prefDims
	uP := p.u[:P]
	// Same rem-advance shape as scanBlockFull: the block width lives in the
	// loop condition so every lb write is bounds-check free; the prefix-row
	// reslices (i*P geometry) are the layout contract.
	lbs := sc.scores[:end-base]
	var dots [4]int64
	i := base
	rem := lbs
	if s.l.prec == Int8 {
		var dots8 [8]int64
		for ; len(rem) >= 8; i += 8 {
			//drlint:ignore bcegate prefix-plane geometry (i*P) is the store layout contract; one reslice check per 8 rows
			linalg.DotQ15U8x8(uP, s.pref8[i*P:], P, &dots8)
			blk := rem[:8]
			for r := 0; r < 8; r++ {
				blk[r] = s.prefixLB(p, i+r, dots8[r])
			}
			rem = rem[8:]
		}
		for ; len(rem) >= 4; i += 4 {
			//drlint:ignore bcegate prefix-plane geometry (i*P) is the store layout contract; one reslice check per 4 rows
			linalg.DotQ15U8x4(uP, s.pref8[i*P:], P, &dots)
			blk := rem[:4]
			for r := 0; r < 4; r++ {
				blk[r] = s.prefixLB(p, i+r, dots[r])
			}
			rem = rem[4:]
		}
		for j := range rem {
			//drlint:ignore bcegate prefix-plane geometry (i*P) is the store layout contract; one reslice check per tail row
			rem[j] = s.prefixLB(p, i+j, linalg.DotQ15U8(uP, s.pref8[(i+j)*P:(i+j+1)*P]))
		}
	} else {
		for ; len(rem) >= 4; i += 4 {
			//drlint:ignore bcegate prefix-plane geometry (i*P) is the store layout contract; one reslice check per 4 rows
			linalg.DotQ15U16x4(uP, s.pref16[i*P:], P, &dots)
			blk := rem[:4]
			for r := 0; r < 4; r++ {
				blk[r] = s.prefixLB(p, i+r, dots[r])
			}
			rem = rem[4:]
		}
		for j := range rem {
			//drlint:ignore bcegate prefix-plane geometry (i*P) is the store layout contract; one reslice check per tail row
			rem[j] = s.prefixLB(p, i+j, linalg.DotQ15U16(uP, s.pref16[(i+j)*P:(i+j+1)*P]))
		}
	}
	bound := c.Bound()
	for j, lb := range lbs {
		if lb < bound {
			survivors++
			v := s.scoreAt(p, base+j)
			if v < bound {
				c.Offer(base+j, v)
				bound = c.Bound()
			}
		}
	}
	return survivors
}

// prefixLB folds a prefix-plane integer dot into the lower bound tested
// against the collector's admission threshold. The aux code sums are
// exact integers; snormP is stored rounded toward zero, which can only
// lower the bound — both keep it admissible.
func (s *Store) prefixLB(p *plan, i int, idot int64) float64 {
	aux := &s.prefAux[i]
	est := p.a2P + float64(aux.snormP) - 2*(p.tmin*float64(aux.csumP)+p.tstep*float64(idot))
	return est - p.tstep*float64(aux.csumSuf) - p.margin
}

// prefixHoldoffBlocks is how many blocks the sweep runs in full mode
// after a prefix block fails the payoff test before probing the prefix
// again (the admission bound tightens as the scan advances, so pruning
// that was unprofitable early can become profitable later).
const prefixHoldoffBlocks = 16

// warmupBlocks is how many leading blocks of a segment run in full mode
// even once the collector fills. The admission bound after seeing only
// budget rows is far looser than the final one, so an immediate switch
// to the prefix pass pays full price (prefix dot + survivor dot) on the
// many rows that loose bound cannot prune; a short warmup at 256 rows
// per block tightens the bound at ~33 ns/row before pruning starts.
// Pure scheduling — admitted candidates are unchanged (see scanSegment).
// At the 1M-point benchmark, 32 blocks cut the whole-scan survivor rate
// about 4× over switching as soon as the collector fills.
const warmupBlocks = 32

// scanSegment runs the blocked phase-1 sweep over [lo, hi). Once the
// collector is full it tries the prefix early-abandon pass, but keeps it
// honest with a payoff probe: a prefix block whose survivor fraction
// exceeds ~3/8 costs more (prefix dot + full unitary dot per survivor)
// than the straight ×4 full pass, so such blocks push the sweep back to
// full mode for prefixHoldoffBlocks before re-probing. The two block
// kinds admit identical candidates, so this scheduling is invisible in
// the results — it is purely a bandwidth/ALU trade.
//
//drlint:hotpath inline=2
func (s *Store) scanSegment(p *plan, lo, hi int, c *knn.Collector) {
	sc := s.getScratch()
	usePrefix := s.prefDims > 0
	holdoff := 0
	// Cap the warmup at an eighth of the segment so short segments — small
	// stores, or a large one split across many workers — still spend most
	// of their sweep in the cheaper prefix mode.
	warmRows := warmupBlocks * scanBlockRows
	if limit := (hi - lo) / 8; warmRows > limit {
		warmRows = limit
	}
	warm := lo + warmRows
	for base := lo; base < hi; base += scanBlockRows {
		end := base + scanBlockRows
		if end > hi {
			end = hi
		}
		if usePrefix && holdoff == 0 && base >= warm && c.Full() {
			if surv := s.scanBlockPrefix(p, sc, base, end, c); 8*surv > 3*(end-base) {
				holdoff = prefixHoldoffBlocks
			}
		} else {
			s.scanBlockFull(p, sc, base, end, c)
			if holdoff > 0 {
				holdoff--
			}
		}
	}
	s.scratchPool.Put(sc)
}

// Search returns the k nearest neighbors of q by two-phase search over the
// whole store: a quantized scan admits the rescore-budget best candidates,
// which are exactly rescored against the float64 region and re-sorted
// under the canonical (distance, index) order. rescore < k is treated as
// k; rescore ≥ Len() makes the result bit-identical to exact search (every
// point is admitted and exactly scored).
//
//drlint:hotpath
func (s *Store) Search(q []float64, k, rescore int) []knn.Neighbor {
	res, _ := s.SearchRange(q, 0, s.l.n, k, rescore)
	return res
}

// SearchRange is Search restricted to the contiguous point range [lo, hi)
// — the shard entry point of the serving layer. Returned indices are
// global. The second result is the number of candidates phase 2 rescored.
func (s *Store) SearchRange(q []float64, lo, hi, k, rescore int) ([]knn.Neighbor, int) {
	return s.SearchRangeWorkers(q, lo, hi, k, rescore, 1)
}

// SearchRangeWorkers is SearchRange with the phase-1 sweep split across
// up to workers parallel segments (workers ≤ 1 scans sequentially). Each
// segment fills its own full-budget collector; the merged candidate set,
// truncated under the canonical (dist, index) order, equals the
// sequential scan's set exactly — a point survives iff fewer than budget
// points precede it in that total order, regardless of segmentation — so
// results are bit-identical for every worker count. Worker counts beyond
// what minSegmentRows-sized slices of [lo, hi) can occupy are clamped.
//
//drlint:hotpath inline=8
func (s *Store) SearchRangeWorkers(q []float64, lo, hi, k, rescore, workers int) ([]knn.Neighbor, int) {
	s.mu.RLock()
	//drlint:ignore hotalloc one deferred frame per query guards the mapping against Close on every panic path; not per-point cost
	defer s.mu.RUnlock()
	if s.closed {
		panic("store: search on closed store")
	}
	if len(q) != s.l.d {
		panic(fmt.Sprintf("store: query has %d dims, store has %d", len(q), s.l.d))
	}
	if lo < 0 || hi > s.l.n || lo >= hi {
		panic(fmt.Sprintf("store: range [%d,%d) outside [0,%d)", lo, hi, s.l.n))
	}
	if k <= 0 {
		panic(fmt.Sprintf("store: k=%d must be positive", k))
	}
	budget := rescore
	if budget < k {
		budget = k
	}
	if budget > hi-lo {
		budget = hi - lo
	}
	if maxW := (hi - lo + minSegmentRows - 1) / minSegmentRows; workers > maxW {
		workers = maxW
	}
	if procs := runtime.GOMAXPROCS(0); workers > procs {
		workers = procs
	}

	p := s.getPlan(q)
	var cand []knn.Neighbor
	if workers <= 1 {
		c := s.getCollector(budget)
		s.scanSegment(p, lo, hi, c)
		cand = c.Results()
		s.putCollector(c)
	} else {
		cand = s.scanParallel(p, lo, hi, budget, workers)
	}
	s.putPlan(p)
	s.scanned.Add(uint64(hi - lo))

	// After a DropExactPages, phase-2 rows fault back in from disk; with
	// the exact region mapped MADV_RANDOM each fault is a blocking disk
	// round-trip, so a cold query pays ~budget serial I/Os. Queue all
	// candidate rows as asynchronous read-ahead first — a few µs of
	// syscalls per query — so the faults below overlap. Skipped entirely
	// until the first drop: resident stores pay nothing.
	if s.exactCold.Load() {
		rowBytes := 8 * int64(s.l.d)
		for t := range cand {
			off := s.l.exactOff + int64(cand[t].Index)*rowBytes
			s.mm.willneedRange(off, off+rowBytes)
		}
	}

	e := knn.Euclidean{}
	for t := range cand {
		cand[t].Dist = e.Distance(s.exactMat.RawRow(cand[t].Index), q)
	}
	rescored := len(cand)
	s.rescored.Add(uint64(rescored))
	knn.SortNeighbors(cand)
	if len(cand) > k {
		cand = cand[:k]
	}
	return cand, rescored
}

// scanParallel fans the sweep out over worker segments with per-segment
// collectors and merges under the canonical order. The segment collectors
// each carry the full budget: a merged-then-truncated candidate set is
// then provably the global budget-smallest set under (dist, index).
// Fan-out state (collectors, join group) is pooled, and the workers run a
// named method rather than a capturing literal, so the parallel path
// stays allocation-free apart from the goroutines themselves.
func (s *Store) scanParallel(p *plan, lo, hi, budget, workers int) []knn.Neighbor {
	seg := (hi - lo + workers - 1) / workers
	ps := s.getPar()
	if cap(ps.colls) < workers {
		ps.colls = make([]*knn.Collector, 0, workers)
	}
	for a := lo; a < hi; a += seg {
		b := a + seg
		if b > hi {
			b = hi
		}
		c := s.getCollector(budget)
		ps.colls = append(ps.colls, c)
		ps.wg.Add(1)
		go s.segmentWorker(ps, p, a, b, c)
	}
	ps.wg.Wait()
	var all []knn.Neighbor
	for _, c := range ps.colls {
		all = append(all, c.Results()...)
	}
	for i, c := range ps.colls {
		s.putCollector(c)
		ps.colls[i] = nil
	}
	ps.colls = ps.colls[:0]
	s.parPool.Put(ps)
	knn.SortNeighbors(all)
	if len(all) > budget {
		all = all[:budget]
	}
	return all
}

// segmentWorker is one goroutine of an intra-query parallel sweep.
// Done is called directly rather than deferred: scanSegment's only exits
// are normal return and index-out-of-range style programming-error
// panics that crash the process anyway, and skipping the defer keeps the
// worker frame off the hot path's allocation budget.
func (s *Store) segmentWorker(ps *parScratch, p *plan, lo, hi int, c *knn.Collector) {
	s.scanSegment(p, lo, hi, c)
	ps.wg.Done()
}

// SearchBatch runs Search for every row of queries, parallelized over up
// to GOMAXPROCS goroutines (queries are independent, so per-query scans
// stay sequential here — inter-query parallelism already saturates the
// cores). Per-query state rides the store's pools; the only per-batch
// allocations are the result slice itself and the worker goroutines.
//
//drlint:hotpath inline=2
func (s *Store) SearchBatch(queries *linalg.Dense, k, rescore int) [][]knn.Neighbor {
	if queries.Cols() != s.l.d {
		panic(fmt.Sprintf("store: queries have %d dims, store has %d", queries.Cols(), s.l.d))
	}
	nq := queries.Rows()
	out := make([][]knn.Neighbor, nq)
	workers := runtime.GOMAXPROCS(0)
	if workers > nq {
		workers = nq
	}
	if workers <= 1 {
		for i := 0; i < nq; i++ {
			out[i] = s.Search(queries.RawRow(i), k, rescore)
		}
		return out
	}
	chunk := (nq + workers - 1) / workers
	//drlint:ignore escapegate one WaitGroup heap cell per batch, shared by every worker and amortized over nq queries
	var wg sync.WaitGroup
	for lo := 0; lo < nq; lo += chunk {
		hi := lo + chunk
		if hi > nq {
			hi = nq
		}
		wg.Add(1)
		go s.batchWorker(&wg, queries, out, lo, hi, k, rescore)
	}
	wg.Wait()
	return out
}

// batchWorker answers queries [lo, hi) of a SearchBatch fan-out. Done is
// called directly, not deferred, for the same reason as segmentWorker:
// the only non-returning exits are process-fatal panics, and the hot
// path's allocation budget excludes deferred frames.
func (s *Store) batchWorker(wg *sync.WaitGroup, queries *linalg.Dense, out [][]knn.Neighbor, lo, hi, k, rescore int) {
	for i := lo; i < hi; i++ {
		out[i] = s.Search(queries.RawRow(i), k, rescore)
	}
	wg.Done()
}

// DropExactPages hints the kernel to evict the full-precision region from
// residency (best-effort, linux only): first from this process's page
// tables (madvise MADV_DONTNEED), then from the page cache itself
// (posix_fadvise POSIX_FADV_DONTNEED) — without the second step the clean
// file pages stay cached and fault-around silently maps the whole region
// back on the next scattered rescore. Benchmarks call it between a
// ground-truth pass (which faults the whole exact region in) and the
// serving measurement, so reported RSS reflects the quantized working set
// plus only the pages phase 2 actually touches.
func (s *Store) DropExactPages() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return
	}
	lo := s.l.exactOff
	hi := lo + 8*int64(s.l.n)*int64(s.l.d)
	s.mm.dropRange(lo, hi)
	fadviseDontneed(s.path, lo, hi-lo)
	s.exactCold.Store(true)
}
