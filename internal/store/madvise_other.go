//go:build unix && !linux

package store

// madviseDontneed is a no-op off linux; dropRange is a best-effort
// residency hint only.
func madviseDontneed(b []byte) {}

// madviseRandom is a no-op off linux; readahead behavior is unmodified.
func madviseRandom(b []byte) {}

// madviseWillneed is a no-op off linux; rescore rows fault on demand.
func madviseWillneed(b []byte) {}

// madviseHugepage is a no-op off linux; page size is left to the system.
func madviseHugepage(b []byte) {}

// fadviseDontneed is a no-op off linux; the page cache is unmodified.
func fadviseDontneed(path string, off, n int64) {}
