//go:build !unix

package store

import (
	"io"
	"os"
	"unsafe"
)

// Portable fallback: without mmap the whole file is read into memory. The
// buffer is allocated as []uint64 so the zero-copy float64/uint32 casts
// stay 8-byte aligned.
type mapping struct {
	bytes []byte
}

func mapFile(f *os.File, size int64) (mapping, error) {
	words := make([]uint64, (size+7)/8)
	b := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return mapping{}, err
	}
	if _, err := io.ReadFull(f, b); err != nil {
		return mapping{}, err
	}
	return mapping{bytes: b}, nil
}

func (m mapping) close() error { return nil }

func (m mapping) dropRange(lo, hi int64) {}

func (m mapping) adviseRandom(lo, hi int64) {}

func (m mapping) willneedRange(lo, hi int64) {}

func fadviseDontneed(path string, off, n int64) {}
