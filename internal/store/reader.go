package store

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/linalg"
)

// Store is an opened, mmap-backed quantized vector store. All search
// methods are safe for concurrent use; Close waits for in-flight searches
// and unmaps the file.
type Store struct {
	path string
	l    layout
	mm   mapping

	perm        []int
	mins, steps []float64 // storage order

	codes []byte
	f32   []float32
	snorm []float64
	exact []float64
	// exactMat is a zero-copy Dense view over the exact region; reading it
	// pages the float64 rows in on demand.
	exactMat *linalg.Dense

	// mu guards the mapping's lifetime: searches hold the read lock, Close
	// takes the write lock, so the pages can never vanish under a scan.
	mu     sync.RWMutex
	closed bool

	// scanned and rescored count points offered to phase 1 and candidates
	// exactly rescored in phase 2 since Open.
	scanned  atomic.Uint64
	rescored atomic.Uint64
}

// Open maps a store file written by Writer/Write.
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, headerSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("store: reading header of %s: %w", path, err)
	}
	l, err := decodeHeader(hdr)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	if st.Size() != l.fileSize {
		return nil, fmt.Errorf("store: %s is %d bytes, header says %d", path, st.Size(), l.fileSize)
	}
	if endianSentinelNative(hdr) != endianSentinel {
		return nil, fmt.Errorf("store: %s: native byte order does not match the little-endian file layout", path)
	}
	mm, err := mapFile(f, l.fileSize)
	if err != nil {
		return nil, fmt.Errorf("store: mapping %s: %w", path, err)
	}
	b := mm.bytes
	s := &Store{path: path, l: l, mm: mm}
	permU32 := castU32(b[l.permOff : l.permOff+4*int64(l.d)])
	s.perm = make([]int, l.d)
	for j, p := range permU32 {
		s.perm[j] = int(p)
	}
	s.mins = castF64(b[l.minsOff : l.minsOff+8*int64(l.d)])
	s.steps = castF64(b[l.stepsOff : l.stepsOff+8*int64(l.d)])
	nBlocks := int64((l.n + l.blockRows - 1) / l.blockRows)
	s.codes = b[l.codesOff : l.codesOff+nBlocks*int64(l.blockRows)*int64(l.codeStride)]
	s.snorm = castF64(b[l.snormOff : l.snormOff+8*int64(l.n)])
	s.exact = castF64(b[l.exactOff : l.exactOff+8*int64(l.n)*int64(l.d)])
	if l.fullDims > 0 {
		s.f32 = castF32(b[l.f32Off : l.f32Off+4*int64(l.n)*int64(l.fullDims)])
	}
	s.exactMat = linalg.NewDenseData(l.n, l.d, s.exact)
	// Phase-2 rescores fault scattered exact rows; without this hint the
	// kernel's readahead window repopulates the whole region.
	mm.adviseRandom(l.exactOff, l.fileSize)
	return s, nil
}

// Close unmaps the store after in-flight searches drain. Safe to call twice.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.mm.close()
}

// Len returns the number of stored points.
func (s *Store) Len() int { return s.l.n }

// Dims returns the ambient dimensionality.
func (s *Store) Dims() int { return s.l.d }

// Precision returns the quantized code width.
func (s *Store) Precision() Precision { return s.l.prec }

// FullDims returns how many leading storage dimensions are kept at float32.
func (s *Store) FullDims() int { return s.l.fullDims }

// BlockRows returns the scan-block granularity of the code region.
func (s *Store) BlockRows() int { return s.l.blockRows }

// Path returns the backing file path.
func (s *Store) Path() string { return s.path }

// BytesPerVectorScan returns the bytes per point that a phase-1 scan keeps
// resident: the padded code row, the cached quantized norm, and the float32
// prefix. The float64 alternative is 8·d; their ratio is the store's
// resident-memory win.
func (s *Store) BytesPerVectorScan() int {
	return s.l.codeStride + 8 + 4*s.l.fullDims
}

// ExactMatrix returns a zero-copy Dense view over the full-precision
// region (row-major, original dimension order). Reading it faults pages in
// on demand; it is how ground-truth computations run over a store without
// a second copy of the data.
func (s *Store) ExactMatrix() *linalg.Dense { return s.exactMat }

// ExactRow returns the full-precision float64 row i (zero-copy).
func (s *Store) ExactRow(i int) []float64 { return s.exactMat.RawRow(i) }

// DequantRow reconstructs point i from its stored representation (float32
// prefix dims plus dequantized codes), in original dimension order. The
// per-dimension reconstruction error of a quantized dimension is bounded by
// stepⱼ/2 — the property the round-trip tests pin.
func (s *Store) DequantRow(i int) []float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		panic("store: DequantRow on closed store")
	}
	if i < 0 || i >= s.l.n {
		panic(fmt.Sprintf("store: row %d outside [0,%d)", i, s.l.n))
	}
	out := make([]float64, s.l.d)
	F := s.l.fullDims
	for j := 0; j < F; j++ {
		out[s.perm[j]] = float64(s.f32[i*F+j])
	}
	row := s.codes[i*s.l.codeStride:]
	for j := F; j < s.l.d; j++ {
		var c float64
		if s.l.prec == Int8 {
			c = float64(row[j-F])
		} else {
			c = float64(castU16(row[:2*s.l.quantDims])[j-F])
		}
		out[s.perm[j]] = s.mins[j] + s.steps[j]*c
	}
	return out
}

// Mins and Steps return the per-dimension affine scales in original
// dimension order (copies).
func (s *Store) Mins() []float64 { return s.scalesOriginal(s.mins) }

// Steps returns the per-dimension quantization steps in original dimension
// order (copies); a step of 0 marks a constant or full-precision dimension.
func (s *Store) Steps() []float64 { return s.scalesOriginal(s.steps) }

func (s *Store) scalesOriginal(storageOrder []float64) []float64 {
	out := make([]float64, s.l.d)
	for j, v := range storageOrder {
		out[s.perm[j]] = v
	}
	return out
}

// Stats reports cumulative scan work since Open.
type Stats struct {
	// Scanned counts points whose quantized distance was evaluated.
	Scanned uint64
	// Rescored counts candidates refined against the exact region.
	Rescored uint64
}

// Stats returns a point-in-time snapshot of the scan counters.
func (s *Store) Stats() Stats {
	return Stats{Scanned: s.scanned.Load(), Rescored: s.rescored.Load()}
}
