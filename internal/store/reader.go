package store

import (
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/linalg"
)

// prefixAux is the per-row side record of the early-abandon pass, packed
// to 12 bytes so the prefix sweep streams P+12 bytes per row. The code
// sums are exact: csumP ≤ P·65535 and csumSuf ≤ (quantDims−P)·65535 both
// fit uint32 with room to spare. snormP is the one lossy field — it is
// rounded toward zero at build time (never up), so the lower bound it
// enters can only loosen; admissibility never depends on float32 having
// enough precision.
type prefixAux struct {
	snormP         float32
	csumP, csumSuf uint32
}

// Store is an opened, mmap-backed quantized vector store. All search
// methods are safe for concurrent use; Close waits for in-flight searches
// and unmaps the file.
type Store struct {
	path string
	l    layout
	mm   mapping

	perm        []int
	mins, steps []float64 // storage order

	codes []byte
	// codes16 is the uint16 view over the same code region (Int16 stores
	// only); rows start at multiples of codeStride/2 elements.
	codes16 []uint16
	f32     []float32
	snorm   []float64
	exact   []float64
	// exactMat is a zero-copy Dense view over the exact region; reading it
	// pages the float64 rows in on demand.
	exactMat *linalg.Dense

	// Scan-side caches built once by Open and read-only afterwards.
	//
	// scanAux interleaves, per row, the two scalars the integer-dot scan
	// needs next to each other on one cache line: {snorm[i], csum[i]} at
	// [2i, 2i+1], where csum[i] = Σⱼ cⱼ is the row's code sum — the exact
	// correction term that turns the integer dot Σu·c back into Σt̃·c
	// (see plan.quantizeQ15). Code sums are ≤ 65535·d, exact in float64.
	scanAux []float64

	// The early-abandon prefix: the first prefDims quantized storage
	// dimensions (0 disables the pass). pref8/pref16 hold a contiguous
	// copy of those leading codes — stride prefDims, no padding — so the
	// prefix pass streams ~P bytes per row instead of faulting the full
	// codeStride row. prefAux holds one packed 12-byte record per row
	// (see prefixAux) with the prefix parts of snorm and csum plus the
	// suffix code sum csum−csumP that scales the admissible slack
	// (prefix lower bound = prefix estimate − tstep·csumSuf, see
	// scanBlockPrefix).
	prefDims int
	pref8    []uint8
	pref16   []uint16
	prefAux  []prefixAux
	// snormMean scales the floating-point safety margin subtracted from
	// prefix lower bounds.
	snormMean float64

	// planPool, scratchPool, collPool, and parPool recycle per-query
	// plans, per-segment block buffers, candidate collectors, and
	// parallel fan-out state so the serving hot path does not allocate.
	planPool    sync.Pool
	scratchPool sync.Pool
	collPool    sync.Pool
	parPool     sync.Pool

	// mu guards the mapping's lifetime: searches hold the read lock, Close
	// takes the write lock, so the pages can never vanish under a scan.
	mu     sync.RWMutex
	closed bool

	// scanned and rescored count points offered to phase 1 and candidates
	// exactly rescored in phase 2 since Open.
	scanned  atomic.Uint64
	rescored atomic.Uint64

	// exactCold is set by DropExactPages and makes every later rescore
	// queue read-ahead for its candidate rows before touching them (cold
	// rows otherwise fault serially under MADV_RANDOM). Never cleared:
	// once residency is being managed externally, the hint stays cheap
	// relative to the faults it hides.
	exactCold atomic.Bool
}

// Open maps a store file written by Writer/Write.
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, headerSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("store: reading header of %s: %w", path, err)
	}
	l, err := decodeHeader(hdr)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	if st.Size() != l.fileSize {
		return nil, fmt.Errorf("store: %s is %d bytes, header says %d", path, st.Size(), l.fileSize)
	}
	if endianSentinelNative(hdr) != endianSentinel {
		return nil, fmt.Errorf("store: %s: native byte order does not match the little-endian file layout", path)
	}
	mm, err := mapFile(f, l.fileSize)
	if err != nil {
		return nil, fmt.Errorf("store: mapping %s: %w", path, err)
	}
	b := mm.bytes
	s := &Store{path: path, l: l, mm: mm}
	permU32 := castU32(b[l.permOff : l.permOff+4*int64(l.d)])
	s.perm = make([]int, l.d)
	for j, p := range permU32 {
		s.perm[j] = int(p)
	}
	s.mins = castF64(b[l.minsOff : l.minsOff+8*int64(l.d)])
	s.steps = castF64(b[l.stepsOff : l.stepsOff+8*int64(l.d)])
	nBlocks := int64((l.n + l.blockRows - 1) / l.blockRows)
	s.codes = b[l.codesOff : l.codesOff+nBlocks*int64(l.blockRows)*int64(l.codeStride)]
	s.snorm = castF64(b[l.snormOff : l.snormOff+8*int64(l.n)])
	s.exact = castF64(b[l.exactOff : l.exactOff+8*int64(l.n)*int64(l.d)])
	if l.fullDims > 0 {
		s.f32 = castF32(b[l.f32Off : l.f32Off+4*int64(l.n)*int64(l.fullDims)])
	}
	if l.prec == Int16 {
		s.codes16 = castU16(s.codes)
	}
	//drlint:ignore unsafelife exactMat lives inside Store, whose mu gates every read against Close unmapping
	s.exactMat = linalg.NewDenseData(l.n, l.d, s.exact)
	s.buildScanCaches()
	// Phase-2 rescores fault scattered exact rows; without this hint the
	// kernel's readahead window repopulates the whole region.
	mm.adviseRandom(l.exactOff, l.fileSize)
	return s, nil
}

// prefixDims picks the early-abandon prefix width — a multiple of the
// kernels' 16-code step, wide enough that a variance-descending
// permutation concentrates most of the signal in it, and 0 (disabled)
// when the store is too narrow for a prefix to be a meaningful subset.
// On the musk-like distribution the leading 32/64 quantized dimensions
// carry ~66%/91% of the variance; at 1M points the wider prefix cuts
// tight-bound survivors from ~16% to under 1%, which more than pays for
// streaming the wider plane.
func prefixDims(quantDims int) int {
	switch {
	case quantDims < 64:
		return 0
	case quantDims < 128:
		return 32
	default:
		return 64
	}
}

// adviseHuge marks a freshly allocated scan cache as a transparent
// huge-page candidate. The caches are streamed front to back on every
// query; on 4 kB pages the million-row sweep takes a dTLB walk every few
// dozen rows, which 2 MB pages mostly remove. Best-effort and purely
// advisory — correctness never depends on it.
func adviseHuge[T any](s []T) {
	if len(s) == 0 {
		return
	}
	madviseHugepage(unsafe.Slice((*byte)(unsafe.Pointer(&s[0])),
		len(s)*int(unsafe.Sizeof(s[0]))))
}

// buildScanCaches derives the integer-scan side tables from the mapped
// regions in one sequential pass over the code rows: per-row code sums
// (the exact correction term of the quantized-query dot), and — when the
// store is wide enough — the contiguous early-abandon prefix plane with
// its per-row prefix norms and code sums. Runs once at Open; everything
// it writes is immutable afterwards.
func (s *Store) buildScanCaches() {
	n, Q := s.l.n, s.l.quantDims
	F := s.l.fullDims
	s.scanAux = make([]float64, 2*n)
	adviseHuge(s.scanAux)
	P := prefixDims(Q)
	s.prefDims = P
	if P > 0 {
		s.prefAux = make([]prefixAux, n)
		adviseHuge(s.prefAux)
		if s.l.prec == Int8 {
			s.pref8 = make([]uint8, n*P)
			adviseHuge(s.pref8)
		} else {
			s.pref16 = make([]uint16, n*P)
			adviseHuge(s.pref16)
		}
	}
	// Quantization steps of the prefix dimensions, in storage order.
	psteps := s.steps[F : F+P]
	var snormSum float64
	for i := 0; i < n; i++ {
		var csum, csumP, snormP float64
		if s.l.prec == Int8 {
			row := s.codes[i*s.l.codeStride : i*s.l.codeStride+Q]
			for _, c := range row {
				csum += float64(c)
			}
			for j := 0; j < P; j++ {
				c := float64(row[j])
				csumP += c
				sc := psteps[j] * c
				snormP += sc * sc
			}
			if P > 0 {
				copy(s.pref8[i*P:(i+1)*P], row[:P])
			}
		} else {
			row := s.codes16[i*s.l.codeStride/2 : i*s.l.codeStride/2+Q]
			for _, c := range row {
				csum += float64(c)
			}
			for j := 0; j < P; j++ {
				c := float64(row[j])
				csumP += c
				sc := psteps[j] * c
				snormP += sc * sc
			}
			if P > 0 {
				copy(s.pref16[i*P:(i+1)*P], row[:P])
			}
		}
		s.scanAux[2*i] = s.snorm[i]
		s.scanAux[2*i+1] = csum
		snormSum += s.snorm[i]
		if P > 0 {
			sn := float32(snormP)
			if float64(sn) > snormP {
				sn = math.Nextafter32(sn, 0)
			}
			s.prefAux[i] = prefixAux{
				snormP:  sn,
				csumP:   uint32(csumP),
				csumSuf: uint32(csum - csumP),
			}
		}
	}
	if n > 0 {
		s.snormMean = snormSum / float64(n)
	}
}

// Close unmaps the store after in-flight searches drain. Safe to call twice.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.mm.close()
}

// Len returns the number of stored points.
func (s *Store) Len() int { return s.l.n }

// Dims returns the ambient dimensionality.
func (s *Store) Dims() int { return s.l.d }

// Precision returns the quantized code width.
func (s *Store) Precision() Precision { return s.l.prec }

// FullDims returns how many leading storage dimensions are kept at float32.
func (s *Store) FullDims() int { return s.l.fullDims }

// BlockRows returns the scan-block granularity of the code region.
func (s *Store) BlockRows() int { return s.l.blockRows }

// Path returns the backing file path.
func (s *Store) Path() string { return s.path }

// BytesPerVectorScan returns the bytes per point that a phase-1 scan keeps
// resident: the padded code row, the cached {norm, code-sum} pair, the
// float32 prefix, and — when the early-abandon pass is enabled — the
// prefix code plane with its packed 12-byte aux record. The float64
// alternative is 8·d; their ratio is the store's resident-memory win.
// (An abandoning scan touches far fewer bytes than this on most rows;
// this is the resident footprint, not the traffic.)
func (s *Store) BytesPerVectorScan() int {
	b := s.l.codeStride + 16 + 4*s.l.fullDims
	if s.prefDims > 0 {
		b += s.prefDims*int(s.l.prec) + 12
	}
	return b
}

// PrefixDims returns the width of the early-abandon prefix (0 when the
// pass is disabled for this store's shape).
func (s *Store) PrefixDims() int { return s.prefDims }

// ExactMatrix returns a zero-copy Dense view over the full-precision
// region (row-major, original dimension order). Reading it faults pages in
// on demand; it is how ground-truth computations run over a store without
// a second copy of the data. The view is only valid until Close; callers
// that need to outlive the store must copy.
//
//drlint:ignore unsafelife documented zero-copy escape hatch; valid until Close by contract
func (s *Store) ExactMatrix() *linalg.Dense { return s.exactMat }

// ExactRow returns the full-precision float64 row i (zero-copy, valid
// until Close).
//
//drlint:ignore unsafelife documented zero-copy escape hatch; valid until Close by contract
func (s *Store) ExactRow(i int) []float64 { return s.exactMat.RawRow(i) }

// DequantRow reconstructs point i from its stored representation (float32
// prefix dims plus dequantized codes), in original dimension order. The
// per-dimension reconstruction error of a quantized dimension is bounded by
// stepⱼ/2 — the property the round-trip tests pin.
func (s *Store) DequantRow(i int) []float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		panic("store: DequantRow on closed store")
	}
	if i < 0 || i >= s.l.n {
		panic(fmt.Sprintf("store: row %d outside [0,%d)", i, s.l.n))
	}
	out := make([]float64, s.l.d)
	F := s.l.fullDims
	for j := 0; j < F; j++ {
		out[s.perm[j]] = float64(s.f32[i*F+j])
	}
	row := s.codes[i*s.l.codeStride:]
	for j := F; j < s.l.d; j++ {
		var c float64
		if s.l.prec == Int8 {
			c = float64(row[j-F])
		} else {
			c = float64(castU16(row[:2*s.l.quantDims])[j-F])
		}
		out[s.perm[j]] = s.mins[j] + s.steps[j]*c
	}
	return out
}

// Mins and Steps return the per-dimension affine scales in original
// dimension order (copies).
func (s *Store) Mins() []float64 { return s.scalesOriginal(s.mins) }

// Steps returns the per-dimension quantization steps in original dimension
// order (copies); a step of 0 marks a constant or full-precision dimension.
func (s *Store) Steps() []float64 { return s.scalesOriginal(s.steps) }

func (s *Store) scalesOriginal(storageOrder []float64) []float64 {
	out := make([]float64, s.l.d)
	for j, v := range storageOrder {
		out[s.perm[j]] = v
	}
	return out
}

// Stats reports cumulative scan work since Open.
type Stats struct {
	// Scanned counts points whose quantized distance was evaluated.
	Scanned uint64
	// Rescored counts candidates refined against the exact region.
	Rescored uint64
}

// Stats returns a point-in-time snapshot of the scan counters.
func (s *Store) Stats() Stats {
	return Stats{Scanned: s.scanned.Load(), Rescored: s.rescored.Load()}
}
