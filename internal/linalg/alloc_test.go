package linalg

import (
	"math/rand"
	"testing"
)

// TestDotQ15ZeroAllocs pins the //drlint:hotpath contract of the exported
// integer-dot wrappers at runtime: validation, dispatch, and both kernel
// paths (assembly head + scalar tail, or all-generic) run without heap
// allocations — these are the innermost calls of the quantized scan, hit
// hundreds of times per block.
func TestDotQ15ZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	const d, pad = 166, 10
	stride := d + pad
	u := randCodesQ15(rng, d)
	c8 := randCodesU8(rng, d)
	c16 := randCodesU16(rng, d)
	rows8 := randCodesU8(rng, 7*stride+d)
	rows16 := randCodesU16(rng, 3*stride+d)
	var out4 [4]int64
	var out8 [8]int64
	var sink int64

	for name, call := range map[string]func(){
		"DotQ15U8":    func() { sink += DotQ15U8(u, c8) },
		"DotQ15U16":   func() { sink += DotQ15U16(u, c16) },
		"DotQ15U8x4":  func() { DotQ15U8x4(u, rows8, stride, &out4) },
		"DotQ15U16x4": func() { DotQ15U16x4(u, rows16, stride, &out4) },
		"DotQ15U8x8":  func() { DotQ15U8x8(u, rows8, stride, &out8) },
	} {
		if avg := testing.AllocsPerRun(500, call); avg != 0 {
			t.Errorf("%s does %.2f allocs/op, want 0", name, avg)
		}
	}
	_ = sink
}
