package linalg

import "fmt"

// Quantized-code inner products. These are the scan kernels of the
// quantized vector store (internal/store): a data row is held as unsigned
// integer codes c with per-dimension affine scales, and the asymmetric
// squared distance to a float query decomposes as
//
//	‖q − x̂‖² = Σⱼ aⱼ² − 2·Σⱼ tⱼ·cⱼ + Σⱼ (stepⱼ·cⱼ)²
//
// with aⱼ = qⱼ − minⱼ and tⱼ = aⱼ·stepⱼ precomputed once per query. The
// only per-point work is the mixed-precision dot Σ tⱼ·float64(cⱼ), so that
// is the kernel: 1 (or 2) data bytes per dimension instead of 8, which is
// what makes a million-point scan fit in cache-and-bandwidth budgets the
// float64 kernels cannot meet.

// DotU8 returns Σ t[j]·float64(c[j]) for uint8 codes. It dispatches to an
// AVX2/FMA assembly kernel on capable amd64 hardware and to the portable
// generic kernel elsewhere; like Dot, the two paths may differ in the last
// ulp or two (FMA contraction) but are each deterministic.
func DotU8(t []float64, c []uint8) float64 {
	if len(t) != len(c) {
		panic(fmt.Sprintf("linalg: DotU8 length mismatch %d vs %d", len(t), len(c)))
	}
	return dotU8Unitary(t, c)
}

// DotU16 is DotU8 for uint16 codes (int16-precision scalar quantization).
func DotU16(t []float64, c []uint16) float64 {
	if len(t) != len(c) {
		panic(fmt.Sprintf("linalg: DotU16 length mismatch %d vs %d", len(t), len(c)))
	}
	return dotU16Unitary(t, c)
}

// dotU8Generic is the portable kernel: four independent accumulators break
// the add-latency chain, mirroring dotGeneric so the forced-fallback parity
// tests can demand bit identity.
func dotU8Generic(t []float64, c []uint8) float64 {
	n := len(t)
	c = c[:n] // hoist the bounds check out of the loop
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += t[i] * float64(c[i])
		s1 += t[i+1] * float64(c[i+1])
		s2 += t[i+2] * float64(c[i+2])
		s3 += t[i+3] * float64(c[i+3])
	}
	s := (s0 + s2) + (s1 + s3)
	for ; i < n; i++ {
		s += t[i] * float64(c[i])
	}
	return s
}

func dotU16Generic(t []float64, c []uint16) float64 {
	n := len(t)
	c = c[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += t[i] * float64(c[i])
		s1 += t[i+1] * float64(c[i+1])
		s2 += t[i+2] * float64(c[i+2])
		s3 += t[i+3] * float64(c[i+3])
	}
	s := (s0 + s2) + (s1 + s3)
	for ; i < n; i++ {
		s += t[i] * float64(c[i])
	}
	return s
}
