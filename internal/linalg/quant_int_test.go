package linalg

import (
	"math/rand"
	"testing"
)

// The integer Q15 kernels carry a stronger contract than the float family:
// the sum is exact integer arithmetic, so the dispatched assembly path
// must equal the generic path EXACTLY on every input — no ulp tolerance —
// including lengths that cross the in-assembly i32→i64 drain cadence
// (every 64 iterations = 1024 codes for the u8 kernel). intParityDims
// extends parityDims with those drain-crossing lengths.

var intParityDims = []int{1, 7, 16, 166, 1024, 1100, 2080}

func randCodesQ15(rng *rand.Rand, d int) []uint16 {
	u := make([]uint16, d)
	for i := range u {
		u[i] = uint16(rng.Intn(MaxQ15 + 1))
	}
	return u
}

func TestDotQ15FallbackExactlyMatchesGeneric(t *testing.T) {
	forceGeneric(t)
	rng := rand.New(rand.NewSource(101))
	for _, d := range intParityDims {
		for trial := 0; trial < 20; trial++ {
			u := randCodesQ15(rng, d)
			c8, c16 := randCodesU8(rng, d), randCodesU16(rng, d)
			if got, want := dotQ15U8Unitary(u, c8), dotQ15U8Generic(u, c8); got != want {
				t.Fatalf("d=%d trial=%d: forced-generic dotQ15U8Unitary=%d, generic=%d", d, trial, got, want)
			}
			if got, want := dotQ15U16Unitary(u, c16), dotQ15U16Generic(u, c16); got != want {
				t.Fatalf("d=%d trial=%d: forced-generic dotQ15U16Unitary=%d, generic=%d", d, trial, got, want)
			}
		}
	}
}

func TestDotQ15DispatchExactlyMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for _, d := range intParityDims {
		for trial := 0; trial < 20; trial++ {
			u := randCodesQ15(rng, d)
			c8, c16 := randCodesU8(rng, d), randCodesU16(rng, d)
			if got, want := DotQ15U8(u, c8), dotQ15U8Generic(u, c8); got != want {
				t.Fatalf("d=%d trial=%d: DotQ15U8=%d, generic=%d (integer kernels must be exact)", d, trial, got, want)
			}
			if got, want := DotQ15U16(u, c16), dotQ15U16Generic(u, c16); got != want {
				t.Fatalf("d=%d trial=%d: DotQ15U16=%d, generic=%d (integer kernels must be exact)", d, trial, got, want)
			}
		}
	}
}

// Extreme values: all-maximum query codes against all-maximum data codes
// maximize every pair sum and every accumulator, so this is the input
// that would expose an i32 overflow in the assembly's drain cadence.
func TestDotQ15ExtremeValuesExact(t *testing.T) {
	for _, d := range []int{16, 1024, 2080, 4096} {
		u := make([]uint16, d)
		c8 := make([]uint8, d)
		c16 := make([]uint16, d)
		for i := range u {
			u[i] = MaxQ15
			c8[i] = 255
			c16[i] = 65535
		}
		want8 := int64(d) * MaxQ15 * 255
		want16 := int64(d) * MaxQ15 * 65535
		if got := DotQ15U8(u, c8); got != want8 {
			t.Fatalf("d=%d: DotQ15U8 all-max = %d, want %d", d, got, want8)
		}
		if got := DotQ15U16(u, c16); got != want16 {
			t.Fatalf("d=%d: DotQ15U16 all-max = %d, want %d", d, got, want16)
		}
		// All-zero query must yield exactly zero regardless of codes.
		for i := range u {
			u[i] = 0
		}
		if got := DotQ15U8(u, c8); got != 0 {
			t.Fatalf("d=%d: DotQ15U8 zero query = %d", d, got)
		}
		if got := DotQ15U16(u, c16); got != 0 {
			t.Fatalf("d=%d: DotQ15U16 zero query = %d", d, got)
		}
	}
}

// The ×4 kernels must agree exactly with four unitary calls over the same
// rows, for strides both equal to and larger than the dimension (the
// store's code stride is 16-byte aligned, so rows carry padding bytes the
// kernel must skip).
func TestDotQ15x4MatchesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for _, d := range intParityDims {
		for _, pad := range []int{0, 3, 16} {
			stride := d + pad
			u := randCodesQ15(rng, d)
			rows8 := randCodesU8(rng, 3*stride+d)
			rows16 := randCodesU16(rng, 3*stride+d)
			var got8, got16 [4]int64
			DotQ15U8x4(u, rows8, stride, &got8)
			DotQ15U16x4(u, rows16, stride, &got16)
			for r := 0; r < 4; r++ {
				if want := DotQ15U8(u, rows8[r*stride:r*stride+d]); got8[r] != want {
					t.Fatalf("d=%d pad=%d row=%d: DotQ15U8x4=%d, unitary=%d", d, pad, r, got8[r], want)
				}
				if want := DotQ15U16(u, rows16[r*stride:r*stride+d]); got16[r] != want {
					t.Fatalf("d=%d pad=%d row=%d: DotQ15U16x4=%d, unitary=%d", d, pad, r, got16[r], want)
				}
			}
		}
	}
}

// The ×8 kernel adds two hazards beyond the ×4 contract: its assembly
// keeps i32 accumulators for the whole call (valid only to 1024 codes),
// and longer inputs must split into two ×4 calls. intParityDims crosses
// both the 1024 boundary and the ×4 drain cadence.
func TestDotQ15x8MatchesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	for _, d := range intParityDims {
		for _, pad := range []int{0, 3, 16} {
			stride := d + pad
			u := randCodesQ15(rng, d)
			rows := randCodesU8(rng, 7*stride+d)
			var got [8]int64
			DotQ15U8x8(u, rows, stride, &got)
			for r := 0; r < 8; r++ {
				if want := DotQ15U8(u, rows[r*stride:r*stride+d]); got[r] != want {
					t.Fatalf("d=%d pad=%d row=%d: DotQ15U8x8=%d, unitary=%d", d, pad, r, got[r], want)
				}
			}
		}
	}
}

// All-maximum inputs at the assembly's two boundaries: 256 codes is the
// last length allowed the i32 VPHADDD reduce (row totals reach
// 16·8·2·32767·255, within 1% of i32 max), 1024 the last allowed the
// single end-of-call drain; 1040 exercises the two-×4 split.
func TestDotQ15x8ExtremeValuesExact(t *testing.T) {
	for _, d := range []int{256, 272, 1024, 1040} {
		u := make([]uint16, d)
		rows := make([]uint8, 8*d)
		for i := range u {
			u[i] = MaxQ15
		}
		for i := range rows {
			rows[i] = 255
		}
		want := int64(d) * MaxQ15 * 255
		var got [8]int64
		DotQ15U8x8(u, rows, d, &got)
		for r := 0; r < 8; r++ {
			if got[r] != want {
				t.Fatalf("d=%d row=%d: DotQ15U8x8 all-max = %d, want %d", d, r, got[r], want)
			}
		}
	}
}

func TestDotQ15x4ForcedGenericMatchesUnitary(t *testing.T) {
	forceGeneric(t)
	rng := rand.New(rand.NewSource(109))
	d, stride := 166, 176
	u := randCodesQ15(rng, d)
	rows8 := randCodesU8(rng, 3*stride+d)
	var got [4]int64
	DotQ15U8x4(u, rows8, stride, &got)
	for r := 0; r < 4; r++ {
		if want := dotQ15U8Generic(u, rows8[r*stride:r*stride+d]); got[r] != want {
			t.Fatalf("row %d: forced-generic DotQ15U8x4=%d, generic=%d", r, got[r], want)
		}
	}
}

func TestDotQ15ValidationPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("DotQ15U8 length mismatch", func() {
		DotQ15U8(make([]uint16, 3), make([]uint8, 4))
	})
	mustPanic("DotQ15U16 length mismatch", func() {
		DotQ15U16(make([]uint16, 4), make([]uint16, 3))
	})
	mustPanic("DotQ15U8x4 short stride", func() {
		var out [4]int64
		DotQ15U8x4(make([]uint16, 16), make([]uint8, 64), 8, &out)
	})
	mustPanic("DotQ15U16x4 short rows", func() {
		var out [4]int64
		DotQ15U16x4(make([]uint16, 16), make([]uint16, 40), 16, &out)
	})
	mustPanic("DotQ15U8x8 short stride", func() {
		var out [8]int64
		DotQ15U8x8(make([]uint16, 16), make([]uint8, 128), 8, &out)
	})
	mustPanic("DotQ15U8x8 short rows", func() {
		var out [8]int64
		DotQ15U8x8(make([]uint16, 16), make([]uint8, 100), 16, &out)
	})
}

// Benchmarks at the dimensions of the kernel table in EXPERIMENTS.md:
// d=166 (musk), d=64 (reduced), d=16 (deep-reduced). The float Dot166 /
// DotU8_166 counterparts live in the neighboring benchmark files.

func benchDotQ15U8(b *testing.B, d int) {
	rng := rand.New(rand.NewSource(111))
	u, c := randCodesQ15(rng, d), randCodesU8(rng, d)
	b.SetBytes(int64(d))
	var s int64
	for i := 0; i < b.N; i++ {
		s += DotQ15U8(u, c)
	}
	benchSinkInt = s
}

func BenchmarkDotQ15U8_16(b *testing.B)  { benchDotQ15U8(b, 16) }
func BenchmarkDotQ15U8_64(b *testing.B)  { benchDotQ15U8(b, 64) }
func BenchmarkDotQ15U8_166(b *testing.B) { benchDotQ15U8(b, 166) }

func BenchmarkDotQ15U16_166(b *testing.B) {
	rng := rand.New(rand.NewSource(113))
	u, c := randCodesQ15(rng, 166), randCodesU16(rng, 166)
	b.SetBytes(2 * 166)
	var s int64
	for i := 0; i < b.N; i++ {
		s += DotQ15U16(u, c)
	}
	benchSinkInt = s
}

// Per-call = 4 rows; ns/row is the number the blocked scan sees.
func BenchmarkDotQ15U8x4_166(b *testing.B) {
	rng := rand.New(rand.NewSource(115))
	d, stride := 166, 176 // 16-byte-aligned stride, as in the store layout
	u := randCodesQ15(rng, d)
	rows := randCodesU8(rng, 3*stride+d)
	b.SetBytes(4 * int64(d))
	var out [4]int64
	var s int64
	for i := 0; i < b.N; i++ {
		DotQ15U8x4(u, rows, stride, &out)
		s += out[0] + out[3]
	}
	benchSinkInt = s
}

// Per-call = 8 rows at the store's code stride; the in-cache figure here
// understates the kernel's real advantage, which is memory-level
// parallelism on uncached sweeps.
func BenchmarkDotQ15U8x8_166(b *testing.B) {
	rng := rand.New(rand.NewSource(119))
	d, stride := 166, 176
	u := randCodesQ15(rng, d)
	rows := randCodesU8(rng, 7*stride+d)
	b.SetBytes(8 * int64(d))
	var out [8]int64
	var s int64
	for i := 0; i < b.N; i++ {
		DotQ15U8x8(u, rows, stride, &out)
		s += out[0] + out[7]
	}
	benchSinkInt = s
}

func BenchmarkDotQ15U16x4_166(b *testing.B) {
	rng := rand.New(rand.NewSource(117))
	d, stride := 166, 168
	u := randCodesQ15(rng, d)
	rows := randCodesU16(rng, 3*stride+d)
	b.SetBytes(2 * 4 * int64(d))
	var out [4]int64
	var s int64
	for i := 0; i < b.N; i++ {
		DotQ15U16x4(u, rows, stride, &out)
		s += out[0] + out[3]
	}
	benchSinkInt = s
}

var benchSinkInt int64

// The multi-row unitary dispatchers (the asm stubs' Go-side entry points)
// must match their generic twins exactly with the dispatch flag forced
// off — the parity contract asmabi requires every assembly dispatcher to
// pin with a direct test reference.
func TestDotQ15x4UnitaryForcedGenericParity(t *testing.T) {
	forceGeneric(t)
	rng := rand.New(rand.NewSource(131))
	for _, d := range intParityDims {
		stride := d + 3
		u := randCodesQ15(rng, d)
		rows8 := randCodesU8(rng, 3*stride+d)
		rows16 := randCodesU16(rng, 3*stride+d)
		var got8, want8, got16, want16 [4]int64
		dotQ15U8x4Unitary(u, rows8, stride, &got8)
		dotQ15U8x4Generic(u, rows8, stride, &want8)
		dotQ15U16x4Unitary(u, rows16, stride, &got16)
		dotQ15U16x4Generic(u, rows16, stride, &want16)
		if got8 != want8 {
			t.Fatalf("d=%d: forced-generic dotQ15U8x4Unitary=%v, generic=%v", d, got8, want8)
		}
		if got16 != want16 {
			t.Fatalf("d=%d: forced-generic dotQ15U16x4Unitary=%v, generic=%v", d, got16, want16)
		}
	}
}

func TestDotQ15x8UnitaryForcedGenericParity(t *testing.T) {
	forceGeneric(t)
	rng := rand.New(rand.NewSource(137))
	for _, d := range intParityDims {
		stride := d + 3
		u := randCodesQ15(rng, d)
		rows := randCodesU8(rng, 7*stride+d)
		var got, want [8]int64
		dotQ15U8x8Unitary(u, rows, stride, &got)
		dotQ15U8x8Generic(u, rows, stride, &want)
		if got != want {
			t.Fatalf("d=%d: forced-generic dotQ15U8x8Unitary=%v, generic=%v", d, got, want)
		}
	}
}
