package linalg

import "fmt"

// Integer quantized-code inner products. The float kernels above (DotU8 /
// DotU16) widen every code to float64 in-register, which makes the scan
// ALU-bound: the FMA path retires ~1 code per cycle while the memory
// stream is only 1–2 B/code. These kernels remove the float conversion by
// quantizing the *query* too: the per-query weights tⱼ are affinely
// mapped to 15-bit codes uⱼ ∈ [0, 32767] (Q15), and the per-point work
// becomes the exact integer dot Σ uⱼ·cⱼ evaluated with VPMADDWD — no
// int→float conversion in the hot loop, and the caller reconstructs
//
//	Σ tⱼ·cⱼ ≈ tmin·Σcⱼ + tstep·(Σ uⱼ·cⱼ)
//
// from the per-row code sum Σcⱼ (cached at store-open time next to the
// row norms). The integer dot itself is computed exactly in int64, so
// assembly and portable fallbacks agree bit for bit — parity tests demand
// exact equality, not a ulp tolerance.
//
// Why 15-bit query codes instead of the symmetric u8×u8 VPMADDUBSW form:
// VPMADDUBSW saturates its i16 pair sums (u8×u8 pairs reach 2·255·255 =
// 130050 > 32767), which would make the kernel value depend on data order
// and break exactness. With u ≤ 32767 every VPMADDWD pair sum fits i32
// exactly — 2·32767·255 for u8 codes, and < 2³¹ for offset-corrected u16
// codes — at the same instruction count, while giving the query 128×
// finer resolution than a u8 grid, so query-side rounding is negligible
// next to the data-side quantization error the rescore already absorbs.

// MaxQ15 is the largest query code the integer kernels accept. Codes
// above it would be interpreted as negative i16 lanes by VPMADDWD; the
// store's query quantizer produces codes in [0, MaxQ15] by construction.
const MaxQ15 = 32767

// DotQ15U8 returns Σ u[j]·c[j] as an exact int64 for Q15 query codes u
// (each ≤ MaxQ15) against uint8 data codes c. Dispatches to an AVX2
// kernel on capable amd64 hardware; assembly and the portable fallback
// are bit-identical because the sum is exact integer arithmetic.
// Supported up to len(u) = 2²⁰ dimensions (i64 never overflows there).
//
//drlint:hotpath inline=1
func DotQ15U8(u []uint16, c []uint8) int64 {
	if len(u) != len(c) {
		panic(fmt.Sprintf("linalg: DotQ15U8 length mismatch %d vs %d", len(u), len(c)))
	}
	return dotQ15U8Unitary(u, c)
}

// DotQ15U16 is DotQ15U8 for uint16 data codes (int16-precision scalar
// quantization). Supported up to len(u) = 65536 dimensions (the in-kernel
// i32 code-sum accumulator bounds it).
//
//drlint:hotpath inline=1
func DotQ15U16(u []uint16, c []uint16) int64 {
	if len(u) != len(c) {
		panic(fmt.Sprintf("linalg: DotQ15U16 length mismatch %d vs %d", len(u), len(c)))
	}
	return dotQ15U16Unitary(u, c)
}

// DotQ15U8x4 computes four row dots at once: out[r] = Σⱼ u[j]·rows[r·stride+j]
// for r ∈ {0,1,2,3}. The assembly body loads each 16-code query chunk once
// and applies it to all four rows, amortizing query-side loads across the
// block-major code layout of the store scan. out is fully overwritten.
//
//drlint:hotpath inline=1
func DotQ15U8x4(u []uint16, rows []uint8, stride int, out *[4]int64) {
	if stride < len(u) {
		panic(fmt.Sprintf("linalg: DotQ15U8x4 stride %d < dim %d", stride, len(u)))
	}
	if len(rows) < 3*stride+len(u) {
		panic(fmt.Sprintf("linalg: DotQ15U8x4 rows has %d codes, need %d", len(rows), 3*stride+len(u)))
	}
	dotQ15U8x4Unitary(u, rows, stride, out)
}

// DotQ15U8x8 is DotQ15U8x4 over eight rows: out[r] = Σⱼ u[j]·rows[r·stride+j]
// for r ∈ {0..7}. Eight independent row streams keep roughly twice as
// many cache misses in flight as the ×4 form, which is what a DRAM-bound
// streaming scan needs to approach the machine's bandwidth — use it for
// long sequential sweeps, the ×4 form for short or irregular ones. out
// is fully overwritten; results are bit-identical to eight unitary dots.
//
//drlint:hotpath inline=1
func DotQ15U8x8(u []uint16, rows []uint8, stride int, out *[8]int64) {
	if stride < len(u) {
		panic(fmt.Sprintf("linalg: DotQ15U8x8 stride %d < dim %d", stride, len(u)))
	}
	if len(rows) < 7*stride+len(u) {
		panic(fmt.Sprintf("linalg: DotQ15U8x8 rows has %d codes, need %d", len(rows), 7*stride+len(u)))
	}
	dotQ15U8x8Unitary(u, rows, stride, out)
}

// DotQ15U16x4 is DotQ15U8x4 for uint16 data codes. stride is in codes
// (uint16 elements), not bytes.
//
//drlint:hotpath inline=1
func DotQ15U16x4(u []uint16, rows []uint16, stride int, out *[4]int64) {
	if stride < len(u) {
		panic(fmt.Sprintf("linalg: DotQ15U16x4 stride %d < dim %d", stride, len(u)))
	}
	if len(rows) < 3*stride+len(u) {
		panic(fmt.Sprintf("linalg: DotQ15U16x4 rows has %d codes, need %d", len(rows), 3*stride+len(u)))
	}
	dotQ15U16x4Unitary(u, rows, stride, out)
}

// dotQ15U8Generic is the portable kernel. Four independent accumulators
// break the add-latency chain; integer addition is associative, so any
// split is bit-identical to the assembly path. Both slices advance in
// 4-wide steps with the lengths in the loop condition — the shape the
// bounds-check prover eliminates completely, where the indexed
// `u[i+3]` form leaves an IsInBounds on every line of the loop.
func dotQ15U8Generic(u []uint16, c []uint8) int64 {
	c = c[:len(u)]
	var s0, s1, s2, s3 int64
	for len(u) >= 4 && len(c) >= 4 {
		s0 += int64(u[0]) * int64(c[0])
		s1 += int64(u[1]) * int64(c[1])
		s2 += int64(u[2]) * int64(c[2])
		s3 += int64(u[3]) * int64(c[3])
		u = u[4:]
		c = c[4:]
	}
	s := (s0 + s2) + (s1 + s3)
	c = c[:len(u)]
	for i, uv := range u {
		s += int64(uv) * int64(c[i])
	}
	return s
}

func dotQ15U16Generic(u []uint16, c []uint16) int64 {
	c = c[:len(u)]
	var s0, s1, s2, s3 int64
	for len(u) >= 4 && len(c) >= 4 {
		s0 += int64(u[0]) * int64(c[0])
		s1 += int64(u[1]) * int64(c[1])
		s2 += int64(u[2]) * int64(c[2])
		s3 += int64(u[3]) * int64(c[3])
		u = u[4:]
		c = c[4:]
	}
	s := (s0 + s2) + (s1 + s3)
	c = c[:len(u)]
	for i, uv := range u {
		s += int64(uv) * int64(c[i])
	}
	return s
}

func dotQ15U8x4Generic(u []uint16, rows []uint8, stride int, out *[4]int64) {
	for r := 0; r < 4; r++ {
		//drlint:ignore bcegate row geometry (r*stride) is the caller's layout contract; one reslice check per len(u)-element row
		out[r] = dotQ15U8Generic(u, rows[r*stride:r*stride+len(u)])
	}
}

func dotQ15U16x4Generic(u []uint16, rows []uint16, stride int, out *[4]int64) {
	for r := 0; r < 4; r++ {
		//drlint:ignore bcegate row geometry (r*stride) is the caller's layout contract; one reslice check per len(u)-element row
		out[r] = dotQ15U16Generic(u, rows[r*stride:r*stride+len(u)])
	}
}

func dotQ15U8x8Generic(u []uint16, rows []uint8, stride int, out *[8]int64) {
	for r := 0; r < 8; r++ {
		//drlint:ignore bcegate row geometry (r*stride) is the caller's layout contract; one reslice check per len(u)-element row
		out[r] = dotQ15U8Generic(u, rows[r*stride:r*stride+len(u)])
	}
}
