//go:build amd64

package linalg

// Dispatch for the AVX2/FMA assembly kernels in kernel_amd64.s. Detection
// mirrors internal/cpu: the instruction sets must be present (FMA, AVX,
// AVX2) and the OS must have enabled XMM+YMM state saving (OSXSAVE +
// XGETBV), otherwise the generic Go kernels run.

//go:noescape
func dotAVX2(a, b []float64) float64

//go:noescape
func axpyAVX2(alpha float64, x, y []float64)

func cpuidx(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// hasAVX2FMA gates the assembly kernels. It is a var so tests can force the
// generic path and assert both implementations agree.
var hasAVX2FMA = detectAVX2FMA()

func detectAVX2FMA() bool {
	const (
		cpuid1FMA     = 1 << 12 // CPUID.1:ECX.FMA
		cpuid1OSXSAVE = 1 << 27 // CPUID.1:ECX.OSXSAVE
		cpuid1AVX     = 1 << 28 // CPUID.1:ECX.AVX
		cpuid7AVX2    = 1 << 5  // CPUID.7.0:EBX.AVX2
	)
	maxID, _, _, _ := cpuidx(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidx(1, 0)
	if ecx1&cpuid1FMA == 0 || ecx1&cpuid1OSXSAVE == 0 || ecx1&cpuid1AVX == 0 {
		return false
	}
	if eax, _ := xgetbv0(); eax&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuidx(7, 0)
	return ebx7&cpuid7AVX2 != 0
}

// asmMinLen is the vector length below which the call + VZEROUPPER overhead
// of the assembly kernels beats their SIMD win.
const asmMinLen = 16

func dotUnitary(a, b []float64) float64 {
	if hasAVX2FMA && len(a) >= asmMinLen {
		return dotAVX2(a, b)
	}
	return dotGeneric(a, b)
}

func axpyUnitary(alpha float64, x, y []float64) {
	if hasAVX2FMA && len(x) >= asmMinLen {
		axpyAVX2(alpha, x, y)
		return
	}
	axpyGeneric(alpha, x, y)
}
