package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v, guarding against overflow and
// underflow by scaling.
func Norm2(v []float64) float64 {
	scale := 0.0
	ssq := 1.0
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Norm1 returns the sum of absolute values of v.
func Norm1(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the maximum absolute value of v.
func NormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	if alpha == 0 {
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// ScaleVec multiplies v by s in place.
func ScaleVec(s float64, v []float64) {
	for i := range v {
		v[i] *= s
	}
}

// AddVec returns a + b as a new slice.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: AddVec length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// SubVec returns a - b as a new slice.
func SubVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: SubVec length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Normalize scales v in place to unit Euclidean norm and returns the original
// norm. A zero vector is left unchanged and 0 is returned.
func Normalize(v []float64) float64 {
	n := Norm2(v)
	if n == 0 {
		return 0
	}
	ScaleVec(1/n, v)
	return n
}

// Unit returns a fresh unit-norm copy of v. Panics on the zero vector.
func Unit(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	if Normalize(out) == 0 {
		panic("linalg: Unit of zero vector")
	}
	return out
}

// VecEqual reports whether a and b agree elementwise to within tol.
func VecEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// Outer returns the outer product a bᵀ as a len(a) x len(b) matrix.
func Outer(a, b []float64) *Dense {
	m := NewDense(len(a), len(b))
	for i, av := range a {
		if av == 0 {
			continue
		}
		row := m.RawRow(i)
		for j, bv := range b {
			row[j] = av * bv
		}
	}
	return m
}

// Dist2 returns the Euclidean distance between a and b.
func Dist2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dist2 length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
