package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It dispatches to an AVX2/FMA
// assembly kernel on capable amd64 hardware and to dotGeneric elsewhere;
// both are deterministic, but the fused path rounds differently in the last
// ulp or two.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	return dotUnitary(a, b)
}

// dotGeneric is the portable dot kernel. Four independent accumulators
// break the loop-carried dependence of the naive `s += a[i]*b[i]` loop,
// whose add-latency chain caps it at a fraction of the FP ports' throughput.
// Both slices advance in 4-wide steps with the lengths in the loop
// condition — the shape the bounds-check prover eliminates completely
// (indexed `a[i+3]` forms leave IsInBounds in the loop); the accumulation
// order is unchanged, so results stay bit-identical.
func dotGeneric(a, b []float64) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	for len(a) >= 4 && len(b) >= 4 {
		s0 += a[0] * b[0]
		s1 += a[1] * b[1]
		s2 += a[2] * b[2]
		s3 += a[3] * b[3]
		a, b = a[4:], b[4:]
	}
	s := (s0 + s2) + (s1 + s3)
	b = b[:len(a)]
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v, guarding against overflow and
// underflow by scaling.
func Norm2(v []float64) float64 {
	scale := 0.0
	ssq := 1.0
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Norm1 returns the sum of absolute values of v.
func Norm1(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the maximum absolute value of v.
func NormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Axpy computes y += alpha*x in place, through the same kernel dispatch as
// Dot.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	if alpha == 0 {
		return
	}
	axpyUnitary(alpha, x, y)
}

// axpyGeneric is the portable axpy kernel (unrolled; elements are
// independent, so this is store-throughput bound rather than latency bound).
func axpyGeneric(alpha float64, x, y []float64) {
	n := len(x)
	y = y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// ScaleVec multiplies v by s in place.
func ScaleVec(s float64, v []float64) {
	for i := range v {
		v[i] *= s
	}
}

// AddVec returns a + b as a new slice.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: AddVec length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// SubVec returns a - b as a new slice.
func SubVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: SubVec length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Normalize scales v in place to unit Euclidean norm and returns the original
// norm. A zero vector is left unchanged and 0 is returned.
func Normalize(v []float64) float64 {
	n := Norm2(v)
	if n == 0 {
		return 0
	}
	ScaleVec(1/n, v)
	return n
}

// Unit returns a fresh unit-norm copy of v. Panics on the zero vector.
func Unit(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	if Normalize(out) == 0 {
		panic("linalg: Unit of zero vector")
	}
	return out
}

// VecEqual reports whether a and b agree elementwise to within tol.
func VecEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// Outer returns the outer product a bᵀ as a len(a) x len(b) matrix.
func Outer(a, b []float64) *Dense {
	m := NewDense(len(a), len(b))
	for i, av := range a {
		if av == 0 {
			continue
		}
		row := m.RawRow(i)
		for j, bv := range b {
			row[j] = av * bv
		}
	}
	return m
}

// Dist2 returns the Euclidean distance between a and b.
func Dist2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dist2 length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
