package linalg

import (
	"fmt"
	"math"
	"sort"
)

// SVDDecomposition holds a thin singular value decomposition A = U Σ Vᵀ of an
// m x n matrix with m >= n. U is m x n with orthonormal columns, V is n x n
// orthogonal, and Values holds the singular values in descending order.
type SVDDecomposition struct {
	U      *Dense
	V      *Dense
	Values []float64
}

// SVD computes the thin singular value decomposition of a using the
// one-sided Jacobi (Hestenes) method, which is simple, backward stable and
// accurate for the moderate sizes this library targets. If a has more
// columns than rows, the decomposition is computed on the transpose and the
// factors are swapped accordingly, so the returned U/V always match the
// original orientation (U: rows(a) x r, V: cols(a) x r with r = min dims).
func SVD(a *Dense) (*SVDDecomposition, error) {
	m, n := a.Dims()
	if m < n {
		sd, err := SVD(a.T())
		if err != nil {
			return nil, err
		}
		return &SVDDecomposition{U: sd.V, V: sd.U, Values: sd.Values}, nil
	}
	u := a.Clone()
	v := Identity(n)
	const maxSweeps = 60
	// Convergence threshold on the cosine of the angle between columns.
	eps := 1e-15

	converged := false
	for sweep := 0; sweep < maxSweeps && !converged; sweep++ {
		converged = true
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Compute the 2x2 Gram entries for columns p and q.
				alpha, beta, gamma := 0.0, 0.0, 0.0
				for i := 0; i < m; i++ {
					up := u.At(i, p)
					uq := u.At(i, q)
					alpha += up * up
					beta += uq * uq
					gamma += up * uq
				}
				if gamma == 0 {
					continue
				}
				if math.Abs(gamma) > eps*math.Sqrt(alpha*beta) {
					converged = false
				} else {
					continue
				}
				// Jacobi rotation that zeroes the off-diagonal Gram entry.
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					up := u.At(i, p)
					uq := u.At(i, q)
					u.Set(i, p, c*up-s*uq)
					u.Set(i, q, s*up+c*uq)
				}
				for i := 0; i < n; i++ {
					vp := v.At(i, p)
					vq := v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
	}
	if !converged {
		return nil, ErrNoConvergence
	}

	// Column norms of the rotated matrix are the singular values.
	vals := make([]float64, n)
	for j := 0; j < n; j++ {
		vals[j] = Norm2(u.Col(j))
	}
	// Sort descending, permuting U and V columns together.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	uo := NewDense(m, n)
	vo := NewDense(n, n)
	sv := make([]float64, n)
	for k, j := range idx {
		sv[k] = vals[j]
		col := u.Col(j)
		if sv[k] > 0 {
			ScaleVec(1/sv[k], col)
		}
		uo.SetCol(k, col)
		vo.SetCol(k, v.Col(j))
	}
	return &SVDDecomposition{U: uo, V: vo, Values: sv}, nil
}

// Rank returns the numerical rank of the decomposition at the given relative
// tolerance (singular values below tol * max singular value count as zero).
func (s *SVDDecomposition) Rank(tol float64) int {
	if len(s.Values) == 0 {
		return 0
	}
	cut := tol * s.Values[0]
	r := 0
	for _, v := range s.Values {
		if v > cut {
			r++
		}
	}
	return r
}

// Reconstruct returns U Σ Vᵀ.
func (s *SVDDecomposition) Reconstruct() *Dense {
	return s.U.Mul(Diag(s.Values)).Mul(s.V.T())
}

// Condition returns the 2-norm condition number σ_max/σ_min, or +Inf if the
// smallest singular value is zero.
func (s *SVDDecomposition) Condition() float64 {
	n := len(s.Values)
	if n == 0 {
		return math.Inf(1)
	}
	min := s.Values[n-1]
	if min == 0 {
		return math.Inf(1)
	}
	return s.Values[0] / min
}

// TruncatedReconstruct returns the best rank-k approximation U_k Σ_k V_kᵀ.
func (s *SVDDecomposition) TruncatedReconstruct(k int) *Dense {
	n := len(s.Values)
	if k <= 0 || k > n {
		panic(fmt.Sprintf("linalg: TruncatedReconstruct rank %d out of range (1..%d)", k, n))
	}
	cols := make([]int, k)
	for i := range cols {
		cols[i] = i
	}
	uk := s.U.SliceCols(cols)
	vk := s.V.SliceCols(cols)
	return uk.Mul(Diag(s.Values[:k])).Mul(vk.T())
}
