// AVX2/FMA kernels for the hot inner products of the batch-distance engine.
// Only unit-stride, read-only (dot) and read-modify-write (axpy) forms are
// provided; callers guarantee len(a) == len(b). The kernels are dispatched
// behind the hasAVX2FMA CPUID gate in kernel_amd64.go and are bit-for-bit
// deterministic on a given machine (FMA contraction makes results differ
// from the generic kernels in the last ulp or two).

#include "textflag.h"

// func dotAVX2(a, b []float64) float64
//
// Four 256-bit accumulators hide the 4-5 cycle FMA latency; 16 elements per
// iteration. The tail runs scalar FMAs into the low lane of the reduced sum.
TEXT ·dotAVX2(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ a_len+8(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	MOVQ CX, BX
	SHRQ $4, BX
	JZ   reduce

loop16:
	VMOVUPD (SI), Y4
	VMOVUPD 32(SI), Y5
	VMOVUPD 64(SI), Y6
	VMOVUPD 96(SI), Y7
	VFMADD231PD (DI), Y4, Y0
	VFMADD231PD 32(DI), Y5, Y1
	VFMADD231PD 64(DI), Y6, Y2
	VFMADD231PD 96(DI), Y7, Y3
	ADDQ $128, SI
	ADDQ $128, DI
	DECQ BX
	JNZ  loop16

reduce:
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	ANDQ $15, CX
	JZ   done

tail:
	VMOVSD (SI), X1
	VFMADD231SD (DI), X1, X0
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JNZ  tail

done:
	VZEROUPPER
	MOVSD X0, ret+48(FP)
	RET

// func axpyAVX2(alpha float64, x, y []float64)
//
// y += alpha * x, 8 elements per iteration.
TEXT ·axpyAVX2(SB), NOSPLIT, $0-56
	MOVQ x_base+8(FP), SI
	MOVQ y_base+32(FP), DI
	MOVQ x_len+16(FP), CX
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ CX, BX
	SHRQ $3, BX
	JZ   axpytailsetup

axpyloop8:
	VMOVUPD (DI), Y1
	VMOVUPD 32(DI), Y2
	VFMADD231PD (SI), Y0, Y1
	VFMADD231PD 32(SI), Y0, Y2
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ BX
	JNZ  axpyloop8

axpytailsetup:
	ANDQ $7, CX
	JZ   axpydone

axpytail:
	VMOVSD (DI), X1
	VFMADD231SD (SI), X0, X1
	VMOVSD X1, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JNZ  axpytail

axpydone:
	VZEROUPPER
	RET

// func cpuidx(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidx(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
