package linalg

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func checkEigen(t *testing.T, a *Dense, ed *EigenDecomposition, tol float64) {
	t.Helper()
	n := a.Rows()
	if len(ed.Values) != n {
		t.Fatalf("got %d eigenvalues, want %d", len(ed.Values), n)
	}
	// Sorted ascending.
	if !sort.Float64sAreSorted(ed.Values) {
		t.Fatalf("eigenvalues not ascending: %v", ed.Values)
	}
	// Residual ‖A·V − V·Λ‖.
	if r := ed.Residual(a); r > tol {
		t.Fatalf("eigen residual %g exceeds %g", r, tol)
	}
	// Orthonormality VᵀV = I.
	vtv := ed.Vectors.T().Mul(ed.Vectors)
	if !vtv.Equal(Identity(n), tol) {
		t.Fatalf("eigenvectors not orthonormal, VᵀV deviates by %g", vtv.SubMat(Identity(n)).MaxAbs())
	}
	// Trace == sum of eigenvalues.
	sum := 0.0
	for _, v := range ed.Values {
		sum += v
	}
	if math.Abs(sum-a.Trace()) > tol*float64(n) {
		t.Fatalf("eigenvalue sum %v != trace %v", sum, a.Trace())
	}
}

func TestEigSymDiagonal(t *testing.T) {
	a := Diag([]float64{3, 1, 2})
	ed, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(ed.Values, []float64{1, 2, 3}, 1e-12) {
		t.Fatalf("eigenvalues of diag(3,1,2) = %v, want [1 2 3]", ed.Values)
	}
	checkEigen(t, a, ed, 1e-12)
}

func TestEigSym2x2Known(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	ed, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(ed.Values, []float64{1, 3}, 1e-12) {
		t.Fatalf("eigenvalues = %v, want [1 3]", ed.Values)
	}
	checkEigen(t, a, ed, 1e-12)
}

func TestEigSymIdentity(t *testing.T) {
	ed, err := EigSym(Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ed.Values {
		if math.Abs(v-1) > 1e-14 {
			t.Fatalf("identity eigenvalue %v != 1", v)
		}
	}
}

func TestEigSymRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{2, 3, 5, 10, 25, 60} {
		a := randSym(rng, n)
		ed, err := EigSym(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkEigen(t, a, ed, 1e-9)
	}
}

func TestEigSymJacobiVsQL(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{3, 8, 20, 40} {
		a := randSym(rng, n)
		j, err := EigSymJacobi(a)
		if err != nil {
			t.Fatalf("jacobi n=%d: %v", n, err)
		}
		q, err := EigSymQL(a)
		if err != nil {
			t.Fatalf("ql n=%d: %v", n, err)
		}
		if !VecEqual(j.Values, q.Values, 1e-8) {
			t.Fatalf("n=%d eigenvalues disagree:\njacobi %v\nql     %v", n, j.Values, q.Values)
		}
		checkEigen(t, a, j, 1e-9)
		checkEigen(t, a, q, 1e-9)
	}
}

func TestEigSymPSDNonNegative(t *testing.T) {
	// Covariance matrices are PSD; eigenvalues must be >= 0 (up to noise).
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 5; trial++ {
		b := randDense(rng, 12, 8)
		a := b.T().Mul(b) // Gram matrix, PSD.
		ed, err := EigSym(a)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range ed.Values {
			if v < -1e-9 {
				t.Fatalf("PSD matrix has negative eigenvalue %v", v)
			}
		}
		checkEigen(t, a, ed, 1e-8)
	}
}

func TestEigSymRepeatedEigenvalues(t *testing.T) {
	// A matrix with a degenerate eigenspace: still must produce an
	// orthonormal basis.
	a := FromRows([][]float64{
		{2, 0, 0},
		{0, 2, 0},
		{0, 0, 5},
	})
	ed, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(ed.Values, []float64{2, 2, 5}, 1e-12) {
		t.Fatalf("eigenvalues = %v", ed.Values)
	}
	checkEigen(t, a, ed, 1e-12)
}

func TestEigSymRejectsNonSquare(t *testing.T) {
	if _, err := EigSym(NewDense(2, 3)); err == nil {
		t.Fatalf("expected error for non-square input")
	}
}

func TestEigSymRejectsAsymmetric(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := EigSym(a); err == nil {
		t.Fatalf("expected error for asymmetric input")
	}
}

func TestEigenReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randSym(rng, 7)
	ed, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !ed.Reconstruct().Equal(a, 1e-9) {
		t.Fatalf("V Λ Vᵀ does not reconstruct A")
	}
}

func TestEigenDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randSym(rng, 6)
	ed, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	vals, vecs := ed.Descending()
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1] {
			t.Fatalf("Descending not sorted: %v", vals)
		}
	}
	// Each descending pair must still satisfy A v = λ v.
	for i := 0; i < len(vals); i++ {
		v := vecs.Col(i)
		av := a.MulVec(v)
		for k := range av {
			if math.Abs(av[k]-vals[i]*v[k]) > 1e-9 {
				t.Fatalf("descending pair %d violates A v = λ v", i)
			}
		}
	}
}

func TestEigenPropertyQuick(t *testing.T) {
	// Property: for random symmetric matrices of random small size, the
	// decomposition reconstructs the input and V is orthogonal.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		a := randSym(rng, n)
		ed, err := EigSym(a)
		if err != nil {
			return false
		}
		return ed.Reconstruct().Equal(a, 1e-8) &&
			ed.Vectors.T().Mul(ed.Vectors).Equal(Identity(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEigSymLargeCovarianceShape(t *testing.T) {
	// A 150x150 covariance-like matrix (similar in size to the paper's Musk
	// data set) must decompose quickly and accurately.
	rng := rand.New(rand.NewSource(15))
	b := randDense(rng, 200, 150)
	a := b.T().Mul(b).Scale(1.0 / 200.0)
	ed, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	checkEigen(t, a, ed, 1e-7)
}

func TestEigSymNearScalarMatrix(t *testing.T) {
	// Nearly-scalar matrices exercise the small-rotation paths.
	a := Identity(5)
	a.Set(0, 1, 1e-13)
	a.Set(1, 0, 1e-13)
	ed, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	checkEigen(t, a, ed, 1e-10)
}
