package linalg

import (
	"errors"
	"fmt"
	"math"
)

// LUDecomposition holds an LU factorization with partial pivoting,
// P A = L U, stored compactly (L below the diagonal with implicit unit
// diagonal, U on and above it).
type LUDecomposition struct {
	lu    *Dense
	pivot []int
	sign  float64
}

// ErrSingular is returned when a factorization or solve encounters an
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: singular matrix")

// LU computes the LU factorization of the square matrix a with partial
// pivoting. The input is not modified.
func LU(a *Dense) (*LUDecomposition, error) {
	n, c := a.Dims()
	if n != c {
		return nil, fmt.Errorf("linalg: LU requires a square matrix, got %dx%d", n, c)
	}
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1.0
	for i := range pivot {
		pivot[i] = i
	}
	for k := 0; k < n; k++ {
		// Find pivot row.
		p := k
		max := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				max = v
				p = i
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.RawRow(k), lu.RawRow(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			pivot[k], pivot[p] = pivot[p], pivot[k]
			sign = -sign
		}
		pv := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pv
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.RawRow(i), lu.RawRow(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LUDecomposition{lu: lu, pivot: pivot, sign: sign}, nil
}

// Solve solves A x = b for the factored matrix.
func (f *LUDecomposition) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("linalg: LU Solve rhs length %d, want %d", len(b), n)
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		row := f.lu.RawRow(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.RawRow(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		d := row[i]
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LUDecomposition) Det() float64 {
	d := f.sign
	n := f.lu.Rows()
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Inverse returns the inverse of the factored matrix.
func (f *LUDecomposition) Inverse() (*Dense, error) {
	n := f.lu.Rows()
	inv := NewDense(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		inv.SetCol(j, col)
	}
	return inv, nil
}

// Solve solves the square linear system a x = b.
func Solve(a *Dense, b []float64) ([]float64, error) {
	f, err := LU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns the inverse of the square matrix a.
func Inverse(a *Dense) (*Dense, error) {
	f, err := LU(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse()
}

// Det returns the determinant of the square matrix a (0 if singular).
func Det(a *Dense) float64 {
	f, err := LU(a)
	if err != nil {
		return 0
	}
	return f.Det()
}
