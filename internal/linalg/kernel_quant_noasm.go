//go:build !amd64

package linalg

func dotU8Unitary(t []float64, c []uint8) float64 { return dotU8Generic(t, c) }

func dotU16Unitary(t []float64, c []uint16) float64 { return dotU16Generic(t, c) }
