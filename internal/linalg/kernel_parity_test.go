package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// These tests pin the contract between the two kernel implementations
// (kernel_amd64.s dispatched by kernel_amd64.go, and the portable
// kernel_noasm.go path):
//
//   - With hasAVX2FMA forced off, dotUnitary/axpyUnitary must be
//     bit-identical to dotGeneric/axpyGeneric on every platform. This is
//     the fallback CI's amd64 runner never takes naturally; forcing the
//     flag executes it everywhere.
//   - With the platform's real dispatch, results may differ from the
//     generic kernels only by FMA rounding — a few ulps relative — never
//     structurally.
//
// Build-tag matrix: kernel_amd64.{go,s} build only on amd64 (dispatch can
// still select the generic path at runtime via CPUID/XGETBV);
// kernel_noasm.go builds everywhere else and pins hasAVX2FMA=false. The
// lengths cover the asmMinLen boundary: below it (1, 7), exactly at a
// vector-width multiple (16), and a long unaligned tail case (166).
var parityDims = []int{1, 7, 16, 166}

func forceGeneric(t *testing.T) {
	t.Helper()
	saved := hasAVX2FMA
	hasAVX2FMA = false
	t.Cleanup(func() { hasAVX2FMA = saved })
}

func randVec(rng *rand.Rand, d int) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestDotFallbackExactlyMatchesGeneric(t *testing.T) {
	forceGeneric(t)
	rng := rand.New(rand.NewSource(71))
	for _, d := range parityDims {
		for trial := 0; trial < 50; trial++ {
			a, b := randVec(rng, d), randVec(rng, d)
			got, want := dotUnitary(a, b), dotGeneric(a, b)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("d=%d trial=%d: forced-generic dotUnitary=%v, dotGeneric=%v (must be bit-identical)", d, trial, got, want)
			}
		}
	}
}

func TestAxpyFallbackExactlyMatchesGeneric(t *testing.T) {
	forceGeneric(t)
	rng := rand.New(rand.NewSource(73))
	for _, d := range parityDims {
		for trial := 0; trial < 50; trial++ {
			x := randVec(rng, d)
			y := randVec(rng, d)
			alpha := rng.NormFloat64()
			y1 := append([]float64(nil), y...)
			y2 := append([]float64(nil), y...)
			axpyUnitary(alpha, x, y1)
			axpyGeneric(alpha, x, y2)
			for i := range y1 {
				if math.Float64bits(y1[i]) != math.Float64bits(y2[i]) {
					t.Fatalf("d=%d trial=%d i=%d: forced-generic axpyUnitary=%v, axpyGeneric=%v (must be bit-identical)", d, trial, i, y1[i], y2[i])
				}
			}
		}
	}
}

// kernelRelTol bounds the divergence the dispatched (possibly FMA) kernel
// may show against the generic one, relative to the magnitude of the
// operands (not of the result — cancellation can make the result
// arbitrarily smaller than the rounding noise each implementation
// legitimately carries). One FMA skips one rounding per multiply-add, so
// the drift is a modest multiple of machine epsilon times the operand
// scale; 1e-14 is ~45 eps, loose enough for the 166-term accumulations and
// tight enough to catch any structural disagreement.
const kernelRelTol = 1e-14

func TestDotDispatchedWithinTolOfGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for _, d := range parityDims {
		for trial := 0; trial < 50; trial++ {
			a, b := randVec(rng, d), randVec(rng, d)
			scale := 0.0
			for i := range a {
				scale += math.Abs(a[i] * b[i])
			}
			got, want := dotUnitary(a, b), dotGeneric(a, b)
			if err := math.Abs(got - want); err > kernelRelTol*(scale+1) {
				t.Fatalf("d=%d trial=%d: dispatched dot %v vs generic %v (err %g, operand scale %g)", d, trial, got, want, err, scale)
			}
		}
	}
}

func TestAxpyDispatchedWithinTolOfGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, d := range parityDims {
		for trial := 0; trial < 50; trial++ {
			x := randVec(rng, d)
			y := randVec(rng, d)
			alpha := rng.NormFloat64()
			y1 := append([]float64(nil), y...)
			y2 := append([]float64(nil), y...)
			axpyUnitary(alpha, x, y1)
			axpyGeneric(alpha, x, y2)
			for i := range y1 {
				scale := math.Abs(y[i]) + math.Abs(alpha*x[i])
				if err := math.Abs(y1[i] - y2[i]); err > kernelRelTol*(scale+1) {
					t.Fatalf("d=%d trial=%d i=%d: dispatched axpy %v vs generic %v (err %g, operand scale %g)", d, trial, i, y1[i], y2[i], err, scale)
				}
			}
		}
	}
}

// TestKernelEdgeValues checks both paths agree bitwise on edge values the
// norm-cache identity actually feeds them: zeros, exact cancellations,
// subnormals, and huge magnitudes. All cases are shorter than asmMinLen, so
// the dispatcher must route them to the generic kernel on every platform —
// equality here proves the short-vector path never enters the asm.
func TestKernelEdgeValues(t *testing.T) {
	cases := [][2][]float64{
		{{0, 0, 0, 0}, {1, 2, 3, 4}},
		{{1, -1, 1, -1}, {1, 1, 1, 1}},
		{{math.SmallestNonzeroFloat64, math.SmallestNonzeroFloat64}, {1, 1}},
		{{1e308, -1e308}, {1, 1}},
	}
	for i, c := range cases {
		got, want := dotUnitary(c[0], c[1]), dotGeneric(c[0], c[1])
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("case %d: short-vector dot %v vs generic %v must be bit-identical", i, got, want)
		}
	}
}
