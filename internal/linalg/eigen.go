package linalg

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// EigenDecomposition holds the spectral decomposition of a real symmetric
// matrix A = V Λ Vᵀ. Eigenvalues are sorted in ascending order and the i-th
// column of Vectors is the unit eigenvector for Values[i].
type EigenDecomposition struct {
	// Values holds the eigenvalues in ascending order.
	Values []float64
	// Vectors holds the corresponding orthonormal eigenvectors as columns.
	Vectors *Dense
}

// ErrNoConvergence is returned when an iterative eigensolver fails to
// converge within its iteration budget.
var ErrNoConvergence = errors.New("linalg: eigensolver failed to converge")

// EigSym computes the spectral decomposition of the symmetric matrix a.
// It first attempts the fast Householder-tridiagonalization + implicit-shift
// QL path and falls back to the (slower but extremely robust) cyclic Jacobi
// method if QL fails to converge. The input is not modified.
func EigSym(a *Dense) (*EigenDecomposition, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("linalg: EigSym requires a square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	if !a.IsSymmetric(1e-10 * (1 + a.MaxAbs())) {
		return nil, errors.New("linalg: EigSym requires a symmetric matrix")
	}
	ed, err := eigSymTridiag(a)
	if err == nil {
		return ed, nil
	}
	return eigSymJacobi(a)
}

// EigSymJacobi computes the spectral decomposition using the cyclic Jacobi
// method only. It is exposed for cross-validation against the QL path.
func EigSymJacobi(a *Dense) (*EigenDecomposition, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("linalg: EigSymJacobi requires a square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	return eigSymJacobi(a)
}

// EigSymQL computes the spectral decomposition using Householder
// tridiagonalization followed by the implicit-shift QL algorithm only.
func EigSymQL(a *Dense) (*EigenDecomposition, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("linalg: EigSymQL requires a square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	return eigSymTridiag(a)
}

// eigSymJacobi implements the cyclic Jacobi eigenvalue algorithm with the
// standard Rutishauser rotation formulas.
func eigSymJacobi(in *Dense) (*EigenDecomposition, error) {
	n := in.Rows()
	a := in.Clone()
	v := Identity(n)
	const maxSweeps = 100

	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				off += a.At(p, q) * a.At(p, q)
			}
		}
		if off == 0 {
			break
		}
		// Convergence when the off-diagonal mass is negligible relative to
		// the diagonal mass.
		diag := 0.0
		for i := 0; i < n; i++ {
			diag += a.At(i, i) * a.At(i, i)
		}
		if off <= 1e-30*(diag+off) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if apq == 0 {
					continue
				}
				app := a.At(p, p)
				aqq := a.At(q, q)
				// Skip rotations that cannot change anything at this
				// precision.
				if math.Abs(apq) <= 1e-300 || math.Abs(apq) < 1e-18*(math.Abs(app)+math.Abs(aqq)) {
					a.Set(p, q, 0)
					a.Set(q, p, 0)
					continue
				}
				theta := (aqq - app) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e12 {
					t = 1 / (2 * theta)
				} else {
					t = math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				tau := s / (1 + c)

				a.Set(p, p, app-t*apq)
				a.Set(q, q, aqq+t*apq)
				a.Set(p, q, 0)
				a.Set(q, p, 0)
				for i := 0; i < n; i++ {
					switch {
					case i != p && i != q:
						aip := a.At(i, p)
						aiq := a.At(i, q)
						a.Set(i, p, aip-s*(aiq+tau*aip))
						a.Set(i, q, aiq+s*(aip-tau*aiq))
						a.Set(p, i, a.At(i, p))
						a.Set(q, i, a.At(i, q))
					}
					vip := v.At(i, p)
					viq := v.At(i, q)
					v.Set(i, p, vip-s*(viq+tau*vip))
					v.Set(i, q, viq+s*(vip-tau*viq))
				}
			}
		}
		if sweep == maxSweeps-1 {
			return nil, ErrNoConvergence
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = a.At(i, i)
	}
	return sortEigen(vals, v), nil
}

// eigSymTridiag reduces a to tridiagonal form with Householder reflections
// (tred2) and then diagonalizes with the implicit-shift QL algorithm (tqli).
func eigSymTridiag(in *Dense) (*EigenDecomposition, error) {
	n := in.Rows()
	z := in.Clone() // will accumulate the transformation
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(z, d, e)
	if err := tqli(d, e, z); err != nil {
		return nil, err
	}
	return sortEigen(d, z), nil
}

// tred2 performs Householder reduction of the symmetric matrix z to
// tridiagonal form. On return d holds the diagonal, e the subdiagonal
// (e[0] = 0), and z the accumulated orthogonal transformation.
// Adapted to 0-based indexing from the classic EISPACK/Numerical Recipes
// routine.
func tred2(z *Dense, d, e []float64) {
	n := z.Rows()
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		h := 0.0
		scale := 0.0
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(z.At(i, k))
			}
			if scale == 0 {
				e[i] = z.At(i, l)
			} else {
				for k := 0; k <= l; k++ {
					zik := z.At(i, k) / scale
					z.Set(i, k, zik)
					h += zik * zik
				}
				f := z.At(i, l)
				g := math.Sqrt(h)
				if f >= 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				z.Set(i, l, f-g)
				f = 0.0
				for j := 0; j <= l; j++ {
					z.Set(j, i, z.At(i, j)/h)
					g = 0.0
					for k := 0; k <= j; k++ {
						g += z.At(j, k) * z.At(i, k)
					}
					for k := j + 1; k <= l; k++ {
						g += z.At(k, j) * z.At(i, k)
					}
					e[j] = g / h
					f += e[j] * z.At(i, j)
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = z.At(i, j)
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						z.Set(j, k, z.At(j, k)-f*e[k]-g*z.At(i, k))
					}
				}
			}
		} else {
			e[i] = z.At(i, l)
		}
		d[i] = h
	}
	d[0] = 0.0
	e[0] = 0.0
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				g := 0.0
				for k := 0; k <= l; k++ {
					g += z.At(i, k) * z.At(k, j)
				}
				for k := 0; k <= l; k++ {
					z.Set(k, j, z.At(k, j)-g*z.At(k, i))
				}
			}
		}
		d[i] = z.At(i, i)
		z.Set(i, i, 1.0)
		for j := 0; j <= l; j++ {
			z.Set(j, i, 0.0)
			z.Set(i, j, 0.0)
		}
	}
}

// tqli diagonalizes a symmetric tridiagonal matrix given by diagonal d and
// subdiagonal e (e[0] unused) using the QL algorithm with implicit shifts,
// accumulating the rotations into z. On success d holds the eigenvalues and
// the columns of z the eigenvectors.
func tqli(d, e []float64, z *Dense) error {
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0.0
	for l := 0; l < n; l++ {
		iter := 0
		for {
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= 1e-16*dd {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter > 50 {
				return ErrNoConvergence
			}
			g := (d[l+1] - d[l]) / (2.0 * e[l])
			r := math.Hypot(g, 1.0)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			underflow := false
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					// Negligible rotation: deflate and restart this
					// eigenvalue unless the whole sweep completed.
					d[i+1] -= p
					e[m] = 0.0
					underflow = i >= l
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2.0*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				for k := 0; k < n; k++ {
					f = z.At(k, i+1)
					z.Set(k, i+1, s*z.At(k, i)+c*f)
					z.Set(k, i, c*z.At(k, i)-s*f)
				}
			}
			if underflow {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0.0
		}
	}
	return nil
}

// sortEigen sorts eigenpairs ascending by eigenvalue, reordering the columns
// of v to match.
func sortEigen(vals []float64, v *Dense) *EigenDecomposition {
	n := len(vals)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	outVals := make([]float64, n)
	outVecs := NewDense(v.Rows(), n)
	for k, i := range idx {
		outVals[k] = vals[i]
		outVecs.SetCol(k, v.Col(i))
	}
	return &EigenDecomposition{Values: outVals, Vectors: outVecs}
}

// Descending returns the eigenvalues and eigenvectors reordered so that
// eigenvalues are in descending order. The receiver is unchanged.
func (ed *EigenDecomposition) Descending() ([]float64, *Dense) {
	n := len(ed.Values)
	vals := make([]float64, n)
	vecs := NewDense(ed.Vectors.Rows(), n)
	for i := 0; i < n; i++ {
		vals[i] = ed.Values[n-1-i]
		vecs.SetCol(i, ed.Vectors.Col(n-1-i))
	}
	return vals, vecs
}

// Reconstruct returns V Λ Vᵀ, useful for verifying the decomposition.
func (ed *EigenDecomposition) Reconstruct() *Dense {
	n := len(ed.Values)
	lam := Diag(ed.Values)
	_ = n
	return ed.Vectors.Mul(lam).Mul(ed.Vectors.T())
}

// Residual returns the max-abs entry of A·V − V·Λ, a direct measure of the
// decomposition quality for the matrix a.
func (ed *EigenDecomposition) Residual(a *Dense) float64 {
	av := a.Mul(ed.Vectors)
	vl := ed.Vectors.Mul(Diag(ed.Values))
	return av.SubMat(vl).MaxAbs()
}
