package linalg

import (
	"errors"
	"fmt"
	"math"
)

// CholeskyDecomposition holds the lower-triangular Cholesky factor L of a
// symmetric positive-definite matrix A = L Lᵀ.
type CholeskyDecomposition struct {
	L *Dense
}

// ErrNotPositiveDefinite is returned when Cholesky factorization encounters a
// non-positive pivot.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower Cholesky factor of the symmetric positive
// definite matrix a. The input is not modified.
func Cholesky(a *Dense) (*CholeskyDecomposition, error) {
	n, c := a.Dims()
	if n != c {
		return nil, fmt.Errorf("linalg: Cholesky requires a square matrix, got %dx%d", n, c)
	}
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		sum := a.At(j, j)
		lrowj := l.RawRow(j)
		for k := 0; k < j; k++ {
			sum -= lrowj[k] * lrowj[k]
		}
		if sum <= 0 {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(sum)
		lrowj[j] = ljj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			lrowi := l.RawRow(i)
			for k := 0; k < j; k++ {
				s -= lrowi[k] * lrowj[k]
			}
			lrowi[j] = s / ljj
		}
	}
	return &CholeskyDecomposition{L: l}, nil
}

// Solve solves A x = b using the factorization.
func (c *CholeskyDecomposition) Solve(b []float64) ([]float64, error) {
	n := c.L.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Cholesky Solve rhs length %d, want %d", len(b), n)
	}
	// Forward: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := c.L.RawRow(i)
		s := b[i]
		for j := 0; j < i; j++ {
			s -= row[j] * y[j]
		}
		y[i] = s / row[i]
	}
	// Backward: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= c.L.At(j, i) * x[j]
		}
		x[i] = s / c.L.At(i, i)
	}
	return x, nil
}

// LogDet returns the natural log of the determinant of the factored matrix,
// computed stably from the factor diagonal.
func (c *CholeskyDecomposition) LogDet() float64 {
	n := c.L.Rows()
	s := 0.0
	for i := 0; i < n; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}
