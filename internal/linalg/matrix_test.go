package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randDense returns an r x c matrix with entries drawn uniformly from
// [-1, 1) using the given source.
func randDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.data {
		m.data[i] = 2*rng.Float64() - 1
	}
	return m
}

// randSym returns a random symmetric n x n matrix.
func randSym(rng *rand.Rand, n int) *Dense {
	m := randDense(rng, n, n)
	return m.AddMat(m.T()).Scale(0.5)
}

// randSPD returns a random symmetric positive definite matrix AᵀA + I.
func randSPD(rng *rand.Rand, n int) *Dense {
	a := randDense(rng, n, n)
	return a.T().Mul(a).AddMat(Identity(n))
}

func TestNewDensePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"zero rows", func() { NewDense(0, 3) }},
		{"zero cols", func() { NewDense(3, 0) }},
		{"negative", func() { NewDense(-1, 2) }},
		{"bad data len", func() { NewDenseData(2, 2, []float64{1, 2, 3}) }},
		{"ragged rows", func() { FromRows([][]float64{{1, 2}, {3}}) }},
		{"empty rows", func() { FromRows(nil) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	m := NewDense(3, 4)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	m.Add(1, 2, 0.5)
	if got := m.At(1, 2); got != 8 {
		t.Fatalf("after Add, At(1,2) = %v, want 8", got)
	}
}

func TestIndexOutOfBoundsPanics(t *testing.T) {
	m := NewDense(2, 2)
	for _, fn := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, 2) },
		func() { m.At(-1, 0) },
		func() { m.Set(2, 0, 1) },
		func() { m.Row(2) },
		func() { m.Col(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestIdentityAndDiag(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(3)[%d,%d] = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
	d := Diag([]float64{1, 2, 3})
	if d.At(1, 1) != 2 || d.At(0, 1) != 0 {
		t.Fatalf("Diag wrong: %v", d)
	}
	if got := d.Trace(); got != 6 {
		t.Fatalf("Trace = %v, want 6", got)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randDense(rng, 4, 7)
	if !m.T().T().Equal(m, 0) {
		t.Fatalf("transpose is not an involution")
	}
	if m.T().Rows() != 7 || m.T().Cols() != 4 {
		t.Fatalf("transpose dims wrong")
	}
}

func TestMulAgainstHandComputed(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !got.Equal(want, 0) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randDense(rng, 5, 5)
	if !m.Mul(Identity(5)).Equal(m, 1e-15) {
		t.Fatalf("m * I != m")
	}
	if !Identity(5).Mul(m).Equal(m, 1e-15) {
		t.Fatalf("I * m != m")
	}
}

func TestMulAssociativity(t *testing.T) {
	// Property: (AB)C == A(BC) up to floating point error.
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randDense(r, 3, 4)
		b := randDense(r, 4, 5)
		c := randDense(r, 5, 2)
		return a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)), 1e-12)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randDense(rng, 6, 4)
	x := randDense(rng, 4, 1)
	got := a.MulVec(x.Col(0))
	want := a.Mul(x).Col(0)
	if !VecEqual(got, want, 1e-14) {
		t.Fatalf("MulVec disagrees with Mul: %v vs %v", got, want)
	}
}

func TestMulVecTMatchesTransposeMul(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randDense(rng, 6, 4)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := a.MulVecT(x)
	want := a.T().MulVec(x)
	if !VecEqual(got, want, 1e-13) {
		t.Fatalf("MulVecT disagrees with T().MulVec: %v vs %v", got, want)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{4, 3}, {2, 1}})
	if got := a.AddMat(b); !got.Equal(FromRows([][]float64{{5, 5}, {5, 5}}), 0) {
		t.Fatalf("AddMat wrong: %v", got)
	}
	if got := a.SubMat(a); got.MaxAbs() != 0 {
		t.Fatalf("a - a != 0: %v", got)
	}
	if got := a.Clone().Scale(2); !got.Equal(FromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Fatalf("Scale wrong: %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatalf("Clone shares storage with original")
	}
}

func TestRawRowAliases(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	r := a.RawRow(1)
	r[0] = 42
	if a.At(1, 0) != 42 {
		t.Fatalf("RawRow should alias the matrix storage")
	}
	// Row must NOT alias.
	r2 := a.Row(0)
	r2[0] = -1
	if a.At(0, 0) != 1 {
		t.Fatalf("Row must copy")
	}
}

func TestSetRowSetCol(t *testing.T) {
	a := NewDense(2, 3)
	a.SetRow(0, []float64{1, 2, 3})
	a.SetCol(2, []float64{9, 8})
	want := FromRows([][]float64{{1, 2, 9}, {0, 0, 8}})
	if !a.Equal(want, 0) {
		t.Fatalf("SetRow/SetCol result %v, want %v", a, want)
	}
}

func TestIsSymmetric(t *testing.T) {
	if !FromRows([][]float64{{1, 2}, {2, 3}}).IsSymmetric(0) {
		t.Fatalf("symmetric matrix not detected")
	}
	if FromRows([][]float64{{1, 2}, {2.1, 3}}).IsSymmetric(0.01) {
		t.Fatalf("asymmetric matrix passed with small tol")
	}
	if FromRows([][]float64{{1, 2, 3}, {4, 5, 6}}).IsSymmetric(1) {
		t.Fatalf("non-square matrix reported symmetric")
	}
}

func TestSliceColsAndRows(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	sc := a.SliceCols([]int{2, 0})
	want := FromRows([][]float64{{3, 1}, {6, 4}, {9, 7}})
	if !sc.Equal(want, 0) {
		t.Fatalf("SliceCols = %v, want %v", sc, want)
	}
	sr := a.SliceRows([]int{1})
	if !sr.Equal(FromRows([][]float64{{4, 5, 6}}), 0) {
		t.Fatalf("SliceRows wrong: %v", sr)
	}
	// Slicing must copy.
	sc.Set(0, 0, 100)
	if a.At(0, 2) != 3 {
		t.Fatalf("SliceCols must copy storage")
	}
}

func TestTraceInvariantUnderSimilarity(t *testing.T) {
	// Property from the paper's §2: the trace (sum of eigenvalues / total
	// variance) is invariant under rotation of the axis system.
	rng := rand.New(rand.NewSource(6))
	s := randSym(rng, 5)
	q, err := QR(randDense(rng, 5, 5))
	if err != nil {
		t.Fatal(err)
	}
	rot := q.Q // orthogonal
	rotated := rot.T().Mul(s).Mul(rot)
	if math.Abs(rotated.Trace()-s.Trace()) > 1e-10 {
		t.Fatalf("trace not invariant: %v vs %v", rotated.Trace(), s.Trace())
	}
}

func TestFrobeniusAndMaxAbs(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 4}})
	if got := a.FrobeniusNorm(); math.Abs(got-5) > 1e-15 {
		t.Fatalf("FrobeniusNorm = %v, want 5", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v, want 4", got)
	}
}

func TestStringDoesNotPanic(t *testing.T) {
	big := NewDense(20, 20)
	if s := big.String(); len(s) == 0 {
		t.Fatalf("String returned empty")
	}
	small := NewDense(2, 2)
	if s := small.String(); len(s) == 0 {
		t.Fatalf("String returned empty")
	}
}
