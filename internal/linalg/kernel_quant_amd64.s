// AVX2/FMA kernels for the quantized-code inner products of the vector
// store scan path: s = Σ t[j]·float64(c[j]) with c uint8 or uint16 codes.
// Codes are widened in-register (VPMOVZX → VCVTDQ2PD) so the memory stream
// stays 1 or 2 bytes per dimension; accumulation runs in float64 with four
// 256-bit accumulators, matching the dotAVX2 skeleton. Callers guarantee
// len(t) == len(c) and len(t) ≡ 0 (mod 16); the Go dispatch wrappers in
// kernel_quant_amd64.go handle the scalar tail.

#include "textflag.h"

// func dotU8AVX2(t []float64, c []uint8) float64
//
// 16 codes per iteration: two 8-byte loads widen to 4×4 int32 lanes, each
// converted to 4 float64 and FMA'd against the matching t quad.
TEXT ·dotU8AVX2(SB), NOSPLIT, $0-56
	MOVQ t_base+0(FP), SI
	MOVQ c_base+24(FP), DI
	MOVQ t_len+8(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	SHRQ $4, CX
	JZ   u8reduce

u8loop16:
	VPMOVZXBD (DI), Y4
	VPMOVZXBD 8(DI), Y5
	VCVTDQ2PD X4, Y6
	VEXTRACTI128 $1, Y4, X4
	VCVTDQ2PD X4, Y7
	VFMADD231PD (SI), Y6, Y0
	VFMADD231PD 32(SI), Y7, Y1
	VCVTDQ2PD X5, Y6
	VEXTRACTI128 $1, Y5, X5
	VCVTDQ2PD X5, Y7
	VFMADD231PD 64(SI), Y6, Y2
	VFMADD231PD 96(SI), Y7, Y3
	ADDQ $16, DI
	ADDQ $128, SI
	DECQ CX
	JNZ  u8loop16

u8reduce:
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	VZEROUPPER
	MOVSD X0, ret+48(FP)
	RET

// func dotU16AVX2(t []float64, c []uint16) float64
//
// Identical skeleton with 16-byte code loads widened by VPMOVZXWD.
TEXT ·dotU16AVX2(SB), NOSPLIT, $0-56
	MOVQ t_base+0(FP), SI
	MOVQ c_base+24(FP), DI
	MOVQ t_len+8(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	SHRQ $4, CX
	JZ   u16reduce

u16loop16:
	VPMOVZXWD (DI), Y4
	VPMOVZXWD 16(DI), Y5
	VCVTDQ2PD X4, Y6
	VEXTRACTI128 $1, Y4, X4
	VCVTDQ2PD X4, Y7
	VFMADD231PD (SI), Y6, Y0
	VFMADD231PD 32(SI), Y7, Y1
	VCVTDQ2PD X5, Y6
	VEXTRACTI128 $1, Y5, X5
	VCVTDQ2PD X5, Y7
	VFMADD231PD 64(SI), Y6, Y2
	VFMADD231PD 96(SI), Y7, Y3
	ADDQ $32, DI
	ADDQ $128, SI
	DECQ CX
	JNZ  u16loop16

u16reduce:
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	VZEROUPPER
	MOVSD X0, ret+48(FP)
	RET
