package linalg

import (
	"fmt"
	"math"
	"math/rand"
)

// PowerIteration computes the dominant eigenpair of the symmetric matrix a
// by repeated multiplication with deflation-free iteration. It returns the
// eigenvalue of largest magnitude and its unit eigenvector. tol bounds the
// relative change of the Rayleigh quotient between iterations (0 selects
// 1e-12); maxIter bounds the loop (0 selects 1000). The rng seeds the
// starting vector so results are deterministic per seed.
func PowerIteration(a *Dense, tol float64, maxIter int, rng *rand.Rand) (float64, []float64, error) {
	n, c := a.Dims()
	if n != c {
		return 0, nil, fmt.Errorf("linalg: PowerIteration requires square matrix, got %dx%d", n, c)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	Normalize(v)
	lambda := 0.0
	for iter := 0; iter < maxIter; iter++ {
		w := a.MulVec(v)
		norm := Norm2(w)
		if norm == 0 {
			return 0, v, nil // a v = 0: v is a null vector, eigenvalue 0
		}
		ScaleVec(1/norm, w)
		next := Dot(w, a.MulVec(w))
		converged := math.Abs(next-lambda) <= tol*math.Max(1, math.Abs(next))
		lambda = next
		v = w
		if converged && iter > 2 {
			return lambda, v, nil
		}
	}
	return lambda, v, ErrNoConvergence
}

// TopKEigen computes the k eigenpairs of largest eigenvalue of the
// symmetric positive semi-definite matrix a (covariance matrices — the use
// case of this library) via Lanczos iteration with full
// reorthogonalization, falling back to the dense solver when k is not much
// smaller than the dimension. Eigenvalues are returned descending with unit
// eigenvectors as the columns of the returned matrix.
func TopKEigen(a *Dense, k int, rng *rand.Rand) ([]float64, *Dense, error) {
	n, c := a.Dims()
	if n != c {
		return nil, nil, fmt.Errorf("linalg: TopKEigen requires square matrix, got %dx%d", n, c)
	}
	if k < 1 || k > n {
		return nil, nil, fmt.Errorf("linalg: TopKEigen k=%d out of [1,%d]", k, n)
	}
	// For small problems or large k the dense path is both faster and
	// simpler.
	if n <= 64 || k*3 >= n {
		ed, err := EigSym(a)
		if err != nil {
			return nil, nil, err
		}
		vals, vecs := ed.Descending()
		cols := make([]int, k)
		for i := range cols {
			cols[i] = i
		}
		return vals[:k], vecs.SliceCols(cols), nil
	}

	// Lanczos with full reorthogonalization: grow the Krylov basis until
	// the top-k Ritz pairs converge (standard residual bound
	// ‖A y − θ y‖ = |β_j|·|s_j| with s_j the last component of the small
	// eigenvector), then lift the Ritz vectors.
	const ritzTol = 1e-10
	maxBasis := n
	basis := make([][]float64, 0, 4*k)
	alphas := make([]float64, 0, 4*k)
	betas := make([]float64, 0, 4*k) // betas[i] couples basis[i] and basis[i+1]

	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	Normalize(v)
	basis = append(basis, v)

	var tvals []float64
	var tvecs *Dense
	solveSmall := func() error {
		mm := len(alphas)
		tri := NewDense(mm, mm)
		for i := 0; i < mm; i++ {
			tri.Set(i, i, alphas[i])
			if i+1 < mm {
				tri.Set(i, i+1, betas[i])
				tri.Set(i+1, i, betas[i])
			}
		}
		ed, err := EigSym(tri)
		if err != nil {
			return err
		}
		tvals, tvecs = ed.Descending()
		return nil
	}

	exhausted := false
	for j := 0; ; j++ {
		w := a.MulVec(basis[j])
		alpha := Dot(w, basis[j])
		alphas = append(alphas, alpha)
		Axpy(-alpha, basis[j], w)
		if j > 0 {
			Axpy(-betas[j-1], basis[j-1], w)
		}
		// Full reorthogonalization for numerical robustness.
		for pass := 0; pass < 2; pass++ {
			for _, u := range basis {
				Axpy(-Dot(u, w), u, w)
			}
		}
		beta := Norm2(w)
		if beta < 1e-13 || len(basis) == maxBasis {
			exhausted = true // invariant subspace or full space reached
		}
		// Convergence check once the basis can hold k Ritz pairs.
		if mm := len(alphas); mm >= k && (exhausted || mm%4 == 0) {
			if err := solveSmall(); err != nil {
				return nil, nil, err
			}
			converged := true
			scale := math.Max(1, math.Abs(tvals[0]))
			for i := 0; i < k; i++ {
				if beta*math.Abs(tvecs.At(mm-1, i)) > ritzTol*scale {
					converged = false
					break
				}
			}
			if converged || exhausted {
				break
			}
		}
		if exhausted {
			if err := solveSmall(); err != nil {
				return nil, nil, err
			}
			break
		}
		betas = append(betas, beta)
		ScaleVec(1/beta, w)
		basis = append(basis, w)
	}

	mm := len(alphas)
	if k > mm {
		k = mm
	}
	vals := make([]float64, k)
	vecs := NewDense(n, k)
	for i := 0; i < k; i++ {
		vals[i] = tvals[i]
		ritz := make([]float64, n)
		for j := 0; j < mm && j < len(basis); j++ {
			Axpy(tvecs.At(j, i), basis[j], ritz)
		}
		Normalize(ritz)
		vecs.SetCol(i, ritz)
	}
	return vals, vecs, nil
}
