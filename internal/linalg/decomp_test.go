package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, dims := range [][2]int{{3, 3}, {5, 3}, {10, 7}, {40, 20}} {
		a := randDense(rng, dims[0], dims[1])
		qr, err := QR(a)
		if err != nil {
			t.Fatal(err)
		}
		if !qr.Q.Mul(qr.R).Equal(a, 1e-11) {
			t.Fatalf("%v: QR does not reconstruct A", dims)
		}
		// Q has orthonormal columns.
		n := dims[1]
		if !qr.Q.T().Mul(qr.Q).Equal(Identity(n), 1e-11) {
			t.Fatalf("%v: Q columns not orthonormal", dims)
		}
		// R upper triangular.
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				if qr.R.At(i, j) != 0 {
					t.Fatalf("%v: R not upper triangular at (%d,%d)", dims, i, j)
				}
			}
		}
	}
}

func TestQRRejectsWide(t *testing.T) {
	if _, err := QR(NewDense(2, 5)); err == nil {
		t.Fatalf("expected error for wide matrix")
	}
}

func TestQRWithZeroColumn(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {2, 0}, {3, 0}})
	qr, err := QR(a)
	if err != nil {
		t.Fatal(err)
	}
	if !qr.Q.Mul(qr.R).Equal(a, 1e-12) {
		t.Fatalf("QR with zero column does not reconstruct")
	}
}

func TestSolveLeastSquaresExact(t *testing.T) {
	// Square nonsingular system: least squares equals the exact solution.
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	want := []float64{1, -2}
	b := a.MulVec(want)
	got, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(got, want, 1e-12) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSolveLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 from noiseless samples; the LS solution is exact.
	xs := []float64{0, 1, 2, 3, 4}
	a := NewDense(len(xs), 2)
	b := make([]float64, len(xs))
	for i, x := range xs {
		a.Set(i, 0, x)
		a.Set(i, 1, 1)
		b[i] = 2*x + 1
	}
	got, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(got, []float64{2, 1}, 1e-10) {
		t.Fatalf("least squares fit = %v, want [2 1]", got)
	}
}

func TestSolveLeastSquaresResidualOrthogonality(t *testing.T) {
	// Property: the LS residual is orthogonal to the column space of A.
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randDense(r, 8, 3)
		b := make([]float64, 8)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := SolveLeastSquares(a, b)
		if err != nil {
			return true // rank-deficient random draw: skip
		}
		res := SubVec(b, a.MulVec(x))
		proj := a.MulVecT(res) // Aᵀ r must be ~0
		return NormInf(proj) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestGramSchmidt(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randDense(rng, 6, 4)
	q := GramSchmidt(a)
	if !q.T().Mul(q).Equal(Identity(q.Cols()), 1e-10) {
		t.Fatalf("GramSchmidt columns not orthonormal")
	}
}

func TestGramSchmidtDropsDependentColumns(t *testing.T) {
	a := FromRows([][]float64{
		{1, 2, 3},
		{0, 0, 1},
		{0, 0, 0},
	})
	// Column 1 is 2x column 0 → must be dropped.
	q := GramSchmidt(a)
	if q.Cols() != 2 {
		t.Fatalf("expected 2 independent columns, got %d", q.Cols())
	}
}

func TestLUSolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{1, 2, 5, 12, 30} {
		a := randDense(rng, n, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := Solve(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !VecEqual(got, want, 1e-8) {
			t.Fatalf("n=%d: solve mismatch", n)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := LU(a); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestLUDeterminant(t *testing.T) {
	cases := []struct {
		m    *Dense
		want float64
	}{
		{FromRows([][]float64{{2}}), 2},
		{FromRows([][]float64{{1, 2}, {3, 4}}), -2},
		{FromRows([][]float64{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}}), 24},
		{Identity(5), 1},
	}
	for _, tc := range cases {
		if got := Det(tc.m); math.Abs(got-tc.want) > 1e-10 {
			t.Fatalf("Det = %v, want %v", got, tc.want)
		}
	}
	if got := Det(FromRows([][]float64{{1, 2}, {2, 4}})); got != 0 {
		t.Fatalf("Det of singular = %v, want 0", got)
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := randDense(rng, 6, 6)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(inv).Equal(Identity(6), 1e-9) {
		t.Fatalf("A A⁻¹ != I")
	}
	if !inv.Mul(a).Equal(Identity(6), 1e-9) {
		t.Fatalf("A⁻¹ A != I")
	}
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for _, n := range []int{1, 2, 4, 10, 25} {
		a := randSPD(rng, n)
		ch, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !ch.L.Mul(ch.L.T()).Equal(a, 1e-9) {
			t.Fatalf("n=%d: L Lᵀ != A", n)
		}
		// L lower triangular with positive diagonal.
		for i := 0; i < n; i++ {
			if ch.L.At(i, i) <= 0 {
				t.Fatalf("n=%d: non-positive diagonal", n)
			}
			for j := i + 1; j < n; j++ {
				if ch.L.At(i, j) != 0 {
					t.Fatalf("n=%d: L not lower triangular", n)
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("expected ErrNotPositiveDefinite, got %v", err)
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	a := randSPD(rng, 8)
	want := make([]float64, 8)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := a.MulVec(want)
	ch, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ch.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(got, want, 1e-8) {
		t.Fatalf("Cholesky solve mismatch: %v vs %v", got, want)
	}
}

func TestCholeskyLogDet(t *testing.T) {
	a := Diag([]float64{2, 3, 4})
	ch, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ch.LogDet(), math.Log(24); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogDet = %v, want %v", got, want)
	}
}

func TestSVDReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for _, dims := range [][2]int{{3, 3}, {6, 4}, {4, 6}, {20, 12}} {
		a := randDense(rng, dims[0], dims[1])
		sd, err := SVD(a)
		if err != nil {
			t.Fatal(err)
		}
		if !sd.Reconstruct().Equal(a, 1e-10) {
			t.Fatalf("%v: U Σ Vᵀ != A", dims)
		}
		// Singular values descending and non-negative.
		for i, v := range sd.Values {
			if v < 0 {
				t.Fatalf("negative singular value %v", v)
			}
			if i > 0 && v > sd.Values[i-1]+1e-12 {
				t.Fatalf("singular values not descending: %v", sd.Values)
			}
		}
		// Orthonormal factors.
		r := len(sd.Values)
		if !sd.U.T().Mul(sd.U).Equal(Identity(r), 1e-10) {
			t.Fatalf("%v: U not orthonormal", dims)
		}
		if !sd.V.T().Mul(sd.V).Equal(Identity(r), 1e-10) {
			t.Fatalf("%v: V not orthonormal", dims)
		}
	}
}

func TestSVDKnownValues(t *testing.T) {
	// diag(3, 2) has singular values 3, 2.
	a := FromRows([][]float64{{3, 0}, {0, 2}})
	sd, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqual(sd.Values, []float64{3, 2}, 1e-12) {
		t.Fatalf("singular values = %v, want [3 2]", sd.Values)
	}
}

func TestSVDRank(t *testing.T) {
	// Rank-1 matrix.
	a := Outer([]float64{1, 2, 3}, []float64{4, 5})
	sd, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := sd.Rank(1e-10); got != 1 {
		t.Fatalf("Rank = %d, want 1", got)
	}
}

func TestSVDAgreesWithEigOfGram(t *testing.T) {
	// σ_i² must equal the eigenvalues of AᵀA.
	rng := rand.New(rand.NewSource(28))
	a := randDense(rng, 10, 6)
	sd, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := EigSym(a.T().Mul(a))
	if err != nil {
		t.Fatal(err)
	}
	evDesc, _ := ed.Descending()
	for i := range sd.Values {
		if math.Abs(sd.Values[i]*sd.Values[i]-evDesc[i]) > 1e-8 {
			t.Fatalf("σ² %v != eigenvalue %v at %d", sd.Values[i]*sd.Values[i], evDesc[i], i)
		}
	}
}

func TestSVDTruncatedReconstructError(t *testing.T) {
	// Eckart–Young: the rank-k truncation error equals σ_{k+1} in 2-norm;
	// here we just check the Frobenius error is the tail energy.
	rng := rand.New(rand.NewSource(29))
	a := randDense(rng, 8, 5)
	sd, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	k := 2
	approx := sd.TruncatedReconstruct(k)
	errNorm := a.SubMat(approx).FrobeniusNorm()
	tail := 0.0
	for _, v := range sd.Values[k:] {
		tail += v * v
	}
	if math.Abs(errNorm-math.Sqrt(tail)) > 1e-9 {
		t.Fatalf("truncation error %v != tail energy %v", errNorm, math.Sqrt(tail))
	}
}

func TestSVDCondition(t *testing.T) {
	a := Diag([]float64{4, 2})
	sd, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := sd.Condition(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Condition = %v, want 2", got)
	}
}
