//go:build amd64

package linalg

// Dispatch for the integer Q15 dot kernels in kernel_quant_int_amd64.s,
// behind the same hasAVX2FMA CPUID gate as the float kernels (the bodies
// only need AVX2 integer ops, but the gate keeps one capability bit for
// the whole family). The assembly processes 16 codes per iteration; the
// wrappers run it on the aligned head and finish the ≤15-code tail in
// scalar Go. Integer sums are exact, so head+tail composition is
// bit-identical to the generic path no matter where the split lands.

//go:noescape
func dotQ15U8AVX2(u []uint16, c []uint8) int64

//go:noescape
func dotQ15U16AVX2(u []uint16, c []uint16) int64

//go:noescape
func dotQ15U8x4AVX2(u []uint16, rows *uint8, stride int, out *[4]int64)

//go:noescape
func dotQ15U16x4AVX2(u []uint16, rows *uint16, stride int, out *[4]int64)

//go:noescape
func dotQ15U8x8AVX2(u []uint16, rows *uint8, stride int, out *[8]int64)

// q15x8MaxLen bounds the ×8 assembly body: its eight i32 accumulators
// are drained to i64 only once, at the end, which is exact for up to 64
// 16-code iterations (each i32 lane absorbs one pair sum ≤ 2·32767·255
// per iteration; 64·16711170 < 2³¹). Longer inputs split into two ×4
// calls, which drain periodically.
const q15x8MaxLen = 1024

func dotQ15U8Unitary(u []uint16, c []uint8) int64 {
	if hasAVX2FMA && len(u) >= asmMinLen {
		c = c[:len(u)] // teach the prover len(c) == len(u) for the scalar tail
		head := len(u) &^ 15
		s := dotQ15U8AVX2(u[:head], c[:head])
		for j := head; j < len(u); j++ {
			s += int64(u[j]) * int64(c[j])
		}
		return s
	}
	return dotQ15U8Generic(u, c)
}

func dotQ15U16Unitary(u []uint16, c []uint16) int64 {
	if hasAVX2FMA && len(u) >= asmMinLen {
		c = c[:len(u)] // teach the prover len(c) == len(u) for the scalar tail
		head := len(u) &^ 15
		s := dotQ15U16AVX2(u[:head], c[:head])
		for j := head; j < len(u); j++ {
			s += int64(u[j]) * int64(c[j])
		}
		return s
	}
	return dotQ15U16Generic(u, c)
}

func dotQ15U8x4Unitary(u []uint16, rows []uint8, stride int, out *[4]int64) {
	if hasAVX2FMA && len(u) >= asmMinLen {
		head := len(u) &^ 15
		dotQ15U8x4AVX2(u[:head], &rows[0], stride, out)
		for r := 0; r < 4; r++ {
			//drlint:ignore bcegate row geometry (r*stride) is the caller's layout contract; one reslice check per ≤15-element scalar tail
			row := rows[r*stride:][:len(u)]
			var s int64
			for j := head; j < len(u); j++ {
				s += int64(u[j]) * int64(row[j])
			}
			out[r] += s
		}
		return
	}
	dotQ15U8x4Generic(u, rows, stride, out)
}

func dotQ15U16x4Unitary(u []uint16, rows []uint16, stride int, out *[4]int64) {
	if hasAVX2FMA && len(u) >= asmMinLen {
		head := len(u) &^ 15
		dotQ15U16x4AVX2(u[:head], &rows[0], stride, out)
		for r := 0; r < 4; r++ {
			//drlint:ignore bcegate row geometry (r*stride) is the caller's layout contract; one reslice check per ≤15-element scalar tail
			row := rows[r*stride:][:len(u)]
			var s int64
			for j := head; j < len(u); j++ {
				s += int64(u[j]) * int64(row[j])
			}
			out[r] += s
		}
		return
	}
	dotQ15U16x4Generic(u, rows, stride, out)
}

func dotQ15U8x8Unitary(u []uint16, rows []uint8, stride int, out *[8]int64) {
	if len(u) > q15x8MaxLen {
		var lo, hi [4]int64
		dotQ15U8x4Unitary(u, rows, stride, &lo)
		dotQ15U8x4Unitary(u, rows[4*stride:], stride, &hi)
		copy(out[:4], lo[:])
		copy(out[4:], hi[:])
		return
	}
	if hasAVX2FMA && len(u) >= asmMinLen {
		head := len(u) &^ 15
		dotQ15U8x8AVX2(u[:head], &rows[0], stride, out)
		for r := 0; r < 8; r++ {
			//drlint:ignore bcegate row geometry (r*stride) is the caller's layout contract; one reslice check per ≤15-element scalar tail
			row := rows[r*stride:][:len(u)]
			var s int64
			for j := head; j < len(u); j++ {
				s += int64(u[j]) * int64(row[j])
			}
			out[r] += s
		}
		return
	}
	dotQ15U8x8Generic(u, rows, stride, out)
}
