package linalg

import (
	"math/rand"
	"testing"
)

func benchSym(n int) *Dense {
	rng := rand.New(rand.NewSource(99))
	return randSym(rng, n)
}

func BenchmarkEigSymQL64(b *testing.B) {
	a := benchSym(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EigSymQL(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigSymQL256(b *testing.B) {
	a := benchSym(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EigSymQL(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigSymJacobi64(b *testing.B) {
	a := benchSym(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EigSymJacobi(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := randDense(rng, 128, 128)
	y := randDense(rng, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Mul(y)
	}
}

func BenchmarkSVD64x32(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := randDense(rng, 64, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SVD(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQR256x64(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a := randDense(rng, 256, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := QR(a); err != nil {
			b.Fatal(err)
		}
	}
}
