package linalg

import (
	"math/rand"
	"testing"
)

func benchSym(n int) *Dense {
	rng := rand.New(rand.NewSource(99))
	return randSym(rng, n)
}

func BenchmarkEigSymQL64(b *testing.B) {
	a := benchSym(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EigSymQL(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigSymQL256(b *testing.B) {
	a := benchSym(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EigSymQL(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigSymJacobi64(b *testing.B) {
	a := benchSym(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EigSymJacobi(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := randDense(rng, 128, 128)
	y := randDense(rng, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Mul(y)
	}
}

var benchSink float64

func benchDot(b *testing.B, d int) {
	rng := rand.New(rand.NewSource(7))
	x := randDense(rng, 2, d)
	u, v := x.RawRow(0), x.RawRow(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = Dot(u, v)
	}
}

// The three dimensions of the kernel table in EXPERIMENTS.md: d=166
// (musk), d=64 (reduced), d=16 (deep-reduced).
func BenchmarkDot16(b *testing.B)  { benchDot(b, 16) }
func BenchmarkDot64(b *testing.B)  { benchDot(b, 64) }
func BenchmarkDot166(b *testing.B) { benchDot(b, 166) }

func BenchmarkDotGeneric166(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randDense(rng, 2, 166)
	u, v := x.RawRow(0), x.RawRow(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = dotGeneric(u, v)
	}
}

// BenchmarkMulT512x166 against BenchmarkMulNaiveT512x166 is the blocked
// kernel's proof of win over the seed's ikj Mul on the same product shape.
func BenchmarkMulT512x166(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := randDense(rng, 512, 166)
	y := randDense(rng, 512, 166)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulT(x, y)
	}
}

func BenchmarkMulNaiveT512x166(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := randDense(rng, 512, 166)
	y := randDense(rng, 512, 166)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Mul(y.T())
	}
}

func BenchmarkAtA6598x166(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randDense(rng, 6598, 166)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AtA(x)
	}
}

func BenchmarkAtANaive6598x166(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randDense(rng, 6598, 166)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.T().Mul(x)
	}
}

func BenchmarkSVD64x32(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := randDense(rng, 64, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SVD(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQR256x64(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a := randDense(rng, 256, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := QR(a); err != nil {
			b.Fatal(err)
		}
	}
}
