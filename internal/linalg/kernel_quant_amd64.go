//go:build amd64

package linalg

// Dispatch for the quantized-code dot kernels in kernel_quant_amd64.s,
// behind the same hasAVX2FMA CPUID gate as the float kernels. The assembly
// bodies process exactly 16 codes per iteration and require a length that
// is a multiple of 16; the wrappers slice off the aligned head and finish
// the (≤15-element) tail with scalar Go, which keeps integer→float
// conversion out of the assembly tail path.

//go:noescape
func dotU8AVX2(t []float64, c []uint8) float64

//go:noescape
func dotU16AVX2(t []float64, c []uint16) float64

func dotU8Unitary(t []float64, c []uint8) float64 {
	if hasAVX2FMA && len(t) >= asmMinLen {
		head := len(t) &^ 15
		s := dotU8AVX2(t[:head], c[:head])
		for j := head; j < len(t); j++ {
			s += t[j] * float64(c[j])
		}
		return s
	}
	return dotU8Generic(t, c)
}

func dotU16Unitary(t []float64, c []uint16) float64 {
	if hasAVX2FMA && len(t) >= asmMinLen {
		head := len(t) &^ 15
		s := dotU16AVX2(t[:head], c[:head])
		for j := head; j < len(t); j++ {
			s += t[j] * float64(c[j])
		}
		return s
	}
	return dotU16Generic(t, c)
}
