//go:build !amd64

package linalg

func dotQ15U8Unitary(u []uint16, c []uint8) int64 { return dotQ15U8Generic(u, c) }

func dotQ15U16Unitary(u []uint16, c []uint16) int64 { return dotQ15U16Generic(u, c) }

func dotQ15U8x4Unitary(u []uint16, rows []uint8, stride int, out *[4]int64) {
	dotQ15U8x4Generic(u, rows, stride, out)
}

func dotQ15U16x4Unitary(u []uint16, rows []uint16, stride int, out *[4]int64) {
	dotQ15U16x4Generic(u, rows, stride, out)
}

func dotQ15U8x8Unitary(u []uint16, rows []uint8, stride int, out *[8]int64) {
	dotQ15U8x8Generic(u, rows, stride, out)
}
