package linalg

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// withGeneric runs fn with the assembly kernels disabled, so every test
// using it covers the portable path even on AVX2 hardware.
func withGeneric(fn func()) {
	saved := hasAVX2FMA
	hasAVX2FMA = false
	defer func() { hasAVX2FMA = saved }()
	fn()
}

// withWorkers runs fn at the given GOMAXPROCS so parallel panels are
// exercised even on single-core machines.
func withWorkers(n int, fn func()) {
	saved := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(saved)
	fn()
}

func TestDotKernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 32, 33, 100, 166, 255, 256, 1000} {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		fast := Dot(a, b)
		var slow float64
		withGeneric(func() { slow = Dot(a, b) })
		naive := 0.0
		for i := range a {
			naive += a[i] * b[i]
		}
		tol := 1e-12 * (1 + math.Abs(naive))
		if math.Abs(fast-naive) > tol {
			t.Fatalf("n=%d: dispatched Dot %v, naive %v", n, fast, naive)
		}
		if math.Abs(slow-naive) > tol {
			t.Fatalf("n=%d: generic Dot %v, naive %v", n, slow, naive)
		}
	}
}

func TestDotSpecialValues(t *testing.T) {
	a := []float64{1, math.Inf(1), 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17}
	b := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17}
	if got := Dot(a, b); !math.IsInf(got, 1) {
		t.Fatalf("Dot with +Inf = %v", got)
	}
	a[1] = math.NaN()
	if got := Dot(a, b); !math.IsNaN(got) {
		t.Fatalf("Dot with NaN = %v", got)
	}
}

func TestAxpyKernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 166} {
		x := make([]float64, n)
		y0 := make([]float64, n)
		for i := range x {
			x[i], y0[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		const alpha = 1.7
		fast := append([]float64(nil), y0...)
		Axpy(alpha, x, fast)
		slow := append([]float64(nil), y0...)
		withGeneric(func() { Axpy(alpha, x, slow) })
		for i := range fast {
			want := y0[i] + alpha*x[i]
			if math.Abs(fast[i]-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("n=%d: fast Axpy[%d] = %v, want %v", n, i, fast[i], want)
			}
			if math.Abs(slow[i]-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("n=%d: generic Axpy[%d] = %v, want %v", n, i, slow[i], want)
			}
		}
	}
}

func TestMulTMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cases := []struct{ m, n, k int }{
		{1, 1, 1}, {3, 5, 7}, {17, 9, 166}, {64, 64, 16},
		{200, 130, 33}, {5, 300, 2}, {130, 1, 40},
	}
	for _, c := range cases {
		a := randDense(rng, c.m, c.k)
		b := randDense(rng, c.n, c.k)
		got := MulT(a, b)
		want := a.Mul(b.T())
		if !got.Equal(want, 1e-10) {
			t.Fatalf("MulT(%dx%d, %dx%d) differs from Mul(a, bᵀ)", c.m, c.k, c.n, c.k)
		}
		withWorkers(4, func() {
			withGeneric(func() {
				if !MulT(a, b).Equal(want, 1e-10) {
					t.Fatalf("parallel generic MulT(%dx%d, %dx%d) differs", c.m, c.k, c.n, c.k)
				}
			})
		})
	}
}

func TestMulTIntoValidatesAndReuses(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	a := randDense(rng, 6, 5)
	b := randDense(rng, 4, 5)
	dst := NewDense(6, 4)
	if got := MulTInto(dst, a, b); got != dst {
		t.Fatal("MulTInto must return dst")
	}
	// Reuse must fully overwrite the previous contents.
	first := dst.Clone()
	MulTInto(dst, a, b)
	if !dst.Equal(first, 0) {
		t.Fatal("MulTInto not idempotent on reuse")
	}
	for name, fn := range map[string]func(){
		"inner mismatch": func() { MulT(randDense(rng, 3, 4), randDense(rng, 3, 5)) },
		"bad dst rows":   func() { MulTInto(NewDense(5, 4), a, b) },
		"bad dst cols":   func() { MulTInto(NewDense(6, 5), a, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAtAMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, c := range []struct{ n, k int }{
		{1, 1}, {2, 3}, {50, 7}, {64, 64}, {300, 17}, {129, 166},
	} {
		a := randDense(rng, c.n, c.k)
		got := AtA(a)
		want := a.T().Mul(a)
		if !got.Equal(want, 1e-9) {
			t.Fatalf("AtA(%dx%d) differs from aᵀ·a", c.n, c.k)
		}
		if !got.IsSymmetric(0) {
			t.Fatalf("AtA(%dx%d) not exactly symmetric", c.n, c.k)
		}
		withWorkers(4, func() {
			if !AtA(a).Equal(want, 1e-9) {
				t.Fatalf("parallel AtA(%dx%d) differs", c.n, c.k)
			}
		})
	}
}

func TestAtAZeroHeavyRows(t *testing.T) {
	// The j-loop skips zero leading elements; make sure sparsity doesn't
	// drop contributions.
	a := FromRows([][]float64{
		{0, 0, 2},
		{1, 0, 0},
		{0, 3, 1},
	})
	want := a.T().Mul(a)
	if got := AtA(a); !got.Equal(want, 1e-14) {
		t.Fatalf("AtA on sparse rows = %v, want %v", got, want)
	}
}

func TestRowNormsSq(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := randDense(rng, 20, 166)
	norms := RowNormsSq(m)
	for i := 0; i < 20; i++ {
		row := m.RawRow(i)
		want := 0.0
		for _, v := range row {
			want += v * v
		}
		if math.Abs(norms[i]-want) > 1e-10*(1+want) {
			t.Fatalf("RowNormsSq[%d] = %v, want %v", i, norms[i], want)
		}
	}
}

func TestRowSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m := randDense(rng, 10, 4)
	v := m.RowSlice(3, 7)
	if r, c := v.Dims(); r != 4 || c != 4 {
		t.Fatalf("RowSlice dims %dx%d", r, c)
	}
	for i := 0; i < 4; i++ {
		if !VecEqual(v.RawRow(i), m.RawRow(3+i), 0) {
			t.Fatalf("RowSlice row %d differs", i)
		}
	}
	// Shared storage: writes through the view land in the parent.
	v.Set(0, 0, 99)
	if m.At(3, 0) != 99 {
		t.Fatal("RowSlice does not share storage")
	}
	for name, fn := range map[string]func(){
		"lo<0":   func() { m.RowSlice(-1, 2) },
		"hi>n":   func() { m.RowSlice(0, 11) },
		"lo>=hi": func() { m.RowSlice(5, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
