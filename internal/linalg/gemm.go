package linalg

import (
	"fmt"
	"runtime"
	"sync"
)

// This file is the compute substrate of the batch-distance engine: blocked,
// goroutine-parallel matrix products in the two shapes similarity search
// needs — A·Bᵀ between row-major point sets (queries × data, points ×
// centroids) and the symmetric AᵀA of a centered data matrix (covariance).
// Both reduce every output element to a unit-stride inner product over rows,
// which is exactly what the Dot/Axpy kernels are tuned for, and both block
// their operands so a panel of B stays cache-resident while a panel of A
// streams past it.

// mulTColBlock is the number of b rows per output panel. A panel of
// mulTColBlock rows at a few hundred columns is a few hundred KB — L2
// resident — so every a row read pays for mulTColBlock dot products.
const mulTColBlock = 128

// MulT returns a · bᵀ for an m×k matrix a and an n×k matrix b (both row
// major), as a new m×n matrix. It is the cache-friendly form of Mul for
// row-major operands: out[i][j] = ⟨a.Row(i), b.Row(j)⟩, so both inner-loop
// operands are contiguous. Row panels run in parallel on up to
// runtime.GOMAXPROCS(0) goroutines.
func MulT(a, b *Dense) *Dense {
	out := NewDense(a.rows, b.rows)
	return MulTInto(out, a, b)
}

// MulTInto computes a · bᵀ into dst (which must be a.Rows() × b.Rows() and
// must not share storage with a or b) and returns dst. It allocates nothing,
// so per-block scratch can be reused across calls.
func MulTInto(dst, a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("linalg: MulT dimension mismatch %dx%d · (%dx%d)ᵀ", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.rows {
		panic(fmt.Sprintf("linalg: MulTInto dst is %dx%d, want %dx%d", dst.rows, dst.cols, a.rows, b.rows))
	}
	parallelRanges(a.rows, func(lo, hi int) { mulTPanel(dst, a, b, lo, hi) })
	return dst
}

// mulTPanel computes output rows [lo, hi) of a · bᵀ.
func mulTPanel(dst, a, b *Dense, lo, hi int) {
	k := a.cols
	for jb := 0; jb < b.rows; jb += mulTColBlock {
		je := jb + mulTColBlock
		if je > b.rows {
			je = b.rows
		}
		for i := lo; i < hi; i++ {
			arow := a.data[i*k : (i+1)*k]
			orow := dst.data[i*dst.cols : (i+1)*dst.cols]
			for j := jb; j < je; j++ {
				orow[j] = dotUnitary(arow, b.data[j*k:(j+1)*k])
			}
		}
	}
}

// AtA returns aᵀ·a for an n×k matrix a as a k×k matrix that is exactly
// symmetric by construction (the lower triangle is mirrored from the
// computed upper triangle, so no post-hoc symmetrization is needed). Row
// panels accumulate per-worker partial sums that are reduced in worker
// order, so the result is deterministic for a fixed GOMAXPROCS.
func AtA(a *Dense) *Dense {
	n, k := a.rows, a.cols
	out := NewDense(k, k)
	workers := runtime.GOMAXPROCS(0)
	// Each worker owns a k×k accumulator; don't spawn more than the row
	// count (or anything for small inputs) can pay for.
	if maxW := n / 64; workers > maxW {
		workers = maxW
	}
	if workers <= 1 {
		ataPanel(a, out.data, 0, n)
	} else {
		partials := make([][]float64, workers)
		chunk := (n + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				buf := make([]float64, k*k)
				ataPanel(a, buf, lo, hi)
				partials[w] = buf
			}(w, lo, hi)
		}
		wg.Wait()
		for _, buf := range partials {
			if buf == nil {
				continue
			}
			for i := 0; i < k; i++ {
				Axpy(1, buf[i*k+i:(i+1)*k], out.data[i*k+i:(i+1)*k])
			}
		}
	}
	// Mirror the upper triangle into the lower.
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			out.data[j*k+i] = out.data[i*k+j]
		}
	}
	return out
}

// ataPanel accumulates the upper triangle of Σ_{i∈[lo,hi)} rowᵢ·rowᵢᵀ into
// acc (a k×k row-major buffer): one suffix axpy per (row, leading index).
func ataPanel(a *Dense, acc []float64, lo, hi int) {
	k := a.cols
	for i := lo; i < hi; i++ {
		row := a.data[i*k : (i+1)*k]
		for j, v := range row {
			if v == 0 {
				continue
			}
			axpyUnitary(v, row[j:], acc[j*k+j:(j+1)*k])
		}
	}
}

// RowNormsSq returns ‖row‖² for every row of m — the cached-norm half of
// the D²(q,x) = ‖q‖² + ‖x‖² − 2⟨q,x⟩ batch-distance identity.
func RowNormsSq(m *Dense) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		out[i] = dotUnitary(row, row)
	}
	return out
}

// parallelRanges splits [0, n) into one contiguous chunk per worker and
// runs fn on each chunk concurrently, up to runtime.GOMAXPROCS(0) workers.
func parallelRanges(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
