package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{[]float64{0, 0}, []float64{1, 1}, 0},
		{[]float64{-1, 1}, []float64{1, 1}, 0},
		{[]float64{2}, []float64{3}, 6},
	}
	for _, tc := range cases {
		if got := Dot(tc.a, tc.b); got != tc.want {
			t.Fatalf("Dot(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorms(t *testing.T) {
	v := []float64{3, -4}
	if got := Norm2(v); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Norm1(v); got != 7 {
		t.Fatalf("Norm1 = %v, want 7", got)
	}
	if got := NormInf(v); got != 4 {
		t.Fatalf("NormInf = %v, want 4", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %v, want 0", got)
	}
}

func TestNorm2OverflowSafety(t *testing.T) {
	// Naive sum-of-squares would overflow; the scaled form must not.
	v := []float64{1e300, 1e300}
	want := 1e300 * math.Sqrt2
	if got := Norm2(v); math.Abs(got-want)/want > 1e-14 {
		t.Fatalf("Norm2 overflow-unsafe: got %v, want %v", got, want)
	}
	// Underflow side.
	u := []float64{1e-300, 1e-300}
	wantU := 1e-300 * math.Sqrt2
	if got := Norm2(u); math.Abs(got-wantU)/wantU > 1e-14 {
		t.Fatalf("Norm2 underflow-unsafe: got %v, want %v", got, wantU)
	}
}

func TestAxpyAndScale(t *testing.T) {
	y := []float64{1, 2, 3}
	Axpy(2, []float64{1, 1, 1}, y)
	if !VecEqual(y, []float64{3, 4, 5}, 0) {
		t.Fatalf("Axpy result %v", y)
	}
	Axpy(0, []float64{9, 9, 9}, y)
	if !VecEqual(y, []float64{3, 4, 5}, 0) {
		t.Fatalf("Axpy with alpha=0 modified y: %v", y)
	}
	ScaleVec(0.5, y)
	if !VecEqual(y, []float64{1.5, 2, 2.5}, 0) {
		t.Fatalf("ScaleVec result %v", y)
	}
}

func TestAddSubVec(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	if got := AddVec(a, b); !VecEqual(got, []float64{4, 7}, 0) {
		t.Fatalf("AddVec = %v", got)
	}
	if got := SubVec(b, a); !VecEqual(got, []float64{2, 3}, 0) {
		t.Fatalf("SubVec = %v", got)
	}
}

func TestNormalizeAndUnit(t *testing.T) {
	v := []float64{3, 4}
	n := Normalize(v)
	if math.Abs(n-5) > 1e-15 {
		t.Fatalf("Normalize returned %v, want 5", n)
	}
	if math.Abs(Norm2(v)-1) > 1e-15 {
		t.Fatalf("normalized vector has norm %v", Norm2(v))
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 {
		t.Fatalf("Normalize(0) should return 0")
	}
	u := Unit([]float64{0, 2})
	if !VecEqual(u, []float64{0, 1}, 1e-15) {
		t.Fatalf("Unit = %v", u)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Unit of zero vector should panic")
		}
	}()
	Unit([]float64{0, 0})
}

func TestOuter(t *testing.T) {
	m := Outer([]float64{1, 2}, []float64{3, 4, 5})
	want := FromRows([][]float64{{3, 4, 5}, {6, 8, 10}})
	if !m.Equal(want, 0) {
		t.Fatalf("Outer = %v, want %v", m, want)
	}
}

func TestDist2(t *testing.T) {
	if got := Dist2([]float64{0, 0}, []float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Dist2 = %v, want 5", got)
	}
}

func TestCauchySchwarzProperty(t *testing.T) {
	// |a·b| <= ‖a‖‖b‖ for all vectors.
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		a, b = a[:n], b[:n]
		for _, v := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		return math.Abs(Dot(a, b)) <= Norm2(a)*Norm2(b)*(1+1e-10)+1e-300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = r.NormFloat64(), r.NormFloat64()
		}
		return Norm2(AddVec(a, b)) <= Norm2(a)+Norm2(b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
