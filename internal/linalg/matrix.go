// Package linalg provides the dense linear algebra substrate used by the
// dimensionality-reduction library: matrices, vectors, decompositions
// (symmetric eigendecomposition, QR, LU, Cholesky, SVD) and the norms and
// solvers built on top of them.
//
// The package is self-contained (standard library only) and tuned for the
// moderate problem sizes that arise in similarity-search dimensionality
// reduction: covariance matrices up to a few hundred rows and data matrices
// with up to a few hundred thousand entries. All matrices are dense and
// stored row-major.
//
// Conventions:
//   - Dimension mismatches are programming errors and panic.
//   - Numerical failures (singular systems, non-convergence) return errors.
//   - Decompositions never alias or mutate their inputs unless documented.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a dense row-major matrix of float64 values.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense creates an r x c zero matrix.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData creates an r x c matrix backed by data (not copied).
// len(data) must equal r*c.
func NewDenseData(r, c int, data []float64) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", r, c))
	}
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// FromRows builds a matrix from a slice of equal-length rows (copied).
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows requires at least one non-empty row")
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d entries, want %d", i, len(row), c))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with the given diagonal.
func Diag(d []float64) *Dense {
	m := NewDense(len(d), len(d))
	for i, v := range d {
		m.data[i*len(d)+i] = v
	}
	return m
}

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of bounds for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a newly allocated slice.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of bounds for %dx%d matrix", i, m.rows, m.cols))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RawRow returns row i as a sub-slice of the backing storage. Mutating the
// returned slice mutates the matrix.
func (m *Dense) RawRow(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of bounds for %dx%d matrix", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns column j as a newly allocated slice.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: column %d out of bounds for %dx%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("linalg: SetRow length %d, want %d", len(v), m.cols))
	}
	copy(m.RawRow(i), v)
}

// SetCol copies v into column j.
func (m *Dense) SetCol(j int, v []float64) {
	if len(v) != m.rows {
		panic(fmt.Sprintf("linalg: SetCol length %d, want %d", len(v), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Scale multiplies every element by s in place and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddMat returns m + b as a new matrix.
func (m *Dense) AddMat(b *Dense) *Dense {
	m.checkSameDims(b, "AddMat")
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out
}

// SubMat returns m - b as a new matrix.
func (m *Dense) SubMat(b *Dense) *Dense {
	m.checkSameDims(b, "SubMat")
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out
}

func (m *Dense) checkSameDims(b *Dense, op string) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("linalg: %s dimension mismatch %dx%d vs %dx%d", op, m.rows, m.cols, b.rows, b.cols))
	}
}

// Mul returns the matrix product m * b.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d * %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	// ikj loop order for cache friendliness on row-major storage.
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k := 0; k < m.cols; k++ {
			a := mrow[k]
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m * x.
func (m *Dense) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d * %d", m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = Dot(m.data[i*m.cols:(i+1)*m.cols], x)
	}
	return out
}

// MulVecT returns the vector-matrix product xᵀ * m (i.e. mᵀ * x).
func (m *Dense) MulVecT(x []float64) []float64 {
	if m.rows != len(x) {
		panic(fmt.Sprintf("linalg: MulVecT dimension mismatch %d * %dx%d", len(x), m.rows, m.cols))
	}
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.data[i*m.cols+j]-m.data[j*m.cols+i]) > tol {
				return false
			}
		}
	}
	return true
}

// Trace returns the sum of the diagonal of a square matrix.
func (m *Dense) Trace() float64 {
	if m.rows != m.cols {
		panic(fmt.Sprintf("linalg: Trace of non-square %dx%d matrix", m.rows, m.cols))
	}
	t := 0.0
	for i := 0; i < m.rows; i++ {
		t += m.data[i*m.cols+i]
	}
	return t
}

// Equal reports whether m and b have the same shape and all entries agree to
// within tol.
func (m *Dense) Equal(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbs returns the largest absolute entry of m.
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	return Norm2(m.data)
}

// RowSlice returns a view of rows [lo, hi) that shares m's backing storage
// (no copy); mutations are visible through both. It is how the batch engine
// carves query blocks and data tiles without touching the data.
func (m *Dense) RowSlice(lo, hi int) *Dense {
	if lo < 0 || hi > m.rows || lo >= hi {
		panic(fmt.Sprintf("linalg: RowSlice [%d,%d) out of range for %d rows", lo, hi, m.rows))
	}
	return &Dense{rows: hi - lo, cols: m.cols, data: m.data[lo*m.cols : hi*m.cols]}
}

// SliceCols returns a copy of m restricted to the given column indices, in
// the order provided.
func (m *Dense) SliceCols(cols []int) *Dense {
	if len(cols) == 0 {
		panic("linalg: SliceCols requires at least one column")
	}
	out := NewDense(m.rows, len(cols))
	for i := 0; i < m.rows; i++ {
		src := m.data[i*m.cols : (i+1)*m.cols]
		dst := out.data[i*out.cols : (i+1)*out.cols]
		for k, j := range cols {
			if j < 0 || j >= m.cols {
				panic(fmt.Sprintf("linalg: SliceCols column %d out of range [0,%d)", j, m.cols))
			}
			dst[k] = src[j]
		}
	}
	return out
}

// SliceRows returns a copy of m restricted to the given row indices, in the
// order provided.
func (m *Dense) SliceRows(rows []int) *Dense {
	if len(rows) == 0 {
		panic("linalg: SliceRows requires at least one row")
	}
	out := NewDense(len(rows), m.cols)
	for k, i := range rows {
		if i < 0 || i >= m.rows {
			panic(fmt.Sprintf("linalg: SliceRows row %d out of range [0,%d)", i, m.rows))
		}
		copy(out.data[k*out.cols:(k+1)*out.cols], m.data[i*m.cols:(i+1)*m.cols])
	}
	return out
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense) String() string {
	const maxShow = 8
	var sb strings.Builder
	fmt.Fprintf(&sb, "Dense(%dx%d)[\n", m.rows, m.cols)
	for i := 0; i < m.rows && i < maxShow; i++ {
		sb.WriteString("  ")
		for j := 0; j < m.cols && j < maxShow; j++ {
			fmt.Fprintf(&sb, "% .4g ", m.At(i, j))
		}
		if m.cols > maxShow {
			sb.WriteString("...")
		}
		sb.WriteString("\n")
	}
	if m.rows > maxShow {
		sb.WriteString("  ...\n")
	}
	sb.WriteString("]")
	return sb.String()
}
