package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestPowerIterationDiagonal(t *testing.T) {
	a := Diag([]float64{1, 5, 2})
	rng := rand.New(rand.NewSource(1))
	lambda, v, err := PowerIteration(a, 0, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lambda-5) > 1e-9 {
		t.Fatalf("dominant eigenvalue = %v", lambda)
	}
	if math.Abs(math.Abs(v[1])-1) > 1e-6 {
		t.Fatalf("dominant eigenvector = %v", v)
	}
}

func TestPowerIterationMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		b := randDense(rng, 30, 20)
		a := b.T().Mul(b) // PSD: dominant eigenvalue is the largest one
		lambda, v, err := PowerIteration(a, 0, 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		ed, err := EigSym(a)
		if err != nil {
			t.Fatal(err)
		}
		want := ed.Values[len(ed.Values)-1]
		if math.Abs(lambda-want) > 1e-6*(1+want) {
			t.Fatalf("power %v vs dense %v", lambda, want)
		}
		// Residual ‖Av − λv‖ small.
		res := SubVec(a.MulVec(v), func() []float64 {
			out := make([]float64, len(v))
			copy(out, v)
			ScaleVec(lambda, out)
			return out
		}())
		if Norm2(res) > 1e-5*(1+lambda) {
			t.Fatalf("power residual %v", Norm2(res))
		}
	}
}

func TestPowerIterationZeroMatrix(t *testing.T) {
	a := NewDense(4, 4)
	rng := rand.New(rand.NewSource(3))
	lambda, _, err := PowerIteration(a, 0, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if lambda != 0 {
		t.Fatalf("zero matrix eigenvalue = %v", lambda)
	}
}

func TestPowerIterationRejectsNonSquare(t *testing.T) {
	if _, _, err := PowerIteration(NewDense(2, 3), 0, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatalf("non-square accepted")
	}
}

func TestTopKEigenMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, tc := range []struct{ n, k int }{
		{20, 3},   // dense fallback (small n)
		{100, 5},  // Lanczos path
		{150, 10}, // Lanczos path
		{80, 40},  // dense fallback (large k)
	} {
		b := randDense(rng, tc.n+30, tc.n)
		a := b.T().Mul(b).Scale(1 / float64(tc.n+30))
		vals, vecs, err := TopKEigen(a, tc.k, rng)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		ed, err := EigSym(a)
		if err != nil {
			t.Fatal(err)
		}
		dense, _ := ed.Descending()
		for i := 0; i < tc.k; i++ {
			if math.Abs(vals[i]-dense[i]) > 1e-6*(1+dense[i]) {
				t.Fatalf("n=%d k=%d: eigenvalue %d: %v vs %v", tc.n, tc.k, i, vals[i], dense[i])
			}
			// Each returned vector is a true eigenvector: small residual.
			v := vecs.Col(i)
			av := a.MulVec(v)
			for j := range av {
				av[j] -= vals[i] * v[j]
			}
			if Norm2(av) > 1e-6*(1+vals[i]) {
				t.Fatalf("n=%d k=%d: residual of pair %d = %v", tc.n, tc.k, i, Norm2(av))
			}
		}
		// Orthonormal columns.
		if !vecs.T().Mul(vecs).Equal(Identity(tc.k), 1e-8) {
			t.Fatalf("n=%d k=%d: Ritz vectors not orthonormal", tc.n, tc.k)
		}
	}
}

func TestTopKEigenLowRankEarlyTermination(t *testing.T) {
	// Rank-2 matrix in 100 dims: Lanczos finds the invariant subspace in a
	// couple of steps and must not fail.
	rng := rand.New(rand.NewSource(5))
	u1 := make([]float64, 100)
	u2 := make([]float64, 100)
	for i := range u1 {
		u1[i] = rng.NormFloat64()
		u2[i] = rng.NormFloat64()
	}
	Normalize(u1)
	Axpy(-Dot(u1, u2), u1, u2)
	Normalize(u2)
	a := Outer(u1, u1).Scale(9).AddMat(Outer(u2, u2).Scale(4))
	vals, _, err := TopKEigen(a, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-9) > 1e-7 || math.Abs(vals[1]-4) > 1e-7 {
		t.Fatalf("rank-2 eigenvalues = %v", vals)
	}
}

func TestTopKEigenValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := Identity(5)
	if _, _, err := TopKEigen(NewDense(2, 3), 1, rng); err == nil {
		t.Fatalf("non-square accepted")
	}
	if _, _, err := TopKEigen(a, 0, rng); err == nil {
		t.Fatalf("k=0 accepted")
	}
	if _, _, err := TopKEigen(a, 6, rng); err == nil {
		t.Fatalf("k>n accepted")
	}
}
