// AVX2 integer kernels for the Q15 quantized-query scan: exact int64
// dots s = Σ u[j]·c[j] of 15-bit query codes u against uint8/uint16 data
// codes c, evaluated with VPMADDWD (16-bit multiply, pairwise i32 add).
//
// Exactness argument, which is what lets the Go wrappers compose head and
// tail without a parity tolerance:
//   u8 codes:  VPMOVZXBW widens c to i16; each VPMADDWD pair sum is at
//              most 2·32767·255 = 16 711 170, so a 32-bit lane can absorb
//              128 iterations before overflow. The loops drain the i32
//              accumulators into i64 lanes every 64 iterations (1024
//              dims), staying 2× inside that bound.
//   u16 codes: c is XORed with 0x8000, which reinterprets the unsigned
//              code as the signed value c−32768 (same 16 bits). Pair sums
//              then satisfy |pair| ≤ 2·32767·32768 < 2³¹, exact in one
//              i32, and are widened to i64 every iteration. The identity
//              Σu·c = Σu·(c−32768) + 32768·Σu is restored at the end from
//              an i32 running Σu (exact for d ≤ 65536).
//
// Callers guarantee len(u) == len(c), len(u) ≡ 0 (mod 16), and every
// u[j] ≤ 32767; the Go dispatch wrappers handle the scalar tail.

#include "textflag.h"

DATA q15flip<>+0(SB)/8, $0x8000800080008000
DATA q15flip<>+8(SB)/8, $0x8000800080008000
DATA q15flip<>+16(SB)/8, $0x8000800080008000
DATA q15flip<>+24(SB)/8, $0x8000800080008000
GLOBL q15flip<>(SB), RODATA|NOPTR, $32

DATA q15ones<>+0(SB)/8, $0x0001000100010001
DATA q15ones<>+8(SB)/8, $0x0001000100010001
DATA q15ones<>+16(SB)/8, $0x0001000100010001
DATA q15ones<>+24(SB)/8, $0x0001000100010001
GLOBL q15ones<>(SB), RODATA|NOPTR, $32

// func dotQ15U8AVX2(u []uint16, c []uint8) int64
//
// 16 codes per iteration into a 32-bit accumulator, drained to two i64
// quad-lanes every 64 iterations.
TEXT ·dotQ15U8AVX2(SB), NOSPLIT, $0-56
	MOVQ u_base+0(FP), SI
	MOVQ c_base+24(FP), DI
	MOVQ u_len+8(FP), CX
	SHRQ $4, CX
	VPXOR Y1, Y1, Y1 // i64 accumulator, low half drains
	VPXOR Y2, Y2, Y2 // i64 accumulator, high half drains
	TESTQ CX, CX
	JZ    q15u8reduce

q15u8outer:
	MOVQ $64, DX
	CMPQ CX, DX
	JAE  q15u8block
	MOVQ CX, DX

q15u8block:
	SUBQ DX, CX
	VPXOR Y0, Y0, Y0 // fresh i32 accumulator for this block

q15u8inner:
	VMOVDQU (SI), Y4   // 16 query codes, i16 ≤ 32767
	VPMOVZXBW (DI), Y5 // 16 data codes widened to i16
	VPMADDWD Y4, Y5, Y5
	VPADDD Y5, Y0, Y0
	ADDQ $32, SI
	ADDQ $16, DI
	DECQ DX
	JNZ  q15u8inner

	VPMOVSXDQ X0, Y4
	VPADDQ Y4, Y1, Y1
	VEXTRACTI128 $1, Y0, X0
	VPMOVSXDQ X0, Y4
	VPADDQ Y4, Y2, Y2
	TESTQ CX, CX
	JNZ   q15u8outer

q15u8reduce:
	VPADDQ Y2, Y1, Y1
	VEXTRACTI128 $1, Y1, X2
	VPADDQ X2, X1, X1
	VPEXTRQ $1, X1, BX
	MOVQ X1, AX
	ADDQ BX, AX
	VZEROUPPER
	MOVQ AX, ret+48(FP)
	RET

// func dotQ15U16AVX2(u []uint16, c []uint16) int64
//
// Offset-corrected form: pairs of u·(c−32768) are exact in i32 and
// widened to i64 every iteration; 32768·Σu is added back at the end.
TEXT ·dotQ15U16AVX2(SB), NOSPLIT, $0-56
	MOVQ u_base+0(FP), SI
	MOVQ c_base+24(FP), DI
	MOVQ u_len+8(FP), CX
	SHRQ $4, CX
	VPXOR Y1, Y1, Y1    // i64 accumulator, low half
	VPXOR Y2, Y2, Y2    // i64 accumulator, high half
	VPXOR Y13, Y13, Y13 // i32 running Σu
	VMOVDQU q15flip<>(SB), Y15
	VMOVDQU q15ones<>(SB), Y14
	TESTQ CX, CX
	JZ    q15u16reduce

q15u16loop:
	VMOVDQU (SI), Y4 // 16 query codes
	VMOVDQU (DI), Y5 // 16 data codes
	VPXOR Y15, Y5, Y5   // c − 32768 as i16
	VPMADDWD Y4, Y5, Y5 // 8 exact i32 pair sums
	VPMADDWD Y14, Y4, Y6
	VPADDD Y6, Y13, Y13 // Σu += pairwise u sums
	VPMOVSXDQ X5, Y6
	VPADDQ Y6, Y1, Y1
	VEXTRACTI128 $1, Y5, X5
	VPMOVSXDQ X5, Y6
	VPADDQ Y6, Y2, Y2
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  q15u16loop

q15u16reduce:
	VPADDQ Y2, Y1, Y1
	VEXTRACTI128 $1, Y1, X2
	VPADDQ X2, X1, X1
	VPEXTRQ $1, X1, BX
	MOVQ X1, AX
	ADDQ BX, AX
	VEXTRACTI128 $1, Y13, X5
	VPADDD X5, X13, X13
	VPHADDD X13, X13, X13
	VPHADDD X13, X13, X13
	VMOVD X13, BX // Σu < 2³¹ for d ≤ 65536, zero-extended
	SHLQ $15, BX  // 32768·Σu
	ADDQ BX, AX
	VZEROUPPER
	MOVQ AX, ret+48(FP)
	RET

// func dotQ15U8x4AVX2(u []uint16, rows *uint8, stride int, out *[4]int64)
//
// Four u8 rows per call: each 16-code query chunk is loaded once and
// VPMADDWD'd against all four rows, quartering query-side loads. Same
// overflow discipline as the unitary kernel (drain every 64 iterations);
// the four row sums ride in Y4..Y7 as i64 quad-lanes.
//
// All multi-row kernels share one prefetch scheme: at entry, touch the
// start of each row of the *next* call's window (this window's rows +
// rows·stride), so a streaming sweep has its upcoming misses in flight
// while the current window computes. PREFETCHT0 never faults, so the
// hint is safe even on the final window of a scan.
TEXT ·dotQ15U8x4AVX2(SB), NOSPLIT, $0-48
	MOVQ u_base+0(FP), SI
	MOVQ u_len+8(FP), CX
	MOVQ rows+24(FP), R8
	MOVQ stride+32(FP), R12
	SHRQ $4, CX
	MOVQ R8, R9
	ADDQ R12, R9
	MOVQ R9, R10
	ADDQ R12, R10
	MOVQ R10, R11
	ADDQ R12, R11

	MOVQ R12, AX
	SHLQ $2, AX // next-window offset = 4·stride
	PREFETCHT0 (R8)(AX*1)
	PREFETCHT0 (R9)(AX*1)
	PREFETCHT0 (R10)(AX*1)
	PREFETCHT0 (R11)(AX*1)

	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7
	TESTQ CX, CX
	JZ    q15u8x4done

q15u8x4outer:
	MOVQ $64, DX
	CMPQ CX, DX
	JAE  q15u8x4block
	MOVQ CX, DX

q15u8x4block:
	SUBQ DX, CX
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3

q15u8x4inner:
	VMOVDQU (SI), Y8 // query chunk, shared by the four rows
	VPMOVZXBW (R8), Y9
	VPMADDWD Y8, Y9, Y9
	VPADDD Y9, Y0, Y0
	VPMOVZXBW (R9), Y9
	VPMADDWD Y8, Y9, Y9
	VPADDD Y9, Y1, Y1
	VPMOVZXBW (R10), Y9
	VPMADDWD Y8, Y9, Y9
	VPADDD Y9, Y2, Y2
	VPMOVZXBW (R11), Y9
	VPMADDWD Y8, Y9, Y9
	VPADDD Y9, Y3, Y3
	ADDQ $32, SI
	ADDQ $16, R8
	ADDQ $16, R9
	ADDQ $16, R10
	ADDQ $16, R11
	DECQ DX
	JNZ  q15u8x4inner

	VPMOVSXDQ X0, Y9
	VPADDQ Y9, Y4, Y4
	VEXTRACTI128 $1, Y0, X0
	VPMOVSXDQ X0, Y9
	VPADDQ Y9, Y4, Y4
	VPMOVSXDQ X1, Y9
	VPADDQ Y9, Y5, Y5
	VEXTRACTI128 $1, Y1, X1
	VPMOVSXDQ X1, Y9
	VPADDQ Y9, Y5, Y5
	VPMOVSXDQ X2, Y9
	VPADDQ Y9, Y6, Y6
	VEXTRACTI128 $1, Y2, X2
	VPMOVSXDQ X2, Y9
	VPADDQ Y9, Y6, Y6
	VPMOVSXDQ X3, Y9
	VPADDQ Y9, Y7, Y7
	VEXTRACTI128 $1, Y3, X3
	VPMOVSXDQ X3, Y9
	VPADDQ Y9, Y7, Y7
	TESTQ CX, CX
	JNZ   q15u8x4outer

q15u8x4done:
	MOVQ out+40(FP), DI
	VEXTRACTI128 $1, Y4, X9
	VPADDQ X9, X4, X4
	VPEXTRQ $1, X4, BX
	MOVQ X4, AX
	ADDQ BX, AX
	MOVQ AX, (DI)
	VEXTRACTI128 $1, Y5, X9
	VPADDQ X9, X5, X5
	VPEXTRQ $1, X5, BX
	MOVQ X5, AX
	ADDQ BX, AX
	MOVQ AX, 8(DI)
	VEXTRACTI128 $1, Y6, X9
	VPADDQ X9, X6, X6
	VPEXTRQ $1, X6, BX
	MOVQ X6, AX
	ADDQ BX, AX
	MOVQ AX, 16(DI)
	VEXTRACTI128 $1, Y7, X9
	VPADDQ X9, X7, X7
	VPEXTRQ $1, X7, BX
	MOVQ X7, AX
	ADDQ BX, AX
	MOVQ AX, 24(DI)
	VZEROUPPER
	RET

// func dotQ15U16x4AVX2(u []uint16, rows *uint16, stride int, out *[4]int64)
//
// Four u16 rows per call with the same offset-corrected form as the
// unitary u16 kernel; stride is in codes, Σu is accumulated once per
// iteration and the 32768·Σu correction is added to all four outputs.
TEXT ·dotQ15U16x4AVX2(SB), NOSPLIT, $0-48
	MOVQ u_base+0(FP), SI
	MOVQ u_len+8(FP), CX
	MOVQ rows+24(FP), R8
	MOVQ stride+32(FP), R12
	SHLQ $1, R12 // code stride → byte stride
	SHRQ $4, CX
	MOVQ R8, R9
	ADDQ R12, R9
	MOVQ R9, R10
	ADDQ R12, R10
	MOVQ R10, R11
	ADDQ R12, R11

	// Next-window row-start prefetch, same scheme as the u8 multi-row
	// kernels (R12 is already the byte stride here).
	MOVQ R12, AX
	SHLQ $2, AX
	PREFETCHT0 (R8)(AX*1)
	PREFETCHT0 (R9)(AX*1)
	PREFETCHT0 (R10)(AX*1)
	PREFETCHT0 (R11)(AX*1)

	VPXOR Y0, Y0, Y0 // per-row i64 accumulators
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y13, Y13, Y13 // i32 running Σu
	VMOVDQU q15flip<>(SB), Y15
	VMOVDQU q15ones<>(SB), Y14
	TESTQ CX, CX
	JZ    q15u16x4done

q15u16x4loop:
	VMOVDQU (SI), Y8 // query chunk, shared by the four rows
	VPMADDWD Y14, Y8, Y9
	VPADDD Y9, Y13, Y13
	VMOVDQU (R8), Y9
	VPXOR Y15, Y9, Y9
	VPMADDWD Y8, Y9, Y9
	VPMOVSXDQ X9, Y10
	VPADDQ Y10, Y0, Y0
	VEXTRACTI128 $1, Y9, X9
	VPMOVSXDQ X9, Y10
	VPADDQ Y10, Y0, Y0
	VMOVDQU (R9), Y9
	VPXOR Y15, Y9, Y9
	VPMADDWD Y8, Y9, Y9
	VPMOVSXDQ X9, Y10
	VPADDQ Y10, Y1, Y1
	VEXTRACTI128 $1, Y9, X9
	VPMOVSXDQ X9, Y10
	VPADDQ Y10, Y1, Y1
	VMOVDQU (R10), Y9
	VPXOR Y15, Y9, Y9
	VPMADDWD Y8, Y9, Y9
	VPMOVSXDQ X9, Y10
	VPADDQ Y10, Y2, Y2
	VEXTRACTI128 $1, Y9, X9
	VPMOVSXDQ X9, Y10
	VPADDQ Y10, Y2, Y2
	VMOVDQU (R11), Y9
	VPXOR Y15, Y9, Y9
	VPMADDWD Y8, Y9, Y9
	VPMOVSXDQ X9, Y10
	VPADDQ Y10, Y3, Y3
	VEXTRACTI128 $1, Y9, X9
	VPMOVSXDQ X9, Y10
	VPADDQ Y10, Y3, Y3
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	DECQ CX
	JNZ  q15u16x4loop

q15u16x4done:
	VEXTRACTI128 $1, Y13, X9
	VPADDD X9, X13, X13
	VPHADDD X13, X13, X13
	VPHADDD X13, X13, X13
	VMOVD X13, DX
	SHLQ $15, DX // 32768·Σu, added to every row sum
	MOVQ out+40(FP), DI
	VEXTRACTI128 $1, Y0, X9
	VPADDQ X9, X0, X0
	VPEXTRQ $1, X0, BX
	MOVQ X0, AX
	ADDQ BX, AX
	ADDQ DX, AX
	MOVQ AX, (DI)
	VEXTRACTI128 $1, Y1, X9
	VPADDQ X9, X1, X1
	VPEXTRQ $1, X1, BX
	MOVQ X1, AX
	ADDQ BX, AX
	ADDQ DX, AX
	MOVQ AX, 8(DI)
	VEXTRACTI128 $1, Y2, X9
	VPADDQ X9, X2, X2
	VPEXTRQ $1, X2, BX
	MOVQ X2, AX
	ADDQ BX, AX
	ADDQ DX, AX
	MOVQ AX, 16(DI)
	VEXTRACTI128 $1, Y3, X9
	VPADDQ X9, X3, X3
	VPEXTRQ $1, X3, BX
	MOVQ X3, AX
	ADDQ BX, AX
	ADDQ DX, AX
	MOVQ AX, 24(DI)
	VZEROUPPER
	RET

// func dotQ15U8x8AVX2(u []uint16, rows *uint8, stride int, out *[8]int64)
//
// Eight u8 rows per call — the memory-level-parallelism kernel of the
// streaming scan. Four row streams leave too few independent misses in
// flight to cover DRAM latency on a sequential sweep; eight streams plus
// the next-window prefetch roughly double the sustained bandwidth of the
// ×4 form on uncached data. The price is register pressure: with eight
// i32 accumulators (Y0..Y7), the query chunk, and one temporary there is
// no room for i64 drain lanes, so the accumulators are widened exactly
// once at the end. Pair sums are ≤ 2·32767·255, so 64 iterations — 1024
// codes — stay inside i32; the Go wrapper routes longer inputs through
// two ×4 calls instead.
TEXT ·dotQ15U8x8AVX2(SB), NOSPLIT, $0-48
	MOVQ u_base+0(FP), SI
	MOVQ u_len+8(FP), CX
	MOVQ rows+24(FP), R8
	MOVQ stride+32(FP), R12
	SHRQ $4, CX
	MOVQ R8, R9
	ADDQ R12, R9
	MOVQ R9, R10
	ADDQ R12, R10
	MOVQ R10, R11
	ADDQ R12, R11
	MOVQ R11, R13
	ADDQ R12, R13
	MOVQ R13, DX
	ADDQ R12, DX
	MOVQ DX, BX
	ADDQ R12, BX
	MOVQ BX, AX
	ADDQ R12, AX

	SHLQ $3, R12 // next-window offset = 8·stride; stride not needed again
	PREFETCHT0 (R8)(R12*1)
	PREFETCHT0 (R9)(R12*1)
	PREFETCHT0 (R10)(R12*1)
	PREFETCHT0 (R11)(R12*1)
	PREFETCHT0 (R13)(R12*1)
	PREFETCHT0 (DX)(R12*1)
	PREFETCHT0 (BX)(R12*1)
	PREFETCHT0 (AX)(R12*1)
	MOVQ CX, R12 // iteration count, selects the reduce path at the end

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7
	TESTQ CX, CX
	JZ    q15u8x8done

q15u8x8inner:
	VMOVDQU (SI), Y8 // query chunk, shared by all eight rows
	VPMOVZXBW (R8), Y9
	VPMADDWD Y8, Y9, Y9
	VPADDD Y9, Y0, Y0
	VPMOVZXBW (R9), Y9
	VPMADDWD Y8, Y9, Y9
	VPADDD Y9, Y1, Y1
	VPMOVZXBW (R10), Y9
	VPMADDWD Y8, Y9, Y9
	VPADDD Y9, Y2, Y2
	VPMOVZXBW (R11), Y9
	VPMADDWD Y8, Y9, Y9
	VPADDD Y9, Y3, Y3
	VPMOVZXBW (R13), Y9
	VPMADDWD Y8, Y9, Y9
	VPADDD Y9, Y4, Y4
	VPMOVZXBW (DX), Y9
	VPMADDWD Y8, Y9, Y9
	VPADDD Y9, Y5, Y5
	VPMOVZXBW (BX), Y9
	VPMADDWD Y8, Y9, Y9
	VPADDD Y9, Y6, Y6
	VPMOVZXBW (AX), Y9
	VPMADDWD Y8, Y9, Y9
	VPADDD Y9, Y7, Y7
	ADDQ $32, SI
	ADDQ $16, R8
	ADDQ $16, R9
	ADDQ $16, R10
	ADDQ $16, R11
	ADDQ $16, R13
	ADDQ $16, DX
	ADDQ $16, BX
	ADDQ $16, AX
	DECQ CX
	JNZ  q15u8x8inner

q15u8x8done:
	MOVQ out+40(FP), DI
	CMPQ R12, $16
	JA   q15u8x8wide

	// ≤ 16 iterations (256 codes): every row total fits i32 — 8 lanes of
	// at most 16 pair sums ≤ 2·32767·255 each is < 2³¹ — so a VPHADDD
	// tree collapses all eight rows in a dozen instructions. This is the
	// path the store's 64-dim prefix sweep takes, where the reduce would
	// otherwise rival the 4-iteration dot loop itself.
	VPHADDD Y1, Y0, Y0
	VPHADDD Y3, Y2, Y2
	VPHADDD Y2, Y0, Y0 // rows 0..3, halves split across 128-bit lanes
	VPHADDD Y5, Y4, Y4
	VPHADDD Y7, Y6, Y6
	VPHADDD Y6, Y4, Y4 // rows 4..7
	VEXTRACTI128 $1, Y0, X1
	VPADDD X1, X0, X0 // [row0 row1 row2 row3] as i32
	VEXTRACTI128 $1, Y4, X5
	VPADDD X5, X4, X4 // [row4 row5 row6 row7] as i32
	VPMOVSXDQ X0, Y0
	VMOVDQU Y0, (DI)
	VPMOVSXDQ X4, Y4
	VMOVDQU Y4, 32(DI)
	VZEROUPPER
	RET

q15u8x8wide:
	VPMOVSXDQ X0, Y9
	VEXTRACTI128 $1, Y0, X0
	VPMOVSXDQ X0, Y10
	VPADDQ Y10, Y9, Y9
	VEXTRACTI128 $1, Y9, X10
	VPADDQ X10, X9, X9
	VPEXTRQ $1, X9, BX
	MOVQ X9, AX
	ADDQ BX, AX
	MOVQ AX, (DI)

	VPMOVSXDQ X1, Y9
	VEXTRACTI128 $1, Y1, X1
	VPMOVSXDQ X1, Y10
	VPADDQ Y10, Y9, Y9
	VEXTRACTI128 $1, Y9, X10
	VPADDQ X10, X9, X9
	VPEXTRQ $1, X9, BX
	MOVQ X9, AX
	ADDQ BX, AX
	MOVQ AX, 8(DI)

	VPMOVSXDQ X2, Y9
	VEXTRACTI128 $1, Y2, X2
	VPMOVSXDQ X2, Y10
	VPADDQ Y10, Y9, Y9
	VEXTRACTI128 $1, Y9, X10
	VPADDQ X10, X9, X9
	VPEXTRQ $1, X9, BX
	MOVQ X9, AX
	ADDQ BX, AX
	MOVQ AX, 16(DI)

	VPMOVSXDQ X3, Y9
	VEXTRACTI128 $1, Y3, X3
	VPMOVSXDQ X3, Y10
	VPADDQ Y10, Y9, Y9
	VEXTRACTI128 $1, Y9, X10
	VPADDQ X10, X9, X9
	VPEXTRQ $1, X9, BX
	MOVQ X9, AX
	ADDQ BX, AX
	MOVQ AX, 24(DI)

	VPMOVSXDQ X4, Y9
	VEXTRACTI128 $1, Y4, X4
	VPMOVSXDQ X4, Y10
	VPADDQ Y10, Y9, Y9
	VEXTRACTI128 $1, Y9, X10
	VPADDQ X10, X9, X9
	VPEXTRQ $1, X9, BX
	MOVQ X9, AX
	ADDQ BX, AX
	MOVQ AX, 32(DI)

	VPMOVSXDQ X5, Y9
	VEXTRACTI128 $1, Y5, X5
	VPMOVSXDQ X5, Y10
	VPADDQ Y10, Y9, Y9
	VEXTRACTI128 $1, Y9, X10
	VPADDQ X10, X9, X9
	VPEXTRQ $1, X9, BX
	MOVQ X9, AX
	ADDQ BX, AX
	MOVQ AX, 40(DI)

	VPMOVSXDQ X6, Y9
	VEXTRACTI128 $1, Y6, X6
	VPMOVSXDQ X6, Y10
	VPADDQ Y10, Y9, Y9
	VEXTRACTI128 $1, Y9, X10
	VPADDQ X10, X9, X9
	VPEXTRQ $1, X9, BX
	MOVQ X9, AX
	ADDQ BX, AX
	MOVQ AX, 48(DI)

	VPMOVSXDQ X7, Y9
	VEXTRACTI128 $1, Y7, X7
	VPMOVSXDQ X7, Y10
	VPADDQ Y10, Y9, Y9
	VEXTRACTI128 $1, Y9, X10
	VPADDQ X10, X9, X9
	VPEXTRQ $1, X9, BX
	MOVQ X9, AX
	ADDQ BX, AX
	MOVQ AX, 56(DI)

	VZEROUPPER
	RET
