package linalg

import (
	"errors"
	"fmt"
	"math"
)

// QRDecomposition holds a Householder QR factorization A = Q R of an m x n
// matrix with m >= n. Q is m x n with orthonormal columns (thin Q) and R is
// n x n upper triangular.
type QRDecomposition struct {
	Q *Dense
	R *Dense
}

// QR computes the thin Householder QR factorization of a (m >= n required).
// The input is not modified.
func QR(a *Dense) (*QRDecomposition, error) {
	m, n := a.Dims()
	if m < n {
		return nil, fmt.Errorf("linalg: QR requires rows >= cols, got %dx%d", m, n)
	}
	r := a.Clone()
	// Store Householder vectors column by column; accumulate Q afterwards.
	vs := make([][]float64, n)
	for k := 0; k < n; k++ {
		// Build the Householder vector for column k below the diagonal.
		col := make([]float64, m-k)
		for i := k; i < m; i++ {
			col[i-k] = r.At(i, k)
		}
		alpha := Norm2(col)
		if alpha == 0 {
			vs[k] = nil
			continue
		}
		if col[0] > 0 {
			alpha = -alpha
		}
		v := make([]float64, m-k)
		copy(v, col)
		v[0] -= alpha
		vn := Norm2(v)
		if vn == 0 {
			vs[k] = nil
			r.Set(k, k, alpha)
			continue
		}
		ScaleVec(1/vn, v)
		vs[k] = v
		// Apply H = I - 2 v vᵀ to the trailing submatrix of R.
		for j := k; j < n; j++ {
			dot := 0.0
			for i := k; i < m; i++ {
				dot += v[i-k] * r.At(i, j)
			}
			dot *= 2
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-dot*v[i-k])
			}
		}
	}
	// Accumulate thin Q by applying the reflectors to the first n columns of
	// the identity, in reverse order.
	q := NewDense(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	for k := n - 1; k >= 0; k-- {
		v := vs[k]
		if v == nil {
			continue
		}
		for j := 0; j < n; j++ {
			dot := 0.0
			for i := k; i < m; i++ {
				dot += v[i-k] * q.At(i, j)
			}
			dot *= 2
			for i := k; i < m; i++ {
				q.Set(i, j, q.At(i, j)-dot*v[i-k])
			}
		}
	}
	// Zero the strictly-lower part of R and truncate to n x n.
	rn := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			rn.Set(i, j, r.At(i, j))
		}
	}
	return &QRDecomposition{Q: q, R: rn}, nil
}

// SolveLeastSquares solves min ‖a x − b‖₂ via QR. a must have rows >= cols
// and full column rank.
func SolveLeastSquares(a *Dense, b []float64) ([]float64, error) {
	m, n := a.Dims()
	if len(b) != m {
		return nil, fmt.Errorf("linalg: SolveLeastSquares rhs length %d, want %d", len(b), m)
	}
	qr, err := QR(a)
	if err != nil {
		return nil, err
	}
	// x = R⁻¹ Qᵀ b
	qtb := qr.Q.MulVecT(b)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := qtb[i]
		for j := i + 1; j < n; j++ {
			s -= qr.R.At(i, j) * x[j]
		}
		rii := qr.R.At(i, i)
		if math.Abs(rii) < 1e-14*(1+math.Abs(s)) {
			return nil, errors.New("linalg: SolveLeastSquares: rank-deficient matrix")
		}
		x[i] = s / rii
	}
	return x, nil
}

// GramSchmidt orthonormalizes the columns of a using modified Gram-Schmidt
// with re-orthogonalization, returning a matrix with orthonormal columns
// spanning the same space. Columns that are (numerically) linearly dependent
// on earlier ones are dropped, so the result may have fewer columns.
func GramSchmidt(a *Dense) *Dense {
	m, n := a.Dims()
	cols := make([][]float64, 0, n)
	for j := 0; j < n; j++ {
		v := a.Col(j)
		orig := Norm2(v)
		if orig == 0 {
			continue
		}
		for pass := 0; pass < 2; pass++ {
			for _, u := range cols {
				Axpy(-Dot(u, v), u, v)
			}
		}
		if Norm2(v) < 1e-12*orig {
			continue // linearly dependent
		}
		Normalize(v)
		cols = append(cols, v)
	}
	if len(cols) == 0 {
		panic("linalg: GramSchmidt: all columns are zero")
	}
	out := NewDense(m, len(cols))
	for j, v := range cols {
		out.SetCol(j, v)
	}
	return out
}
