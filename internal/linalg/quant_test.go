package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// The quantized kernels carry the same two-implementation contract as the
// float kernels (see kernel_parity_test.go): forced-generic dispatch must
// be bit-identical to the generic kernel, and the platform's real dispatch
// may differ only by FMA rounding. parityDims covers below-asmMinLen (1,
// 7), an exact 16-multiple (16), and a long length with a scalar tail
// (166 = 10×16 + 6).

func randCodesU8(rng *rand.Rand, d int) []uint8 {
	c := make([]uint8, d)
	for i := range c {
		c[i] = uint8(rng.Intn(256))
	}
	return c
}

func randCodesU16(rng *rand.Rand, d int) []uint16 {
	c := make([]uint16, d)
	for i := range c {
		c[i] = uint16(rng.Intn(65536))
	}
	return c
}

func TestDotU8FallbackExactlyMatchesGeneric(t *testing.T) {
	forceGeneric(t)
	rng := rand.New(rand.NewSource(81))
	for _, d := range parityDims {
		for trial := 0; trial < 50; trial++ {
			w, c := randVec(rng, d), randCodesU8(rng, d)
			got, want := dotU8Unitary(w, c), dotU8Generic(w, c)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("d=%d trial=%d: forced-generic dotU8Unitary=%v, dotU8Generic=%v (must be bit-identical)", d, trial, got, want)
			}
		}
	}
}

func TestDotU16FallbackExactlyMatchesGeneric(t *testing.T) {
	forceGeneric(t)
	rng := rand.New(rand.NewSource(83))
	for _, d := range parityDims {
		for trial := 0; trial < 50; trial++ {
			w, c := randVec(rng, d), randCodesU16(rng, d)
			got, want := dotU16Unitary(w, c), dotU16Generic(w, c)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("d=%d trial=%d: forced-generic dotU16Unitary=%v, dotU16Generic=%v (must be bit-identical)", d, trial, got, want)
			}
		}
	}
}

// quantDotTol is the dispatched-path tolerance: FMA contraction and a
// different reduction tree may move the result by a few ulps relative to
// the operand scale, never structurally.
func quantDotTol(w []float64, maxCode float64) float64 {
	scale := 0.0
	for _, x := range w {
		scale += math.Abs(x) * maxCode
	}
	return 1e-14 * (scale + 1)
}

func TestDotU8DispatchWithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	for _, d := range parityDims {
		for trial := 0; trial < 50; trial++ {
			w, c := randVec(rng, d), randCodesU8(rng, d)
			got, want := DotU8(w, c), dotU8Generic(w, c)
			if math.Abs(got-want) > quantDotTol(w, 255) {
				t.Fatalf("d=%d trial=%d: DotU8=%v, generic=%v, |Δ|=%g beyond tolerance", d, trial, got, want, math.Abs(got-want))
			}
		}
	}
}

func TestDotU16DispatchWithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for _, d := range parityDims {
		for trial := 0; trial < 50; trial++ {
			w, c := randVec(rng, d), randCodesU16(rng, d)
			got, want := DotU16(w, c), dotU16Generic(w, c)
			if math.Abs(got-want) > quantDotTol(w, 65535) {
				t.Fatalf("d=%d trial=%d: DotU16=%v, generic=%v, |Δ|=%g beyond tolerance", d, trial, got, want, math.Abs(got-want))
			}
		}
	}
}

// Edge values: zero weights, extreme codes, saturating-scale weights. The
// kernels must agree structurally on inputs the random draws rarely hit.
func TestDotQuantEdgeValues(t *testing.T) {
	d := 37 // 2×16 + 5 tail
	w := make([]float64, d)
	c8 := make([]uint8, d)
	c16 := make([]uint16, d)
	for i := range w {
		switch i % 4 {
		case 0:
			w[i] = 0
		case 1:
			w[i] = 1e300
		case 2:
			w[i] = -1e-300
		default:
			w[i] = math.Pi
		}
		c8[i] = uint8(i % 2 * 255)
		c16[i] = uint16(i % 2 * 65535)
	}
	if got, want := DotU8(w, c8), dotU8Generic(w, c8); math.Abs(got-want) > quantDotTol(w, 255) {
		t.Fatalf("u8 edge: %v vs %v", got, want)
	}
	if got, want := DotU16(w, c16), dotU16Generic(w, c16); math.Abs(got-want) > quantDotTol(w, 65535) {
		t.Fatalf("u16 edge: %v vs %v", got, want)
	}
}

func TestDotQuantLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DotU8 with mismatched lengths must panic")
		}
	}()
	DotU8(make([]float64, 3), make([]uint8, 4))
}

func benchDotU8(b *testing.B, d int) {
	rng := rand.New(rand.NewSource(91))
	w, c := randVec(rng, d), randCodesU8(rng, d)
	b.SetBytes(int64(d))
	var s float64
	for i := 0; i < b.N; i++ {
		s += DotU8(w, c)
	}
	benchSinkQuant = s
}

// Same dimension grid as the integer Q15 benchmarks, for the
// float-vs-widening-vs-integer kernel table in EXPERIMENTS.md.
func BenchmarkDotU8_16(b *testing.B)  { benchDotU8(b, 16) }
func BenchmarkDotU8_64(b *testing.B)  { benchDotU8(b, 64) }
func BenchmarkDotU8_166(b *testing.B) { benchDotU8(b, 166) }

func BenchmarkDotU16_166(b *testing.B) {
	rng := rand.New(rand.NewSource(93))
	w, c := randVec(rng, 166), randCodesU16(rng, 166)
	b.SetBytes(2 * 166)
	var s float64
	for i := 0; i < b.N; i++ {
		s += DotU16(w, c)
	}
	benchSinkQuant = s
}

var benchSinkQuant float64
