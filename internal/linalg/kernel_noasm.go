//go:build !amd64

package linalg

// hasAVX2FMA is declared on every platform so tests can reference it; off
// amd64 it is always false and only the generic kernels run.
var hasAVX2FMA = false

func dotUnitary(a, b []float64) float64 { return dotGeneric(a, b) }

func axpyUnitary(alpha float64, x, y []float64) { axpyGeneric(alpha, x, y) }
