package knn

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// ContrastReport summarizes nearest/farthest-neighbor contrast for a query
// workload — the meaningfulness measure of Beyer et al. (the paper's
// reference [5]) discussed in §1.1: when the relative contrast
// (Dmax − Dmin)/Dmin approaches zero, the nearest neighbor is unstable and
// partition-based index pruning cannot work.
type ContrastReport struct {
	// MeanRelativeContrast is the average of (Dmax−Dmin)/Dmin over queries.
	MeanRelativeContrast float64
	// MeanRatio is the average Dmax/Dmin over queries.
	MeanRatio float64
	// MinRelativeContrast is the worst (smallest) per-query contrast seen.
	MinRelativeContrast float64
}

// RelativeContrast measures contrast of each query row against all data
// rows under the metric. Queries identical to a data point (distance 0) use
// the smallest nonzero distance as Dmin; a query where all distances are
// zero is rejected.
func RelativeContrast(data, queries *linalg.Dense, m Metric) (ContrastReport, error) {
	if data.Cols() != queries.Cols() {
		return ContrastReport{}, fmt.Errorf("knn: contrast dimension mismatch %d vs %d", data.Cols(), queries.Cols())
	}
	nq := queries.Rows()
	sumRel, sumRatio := 0.0, 0.0
	minRel := math.Inf(1)
	// Dimensions were validated above, so the scan uses the raw kernel.
	dist := rawDistanceFunc(m)
	for qi := 0; qi < nq; qi++ {
		q := queries.RawRow(qi)
		dmin, dmax := math.Inf(1), 0.0
		for i := 0; i < data.Rows(); i++ {
			d := dist(data.RawRow(i), q)
			if d == 0 {
				continue // skip exact duplicates of the query
			}
			if d < dmin {
				dmin = d
			}
			if d > dmax {
				dmax = d
			}
		}
		if math.IsInf(dmin, 1) {
			return ContrastReport{}, fmt.Errorf("knn: query %d coincides with every data point", qi)
		}
		rel := (dmax - dmin) / dmin
		sumRel += rel
		sumRatio += dmax / dmin
		if rel < minRel {
			minRel = rel
		}
	}
	return ContrastReport{
		MeanRelativeContrast: sumRel / float64(nq),
		MeanRatio:            sumRatio / float64(nq),
		MinRelativeContrast:  minRel,
	}, nil
}
