package knn

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func benchData(n, d int) (*linalg.Dense, []float64) {
	rng := rand.New(rand.NewSource(42))
	m := linalg.NewDense(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	q := make([]float64, d)
	for j := range q {
		q[j] = rng.NormFloat64()
	}
	return m, q
}

func BenchmarkSearchL2_5000x64(b *testing.B) {
	data, q := benchData(5000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Search(data, q, 3, Euclidean{}, -1)
	}
}

func BenchmarkSearchL1_5000x64(b *testing.B) {
	data, q := benchData(5000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Search(data, q, 3, Manhattan{}, -1)
	}
}

func BenchmarkSearchFractional_5000x64(b *testing.B) {
	data, q := benchData(5000, 64)
	m := NewMinkowski(0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Search(data, q, 3, m, -1)
	}
}

func BenchmarkEuclideanDistance256(b *testing.B) {
	data, q := benchData(2, 256)
	row := data.RawRow(0)
	m := Euclidean{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(row, q)
	}
}
