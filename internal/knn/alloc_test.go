package knn

import "testing"

// TestOfferZeroAllocs pins Collector.Offer's //drlint:hotpath contract at
// runtime: once the collector's heap is at capacity, admitting and
// rejecting candidates is allocation-free (the heap was pre-sized by
// NewCollector and sift operations swap in place).
func TestOfferZeroAllocs(t *testing.T) {
	c := NewCollector(16)
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		c.Offer(i, float64(i%97))
		i++
	})
	if avg != 0 {
		t.Errorf("Offer does %.2f allocs/op, want 0", avg)
	}
}

// TestSortNeighborsZeroAllocs pins the slices.SortFunc + named-comparator
// form: sorting an existing neighbor list on the hot path must not box
// into sort.Interface or materialize a per-call closure.
func TestSortNeighborsZeroAllocs(t *testing.T) {
	ns := make([]Neighbor, 512)
	for i := range ns {
		ns[i] = Neighbor{Index: i, Dist: float64((i * 7919) % 1024)}
	}
	avg := testing.AllocsPerRun(200, func() {
		SortNeighbors(ns)
		// Restore disorder so each run sorts real work, not a sorted list.
		for i := range ns {
			ns[i].Dist = float64((i*7919 + i) % 1024)
		}
	})
	// The restore loop allocates nothing, so any nonzero count is the sort.
	if avg != 0 {
		t.Errorf("SortNeighbors does %.2f allocs/op, want 0", avg)
	}
}

// TestResetZeroAllocs pins the pooling hook: Reset to a capacity the heap
// already holds must reuse the backing array.
func TestResetZeroAllocs(t *testing.T) {
	c := NewCollector(64)
	for i := 0; i < 64; i++ {
		c.Offer(i, float64(i))
	}
	avg := testing.AllocsPerRun(500, func() {
		c.Reset(64)
		c.Offer(1, 1)
	})
	if avg != 0 {
		t.Errorf("Reset+Offer does %.2f allocs/op, want 0", avg)
	}
}
