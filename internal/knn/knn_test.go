package knn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func randMatrix(rng *rand.Rand, n, d int) *linalg.Dense {
	m := linalg.NewDense(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestMetricsKnownValues(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	cases := []struct {
		m    Metric
		want float64
		name string
	}{
		{Euclidean{}, 5, "L2"},
		{SquaredEuclidean{}, 25, "L2sq"},
		{Manhattan{}, 7, "L1"},
		{Chebyshev{}, 4, "Linf"},
		{NewMinkowski(2), 5, "L2"},
		{NewMinkowski(1), 7, "L1"},
	}
	for _, tc := range cases {
		if got := tc.m.Distance(a, b); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("%s(a,b) = %v, want %v", tc.m.Name(), got, tc.want)
		}
		if tc.m.Name() != tc.name {
			t.Fatalf("name = %q, want %q", tc.m.Name(), tc.name)
		}
	}
}

func TestMetricAxioms(t *testing.T) {
	metrics := []Metric{Euclidean{}, SquaredEuclidean{}, Manhattan{}, Chebyshev{}, NewMinkowski(0.5), NewMinkowski(3), Cosine{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(10)
		a := make([]float64, d)
		b := make([]float64, d)
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		for _, m := range metrics {
			dab := m.Distance(a, b)
			// Non-negative, symmetric, identity yields 0 (cosine of a
			// nonzero vector with itself).
			if dab < 0 || math.Abs(dab-m.Distance(b, a)) > 1e-12 {
				return false
			}
			if _, isCos := m.(Cosine); isCos {
				continue // self-distance checked separately for zero vectors
			}
			if m.Distance(a, a) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequalityForTrueMetrics(t *testing.T) {
	metrics := []Metric{Euclidean{}, Manhattan{}, Chebyshev{}, NewMinkowski(1.5)}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(8)
		a, b, c := make([]float64, d), make([]float64, d), make([]float64, d)
		for i := 0; i < d; i++ {
			a[i], b[i], c[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		}
		for _, m := range metrics {
			if m.Distance(a, c) > m.Distance(a, b)+m.Distance(b, c)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFractionalMinkowskiViolatesTriangle(t *testing.T) {
	// A classic witness that L_0.5 is not a true metric.
	m := NewMinkowski(0.5)
	a := []float64{0, 0}
	b := []float64{1, 0}
	c := []float64{1, 1}
	if m.Distance(a, c) <= m.Distance(a, b)+m.Distance(b, c) {
		t.Fatalf("expected triangle violation: d(a,c)=%v, d(a,b)+d(b,c)=%v",
			m.Distance(a, c), m.Distance(a, b)+m.Distance(b, c))
	}
}

func TestMinkowskiValidation(t *testing.T) {
	for _, p := range []float64{0, -1, math.Inf(1), math.NaN()} {
		p := p
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewMinkowski(%v) must panic", p)
				}
			}()
			NewMinkowski(p)
		}()
	}
}

func TestCosine(t *testing.T) {
	if got := (Cosine{}).Distance([]float64{1, 0}, []float64{2, 0}); math.Abs(got) > 1e-12 {
		t.Fatalf("parallel cosine distance = %v", got)
	}
	if got := (Cosine{}).Distance([]float64{1, 0}, []float64{0, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("orthogonal cosine distance = %v", got)
	}
	if got := (Cosine{}).Distance([]float64{1, 0}, []float64{-3, 0}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("opposite cosine distance = %v", got)
	}
	if got := (Cosine{}).Distance([]float64{0, 0}, []float64{1, 2}); got != 1 {
		t.Fatalf("zero-vector cosine distance = %v", got)
	}
}

func TestMetricLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Euclidean{}.Distance([]float64{1}, []float64{1, 2})
}

func TestCollector(t *testing.T) {
	c := NewCollector(2)
	if c.Worst() != math.Inf(1) || c.Full() {
		t.Fatalf("fresh collector state wrong")
	}
	if !c.Offer(0, 5) || !c.Offer(1, 3) {
		t.Fatalf("initial offers rejected")
	}
	if !c.Full() || c.Worst() != 5 {
		t.Fatalf("after fill: full=%v worst=%v", c.Full(), c.Worst())
	}
	if c.Offer(2, 7) {
		t.Fatalf("worse candidate admitted")
	}
	if !c.Offer(3, 1) {
		t.Fatalf("better candidate rejected")
	}
	res := c.Results()
	if len(res) != 2 || res[0].Index != 3 || res[1].Index != 1 {
		t.Fatalf("results = %v", res)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("k=0 must panic")
		}
	}()
	NewCollector(0)
}

func TestSearchHandComputed(t *testing.T) {
	data := linalg.FromRows([][]float64{
		{0, 0},
		{1, 0},
		{5, 5},
		{0.5, 0},
	})
	got := Search(data, []float64{0, 0}, 2, Euclidean{}, -1)
	if got[0].Index != 0 || got[0].Dist != 0 {
		t.Fatalf("nearest = %v", got[0])
	}
	if got[1].Index != 3 || math.Abs(got[1].Dist-0.5) > 1e-12 {
		t.Fatalf("second = %v", got[1])
	}
	// Excluding the exact match promotes the others.
	got = Search(data, []float64{0, 0}, 2, Euclidean{}, 0)
	if got[0].Index != 3 || got[1].Index != 1 {
		t.Fatalf("excluded search = %v", got)
	}
}

func TestSearchAgainstNaiveSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := randMatrix(rng, 200, 8)
	m := Manhattan{}
	for trial := 0; trial < 20; trial++ {
		q := make([]float64, 8)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		k := 1 + rng.Intn(10)
		got := Search(data, q, k, m, -1)
		// Naive: compute all distances and pick smallest k.
		type pair struct {
			i int
			d float64
		}
		all := make([]pair, data.Rows())
		for i := range all {
			all[i] = pair{i, m.Distance(data.RawRow(i), q)}
		}
		for i := 0; i < k; i++ { // selection sort prefix
			best := i
			for j := i + 1; j < len(all); j++ {
				if all[j].d < all[best].d {
					best = j
				}
			}
			all[i], all[best] = all[best], all[i]
		}
		for i := 0; i < k; i++ {
			if math.Abs(got[i].Dist-all[i].d) > 1e-12 {
				t.Fatalf("trial %d: rank %d dist %v != %v", trial, i, got[i].Dist, all[i].d)
			}
		}
	}
}

func TestSearchPanics(t *testing.T) {
	data := linalg.NewDense(3, 2)
	for name, fn := range map[string]func(){
		"dim mismatch": func() { Search(data, []float64{1}, 1, Euclidean{}, -1) },
		"k zero":       func() { Search(data, []float64{1, 2}, 0, Euclidean{}, -1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestSearchSetSelfExclude(t *testing.T) {
	data := linalg.FromRows([][]float64{{0}, {1}, {2}})
	res := SearchSet(data, data, 1, Euclidean{}, true)
	if res[0][0].Index == 0 || res[1][0].Index == 1 {
		t.Fatalf("self not excluded: %v", res)
	}
	res = SearchSet(data, data, 1, Euclidean{}, false)
	for i := range res {
		if res[i][0].Index != i || res[i][0].Dist != 0 {
			t.Fatalf("self search should return self: %v", res)
		}
	}
}

func TestSearchFewerPointsThanK(t *testing.T) {
	data := linalg.FromRows([][]float64{{0}, {1}})
	got := Search(data, []float64{0}, 5, Euclidean{}, -1)
	if len(got) != 2 {
		t.Fatalf("expected all %d points, got %d", 2, len(got))
	}
}

func TestOverlap(t *testing.T) {
	a := []Neighbor{{1, 0}, {2, 0}, {3, 0}}
	b := []Neighbor{{3, 0}, {4, 0}, {5, 0}}
	if got := Overlap(a, b); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("Overlap = %v", got)
	}
	if got := Overlap(a, a); got != 1 {
		t.Fatalf("self overlap = %v", got)
	}
	if got := Overlap(nil, a); got != 0 {
		t.Fatalf("nil overlap = %v", got)
	}
	// Unequal lengths normalize by the longer list.
	if got := Overlap(a[:1], a); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("asymmetric overlap = %v", got)
	}
}

func TestRelativeContrastCollapsesWithDimensionality(t *testing.T) {
	// The §1.1 phenomenon: on i.i.d. uniform data, relative contrast
	// shrinks as dimensionality grows.
	rng := rand.New(rand.NewSource(4))
	contrast := func(d int) float64 {
		n := 500
		data := linalg.NewDense(n, d)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				data.Set(i, j, rng.Float64())
			}
		}
		queries := data.SliceRows([]int{0, 1, 2, 3, 4})
		rep, err := RelativeContrast(data, queries, Euclidean{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.MeanRelativeContrast
	}
	low := contrast(2)
	high := contrast(200)
	if high >= low/3 {
		t.Fatalf("contrast did not collapse: d=2 %v, d=200 %v", low, high)
	}
}

func TestRelativeContrastErrors(t *testing.T) {
	data := linalg.FromRows([][]float64{{0, 0}, {0, 0}})
	if _, err := RelativeContrast(data, linalg.NewDense(1, 3), Euclidean{}); err == nil {
		t.Fatalf("dimension mismatch accepted")
	}
	// Query coincides with every point: rejected.
	q := linalg.FromRows([][]float64{{0, 0}})
	if _, err := RelativeContrast(data, q, Euclidean{}); err == nil {
		t.Fatalf("degenerate query accepted")
	}
}

func TestRelativeContrastReportFields(t *testing.T) {
	data := linalg.FromRows([][]float64{{0}, {1}, {3}})
	q := linalg.FromRows([][]float64{{0}})
	rep, err := RelativeContrast(data, q, Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	// Dmin=1, Dmax=3 → rel contrast 2, ratio 3.
	if math.Abs(rep.MeanRelativeContrast-2) > 1e-12 || math.Abs(rep.MeanRatio-3) > 1e-12 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.MinRelativeContrast != rep.MeanRelativeContrast {
		t.Fatalf("single query: min != mean")
	}
}
