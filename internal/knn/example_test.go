package knn_test

import (
	"fmt"

	"repro/internal/knn"
	"repro/internal/linalg"
)

// Basic exact search with leave-one-out exclusion.
func ExampleSearch() {
	data := linalg.FromRows([][]float64{
		{0, 0}, {1, 0}, {0, 1}, {5, 5},
	})
	// Nearest two neighbors of row 0, excluding row 0 itself.
	res := knn.Search(data, data.Row(0), 2, knn.Euclidean{}, 0)
	for _, nb := range res {
		fmt.Printf("point %d at distance %.0f\n", nb.Index, nb.Dist)
	}
	// Output:
	// point 1 at distance 1
	// point 2 at distance 1
}

// Fractional metrics retain more contrast in high dimensionality than
// integer-order ones (the paper's reference [1]).
func ExampleMinkowski() {
	m := knn.NewMinkowski(0.5)
	fmt.Printf("%s distance: %.0f\n", m.Name(), m.Distance([]float64{0, 0}, []float64{1, 1}))
	// Output: L0.5 distance: 4
}
