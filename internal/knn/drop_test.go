package knn

import (
	"math/rand"
	"testing"
)

func TestDropNeighbors(t *testing.T) {
	ns := []Neighbor{{Index: 3, Dist: 0.1}, {Index: 7, Dist: 0.2}, {Index: 9, Dist: 0.3}, {Index: 12, Dist: 0.4}}

	// Empty drop list: same slice back, untouched.
	if got := DropNeighbors(ns, nil); len(got) != 4 || &got[0] != &ns[0] {
		t.Fatalf("empty drop rewrote the slice: %+v", got)
	}

	got := DropNeighbors(append([]Neighbor(nil), ns...), []int{7, 12})
	if len(got) != 2 || got[0].Index != 3 || got[1].Index != 9 {
		t.Fatalf("drop {7,12} = %+v, want indices 3,9", got)
	}

	// Drop everything.
	if got := DropNeighbors(append([]Neighbor(nil), ns...), []int{3, 7, 9, 12}); len(got) != 0 {
		t.Fatalf("drop-all left %+v", got)
	}

	// Drop list with absent members filters only what matches.
	got = DropNeighbors(append([]Neighbor(nil), ns...), []int{1, 9, 100})
	if len(got) != 3 || got[0].Index != 3 || got[1].Index != 7 || got[2].Index != 12 {
		t.Fatalf("drop {1,9,100} = %+v", got)
	}
}

// TestDropNeighborsMatchesMapFilter is the property check: DropNeighbors
// over a sorted drop list equals the obvious map-based filter, preserving
// order, for random inputs.
func TestDropNeighborsMatchesMapFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(30)
		ns := make([]Neighbor, n)
		for i := range ns {
			ns[i] = Neighbor{Index: rng.Intn(40), Dist: rng.Float64()}
		}
		dropSet := make(map[int]struct{})
		for i := 0; i < rng.Intn(10); i++ {
			dropSet[rng.Intn(40)] = struct{}{}
		}
		drop := make([]int, 0, len(dropSet))
		for v := range dropSet {
			drop = append(drop, v)
		}
		// Sort the small drop list.
		for i := 1; i < len(drop); i++ {
			for j := i; j > 0 && drop[j] < drop[j-1]; j-- {
				drop[j], drop[j-1] = drop[j-1], drop[j]
			}
		}
		var want []Neighbor
		for _, nb := range ns {
			if _, dead := dropSet[nb.Index]; !dead {
				want = append(want, nb)
			}
		}
		got := DropNeighbors(append([]Neighbor(nil), ns...), drop)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d kept, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: kept[%d] = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}
