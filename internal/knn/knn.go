package knn

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"

	"repro/internal/linalg"
)

// Neighbor is a search result: the row index of the matched point and its
// distance from the query.
type Neighbor struct {
	Index int
	Dist  float64
}

// neighborHeap is a bounded max-heap on distance, keeping the k closest
// points seen so far with the current worst at the root. The sift
// operations are hand-rolled rather than going through container/heap:
// heap.Push boxes every pushed Neighbor into an interface{}, which costs
// one heap allocation per admitted candidate on the scan hot path.
type neighborHeap []Neighbor

func (h neighborHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].Dist >= h[i].Dist {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func (h neighborHeap) siftDown(i int) {
	n := len(h)
	for {
		worst := i
		if l := 2*i + 1; l < n && h[l].Dist > h[worst].Dist {
			worst = l
		}
		if r := 2*i + 2; r < n && h[r].Dist > h[worst].Dist {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// Collector accumulates the k nearest neighbors of a query incrementally.
// It is the shared result structure used by the brute-force scan and by all
// index structures, so results are directly comparable.
type Collector struct {
	k    int
	heap neighborHeap
}

// NewCollector creates a collector for the k nearest neighbors.
func NewCollector(k int) *Collector {
	if k <= 0 {
		panic(fmt.Sprintf("knn: collector k=%d must be positive", k))
	}
	return &Collector{k: k, heap: make(neighborHeap, 0, k)}
}

// Reset reinitializes the collector for a new query of capacity k,
// retaining the heap's backing array when it is already large enough —
// the hook that lets scan loops pool collectors across queries instead
// of allocating one per query.
func (c *Collector) Reset(k int) {
	if k <= 0 {
		panic(fmt.Sprintf("knn: collector k=%d must be positive", k))
	}
	c.k = k
	if cap(c.heap) < k {
		c.heap = make(neighborHeap, 0, k)
	}
	c.heap = c.heap[:0]
}

// Offer considers a candidate point. It returns true if the candidate was
// admitted (it was closer than the current k-th best, or the collector was
// not yet full).
//
//drlint:hotpath inline=1
func (c *Collector) Offer(index int, dist float64) bool {
	if len(c.heap) < c.k {
		c.heap = append(c.heap, Neighbor{Index: index, Dist: dist})
		c.heap.siftUp(len(c.heap) - 1)
		return true
	}
	if dist >= c.heap[0].Dist {
		return false
	}
	c.heap[0] = Neighbor{Index: index, Dist: dist}
	c.heap.siftDown(0)
	return true
}

// Worst returns the current k-th best distance, or +Inf while the collector
// is not yet full. Index structures prune subtrees whose optimistic bound is
// no better than this.
func (c *Collector) Worst() float64 {
	if len(c.heap) < c.k {
		return math.Inf(1)
	}
	return c.heap[0].Dist
}

// Full reports whether k candidates have been admitted.
func (c *Collector) Full() bool { return len(c.heap) == c.k }

// Bound is the admission threshold Offer applies: a candidate is admitted
// iff its distance is strictly below Bound(). It equals Worst() — the
// current k-th best distance, +Inf while not full — under a name that
// matches how blocked scans use it: pre-filtering a scored block against
// Bound() before offering admits exactly the same set as offering every
// entry, so threshold pruning cannot change results.
func (c *Collector) Bound() float64 { return c.Worst() }

// LessNeighbor is the canonical result ordering shared by every search
// path: ascending distance, exact-distance ties broken by ascending index.
// The three-way comparison avoids == on floats while still defining a total
// order, so independently produced neighbor lists (scalar scan, batch
// engine, per-shard merges) sort identically.
func LessNeighbor(a, b Neighbor) bool {
	if a.Dist < b.Dist {
		return true
	}
	if a.Dist > b.Dist {
		return false
	}
	return a.Index < b.Index
}

// compareNeighbor is LessNeighbor as a three-way comparison. It is a
// named function rather than a literal so sorting on the scan hot path
// passes a static funcval — sort.Slice's interface boxing and per-call
// closure are what SortNeighbors is avoiding.
func compareNeighbor(a, b Neighbor) int {
	if LessNeighbor(a, b) {
		return -1
	}
	if LessNeighbor(b, a) {
		return 1
	}
	return 0
}

// SortNeighbors sorts a neighbor list in the canonical (distance, index)
// order without allocating.
func SortNeighbors(ns []Neighbor) {
	slices.SortFunc(ns, compareNeighbor)
}

// DropNeighbors removes, in place, every neighbor whose Index appears in
// drop (a sorted ascending list of indices) and returns the shortened
// slice. This is the tombstone filter of the serving layer's mutation
// path: a merged candidate list is screened against the deleted set
// before the canonical (distance, index) sort and truncation to k.
// Surviving neighbors keep their relative order. drop may be empty.
//
//drlint:hotpath
func DropNeighbors(ns []Neighbor, drop []int) []Neighbor {
	if len(drop) == 0 {
		return ns
	}
	kept := ns[:0]
	for _, nb := range ns {
		lo, hi := 0, len(drop)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if drop[mid] < nb.Index {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(drop) && drop[lo] == nb.Index {
			continue
		}
		kept = append(kept, nb)
	}
	return kept
}

// Results returns the collected neighbors sorted by ascending distance
// (ties broken by index for determinism).
func (c *Collector) Results() []Neighbor {
	out := make([]Neighbor, len(c.heap))
	copy(out, c.heap)
	SortNeighbors(out)
	return out
}

// Search scans all rows of data and returns the k nearest neighbors of
// query under the metric, sorted by ascending distance. exclude, if >= 0,
// skips that row index (used for leave-one-out queries where the query point
// itself is part of the data).
func Search(data *linalg.Dense, query []float64, k int, m Metric, exclude int) []Neighbor {
	n, d := data.Dims()
	if len(query) != d {
		panic(fmt.Sprintf("knn: query has %d dims, data has %d", len(query), d))
	}
	if k <= 0 {
		panic(fmt.Sprintf("knn: k=%d must be positive", k))
	}
	c := NewCollector(k)
	// Dimensions are validated once above, so the scan can use the metric's
	// raw kernel and skip the per-pair length check.
	dist := rawDistanceFunc(m)
	for i := 0; i < n; i++ {
		if i == exclude {
			continue
		}
		c.Offer(i, dist(data.RawRow(i), query))
	}
	return c.Results()
}

// SearchSet returns the k nearest neighbors of every row of queries against
// the rows of data. When data and queries share storage (self-search), pass
// selfExclude = true to skip the identical index.
func SearchSet(data, queries *linalg.Dense, k int, m Metric, selfExclude bool) [][]Neighbor {
	if queries.Cols() != data.Cols() {
		panic(fmt.Sprintf("knn: queries have %d dims, data has %d", queries.Cols(), data.Cols()))
	}
	out := make([][]Neighbor, queries.Rows())
	for i := 0; i < queries.Rows(); i++ {
		ex := -1
		if selfExclude {
			ex = i
		}
		out[i] = Search(data, queries.RawRow(i), k, m, ex)
	}
	return out
}

// SearchSetParallel is SearchSet with the queries distributed across a
// worker pool of up to runtime.GOMAXPROCS(0) goroutines. Queries are
// independent, so the result is exactly SearchSet's; use it for the
// ground-truth workloads of experiment sweeps, which are embarrassingly
// parallel and dominated by distance computations. Work is handed out as
// chunked index ranges over a buffered channel, so per-query scheduling
// overhead stays negligible even on small-d workloads where a single query
// is only microseconds of work.
func SearchSetParallel(data, queries *linalg.Dense, k int, m Metric, selfExclude bool) [][]Neighbor {
	if queries.Cols() != data.Cols() {
		panic(fmt.Sprintf("knn: queries have %d dims, data has %d", queries.Cols(), data.Cols()))
	}
	nq := queries.Rows()
	out := make([][]Neighbor, nq)
	workers := runtime.GOMAXPROCS(0)
	if workers > nq {
		workers = nq
	}
	if workers <= 1 {
		return SearchSet(data, queries, k, m, selfExclude)
	}
	// A few chunks per worker balances load without per-query channel trips.
	chunk := nq / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	jobs := make(chan [2]int, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for r := range jobs {
				for i := r[0]; i < r[1]; i++ {
					ex := -1
					if selfExclude {
						ex = i
					}
					out[i] = Search(data, queries.RawRow(i), k, m, ex)
				}
			}
		}()
	}
	for lo := 0; lo < nq; lo += chunk {
		hi := lo + chunk
		if hi > nq {
			hi = nq
		}
		jobs <- [2]int{lo, hi}
	}
	close(jobs)
	wg.Wait()
	return out
}

// Overlap returns |a ∩ b| / k where a and b are neighbor lists of length k —
// the precision of one neighbor set with respect to another. This is how the
// paper quantifies how far aggressive reduction drifts from the original
// full-dimensional neighbors ("precision ... was often in the range of 10%
// or so").
func Overlap(a, b []Neighbor) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[int]bool, len(a))
	for _, n := range a {
		set[n.Index] = true
	}
	hits := 0
	for _, n := range b {
		if set[n.Index] {
			hits++
		}
	}
	den := len(a)
	if len(b) > den {
		den = len(b)
	}
	return float64(hits) / float64(den)
}
