package knn

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/linalg"
)

// withProcs runs fn at the given GOMAXPROCS so the parallel collector scans
// are exercised even on single-core machines.
func withProcs(n int, fn func()) {
	saved := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(saved)
	fn()
}

func TestPairwiseSqMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, c := range []struct{ n, nq, d int }{
		{1, 1, 1}, {7, 3, 5}, {40, 11, 166}, {300, 17, 16},
	} {
		data := randMatrix(rng, c.n, c.d)
		queries := randMatrix(rng, c.nq, c.d)
		got := PairwiseSq(data, queries)
		if r, cc := got.Dims(); r != c.nq || cc != c.n {
			t.Fatalf("PairwiseSq dims %dx%d, want %dx%d", r, cc, c.nq, c.n)
		}
		sq := SquaredEuclidean{}
		for i := 0; i < c.nq; i++ {
			for j := 0; j < c.n; j++ {
				want := sq.Distance(queries.RawRow(i), data.RawRow(j))
				if math.Abs(got.At(i, j)-want) > 1e-9*(1+want) {
					t.Fatalf("n=%d d=%d: D²[%d][%d] = %v, want %v", c.n, c.d, i, j, got.At(i, j), want)
				}
			}
		}
	}
}

func TestPairwiseSqSelfIsNonNegative(t *testing.T) {
	// Identical rows hit the clamp: ‖x‖² + ‖x‖² − 2⟨x,x⟩ can round below 0.
	rng := rand.New(rand.NewSource(53))
	data := randMatrix(rng, 64, 166)
	got := PairwiseSq(data, data)
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			if got.At(i, j) < 0 {
				t.Fatalf("D²[%d][%d] = %v < 0", i, j, got.At(i, j))
			}
		}
	}
}

func TestPairwiseSqDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PairwiseSq(linalg.NewDense(3, 4), linalg.NewDense(2, 5))
}

// TestSearchSetBatchEquivalence is the ISSUE's acceptance equivalence test:
// the batch engine must reproduce SearchSet exactly — same indices, same
// distances, same tie handling — across dimensionalities spanning the tail
// cases of the GEMM kernels.
func TestSearchSetBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	metrics := []Metric{Euclidean{}, SquaredEuclidean{}}
	for _, d := range []int{1, 7, 16, 166} {
		data := randMatrix(rng, 400, d)
		queries := randMatrix(rng, 75, d)
		for _, m := range metrics {
			for _, k := range []int{1, 10} {
				want := SearchSet(data, queries, k, m, false)
				got := SearchSetBatch(data, queries, k, m, false)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("d=%d metric=%s k=%d: batch differs from scalar", d, m.Name(), k)
				}
				withProcs(4, func() {
					if !reflect.DeepEqual(SearchSetBatch(data, queries, k, m, false), want) {
						t.Fatalf("d=%d metric=%s k=%d: parallel batch differs", d, m.Name(), k)
					}
				})
			}
		}
	}
}

func TestSearchSetBatchSelfExclude(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	data := randMatrix(rng, 300, 16)
	want := SearchSet(data, data, 5, Euclidean{}, true)
	got := SearchSetBatch(data, data, 5, Euclidean{}, true)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("self-exclude batch differs from scalar")
	}
	for i, res := range got {
		for _, nb := range res {
			if nb.Index == i {
				t.Fatalf("query %d returned itself", i)
			}
		}
	}
}

func TestSearchSetBatchDuplicatesAndTies(t *testing.T) {
	// Integer coordinates make the norm-cache identity exact, so ties between
	// duplicate points must resolve to the same earliest indices as the
	// scalar path.
	rows := [][]float64{
		{3, 4}, {3, 4}, {3, 4}, {0, 0}, {6, 8}, {3, 4}, {0, 0},
	}
	data := linalg.FromRows(rows)
	queries := linalg.FromRows([][]float64{{3, 4}, {0, 0}, {1, 1}})
	for _, k := range []int{1, 3, 5} {
		want := SearchSet(data, queries, k, Euclidean{}, false)
		got := SearchSetBatch(data, queries, k, Euclidean{}, false)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: ties resolved differently: got %v, want %v", k, got, want)
		}
	}
}

func TestSearchSetBatchKLargerThanN(t *testing.T) {
	data := linalg.FromRows([][]float64{{0}, {1}, {2}})
	queries := linalg.FromRows([][]float64{{0.4}})
	got := SearchSetBatch(data, queries, 10, Euclidean{}, false)
	want := SearchSet(data, queries, 10, Euclidean{}, false)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("k>n: got %v, want %v", got, want)
	}
	if len(got[0]) != 3 {
		t.Fatalf("k>n returned %d neighbors, want 3", len(got[0]))
	}
}

func TestSearchSetBatchFallbackMetric(t *testing.T) {
	// Non-Euclidean metrics must route through the scalar path unchanged.
	rng := rand.New(rand.NewSource(61))
	data := randMatrix(rng, 150, 8)
	queries := randMatrix(rng, 20, 8)
	for _, m := range []Metric{Manhattan{}, Chebyshev{}, NewMinkowski(0.5), Cosine{}} {
		want := SearchSet(data, queries, 4, m, false)
		got := SearchSetBatch(data, queries, 4, m, false)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("metric %s: fallback differs from scalar", m.Name())
		}
	}
}

func TestSearchSetBatchPanics(t *testing.T) {
	data := linalg.NewDense(3, 2)
	for name, fn := range map[string]func(){
		"dim mismatch": func() { SearchSetBatch(data, linalg.NewDense(2, 3), 1, Euclidean{}, false) },
		"k zero":       func() { SearchSetBatch(data, linalg.NewDense(2, 2), 0, Euclidean{}, false) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestSearchSetParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	data := randMatrix(rng, 200, 12)
	queries := randMatrix(rng, 37, 12)
	want := SearchSet(data, queries, 6, Euclidean{}, false)
	withProcs(4, func() {
		if got := SearchSetParallel(data, queries, 6, Euclidean{}, false); !reflect.DeepEqual(got, want) {
			t.Fatal("chunked parallel search differs from serial")
		}
		if got := SearchSetParallel(data, data, 3, Euclidean{}, true); !reflect.DeepEqual(got, SearchSet(data, data, 3, Euclidean{}, true)) {
			t.Fatal("chunked parallel self-exclude differs from serial")
		}
	})
}

func TestCollectorKLargerThanN(t *testing.T) {
	c := NewCollector(10)
	c.Offer(2, 1.5)
	c.Offer(0, 0.5)
	c.Offer(1, 2.5)
	res := c.Results()
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	if res[0].Index != 0 || res[1].Index != 2 || res[2].Index != 1 {
		t.Fatalf("order wrong: %v", res)
	}
	if c.Full() {
		t.Fatal("collector with 3 of 10 must not report full")
	}
}

func TestCollectorTieBreakDeterminism(t *testing.T) {
	// Equal distances sort by ascending index regardless of offer order.
	offer := func(order []int) []Neighbor {
		c := NewCollector(3)
		for _, i := range order {
			c.Offer(i, 1.0)
		}
		return c.Results()
	}
	a := offer([]int{5, 1, 9})
	b := offer([]int{9, 5, 1})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("tie order differs: %v vs %v", a, b)
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Index > a[i].Index {
			t.Fatalf("ties not index-sorted: %v", a)
		}
	}
	// A full collector rejects an equal-distance late arrival (first come,
	// first kept) — both paths must share this rule for equivalence.
	c := NewCollector(1)
	if !c.Offer(4, 2.0) {
		t.Fatal("first offer rejected")
	}
	if c.Offer(0, 2.0) {
		t.Fatal("equal-distance late offer admitted")
	}
}

func TestSearchExcludeWithDuplicates(t *testing.T) {
	// Excluding one duplicate must still return its twins.
	data := linalg.FromRows([][]float64{{1, 1}, {1, 1}, {1, 1}, {5, 5}})
	got := Search(data, []float64{1, 1}, 2, Euclidean{}, 1)
	if got[0].Index != 0 || got[1].Index != 2 {
		t.Fatalf("exclude with duplicates: %v", got)
	}
	for _, nb := range got {
		if nb.Dist != 0 {
			t.Fatalf("duplicate distance %v != 0", nb.Dist)
		}
	}
}

// benchKNNData is the acceptance-criteria workload: the paper's pendigits-like
// scale, n=6598 points at the musk-like d=166, 50 queries, k=10.
func benchKNNData(b *testing.B) (data, queries *linalg.Dense) {
	b.Helper()
	rng := rand.New(rand.NewSource(101))
	data = randMatrix(rng, 6598, 166)
	queries = randMatrix(rng, 50, 166)
	return data, queries
}

func BenchmarkSearchSetParallel6598x166(b *testing.B) {
	data, queries := benchKNNData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SearchSetParallel(data, queries, 10, Euclidean{}, false)
	}
}

func BenchmarkSearchSetBatch6598x166(b *testing.B) {
	data, queries := benchKNNData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SearchSetBatch(data, queries, 10, Euclidean{}, false)
	}
}

func BenchmarkPairwiseSq1024x166(b *testing.B) {
	rng := rand.New(rand.NewSource(103))
	data := randMatrix(rng, 1024, 166)
	queries := randMatrix(rng, 128, 166)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PairwiseSq(data, queries)
	}
}
