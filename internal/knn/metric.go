// Package knn provides the similarity-search kernel: distance metrics
// (including the fractional L_p metrics of the paper's reference [1]),
// exact k-nearest-neighbor search over dense point sets, and the
// relative-contrast instability measure of Beyer et al. that motivates the
// paper's §1.1.
package knn

import (
	"fmt"
	"math"
)

// Metric is a dissimilarity function over equal-length vectors. All
// implementations in this package are symmetric and zero on identical
// inputs; true metrics additionally satisfy the triangle inequality
// (Cosine and fractional Minkowski do not).
type Metric interface {
	// Distance returns the dissimilarity between a and b.
	Distance(a, b []float64) float64
	// Name identifies the metric in reports.
	Name() string
}

// rawDistancer is implemented by the built-in metrics, whose Distance is a
// length check followed by pure arithmetic. Scans that validate dimensions
// once up front call the raw kernel and skip the per-pair check.
type rawDistancer interface {
	rawDistance(a, b []float64) float64
}

// rawDistanceFunc returns m's unchecked distance kernel when it has one and
// m.Distance otherwise. Callers must already have validated that every pair
// they pass has equal lengths.
func rawDistanceFunc(m Metric) func(a, b []float64) float64 {
	if rd, ok := m.(rawDistancer); ok {
		return rd.rawDistance
	}
	return m.Distance
}

// Euclidean is the L₂ metric.
type Euclidean struct{}

// Distance implements Metric.
func (e Euclidean) Distance(a, b []float64) float64 {
	checkLens(a, b)
	return e.rawDistance(a, b)
}

func (Euclidean) rawDistance(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Name implements Metric.
func (Euclidean) Name() string { return "L2" }

// SquaredEuclidean is L₂² — monotone in L₂, so nearest-neighbor rankings
// agree while avoiding the square root.
type SquaredEuclidean struct{}

// Distance implements Metric.
func (e SquaredEuclidean) Distance(a, b []float64) float64 {
	checkLens(a, b)
	return e.rawDistance(a, b)
}

func (SquaredEuclidean) rawDistance(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Name implements Metric.
func (SquaredEuclidean) Name() string { return "L2sq" }

// Manhattan is the L₁ metric.
type Manhattan struct{}

// Distance implements Metric.
func (m Manhattan) Distance(a, b []float64) float64 {
	checkLens(a, b)
	return m.rawDistance(a, b)
}

func (Manhattan) rawDistance(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Name implements Metric.
func (Manhattan) Name() string { return "L1" }

// Chebyshev is the L∞ metric.
type Chebyshev struct{}

// Distance implements Metric.
func (c Chebyshev) Distance(a, b []float64) float64 {
	checkLens(a, b)
	return c.rawDistance(a, b)
}

func (Chebyshev) rawDistance(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Name implements Metric.
func (Chebyshev) Name() string { return "Linf" }

// Minkowski is the L_p metric for any p > 0. For p < 1 it is the fractional
// "distance metric" studied in the paper's reference [1] (Aggarwal,
// Hinneburg & Keim, ICDT 2001): not a true metric (the triangle inequality
// fails) but better-behaved for high-dimensional contrast.
type Minkowski struct{ P float64 }

// NewMinkowski validates p and returns the metric.
func NewMinkowski(p float64) Minkowski {
	if !(p > 0) || math.IsInf(p, 0) || math.IsNaN(p) {
		panic(fmt.Sprintf("knn: Minkowski p=%v must be a positive finite number", p))
	}
	return Minkowski{P: p}
}

// Distance implements Metric.
func (m Minkowski) Distance(a, b []float64) float64 {
	checkLens(a, b)
	return m.rawDistance(a, b)
}

func (m Minkowski) rawDistance(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += math.Pow(math.Abs(a[i]-b[i]), m.P)
	}
	return math.Pow(s, 1/m.P)
}

// Name implements Metric.
func (m Minkowski) Name() string { return fmt.Sprintf("L%g", m.P) }

// Cosine is the cosine distance 1 − cos(a,b). A zero vector has undefined
// angle; it is treated as maximally distant (distance 1) from everything,
// including another zero vector.
type Cosine struct{}

// Distance implements Metric.
func (c Cosine) Distance(a, b []float64) float64 {
	checkLens(a, b)
	return c.rawDistance(a, b)
}

func (Cosine) rawDistance(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 1
	}
	c := dot / math.Sqrt(na*nb)
	// Clamp against floating-point drift so the distance stays in [0,2].
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return 1 - c
}

// Name implements Metric.
func (Cosine) Name() string { return "cosine" }

func checkLens(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("knn: dimension mismatch %d vs %d", len(a), len(b)))
	}
}
