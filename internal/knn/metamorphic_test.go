package knn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// Metamorphic relations of exact Euclidean k-NN: transformations of the
// inputs with a known effect on the answer. Each relation is checked
// against both the scalar path (SearchSet) and the batch-distance engine
// (SearchSetBatch); distances must agree to 1e-12 and ids exactly, which in
// practice means the relations hold bit-for-bit for these transforms
// (negation and zero-padding are exact in IEEE float arithmetic).

const metamorphicTol = 1e-12

// metaData builds the shared seeded workload.
func metaData(t *testing.T) (data, queries *linalg.Dense) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	fill := func(n, d int) *linalg.Dense {
		m := linalg.NewDense(n, d)
		for i := 0; i < n; i++ {
			row := m.RawRow(i)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
		}
		return m
	}
	return fill(400, 21), fill(50, 21)
}

// searchPaths runs every exact query path under test.
func searchPaths(data, queries *linalg.Dense, k int) map[string][][]Neighbor {
	return map[string][][]Neighbor{
		"SearchSet":      SearchSet(data, queries, k, Euclidean{}, false),
		"SearchSetBatch": SearchSetBatch(data, queries, k, Euclidean{}, false),
	}
}

// assertSameNeighbors compares two result sets: identical ids, distances
// within metamorphicTol.
func assertSameNeighbors(t *testing.T, label string, got, want [][]Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d queries, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: query %d has %d neighbors, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j].Index != want[i][j].Index {
				t.Errorf("%s: query %d rank %d id %d, want %d", label, i, j, got[i][j].Index, want[i][j].Index)
				return
			}
			if math.Abs(got[i][j].Dist-want[i][j].Dist) > metamorphicTol {
				t.Errorf("%s: query %d rank %d dist %v, want %v", label, i, j, got[i][j].Dist, want[i][j].Dist)
				return
			}
		}
	}
}

// TestMetamorphicRowPermutation: permuting the dataset rows permutes result
// ids by the same map and changes nothing else.
func TestMetamorphicRowPermutation(t *testing.T) {
	data, queries := metaData(t)
	const k = 9
	rng := rand.New(rand.NewSource(32))
	perm := rng.Perm(data.Rows()) // permuted row i = original row perm[i]
	permuted := data.SliceRows(perm)

	for name, base := range searchPaths(data, queries, k) {
		got := searchPaths(permuted, queries, k)[name]
		// Un-permute ids, then restore canonical order (exact ties between
		// distinct rows would be ordered by the permuted ids).
		for i := range got {
			for j := range got[i] {
				got[i][j].Index = perm[got[i][j].Index]
			}
			SortNeighbors(got[i])
		}
		assertSameNeighbors(t, name+"/permutation", got, base)
	}
}

// TestMetamorphicDimensionNegation: negating one coordinate in data and
// queries alike is an isometry, so results are unchanged.
func TestMetamorphicDimensionNegation(t *testing.T) {
	data, queries := metaData(t)
	const k = 9
	negate := func(m *linalg.Dense, col int) *linalg.Dense {
		out := m.Clone()
		for i := 0; i < out.Rows(); i++ {
			out.RawRow(i)[col] *= -1
		}
		return out
	}
	for _, col := range []int{0, 7, 20} {
		nd, nq := negate(data, col), negate(queries, col)
		for name, base := range searchPaths(data, queries, k) {
			got := searchPaths(nd, nq, k)[name]
			assertSameNeighbors(t, name+"/negation", got, base)
		}
	}
}

// TestMetamorphicZeroDimension: appending a constant zero coordinate to
// every point contributes nothing to any distance.
func TestMetamorphicZeroDimension(t *testing.T) {
	data, queries := metaData(t)
	const k = 9
	pad := func(m *linalg.Dense) *linalg.Dense {
		out := linalg.NewDense(m.Rows(), m.Cols()+1)
		for i := 0; i < m.Rows(); i++ {
			copy(out.RawRow(i), m.RawRow(i))
		}
		return out
	}
	pd, pq := pad(data), pad(queries)
	for name, base := range searchPaths(data, queries, k) {
		got := searchPaths(pd, pq, k)[name]
		assertSameNeighbors(t, name+"/zero-pad", got, base)
	}
}

// TestMetamorphicSelfExclude: the relations hold for leave-one-out
// self-search too (data == queries, selfExclude).
func TestMetamorphicSelfExclude(t *testing.T) {
	data, _ := metaData(t)
	const k = 5
	base := SearchSet(data, data, k, Euclidean{}, true)
	batch := SearchSetBatch(data, data, k, Euclidean{}, true)
	assertSameNeighbors(t, "selfExclude scalar-vs-batch", batch, base)
	for i, res := range base {
		for _, nb := range res {
			if nb.Index == i {
				t.Fatalf("query %d returned itself despite selfExclude", i)
			}
		}
	}
}
