package knn

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/linalg"
)

// This file is the batch-distance engine: Euclidean k-NN over a whole query
// set computed as a handful of blocked GEMM kernels instead of O(nq·n)
// scalar metric calls. Squared distances come from the norm-cache identity
//
//	D²[i][j] = ‖qᵢ‖² + ‖xⱼ‖² − 2·⟨qᵢ, xⱼ⟩
//
// with ‖x‖² computed once per matrix and the inner-product matrix produced
// block by block with linalg.MulTInto, so a data tile is read once per
// query block rather than once per query.

const (
	// batchQueryBlock is the number of query rows per GEMM block.
	batchQueryBlock = 128
	// batchDataTile is the number of data rows per GEMM tile. Together with
	// batchQueryBlock it bounds scratch memory (block × tile float64s — 2 MB)
	// and keeps a tile's inner-product block cache-resident while the
	// collectors scan it.
	batchDataTile = 2048
)

// PairwiseSq returns the queries.Rows() × data.Rows() matrix of squared
// Euclidean distances between every query row and every data row, computed
// through the blocked GEMM kernel with cached row norms. Entries are clamped
// at zero (the norm-cache identity can round to a tiny negative for
// near-identical points). The result is O(nq·n) memory; for k-NN workloads
// prefer SearchSetBatch, which tiles instead of materializing.
func PairwiseSq(data, queries *linalg.Dense) *linalg.Dense {
	if data.Cols() != queries.Cols() {
		panic(fmt.Sprintf("knn: pairwise dimension mismatch %d vs %d", queries.Cols(), data.Cols()))
	}
	dn := linalg.RowNormsSq(data)
	qn := linalg.RowNormsSq(queries)
	out := linalg.MulT(queries, data)
	for i := 0; i < out.Rows(); i++ {
		row := out.RawRow(i)
		qi := qn[i]
		for j, g := range row {
			d2 := qi + dn[j] - 2*g
			if d2 < 0 {
				d2 = 0
			}
			row[j] = d2
		}
	}
	return out
}

// SearchSetBatch is SearchSet routed through the batch-distance engine. For
// Euclidean and SquaredEuclidean metrics it computes per-tile inner-product
// blocks with the blocked parallel GEMM kernel and feeds the same Collector
// used by the scalar path; every other metric falls back to
// SearchSetParallel. Admitted neighbors are rescored with the scalar metric
// before being returned, so results — distances, ordering, and the
// Collector's earliest-index tie handling — match SearchSet exactly (modulo
// exact distance ties between distinct points separated only by float64
// rounding of the norm-cache identity, which cannot occur on generic data).
func SearchSetBatch(data, queries *linalg.Dense, k int, m Metric, selfExclude bool) [][]Neighbor {
	switch m.(type) {
	case Euclidean, SquaredEuclidean:
	default:
		return SearchSetParallel(data, queries, k, m, selfExclude)
	}
	n, d := data.Dims()
	nq := queries.Rows()
	if queries.Cols() != d {
		panic(fmt.Sprintf("knn: queries have %d dims, data has %d", queries.Cols(), d))
	}
	if k <= 0 {
		panic(fmt.Sprintf("knn: k=%d must be positive", k))
	}
	dataNorms := linalg.RowNormsSq(data)
	queryNorms := linalg.RowNormsSq(queries)
	collectors := make([]*Collector, nq)
	for i := range collectors {
		collectors[i] = NewCollector(k)
	}

	tile := batchDataTile
	if tile > n {
		tile = n
	}
	block := batchQueryBlock
	if block > nq {
		block = nq
	}
	scratch := make([]float64, block*tile)
	for qlo := 0; qlo < nq; qlo += block {
		qhi := qlo + block
		if qhi > nq {
			qhi = nq
		}
		qview := queries.RowSlice(qlo, qhi)
		for jt := 0; jt < n; jt += tile {
			je := jt + tile
			if je > n {
				je = n
			}
			// The GEMM kernel parallelizes its own row panels; the
			// collector scans then parallelize over the block's queries.
			g := linalg.NewDenseData(qhi-qlo, je-jt, scratch[:(qhi-qlo)*(je-jt)])
			linalg.MulTInto(g, qview, data.RowSlice(jt, je))
			parallelQueries(qhi-qlo, func(bi int) {
				i := qlo + bi
				c := collectors[i]
				qn := queryNorms[i]
				grow := g.RawRow(bi)
				ex := -1
				if selfExclude {
					ex = i - jt // the query's own row, if it lies in this tile
				}
				for jj, gv := range grow {
					if jj == ex {
						continue
					}
					d2 := qn + dataNorms[jt+jj] - 2*gv
					if d2 < 0 {
						d2 = 0
					}
					c.Offer(jt+jj, d2)
				}
			})
		}
	}

	out := make([][]Neighbor, nq)
	parallelQueries(nq, func(i int) {
		res := collectors[i].Results()
		// Rescore with the scalar metric so reported distances are
		// bit-identical to the scalar path, then restore (dist, index)
		// order. O(nq·k·d) — noise next to the O(nq·n·d) scan.
		q := queries.RawRow(i)
		for t := range res {
			res[t].Dist = m.Distance(data.RawRow(res[t].Index), q)
		}
		SortNeighbors(res)
		out[i] = res
	})
	return out
}

// parallelQueries runs fn(i) for i in [0, n) across contiguous chunks on up
// to GOMAXPROCS goroutines (inline when only one worker is warranted).
func parallelQueries(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
