package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{0.5, 1, 3, 5, 7, 9, 9.9})
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	// Bins: [0,2) [2,4) [4,6) [6,8) [8,10].
	want := []int{2, 1, 1, 1, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bin %d count = %d, want %d (counts %v)", i, h.Counts[i], w, h.Counts)
		}
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-100)
	h.Add(100)
	h.Add(1) // exactly max lands in last bin
	if h.Counts[0] != 1 || h.Counts[3] != 2 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
}

func TestHistogramBinCenterAndDensity(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("BinCenter(0) = %v", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Fatalf("BinCenter(4) = %v", got)
	}
	if got := h.Density(0); got != 0 {
		t.Fatalf("empty density = %v", got)
	}
	h.Add(1)
	h.Add(1.5)
	h.Add(9)
	if got := h.Density(0); !almostEqual(got, 2.0/3.0, 1e-15) {
		t.Fatalf("Density(0) = %v", got)
	}
}

func TestHistogramInvalidConstruction(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bins":  func() { NewHistogram(0, 1, 0) },
		"min >= max": func() { NewHistogram(1, 1, 3) },
		"nan add":    func() { NewHistogram(0, 1, 2).Add(math.NaN()) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 3, 3)
	h.AddAll([]float64{0.1, 1.1, 1.2, 1.3, 2.5})
	if got := h.Mode(); got != 1.5 {
		t.Fatalf("Mode = %v, want 1.5", got)
	}
}

func TestFromData(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	h := FromData(xs, 21)
	if h.Total() != len(xs) {
		t.Fatalf("Total = %d", h.Total())
	}
	// A normal sample peaks near its mean (middle bins).
	mode := h.Mode()
	if math.Abs(mode) > 0.6 {
		t.Fatalf("normal histogram mode = %v, expected near 0", mode)
	}
	// Degenerate constant data must not panic.
	hc := FromData([]float64{4, 4, 4}, 3)
	if hc.Total() != 3 {
		t.Fatalf("constant-data histogram total = %d", hc.Total())
	}
}
