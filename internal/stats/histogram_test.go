package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{0.5, 1, 3, 5, 7, 9, 9.9})
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	// Bins: [0,2) [2,4) [4,6) [6,8) [8,10].
	want := []int{2, 1, 1, 1, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bin %d count = %d, want %d (counts %v)", i, h.Counts[i], w, h.Counts)
		}
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-100)
	h.Add(100)
	h.Add(1) // exactly max lands in last bin
	if h.Counts[0] != 1 || h.Counts[3] != 2 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
}

func TestHistogramBinCenterAndDensity(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("BinCenter(0) = %v", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Fatalf("BinCenter(4) = %v", got)
	}
	if got := h.Density(0); got != 0 {
		t.Fatalf("empty density = %v", got)
	}
	h.Add(1)
	h.Add(1.5)
	h.Add(9)
	if got := h.Density(0); !almostEqual(got, 2.0/3.0, 1e-15) {
		t.Fatalf("Density(0) = %v", got)
	}
}

func TestHistogramInvalidConstruction(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bins":  func() { NewHistogram(0, 1, 0) },
		"min >= max": func() { NewHistogram(1, 1, 3) },
		"nan add":    func() { NewHistogram(0, 1, 2).Add(math.NaN()) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 3, 3)
	h.AddAll([]float64{0.1, 1.1, 1.2, 1.3, 2.5})
	if got := h.Mode(); got != 1.5 {
		t.Fatalf("Mode = %v, want 1.5", got)
	}
}

func TestFromData(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	h := FromData(xs, 21)
	if h.Total() != len(xs) {
		t.Fatalf("Total = %d", h.Total())
	}
	// A normal sample peaks near its mean (middle bins).
	mode := h.Mode()
	if math.Abs(mode) > 0.6 {
		t.Fatalf("normal histogram mode = %v, expected near 0", mode)
	}
	// Degenerate constant data must not panic.
	hc := FromData([]float64{4, 4, 4}, 3)
	if hc.Total() != 3 {
		t.Fatalf("constant-data histogram total = %d", hc.Total())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for v := 0.5; v < 10; v++ { // one value per bin: 0.5, 1.5, ..., 9.5
		h.Add(v)
	}
	cases := []struct{ q, want float64 }{
		{0, 0.5},    // smallest non-empty bin
		{0.1, 0.5},  // cumulative 1/10 reached in bin 0
		{0.5, 4.5},  // median of ten evenly spread values
		{0.9, 8.5},
		{1, 9.5},    // largest value's bin
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}

	// A heavily skewed distribution: p50 in the hot bin, p99 in the tail.
	s := NewHistogram(0, 10, 10)
	for i := 0; i < 990; i++ {
		s.Add(1.5)
	}
	for i := 0; i < 10; i++ {
		s.Add(9.5)
	}
	if got := s.Quantile(0.5); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("skewed p50 = %v, want 1.5", got)
	}
	if got := s.Quantile(0.999); math.Abs(got-9.5) > 1e-12 {
		t.Fatalf("skewed p99.9 = %v, want 9.5", got)
	}
}

func TestHistogramQuantilePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	empty := NewHistogram(0, 1, 4)
	mustPanic("empty histogram", func() { empty.Quantile(0.5) })
	h := NewHistogram(0, 1, 4)
	h.Add(0.5)
	mustPanic("q < 0", func() { h.Quantile(-0.1) })
	mustPanic("q > 1", func() { h.Quantile(1.1) })
	mustPanic("q NaN", func() { h.Quantile(math.NaN()) })
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 10, 10)
	b := NewHistogram(0, 10, 10)
	a.AddAll([]float64{0.5, 1.5, 2.5})
	b.AddAll([]float64{2.5, 9.5})
	a.Merge(b)
	if a.Total() != 5 {
		t.Fatalf("merged total = %d, want 5", a.Total())
	}
	if a.Counts[2] != 2 {
		t.Fatalf("merged bin 2 count = %d, want 2", a.Counts[2])
	}
	if a.Counts[9] != 1 {
		t.Fatalf("merged bin 9 count = %d, want 1", a.Counts[9])
	}
	// Merging must feed Quantile the combined population.
	if got := a.Quantile(1); math.Abs(got-9.5) > 1e-12 {
		t.Fatalf("post-merge max quantile = %v, want 9.5", got)
	}

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("bin mismatch", func() { a.Merge(NewHistogram(0, 10, 5)) })
	mustPanic("range mismatch", func() { a.Merge(NewHistogram(0, 5, 10)) })
}
