package stats

import (
	"fmt"
	"math"
)

// Histogram bins values into uniform-width buckets over [Min, Max]. Values
// outside the range are clamped into the first or last bin. It backs the
// paper's Figure 1 style contribution-distribution plots.
type Histogram struct {
	Min, Max float64
	Counts   []int
	total    int
}

// NewHistogram creates a histogram with the given number of bins spanning
// [min, max]. Panics if bins <= 0 or max <= min.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 {
		panic(fmt.Sprintf("stats: NewHistogram bins=%d", bins))
	}
	if !(max > min) {
		panic(fmt.Sprintf("stats: NewHistogram needs max > min, got [%v,%v]", min, max))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
}

// Add records a value.
func (h *Histogram) Add(x float64) {
	h.Counts[h.binOf(x)]++
	h.total++
}

// AddAll records every value in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

func (h *Histogram) binOf(x float64) int {
	if math.IsNaN(x) {
		panic("stats: Histogram.Add of NaN")
	}
	w := (h.Max - h.Min) / float64(len(h.Counts))
	b := int((x - h.Min) / w)
	if b < 0 {
		return 0
	}
	if b >= len(h.Counts) {
		return len(h.Counts) - 1
	}
	return b
}

// Total returns the number of recorded values.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// Density returns the relative frequency (count/total) of bin i, or 0 if the
// histogram is empty.
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]) of the
// recorded values: the center of the first bin at which the cumulative count
// reaches q·Total. It panics on an empty histogram or a q outside [0, 1].
// The estimate's resolution is one bin width, which is what makes a
// fixed-bucket histogram a bounded-memory percentile tracker for serving
// latencies (p50/p99 over millions of requests in O(bins) space).
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		panic("stats: Histogram.Quantile of empty histogram")
	}
	if math.IsNaN(q) || q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Histogram.Quantile q=%v outside [0,1]", q))
	}
	target := q * float64(h.total)
	cum := 0
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= target && cum > 0 {
			return h.BinCenter(i)
		}
	}
	// Reachable only for q so close to 1 that rounding pushed the target
	// past the final cumulative count: answer the last non-empty bin.
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] > 0 {
			return h.BinCenter(i)
		}
	}
	return h.BinCenter(len(h.Counts) - 1)
}

// Merge adds every bin count of o into h. The histograms must have the same
// range and bin count; per-worker histograms merged at read time let
// concurrent recorders run without shared-write contention.
func (h *Histogram) Merge(o *Histogram) {
	if len(h.Counts) != len(o.Counts) ||
		math.Float64bits(h.Min) != math.Float64bits(o.Min) ||
		math.Float64bits(h.Max) != math.Float64bits(o.Max) {
		panic(fmt.Sprintf("stats: Histogram.Merge shape mismatch: [%v,%v]x%d vs [%v,%v]x%d",
			h.Min, h.Max, len(h.Counts), o.Min, o.Max, len(o.Counts)))
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.total += o.total
}

// Mode returns the center of the fullest bin (first on ties).
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// FromData builds a histogram over the range of xs with the given bin count.
func FromData(xs []float64, bins int) *Histogram {
	min, max := MinMax(xs)
	//drlint:ignore floatcmp exact degenerate-data check: only an exactly constant sample needs an artificial range
	if min == max {
		// Degenerate data: widen the range so the histogram is valid.
		min -= 0.5
		max += 0.5
	}
	h := NewHistogram(min, max, bins)
	h.AddAll(xs)
	return h
}
