package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStdNormalCDFTableValues(t *testing.T) {
	// Reference values from standard normal tables.
	cases := []struct {
		z, want float64
	}{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.96, 0.9750021048517795},
		{2, 0.9772498680518208},
		{3, 0.9986501019683699},
		{-3, 0.0013498980316301035},
	}
	for _, tc := range cases {
		if got := StdNormal.CDF(tc.z); !almostEqual(got, tc.want, 1e-12) {
			t.Fatalf("CDF(%v) = %v, want %v", tc.z, got, tc.want)
		}
	}
}

func TestNormalPDF(t *testing.T) {
	// Peak of the standard normal density.
	if got := StdNormal.PDF(0); !almostEqual(got, 1/math.Sqrt(2*math.Pi), 1e-15) {
		t.Fatalf("PDF(0) = %v", got)
	}
	// Symmetry.
	if StdNormal.PDF(1.3) != StdNormal.PDF(-1.3) {
		t.Fatalf("PDF not symmetric")
	}
	// Scaled distribution integrates the same mass: pdf scales by 1/σ.
	n := Normal{Mu: 2, Sigma: 3}
	if got := n.PDF(2); !almostEqual(got, StdNormal.PDF(0)/3, 1e-15) {
		t.Fatalf("scaled PDF = %v", got)
	}
}

func TestNormalCDFSurvivalComplement(t *testing.T) {
	n := Normal{Mu: -1, Sigma: 2.5}
	for _, x := range []float64{-10, -1, 0, 0.5, 3, 8} {
		if got := n.CDF(x) + n.Survival(x); !almostEqual(got, 1, 1e-12) {
			t.Fatalf("CDF+Survival at %v = %v", x, got)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	n := Normal{Mu: 5, Sigma: 0.5}
	for _, p := range []float64{0.001, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999} {
		x := n.Quantile(p)
		if got := n.CDF(x); !almostEqual(got, p, 1e-10) {
			t.Fatalf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(n.Quantile(0), -1) || !math.IsInf(n.Quantile(1), 1) {
		t.Fatalf("Quantile endpoints should be infinite")
	}
}

func TestNormalQuantileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	StdNormal.Quantile(1.5)
}

func TestTwoSidedProbability(t *testing.T) {
	// The paper's §3 invariant: at coherence factor 1 the coherence
	// probability is 2Φ(1) − 1 ≈ 0.6827.
	if got := TwoSidedProbability(1); !almostEqual(got, 0.6826894921370859, 1e-12) {
		t.Fatalf("TwoSidedProbability(1) = %v", got)
	}
	if got := TwoSidedProbability(0); got != 0 {
		t.Fatalf("TwoSidedProbability(0) = %v", got)
	}
	// 2σ and 3σ rules.
	if got := TwoSidedProbability(2); !almostEqual(got, 0.9544997361036416, 1e-12) {
		t.Fatalf("TwoSidedProbability(2) = %v", got)
	}
	if got := TwoSidedProbability(3); !almostEqual(got, 0.9973002039367398, 1e-12) {
		t.Fatalf("TwoSidedProbability(3) = %v", got)
	}
	// Sign-insensitive.
	if TwoSidedProbability(-2) != TwoSidedProbability(2) {
		t.Fatalf("TwoSidedProbability must use |z|")
	}
}

func TestTwoSidedProbabilityProperties(t *testing.T) {
	// Bounded in [0,1) and monotone in |z|.
	f := func(z float64) bool {
		if math.IsNaN(z) || math.IsInf(z, 0) {
			return true
		}
		p := TwoSidedProbability(z)
		if p < 0 || p > 1 {
			return false
		}
		bigger := TwoSidedProbability(math.Abs(z) + 0.5)
		return bigger >= p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoSidedMatchesDefinition(t *testing.T) {
	// 2Φ(z) − 1 computed via CDF must agree with the erf short-cut.
	for _, z := range []float64{0.1, 0.5, 1, 1.7, 2.4, 4} {
		direct := 2*StdNormal.CDF(z) - 1
		if got := TwoSidedProbability(z); !almostEqual(got, direct, 1e-12) {
			t.Fatalf("z=%v: %v vs %v", z, got, direct)
		}
	}
}
