package stats

import (
	"fmt"
	"math"
)

// Normal is a normal (Gaussian) distribution with mean Mu and standard
// deviation Sigma.
type Normal struct {
	Mu    float64
	Sigma float64
}

// StdNormal is the standard normal distribution N(0, 1).
var StdNormal = Normal{Mu: 0, Sigma: 1}

// PDF returns the probability density at x.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-0.5*z*z) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns P(X <= x), the cumulative distribution function Φ for the
// standard normal. The paper's coherence probability is 2Φ(z) − 1.
func (n Normal) CDF(x float64) float64 {
	z := (x - n.Mu) / (n.Sigma * math.Sqrt2)
	return 0.5 * math.Erfc(-z)
}

// Survival returns P(X > x) = 1 − CDF(x), computed without cancellation.
func (n Normal) Survival(x float64) float64 {
	z := (x - n.Mu) / (n.Sigma * math.Sqrt2)
	return 0.5 * math.Erfc(z)
}

// Quantile returns the value x with CDF(x) = p. Panics for p outside (0,1)
// unless p is exactly 0 or 1, which map to ∓Inf.
func (n Normal) Quantile(p float64) float64 {
	switch {
	case p == 0:
		return math.Inf(-1)
	//drlint:ignore floatcmp IEEE-exact endpoint: only exactly 1 maps to +Inf, anything below goes through Erfinv
	case p == 1:
		return math.Inf(1)
	case p < 0 || p > 1:
		panic(fmt.Sprintf("stats: Quantile p=%v out of [0,1]", p))
	}
	return n.Mu + n.Sigma*math.Sqrt2*math.Erfinv(2*p-1)
}

// TwoSidedProbability returns the probability mass of the standard normal
// within z standard deviations of the mean: 2Φ(z) − 1 for z >= 0.
// This is exactly the paper's CoherenceProbability transform (Equation 2).
// Negative z is treated as |z|.
func TwoSidedProbability(z float64) float64 {
	z = math.Abs(z)
	// 2Φ(z) − 1 = erf(z/√2), computed directly to avoid cancellation.
	return math.Erf(z / math.Sqrt2)
}
