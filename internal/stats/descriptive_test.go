package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanSumVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Sum(xs); got != 40 {
		t.Fatalf("Sum = %v, want 40", got)
	}
	if got := PopVariance(xs); got != 4 {
		t.Fatalf("PopVariance = %v, want 4", got)
	}
	if got := PopStdDev(xs); got != 2 {
		t.Fatalf("PopStdDev = %v, want 2", got)
	}
	// Sample variance = 32/7.
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7.0)
	}
}

func TestEmptyPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Mean":        func() { Mean(nil) },
		"PopVariance": func() { PopVariance(nil) },
		"Variance":    func() { Variance([]float64{1}) },
		"RMS":         func() { RMS(nil) },
		"MinMax":      func() { MinMax(nil) },
		"Quantile":    func() { Quantile(nil, 0.5) },
		"QuantileOOR": func() { Quantile([]float64{1}, 1.5) },
		"ZScoresFlat": func() { ZScores([]float64{3, 3, 3}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestRMS(t *testing.T) {
	// RMS about zero, not about the mean.
	if got := RMS([]float64{3, -4}); !almostEqual(got, math.Sqrt(12.5), 1e-15) {
		t.Fatalf("RMS = %v", got)
	}
	if got := RMS([]float64{5}); got != 5 {
		t.Fatalf("RMS single = %v", got)
	}
	// The key distinction exploited by the coherence model: a constant
	// nonzero vector has zero variance but nonzero RMS.
	xs := []float64{2, 2, 2}
	if got := RMS(xs); got != 2 {
		t.Fatalf("RMS constant = %v", got)
	}
	if got := PopVariance(xs); got != 0 {
		t.Fatalf("PopVariance constant = %v", got)
	}
}

func TestMinMaxMedianQuantile(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	min, max := MinMax(xs)
	if min != 1 || max != 9 {
		t.Fatalf("MinMax = %v,%v", min, max)
	}
	if got := Median(xs); got != 5 {
		t.Fatalf("Median = %v", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("Quantile(0) = %v", got)
	}
	if got := Quantile(xs, 1); got != 9 {
		t.Fatalf("Quantile(1) = %v", got)
	}
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Fatalf("interpolated quantile = %v", got)
	}
	// Quantile must not mutate input.
	if xs[0] != 9 {
		t.Fatalf("Quantile mutated its input")
	}
}

func TestSkewnessKurtosis(t *testing.T) {
	sym := []float64{-2, -1, 0, 1, 2}
	if got := Skewness(sym); !almostEqual(got, 0, 1e-12) {
		t.Fatalf("Skewness symmetric = %v", got)
	}
	right := []float64{1, 1, 1, 10}
	if Skewness(right) <= 0 {
		t.Fatalf("right-skewed data should have positive skewness")
	}
	if got := Skewness([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("constant skewness = %v", got)
	}
	if got := ExcessKurtosis([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("constant kurtosis = %v", got)
	}
	// Large normal sample: skewness ~ 0, excess kurtosis ~ 0.
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	if got := Skewness(xs); math.Abs(got) > 0.05 {
		t.Fatalf("normal sample skewness = %v", got)
	}
	if got := ExcessKurtosis(xs); math.Abs(got) > 0.1 {
		t.Fatalf("normal sample kurtosis = %v", got)
	}
}

func TestZScores(t *testing.T) {
	zs := ZScores([]float64{1, 2, 3, 4, 5})
	if !almostEqual(Mean(zs), 0, 1e-12) {
		t.Fatalf("z-scores mean = %v", Mean(zs))
	}
	if !almostEqual(Variance(zs), 1, 1e-12) {
		t.Fatalf("z-scores variance = %v", Variance(zs))
	}
}

func TestMomentsMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 1000)
	var m Moments
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		m.Push(xs[i])
	}
	if m.N() != len(xs) {
		t.Fatalf("N = %d", m.N())
	}
	if !almostEqual(m.Mean(), Mean(xs), 1e-10) {
		t.Fatalf("streaming mean %v vs %v", m.Mean(), Mean(xs))
	}
	if !almostEqual(m.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("streaming variance %v vs %v", m.Variance(), Variance(xs))
	}
	if !almostEqual(m.PopVariance(), PopVariance(xs), 1e-9) {
		t.Fatalf("streaming popvariance %v vs %v", m.PopVariance(), PopVariance(xs))
	}
	min, max := MinMax(xs)
	if m.Min() != min || m.Max() != max {
		t.Fatalf("streaming min/max %v/%v vs %v/%v", m.Min(), m.Max(), min, max)
	}
}

func TestMomentsEmpty(t *testing.T) {
	var m Moments
	if m.Variance() != 0 || m.Mean() != 0 || m.StdDev() != 0 {
		t.Fatalf("empty Moments should be all zero")
	}
}

func TestMomentsMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	var whole, a, b Moments
	for i, x := range xs {
		whole.Push(x)
		if i < 123 {
			a.Push(x)
		} else {
			b.Push(x)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if !almostEqual(a.Mean(), whole.Mean(), 1e-10) {
		t.Fatalf("merged mean %v vs %v", a.Mean(), whole.Mean())
	}
	if !almostEqual(a.Variance(), whole.Variance(), 1e-9) {
		t.Fatalf("merged variance %v vs %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged min/max mismatch")
	}
	// Merge into empty.
	var empty Moments
	empty.Merge(&whole)
	if empty.N() != whole.N() || empty.Mean() != whole.Mean() {
		t.Fatalf("merge into empty failed")
	}
	// Merge empty into populated is a no-op.
	before := whole
	var e2 Moments
	whole.Merge(&e2)
	if whole != before {
		t.Fatalf("merging empty changed the accumulator")
	}
}

func TestVarianceShiftInvarianceProperty(t *testing.T) {
	// Var(x + c) == Var(x).
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = xs[i] + shift
		}
		return almostEqual(Variance(xs), Variance(ys), 1e-6*(1+math.Abs(shift)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
