// Package stats provides the statistical substrate for the coherence model:
// descriptive statistics, the standard normal distribution (the paper's
// coherence probability is 2Φ(z)−1), covariance and correlation matrices,
// rank correlation, histograms, and streaming moment accumulators.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs. Panics on empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean of empty slice")
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the unbiased sample variance (divisor n−1) of xs.
// Panics if len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		panic("stats: Variance requires at least 2 values")
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// PopVariance returns the population variance (divisor n) of xs.
// Panics on empty input.
func PopVariance(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: PopVariance of empty slice")
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// PopStdDev returns the population standard deviation of xs.
func PopStdDev(xs []float64) float64 { return math.Sqrt(PopVariance(xs)) }

// RMS returns the root mean square of xs about zero. Panics on empty input.
// This is the σ(e,X) estimator of the paper's null-hypothesis model, which
// measures spread about the hypothesized mean of zero rather than about the
// sample mean.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: RMS of empty slice")
	}
	s := 0.0
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MinMax returns the smallest and largest values in xs. Panics on empty
// input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile q=%v out of [0,1]", q))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Skewness returns the sample skewness of xs (biased, moment estimator).
func Skewness(xs []float64) float64 {
	if len(xs) < 2 {
		panic("stats: Skewness requires at least 2 values")
	}
	m := Mean(xs)
	s2, s3 := 0.0, 0.0
	for _, x := range xs {
		d := x - m
		s2 += d * d
		s3 += d * d * d
	}
	n := float64(len(xs))
	sd := math.Sqrt(s2 / n)
	if sd == 0 {
		return 0
	}
	return (s3 / n) / (sd * sd * sd)
}

// ExcessKurtosis returns the sample excess kurtosis of xs (moment
// estimator); 0 for a normal distribution.
func ExcessKurtosis(xs []float64) float64 {
	if len(xs) < 2 {
		panic("stats: ExcessKurtosis requires at least 2 values")
	}
	m := Mean(xs)
	s2, s4 := 0.0, 0.0
	for _, x := range xs {
		d := x - m
		d2 := d * d
		s2 += d2
		s4 += d2 * d2
	}
	n := float64(len(xs))
	v := s2 / n
	if v == 0 {
		return 0
	}
	return (s4/n)/(v*v) - 3
}

// ZScores returns (x−mean)/stddev for each element, using the sample
// standard deviation. Panics if the standard deviation is zero.
func ZScores(xs []float64) []float64 {
	m := Mean(xs)
	sd := StdDev(xs)
	if sd == 0 {
		panic("stats: ZScores of constant data")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = (x - m) / sd
	}
	return out
}

// Moments accumulates streaming mean and variance using Welford's algorithm,
// allowing single-pass, numerically stable computation over large data.
type Moments struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Push adds a value to the accumulator.
func (m *Moments) Push(x float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	delta := x - m.mean
	m.mean += delta / float64(m.n)
	m.m2 += delta * (x - m.mean)
}

// N returns the number of values pushed.
func (m *Moments) N() int { return m.n }

// Mean returns the running mean (0 if empty).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the unbiased sample variance (0 if fewer than 2 values).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// PopVariance returns the population variance (0 if empty).
func (m *Moments) PopVariance() float64 {
	if m.n == 0 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// StdDev returns the unbiased sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Min returns the smallest pushed value (0 if empty).
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest pushed value (0 if empty).
func (m *Moments) Max() float64 { return m.max }

// Merge combines another accumulator into m (parallel Welford merge).
func (m *Moments) Merge(o *Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *o
		return
	}
	n1, n2 := float64(m.n), float64(o.n)
	delta := o.mean - m.mean
	tot := n1 + n2
	m.m2 += o.m2 + delta*delta*n1*n2/tot
	m.mean += delta * n2 / tot
	m.n += o.n
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
}
