package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func TestColumnMeansAndVariances(t *testing.T) {
	x := linalg.FromRows([][]float64{
		{1, 10},
		{3, 10},
		{5, 10},
	})
	means := ColumnMeans(x)
	if !linalg.VecEqual(means, []float64{3, 10}, 1e-15) {
		t.Fatalf("means = %v", means)
	}
	vars := ColumnVariances(x)
	if !linalg.VecEqual(vars, []float64{8.0 / 3.0, 0}, 1e-12) {
		t.Fatalf("vars = %v", vars)
	}
}

func TestCenter(t *testing.T) {
	x := linalg.FromRows([][]float64{{1, 2}, {3, 6}})
	c, means := Center(x)
	if !linalg.VecEqual(means, []float64{2, 4}, 0) {
		t.Fatalf("means = %v", means)
	}
	if !linalg.VecEqual(ColumnMeans(c), []float64{0, 0}, 1e-15) {
		t.Fatalf("centered data not centered")
	}
	// Original must be untouched.
	if x.At(0, 0) != 1 {
		t.Fatalf("Center mutated its input")
	}
}

func TestStandardize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := linalg.NewDense(200, 3)
	for i := 0; i < 200; i++ {
		x.Set(i, 0, rng.NormFloat64()*10+5)   // large scale
		x.Set(i, 1, rng.NormFloat64()*0.01-2) // tiny scale
		x.Set(i, 2, 7)                        // constant
	}
	s, _, sds := Standardize(x, 1e-12)
	vars := ColumnVariances(s)
	if !almostEqual(vars[0], 1, 1e-9) || !almostEqual(vars[1], 1, 1e-9) {
		t.Fatalf("standardized variances = %v", vars)
	}
	// Constant column keeps scale 1 (no divide-by-zero blowup).
	if sds[2] != 1 {
		t.Fatalf("constant column sd = %v, want 1", sds[2])
	}
	if vars[2] != 0 {
		t.Fatalf("constant column variance after standardize = %v", vars[2])
	}
}

func TestCovarianceMatrixHandComputed(t *testing.T) {
	// Points (0,0), (2,2): population covariance [[1,1],[1,1]].
	x := linalg.FromRows([][]float64{{0, 0}, {2, 2}})
	c := CovarianceMatrix(x)
	want := linalg.FromRows([][]float64{{1, 1}, {1, 1}})
	if !c.Equal(want, 1e-14) {
		t.Fatalf("cov = %v, want %v", c, want)
	}
}

func TestCovarianceMatrixDiagonalEqualsVariances(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := linalg.NewDense(80, 5)
	for i := 0; i < 80; i++ {
		for j := 0; j < 5; j++ {
			x.Set(i, j, rng.NormFloat64()*float64(j+1))
		}
	}
	c := CovarianceMatrix(x)
	vars := ColumnVariances(x)
	for j := 0; j < 5; j++ {
		if !almostEqual(c.At(j, j), vars[j], 1e-10) {
			t.Fatalf("cov diagonal %d = %v, want %v", j, c.At(j, j), vars[j])
		}
	}
	if !c.IsSymmetric(0) {
		t.Fatalf("covariance matrix not exactly symmetric")
	}
}

func TestCovarianceTraceEqualsTotalVariance(t *testing.T) {
	// The paper's §2 invariant: the trace of C equals the mean squared
	// deviation from the centroid (total variance), and is rotation
	// invariant.
	rng := rand.New(rand.NewSource(7))
	x := linalg.NewDense(60, 4)
	for i := 0; i < 60; i++ {
		for j := 0; j < 4; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
	}
	c := CovarianceMatrix(x)
	centered, _ := Center(x)
	msd := 0.0
	for i := 0; i < 60; i++ {
		row := centered.RawRow(i)
		msd += linalg.Dot(row, row)
	}
	msd /= 60
	if !almostEqual(c.Trace(), msd, 1e-10) {
		t.Fatalf("trace %v != mean squared deviation %v", c.Trace(), msd)
	}
}

func TestCovariancePSDProperty(t *testing.T) {
	// Covariance matrices are positive semi-definite: vᵀ C v >= 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		d := 2 + rng.Intn(6)
		x := linalg.NewDense(n, d)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				x.Set(i, j, rng.NormFloat64())
			}
		}
		c := CovarianceMatrix(x)
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		return linalg.Dot(v, c.MulVec(v)) >= -1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelationMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 500
	x := linalg.NewDense(n, 3)
	for i := 0; i < n; i++ {
		a := rng.NormFloat64()
		x.Set(i, 0, a*100)             // perfectly correlated pair at
		x.Set(i, 1, a*0.001)           // wildly different scales
		x.Set(i, 2, rng.NormFloat64()) // independent
	}
	r := CorrelationMatrix(x)
	if !almostEqual(r.At(0, 0), 1, 1e-12) || !almostEqual(r.At(1, 1), 1, 1e-12) {
		t.Fatalf("correlation diagonal not 1")
	}
	if !almostEqual(r.At(0, 1), 1, 1e-9) {
		t.Fatalf("perfectly correlated pair r = %v", r.At(0, 1))
	}
	if math.Abs(r.At(0, 2)) > 0.1 {
		t.Fatalf("independent pair r = %v", r.At(0, 2))
	}
}

func TestCorrelationMatrixConstantColumn(t *testing.T) {
	x := linalg.FromRows([][]float64{{1, 5}, {2, 5}, {3, 5}})
	r := CorrelationMatrix(x)
	if r.At(1, 1) != 1 {
		t.Fatalf("diagonal for constant column = %v", r.At(1, 1))
	}
	if r.At(0, 1) != 0 || r.At(1, 0) != 0 {
		t.Fatalf("constant column must yield zero correlation")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Pearson positive = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("Pearson negative = %v", got)
	}
	if got := Pearson(xs, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Fatalf("Pearson with constant = %v", got)
	}
}

func TestPearsonScaleInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i], ys[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		base := Pearson(xs, ys)
		scaled := make([]float64, n)
		for i := range xs {
			scaled[i] = 42*xs[i] + 17
		}
		return almostEqual(Pearson(scaled, ys), base, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRanks(t *testing.T) {
	cases := []struct {
		in, want []float64
	}{
		{[]float64{10, 20, 30}, []float64{1, 2, 3}},
		{[]float64{30, 10, 20}, []float64{3, 1, 2}},
		{[]float64{1, 1, 2}, []float64{1.5, 1.5, 3}},
		{[]float64{5, 5, 5, 5}, []float64{2.5, 2.5, 2.5, 2.5}},
	}
	for _, tc := range cases {
		if got := Ranks(tc.in); !linalg.VecEqual(got, tc.want, 0) {
			t.Fatalf("Ranks(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestSpearman(t *testing.T) {
	// Monotone nonlinear relationship: Spearman 1, Pearson < 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	if got := Spearman(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Spearman monotone = %v", got)
	}
	if p := Pearson(xs, ys); p >= 1-1e-9 {
		t.Fatalf("Pearson on cubic should be < 1, got %v", p)
	}
}
