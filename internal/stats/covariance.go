package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
)

// ColumnMeans returns the mean of every column of the n x d data matrix x
// (rows are points).
func ColumnMeans(x *linalg.Dense) []float64 {
	n, d := x.Dims()
	means := make([]float64, d)
	for i := 0; i < n; i++ {
		row := x.RawRow(i)
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(n)
	}
	return means
}

// ColumnVariances returns the population variance of every column of x.
func ColumnVariances(x *linalg.Dense) []float64 {
	n, d := x.Dims()
	means := ColumnMeans(x)
	vars := make([]float64, d)
	for i := 0; i < n; i++ {
		row := x.RawRow(i)
		for j, v := range row {
			dv := v - means[j]
			vars[j] += dv * dv
		}
	}
	for j := range vars {
		vars[j] /= float64(n)
	}
	return vars
}

// Center returns a copy of x with the column means subtracted, along with
// the means that were removed.
func Center(x *linalg.Dense) (*linalg.Dense, []float64) {
	n, d := x.Dims()
	means := ColumnMeans(x)
	out := linalg.NewDense(n, d)
	for i := 0; i < n; i++ {
		src := x.RawRow(i)
		dst := out.RawRow(i)
		for j := range src {
			dst[j] = src[j] - means[j]
		}
	}
	return out, means
}

// Standardize returns a copy of x with each column centered and scaled to
// unit population variance (the paper's "studentizing" of §2.2), plus the
// per-column means and standard deviations used. Columns whose variance is
// below eps are scaled by 1 (they carry no information; callers typically
// drop them beforehand — see DropConstantColumns).
func Standardize(x *linalg.Dense, eps float64) (out *linalg.Dense, means, sds []float64) {
	n, d := x.Dims()
	means = ColumnMeans(x)
	vars := ColumnVariances(x)
	sds = make([]float64, d)
	for j, v := range vars {
		if v <= eps {
			sds[j] = 1
		} else {
			sds[j] = math.Sqrt(v)
		}
	}
	out = linalg.NewDense(n, d)
	for i := 0; i < n; i++ {
		src := x.RawRow(i)
		dst := out.RawRow(i)
		for j := range src {
			dst[j] = (src[j] - means[j]) / sds[j]
		}
	}
	return out, means, sds
}

// CovarianceMatrix returns the d x d population covariance matrix of the
// n x d data matrix x (rows are points): C_ij = E[(X_i−μ_i)(X_j−μ_j)].
func CovarianceMatrix(x *linalg.Dense) *linalg.Dense {
	n, _ := x.Dims()
	if n < 2 {
		panic(fmt.Sprintf("stats: CovarianceMatrix requires >= 2 rows, got %d", n))
	}
	centered, _ := Center(x)
	// C = Zᵀ Z / n through the blocked syrk kernel, which accumulates each
	// C_ij once and mirrors it, so the result is exactly symmetric with no
	// post-hoc averaging.
	c := linalg.AtA(centered)
	c.Scale(1 / float64(n))
	return c
}

// CorrelationMatrix returns the d x d Pearson correlation matrix of x.
// Zero-variance columns produce zero correlation rows/columns (and a unit
// diagonal).
func CorrelationMatrix(x *linalg.Dense) *linalg.Dense {
	c := CovarianceMatrix(x)
	d := c.Rows()
	sds := make([]float64, d)
	for i := 0; i < d; i++ {
		sds[i] = math.Sqrt(c.At(i, i))
	}
	out := linalg.NewDense(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			if i == j {
				out.Set(i, j, 1)
				continue
			}
			den := sds[i] * sds[j]
			if den == 0 {
				continue
			}
			out.Set(i, j, c.At(i, j)/den)
		}
	}
	return out
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// Returns 0 if either input is constant.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: Pearson length mismatch %d vs %d", len(xs), len(ys)))
	}
	if len(xs) < 2 {
		panic("stats: Pearson requires at least 2 points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation between xs and ys, using
// average ranks for ties.
func Spearman(xs, ys []float64) float64 {
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based average ranks of xs (ties receive the mean of
// the ranks they span).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	i := 0
	for i < n {
		j := i
		//drlint:ignore floatcmp tied ranks are exact duplicates by definition (Spearman averaging applies only to bit-identical values)
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}
