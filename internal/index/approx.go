package index

import (
	"repro/internal/knn"
)

// ApproxIndex is an approximate Euclidean k-nearest-neighbor structure.
// Unlike Index, results may miss true neighbors; the probes argument lets
// callers trade work for recall at query time, and Stats reports how many
// buckets were probed and how large the refined candidate set was so
// experiments can chart recall against ScanFraction.
type ApproxIndex interface {
	// KNNApprox returns up to k approximate nearest neighbors of query by
	// Euclidean distance, sorted ascending, along with the work performed.
	// probes controls the per-table probing depth (1 probes only each
	// table's home bucket; higher values probe neighboring buckets too).
	KNNApprox(query []float64, k, probes int) ([]knn.Neighbor, Stats)
	// Len returns the number of indexed points.
	Len() int
	// Dims returns the dimensionality of the indexed points.
	Dims() int
}

// Recall is the fraction of the exact neighbor set an approximate answer
// recovered: |approx ∩ exact| / |exact|. With equal k on both sides this is
// the standard recall@k used to judge approximate indexes against an exact
// index's ground truth. An empty exact set is vacuously recalled (1).
func Recall(approx, exact []knn.Neighbor) float64 {
	if len(exact) == 0 {
		return 1
	}
	set := make(map[int]bool, len(exact))
	for _, n := range exact {
		set[n.Index] = true
	}
	hits := 0
	for _, n := range approx {
		if set[n.Index] {
			hits++
			delete(set, n.Index) // guard against duplicate indices
		}
	}
	return float64(hits) / float64(len(exact))
}

// MeanRecall averages Recall over paired query workloads.
func MeanRecall(approx, exact [][]knn.Neighbor) float64 {
	if len(approx) != len(exact) {
		panic("index: MeanRecall workload length mismatch")
	}
	if len(exact) == 0 {
		return 1
	}
	sum := 0.0
	for i := range exact {
		sum += Recall(approx[i], exact[i])
	}
	return sum / float64(len(exact))
}
