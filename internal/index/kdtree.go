package index

import (
	"fmt"
	"sort"

	"repro/internal/knn"
	"repro/internal/linalg"
)

// KDTree is a bucketed k-d tree over a dense point matrix. Internal nodes
// split on the dimension of largest spread at the median; leaves hold up to
// LeafSize points. Queries are exact branch-and-bound Euclidean k-NN.
type KDTree struct {
	data     *linalg.Dense
	root     *kdNode
	leafSize int
}

type kdNode struct {
	// Leaf fields: indices of points stored here (nil for internal nodes).
	points []int
	// Internal fields.
	dim         int
	split       float64
	left, right *kdNode
}

// DefaultLeafSize is the bucket capacity used when 0 is passed to
// BuildKDTree.
const DefaultLeafSize = 16

// BuildKDTree constructs a k-d tree over the rows of data. leafSize <= 0
// selects DefaultLeafSize. The matrix is retained (not copied); callers must
// not mutate it while the tree is in use.
func BuildKDTree(data *linalg.Dense, leafSize int) *KDTree {
	if leafSize <= 0 {
		leafSize = DefaultLeafSize
	}
	n, _ := data.Dims()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	t := &KDTree{data: data, leafSize: leafSize}
	t.root = t.build(idx)
	return t
}

func (t *KDTree) build(idx []int) *kdNode {
	if len(idx) <= t.leafSize {
		return &kdNode{points: idx}
	}
	// Pick the dimension with the largest spread over this subset.
	d := t.data.Cols()
	bestDim, bestSpread := 0, -1.0
	for j := 0; j < d; j++ {
		lo := t.data.At(idx[0], j)
		hi := lo
		for _, i := range idx[1:] {
			v := t.data.At(i, j)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if spread := hi - lo; spread > bestSpread {
			bestSpread = spread
			bestDim = j
		}
	}
	if bestSpread == 0 {
		// All points in this subset are identical: store as one leaf to
		// guarantee progress.
		return &kdNode{points: idx}
	}
	dim := bestDim
	sort.Slice(idx, func(a, b int) bool { return t.data.At(idx[a], dim) < t.data.At(idx[b], dim) })
	mid := len(idx) / 2
	// Move mid forward past duplicates of the split value so the right
	// subtree is strictly >= split and both sides are non-empty.
	split := t.data.At(idx[mid], dim)
	lo := mid
	for lo > 0 && t.data.At(idx[lo-1], dim) == split {
		lo--
	}
	if lo == 0 {
		hi := mid
		for hi < len(idx) && t.data.At(idx[hi], dim) == split {
			hi++
		}
		mid = hi
		split = t.data.At(idx[mid], dim)
	} else {
		mid = lo
	}
	return &kdNode{
		dim:   dim,
		split: split,
		left:  t.build(idx[:mid]),
		right: t.build(idx[mid:]),
	}
}

// Len implements Index.
func (t *KDTree) Len() int { return t.data.Rows() }

// Dims implements Index.
func (t *KDTree) Dims() int { return t.data.Cols() }

// KNN implements Index.
func (t *KDTree) KNN(query []float64, k int) ([]knn.Neighbor, Stats) {
	if len(query) != t.Dims() {
		panic(fmt.Sprintf("index: query has %d dims, tree has %d", len(query), t.Dims()))
	}
	if k <= 0 {
		panic(fmt.Sprintf("index: k=%d must be positive", k))
	}
	c := knn.NewCollector(k)
	var stats Stats
	sq := knn.SquaredEuclidean{}
	var walk func(n *kdNode)
	walk = func(n *kdNode) {
		stats.NodesVisited++
		if n.points != nil {
			for _, i := range n.points {
				stats.PointsScanned++
				c.Offer(i, sq.Distance(t.data.RawRow(i), query))
			}
			return
		}
		diff := query[n.dim] - n.split
		near, far := n.left, n.right
		if diff >= 0 {
			near, far = n.right, n.left
		}
		walk(near)
		// The far child can only contain a closer point if the hyperplane
		// is nearer than the current k-th best (squared) distance.
		if diff*diff < c.Worst() {
			walk(far)
		}
	}
	walk(t.root)
	return sqrtResults(c.Results()), stats
}
