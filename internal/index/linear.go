package index

import (
	"fmt"

	"repro/internal/knn"
	"repro/internal/linalg"
)

// LinearScan is the no-index baseline: every query computes the exact
// distance to every point. Its Stats always report a full scan, which is
// the yardstick the partition indexes are judged against.
type LinearScan struct {
	data *linalg.Dense
}

// NewLinearScan wraps a point matrix (retained, not copied).
func NewLinearScan(data *linalg.Dense) *LinearScan { return &LinearScan{data: data} }

// Len implements Index.
func (l *LinearScan) Len() int { return l.data.Rows() }

// Dims implements Index.
func (l *LinearScan) Dims() int { return l.data.Cols() }

// KNN implements Index.
func (l *LinearScan) KNN(query []float64, k int) ([]knn.Neighbor, Stats) {
	if len(query) != l.Dims() {
		panic(fmt.Sprintf("index: query has %d dims, data has %d", len(query), l.Dims()))
	}
	res := knn.Search(l.data, query, k, knn.Euclidean{}, -1)
	return res, Stats{NodesVisited: 1, PointsScanned: l.data.Rows()}
}
