package index

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func benchPoints(n, d int) (*linalg.Dense, [][]float64) {
	rng := rand.New(rand.NewSource(7))
	m := randPoints(rng, n, d)
	queries := make([][]float64, 32)
	for i := range queries {
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.Float64() * 10
		}
		queries[i] = q
	}
	return m, queries
}

func benchIndexKNN(b *testing.B, build func(*linalg.Dense) Index, d int) {
	b.Helper()
	data, queries := benchPoints(10000, d)
	idx := build(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.KNN(queries[i%len(queries)], 3)
	}
}

func BenchmarkKDTree3NN_10000x4(b *testing.B) {
	benchIndexKNN(b, func(m *linalg.Dense) Index { return BuildKDTree(m, 0) }, 4)
}

func BenchmarkKDTree3NN_10000x32(b *testing.B) {
	benchIndexKNN(b, func(m *linalg.Dense) Index { return BuildKDTree(m, 0) }, 32)
}

func BenchmarkRTree3NN_10000x4(b *testing.B) {
	benchIndexKNN(b, func(m *linalg.Dense) Index { return BuildRTree(m, 0) }, 4)
}

func BenchmarkVAFile3NN_10000x32(b *testing.B) {
	benchIndexKNN(b, func(m *linalg.Dense) Index { return BuildVAFile(m, 6) }, 32)
}

func BenchmarkLinearScan3NN_10000x32(b *testing.B) {
	benchIndexKNN(b, func(m *linalg.Dense) Index { return NewLinearScan(m) }, 32)
}

func BenchmarkBuildKDTree10000x16(b *testing.B) {
	data, _ := benchPoints(10000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildKDTree(data, 0)
	}
}

func BenchmarkBuildVAFile10000x16(b *testing.B) {
	data, _ := benchPoints(10000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildVAFile(data, 6)
	}
}
