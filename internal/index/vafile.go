package index

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/knn"
	"repro/internal/linalg"
)

// VAFile is a vector-approximation file (Weber, Schek & Blott, VLDB 1998 —
// the paper's reference [21]): each point is quantized to a small grid cell
// per dimension; queries first scan the compact approximations computing
// lower/upper distance bounds, then fetch only the full vectors that might
// still be among the k nearest. In high dimensionality the sequential
// approximation scan beats partition trees, which is exactly the regime the
// paper targets.
type VAFile struct {
	data *linalg.Dense
	// boundaries[j] holds the cell boundaries of dimension j
	// (cellsPerDim+1 ascending values covering the data range).
	boundaries [][]float64
	// cells[i*d+j] is the cell of point i in dimension j.
	cells []uint8
	bits  int
}

// BuildVAFile quantizes the rows of data using 2^bits equi-width cells per
// dimension (1 <= bits <= 8). The matrix is retained, not copied.
func BuildVAFile(data *linalg.Dense, bits int) *VAFile {
	if bits < 1 || bits > 8 {
		panic(fmt.Sprintf("index: VAFile bits=%d out of [1,8]", bits))
	}
	n, d := data.Dims()
	cellsPerDim := 1 << bits
	v := &VAFile{data: data, bits: bits, boundaries: make([][]float64, d), cells: make([]uint8, n*d)}
	for j := 0; j < d; j++ {
		lo, hi := data.At(0, j), data.At(0, j)
		for i := 1; i < n; i++ {
			x := data.At(i, j)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		//drlint:ignore floatcmp exact degenerate-range check: any nonzero width yields usable cell bounds, only an exactly flat dimension needs widening
		if hi == lo {
			hi = lo + 1 // degenerate dimension: one fat cell region
		}
		bs := make([]float64, cellsPerDim+1)
		for c := 0; c <= cellsPerDim; c++ {
			bs[c] = lo + (hi-lo)*float64(c)/float64(cellsPerDim)
		}
		v.boundaries[j] = bs
	}
	for i := 0; i < n; i++ {
		row := data.RawRow(i)
		for j, x := range row {
			v.cells[i*d+j] = v.cellOf(j, x)
		}
	}
	return v
}

func (v *VAFile) cellOf(j int, x float64) uint8 {
	bs := v.boundaries[j]
	cellsPerDim := len(bs) - 1
	lo, hi := bs[0], bs[cellsPerDim]
	c := int(float64(cellsPerDim) * (x - lo) / (hi - lo))
	if c < 0 {
		c = 0
	}
	if c >= cellsPerDim {
		c = cellsPerDim - 1
	}
	return uint8(c)
}

// Len implements Index.
func (v *VAFile) Len() int { return v.data.Rows() }

// Dims implements Index.
func (v *VAFile) Dims() int { return v.data.Cols() }

// Bits returns the quantization resolution.
func (v *VAFile) Bits() int { return v.bits }

// KNN implements Index via the standard two-phase VA-SSA algorithm.
// NodesVisited counts approximation records examined (always n);
// PointsScanned counts full vectors refined in phase two.
func (v *VAFile) KNN(query []float64, k int) ([]knn.Neighbor, Stats) {
	n, d := v.data.Dims()
	if len(query) != d {
		panic(fmt.Sprintf("index: query has %d dims, va-file has %d", len(query), d))
	}
	if k <= 0 {
		panic(fmt.Sprintf("index: k=%d must be positive", k))
	}
	var stats Stats

	// Phase 1: bound every approximation; keep the k-th smallest upper
	// bound as the filtering threshold.
	type bound struct {
		idx  int
		lbSq float64
	}
	lb := make([]bound, n)
	ubHeap := knn.NewCollector(k)
	for i := 0; i < n; i++ {
		stats.NodesVisited++
		lbSq, ubSq := v.boundsSq(i, query)
		lb[i] = bound{idx: i, lbSq: lbSq}
		ubHeap.Offer(i, ubSq)
	}
	threshold := ubHeap.Worst()

	// Phase 2: visit candidates in ascending lower-bound order, refining
	// with exact distances; stop when the next lower bound exceeds the
	// current k-th best exact distance.
	sort.Slice(lb, func(a, b int) bool { return lb[a].lbSq < lb[b].lbSq })
	c := knn.NewCollector(k)
	sq := knn.SquaredEuclidean{}
	for _, b := range lb {
		if b.lbSq > threshold {
			break
		}
		if c.Full() && b.lbSq > c.Worst() {
			break
		}
		stats.PointsScanned++
		c.Offer(b.idx, sq.Distance(v.data.RawRow(b.idx), query))
	}
	return sqrtResults(c.Results()), stats
}

// boundsSq returns squared lower and upper bounds on the Euclidean distance
// between the query and point i, derived from i's cell only.
func (v *VAFile) boundsSq(i int, query []float64) (lbSq, ubSq float64) {
	d := v.data.Cols()
	for j := 0; j < d; j++ {
		cell := int(v.cells[i*d+j])
		lo := v.boundaries[j][cell]
		hi := v.boundaries[j][cell+1]
		q := query[j]
		// Lower bound: distance from q to the cell interval.
		var l float64
		switch {
		case q < lo:
			l = lo - q
		case q > hi:
			l = q - hi
		}
		lbSq += l * l
		// Upper bound: distance to the farthest cell edge.
		u := math.Max(math.Abs(q-lo), math.Abs(q-hi))
		ubSq += u * u
	}
	return lbSq, ubSq
}

// sqrtResults converts squared-Euclidean collector output to true distances.
func sqrtResults(res []knn.Neighbor) []knn.Neighbor {
	for i := range res {
		res[i].Dist = math.Sqrt(res[i].Dist)
	}
	return res
}
