package index

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func TestIDistanceValidation(t *testing.T) {
	data := linalg.NewDense(5, 2)
	defer func() {
		if recover() == nil {
			t.Fatalf("partitions=0 must panic")
		}
	}()
	BuildIDistance(data, 0, 1)
}

func TestIDistancePartitionsCappedAtN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := randPoints(rng, 5, 2)
	id := BuildIDistance(data, 50, 1)
	if id.Partitions() > 5 {
		t.Fatalf("partitions = %d", id.Partitions())
	}
	got, _ := id.KNN(data.Row(0), 2)
	if got[0].Index != 0 || got[0].Dist != 0 {
		t.Fatalf("self query wrong: %v", got)
	}
}

func TestIDistancePrunesOnClusteredData(t *testing.T) {
	// Well-separated clusters: most queries stay inside one partition band
	// and scan a small fraction of the points.
	rng := rand.New(rand.NewSource(2))
	n := 5000
	data := linalg.NewDense(n, 6)
	for i := 0; i < n; i++ {
		c := i % 8
		for j := 0; j < 6; j++ {
			data.Set(i, j, float64(c*30)+rng.NormFloat64())
		}
	}
	id := BuildIDistance(data, 8, 3)
	var total Stats
	const queries = 20
	for q := 0; q < queries; q++ {
		query := data.Row(rng.Intn(n))
		_, st := id.KNN(query, 3)
		total.Add(st)
	}
	if frac := float64(total.PointsScanned) / float64(queries*n); frac > 0.25 {
		t.Fatalf("idistance scanned %.1f%% of points on clustered data", 100*frac)
	}
}

func TestIDistanceDuplicatePoints(t *testing.T) {
	data := linalg.NewDense(30, 2)
	for i := 0; i < 30; i++ {
		data.Set(i, 0, 1)
		data.Set(i, 1, 2)
	}
	id := BuildIDistance(data, 3, 4)
	got, _ := id.KNN([]float64{1, 2}, 5)
	if len(got) != 5 {
		t.Fatalf("results = %v", got)
	}
	for _, nb := range got {
		if nb.Dist != 0 {
			t.Fatalf("duplicate distance %v", nb.Dist)
		}
	}
}
