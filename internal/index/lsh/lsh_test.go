package lsh

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/index"
	"repro/internal/knn"
	"repro/internal/linalg"
)

// clusteredPoints draws n points from c Gaussian blobs in d dims — the
// friendly regime for LSH (neighbors share buckets far more often than
// non-neighbors).
func clusteredPoints(seed int64, n, d, c int) *linalg.Dense {
	rng := rand.New(rand.NewSource(seed))
	centers := linalg.NewDense(c, d)
	for i := 0; i < c; i++ {
		for j := 0; j < d; j++ {
			centers.Set(i, j, rng.NormFloat64()*8)
		}
	}
	m := linalg.NewDense(n, d)
	for i := 0; i < n; i++ {
		ctr := centers.RawRow(i % c)
		for j := 0; j < d; j++ {
			m.Set(i, j, ctr[j]+rng.NormFloat64())
		}
	}
	return m
}

func TestProbeSequenceOrderAndValidity(t *testing.T) {
	frac := []float64{0.1, 0.6, 0.45}
	seq := probeSequence(frac, 1000)
	if want := 3*3*3 - 1; len(seq) != want {
		t.Fatalf("m=3 generated %d perturbation sets, want %d", len(seq), want)
	}
	score := func(deltas []int8) float64 {
		s := 0.0
		for j, dv := range deltas {
			switch dv {
			case -1:
				s += frac[j] * frac[j]
			case +1:
				s += (1 - frac[j]) * (1 - frac[j])
			}
		}
		return s
	}
	seen := map[string]bool{}
	prev := -1.0
	for _, deltas := range seq {
		if len(deltas) != len(frac) {
			t.Fatalf("delta vector has %d entries", len(deltas))
		}
		allZero := true
		for _, dv := range deltas {
			if dv != 0 {
				allZero = false
			}
			if dv < -1 || dv > 1 {
				t.Fatalf("delta %d out of range", dv)
			}
		}
		if allZero {
			t.Fatal("probe sequence emitted the home bucket")
		}
		key := string(EncodeKey(widen(deltas)))
		if seen[key] {
			t.Fatalf("duplicate perturbation %v", deltas)
		}
		seen[key] = true
		if s := score(deltas); s < prev-1e-12 {
			t.Fatalf("scores not nondecreasing: %v after %v", s, prev)
		} else {
			prev = s
		}
	}
	// The cheapest perturbation moves the hash whose boundary is nearest:
	// hash 0 at frac 0.1 steps down.
	if want := []int8{-1, 0, 0}; !reflect.DeepEqual(seq[0], want) {
		t.Fatalf("first perturbation %v, want %v", seq[0], want)
	}
}

func widen(deltas []int8) []int32 {
	out := make([]int32, len(deltas))
	for i, d := range deltas {
		out[i] = int32(d)
	}
	return out
}

func TestProbeSequenceCount(t *testing.T) {
	frac := []float64{0.5, 0.25}
	if got := probeSequence(frac, 3); len(got) != 3 {
		t.Fatalf("count=3 returned %d sets", len(got))
	}
	if got := probeSequence(frac, 0); got != nil {
		t.Fatalf("count=0 returned %v", got)
	}
	if got := probeSequence(nil, 5); got != nil {
		t.Fatalf("m=0 returned %v", got)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	cases := [][]int32{
		{},
		{0},
		{1, -1, 63, -64, 64, -65},
		{math.MaxInt32, math.MinInt32, 0, -1},
		{12345, -98765, 1 << 20},
	}
	for _, hs := range cases {
		key := EncodeKey(hs)
		back, err := DecodeKey(key)
		if err != nil {
			t.Fatalf("decode(%v): %v", hs, err)
		}
		if len(back) != len(hs) {
			t.Fatalf("round trip of %v changed length: %v", hs, back)
		}
		for i := range hs {
			if back[i] != hs[i] {
				t.Fatalf("round trip of %v gave %v", hs, back)
			}
		}
	}
}

func TestDecodeKeyRejectsMalformed(t *testing.T) {
	for _, key := range []string{"\x80", "\xff\xff\xff\xff\xff\x7f", "\x81\x00"} {
		if _, err := DecodeKey(key); err == nil {
			t.Fatalf("DecodeKey(%q) accepted malformed input", key)
		}
	}
}

func TestBuildDeterministicAcrossRuns(t *testing.T) {
	data := clusteredPoints(7, 500, 20, 5)
	cfg := Config{Tables: 6, Hashes: 8, Seed: 99}
	a := Build(data, cfg)
	b := Build(data, cfg)
	if a.Width() != b.Width() {
		t.Fatalf("widths differ: %v vs %v", a.Width(), b.Width())
	}
	queries := clusteredPoints(8, 20, 20, 5)
	for i := 0; i < queries.Rows(); i++ {
		q := queries.RawRow(i)
		ra, sa := a.KNNApprox(q, 5, 4)
		rb, sb := b.KNNApprox(q, 5, 4)
		if !reflect.DeepEqual(ra, rb) || sa != sb {
			t.Fatalf("query %d differs across identical builds", i)
		}
	}
}

func TestKNNApproxSetMatchesSerial(t *testing.T) {
	data := clusteredPoints(11, 400, 12, 4)
	ix := Build(data, Config{Tables: 4, Hashes: 6, Seed: 3})
	queries := clusteredPoints(12, 37, 12, 4)
	got, gotStats := ix.KNNApproxSet(queries, 3, 5)
	var wantStats index.Stats
	for i := 0; i < queries.Rows(); i++ {
		want, s := ix.KNNApprox(queries.RawRow(i), 3, 5)
		wantStats.Add(s)
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("batch result %d differs from serial", i)
		}
	}
	if gotStats != wantStats {
		t.Fatalf("batch stats %+v != serial %+v", gotStats, wantStats)
	}
}

func TestStatsAccounting(t *testing.T) {
	data := clusteredPoints(21, 300, 10, 3)
	ix := Build(data, Config{Tables: 5, Hashes: 4, Seed: 1})
	const probes = 7
	_, s := ix.KNNApprox(data.RawRow(0), 3, probes)
	if want := 5 * probes; s.BucketsProbed != want {
		t.Fatalf("BucketsProbed = %d, want %d", s.BucketsProbed, want)
	}
	if s.NodesVisited != s.BucketsProbed {
		t.Fatalf("NodesVisited = %d, BucketsProbed = %d", s.NodesVisited, s.BucketsProbed)
	}
	if s.CandidateSize != s.PointsScanned {
		t.Fatalf("CandidateSize = %d, PointsScanned = %d", s.CandidateSize, s.PointsScanned)
	}
	if s.CandidateSize == 0 {
		t.Fatal("query at an indexed point found no candidates")
	}
	if s.CandidateSize > 300 {
		t.Fatalf("CandidateSize %d exceeds point count", s.CandidateSize)
	}
}

// holdOut splits a point set into data and an in-distribution query set.
func holdOut(all *linalg.Dense, nq int) (data, queries *linalg.Dense) {
	n := all.Rows()
	dataIdx := make([]int, 0, n-nq)
	queryIdx := make([]int, 0, nq)
	for i := 0; i < n; i++ {
		if i < nq {
			queryIdx = append(queryIdx, i)
		} else {
			dataIdx = append(dataIdx, i)
		}
	}
	return all.SliceRows(dataIdx), all.SliceRows(queryIdx)
}

func TestRecallImprovesWithProbes(t *testing.T) {
	data, queries := holdOut(clusteredPoints(31, 1540, 24, 8), 40)
	ix := Build(data, Config{Tables: 6, Hashes: 6, Seed: 5})
	exact := knn.SearchSetParallel(data, queries, 10, knn.Euclidean{}, false)
	recallAt := func(probes int) float64 {
		approx, _ := ix.KNNApproxSet(queries, 10, probes)
		return index.MeanRecall(approx, exact)
	}
	r1, r32 := recallAt(1), recallAt(32)
	if r32 < r1 {
		t.Fatalf("recall fell with more probes: %v at 1, %v at 32", r1, r32)
	}
	if r32 < 0.6 {
		t.Fatalf("multi-probe recall %v too low on clustered data", r32)
	}
}

func TestMaxProbes(t *testing.T) {
	data := clusteredPoints(41, 50, 4, 2)
	if got := Build(data, Config{Tables: 2, Hashes: 2, Seed: 1}).MaxProbes(); got != 9 {
		t.Fatalf("MaxProbes(m=2) = %d, want 9", got)
	}
	if got := Build(data, Config{Tables: 2, Hashes: 40, Seed: 1}).MaxProbes(); got != 1<<30 {
		t.Fatalf("MaxProbes(m=40) = %d, want cap", got)
	}
}

func TestValidation(t *testing.T) {
	data := clusteredPoints(51, 30, 5, 2)
	ix := Build(data, Config{Seed: 1})
	for name, fn := range map[string]func(){
		"wrong dims":   func() { ix.KNNApprox([]float64{1}, 1, 1) },
		"k zero":       func() { ix.KNNApprox(make([]float64, 5), 0, 1) },
		"neg tables":   func() { Build(data, Config{Tables: -1}) },
		"neg width":    func() { Build(data, Config{Width: -2}) },
		"nan width":    func() { Build(data, Config{Width: math.NaN()}) },
		"empty matrix": func() { Build(linalg.NewDense(0, 0), Config{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	// probes < 1 is clamped, not a panic.
	if res, _ := ix.KNNApprox(make([]float64, 5), 1, 0); res == nil {
		t.Fatal("probes=0 should still probe home buckets")
	}
}

func TestKMoreThanN(t *testing.T) {
	data := clusteredPoints(61, 8, 3, 1)
	ix := Build(data, Config{Tables: 3, Hashes: 2, Width: 1e6, Seed: 1})
	res, _ := ix.KNNApprox(data.RawRow(0), 50, 1)
	if len(res) != 8 {
		t.Fatalf("k>n with a covering width returned %d of 8 points", len(res))
	}
}

func TestRecallHelper(t *testing.T) {
	exact := []knn.Neighbor{{Index: 1}, {Index: 2}, {Index: 3}}
	if got := index.Recall([]knn.Neighbor{{Index: 2}, {Index: 9}}, exact); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("Recall = %v", got)
	}
	if got := index.Recall(nil, nil); got != 1 {
		t.Fatalf("Recall of empty ground truth = %v", got)
	}
	if got := index.MeanRecall([][]knn.Neighbor{exact, nil}, [][]knn.Neighbor{exact, exact}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("MeanRecall = %v", got)
	}
}
