package lsh

import (
	"container/heap"
)

// Query-directed multi-probe sequences (Lv et al., VLDB 2007, §4). For a
// query whose j-th hash lands at fractional position frac[j] inside its home
// slot, perturbing hash j by δ ∈ {-1,+1} moves the probe into a neighboring
// slot whose boundary is x_j(δ) away:
//
//	x_j(-1) = frac[j]        (distance back to the lower boundary)
//	x_j(+1) = 1 - frac[j]    (distance forward to the upper boundary)
//
// The expected squared distance of a perturbation set is the sum of the
// squared x of its members, so the best probing order enumerates subsets of
// the 2m single-coordinate perturbations in increasing score, skipping sets
// that perturb the same coordinate twice. The enumeration is the classic
// min-heap over {shift, expand} successors of position sets into the
// score-sorted perturbation list, which yields sets in exactly
// nondecreasing-score order without materializing all 3^m - 1 of them.

// perturbation is one single-coordinate move, scored for the current query.
type perturbation struct {
	hash  int  // which of the m hashes to move
	delta int8 // -1 or +1
	score float64
}

// candSet is a set of positions (ascending) into the score-sorted
// perturbation list, with its total score.
type candSet struct {
	score float64
	pos   []int
}

// candHeap orders candidate sets by score, breaking exact ties by the
// lexicographic order of their position sets so probing is deterministic
// even on tie-heavy fixtures.
type candHeap []candSet

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if h[i].score < h[j].score {
		return true
	}
	if h[i].score > h[j].score {
		return false
	}
	return lexLess(h[i].pos, h[j].pos)
}
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(candSet)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	out := old[n-1]
	*h = old[:n-1]
	return out
}

func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// probeSequence returns up to count perturbation vectors (δ ∈ {-1,0,+1}^m,
// never all-zero) in increasing expected-distance order for the given
// fractional offsets. count <= 0 returns nil.
func probeSequence(frac []float64, count int) [][]int8 {
	m := len(frac)
	if count <= 0 || m == 0 {
		return nil
	}
	perturbs := make([]perturbation, 0, 2*m)
	for j, f := range frac {
		perturbs = append(perturbs,
			perturbation{hash: j, delta: -1, score: f * f},
			perturbation{hash: j, delta: +1, score: (1 - f) * (1 - f)},
		)
	}
	// Stable score sort with (hash, delta) tie-break for determinism.
	sortPerturbations(perturbs)

	h := candHeap{{score: perturbs[0].score, pos: []int{0}}}
	out := make([][]int8, 0, count)
	for len(h) > 0 && len(out) < count {
		c := heap.Pop(&h).(candSet)
		last := c.pos[len(c.pos)-1]
		if last+1 < len(perturbs) {
			// Shift: replace the maximum position with its successor.
			shifted := make([]int, len(c.pos))
			copy(shifted, c.pos)
			shifted[len(shifted)-1] = last + 1
			heap.Push(&h, candSet{
				score: c.score - perturbs[last].score + perturbs[last+1].score,
				pos:   shifted,
			})
			// Expand: additionally include the successor.
			expanded := make([]int, len(c.pos)+1)
			copy(expanded, c.pos)
			expanded[len(expanded)-1] = last + 1
			heap.Push(&h, candSet{
				score: c.score + perturbs[last+1].score,
				pos:   expanded,
			})
		}
		if deltas, ok := applySet(perturbs, c.pos, m); ok {
			out = append(out, deltas)
		}
	}
	return out
}

// applySet converts a position set into a per-hash delta vector, rejecting
// sets that perturb the same hash twice (probing both neighbors of one slot
// in a single perturbed bucket is contradictory).
func applySet(perturbs []perturbation, pos []int, m int) ([]int8, bool) {
	deltas := make([]int8, m)
	for _, p := range pos {
		pt := perturbs[p]
		if deltas[pt.hash] != 0 {
			return nil, false
		}
		deltas[pt.hash] = pt.delta
	}
	return deltas, true
}

func sortPerturbations(ps []perturbation) {
	// Insertion sort: 2m is small (m rarely above 16) and avoids pulling in
	// sort.Slice closures on the query hot path.
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && perturbLess(ps[j], ps[j-1]); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func perturbLess(a, b perturbation) bool {
	if a.score < b.score {
		return true
	}
	if a.score > b.score {
		return false
	}
	if a.hash != b.hash {
		return a.hash < b.hash
	}
	return a.delta < b.delta
}
