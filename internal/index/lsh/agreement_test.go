package lsh

import (
	"math"
	"testing"

	"repro/internal/index"
	"repro/internal/knn"
)

// TestCrossIndexAgreementFixture pins the whole index layer to one
// deterministic fixture: every exact structure must return the identical
// k-NN set for every query, and the LSH index with tables and probes maxed
// out must recover that set completely (recall 1.0).
func TestCrossIndexAgreementFixture(t *testing.T) {
	data, queries := holdOut(clusteredPoints(1234, 385, 8, 6), 25)
	const k = 5

	exactBuilders := map[string]index.Index{
		"kdtree":    index.BuildKDTree(data, 4),
		"vafile":    index.BuildVAFile(data, 5),
		"rtree":     index.BuildRTree(data, 8),
		"idistance": index.BuildIDistance(data, 6, 1),
		"linear":    index.NewLinearScan(data),
	}
	lshIdx := Build(data, Config{Tables: 12, Hashes: 4, Seed: 77})
	probes := lshIdx.MaxProbes()

	var recallSum float64
	for qi := 0; qi < queries.Rows(); qi++ {
		q := queries.RawRow(qi)
		want := knn.Search(data, q, k, knn.Euclidean{}, -1)
		for name, ix := range exactBuilders {
			got, _ := ix.KNN(q, k)
			if len(got) != len(want) {
				t.Fatalf("%s query %d: %d results, want %d", name, qi, len(got), len(want))
			}
			for r := range got {
				if got[r].Index != want[r].Index || math.Abs(got[r].Dist-want[r].Dist) > 1e-9 {
					t.Fatalf("%s query %d rank %d: got (%d, %v), want (%d, %v)",
						name, qi, r, got[r].Index, got[r].Dist, want[r].Index, want[r].Dist)
				}
			}
		}
		approx, _ := lshIdx.KNNApprox(q, k, probes)
		recallSum += index.Recall(approx, want)
	}
	if recall := recallSum / float64(queries.Rows()); recall != 1.0 {
		t.Fatalf("maxed-out LSH recall = %v, want 1.0", recall)
	}
}
