package lsh

import (
	"errors"
)

// Bucket keys are a table's m hash values packed into a compact byte string
// (zigzag + varint per value), so buckets live in an ordinary Go map and the
// encoding is byte-identical across runs for the same hashes.

// EncodeKey packs a hash vector into a string bucket key.
func EncodeKey(hs []int32) string {
	buf := make([]byte, 0, len(hs)*2)
	for _, h := range hs {
		u := zigzag(h)
		for u >= 0x80 {
			buf = append(buf, byte(u)|0x80)
			u >>= 7
		}
		buf = append(buf, byte(u))
	}
	return string(buf)
}

// DecodeKey reverses EncodeKey. It errors (never panics) on truncated or
// over-long input.
func DecodeKey(key string) ([]int32, error) {
	var out []int32
	var u uint32
	var shift uint
	for i := 0; i < len(key); i++ {
		b := key[i]
		if shift >= 32 || (shift == 28 && b > 0x0F) {
			return nil, errors.New("lsh: bucket key varint overflows int32")
		}
		u |= uint32(b&0x7F) << shift
		if b&0x80 != 0 {
			shift += 7
			continue
		}
		// Reject non-canonical zero continuation bytes ("0x80 0x00"): they
		// decode to the same value as the shorter form, which would break
		// the encode/decode round trip.
		if b == 0 && shift > 0 {
			return nil, errors.New("lsh: non-canonical bucket key varint")
		}
		out = append(out, unzigzag(u))
		u, shift = 0, 0
	}
	if shift != 0 {
		return nil, errors.New("lsh: truncated bucket key varint")
	}
	return out, nil
}

// zigzag maps signed values to unsigned so small magnitudes of either sign
// encode in few bytes.
func zigzag(v int32) uint32 { return uint32((v << 1) ^ (v >> 31)) }

func unzigzag(u uint32) int32 { return int32(u>>1) ^ -int32(u&1) }
