// Package lsh is the approximate similarity-search subsystem: a p-stable
// random-projection locality-sensitive hash index (Datar et al., SoCG 2004)
// with L independent hash tables and query-directed multi-probe querying
// (Lv et al., VLDB 2007). Each of the m hash functions of a table slices
// the data along a random Gaussian direction into slots of width w; a
// table's bucket key concatenates its m slot numbers. Probing neighboring
// buckets in the order an ideal perturbation would visit them lets few
// tables reach the recall that basic LSH needs an order of magnitude more
// tables for — which is what makes approximate search on reduced
// representations practical at production scale.
//
// Every query reports index.Stats with BucketsProbed and CandidateSize
// filled in, so experiments can chart recall against ScanFraction with the
// exact indexes as ground truth.
package lsh

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/index"
	"repro/internal/knn"
	"repro/internal/linalg"
)

// Defaults used when Config fields are zero.
const (
	DefaultTables = 8
	DefaultHashes = 12
)

// Config parameterizes Build.
type Config struct {
	// Tables is L, the number of independent hash tables (0 selects
	// DefaultTables). More tables raise recall and memory linearly.
	Tables int
	// Hashes is m, the number of projections concatenated per table key
	// (0 selects DefaultHashes). More hashes make buckets smaller and more
	// selective.
	Hashes int
	// Width is the slot width w of each projection. 0 estimates a width
	// from the data's nearest-neighbor radius so the home slot is
	// neighborhood-sized.
	Width float64
	// Seed is the root seed. Every table's projections and offsets derive
	// deterministically from it, so builds and queries are byte-identical
	// across runs and independent of construction parallelism.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Tables == 0 {
		c.Tables = DefaultTables
	}
	if c.Hashes == 0 {
		c.Hashes = DefaultHashes
	}
	return c
}

// Index is a built multi-probe LSH structure. It implements
// index.ApproxIndex.
type Index struct {
	data   *linalg.Dense
	norms  []float64 // squared L2 norm of every data row, cached at Build
	tables []table
	hashes int
	width  float64
	seed   int64
}

// table is one independent hash family: m Gaussian directions, m slot
// offsets, and the bucket map from encoded slot vectors to point ids.
type table struct {
	proj    []float64 // hashes x dims, row-major
	off     []float64 // hashes offsets in [0, w)
	buckets map[string][]int32
}

// Build hashes the rows of data into cfg.Tables bucket maps. The matrix is
// retained, not copied. Tables are built concurrently by a worker pool
// sized by runtime.GOMAXPROCS(0); each table is seeded independently from
// cfg.Seed, so the result does not depend on scheduling.
func Build(data *linalg.Dense, cfg Config) *Index {
	c := cfg.withDefaults()
	n, d := data.Dims()
	if n == 0 || d == 0 {
		panic(fmt.Sprintf("lsh: cannot index %dx%d data", n, d))
	}
	if c.Tables < 1 || c.Hashes < 1 {
		panic(fmt.Sprintf("lsh: tables=%d hashes=%d must be positive", c.Tables, c.Hashes))
	}
	if c.Width < 0 || math.IsNaN(c.Width) || math.IsInf(c.Width, 0) {
		panic(fmt.Sprintf("lsh: width=%v must be finite and non-negative", c.Width))
	}
	width := c.Width
	if width == 0 {
		width = estimateWidth(data, c.Seed)
	}
	ix := &Index{
		data:   data,
		norms:  linalg.RowNormsSq(data),
		tables: make([]table, c.Tables),
		hashes: c.Hashes,
		width:  width,
		seed:   c.Seed,
	}
	parallelFor(c.Tables, func(t int) {
		ix.tables[t] = buildTable(data, c.Hashes, width, deriveSeed(c.Seed, t))
	})
	return ix
}

// buildTable draws one table's hash family and buckets every point.
func buildTable(data *linalg.Dense, m int, width float64, seed int64) table {
	n, d := data.Dims()
	rng := rand.New(rand.NewSource(seed))
	tb := table{
		proj:    make([]float64, m*d),
		off:     make([]float64, m),
		buckets: make(map[string][]int32, n/2+1),
	}
	for i := range tb.proj {
		tb.proj[i] = rng.NormFloat64()
	}
	for j := range tb.off {
		tb.off[j] = rng.Float64() * width
	}
	hs := make([]int32, m)
	for i := 0; i < n; i++ {
		row := data.RawRow(i)
		for j := 0; j < m; j++ {
			hs[j] = slot(linalg.Dot(tb.proj[j*d:(j+1)*d], row), tb.off[j], width)
		}
		key := EncodeKey(hs)
		tb.buckets[key] = append(tb.buckets[key], int32(i))
	}
	return tb
}

// slot quantizes a projection to its slot number.
func slot(p, off, width float64) int32 {
	return int32(math.Floor((p + off) / width))
}

// deriveSeed expands the root seed into independent per-table seeds with a
// splitmix64 step, so tables are decorrelated even for adjacent roots.
func deriveSeed(root int64, i int) int64 {
	z := uint64(root) + (uint64(i)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// estimateWidth picks a data-driven slot width: twice the median 10-NN
// radius of a deterministic sample, so a home slot spans roughly one
// nearest-neighbor neighborhood along each projection.
func estimateWidth(data *linalg.Dense, seed int64) float64 {
	n := data.Rows()
	rng := rand.New(rand.NewSource(deriveSeed(seed, -2)))
	const maxQueries, maxRefs, radiusK = 24, 1024, 10
	qIdx := sampleRows(rng, n, maxQueries)
	rIdx := sampleRows(rng, n, maxRefs)
	e := knn.Euclidean{}
	radii := make([]float64, 0, len(qIdx))
	for _, qi := range qIdx {
		k := radiusK
		if k > len(rIdx)-1 {
			k = len(rIdx) - 1
		}
		if k < 1 {
			k = 1
		}
		c := knn.NewCollector(k)
		q := data.RawRow(qi)
		for _, ri := range rIdx {
			if ri == qi {
				continue
			}
			c.Offer(ri, e.Distance(data.RawRow(ri), q))
		}
		if res := c.Results(); len(res) > 0 {
			radii = append(radii, res[len(res)-1].Dist)
		}
	}
	sort.Float64s(radii)
	if len(radii) == 0 || radii[len(radii)/2] == 0 {
		return 1 // single-point or duplicate-saturated data: any width works
	}
	return 2 * radii[len(radii)/2]
}

// sampleRows returns up to max distinct row indices of [0, n), ascending,
// drawn deterministically from rng.
func sampleRows(rng *rand.Rand, n, max int) []int {
	if n <= max {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	idx := rng.Perm(n)[:max]
	sort.Ints(idx)
	return idx
}

// Len implements index.ApproxIndex.
func (ix *Index) Len() int { return ix.data.Rows() }

// Dims implements index.ApproxIndex.
func (ix *Index) Dims() int { return ix.data.Cols() }

// Tables returns the number of hash tables.
func (ix *Index) Tables() int { return len(ix.tables) }

// Hashes returns the number of projections per table.
func (ix *Index) Hashes() int { return ix.hashes }

// Width returns the slot width in use (estimated if Config.Width was 0).
func (ix *Index) Width() float64 { return ix.width }

// MaxProbes returns the number of distinct buckets a query can probe per
// table: the home bucket plus every valid perturbation (3^m - 1 of them),
// capped to stay in int range.
func (ix *Index) MaxProbes() int {
	total := 1
	for i := 0; i < ix.hashes; i++ {
		if total > (1<<30)/3 {
			return 1 << 30
		}
		total *= 3
	}
	return total
}

// KNNApprox implements index.ApproxIndex: the union of the contents of
// `probes` buckets per table (home bucket first, then neighbors in
// query-directed perturbation order) is refined with exact Euclidean
// distances and the k best are returned sorted ascending.
//
// Re-ranking runs through the batch-distance identity
// ‖x‖² + ‖q‖² − 2⟨x,q⟩ with the point norms cached at Build, so each
// candidate costs one fused dot product instead of a subtract-square scan.
// Admitted neighbors are rescored with the exact metric before returning.
func (ix *Index) KNNApprox(query []float64, k, probes int) ([]knn.Neighbor, index.Stats) {
	n, d := ix.data.Dims()
	if len(query) != d {
		panic(fmt.Sprintf("lsh: query has %d dims, index has %d", len(query), d))
	}
	if k <= 0 {
		panic(fmt.Sprintf("lsh: k=%d must be positive", k))
	}
	if probes < 1 {
		probes = 1
	}
	var stats index.Stats
	visited := make([]bool, n)
	cand := make([]int32, 0, 256)
	m := ix.hashes
	hs := make([]int32, m)
	frac := make([]float64, m)
	probed := make([]int32, m)
	for ti := range ix.tables {
		tb := &ix.tables[ti]
		for j := 0; j < m; j++ {
			f := (linalg.Dot(tb.proj[j*d:(j+1)*d], query) + tb.off[j]) / ix.width
			fl := math.Floor(f)
			hs[j] = int32(fl)
			frac[j] = f - fl
		}
		scan := func(key string) {
			stats.BucketsProbed++
			stats.NodesVisited++
			for _, id := range tb.buckets[key] {
				if visited[id] {
					continue
				}
				visited[id] = true
				stats.PointsScanned++
				stats.CandidateSize++
				cand = append(cand, id)
			}
		}
		scan(EncodeKey(hs))
		for _, deltas := range probeSequence(frac, probes-1) {
			for j, dv := range deltas {
				probed[j] = hs[j] + int32(dv)
			}
			scan(EncodeKey(probed))
		}
	}
	// Batch re-rank: candidates are offered in gather (scan) order, so tie
	// handling matches the previous per-bucket scoring exactly.
	qn := linalg.Dot(query, query)
	c := knn.NewCollector(k)
	for _, id := range cand {
		d2 := ix.norms[id] + qn - 2*linalg.Dot(ix.data.RawRow(int(id)), query)
		if d2 < 0 {
			d2 = 0
		}
		c.Offer(int(id), d2)
	}
	res := c.Results()
	e := knn.Euclidean{}
	for i := range res {
		res[i].Dist = e.Distance(ix.data.RawRow(res[i].Index), query)
	}
	knn.SortNeighbors(res)
	return res, stats
}

// KNNApproxSet answers every row of queries concurrently with a worker pool
// sized by runtime.GOMAXPROCS(0). Results and the summed stats are
// identical to calling KNNApprox on each row serially.
func (ix *Index) KNNApproxSet(queries *linalg.Dense, k, probes int) ([][]knn.Neighbor, index.Stats) {
	if queries.Cols() != ix.Dims() {
		panic(fmt.Sprintf("lsh: queries have %d dims, index has %d", queries.Cols(), ix.Dims()))
	}
	nq := queries.Rows()
	out := make([][]knn.Neighbor, nq)
	per := make([]index.Stats, nq)
	parallelFor(nq, func(i int) {
		out[i], per[i] = ix.KNNApprox(queries.RawRow(i), k, probes)
	})
	var total index.Stats
	for _, s := range per {
		total.Add(s)
	}
	return out, total
}

// parallelFor runs fn(i) for i in [0, n) on a pool of up to GOMAXPROCS
// workers. fn must be safe for concurrent distinct i.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Interface conformance.
var _ index.ApproxIndex = (*Index)(nil)
