package lsh

import (
	"encoding/binary"
	"testing"
)

// FuzzBucketKey drives the bucket-key codec from both directions: any hash
// vector must encode and decode back to itself, and any byte string either
// fails to decode or decodes to a vector whose canonical encoding is the
// original bytes. Neither direction may panic.
func FuzzBucketKey(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0x80})
	f.Add([]byte{0x81, 0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte("hello bucket"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: bytes as hash values.
		hs := make([]int32, 0, len(data)/4)
		for i := 0; i+4 <= len(data); i += 4 {
			hs = append(hs, int32(binary.LittleEndian.Uint32(data[i:])))
		}
		key := EncodeKey(hs)
		back, err := DecodeKey(key)
		if err != nil {
			t.Fatalf("decode of encoded %v failed: %v", hs, err)
		}
		if len(back) != len(hs) {
			t.Fatalf("round trip changed length: %d -> %d", len(hs), len(back))
		}
		for i := range hs {
			if back[i] != hs[i] {
				t.Fatalf("round trip changed value %d: %d -> %d", i, hs[i], back[i])
			}
		}

		// Direction 2: bytes as a key. A successful decode must be
		// canonical — re-encoding reproduces the input bytes exactly.
		if vals, err := DecodeKey(string(data)); err == nil {
			if re := EncodeKey(vals); re != string(data) {
				t.Fatalf("non-canonical key %q decoded to %v (re-encodes to %q)", data, vals, re)
			}
		}
	})
}
