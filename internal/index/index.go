// Package index provides the partition-based similarity indexes whose
// pruning behavior motivates the paper: a bucketed k-d tree, a
// VA-file (vector-approximation) scan, and an STR bulk-loaded R-tree.
// All answer exact Euclidean k-NN queries and report how much work the
// query needed, so experiments can show pruning collapsing as
// dimensionality grows (§1.1) and recovering after aggressive reduction.
package index

import (
	"repro/internal/knn"
)

// Stats reports the work done by one k-NN query.
type Stats struct {
	// NodesVisited counts index nodes (tree nodes or approximation cells
	// batches) examined.
	NodesVisited int
	// PointsScanned counts full data vectors whose exact distance was
	// computed.
	PointsScanned int
	// BucketsProbed counts hash buckets looked up across all tables.
	// Zero for exact indexes; for LSH it is tables x probes.
	BucketsProbed int
	// CandidateSize counts the unique candidates an approximate query
	// refined with exact distances. Zero for exact indexes.
	CandidateSize int
}

// Add accumulates another query's stats.
func (s *Stats) Add(o Stats) {
	s.NodesVisited += o.NodesVisited
	s.PointsScanned += o.PointsScanned
	s.BucketsProbed += o.BucketsProbed
	s.CandidateSize += o.CandidateSize
}

// Index is an exact Euclidean k-nearest-neighbor structure over a fixed
// point set.
type Index interface {
	// KNN returns the k nearest neighbors of query by Euclidean distance,
	// sorted ascending, along with the work performed. If the structure
	// holds fewer than k points, all points are returned.
	KNN(query []float64, k int) ([]knn.Neighbor, Stats)
	// Len returns the number of indexed points.
	Len() int
	// Dims returns the dimensionality of the indexed points.
	Dims() int
}

// ScanFraction is the fraction of stored vectors a query had to examine —
// the paper's measure of whether "the optimistic bounds used by most index
// structures are ... sharp enough for any kind of effective pruning".
func ScanFraction(s Stats, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(s.PointsScanned) / float64(total)
}
