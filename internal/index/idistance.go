package index

import (
	"fmt"
	"math"

	"repro/internal/btree"
	"repro/internal/cluster"
	"repro/internal/knn"
	"repro/internal/linalg"
)

// IDistance is the one-dimensional mapping index of Yu, Ooi, Jagadish &
// Tan: every point is assigned to its nearest reference point (k-means
// centroids) and keyed by
//
//	key(p) = partition(p)·C + ‖p − ref_partition(p)‖
//
// in a B+ tree, where C exceeds every within-partition radius. A k-NN query
// expands a search radius r: by the triangle inequality, a partition-i
// point within r of the query has a key in
// [i·C + d(q,ref_i) − r, i·C + min(maxRadius_i, d(q,ref_i) + r)], so each
// round scans only the new key ranges. The search is exact and terminates
// when the k-th best distance is within the proven radius.
//
// iDistance thrives exactly where the paper positions indexing: in the
// aggressively reduced space, where distances are meaningful and the
// one-dimensional mapping is selective.
type IDistance struct {
	data   *linalg.Dense
	refs   *linalg.Dense
	tree   *btree.Tree
	assign []int
	maxRad []float64
	stride float64
	deltaR float64
}

// BuildIDistance indexes the rows of data using `partitions` reference
// points chosen by k-means (seeded deterministically). The matrix is
// retained, not copied.
func BuildIDistance(data *linalg.Dense, partitions int, seed int64) *IDistance {
	n, _ := data.Dims()
	if partitions < 1 {
		panic(fmt.Sprintf("index: IDistance partitions=%d must be >= 1", partitions))
	}
	if partitions > n {
		partitions = n
	}
	km, err := cluster.KMeans(data, cluster.KMeansConfig{K: partitions, Seed: seed, Restarts: 2})
	if err != nil {
		panic(fmt.Sprintf("index: IDistance clustering: %v", err))
	}
	id := &IDistance{
		data:   data,
		refs:   km.Centroids,
		assign: km.Assign,
		maxRad: make([]float64, partitions),
	}
	dists := make([]float64, n)
	for i := 0; i < n; i++ {
		d := linalg.Dist2(data.RawRow(i), km.Centroids.RawRow(km.Assign[i]))
		dists[i] = d
		if d > id.maxRad[km.Assign[i]] {
			id.maxRad[km.Assign[i]] = d
		}
	}
	maxAll := 0.0
	for _, r := range id.maxRad {
		if r > maxAll {
			maxAll = r
		}
	}
	id.stride = maxAll*2 + 1 // strictly separates partition key bands
	id.deltaR = maxAll / 8
	if id.deltaR == 0 {
		id.deltaR = 1
	}
	id.tree = btree.New(0)
	for i := 0; i < n; i++ {
		id.tree.Insert(float64(km.Assign[i])*id.stride+dists[i], i)
	}
	return id
}

// Len implements Index.
func (id *IDistance) Len() int { return id.data.Rows() }

// Dims implements Index.
func (id *IDistance) Dims() int { return id.data.Cols() }

// Partitions returns the number of reference points.
func (id *IDistance) Partitions() int { return id.refs.Rows() }

// KNN implements Index. NodesVisited counts B+ tree entries touched;
// PointsScanned counts exact distance computations.
func (id *IDistance) KNN(query []float64, k int) ([]knn.Neighbor, Stats) {
	if len(query) != id.Dims() {
		panic(fmt.Sprintf("index: query has %d dims, idistance has %d", len(query), id.Dims()))
	}
	if k <= 0 {
		panic(fmt.Sprintf("index: k=%d must be positive", k))
	}
	var stats Stats
	parts := id.Partitions()
	qd := make([]float64, parts) // distance from query to each reference
	for p := 0; p < parts; p++ {
		qd[p] = linalg.Dist2(query, id.refs.RawRow(p))
	}
	// Scanned key intervals per partition: [lo[p], hi[p]) already visited.
	lo := make([]float64, parts)
	hi := make([]float64, parts)
	started := make([]bool, parts)

	c := knn.NewCollector(k)
	scanned := make(map[int]bool)
	offer := func(_ float64, i int) bool {
		stats.NodesVisited++
		if scanned[i] {
			return true
		}
		scanned[i] = true
		stats.PointsScanned++
		c.Offer(i, linalg.Dist2(id.data.RawRow(i), query))
		return true
	}

	r := id.deltaR
	maxR := 0.0
	for p := 0; p < parts; p++ {
		if v := qd[p] + id.maxRad[p]; v > maxR {
			maxR = v
		}
	}
	for {
		for p := 0; p < parts; p++ {
			// A partition can contain a point within r of the query only if
			// the query sphere intersects the partition sphere.
			if qd[p]-r > id.maxRad[p] {
				continue
			}
			base := float64(p) * id.stride
			wantLo := math.Max(0, qd[p]-r)
			wantHi := math.Min(id.maxRad[p], qd[p]+r)
			if !started[p] {
				started[p] = true
				lo[p], hi[p] = wantLo, wantHi
				id.tree.Range(base+wantLo, base+wantHi, func(key float64, v int) bool { return offer(key, v) })
				continue
			}
			// Scan only the newly uncovered sub-ranges; boundary overlaps
			// are harmless because offer dedupes by point id.
			if wantLo < lo[p] {
				id.tree.Range(base+wantLo, base+lo[p], func(key float64, v int) bool { return offer(key, v) })
				lo[p] = wantLo
			}
			if wantHi > hi[p] {
				id.tree.Range(base+hi[p], base+wantHi, func(key float64, v int) bool { return offer(key, v) })
				hi[p] = wantHi
			}
		}
		// Exact termination: the k-th best distance is provably final once
		// it is within the searched radius.
		if c.Full() && c.Worst() <= r {
			break
		}
		if r > maxR {
			break // searched everything reachable
		}
		r += id.deltaR
	}
	return c.Results(), stats
}
