package index

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/knn"
	"repro/internal/linalg"
)

// RTree is a static R-tree bulk-loaded with the Sort-Tile-Recursive (STR)
// algorithm, answering exact Euclidean k-NN queries with best-first search
// on minimum bounding rectangles (Roussopoulos et al., the paper's
// reference [18]). R-trees are the canonical partition index whose pruning
// the paper's §1.1 shows degrading with dimensionality.
type RTree struct {
	data *linalg.Dense
	root *rtNode
	fan  int
}

type rtNode struct {
	// mbr is the minimum bounding rectangle: lo/hi per dimension.
	lo, hi []float64
	// children is nil for leaves.
	children []*rtNode
	// points holds the row indices stored at a leaf.
	points []int
}

// DefaultFanout is the node capacity used when 0 is passed to BuildRTree.
const DefaultFanout = 16

// BuildRTree bulk-loads an R-tree over the rows of data with the given node
// capacity (fanout <= 0 selects DefaultFanout). The matrix is retained, not
// copied.
func BuildRTree(data *linalg.Dense, fanout int) *RTree {
	if fanout <= 1 {
		fanout = DefaultFanout
	}
	n, _ := data.Dims()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	t := &RTree{data: data, fan: fanout}

	// STR leaf packing: recursively tile by successive dimensions.
	leaves := t.packLeaves(idx)
	nodes := leaves
	for len(nodes) > 1 {
		nodes = t.packNodes(nodes)
	}
	t.root = nodes[0]
	return t
}

// packLeaves tiles point indices into leaves of up to fan points using STR
// on the first two dimensions (standard practice; MBRs remain
// full-dimensional so correctness never depends on the tiling dims).
func (t *RTree) packLeaves(idx []int) []*rtNode {
	n := len(idx)
	leafCount := (n + t.fan - 1) / t.fan
	slices := int(math.Ceil(math.Sqrt(float64(leafCount))))
	sort.Slice(idx, func(a, b int) bool { return t.data.At(idx[a], 0) < t.data.At(idx[b], 0) })
	perSlice := (n + slices - 1) / slices
	var leaves []*rtNode
	sortDim := 0
	if t.data.Cols() > 1 {
		sortDim = 1
	}
	for s := 0; s < n; s += perSlice {
		e := s + perSlice
		if e > n {
			e = n
		}
		slice := idx[s:e]
		sort.Slice(slice, func(a, b int) bool { return t.data.At(slice[a], sortDim) < t.data.At(slice[b], sortDim) })
		for p := 0; p < len(slice); p += t.fan {
			q := p + t.fan
			if q > len(slice) {
				q = len(slice)
			}
			leaf := &rtNode{points: append([]int(nil), slice[p:q]...)}
			t.computeLeafMBR(leaf)
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packNodes groups child nodes into parents of up to fan children, tiling by
// MBR centers.
func (t *RTree) packNodes(children []*rtNode) []*rtNode {
	n := len(children)
	parentCount := (n + t.fan - 1) / t.fan
	slices := int(math.Ceil(math.Sqrt(float64(parentCount))))
	center := func(nd *rtNode, dim int) float64 { return (nd.lo[dim] + nd.hi[dim]) / 2 }
	sort.Slice(children, func(a, b int) bool { return center(children[a], 0) < center(children[b], 0) })
	perSlice := (n + slices - 1) / slices
	sortDim := 0
	if len(children[0].lo) > 1 {
		sortDim = 1
	}
	var parents []*rtNode
	for s := 0; s < n; s += perSlice {
		e := s + perSlice
		if e > n {
			e = n
		}
		slice := children[s:e]
		sort.Slice(slice, func(a, b int) bool { return center(slice[a], sortDim) < center(slice[b], sortDim) })
		for p := 0; p < len(slice); p += t.fan {
			q := p + t.fan
			if q > len(slice) {
				q = len(slice)
			}
			parent := &rtNode{children: append([]*rtNode(nil), slice[p:q]...)}
			t.computeInnerMBR(parent)
			parents = append(parents, parent)
		}
	}
	return parents
}

func (t *RTree) computeLeafMBR(n *rtNode) {
	d := t.data.Cols()
	n.lo = make([]float64, d)
	n.hi = make([]float64, d)
	copy(n.lo, t.data.RawRow(n.points[0]))
	copy(n.hi, t.data.RawRow(n.points[0]))
	for _, i := range n.points[1:] {
		row := t.data.RawRow(i)
		for j, v := range row {
			if v < n.lo[j] {
				n.lo[j] = v
			}
			if v > n.hi[j] {
				n.hi[j] = v
			}
		}
	}
}

func (t *RTree) computeInnerMBR(n *rtNode) {
	d := len(n.children[0].lo)
	n.lo = append([]float64(nil), n.children[0].lo...)
	n.hi = append([]float64(nil), n.children[0].hi...)
	for _, c := range n.children[1:] {
		for j := 0; j < d; j++ {
			if c.lo[j] < n.lo[j] {
				n.lo[j] = c.lo[j]
			}
			if c.hi[j] > n.hi[j] {
				n.hi[j] = c.hi[j]
			}
		}
	}
}

// minDistSq returns the squared Euclidean distance from the query to the
// nearest point of the MBR (the optimistic bound of [18]).
func (n *rtNode) minDistSq(q []float64) float64 {
	s := 0.0
	for j, v := range q {
		switch {
		case v < n.lo[j]:
			d := n.lo[j] - v
			s += d * d
		case v > n.hi[j]:
			d := v - n.hi[j]
			s += d * d
		}
	}
	return s
}

// Len implements Index.
func (t *RTree) Len() int { return t.data.Rows() }

// Dims implements Index.
func (t *RTree) Dims() int { return t.data.Cols() }

// nodeQueue is a min-heap of nodes keyed by optimistic distance.
type nodeEntry struct {
	node *rtNode
	dist float64
}
type nodeQueue []nodeEntry

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(nodeEntry)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	out := old[n-1]
	*q = old[:n-1]
	return out
}

// KNN implements Index using best-first traversal: nodes are expanded in
// ascending optimistic-bound order and skipped once the bound is no better
// than the current k-th nearest distance.
func (t *RTree) KNN(query []float64, k int) ([]knn.Neighbor, Stats) {
	if len(query) != t.Dims() {
		panic(fmt.Sprintf("index: query has %d dims, rtree has %d", len(query), t.Dims()))
	}
	if k <= 0 {
		panic(fmt.Sprintf("index: k=%d must be positive", k))
	}
	c := knn.NewCollector(k)
	var stats Stats
	sq := knn.SquaredEuclidean{}
	pq := &nodeQueue{{node: t.root, dist: t.root.minDistSq(query)}}
	for pq.Len() > 0 {
		e := heap.Pop(pq).(nodeEntry)
		if e.dist >= c.Worst() {
			break // every remaining node is at least this far
		}
		stats.NodesVisited++
		if e.node.points != nil {
			for _, i := range e.node.points {
				stats.PointsScanned++
				c.Offer(i, sq.Distance(t.data.RawRow(i), query))
			}
			continue
		}
		for _, child := range e.node.children {
			d := child.minDistSq(query)
			if d < c.Worst() {
				heap.Push(pq, nodeEntry{node: child, dist: d})
			}
		}
	}
	return sqrtResults(c.Results()), stats
}
