package index

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/knn"
	"repro/internal/linalg"
)

func TestIGridValidation(t *testing.T) {
	data := linalg.NewDense(4, 2)
	for name, fn := range map[string]func(){
		"ranges 1":   func() { BuildIGrid(data, 1, 2) },
		"ranges big": func() { BuildIGrid(data, 1<<17, 2) },
		"p zero":     func() { BuildIGrid(data, 4, 0) },
		"p inf":      func() { BuildIGrid(data, 4, math.Inf(1)) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestIGridSelfSimilarityMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := randPoints(rng, 100, 6)
	g := BuildIGrid(data, 5, 2)
	want := math.Pow(6, 1.0/2.0) // all d dims match with contribution 1
	for i := 0; i < 10; i++ {
		if got := g.Similarity(data.Row(i), i); math.Abs(got-want) > 1e-12 {
			t.Fatalf("self similarity = %v, want %v", got, want)
		}
	}
}

func TestIGridSimilarityRespectsRanges(t *testing.T) {
	// Points in clearly different ranges of every dimension share nothing.
	data := linalg.FromRows([][]float64{
		{0, 0}, {0.1, 0.1}, {10, 10}, {10.1, 10.1},
		{0.05, 10.05}, {5, 5}, {2, 8}, {8, 2},
	})
	g := BuildIGrid(data, 2, 2)
	if got := g.Similarity([]float64{0, 0}, 2); got != 0 {
		t.Fatalf("cross-range similarity = %v, want 0", got)
	}
	if got := g.Similarity([]float64{0, 0}, 1); got <= 0 {
		t.Fatalf("same-range similarity = %v, want > 0", got)
	}
}

func TestIGridKNNAgreesWithBruteForceSimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := randPoints(rng, 300, 8)
	g := BuildIGrid(data, 6, 2)
	for trial := 0; trial < 10; trial++ {
		q := make([]float64, 8)
		for j := range q {
			q[j] = rng.Float64() * 10
		}
		k := 1 + rng.Intn(6)
		got, stats := g.KNN(q, k)
		if len(got) != k {
			t.Fatalf("got %d results", len(got))
		}
		// Brute force over the Similarity function.
		sims := make([]float64, 300)
		for i := range sims {
			sims[i] = g.Similarity(q, i)
		}
		for rank, nb := range got {
			if math.Abs(nb.Dist-sims[nb.Index]) > 1e-9 {
				t.Fatalf("trial %d rank %d: reported %v, direct %v", trial, rank, nb.Dist, sims[nb.Index])
			}
		}
		// The k-th result's similarity must be >= every non-returned
		// similarity.
		inResult := map[int]bool{}
		for _, nb := range got {
			inResult[nb.Index] = true
		}
		kth := got[len(got)-1].Dist
		for i, s := range sims {
			if !inResult[i] && s > kth+1e-9 {
				t.Fatalf("trial %d: missed better candidate %d (%v > %v)", trial, i, s, kth)
			}
		}
		if stats.PointsScanned <= 0 || stats.NodesVisited < stats.PointsScanned {
			t.Fatalf("implausible stats %+v", stats)
		}
	}
}

func TestIGridKNNPadsWhenFewCandidates(t *testing.T) {
	data := linalg.FromRows([][]float64{{0}, {0.2}, {100}, {101}})
	g := BuildIGrid(data, 2, 2)
	got, _ := g.KNN([]float64{0.1}, 4)
	if len(got) != 4 {
		t.Fatalf("results = %v", got)
	}
	// The zero-similarity pads come last.
	if got[len(got)-1].Dist != 0 {
		t.Fatalf("expected zero-similarity padding, got %v", got)
	}
}

func TestIGridConstantDimension(t *testing.T) {
	data := linalg.FromRows([][]float64{{1, 7}, {2, 7}, {3, 7}})
	g := BuildIGrid(data, 2, 2)
	got, _ := g.KNN([]float64{1.1, 7}, 1)
	if got[0].Index != 0 {
		t.Fatalf("nearest = %v", got)
	}
	// The constant dimension contributes exactly 1 to everyone.
	if s := g.Similarity([]float64{0.9, 7}, 0); s <= 1 {
		t.Fatalf("similarity with constant dim = %v", s)
	}
}

func TestIGridQueryValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := BuildIGrid(randPoints(rng, 10, 3), 3, 2)
	for name, fn := range map[string]func(){
		"dims":     func() { g.KNN([]float64{1}, 1) },
		"k":        func() { g.KNN([]float64{1, 2, 3}, 0) },
		"sim dims": func() { g.Similarity([]float64{1}, 0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestIGridEquiDepthBalanced(t *testing.T) {
	// Skewed data: equi-depth ranges hold roughly equal counts where
	// equi-width would collapse most points into one cell.
	rng := rand.New(rand.NewSource(4))
	n := 4000
	data := linalg.NewDense(n, 1)
	for i := 0; i < n; i++ {
		data.Set(i, 0, math.Exp(rng.NormFloat64()*2)) // log-normal skew
	}
	g := BuildIGrid(data, 8, 2)
	for r, list := range g.lists[0] {
		frac := float64(len(list)) / float64(n)
		if frac < 0.05 || frac > 0.25 {
			t.Fatalf("range %d holds %.1f%% of points, want ≈12.5%%", r, 100*frac)
		}
	}
}

func TestIGridAccuracyOnClusteredData(t *testing.T) {
	// IGrid similarity must retrieve same-cluster points.
	rng := rand.New(rand.NewSource(5))
	n := 200
	data := linalg.NewDense(n, 10)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		labels[i] = c
		for j := 0; j < 10; j++ {
			data.Set(i, j, float64(c*10)+rng.NormFloat64())
		}
	}
	g := BuildIGrid(data, 4, 2)
	matches, total := 0, 0
	for i := 0; i < n; i++ {
		got, _ := g.KNN(data.Row(i), 4) // self + 3
		for _, nb := range got {
			if nb.Index == i {
				continue
			}
			total++
			if labels[nb.Index] == labels[i] {
				matches++
			}
		}
	}
	if acc := float64(matches) / float64(total); acc < 0.95 {
		t.Fatalf("igrid cluster accuracy = %v", acc)
	}
}

var _ = knn.Neighbor{}
