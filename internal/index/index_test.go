package index

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/knn"
	"repro/internal/linalg"
)

func randPoints(rng *rand.Rand, n, d int) *linalg.Dense {
	m := linalg.NewDense(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			m.Set(i, j, rng.Float64()*10)
		}
	}
	return m
}

// builders enumerates every index implementation under test.
var builders = map[string]func(*linalg.Dense) Index{
	"linear": func(m *linalg.Dense) Index { return NewLinearScan(m) },
	"kdtree": func(m *linalg.Dense) Index { return BuildKDTree(m, 4) },
	"vafile": func(m *linalg.Dense) Index { return BuildVAFile(m, 4) },
	"rtree":  func(m *linalg.Dense) Index { return BuildRTree(m, 4) },
	"idist":  func(m *linalg.Dense) Index { return BuildIDistance(m, 4, 1) },
}

func TestAllIndexesAgreeWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			for _, dims := range []int{1, 2, 3, 8, 20} {
				data := randPoints(rng, 300, dims)
				idx := build(data)
				if idx.Len() != 300 || idx.Dims() != dims {
					t.Fatalf("Len/Dims wrong")
				}
				for trial := 0; trial < 15; trial++ {
					q := make([]float64, dims)
					for j := range q {
						q[j] = rng.Float64() * 10
					}
					k := 1 + rng.Intn(8)
					got, _ := idx.KNN(q, k)
					want := knn.Search(data, q, k, knn.Euclidean{}, -1)
					if len(got) != len(want) {
						t.Fatalf("d=%d k=%d: got %d results, want %d", dims, k, len(got), len(want))
					}
					for i := range got {
						if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
							t.Fatalf("d=%d k=%d rank %d: dist %v != %v", dims, k, i, got[i].Dist, want[i].Dist)
						}
					}
				}
			}
		})
	}
}

func TestIndexPropertyAgreement(t *testing.T) {
	// Property test across random sizes, dims, duplicates and ks.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(120)
		d := 1 + rng.Intn(6)
		data := linalg.NewDense(n, d)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				// Coarse values force duplicates and ties.
				data.Set(i, j, float64(rng.Intn(5)))
			}
		}
		q := make([]float64, d)
		for j := range q {
			q[j] = float64(rng.Intn(5))
		}
		k := 1 + rng.Intn(5)
		want := knn.Search(data, q, k, knn.Euclidean{}, -1)
		for _, build := range builders {
			got, _ := build(data).KNN(q, k)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKMoreThanN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := randPoints(rng, 5, 3)
	q := []float64{1, 2, 3}
	for name, build := range builders {
		got, _ := build(data).KNN(q, 20)
		if len(got) != 5 {
			t.Fatalf("%s: k>n returned %d results", name, len(got))
		}
	}
}

func TestQueryValidationPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := randPoints(rng, 10, 3)
	for name, build := range builders {
		idx := build(data)
		for _, fn := range []func(){
			func() { idx.KNN([]float64{1}, 1) },
			func() { idx.KNN([]float64{1, 2, 3}, 0) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Fatalf("%s: expected panic", name)
					}
				}()
				fn()
			}()
		}
	}
}

func TestKDTreeDuplicatePoints(t *testing.T) {
	// Many identical points must not break the splitter.
	data := linalg.NewDense(50, 2)
	for i := 0; i < 50; i++ {
		data.Set(i, 0, 1)
		data.Set(i, 1, 2)
	}
	data.Set(49, 0, 5) // one distinct point
	tree := BuildKDTree(data, 2)
	got, _ := tree.KNN([]float64{5, 2}, 1)
	if got[0].Index != 49 || got[0].Dist != 0 {
		t.Fatalf("duplicate-heavy tree wrong: %v", got)
	}
}

func TestKDTreePruningInLowDimensions(t *testing.T) {
	// In 2-D a kd-tree query must scan far fewer points than a full scan.
	rng := rand.New(rand.NewSource(4))
	data := randPoints(rng, 5000, 2)
	tree := BuildKDTree(data, 8)
	var total Stats
	for trial := 0; trial < 20; trial++ {
		q := []float64{rng.Float64() * 10, rng.Float64() * 10}
		_, st := tree.KNN(q, 3)
		total.Add(st)
	}
	frac := float64(total.PointsScanned) / float64(20*5000)
	if frac > 0.1 {
		t.Fatalf("2-D kd-tree scanned %.1f%% of points", frac*100)
	}
}

func TestKDTreePruningDegradesWithDimensionality(t *testing.T) {
	// The §1.1 phenomenon: the same tree on uniform data approaches a full
	// scan as dimensionality rises.
	rng := rand.New(rand.NewSource(5))
	scanFrac := func(d int) float64 {
		data := randPoints(rng, 2000, d)
		tree := BuildKDTree(data, 8)
		var total Stats
		for trial := 0; trial < 10; trial++ {
			q := make([]float64, d)
			for j := range q {
				q[j] = rng.Float64() * 10
			}
			_, st := tree.KNN(q, 3)
			total.Add(st)
		}
		return float64(total.PointsScanned) / float64(10*2000)
	}
	low := scanFrac(2)
	high := scanFrac(40)
	if high < 4*low {
		t.Fatalf("pruning did not degrade: d=2 %.3f, d=40 %.3f", low, high)
	}
	if high < 0.5 {
		t.Fatalf("expected near-full scan at d=40, got %.3f", high)
	}
}

func TestVAFileRefinesFewVectors(t *testing.T) {
	// The VA-file's selling point: even in high dimensionality only a small
	// fraction of full vectors is refined.
	rng := rand.New(rand.NewSource(6))
	data := randPoints(rng, 3000, 30)
	va := BuildVAFile(data, 6)
	var total Stats
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		q := make([]float64, 30)
		for j := range q {
			q[j] = rng.Float64() * 10
		}
		_, st := va.KNN(q, 3)
		total.Add(st)
	}
	if frac := float64(total.PointsScanned) / float64(trials*3000); frac > 0.2 {
		t.Fatalf("va-file refined %.1f%% of vectors", frac*100)
	}
	// Approximation scan always touches every record.
	if total.NodesVisited != trials*3000 {
		t.Fatalf("NodesVisited = %d, want %d", total.NodesVisited, trials*3000)
	}
}

func TestVAFileBitsValidation(t *testing.T) {
	data := linalg.NewDense(2, 2)
	for _, bits := range []int{0, 9, -1} {
		bits := bits
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bits=%d must panic", bits)
				}
			}()
			BuildVAFile(data, bits)
		}()
	}
}

func TestVAFileConstantDimension(t *testing.T) {
	data := linalg.FromRows([][]float64{{1, 7}, {2, 7}, {3, 7}})
	va := BuildVAFile(data, 3)
	got, _ := va.KNN([]float64{2.1, 7}, 1)
	if got[0].Index != 1 {
		t.Fatalf("constant-dim va-file wrong: %v", got)
	}
}

func TestRTreeStatsPruneInLowDim(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := randPoints(rng, 4000, 2)
	rt := BuildRTree(data, 16)
	var total Stats
	for trial := 0; trial < 20; trial++ {
		q := []float64{rng.Float64() * 10, rng.Float64() * 10}
		_, st := rt.KNN(q, 3)
		total.Add(st)
	}
	if frac := float64(total.PointsScanned) / float64(20*4000); frac > 0.1 {
		t.Fatalf("2-D r-tree scanned %.1f%% of points", frac*100)
	}
}

func TestRTreeSinglePointAndOneDim(t *testing.T) {
	data := linalg.FromRows([][]float64{{3}})
	rt := BuildRTree(data, 4)
	got, _ := rt.KNN([]float64{0}, 1)
	if got[0].Index != 0 || math.Abs(got[0].Dist-3) > 1e-12 {
		t.Fatalf("single point result: %v", got)
	}
}

func TestScanFraction(t *testing.T) {
	if got := ScanFraction(Stats{PointsScanned: 50}, 200); got != 0.25 {
		t.Fatalf("ScanFraction = %v", got)
	}
	if got := ScanFraction(Stats{PointsScanned: 50}, 0); got != 0 {
		t.Fatalf("ScanFraction with zero total = %v", got)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{NodesVisited: 1, PointsScanned: 2, BucketsProbed: 3, CandidateSize: 4}
	a.Add(Stats{NodesVisited: 3, PointsScanned: 4, BucketsProbed: 5, CandidateSize: 6})
	if a.NodesVisited != 4 || a.PointsScanned != 6 || a.BucketsProbed != 8 || a.CandidateSize != 10 {
		t.Fatalf("Stats.Add = %+v", a)
	}
}

func TestExactIndexesLeaveApproxFieldsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	data := randPoints(rng, 80, 4)
	for _, ix := range []Index{BuildKDTree(data, 4), BuildVAFile(data, 5), BuildRTree(data, 6)} {
		_, st := ix.KNN(data.Row(1), 3)
		if st.BucketsProbed != 0 || st.CandidateSize != 0 {
			t.Fatalf("exact index reported approx stats: %+v", st)
		}
	}
}

func TestDefaultCapacities(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := randPoints(rng, 100, 3)
	// Zero / negative capacities select defaults without panicking.
	if got, _ := BuildKDTree(data, 0).KNN(data.Row(0), 1); got[0].Index != 0 {
		t.Fatalf("kdtree default leaf size broken")
	}
	if got, _ := BuildRTree(data, 0).KNN(data.Row(0), 1); got[0].Index != 0 {
		t.Fatalf("rtree default fanout broken")
	}
}
