package index

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/knn"
	"repro/internal/linalg"
)

// IGrid implements the inverted-grid similarity index of the paper's
// reference [3] (Aggarwal & Yu, "The IGrid Index: Reversing the
// Dimensionality Curse for Similarity Indexing in High Dimensional Space",
// KDD 2000). Every dimension is split into equi-depth ranges; two points
// are similar along a dimension only when they fall in the same range, and
// the overall similarity aggregates the per-dimension proximity of the
// matching dimensions:
//
//	PIDist(a, b) = [ Σ_{j : range(a_j) = range(b_j)} (1 − |a_j − b_j|/w_j)^p ]^(1/p)
//
// where w_j is the width of the shared range. Because only same-range
// dimensions contribute, similarity is driven by the dimensions where two
// points genuinely agree — the property that keeps nearest-neighbor
// contrast meaningful in high dimensionality. Queries use inverted lists:
// only points sharing at least one range with the query are scored at all.
type IGrid struct {
	data   *linalg.Dense
	p      float64
	ranges int
	// boundaries[j] holds ranges+1 ascending equi-depth boundaries.
	boundaries [][]float64
	// lists[j][r] holds the row indices whose dimension j falls in range r.
	lists [][][]int32
	// cells[i*d+j] is the range of point i in dimension j.
	cells []uint16
}

// BuildIGrid indexes the rows of data with the given number of equi-depth
// ranges per dimension (the IGrid paper's kd; 2 <= ranges <= 65535) and
// Minkowski aggregation order p > 0 (2 is the usual choice). The matrix is
// retained, not copied.
func BuildIGrid(data *linalg.Dense, ranges int, p float64) *IGrid {
	if ranges < 2 || ranges > math.MaxUint16 {
		panic(fmt.Sprintf("index: IGrid ranges=%d out of [2,%d]", ranges, math.MaxUint16))
	}
	if !(p > 0) || math.IsInf(p, 0) || math.IsNaN(p) {
		panic(fmt.Sprintf("index: IGrid p=%v must be a positive finite number", p))
	}
	n, d := data.Dims()
	g := &IGrid{
		data:       data,
		p:          p,
		ranges:     ranges,
		boundaries: make([][]float64, d),
		lists:      make([][][]int32, d),
		cells:      make([]uint16, n*d),
	}
	col := make([]float64, n)
	for j := 0; j < d; j++ {
		for i := 0; i < n; i++ {
			col[i] = data.At(i, j)
		}
		g.boundaries[j] = equiDepthBoundaries(col, ranges)
		g.lists[j] = make([][]int32, ranges)
		for i := 0; i < n; i++ {
			r := g.rangeOf(j, col[i])
			g.cells[i*d+j] = uint16(r)
			g.lists[j][r] = append(g.lists[j][r], int32(i))
		}
	}
	return g
}

// equiDepthBoundaries returns ranges+1 ascending boundaries splitting the
// values into (approximately) equal-count buckets. Duplicate quantiles are
// nudged so boundaries stay strictly increasing wherever the data allows.
func equiDepthBoundaries(values []float64, ranges int) []float64 {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	n := len(sorted)
	bs := make([]float64, ranges+1)
	bs[0] = sorted[0]
	bs[ranges] = sorted[n-1]
	for r := 1; r < ranges; r++ {
		pos := float64(r) * float64(n-1) / float64(ranges)
		lo := int(pos)
		frac := pos - float64(lo)
		v := sorted[lo]
		if lo+1 < n {
			v = sorted[lo]*(1-frac) + sorted[lo+1]*frac
		}
		bs[r] = v
	}
	// Enforce non-decreasing boundaries (constant stretches collapse).
	for r := 1; r <= ranges; r++ {
		if bs[r] < bs[r-1] {
			bs[r] = bs[r-1]
		}
	}
	return bs
}

// rangeOf locates the range of value x in dimension j by binary search.
func (g *IGrid) rangeOf(j int, x float64) int {
	bs := g.boundaries[j]
	// Find the first boundary greater than x; the range is the one before.
	r := sort.SearchFloat64s(bs[1:len(bs)-1], x)
	// bs has len ranges+1; searching the interior boundaries gives r in
	// [0, ranges-1] directly.
	if r < 0 {
		r = 0
	}
	if r >= g.ranges {
		r = g.ranges - 1
	}
	return r
}

// Len returns the number of indexed points.
func (g *IGrid) Len() int { return g.data.Rows() }

// Dims returns the dimensionality.
func (g *IGrid) Dims() int { return g.data.Cols() }

// Similarity computes PIDist between the query and stored point i.
// Larger is more similar; a point equal to the query scores d^(1/p).
func (g *IGrid) Similarity(query []float64, i int) float64 {
	d := g.Dims()
	if len(query) != d {
		panic(fmt.Sprintf("index: query has %d dims, igrid has %d", len(query), d))
	}
	sum := 0.0
	row := g.data.RawRow(i)
	for j := 0; j < d; j++ {
		qr := g.rangeOf(j, query[j])
		if int(g.cells[i*d+j]) != qr {
			continue
		}
		sum += g.contribution(j, qr, query[j], row[j])
	}
	return math.Pow(sum, 1/g.p)
}

func (g *IGrid) contribution(j, r int, a, b float64) float64 {
	lo := g.boundaries[j][r]
	hi := g.boundaries[j][r+1]
	w := hi - lo
	if w == 0 {
		return 1 // degenerate range: exact agreement by construction
	}
	v := 1 - math.Abs(a-b)/w
	if v < 0 {
		v = 0 // clamp for queries outside the stored range span
	}
	return math.Pow(v, g.p)
}

// KNN returns the k most similar stored points to the query in descending
// similarity order (ties broken by index), along with the work performed.
// NodesVisited counts inverted-list entries touched; PointsScanned counts
// distinct candidate points scored. Points sharing no range with the query
// have similarity 0 and are only returned when fewer than k candidates
// exist.
func (g *IGrid) KNN(query []float64, k int) ([]knn.Neighbor, Stats) {
	n, d := g.data.Dims()
	if len(query) != d {
		panic(fmt.Sprintf("index: query has %d dims, igrid has %d", len(query), d))
	}
	if k <= 0 {
		panic(fmt.Sprintf("index: k=%d must be positive", k))
	}
	var stats Stats
	// Accumulate per-candidate similarity mass via the inverted lists.
	sums := make(map[int32]float64)
	for j := 0; j < d; j++ {
		qr := g.rangeOf(j, query[j])
		for _, i := range g.lists[j][qr] {
			stats.NodesVisited++
			sums[i] += g.contribution(j, qr, query[j], g.data.At(int(i), j))
		}
	}
	stats.PointsScanned = len(sums)

	type scored struct {
		idx int32
		sim float64
	}
	cands := make([]scored, 0, len(sums))
	for i, s := range sums {
		cands = append(cands, scored{idx: i, sim: math.Pow(s, 1/g.p)})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].sim != cands[b].sim {
			return cands[a].sim > cands[b].sim
		}
		return cands[a].idx < cands[b].idx
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]knn.Neighbor, 0, k)
	for _, c := range cands {
		out = append(out, knn.Neighbor{Index: int(c.idx), Dist: c.sim})
	}
	// Fewer candidates than k: pad with zero-similarity points.
	if len(out) < k {
		seen := make(map[int]bool, len(out))
		for _, nb := range out {
			seen[nb.Index] = true
		}
		for i := 0; i < n && len(out) < k; i++ {
			if !seen[i] {
				out = append(out, knn.Neighbor{Index: i, Dist: 0})
			}
		}
	}
	return out, stats
}
