package index_test

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/linalg"
)

// Every index answers the same exact k-NN query and reports how much of the
// database it had to touch.
func ExampleIndex() {
	data := linalg.FromRows([][]float64{
		{0, 0}, {1, 0}, {0, 1}, {10, 10}, {11, 10}, {10, 11},
	})
	kd := index.BuildKDTree(data, 2)
	res, stats := kd.KNN([]float64{0.2, 0.1}, 2)
	fmt.Printf("nearest: %d and %d (pruned: %v)\n",
		res[0].Index, res[1].Index, stats.PointsScanned < kd.Len())
	// Output: nearest: 0 and 1 (pruned: true)
}
