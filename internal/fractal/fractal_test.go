package fractal

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset/synthetic"
	"repro/internal/linalg"
)

func TestCorrelationDimensionLineInHighD(t *testing.T) {
	// Points on a 1-D line embedded in 10-D: D₂ ≈ 1.
	rng := rand.New(rand.NewSource(1))
	n := 800
	x := linalg.NewDense(n, 10)
	dir := make([]float64, 10)
	for j := range dir {
		dir[j] = rng.NormFloat64()
	}
	linalg.Normalize(dir)
	for i := 0; i < n; i++ {
		tpos := rng.Float64() * 100
		for j := 0; j < 10; j++ {
			x.Set(i, j, tpos*dir[j])
		}
	}
	est, err := CorrelationDimension(x, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.D2-1) > 0.2 {
		t.Fatalf("line D2 = %v, want ≈1", est.D2)
	}
}

func TestCorrelationDimensionUniformSquareAndCube(t *testing.T) {
	for _, tc := range []struct {
		d    int
		want float64
		tol  float64
	}{
		{2, 2, 0.35},
		{3, 3, 0.5},
	} {
		ds := synthetic.UniformCube("u", 1200, tc.d, 2)
		est, err := CorrelationDimension(ds.X, Options{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est.D2-tc.want) > tc.tol {
			t.Fatalf("uniform d=%d: D2 = %v, want ≈%v", tc.d, est.D2, tc.want)
		}
	}
}

func TestCorrelationDimensionLatentDataIsLow(t *testing.T) {
	// A latent-factor data set in 30 ambient dims with 3 concepts: the
	// implicit dimensionality is far below ambient.
	ds := synthetic.MustGenerate(synthetic.LatentFactorConfig{
		Name: "lat", N: 600, Dims: 30, Classes: 2,
		ConceptStrengths: []float64{6, 6, 6}, ClassSeparation: 1,
		NoiseStdDev: 0.15, Seed: 3,
	})
	est, err := CorrelationDimension(ds.X, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if est.D2 > 8 {
		t.Fatalf("latent data D2 = %v, expected far below ambient 30", est.D2)
	}
	// Uniform data of the same ambient dimensionality measures much higher.
	cube := synthetic.UniformCube("u", 600, 30, 3)
	cubeEst, err := CorrelationDimension(cube.X, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cubeEst.D2 < 2*est.D2 {
		t.Fatalf("uniform D2 %v not clearly above latent D2 %v", cubeEst.D2, est.D2)
	}
}

func TestCorrelationDimensionValidation(t *testing.T) {
	if _, err := CorrelationDimension(linalg.NewDense(5, 2), Options{}); err == nil {
		t.Fatalf("too few points accepted")
	}
	// All points identical: degenerate distances rejected.
	x := linalg.NewDense(20, 2)
	if _, err := CorrelationDimension(x, Options{}); err == nil {
		t.Fatalf("degenerate data accepted")
	}
}

func TestCorrelationDimensionSamplingDeterministic(t *testing.T) {
	// Sampled path (MaxPairs < total): deterministic per seed.
	ds := synthetic.UniformCube("u", 400, 5, 4)
	a, err := CorrelationDimension(ds.X, Options{MaxPairs: 5000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CorrelationDimension(ds.X, Options{MaxPairs: 5000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.D2 != b.D2 || a.Pairs != 5000 {
		t.Fatalf("sampled estimate not deterministic: %v vs %v", a.D2, b.D2)
	}
}

func TestSlope(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // slope 2
	if got := slope(xs, ys); math.Abs(got-2) > 1e-12 {
		t.Fatalf("slope = %v", got)
	}
	if got := slope([]float64{1, 1}, []float64{2, 3}); got != 0 {
		t.Fatalf("vertical slope should return 0, got %v", got)
	}
}
