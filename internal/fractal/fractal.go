// Package fractal estimates the implicit (intrinsic) dimensionality of a
// point set via the correlation fractal dimension D₂ — the quantity behind
// the paper's §3 analysis and its reference [15] (Pagel, Korn & Faloutsos,
// "Deflating the Dimensionality Curse Using Multiple Fractal Dimensions").
//
// The correlation integral C(r) counts the fraction of point pairs within
// distance r; on a self-similar set C(r) ∝ r^D₂, so D₂ is the slope of
// log C(r) against log r. Data with low implicit dimensionality (a few
// latent concepts) has D₂ far below its ambient dimensionality; uniform
// noise has D₂ ≈ d — exactly the regime where the paper concludes that
// "effective dimensionality reduction is not possible".
package fractal

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/linalg"
)

// Estimate holds a correlation-dimension fit.
type Estimate struct {
	// D2 is the fitted correlation dimension.
	D2 float64
	// Radii and LogC are the sample points of the log-log curve
	// (log r, log C(r)) used in the fit.
	Radii []float64
	LogC  []float64
	// Pairs is the number of point pairs sampled.
	Pairs int
}

// Options configure CorrelationDimension.
type Options struct {
	// MaxPairs bounds the number of sampled point pairs (0 selects 200000).
	// All pairs are used when the data set has fewer.
	MaxPairs int
	// Levels is the number of radius samples on the log scale between the
	// 2nd and 30th percentile of pairwise distances (0 selects 12); the
	// small-radius regime avoids the boundary saturation that biases D₂
	// downward.
	Levels int
	// Seed drives pair sampling.
	Seed int64
}

// CorrelationDimension estimates D₂ for the rows of x.
func CorrelationDimension(x *linalg.Dense, opts Options) (Estimate, error) {
	n := x.Rows()
	if n < 10 {
		return Estimate{}, fmt.Errorf("fractal: need at least 10 points, got %d", n)
	}
	if opts.MaxPairs <= 0 {
		opts.MaxPairs = 200000
	}
	if opts.Levels <= 0 {
		opts.Levels = 12
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	total := n * (n - 1) / 2
	var dists []float64
	if total <= opts.MaxPairs {
		dists = make([]float64, 0, total)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dists = append(dists, linalg.Dist2(x.RawRow(i), x.RawRow(j)))
			}
		}
	} else {
		dists = make([]float64, 0, opts.MaxPairs)
		for len(dists) < opts.MaxPairs {
			i := rng.Intn(n)
			j := rng.Intn(n)
			if i == j {
				continue
			}
			dists = append(dists, linalg.Dist2(x.RawRow(i), x.RawRow(j)))
		}
	}

	// Radius grid between robust percentiles of the distance distribution
	// (extremes are dominated by noise and boundary effects).
	lo, hi := percentiles(dists, 0.02, 0.30)
	if !(hi > lo) || lo <= 0 {
		return Estimate{}, fmt.Errorf("fractal: degenerate distance distribution (lo=%g hi=%g)", lo, hi)
	}
	est := Estimate{Pairs: len(dists)}
	logLo, logHi := math.Log(lo), math.Log(hi)
	for l := 0; l < opts.Levels; l++ {
		r := math.Exp(logLo + (logHi-logLo)*float64(l)/float64(opts.Levels-1))
		count := 0
		for _, d := range dists {
			if d <= r {
				count++
			}
		}
		if count == 0 {
			continue
		}
		est.Radii = append(est.Radii, math.Log(r))
		est.LogC = append(est.LogC, math.Log(float64(count)/float64(len(dists))))
	}
	if len(est.Radii) < 2 {
		return Estimate{}, fmt.Errorf("fractal: too few usable radius levels")
	}
	est.D2 = slope(est.Radii, est.LogC)
	return est, nil
}

// percentiles returns the p1 and p2 quantiles of xs without mutating it.
func percentiles(xs []float64, p1, p2 float64) (float64, float64) {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pick := func(p float64) float64 {
		idx := int(p * float64(len(sorted)-1))
		return sorted[idx]
	}
	return pick(p1), pick(p2)
}

// slope fits least-squares y = a + b·x and returns b.
func slope(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
