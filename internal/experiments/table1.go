package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/eval"
	"repro/internal/knn"
	"repro/internal/reduction"
)

// Table1Row reproduces one row of the paper's Table 1 ("Advantages of
// aggressive dimensionality reduction"): full-dimensional accuracy versus
// the optimal-quality reduced representation versus the conservative
// x%-thresholding baseline.
type Table1Row struct {
	Dataset  string
	FullDims int
	// FullAccuracy is the feature-stripped k=3 prediction accuracy on the
	// original (unreduced) features.
	FullAccuracy float64
	// OptimalAccuracy/OptimalDims locate the peak of the scaled,
	// eigenvalue-ordered accuracy sweep.
	OptimalAccuracy float64
	OptimalDims     int
	// ThresholdAccuracy/ThresholdDims evaluate the representation that
	// keeps every eigenvalue at least ThresholdFrac of the largest.
	ThresholdAccuracy float64
	ThresholdDims     int
	// VarianceRetained is the energy fraction kept at the optimum — the
	// paper reports that very large fractions of variance are discarded
	// (e.g. ~60% for Arrhythmia).
	VarianceRetained float64
	// NeighborPrecision is the overlap of optimal-representation neighbors
	// with full-dimensional neighbors — the paper: "often in the range of
	// 10% or so".
	NeighborPrecision float64
}

// Table1Result holds all rows plus the threshold fraction used.
type Table1Result struct {
	ThresholdFrac float64
	Rows          []Table1Row
}

// Table1 regenerates the paper's Table 1 on the three data set analogues.
func Table1(cfg Config) Table1Result {
	c := cfg.withDefaults()
	res := Table1Result{ThresholdFrac: c.ThresholdFrac}
	for _, spec := range AllClean(c.Seed) {
		res.Rows = append(res.Rows, table1Row(spec, c.ThresholdFrac))
	}
	return res
}

func table1Row(spec DatasetSpec, thresholdFrac float64) Table1Row {
	ds := spec.Data
	row := Table1Row{Dataset: ds.Name, FullDims: ds.Dims()}
	row.FullAccuracy = eval.DatasetAccuracy(ds)

	p, err := reduction.Fit(ds.X, reduction.Options{Scaling: reduction.ScalingStudentize})
	if err != nil {
		panic(fmt.Sprintf("experiments: table1 fit %s: %v", ds.Name, err))
	}
	order := p.Order(reduction.ByEigenvalue)
	curve := eval.Sweep(ds, p, order, "scaled", eval.SweepConfig{Dims: spec.SweepDims})
	opt := curve.Optimal()
	row.OptimalAccuracy = opt.Accuracy
	row.OptimalDims = opt.Dims
	row.VarianceRetained = opt.EnergyFraction

	thr := p.ThresholdEigenvalue(thresholdFrac)
	row.ThresholdDims = len(thr)
	reduced := p.Transform(ds.X, thr)
	row.ThresholdAccuracy = eval.PredictionAccuracy(reduced, ds.Labels, eval.PaperK, knn.Euclidean{})

	optimalData := p.Transform(ds.X, order[:opt.Dims])
	rotated := p.TransformAll(ds.X)
	row.NeighborPrecision = eval.NeighborPrecision(rotated, optimalData, eval.PaperK, knn.Euclidean{})
	return row
}

// Format renders the result as an aligned text table.
func (r Table1Result) Format(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Table 1: advantages of aggressive dimensionality reduction (threshold %.0f%%)\n", 100*r.ThresholdFrac)
	fmt.Fprintln(tw, "dataset\tfull dims\tfull acc\topt acc\topt dims\tthr acc\tthr dims\tvar kept @opt\tprecision @opt")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%d\t%s\t%d\t%s\t%s\n",
			row.Dataset, row.FullDims, fmtPct(row.FullAccuracy),
			fmtPct(row.OptimalAccuracy), row.OptimalDims,
			fmtPct(row.ThresholdAccuracy), row.ThresholdDims,
			fmtPct(row.VarianceRetained), fmtPct(row.NeighborPrecision))
	}
	tw.Flush()
}
