package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/dataset/synthetic"
	"repro/internal/eval"
	"repro/internal/reduction"
)

// NoiseAblationRow measures how the value of aggressive reduction scales
// with the ambient noise level.
type NoiseAblationRow struct {
	// NoiseStdDev is the generator's ambient noise level.
	NoiseStdDev float64
	// FullAccuracy is the feature-stripped accuracy in the raw space.
	FullAccuracy float64
	// OptimalAccuracy/OptimalDims locate the scaled eigenvalue-ordered
	// sweep optimum.
	OptimalAccuracy float64
	OptimalDims     int
	// Benefit is OptimalAccuracy − FullAccuracy: the paper's motivation is
	// that this grows with the noise the reduction removes.
	Benefit float64
}

// NoiseAblationResult sweeps the Ionosphere analogue's noise level.
type NoiseAblationResult struct {
	Rows []NoiseAblationRow
}

// NoiseAblation quantifies the paper's §1.1 position — "a more relevant
// goal would be to be aggressive in reducing the number of dimensions so
// that the noise effects are removed" — by sweeping the generator noise:
// the noisier the data, the larger the quality gap between the aggressive
// optimum and the full-dimensional representation.
func NoiseAblation(cfg Config) NoiseAblationResult {
	c := cfg.withDefaults()
	var res NoiseAblationResult
	for _, sigma := range []float64{0.4, 0.8, 1.6, 2.4, 3.2} {
		gen := synthetic.IonosphereLikeConfig(c.Seed)
		gen.NoiseStdDev = sigma
		ds := synthetic.MustGenerate(gen)
		p, err := reduction.Fit(ds.X, reduction.Options{Scaling: reduction.ScalingStudentize})
		if err != nil {
			panic(fmt.Sprintf("experiments: noise ablation fit: %v", err))
		}
		curve := eval.Sweep(ds, p, p.Order(reduction.ByEigenvalue), "scaled", eval.SweepConfig{
			Dims: Ionosphere(c.Seed).SweepDims,
		})
		opt := curve.Optimal()
		full := eval.DatasetAccuracy(ds)
		res.Rows = append(res.Rows, NoiseAblationRow{
			NoiseStdDev:     sigma,
			FullAccuracy:    full,
			OptimalAccuracy: opt.Accuracy,
			OptimalDims:     opt.Dims,
			Benefit:         opt.Accuracy - full,
		})
	}
	return res
}

// Format renders the sweep.
func (r NoiseAblationResult) Format(w io.Writer) {
	fmt.Fprintln(w, "Ablation: value of aggressive reduction vs ambient noise (ionosphere-like)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "noise sd\tfull acc\topt acc\topt dims\tbenefit")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%.1f\t%s\t%s\t%d\t%+.1f pts\n",
			row.NoiseStdDev, fmtPct(row.FullAccuracy), fmtPct(row.OptimalAccuracy),
			row.OptimalDims, 100*row.Benefit)
	}
	tw.Flush()
}
