package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/dataset/synthetic"
	"repro/internal/index"
	"repro/internal/index/lsh"
	"repro/internal/knn"
	"repro/internal/linalg"
	"repro/internal/reduction"
)

// The recall-vs-work sweep: the production-scale counterpart of
// IndexPruning. Exact partition indexes lose all pruning power on raw
// high-dimensional data (§1.1); the approximate alternative is multi-probe
// LSH, whose recall/work tradeoff is tunable at query time via the probing
// depth. This experiment measures that tradeoff on the Musk analogue at
// database scale, on three representations of the same points: the raw
// 166-dimensional data, the PCA-reduced subspace, and the paper's
// coherence-selected subspace. Ground truth is the exact k-NN set in each
// representation, so recall isolates the index's error from the
// reduction's. The headline is the pairing the paper motivates: reduction
// is what pushes the LSH frontier to high recall at a small scanned
// fraction, while on raw data no setting reaches the same recall without
// scanning several times more of the database.

// LSHRecallRow is one (representation, tables, probes) measurement.
type LSHRecallRow struct {
	Representation string
	Dims           int
	Tables         int
	Hashes         int
	Probes         int
	// Recall is the mean recall@K against the representation's exact k-NN.
	Recall float64
	// ScanFraction is the fraction of stored vectors refined with exact
	// distances, averaged over the query workload.
	ScanFraction float64
	// BucketsProbed and CandidateSize are per-query means.
	BucketsProbed float64
	CandidateSize float64
}

// LSHRecallResult is the full sweep.
type LSHRecallResult struct {
	N, K, Queries int
	Rows          []LSHRecallRow
}

// lshRecallK is the neighbor count of the sweep (the k = 10 regime of
// production ANN benchmarks rather than the paper's k = 3).
const lshRecallK = 10

// LSHRecall measures the multi-probe LSH recall-vs-work tradeoff on a
// database-scale Musk analogue (n = 6598, the size of UCI Musk version 2,
// at the paper's d = 166). Deterministic given cfg.Seed.
func LSHRecall(cfg Config) LSHRecallResult {
	c := cfg.withDefaults()
	const (
		nData    = 6598
		nQueries = 50
	)
	gen := synthetic.MuskLikeConfig(c.Seed)
	gen.N = nData + nQueries
	all := synthetic.MustGenerate(gen)

	dataRows := make([]int, nData)
	for i := range dataRows {
		dataRows[i] = i
	}
	queryRows := make([]int, nQueries)
	for i := range queryRows {
		queryRows[i] = nData + i
	}

	p, err := reduction.Fit(all.X.SliceRows(dataRows), reduction.Options{
		Scaling:          reduction.ScalingStudentize,
		ComputeCoherence: true,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: lsh recall fit: %v", err))
	}
	const reducedDims = 16
	reps := []struct {
		name string
		x    *linalg.Dense
	}{
		{"raw (166 dims)", all.X},
		{fmt.Sprintf("pca (top %d)", reducedDims), p.Transform(all.X, p.TopK(reduction.ByEigenvalue, reducedDims))},
		{fmt.Sprintf("coherence (top %d)", reducedDims), p.Transform(all.X, p.TopK(reduction.ByCoherence, reducedDims))},
	}

	res := LSHRecallResult{N: nData, K: lshRecallK, Queries: nQueries}
	for _, rep := range reps {
		data := rep.x.SliceRows(dataRows)
		queries := rep.x.SliceRows(queryRows)
		exact := knn.SearchSetBatch(data, queries, lshRecallK, knn.Euclidean{}, false)
		const tables, hashes = 12, 12
		ix := lsh.Build(data, lsh.Config{Tables: tables, Hashes: hashes, Seed: c.Seed})
		for _, probes := range []int{1, 8, 32, 128} {
			approx, stats := ix.KNNApproxSet(queries, lshRecallK, probes)
			res.Rows = append(res.Rows, LSHRecallRow{
				Representation: rep.name,
				Dims:           data.Cols(),
				Tables:         tables,
				Hashes:         hashes,
				Probes:         probes,
				Recall:         index.MeanRecall(approx, exact),
				ScanFraction:   index.ScanFraction(stats, nQueries*nData),
				BucketsProbed:  float64(stats.BucketsProbed) / nQueries,
				CandidateSize:  float64(stats.CandidateSize) / nQueries,
			})
		}
	}
	return res
}

// Best returns the row with the highest recall among those that scanned
// less than maxScanFraction of the database, or false if none qualifies.
func (r LSHRecallResult) Best(maxScanFraction float64) (LSHRecallRow, bool) {
	var best LSHRecallRow
	found := false
	for _, row := range r.Rows {
		if row.ScanFraction >= maxScanFraction {
			continue
		}
		if !found || row.Recall > best.Recall {
			best, found = row, true
		}
	}
	return best, found
}

// Format renders the recall-vs-work table.
func (r LSHRecallResult) Format(w io.Writer) {
	fmt.Fprintf(w, "Multi-probe LSH: recall@%d vs. scanned fraction on musk-like (n=%d, %d queries)\n",
		r.K, r.N, r.Queries)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "representation\tdims\ttables\thashes\tprobes\trecall\tscanned\tbuckets/query\tcandidates/query")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.3f\t%s\t%.0f\t%.0f\n",
			row.Representation, row.Dims, row.Tables, row.Hashes, row.Probes,
			row.Recall, fmtPct(row.ScanFraction), row.BucketsProbed, row.CandidateSize)
	}
	tw.Flush()
}
