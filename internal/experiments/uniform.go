package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/dataset/synthetic"
	"repro/internal/reduction"
	"repro/internal/stats"
)

// UniformCoherenceResult verifies the paper's §3 closed form: for uniformly
// distributed data and axis-aligned vectors, the coherence factor is exactly
// 1 and the coherence probability 2Φ(1)−1 ≈ 0.683, independent of the
// dimensionality — so no direction can be pruned and the data is unsuited to
// dimensionality reduction.
type UniformCoherenceResult struct {
	// Theoretical is 2Φ(1) − 1.
	Theoretical float64
	// Dims lists the tested dimensionalities.
	Dims []int
	// AxisCoherence[i] is the measured mean P(D,e) over all axis vectors at
	// Dims[i].
	AxisCoherence []float64
	// PCACoherenceSpread[i] is max−min coherence over the sample PCA
	// eigenvectors at Dims[i] — flat profiles mean nothing can be pruned.
	PCACoherenceSpread []float64
}

// UniformCoherence measures the §3 quantities on uniform hypercubes.
func UniformCoherence(cfg Config) UniformCoherenceResult {
	c := cfg.withDefaults()
	res := UniformCoherenceResult{Theoretical: stats.TwoSidedProbability(1)}
	for _, d := range []int{5, 10, 20, 50} {
		ds := synthetic.UniformCube("uniform", 1500, d, c.Seed)
		centered, _ := stats.Center(ds.X)
		sum := 0.0
		e := make([]float64, d)
		for i := 0; i < d; i++ {
			e[i] = 1
			sum += core.DatasetCoherence(centered, e)
			e[i] = 0
		}
		res.Dims = append(res.Dims, d)
		res.AxisCoherence = append(res.AxisCoherence, sum/float64(d))

		p, err := reduction.Fit(ds.X, reduction.Options{ComputeCoherence: true})
		if err != nil {
			panic(fmt.Sprintf("experiments: uniform fit d=%d: %v", d, err))
		}
		min, max := stats.MinMax(p.Coherence)
		res.PCACoherenceSpread = append(res.PCACoherenceSpread, max-min)
	}
	return res
}

// Format renders the §3 verification.
func (r UniformCoherenceResult) Format(w io.Writer) {
	fmt.Fprintf(w, "§3: uniform data coherence (theory: P(D,e)=2Φ(1)−1=%.4f for every axis vector)\n", r.Theoretical)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dims\taxis-vector P(D,e)\tPCA coherence spread")
	for i, d := range r.Dims {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\n", d, r.AxisCoherence[i], r.PCACoherenceSpread[i])
	}
	tw.Flush()
}
