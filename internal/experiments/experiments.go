// Package experiments contains one driver per table and figure of the
// paper's evaluation section (plus the §1.1/§3 analytical demonstrations and
// the ablations listed in DESIGN.md). Every driver is deterministic given a
// Config, returns a typed result, and can render itself as an aligned text
// report; cmd/experiments and the top-level benchmarks are thin wrappers.
package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/dataset/synthetic"
)

// Config controls the experiment suite.
type Config struct {
	// Seed drives all data generation (default 1).
	Seed int64
	// ThresholdFrac is the Table 1 "x%-thresholding" fraction. The OCR of
	// the paper reads "1%"; 0 selects that default of 0.01 (see DESIGN.md
	// §4 on the ambiguity — pass 0.10 for the other reading).
	ThresholdFrac float64
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ThresholdFrac == 0 {
		c.ThresholdFrac = 0.01
	}
	return c
}

// DatasetSpec couples a data set with the sweep grid used in its figures.
type DatasetSpec struct {
	Data *dataset.Dataset
	// SweepDims is the dimensionality grid for accuracy sweeps, matching
	// the resolution of the paper's curves.
	SweepDims []int
}

// Musk returns the Musk analogue and its sweep grid (Figures 3–5).
func Musk(seed int64) DatasetSpec {
	return DatasetSpec{
		Data:      synthetic.MuskLike(seed),
		SweepDims: []int{1, 3, 5, 8, 11, 13, 16, 20, 30, 50, 80, 120, 166},
	}
}

// Ionosphere returns the Ionosphere analogue and grid (Figures 6–8).
func Ionosphere(seed int64) DatasetSpec {
	return DatasetSpec{
		Data:      synthetic.IonosphereLike(seed),
		SweepDims: []int{1, 2, 3, 5, 8, 10, 13, 17, 22, 28, 34},
	}
}

// Arrhythmia returns the Arrhythmia analogue and grid (Figures 9–11).
func Arrhythmia(seed int64) DatasetSpec {
	return DatasetSpec{
		Data:      synthetic.ArrhythmiaLike(seed),
		SweepDims: []int{1, 3, 5, 8, 10, 14, 20, 35, 60, 100, 180, 279},
	}
}

// NoisyA returns the corrupted Ionosphere analogue (Figures 12–13).
func NoisyA(seed int64) DatasetSpec {
	ds, _ := synthetic.NoisyDataA(seed)
	return DatasetSpec{
		Data:      ds,
		SweepDims: []int{1, 2, 3, 5, 8, 10, 13, 17, 22, 28, 34},
	}
}

// NoisyB returns the corrupted Arrhythmia analogue (Figures 14–15).
func NoisyB(seed int64) DatasetSpec {
	ds, _ := synthetic.NoisyDataB(seed)
	return DatasetSpec{
		Data:      ds,
		SweepDims: []int{1, 3, 5, 8, 11, 15, 21, 40, 80, 150, 279},
	}
}

// AllClean returns the three clean analogues in the paper's Table 1 order.
func AllClean(seed int64) []DatasetSpec {
	return []DatasetSpec{Musk(seed), Ionosphere(seed), Arrhythmia(seed)}
}

// fmtPct renders a fraction as a percentage with one decimal.
func fmtPct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
