package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/reduction"
)

// The assertions in this file are the repository's reproduction criteria:
// each checks a qualitative claim of the paper on the synthetic analogues
// with the default seed (see EXPERIMENTS.md for paper-vs-measured numbers).

func TestTable1Shapes(t *testing.T) {
	res := Table1(Config{})
	if len(res.Rows) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(res.Rows))
	}
	wantDims := map[string]int{"musk-like": 166, "ionosphere-like": 34, "arrhythmia-like": 279}
	for _, row := range res.Rows {
		if wantDims[row.Dataset] != row.FullDims {
			t.Fatalf("%s: dims %d", row.Dataset, row.FullDims)
		}
		// Optimal beats full-dimensional accuracy...
		if row.OptimalAccuracy <= row.FullAccuracy {
			t.Errorf("%s: optimal %.3f not above full %.3f", row.Dataset, row.OptimalAccuracy, row.FullAccuracy)
		}
		// ...at an aggressively small dimensionality...
		if row.OptimalDims > row.FullDims/4 {
			t.Errorf("%s: optimal dims %d not aggressive (full %d)", row.Dataset, row.OptimalDims, row.FullDims)
		}
		// ...while thresholding keeps far more dimensions than the optimum
		// and lands near the full-dimensional accuracy, not the optimum.
		if row.ThresholdDims <= 2*row.OptimalDims {
			t.Errorf("%s: threshold dims %d not clearly larger than optimal %d", row.Dataset, row.ThresholdDims, row.OptimalDims)
		}
		if row.ThresholdAccuracy >= row.OptimalAccuracy {
			t.Errorf("%s: threshold accuracy %.3f not below optimal %.3f", row.Dataset, row.ThresholdAccuracy, row.OptimalAccuracy)
		}
		// Aggressive reduction discards a large share of the variance
		// (the paper reports ~60% discarded for Arrhythmia).
		if row.Dataset == "arrhythmia-like" && row.VarianceRetained > 0.85 {
			t.Errorf("arrhythmia: variance retained %.2f, expected substantial discard", row.VarianceRetained)
		}
		// Precision w.r.t. original neighbors is low at the optimum — the
		// optimum does NOT mirror the original neighbors.
		if row.NeighborPrecision > 0.8 {
			t.Errorf("%s: precision at optimum %.2f suspiciously high", row.Dataset, row.NeighborPrecision)
		}
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "musk-like") {
		t.Fatalf("Format output missing rows:\n%s", buf.String())
	}
}

func TestTable1ThresholdFractionConfigurable(t *testing.T) {
	r1 := Table1(Config{ThresholdFrac: 0.01})
	r10 := Table1(Config{ThresholdFrac: 0.10})
	for i := range r1.Rows {
		if r10.Rows[i].ThresholdDims >= r1.Rows[i].ThresholdDims {
			t.Fatalf("%s: 10%% threshold (%d dims) not more aggressive than 1%% (%d)",
				r1.Rows[i].Dataset, r10.Rows[i].ThresholdDims, r1.Rows[i].ThresholdDims)
		}
	}
}

func TestFigure1(t *testing.T) {
	r := Figure1()
	if r.CoordinateA <= r.CoordinateB {
		t.Fatalf("A's coordinate %.3f should exceed B's %.3f", r.CoordinateA, r.CoordinateB)
	}
	if r.FactorB <= r.FactorA {
		t.Fatalf("B's coherence factor %.3f should exceed A's %.3f", r.FactorB, r.FactorA)
	}
	if r.ProbabilityB <= r.ProbabilityA {
		t.Fatalf("B's coherence probability should exceed A's")
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "direction B") {
		t.Fatalf("Format output incomplete")
	}
}

func TestFigure2(t *testing.T) {
	r := Figure2()
	if math.Abs(r.OriginalDot) > 1e-12 {
		t.Fatalf("original vectors not orthogonal: %v", r.OriginalDot)
	}
	if math.Abs(r.ScaledDot) < 1 {
		t.Fatalf("scaling should clearly break orthogonality, dot=%v", r.ScaledDot)
	}
	if r.AngleDegrees > 85 || r.AngleDegrees < 5 {
		t.Fatalf("scaled angle %.1f° not meaningfully non-orthogonal", r.AngleDegrees)
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if buf.Len() == 0 {
		t.Fatalf("empty Format")
	}
}

func TestCleanScattersShowGoodMatching(t *testing.T) {
	// Figures 3/6/9: on the clean (normalized) data sets, eigenvalue
	// magnitude and coherence probability correlate strongly.
	for _, spec := range AllClean(1) {
		r := Scatter(spec, reduction.ScalingStudentize)
		if r.Correlation < 0.5 {
			t.Errorf("%s: pearson %.3f, want strong positive", r.Dataset, r.Correlation)
		}
		if r.SpearmanCorrelation < 0.5 {
			t.Errorf("%s: spearman %.3f, want strong positive", r.Dataset, r.SpearmanCorrelation)
		}
		if len(r.Points) != spec.Data.Dims() {
			t.Errorf("%s: %d points for %d dims", r.Dataset, len(r.Points), spec.Data.Dims())
		}
		var buf bytes.Buffer
		r.Format(&buf)
		if !strings.Contains(buf.String(), "pearson") {
			t.Fatalf("scatter Format incomplete")
		}
	}
}

func TestNoisyScattersShowPoorMatching(t *testing.T) {
	// Figures 12/14: on the corrupted sets the matching is poor — "the
	// largest few eigenvalues correspond to very low coherence probability
	// and vice-versa". Checked three ways: (a) the most coherent
	// eigenvector is NOT among the top eigenvalues, (b) the top-eigenvalue
	// vector's coherence sits clearly below the best concept's, and (c) the
	// eigenvalue/coherence correlation drops hard relative to the clean
	// counterpart.
	for _, tc := range []struct {
		noisy, clean DatasetSpec
	}{
		{NoisyA(1), Ionosphere(1)},
		{NoisyB(1), Arrhythmia(1)},
	} {
		r := Scatter(tc.noisy, reduction.ScalingNone)
		clean := Scatter(tc.clean, reduction.ScalingStudentize)
		if r.Correlation > clean.Correlation-0.1 {
			t.Errorf("%s: pearson %.3f not clearly below clean %.3f", r.Dataset, r.Correlation, clean.Correlation)
		}
		topCoh := r.Points[0].Coherence
		maxCoh, argmax := topCoh, 0
		for i, p := range r.Points {
			if p.Coherence > maxCoh {
				maxCoh, argmax = p.Coherence, i
			}
		}
		if argmax < 5 {
			t.Errorf("%s: most coherent vector at eigenvalue rank %d, expected buried below the noise block", r.Dataset, argmax+1)
		}
		if maxCoh < topCoh+0.1 {
			t.Errorf("%s: best concept coherence %.3f not clearly above top-eigenvalue coherence %.3f", r.Dataset, maxCoh, topCoh)
		}
	}
}

func TestCoherenceDistributionScalingLift(t *testing.T) {
	// Figures 4/7/10: studentizing raises coherence probabilities
	// (§2.2: "the process of performing the scaling is also likely to
	// increase the absolute magnitude of the coherence probability").
	for _, spec := range AllClean(1) {
		r := CoherenceDistribution(spec)
		if lift := r.MeanLift(); lift <= 0 {
			t.Errorf("%s: scaling lift %.4f, want positive", r.Dataset, lift)
		}
		if len(r.ScaledCoherence) != spec.Data.Dims() || len(r.UnscaledCoherence) != spec.Data.Dims() {
			t.Errorf("%s: series lengths wrong", r.Dataset)
		}
		var buf bytes.Buffer
		r.Format(&buf)
		if !strings.Contains(buf.String(), "lift") {
			t.Fatalf("distribution Format incomplete")
		}
	}
}

func TestScalingQualityCurves(t *testing.T) {
	// Figures 5/8/11: scaled curves reach a better optimum than unscaled,
	// and the optimum beats the full-dimensional end of the curve.
	for _, spec := range AllClean(1) {
		r := ScalingQuality(spec)
		scaled := r.Curve("scaled")
		unscaled := r.Curve("unscaled")
		if scaled.Optimal().Accuracy <= unscaled.Optimal().Accuracy {
			t.Errorf("%s: scaled optimum %.3f not above unscaled %.3f",
				r.Dataset, scaled.Optimal().Accuracy, unscaled.Optimal().Accuracy)
		}
		full, ok := scaled.At(spec.Data.Dims())
		if !ok {
			t.Fatalf("%s: full-dim point missing", r.Dataset)
		}
		if scaled.Optimal().Accuracy <= full.Accuracy {
			t.Errorf("%s: scaled optimum not above full-dim accuracy", r.Dataset)
		}
		var buf bytes.Buffer
		r.Format(&buf)
		if !strings.Contains(buf.String(), "optimum") {
			t.Fatalf("quality Format incomplete")
		}
	}
}

func TestOrderingQualityOnNoisyData(t *testing.T) {
	// Figures 13/15: on the corrupted sets, coherence ordering dominates
	// eigenvalue ordering, peaks at a small dimensionality, and the
	// eigenvalue curve only recovers near full dimensionality.
	for _, tc := range []struct {
		spec       DatasetSpec
		maxPeak    int
		domThrough int // coherence must dominate at every dim <= this
	}{
		{NoisyA(1), 10, 10},
		{NoisyB(1), 21, 15},
	} {
		r := OrderingQuality(tc.spec)
		eig := r.Curve("eigenvalue ordering")
		coh := r.Curve("coherence ordering")
		if coh.Optimal().Accuracy <= eig.Optimal().Accuracy {
			t.Errorf("%s: coherence optimum %.3f not above eigenvalue optimum %.3f",
				r.Dataset, coh.Optimal().Accuracy, eig.Optimal().Accuracy)
		}
		if coh.Optimal().Dims > tc.maxPeak {
			t.Errorf("%s: coherence peak at %d dims, want <= %d", r.Dataset, coh.Optimal().Dims, tc.maxPeak)
		}
		// Dominance through the aggressive-reduction regime (skipping dim 1,
		// where a single direction's accuracy is noisy).
		for i := range coh.Points {
			d := coh.Points[i].Dims
			if d <= 1 || d > tc.domThrough {
				continue
			}
			if coh.Points[i].Accuracy < eig.Points[i].Accuracy {
				t.Errorf("%s: eigenvalue ordering wins at %d dims (%.3f vs %.3f)",
					r.Dataset, d, eig.Points[i].Accuracy, coh.Points[i].Accuracy)
			}
		}
		// The eigenvalue curve's early points are far below its own full-
		// dimensional value: reduction by eigenvalue always loses here.
		full, _ := eig.At(tc.spec.Data.Dims())
		early := eig.Points[1]
		if early.Accuracy >= full.Accuracy {
			t.Errorf("%s: eigenvalue ordering should lose information early (%.3f vs full %.3f)",
				r.Dataset, early.Accuracy, full.Accuracy)
		}
	}
}

func TestUniformCoherenceMatchesTheory(t *testing.T) {
	r := UniformCoherence(Config{})
	want := 0.6826894921370859
	if math.Abs(r.Theoretical-want) > 1e-12 {
		t.Fatalf("theoretical value %v", r.Theoretical)
	}
	for i, d := range r.Dims {
		if math.Abs(r.AxisCoherence[i]-want) > 0.02 {
			t.Errorf("d=%d: axis coherence %.4f, want ≈%.4f", d, r.AxisCoherence[i], want)
		}
		if r.PCACoherenceSpread[i] > 0.15 {
			t.Errorf("d=%d: PCA coherence spread %.3f, want flat", d, r.PCACoherenceSpread[i])
		}
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if buf.Len() == 0 {
		t.Fatalf("empty Format")
	}
}

func TestContrastSweepCollapses(t *testing.T) {
	r := ContrastSweep(Config{})
	if len(r.Contrast) != len(r.Dims) {
		t.Fatalf("shape mismatch")
	}
	// Euclidean contrast collapses with d.
	l2 := -1
	for j, m := range r.Metrics {
		if m == "L2" {
			l2 = j
		}
	}
	if l2 < 0 {
		t.Fatalf("no L2 column")
	}
	first := r.Contrast[0][l2]
	last := r.Contrast[len(r.Dims)-1][l2]
	if last >= first/3 {
		t.Errorf("L2 contrast did not collapse: %v -> %v", first, last)
	}
	// Fractional metric retains more contrast than L∞ in high d
	// (reference [1]'s qualitative finding).
	frac, cheb := -1, -1
	for j, m := range r.Metrics {
		switch m {
		case "L0.5":
			frac = j
		case "Linf":
			cheb = j
		}
	}
	hi := len(r.Dims) - 1
	if r.Contrast[hi][frac] <= r.Contrast[hi][cheb] {
		t.Errorf("fractional contrast %.3f not above L∞ %.3f at d=%d",
			r.Contrast[hi][frac], r.Contrast[hi][cheb], r.Dims[hi])
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if buf.Len() == 0 {
		t.Fatalf("empty Format")
	}
}

func TestIndexPruningRecoversAfterReduction(t *testing.T) {
	r := IndexPruning(Config{})
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	full, reduced := r.Rows[0], r.Rows[1]
	// Full dimensionality: the kd-tree degenerates to ~full scans.
	if full.KDTree < 0.5 {
		t.Errorf("full-dim kd-tree scan fraction %.2f, expected near 1", full.KDTree)
	}
	// After aggressive reduction every structure prunes hard.
	for name, v := range map[string]float64{"kdtree": reduced.KDTree, "rtree": reduced.RTree, "vafile": reduced.VAFile} {
		if v > 0.5*full.KDTree && v > 0.3 {
			t.Errorf("%s after reduction scans %.2f, expected strong pruning", name, v)
		}
	}
	if reduced.KDTree >= full.KDTree {
		t.Errorf("reduction did not improve kd-tree pruning: %.2f vs %.2f", reduced.KDTree, full.KDTree)
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if buf.Len() == 0 {
		t.Fatalf("empty Format")
	}
}

func TestLSHRecallTradeoff(t *testing.T) {
	r := LSHRecall(Config{})
	if r.N != 6598 || r.K != 10 {
		t.Fatalf("unexpected scale: n=%d k=%d", r.N, r.K)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The subsystem's acceptance bar: some (tables, probes) setting reaches
	// recall >= 0.9 at k=10 while refining under 20% of the database.
	best, ok := r.Best(0.2)
	if !ok || best.Recall < 0.9 {
		t.Fatalf("no setting reached recall >= 0.9 under 20%% scanned (best %+v)", best)
	}
	byRep := map[string][]LSHRecallRow{}
	for _, row := range r.Rows {
		byRep[row.Representation] = append(byRep[row.Representation], row)
		if row.Recall < 0 || row.Recall > 1 {
			t.Errorf("recall out of range: %+v", row)
		}
		if row.BucketsProbed != float64(row.Tables*row.Probes) {
			t.Errorf("%s probes=%d: buckets/query %.0f != tables*probes %d",
				row.Representation, row.Probes, row.BucketsProbed, row.Tables*row.Probes)
		}
	}
	if len(byRep) != 3 {
		t.Fatalf("representations = %d, want raw/pca/coherence", len(byRep))
	}
	for rep, rows := range byRep {
		// More probes must never cost recall (the candidate set only grows).
		for i := 1; i < len(rows); i++ {
			if rows[i].Recall < rows[i-1].Recall {
				t.Errorf("%s: recall fell from %.3f to %.3f as probes rose %d -> %d",
					rep, rows[i-1].Recall, rows[i].Recall, rows[i-1].Probes, rows[i].Probes)
			}
			if rows[i].ScanFraction < rows[i-1].ScanFraction {
				t.Errorf("%s: scan fraction fell as probes rose", rep)
			}
		}
	}
	// The paper's motivation, quantified: at the deepest probing setting the
	// reduced representations reach higher recall at a small fraction of the
	// raw representation's scanned work.
	raw := byRep["raw (166 dims)"]
	pca := byRep["pca (top 16)"]
	rawLast, pcaLast := raw[len(raw)-1], pca[len(pca)-1]
	if pcaLast.Recall < rawLast.Recall {
		t.Errorf("pca recall %.3f below raw %.3f at max probes", pcaLast.Recall, rawLast.Recall)
	}
	if pcaLast.ScanFraction > rawLast.ScanFraction/2 {
		t.Errorf("pca scan fraction %.3f not well below raw %.3f", pcaLast.ScanFraction, rawLast.ScanFraction)
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "recall@10") {
		t.Fatalf("Format incomplete:\n%s", buf.String())
	}
}

func TestLSHRecallDeterministic(t *testing.T) {
	// The whole sweep — parallel LSH builds, parallel batch queries and the
	// parallel ground truth included — must be byte-identical across runs
	// for a fixed seed.
	var a, b bytes.Buffer
	LSHRecall(Config{Seed: 3}).Format(&a)
	LSHRecall(Config{Seed: 3}).Format(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("recall sweep not byte-identical across runs:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestSelectionAblation(t *testing.T) {
	r := SelectionAblation(Config{})
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// On the noisy set, the coherence strategy beats the eigenvalue
	// strategy.
	byKey := map[string]SelectionAblationRow{}
	for _, row := range r.Rows {
		byKey[row.Dataset+"/"+row.Strategy] = row
	}
	eig := byKey["noisy-A/eigenvalue top-k (gap)"]
	coh := byKey["noisy-A/coherence top-k (gap)"]
	if coh.Accuracy <= eig.Accuracy {
		t.Errorf("noisy-A: coherence strategy %.3f not above eigenvalue %.3f", coh.Accuracy, eig.Accuracy)
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if buf.Len() == 0 {
		t.Fatalf("empty Format")
	}
}

func TestMetricAblation(t *testing.T) {
	r := MetricAblation(Config{})
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.FullDim <= 0.5 || row.Reduced <= 0.5 {
			t.Errorf("%s: implausible accuracy %+v", row.Metric, row)
		}
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if buf.Len() == 0 {
		t.Fatalf("empty Format")
	}
}

func TestScalingAblation(t *testing.T) {
	r := ScalingAblation(Config{})
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ScaledOptimum <= row.UnscaledOptimum {
			t.Errorf("%s: scaled optimum not better", row.Dataset)
		}
		if row.CoherenceLift <= 0 {
			t.Errorf("%s: coherence lift %.3f not positive", row.Dataset, row.CoherenceLift)
		}
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if buf.Len() == 0 {
		t.Fatalf("empty Format")
	}
}

func TestQualityResultCurvePanicsOnUnknownLabel(t *testing.T) {
	r := ScalingQuality(Ionosphere(1))
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	r.Curve("nope")
}

func TestDeterminism(t *testing.T) {
	// Same config → identical results.
	a := Scatter(Ionosphere(7), reduction.ScalingStudentize)
	b := Scatter(Ionosphere(7), reduction.ScalingStudentize)
	if a.Correlation != b.Correlation {
		t.Fatalf("scatter not deterministic")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("scatter points differ at %d", i)
		}
	}
}

func TestLocalReductionExtension(t *testing.T) {
	r := LocalReduction(Config{})
	// The §3.1 claim: on union-of-subspaces data a single global reduction
	// fails, while per-cluster reduction at the same aggressiveness clearly
	// beats it and recovers nearly full-dimensional quality with an
	// order-of-magnitude fewer dimensions per point.
	if r.LocalAccuracy <= r.GlobalAccuracy+0.05 {
		t.Errorf("local %.3f not clearly above global %.3f", r.LocalAccuracy, r.GlobalAccuracy)
	}
	if r.LocalAccuracy < 0.95*r.FullAccuracy {
		t.Errorf("local %.3f does not recover full-dimensional quality %.3f", r.LocalAccuracy, r.FullAccuracy)
	}
	if r.GlobalAccuracy >= 0.95*r.FullAccuracy {
		t.Errorf("global reduction at %d dims should fail on this data (%.3f vs full %.3f)",
			r.GlobalDims, r.GlobalAccuracy, r.FullAccuracy)
	}
	if len(r.PerClusterSizes) != 5 {
		t.Fatalf("cluster count %d", len(r.PerClusterSizes))
	}
	for c, dims := range r.PerClusterDims {
		if dims != 3 {
			t.Errorf("cluster %d dims %d, want 3", c, dims)
		}
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if buf.Len() == 0 {
		t.Fatalf("empty Format")
	}
}

func TestIGridComparison(t *testing.T) {
	r := IGridComparison(Config{})
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Plausible accuracy under both notions; neither collapses.
		if row.EuclideanAcc < 0.5 || row.IGridAcc < 0.5 {
			t.Errorf("%s: accuracy collapsed: %+v", row.Dataset, row)
		}
	}
	// Reference [3]'s claim: IGrid similarity retains far more contrast
	// than L2 as dimensionality grows, and its advantage widens.
	for _, cr := range r.ContrastRows {
		if cr.IGridSpread <= cr.L2Spread {
			t.Errorf("d=%d: igrid spread %.3f not above L2 %.3f", cr.Dims, cr.IGridSpread, cr.L2Spread)
		}
	}
	last := r.ContrastRows[len(r.ContrastRows)-1]
	if last.IGridSpread < 2*last.L2Spread {
		t.Errorf("at d=%d igrid spread %.3f not >= 2x L2 %.3f", last.Dims, last.IGridSpread, last.L2Spread)
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "contrast preservation") {
		t.Fatalf("Format incomplete")
	}
}

func TestImplicitDimensionality(t *testing.T) {
	r := ImplicitDimensionality(Config{})
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		ratio := row.D2 / float64(row.AmbientDims)
		isUniform := strings.HasPrefix(row.Dataset, "uniform")
		if isUniform {
			// §3: uniform data's implicit dimensionality equals the ambient
			// dimensionality (estimator bias keeps the ratio below 1, but it
			// stays high) and the coherence profile is flat.
			if ratio < 0.4 {
				t.Errorf("%s: D2/d = %.2f, expected high", row.Dataset, ratio)
			}
			if row.CoherenceSpread > 0.2 {
				t.Errorf("%s: coherence spread %.3f, expected flat", row.Dataset, row.CoherenceSpread)
			}
			continue
		}
		// The analogues: low implicit dimensionality, peaked coherence.
		if ratio > 0.3 {
			t.Errorf("%s: D2/d = %.2f, expected low implicit dimensionality", row.Dataset, ratio)
		}
		if row.CoherenceSpread < 0.5 {
			t.Errorf("%s: coherence spread %.3f, expected strongly peaked", row.Dataset, row.CoherenceSpread)
		}
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "D2") {
		t.Fatalf("Format incomplete")
	}
}

func TestNoiseAblation(t *testing.T) {
	r := NoiseAblation(Config{})
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	// The value of aggressive reduction grows with the ambient noise...
	if last.Benefit < first.Benefit+0.03 {
		t.Errorf("benefit did not grow with noise: %.3f -> %.3f", first.Benefit, last.Benefit)
	}
	// ...and the optimum becomes more aggressive.
	if last.OptimalDims >= first.OptimalDims {
		t.Errorf("optimal dims did not shrink with noise: %d -> %d", first.OptimalDims, last.OptimalDims)
	}
	// Full-dimensional accuracy degrades monotonically with noise.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].FullAccuracy > r.Rows[i-1].FullAccuracy+0.01 {
			t.Errorf("full accuracy rose with noise at row %d", i)
		}
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if buf.Len() == 0 {
		t.Fatalf("empty Format")
	}
}
