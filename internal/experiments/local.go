package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/cluster"
	"repro/internal/dataset/synthetic"
	"repro/internal/eval"
	"repro/internal/knn"
	"repro/internal/reduction"
)

// LocalReductionResult evaluates the paper's §3.1 extension on a
// union-of-subspaces data set: a single global reduction cannot serve all
// clusters at once (the global implicit dimensionality is the sum of the
// per-cluster ones), while per-cluster reduction recovers quality at the
// same aggressiveness.
type LocalReductionResult struct {
	Dataset string
	// FullAccuracy is the feature-stripped accuracy in the raw space.
	FullAccuracy float64
	// GlobalAccuracy/GlobalDims evaluate a single global PCA truncated to
	// the same per-point dimensionality the local method uses.
	GlobalAccuracy float64
	GlobalDims     int
	// LocalAccuracy/LocalDims evaluate the per-cluster reduction
	// (LocalDims is the largest per-cluster subspace dimensionality).
	LocalAccuracy float64
	LocalDims     int
	// PerCluster lists each cluster's size and retained dimensionality.
	PerClusterSizes []int
	PerClusterDims  []int
}

// LocalReduction runs the §3.1 extension experiment.
func LocalReduction(cfg Config) LocalReductionResult {
	c := cfg.withDefaults()
	ds, err := synthetic.SubspaceMixture(synthetic.SubspaceMixtureConfig{
		Name: "subspace-mixture", N: 600, Dims: 40, Clusters: 5, LatentPerCluster: 3,
		ConceptStrength: 3, ClassSeparation: 1.5, CenterSpread: 8,
		NoiseStdDev: 1.2, Seed: c.Seed,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: subspace mixture: %v", err))
	}
	res := LocalReductionResult{Dataset: ds.Name}
	res.FullAccuracy = eval.DatasetAccuracy(ds)

	lr, err := cluster.FitLocal(ds.X, cluster.LocalConfig{
		Clusters: 5, Ordering: reduction.ByEigenvalue, FixedComponents: 3, Seed: c.Seed,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: local fit: %v", err))
	}
	res.LocalAccuracy = lr.Accuracy(ds, eval.PaperK)
	for ci, members := range lr.Members {
		res.PerClusterSizes = append(res.PerClusterSizes, len(members))
		res.PerClusterDims = append(res.PerClusterDims, lr.Dims()[ci])
		if lr.Dims()[ci] > res.LocalDims {
			res.LocalDims = lr.Dims()[ci]
		}
	}

	p, err := reduction.Fit(ds.X, reduction.Options{})
	if err != nil {
		panic(fmt.Sprintf("experiments: global fit: %v", err))
	}
	res.GlobalDims = res.LocalDims
	global := p.Transform(ds.X, p.TopK(reduction.ByEigenvalue, res.GlobalDims))
	res.GlobalAccuracy = eval.PredictionAccuracy(global, ds.Labels, eval.PaperK, knn.Euclidean{})
	return res
}

// Format renders the comparison.
func (r LocalReductionResult) Format(w io.Writer) {
	fmt.Fprintf(w, "§3.1 extension: local (projected-clustering) reduction on %s\n", r.Dataset)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\tdims per point\taccuracy")
	fmt.Fprintf(tw, "full dimensionality\t40\t%s\n", fmtPct(r.FullAccuracy))
	fmt.Fprintf(tw, "single global reduction\t%d\t%s\n", r.GlobalDims, fmtPct(r.GlobalAccuracy))
	fmt.Fprintf(tw, "per-cluster local reduction\t<=%d\t%s\n", r.LocalDims, fmtPct(r.LocalAccuracy))
	tw.Flush()
	fmt.Fprintf(w, "cluster sizes %v, per-cluster dims %v\n", r.PerClusterSizes, r.PerClusterDims)
}
