package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/eval"
	"repro/internal/reduction"
)

// QualityResult bundles accuracy-versus-dimensionality curves for one data
// set — the shape of Figures 5, 8, 11 (scaled vs unscaled) and 13, 15
// (eigenvalue vs coherence ordering).
type QualityResult struct {
	Dataset string
	Curves  []eval.Curve
}

// ScalingQuality produces the Figures 5/8/11 comparison: the feature-
// stripped accuracy sweep under eigenvalue ordering, for both unscaled
// (covariance) and scaled (correlation) PCA.
func ScalingQuality(spec DatasetSpec) QualityResult {
	res := QualityResult{Dataset: spec.Data.Name}
	for _, scaling := range []reduction.Scaling{reduction.ScalingNone, reduction.ScalingStudentize} {
		p, err := reduction.Fit(spec.Data.X, reduction.Options{Scaling: scaling})
		if err != nil {
			panic(fmt.Sprintf("experiments: scaling quality fit %s: %v", spec.Data.Name, err))
		}
		label := "unscaled"
		if scaling == reduction.ScalingStudentize {
			label = "scaled"
		}
		res.Curves = append(res.Curves, eval.Sweep(spec.Data, p, p.Order(reduction.ByEigenvalue), label,
			eval.SweepConfig{Dims: spec.SweepDims}))
	}
	return res
}

// OrderingQuality produces the Figures 13/15 comparison on the corrupted
// data sets: eigenvalue ordering versus coherence-probability ordering,
// both on raw scales (where the injected noise owns the top eigenvalues).
func OrderingQuality(spec DatasetSpec) QualityResult {
	p, err := reduction.Fit(spec.Data.X, reduction.Options{ComputeCoherence: true})
	if err != nil {
		panic(fmt.Sprintf("experiments: ordering quality fit %s: %v", spec.Data.Name, err))
	}
	res := QualityResult{Dataset: spec.Data.Name}
	res.Curves = append(res.Curves,
		eval.Sweep(spec.Data, p, p.Order(reduction.ByEigenvalue), "eigenvalue ordering",
			eval.SweepConfig{Dims: spec.SweepDims}),
		eval.Sweep(spec.Data, p, p.Order(reduction.ByCoherence), "coherence ordering",
			eval.SweepConfig{Dims: spec.SweepDims}),
	)
	return res
}

// Curve returns the curve with the given label, or panics — drivers always
// construct both.
func (r QualityResult) Curve(label string) eval.Curve {
	for _, c := range r.Curves {
		if c.Label == label {
			return c
		}
	}
	panic(fmt.Sprintf("experiments: no curve %q in %s result", label, r.Dataset))
}

// Format renders the curves side by side.
func (r QualityResult) Format(w io.Writer) {
	fmt.Fprintf(w, "Prediction accuracy vs dimensions retained: %s\n", r.Dataset)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "dims")
	for _, c := range r.Curves {
		fmt.Fprintf(tw, "\t%s", c.Label)
	}
	fmt.Fprintln(tw)
	for i := range r.Curves[0].Points {
		fmt.Fprintf(tw, "%d", r.Curves[0].Points[i].Dims)
		for _, c := range r.Curves {
			fmt.Fprintf(tw, "\t%s", fmtPct(c.Points[i].Accuracy))
		}
		fmt.Fprintln(tw)
	}
	for _, c := range r.Curves {
		opt := c.Optimal()
		fmt.Fprintf(tw, "optimum[%s]\t%s at %d dims (%.0f%% variance kept)\n",
			c.Label, fmtPct(opt.Accuracy), opt.Dims, 100*opt.EnergyFraction)
	}
	tw.Flush()
}
