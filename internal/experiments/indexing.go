package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"repro/internal/dataset/synthetic"
	"repro/internal/index"
	"repro/internal/knn"
	"repro/internal/linalg"
	"repro/internal/reduction"
)

// ContrastResult quantifies the §1.1 meaningfulness collapse: the relative
// contrast (Dmax−Dmin)/Dmin of nearest-neighbor queries on uniform data as
// dimensionality grows, under several metrics (the fractional metrics of
// reference [1] degrade more slowly).
type ContrastResult struct {
	Dims    []int
	Metrics []string
	// Contrast[i][j] is the mean relative contrast at Dims[i] under
	// Metrics[j].
	Contrast [][]float64
}

// ContrastSweep measures relative contrast over a dimensionality sweep.
func ContrastSweep(cfg Config) ContrastResult {
	c := cfg.withDefaults()
	metrics := []knn.Metric{knn.NewMinkowski(0.5), knn.Manhattan{}, knn.Euclidean{}, knn.Chebyshev{}}
	res := ContrastResult{Dims: []int{2, 5, 10, 20, 50, 100, 200}}
	for _, m := range metrics {
		res.Metrics = append(res.Metrics, m.Name())
	}
	for _, d := range res.Dims {
		ds := synthetic.UniformCube("u", 800, d, c.Seed)
		queries := ds.X.SliceRows([]int{0, 1, 2, 3, 4, 5, 6, 7})
		data := ds.X.SliceRows(rangeInts(8, ds.N()))
		row := make([]float64, len(metrics))
		for j, m := range metrics {
			rep, err := knn.RelativeContrast(data, queries, m)
			if err != nil {
				panic(fmt.Sprintf("experiments: contrast d=%d: %v", d, err))
			}
			row[j] = rep.MeanRelativeContrast
		}
		res.Contrast = append(res.Contrast, row)
	}
	return res
}

func rangeInts(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

// Format renders the contrast sweep.
func (r ContrastResult) Format(w io.Writer) {
	fmt.Fprintln(w, "§1.1: relative contrast (Dmax−Dmin)/Dmin on uniform data")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "dims")
	for _, m := range r.Metrics {
		fmt.Fprintf(tw, "\t%s", m)
	}
	fmt.Fprintln(tw)
	for i, d := range r.Dims {
		fmt.Fprintf(tw, "%d", d)
		for _, v := range r.Contrast[i] {
			fmt.Fprintf(tw, "\t%.3f", v)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// PruningRow reports index pruning effectiveness in one representation.
type PruningRow struct {
	Representation string
	Dims           int
	// ScanFraction per structure: fraction of stored vectors whose exact
	// distance had to be computed, averaged over the query workload.
	KDTree, RTree, VAFile, IDistance float64
}

// PruningResult is the "dimensionality reduction makes indexes practical"
// demonstration: k-NN scan fractions on the full-dimensional Arrhythmia
// analogue versus its aggressively reduced form.
type PruningResult struct {
	Queries int
	Rows    []PruningRow
}

// IndexPruning measures pruning before and after reduction. It uses a
// larger draw from the Arrhythmia-analogue distribution (partition indexes
// only become interesting at database sizes well above the UCI sample).
func IndexPruning(cfg Config) PruningResult {
	c := cfg.withDefaults()
	gen := synthetic.ArrhythmiaLikeConfig(c.Seed)
	gen.N = 6000
	data := synthetic.MustGenerate(gen)
	p, err := reduction.Fit(data.X, reduction.Options{Scaling: reduction.ScalingStudentize})
	if err != nil {
		panic(fmt.Sprintf("experiments: pruning fit: %v", err))
	}
	full := p.TransformAll(data.X) // rotation: same distances, fair comparison
	reduced := p.Transform(data.X, p.TopK(reduction.ByEigenvalue, 10))

	const queries = 25
	res := PruningResult{Queries: queries}
	rng := rand.New(rand.NewSource(c.Seed))
	for _, rep := range []struct {
		name string
		data *linalg.Dense
	}{
		{"full (279 dims, rotated)", full},
		{"reduced (top 10 components)", reduced},
	} {
		kd := index.BuildKDTree(rep.data, 0)
		rt := index.BuildRTree(rep.data, 0)
		va := index.BuildVAFile(rep.data, 6)
		idist := index.BuildIDistance(rep.data, 16, c.Seed)
		var kdStats, rtStats, vaStats, idStats index.Stats
		n := rep.data.Rows()
		for q := 0; q < queries; q++ {
			query := rep.data.Row(rng.Intn(n))
			_, s1 := kd.KNN(query, 3)
			kdStats.Add(s1)
			_, s2 := rt.KNN(query, 3)
			rtStats.Add(s2)
			_, s3 := va.KNN(query, 3)
			vaStats.Add(s3)
			_, s4 := idist.KNN(query, 3)
			idStats.Add(s4)
		}
		total := queries * n
		res.Rows = append(res.Rows, PruningRow{
			Representation: rep.name,
			Dims:           rep.data.Cols(),
			KDTree:         index.ScanFraction(kdStats, total),
			RTree:          index.ScanFraction(rtStats, total),
			VAFile:         index.ScanFraction(vaStats, total),
			IDistance:      index.ScanFraction(idStats, total),
		})
	}
	return res
}

// Format renders the pruning comparison.
func (r PruningResult) Format(w io.Writer) {
	fmt.Fprintf(w, "Index pruning: fraction of vectors scanned per 3-NN query (%d queries)\n", r.Queries)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "representation\tdims\tkd-tree\tr-tree\tva-file\tidistance")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\n", row.Representation, row.Dims,
			fmtPct(row.KDTree), fmtPct(row.RTree), fmtPct(row.VAFile), fmtPct(row.IDistance))
	}
	tw.Flush()
}
