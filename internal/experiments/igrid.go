package experiments

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"repro/internal/dataset/synthetic"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/knn"
)

// IGridRow compares full-dimensional retrieval quality of Euclidean
// distance against the IGrid grid-similarity of reference [3] on one data
// set.
type IGridRow struct {
	Dataset      string
	Dims         int
	EuclideanAcc float64
	IGridAcc     float64
	// CandidateFraction is the mean fraction of the database an IGrid query
	// had to score (points sharing at least one range with the query).
	CandidateFraction float64
}

// IGridContrastRow compares max-normalized nearest/farthest contrast
// ((max−min)/max over a query workload) of IGrid similarity and Euclidean
// distance on uniform data of growing dimensionality — the "reversing the
// dimensionality curse" measurement of reference [3].
type IGridContrastRow struct {
	Dims        int
	IGridSpread float64
	L2Spread    float64
}

// IGridResult is the reference-[3] companion experiment: an alternative
// way of fighting the dimensionality curse that redefines similarity
// instead of reducing dimensionality.
type IGridResult struct {
	Ranges       int
	Rows         []IGridRow
	ContrastRows []IGridContrastRow
}

// IGridComparison measures feature-stripped accuracy under both similarity
// notions in full dimensionality, on the clean analogues and on Noisy A.
func IGridComparison(cfg Config) IGridResult {
	c := cfg.withDefaults()
	specs := append(AllClean(c.Seed), NoisyA(c.Seed))
	const ranges = 8
	res := IGridResult{Ranges: ranges}
	for _, spec := range specs {
		ds := spec.Data.Standardized()
		row := IGridRow{Dataset: spec.Data.Name, Dims: ds.Dims()}
		row.EuclideanAcc = eval.PredictionAccuracy(ds.X, ds.Labels, eval.PaperK, knn.Euclidean{})

		g := index.BuildIGrid(ds.X, ranges, 2)
		matches, total := 0, 0
		var stats index.Stats
		for i := 0; i < ds.N(); i++ {
			got, st := g.KNN(ds.X.Row(i), eval.PaperK+1) // self lands first
			stats.Add(st)
			taken := 0
			for _, nb := range got {
				if nb.Index == i {
					continue
				}
				if taken == eval.PaperK {
					break
				}
				taken++
				total++
				if ds.Labels[nb.Index] == ds.Labels[i] {
					matches++
				}
			}
		}
		row.IGridAcc = float64(matches) / float64(total)
		row.CandidateFraction = float64(stats.PointsScanned) / float64(ds.N()*ds.N())
		res.Rows = append(res.Rows, row)
	}

	// Contrast preservation on uniform data.
	for _, d := range []int{10, 50, 200} {
		ds := synthetic.UniformCube("uniform", 800, d, c.Seed)
		g := index.BuildIGrid(ds.X, ranges, 2)
		const queries = 8
		igMean, l2Mean := 0.0, 0.0
		l2 := knn.Euclidean{}
		for q := 0; q < queries; q++ {
			smin, smax := math.Inf(1), 0.0
			dmin, dmax := math.Inf(1), 0.0
			qrow := ds.X.Row(q)
			for i := queries; i < ds.N(); i++ {
				s := g.Similarity(qrow, i)
				if s < smin {
					smin = s
				}
				if s > smax {
					smax = s
				}
				dd := l2.Distance(qrow, ds.X.RawRow(i))
				if dd < dmin {
					dmin = dd
				}
				if dd > dmax {
					dmax = dd
				}
			}
			igMean += (smax - smin) / smax
			l2Mean += (dmax - dmin) / dmax
		}
		res.ContrastRows = append(res.ContrastRows, IGridContrastRow{
			Dims:        d,
			IGridSpread: igMean / queries,
			L2Spread:    l2Mean / queries,
		})
	}
	return res
}

// Format renders the comparison.
func (r IGridResult) Format(w io.Writer) {
	fmt.Fprintf(w, "Reference [3] companion: IGrid similarity vs Euclidean (full dimensionality, %d ranges/dim)\n", r.Ranges)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tdims\tL2 accuracy\tigrid accuracy\tcandidates/query")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\n", row.Dataset, row.Dims,
			fmtPct(row.EuclideanAcc), fmtPct(row.IGridAcc), fmtPct(row.CandidateFraction))
	}
	tw.Flush()
	fmt.Fprintln(w, "contrast preservation on uniform data ((max-min)/max):")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dims\tigrid spread\tL2 spread")
	for _, row := range r.ContrastRows {
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\n", row.Dims, row.IGridSpread, row.L2Spread)
	}
	tw.Flush()
}
