package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/reduction"
	"repro/internal/stats"
)

// ScatterPoint pairs one eigenvector's eigenvalue magnitude with its
// data-set coherence probability.
type ScatterPoint struct {
	Eigenvalue float64
	Coherence  float64
}

// ScatterResult is the data behind the paper's eigenvalue-versus-coherence
// scatter plots (Figures 3, 6, 9, 12 and 14). Points are in descending
// eigenvalue order.
type ScatterResult struct {
	Dataset string
	Scaling reduction.Scaling
	Points  []ScatterPoint
	// Correlation is the Pearson correlation between eigenvalue magnitude
	// and coherence probability. High values are the "good matching"
	// regime (Figures 3/6/9); low or negative values the "poor matching"
	// regime of the corrupted sets (Figures 12/14).
	Correlation float64
	// SpearmanCorrelation is the rank-based analogue, robust to the skew of
	// eigenvalue magnitudes.
	SpearmanCorrelation float64
}

// Scatter computes the eigenvalue/coherence scatter for a data set.
// The clean figures use studentized data (the paper's "(Normalized)" scatter
// titles); the corrupted figures use raw scales, where the injected noise
// dominates the spectrum.
func Scatter(spec DatasetSpec, scaling reduction.Scaling) ScatterResult {
	p, err := reduction.Fit(spec.Data.X, reduction.Options{Scaling: scaling, ComputeCoherence: true})
	if err != nil {
		panic(fmt.Sprintf("experiments: scatter fit %s: %v", spec.Data.Name, err))
	}
	res := ScatterResult{Dataset: spec.Data.Name, Scaling: scaling}
	for i := range p.Eigenvalues {
		res.Points = append(res.Points, ScatterPoint{Eigenvalue: p.Eigenvalues[i], Coherence: p.Coherence[i]})
	}
	res.Correlation = stats.Pearson(p.Eigenvalues, p.Coherence)
	res.SpearmanCorrelation = stats.Spearman(p.Eigenvalues, p.Coherence)
	return res
}

// Format renders the scatter as a table of (eigenvalue, coherence) pairs.
// Large bases are elided to the head and tail, which is where the paper's
// plots carry their information.
func (r ScatterResult) Format(w io.Writer) {
	fmt.Fprintf(w, "Eigenvalue vs coherence scatter: %s (scaling=%s)\n", r.Dataset, r.Scaling)
	fmt.Fprintf(w, "pearson=%.3f spearman=%.3f over %d eigenvectors\n", r.Correlation, r.SpearmanCorrelation, len(r.Points))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\teigenvalue\tcoherence")
	const headTail = 12
	for i, p := range r.Points {
		if len(r.Points) > 2*headTail && i == headTail {
			fmt.Fprintf(tw, "...\t(%d elided)\t\n", len(r.Points)-2*headTail)
		}
		if len(r.Points) > 2*headTail && i >= headTail && i < len(r.Points)-headTail {
			continue
		}
		fmt.Fprintf(tw, "%d\t%.4g\t%.4f\n", i+1, p.Eigenvalue, p.Coherence)
	}
	tw.Flush()
}

// CoherenceDistributionResult is the data behind Figures 4, 7 and 10: the
// coherence probability of every eigenvector, indexed in increasing
// eigenvalue order, for unscaled and scaled (studentized) data. The paper
// uses these to show that scaling raises coherence probabilities across the
// board (§2.2).
type CoherenceDistributionResult struct {
	Dataset string
	// UnscaledCoherence[i] and ScaledCoherence[i] are the coherence
	// probabilities of the eigenvector with the i-th smallest eigenvalue
	// under each normalization.
	UnscaledCoherence []float64
	ScaledCoherence   []float64
}

// CoherenceDistribution computes per-eigenvector coherence under both
// normalizations.
func CoherenceDistribution(spec DatasetSpec) CoherenceDistributionResult {
	res := CoherenceDistributionResult{Dataset: spec.Data.Name}
	for _, scaling := range []reduction.Scaling{reduction.ScalingNone, reduction.ScalingStudentize} {
		p, err := reduction.Fit(spec.Data.X, reduction.Options{Scaling: scaling, ComputeCoherence: true})
		if err != nil {
			panic(fmt.Sprintf("experiments: coherence distribution fit %s: %v", spec.Data.Name, err))
		}
		// Components are stored in descending eigenvalue order; the paper's
		// x-axis is increasing order.
		d := len(p.Coherence)
		vals := make([]float64, d)
		for i := 0; i < d; i++ {
			vals[i] = p.Coherence[d-1-i]
		}
		if scaling == reduction.ScalingNone {
			res.UnscaledCoherence = vals
		} else {
			res.ScaledCoherence = vals
		}
	}
	return res
}

// MeanLift returns the average coherence increase from scaling.
func (r CoherenceDistributionResult) MeanLift() float64 {
	return stats.Mean(r.ScaledCoherence) - stats.Mean(r.UnscaledCoherence)
}

// Format renders both coherence series.
func (r CoherenceDistributionResult) Format(w io.Writer) {
	fmt.Fprintf(w, "Coherence probability by eigenvector (increasing eigenvalue order): %s\n", r.Dataset)
	fmt.Fprintf(w, "mean unscaled=%.3f scaled=%.3f lift=%+.3f\n",
		stats.Mean(r.UnscaledCoherence), stats.Mean(r.ScaledCoherence), r.MeanLift())
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "index\tunscaled\tscaled")
	step := 1
	if len(r.ScaledCoherence) > 24 {
		step = len(r.ScaledCoherence) / 24
	}
	for i := 0; i < len(r.ScaledCoherence); i += step {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\n", i+1, r.UnscaledCoherence[i], r.ScaledCoherence[i])
	}
	tw.Flush()
}
