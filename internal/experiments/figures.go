package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/stats"
)

// Figure1Result reproduces the paper's Figure 1 thought experiment: two
// candidate directions for the same point, where direction A has the larger
// absolute coordinate (hence the larger eigenvalue contribution) but its
// per-dimension contributions are widely spread, while direction B's smaller
// coordinate comes from tightly agreeing contributions — so B is the more
// coherent (more meaningful) direction despite the smaller eigenvalue.
type Figure1Result struct {
	Dims int
	// CoordinateA/B are the projections |X·e| of the constructed point on
	// each direction (A larger).
	CoordinateA, CoordinateB float64
	// FactorA/B are the coherence factors (B larger).
	FactorA, FactorB float64
	// ProbabilityA/B are the coherence probabilities (B larger).
	ProbabilityA, ProbabilityB float64
	// HistA/B are the contribution distributions the figure draws.
	HistA, HistB *stats.Histogram
}

// Figure1 constructs the two-direction example deterministically.
func Figure1() Figure1Result {
	const d = 200
	//drlint:ignore globalrand Figure 1 is a fixed construction from the paper; the seed is part of the figure's definition, not experiment configuration
	rng := rand.New(rand.NewSource(1))
	e := make([]float64, d)
	for j := range e {
		e[j] = 1 / math.Sqrt(float64(d))
	}
	// Contributions c_j = x_j·e_j: direction A has mean 0.05 with sd 0.50
	// (large deviation justified by large spread); direction B mean 0.03
	// with sd 0.04 (smaller deviation, but far beyond its noise level).
	xa := make([]float64, d)
	xb := make([]float64, d)
	for j := 0; j < d; j++ {
		ca := 0.05 + 0.50*rng.NormFloat64()
		cb := 0.03 + 0.04*rng.NormFloat64()
		xa[j] = ca / e[j]
		xb[j] = cb / e[j]
	}
	res := Figure1Result{Dims: d}
	res.CoordinateA = math.Abs(linalg.Dot(xa, e))
	res.CoordinateB = math.Abs(linalg.Dot(xb, e))
	res.FactorA = core.CoherenceFactor(xa, e)
	res.FactorB = core.CoherenceFactor(xb, e)
	res.ProbabilityA = core.CoherenceProbability(xa, e)
	res.ProbabilityB = core.CoherenceProbability(xb, e)
	res.HistA = core.ContributionHistogram(xa, e, 21)
	res.HistB = core.ContributionHistogram(xb, e, 21)
	return res
}

// Format renders the Figure 1 comparison and ASCII histograms.
func (r Figure1Result) Format(w io.Writer) {
	fmt.Fprintf(w, "Figure 1: contribution distributions for two directions (d=%d)\n", r.Dims)
	fmt.Fprintf(w, "direction A: |X·e|=%.3f coherence factor=%.2f probability=%.4f\n",
		r.CoordinateA, r.FactorA, r.ProbabilityA)
	fmt.Fprintf(w, "direction B: |X·e|=%.3f coherence factor=%.2f probability=%.4f\n",
		r.CoordinateB, r.FactorB, r.ProbabilityB)
	fmt.Fprintf(w, "A deviates more (%0.1fx) yet B is the more coherent direction\n",
		r.CoordinateA/r.CoordinateB)
	fmt.Fprintln(w, "contributions of original dimensions (A wide, B tight):")
	writeHistogram(w, "A", r.HistA)
	writeHistogram(w, "B", r.HistB)
}

func writeHistogram(w io.Writer, label string, h *stats.Histogram) {
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	for i, c := range h.Counts {
		bar := ""
		if max > 0 {
			for n := 0; n < 40*c/max; n++ {
				bar += "#"
			}
		}
		fmt.Fprintf(w, "  %s % 8.3f |%s %d\n", label, h.BinCenter(i), bar, c)
	}
}

// Figure2Result reproduces Figure 2: an orthogonal basis stops being
// orthogonal once the axes are rescaled, which is why the choice of data
// scaling changes the PCA basis (§2.2).
type Figure2Result struct {
	// V1, V2 are the original orthogonal directions.
	V1, V2 []float64
	// ScaledV1, ScaledV2 are their images under the anisotropic scaling.
	ScaledV1, ScaledV2 []float64
	// OriginalDot is V1·V2 (zero) and ScaledDot the post-scaling dot
	// product (nonzero).
	OriginalDot, ScaledDot float64
	// AngleDegrees is the post-scaling angle between the vectors.
	AngleDegrees float64
}

// Figure2 applies the scaling s = (3, 1/3) to the orthogonal pair
// (1,1)/√2 and (1,−1)/√2.
func Figure2() Figure2Result {
	v1 := []float64{1 / math.Sqrt2, 1 / math.Sqrt2}
	v2 := []float64{1 / math.Sqrt2, -1 / math.Sqrt2}
	scale := []float64{3, 1.0 / 3.0}
	s1 := []float64{v1[0] * scale[0], v1[1] * scale[1]}
	s2 := []float64{v2[0] * scale[0], v2[1] * scale[1]}
	dot := linalg.Dot(s1, s2)
	cos := dot / (linalg.Norm2(s1) * linalg.Norm2(s2))
	return Figure2Result{
		V1: v1, V2: v2, ScaledV1: s1, ScaledV2: s2,
		OriginalDot: linalg.Dot(v1, v2), ScaledDot: dot,
		AngleDegrees: math.Acos(cos) * 180 / math.Pi,
	}
}

// Format renders the Figure 2 demonstration.
func (r Figure2Result) Format(w io.Writer) {
	fmt.Fprintln(w, "Figure 2: scaling destroys orthogonality")
	fmt.Fprintf(w, "v1=%v v2=%v  v1·v2=%.3g\n", r.V1, r.V2, r.OriginalDot)
	fmt.Fprintf(w, "after scaling by (3, 1/3): s1=%v s2=%v  s1·s2=%.3f (angle %.1f°)\n",
		r.ScaledV1, r.ScaledV2, r.ScaledDot, r.AngleDegrees)
}
