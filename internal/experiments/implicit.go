package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/dataset"
	"repro/internal/dataset/synthetic"
	"repro/internal/fractal"
	"repro/internal/reduction"
	"repro/internal/stats"
)

// ImplicitDimRow relates one data set's measured implicit dimensionality to
// its coherence profile.
type ImplicitDimRow struct {
	Dataset string
	// AmbientDims is the raw dimensionality d.
	AmbientDims int
	// D2 is the correlation fractal dimension (reference [15]).
	D2 float64
	// ConceptCount is the number of eigenvectors with clearly elevated
	// coherence (above the midpoint between the profile's min and max).
	ConceptCount int
	// CoherenceSpread is max−min coherence probability over eigenvectors;
	// §3: a flat profile (small spread) marks data unsuited to reduction.
	CoherenceSpread float64
}

// ImplicitDimResult is the §3 companion experiment: low implicit
// dimensionality coincides with a peaked coherence profile (few concepts,
// reducible); implicit dimensionality near ambient coincides with a flat
// profile (irreducible).
type ImplicitDimResult struct {
	Rows []ImplicitDimRow
}

// ImplicitDimensionality measures D₂ and the coherence profile on the
// clean analogues and on uniform cubes.
func ImplicitDimensionality(cfg Config) ImplicitDimResult {
	c := cfg.withDefaults()
	var res ImplicitDimResult
	sets := []*dataset.Dataset{
		Musk(c.Seed).Data.Standardized(),
		Ionosphere(c.Seed).Data.Standardized(),
		Arrhythmia(c.Seed).Data.Standardized(),
		synthetic.UniformCube("uniform-10", 800, 10, c.Seed),
		synthetic.UniformCube("uniform-30", 800, 30, c.Seed),
	}
	for _, ds := range sets {
		est, err := fractal.CorrelationDimension(ds.X, fractal.Options{Seed: c.Seed})
		if err != nil {
			panic(fmt.Sprintf("experiments: implicit dim of %s: %v", ds.Name, err))
		}
		p, err := reduction.Fit(ds.X, reduction.Options{ComputeCoherence: true})
		if err != nil {
			panic(fmt.Sprintf("experiments: implicit fit of %s: %v", ds.Name, err))
		}
		min, max := stats.MinMax(p.Coherence)
		mid := (min + max) / 2
		concepts := 0
		for _, v := range p.Coherence {
			if v > mid {
				concepts++
			}
		}
		res.Rows = append(res.Rows, ImplicitDimRow{
			Dataset:         ds.Name,
			AmbientDims:     ds.Dims(),
			D2:              est.D2,
			ConceptCount:    concepts,
			CoherenceSpread: max - min,
		})
	}
	return res
}

// Format renders the table.
func (r ImplicitDimResult) Format(w io.Writer) {
	fmt.Fprintln(w, "§3 companion: implicit dimensionality (correlation dimension D2) vs coherence profile")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tambient d\tD2\televated-coherence vectors\tcoherence spread")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%d\t%.3f\n",
			row.Dataset, row.AmbientDims, row.D2, row.ConceptCount, row.CoherenceSpread)
	}
	tw.Flush()
}
