package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/eval"
	"repro/internal/knn"
	"repro/internal/reduction"
)

// SelectionAblationRow compares component-selection strategies on one data
// set at their own chosen dimensionalities.
type SelectionAblationRow struct {
	Dataset  string
	Strategy string
	Dims     int
	Accuracy float64
}

// SelectionAblationResult is the DESIGN.md selection-strategy ablation:
// eigenvalue top-k, coherence top-k, energy target and eigenvalue threshold,
// on a clean and a corrupted data set. It quantifies the paper's conclusion
// that the strategies agree on clean data and diverge sharply on noisy data.
type SelectionAblationResult struct {
	Rows []SelectionAblationRow
}

// SelectionAblation runs every strategy on the Ionosphere analogue (clean,
// studentized) and on Noisy A (raw scales).
func SelectionAblation(cfg Config) SelectionAblationResult {
	c := cfg.withDefaults()
	var res SelectionAblationResult
	for _, tc := range []struct {
		spec    DatasetSpec
		scaling reduction.Scaling
	}{
		{Ionosphere(c.Seed), reduction.ScalingStudentize},
		{NoisyA(c.Seed), reduction.ScalingNone},
	} {
		p, err := reduction.Fit(tc.spec.Data.X, reduction.Options{Scaling: tc.scaling, ComputeCoherence: true})
		if err != nil {
			panic(fmt.Sprintf("experiments: selection ablation fit: %v", err))
		}
		// Pick k via the scatter gap on each criterion's own values.
		kEig := reduction.GapCutoff(p.Eigenvalues, 2, tc.spec.Data.Dims()/2)
		cohDesc := make([]float64, len(p.Coherence))
		for i, idx := range p.Order(reduction.ByCoherence) {
			cohDesc[i] = p.Coherence[idx]
		}
		kCoh := reduction.GapCutoff(cohDesc, 2, tc.spec.Data.Dims()/2)
		strategies := []struct {
			name       string
			components []int
		}{
			{"eigenvalue top-k (gap)", p.TopK(reduction.ByEigenvalue, kEig)},
			{"coherence top-k (gap)", p.TopK(reduction.ByCoherence, kCoh)},
			{"energy 90%", p.EnergyTarget(0.90)},
			{fmt.Sprintf("threshold %.0f%%", 100*c.ThresholdFrac), p.ThresholdEigenvalue(c.ThresholdFrac)},
		}
		for _, s := range strategies {
			reduced := p.Transform(tc.spec.Data.X, s.components)
			res.Rows = append(res.Rows, SelectionAblationRow{
				Dataset:  tc.spec.Data.Name,
				Strategy: s.name,
				Dims:     len(s.components),
				Accuracy: eval.PredictionAccuracy(reduced, tc.spec.Data.Labels, eval.PaperK, knn.Euclidean{}),
			})
		}
	}
	return res
}

// Format renders the ablation.
func (r SelectionAblationResult) Format(w io.Writer) {
	fmt.Fprintln(w, "Ablation: component-selection strategies")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tstrategy\tdims\taccuracy")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\n", row.Dataset, row.Strategy, row.Dims, fmtPct(row.Accuracy))
	}
	tw.Flush()
}

// MetricAblationRow reports feature-stripped accuracy under one metric in
// one representation.
type MetricAblationRow struct {
	Metric  string
	FullDim float64
	Reduced float64
}

// MetricAblationResult connects to the paper's reference [1]: how the
// distance metric interacts with reduction. Accuracy is measured on the
// Ionosphere analogue at full dimensionality and at the aggressive optimum.
type MetricAblationResult struct {
	Dataset     string
	ReducedDims int
	Rows        []MetricAblationRow
}

// MetricAblation measures L0.5/L1/L2/L∞ accuracy before and after reduction.
func MetricAblation(cfg Config) MetricAblationResult {
	c := cfg.withDefaults()
	spec := Ionosphere(c.Seed)
	p, err := reduction.Fit(spec.Data.X, reduction.Options{Scaling: reduction.ScalingStudentize})
	if err != nil {
		panic(fmt.Sprintf("experiments: metric ablation fit: %v", err))
	}
	full := p.TransformAll(spec.Data.X)
	const reducedDims = 8
	reduced := p.Transform(spec.Data.X, p.TopK(reduction.ByEigenvalue, reducedDims))
	res := MetricAblationResult{Dataset: spec.Data.Name, ReducedDims: reducedDims}
	for _, m := range []knn.Metric{knn.NewMinkowski(0.5), knn.Manhattan{}, knn.Euclidean{}, knn.Chebyshev{}} {
		res.Rows = append(res.Rows, MetricAblationRow{
			Metric:  m.Name(),
			FullDim: eval.PredictionAccuracy(full, spec.Data.Labels, eval.PaperK, m),
			Reduced: eval.PredictionAccuracy(reduced, spec.Data.Labels, eval.PaperK, m),
		})
	}
	return res
}

// Format renders the metric ablation.
func (r MetricAblationResult) Format(w io.Writer) {
	fmt.Fprintf(w, "Ablation: distance metrics on %s (reduced = top %d components)\n", r.Dataset, r.ReducedDims)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\tfull-dim accuracy\treduced accuracy")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", row.Metric, fmtPct(row.FullDim), fmtPct(row.Reduced))
	}
	tw.Flush()
}

// ScalingAblationRow reports the optimum of the scaled and unscaled curves
// for one data set.
type ScalingAblationRow struct {
	Dataset                        string
	UnscaledOptimum, ScaledOptimum float64
	UnscaledDims, ScaledDims       int
	// CoherenceLift is the mean increase in per-eigenvector coherence
	// probability from studentizing (§2.2's predicted effect).
	CoherenceLift float64
}

// ScalingAblationResult quantifies §2.2 across all three clean analogues.
type ScalingAblationResult struct {
	Rows []ScalingAblationRow
}

// ScalingAblation compares covariance-PCA and correlation-PCA end to end.
func ScalingAblation(cfg Config) ScalingAblationResult {
	c := cfg.withDefaults()
	var res ScalingAblationResult
	for _, spec := range AllClean(c.Seed) {
		q := ScalingQuality(spec)
		dist := CoherenceDistribution(spec)
		un := q.Curve("unscaled").Optimal()
		sc := q.Curve("scaled").Optimal()
		res.Rows = append(res.Rows, ScalingAblationRow{
			Dataset:         spec.Data.Name,
			UnscaledOptimum: un.Accuracy, UnscaledDims: un.Dims,
			ScaledOptimum: sc.Accuracy, ScaledDims: sc.Dims,
			CoherenceLift: dist.MeanLift(),
		})
	}
	return res
}

// Format renders the scaling ablation.
func (r ScalingAblationResult) Format(w io.Writer) {
	fmt.Fprintln(w, "Ablation: covariance vs correlation (studentized) PCA")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tunscaled opt\t@dims\tscaled opt\t@dims\tcoherence lift")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%d\t%+.3f\n", row.Dataset,
			fmtPct(row.UnscaledOptimum), row.UnscaledDims,
			fmtPct(row.ScaledOptimum), row.ScaledDims, row.CoherenceLift)
	}
	tw.Flush()
}
