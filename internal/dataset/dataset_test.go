package dataset

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/stats"
)

func smallSet(t *testing.T) *Dataset {
	t.Helper()
	x := linalg.FromRows([][]float64{
		{1, 10, 5},
		{2, 10, 6},
		{3, 10, 7},
		{4, 10, 8},
	})
	return MustNew("small", x, []int{0, 1, 0, 1})
}

func TestNewValidation(t *testing.T) {
	x := linalg.NewDense(2, 2)
	if _, err := New("bad", x, []int{0}); err == nil {
		t.Fatalf("expected label-count error")
	}
	if _, err := New("bad", x, []int{0, -1}); err == nil {
		t.Fatalf("expected negative-label error")
	}
	if _, err := New("ok", x, []int{0, 1}); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestBasicAccessors(t *testing.T) {
	d := smallSet(t)
	if d.N() != 4 || d.Dims() != 3 {
		t.Fatalf("N/Dims = %d/%d", d.N(), d.Dims())
	}
	if d.NumClasses() != 2 {
		t.Fatalf("NumClasses = %d", d.NumClasses())
	}
	counts := d.ClassCounts()
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("ClassCounts = %v", counts)
	}
	p := d.Point(1)
	if !linalg.VecEqual(p, []float64{2, 10, 6}, 0) {
		t.Fatalf("Point(1) = %v", p)
	}
	p[0] = 99
	if d.X.At(1, 0) != 2 {
		t.Fatalf("Point must copy")
	}
	if s := d.String(); s == "" {
		t.Fatalf("empty String")
	}
}

func TestCloneIndependent(t *testing.T) {
	d := smallSet(t)
	c := d.Clone()
	c.X.Set(0, 0, -1)
	c.Labels[0] = 1
	if d.X.At(0, 0) != 1 || d.Labels[0] != 0 {
		t.Fatalf("Clone shares state")
	}
}

func TestWithMatrix(t *testing.T) {
	d := smallSet(t)
	m := linalg.NewDense(4, 2)
	r := d.WithMatrix("reduced", m)
	if r.Dims() != 2 || r.Labels[3] != 1 {
		t.Fatalf("WithMatrix wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("row mismatch must panic")
		}
	}()
	d.WithMatrix("bad", linalg.NewDense(3, 2))
}

func TestSubsetAndShuffle(t *testing.T) {
	d := smallSet(t)
	s := d.Subset([]int{3, 0})
	if s.N() != 2 || s.Labels[0] != 1 || s.Labels[1] != 0 {
		t.Fatalf("Subset labels wrong: %v", s.Labels)
	}
	if s.X.At(0, 0) != 4 {
		t.Fatalf("Subset rows wrong")
	}
	sh := d.Shuffled(rand.New(rand.NewSource(1)))
	if sh.N() != d.N() {
		t.Fatalf("Shuffled size changed")
	}
	// The multiset of labels is preserved.
	c1, c2 := d.ClassCounts(), sh.ClassCounts()
	if c1[0] != c2[0] || c1[1] != c2[1] {
		t.Fatalf("Shuffled changed class counts")
	}
}

func TestSplit(t *testing.T) {
	d := smallSet(t)
	ref, q := d.Split(2)
	if ref.N()+q.N() != d.N() {
		t.Fatalf("Split sizes %d+%d != %d", ref.N(), q.N(), d.N())
	}
	if q.N() != 2 { // rows 0 and 2
		t.Fatalf("query size = %d", q.N())
	}
	if q.X.At(0, 0) != 1 || q.X.At(1, 0) != 3 {
		t.Fatalf("query rows wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Split(1) must panic")
		}
	}()
	d.Split(1)
}

func TestDropConstantColumns(t *testing.T) {
	d := smallSet(t) // column 1 is constant (10)
	reduced, keep := d.DropConstantColumns(1e-12)
	if reduced.Dims() != 2 {
		t.Fatalf("Dims after drop = %d", reduced.Dims())
	}
	if len(keep) != 2 || keep[0] != 0 || keep[1] != 2 {
		t.Fatalf("keep = %v", keep)
	}
	// No constant columns: same object back, identity column map.
	x := linalg.FromRows([][]float64{{1, 2}, {3, 4}})
	d2 := MustNew("v", x, []int{0, 1})
	same, keep2 := d2.DropConstantColumns(1e-12)
	if same != d2 {
		t.Fatalf("expected identical dataset when nothing dropped")
	}
	if len(keep2) != 2 {
		t.Fatalf("keep2 = %v", keep2)
	}
}

func TestStandardizedAndCentered(t *testing.T) {
	d := smallSet(t)
	s := d.Standardized()
	vars := stats.ColumnVariances(s.X)
	if math.Abs(vars[0]-1) > 1e-12 || math.Abs(vars[2]-1) > 1e-12 {
		t.Fatalf("standardized variances = %v", vars)
	}
	means := stats.ColumnMeans(s.X)
	for _, m := range means {
		if math.Abs(m) > 1e-12 {
			t.Fatalf("standardized means = %v", means)
		}
	}
	c := d.Centered()
	cm := stats.ColumnMeans(c.X)
	for _, m := range cm {
		if math.Abs(m) > 1e-12 {
			t.Fatalf("centered means = %v", cm)
		}
	}
	// Centered keeps original scales.
	cv := stats.ColumnVariances(c.X)
	ov := stats.ColumnVariances(d.X)
	if !linalg.VecEqual(cv, ov, 1e-12) {
		t.Fatalf("Centered changed variances")
	}
	// Originals untouched.
	if d.X.At(0, 0) != 1 {
		t.Fatalf("Standardized/Centered mutated the original")
	}
}

func TestValidate(t *testing.T) {
	d := smallSet(t)
	if err := d.Validate(); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	bad := d.Clone()
	bad.X.Set(0, 0, math.NaN())
	if err := bad.Validate(); err == nil {
		t.Fatalf("NaN accepted")
	}
	bad2 := d.Clone()
	bad2.FeatureNames = []string{"only-one"}
	if err := bad2.Validate(); err == nil {
		t.Fatalf("feature-name mismatch accepted")
	}
	bad3 := d.Clone()
	bad3.ClassNames = []string{"a"}
	if err := bad3.Validate(); err == nil {
		t.Fatalf("class-name shortage accepted")
	}
}
