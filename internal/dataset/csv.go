package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/linalg"
)

// CSVOptions control CSV parsing.
type CSVOptions struct {
	// HasHeader indicates the first row holds column names.
	HasHeader bool
	// LabelColumn is the index of the class column; -1 means the last
	// column. The label column may hold integers or arbitrary strings
	// (strings are interned to class indices in order of first appearance).
	LabelColumn int
	// Comma is the field separator; 0 means ','.
	Comma rune
}

// ReadCSV parses a labelled data set from CSV. Every column except the label
// column must be numeric.
func ReadCSV(r io.Reader, name string, opts CSVOptions) (*Dataset, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: empty csv")
	}
	var header []string
	if opts.HasHeader {
		header = records[0]
		records = records[1:]
		if len(records) == 0 {
			return nil, fmt.Errorf("dataset: csv has only a header")
		}
	}
	width := len(records[0])
	if width < 2 {
		return nil, fmt.Errorf("dataset: csv needs at least 2 columns (features + label), got %d", width)
	}
	labelCol := opts.LabelColumn
	if labelCol < 0 {
		labelCol = width - 1
	}
	if labelCol >= width {
		return nil, fmt.Errorf("dataset: label column %d out of range for width %d", labelCol, width)
	}

	x := linalg.NewDense(len(records), width-1)
	labels := make([]int, len(records))
	classIndex := map[string]int{}
	var classNames []string

	for i, rec := range records {
		if len(rec) != width {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", i+1, len(rec), width)
		}
		col := 0
		for j, field := range rec {
			if j == labelCol {
				idx, ok := classIndex[field]
				if !ok {
					idx = len(classNames)
					classIndex[field] = idx
					classNames = append(classNames, field)
				}
				labels[i] = idx
				continue
			}
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d column %d: %w", i+1, j+1, err)
			}
			x.Set(i, col, v)
			col++
		}
	}

	ds, err := New(name, x, labels)
	if err != nil {
		return nil, err
	}
	ds.ClassNames = classNames
	if header != nil {
		feats := make([]string, 0, width-1)
		for j, h := range header {
			if j != labelCol {
				feats = append(feats, h)
			}
		}
		ds.FeatureNames = feats
	}
	return ds, nil
}

// WriteCSV writes the data set with features first and the class label (or
// class name when available) as the final column. A header row is written
// when the data set has feature names.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	width := d.Dims() + 1
	if d.FeatureNames != nil {
		header := append(append([]string{}, d.FeatureNames...), "class")
		if err := cw.Write(header); err != nil {
			return err
		}
	}
	rec := make([]string, width)
	for i := 0; i < d.N(); i++ {
		row := d.X.RawRow(i)
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if d.ClassNames != nil && d.Labels[i] < len(d.ClassNames) {
			rec[width-1] = d.ClassNames[d.Labels[i]]
		} else {
			rec[width-1] = strconv.Itoa(d.Labels[i])
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
