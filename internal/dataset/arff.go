package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/linalg"
)

// ReadARFF parses the Weka/UCI ARFF format: @relation, a list of @attribute
// declarations, then @data with comma-separated rows. Numeric ("numeric",
// "real", "integer") attributes become features; the final nominal attribute
// (declared as {a,b,...}) is taken as the class. '%' starts a comment and
// '?' (missing value) is rejected with a clear error — the paper's pipeline
// assumes complete data.
func ReadARFF(r io.Reader, fallbackName string) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	name := fallbackName
	type attr struct {
		name    string
		nominal []string // nil for numeric
	}
	var attrs []attr
	inData := false
	var rows [][]string

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if !inData {
			lower := strings.ToLower(line)
			switch {
			case strings.HasPrefix(lower, "@relation"):
				fields := strings.Fields(line)
				if len(fields) > 1 {
					name = strings.Trim(fields[1], `'"`)
				}
			case strings.HasPrefix(lower, "@attribute"):
				a, err := parseAttribute(line)
				if err != nil {
					return nil, err
				}
				attrs = append(attrs, a)
			case strings.HasPrefix(lower, "@data"):
				inData = true
			default:
				return nil, fmt.Errorf("dataset: unexpected ARFF header line: %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "{") {
			// Weka's sparse data format ({index value, ...}) stores only the
			// nonzero entries; the paper's workloads are dense throughout, so
			// reject it explicitly rather than mis-parse it as a short row.
			return nil, fmt.Errorf("dataset: arff sparse data row %q is not supported; use dense rows", line)
		}
		rows = append(rows, strings.Split(line, ","))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading arff: %w", err)
	}
	if len(attrs) < 2 {
		return nil, fmt.Errorf("dataset: arff needs at least 2 attributes, got %d", len(attrs))
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: arff has no data rows")
	}

	// The class attribute is the last nominal one; conventionally the final
	// attribute.
	classIdx := -1
	for i := len(attrs) - 1; i >= 0; i-- {
		if attrs[i].nominal != nil {
			classIdx = i
			break
		}
	}
	if classIdx == -1 {
		return nil, fmt.Errorf("dataset: arff has no nominal class attribute")
	}
	classValues := map[string]int{}
	for i, v := range attrs[classIdx].nominal {
		classValues[v] = i
	}

	x := linalg.NewDense(len(rows), len(attrs)-1)
	labels := make([]int, len(rows))
	for i, rec := range rows {
		if len(rec) != len(attrs) {
			return nil, fmt.Errorf("dataset: arff row %d has %d values, want %d", i+1, len(rec), len(attrs))
		}
		col := 0
		for j, raw := range rec {
			field := strings.TrimSpace(raw)
			if field == "?" {
				return nil, fmt.Errorf("dataset: arff row %d has a missing value; impute before loading", i+1)
			}
			if j == classIdx {
				idx, ok := classValues[strings.Trim(field, `'"`)]
				if !ok {
					return nil, fmt.Errorf("dataset: arff row %d: unknown class %q", i+1, field)
				}
				labels[i] = idx
				continue
			}
			if attrs[j].nominal != nil {
				// Non-class nominal attributes are encoded by value index —
				// a standard integer encoding.
				idx, ok := 0, false
				for k, v := range attrs[j].nominal {
					if v == strings.Trim(field, `'"`) {
						idx, ok = k, true
						break
					}
				}
				if !ok {
					return nil, fmt.Errorf("dataset: arff row %d: unknown nominal value %q for %s", i+1, field, attrs[j].name)
				}
				x.Set(i, col, float64(idx))
				col++
				continue
			}
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: arff row %d attribute %s: %w", i+1, attrs[j].name, err)
			}
			x.Set(i, col, v)
			col++
		}
	}

	ds, err := New(name, x, labels)
	if err != nil {
		return nil, err
	}
	ds.ClassNames = attrs[classIdx].nominal
	feats := make([]string, 0, len(attrs)-1)
	for j, a := range attrs {
		if j != classIdx {
			feats = append(feats, a.name)
		}
	}
	ds.FeatureNames = feats
	return ds, nil
}

func parseAttribute(line string) (struct {
	name    string
	nominal []string
}, error) {
	var out struct {
		name    string
		nominal []string
	}
	rest := strings.TrimSpace(line[len("@attribute"):])
	if rest == "" {
		return out, fmt.Errorf("dataset: malformed @attribute line: %q", line)
	}
	// Attribute name may be quoted.
	var nameEnd int
	if rest[0] == '\'' || rest[0] == '"' {
		q := rest[0]
		end := strings.IndexByte(rest[1:], q)
		if end < 0 {
			return out, fmt.Errorf("dataset: unterminated quoted attribute name: %q", line)
		}
		out.name = rest[1 : 1+end]
		nameEnd = end + 2
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return out, fmt.Errorf("dataset: @attribute missing type: %q", line)
		}
		out.name = rest[:sp]
		nameEnd = sp
	}
	typ := strings.TrimSpace(rest[nameEnd:])
	if strings.HasPrefix(typ, "{") {
		closing := strings.IndexByte(typ, '}')
		if closing < 0 {
			return out, fmt.Errorf("dataset: unterminated nominal spec: %q", line)
		}
		for _, v := range strings.Split(typ[1:closing], ",") {
			out.nominal = append(out.nominal, strings.Trim(strings.TrimSpace(v), `'"`))
		}
		if len(out.nominal) == 0 {
			return out, fmt.Errorf("dataset: empty nominal spec: %q", line)
		}
		return out, nil
	}
	switch strings.ToLower(typ) {
	case "numeric", "real", "integer":
		return out, nil
	default:
		return out, fmt.Errorf("dataset: unsupported attribute type %q in %q", typ, line)
	}
}
