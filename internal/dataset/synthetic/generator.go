// Package synthetic generates labelled high-dimensional data sets with
// controllable latent structure. It stands in for the UCI Musk, Ionosphere
// and Arrhythmia data sets used in the paper's evaluation (see DESIGN.md §4
// for the substitution argument): each generator produces data with low
// implicit dimensionality (a few correlated "concepts"), a class variable
// driven by those concepts, heterogeneous per-dimension scales, and ambient
// noise — the structural properties the paper's analysis depends on.
package synthetic

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/linalg"
)

// LatentFactorConfig describes a data set generated from the model
//
//	x = S · (W z + ε),  z = μ_class + N(0, I_k),  ε ~ N(0, σ² I_d)
//
// where W is a d x k mixing matrix with unit-norm columns scaled by the
// per-concept strengths, and S is a diagonal per-dimension scale matrix that
// injects the scale heterogeneity of §2.2 of the paper.
type LatentFactorConfig struct {
	// Name labels the generated data set.
	Name string
	// N is the number of points.
	N int
	// Dims is the ambient dimensionality d.
	Dims int
	// Classes is the number of class labels (>= 2).
	Classes int
	// ConceptStrengths gives the standard-deviation multiplier of each
	// latent concept; its length is the latent dimensionality k. Stronger
	// concepts produce larger eigenvalues along their mixed directions.
	ConceptStrengths []float64
	// ClassSeparation scales the distance between per-class latent means.
	// Zero makes the label independent of the features.
	ClassSeparation float64
	// NoiseStdDev is the standard deviation of the isotropic ambient noise ε.
	NoiseStdDev float64
	// ScaleSpread controls per-dimension scale heterogeneity: dimension j is
	// multiplied by 10^(u_j · ScaleSpread) with u_j uniform in [−0.5, 0.5).
	// Zero leaves all dimensions on a common scale.
	ScaleSpread float64
	// Seed drives all randomness; identical configs produce identical data.
	Seed int64
}

// Validate reports configuration errors.
func (c *LatentFactorConfig) Validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("synthetic: N=%d must be >= 2", c.N)
	case c.Dims < 1:
		return fmt.Errorf("synthetic: Dims=%d must be >= 1", c.Dims)
	case c.Classes < 2:
		return fmt.Errorf("synthetic: Classes=%d must be >= 2", c.Classes)
	case len(c.ConceptStrengths) == 0:
		return fmt.Errorf("synthetic: ConceptStrengths must be non-empty")
	case len(c.ConceptStrengths) > c.Dims:
		return fmt.Errorf("synthetic: %d concepts exceed %d dims", len(c.ConceptStrengths), c.Dims)
	case c.NoiseStdDev < 0:
		return fmt.Errorf("synthetic: NoiseStdDev=%v must be >= 0", c.NoiseStdDev)
	}
	for i, s := range c.ConceptStrengths {
		if s <= 0 {
			return fmt.Errorf("synthetic: ConceptStrengths[%d]=%v must be > 0", i, s)
		}
	}
	return nil
}

// Generate builds the data set described by the config.
func Generate(c LatentFactorConfig) (*dataset.Dataset, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	k := len(c.ConceptStrengths)
	d := c.Dims

	// Mixing matrix W: random directions, orthonormalized so each concept is
	// a distinct direction, then scaled by concept strength.
	raw := linalg.NewDense(d, k)
	for i := 0; i < d; i++ {
		for j := 0; j < k; j++ {
			raw.Set(i, j, rng.NormFloat64())
		}
	}
	w := linalg.GramSchmidt(raw)
	if w.Cols() < k {
		// Random Gaussian columns in d >= k dimensions are almost surely
		// independent; regenerate deterministically if not.
		return nil, fmt.Errorf("synthetic: degenerate mixing matrix (%d of %d concepts)", w.Cols(), k)
	}
	for j := 0; j < k; j++ {
		col := w.Col(j)
		linalg.ScaleVec(c.ConceptStrengths[j], col)
		w.SetCol(j, col)
	}

	// Per-class latent means.
	mus := make([][]float64, c.Classes)
	for cls := range mus {
		mu := make([]float64, k)
		for j := range mu {
			mu[j] = rng.NormFloat64() * c.ClassSeparation
		}
		mus[cls] = mu
	}

	// Per-dimension scales.
	scales := make([]float64, d)
	for j := range scales {
		if c.ScaleSpread == 0 {
			scales[j] = 1
		} else {
			scales[j] = math.Pow(10, (rng.Float64()-0.5)*c.ScaleSpread)
		}
	}

	x := linalg.NewDense(c.N, d)
	labels := make([]int, c.N)
	z := make([]float64, k)
	for i := 0; i < c.N; i++ {
		cls := i % c.Classes // balanced classes
		labels[i] = cls
		for j := 0; j < k; j++ {
			z[j] = mus[cls][j] + rng.NormFloat64()
		}
		row := x.RawRow(i)
		// row = W z + noise, then apply per-dimension scales.
		for dd := 0; dd < d; dd++ {
			v := 0.0
			for j := 0; j < k; j++ {
				v += w.At(dd, j) * z[j]
			}
			v += rng.NormFloat64() * c.NoiseStdDev
			row[dd] = v * scales[dd]
		}
	}

	ds, err := dataset.New(c.Name, x, labels)
	if err != nil {
		return nil, err
	}
	names := make([]string, c.Classes)
	for i := range names {
		names[i] = fmt.Sprintf("class-%d", i)
	}
	ds.ClassNames = names
	return ds, nil
}

// MustGenerate is Generate but panics on error, for presets with known-valid
// configurations.
func MustGenerate(c LatentFactorConfig) *dataset.Dataset {
	ds, err := Generate(c)
	if err != nil {
		panic(err)
	}
	return ds
}

// UniformCube returns n points uniformly distributed in the unit hypercube
// [−0.5, 0.5]^d centered at the origin — the paper's §3 worst case, where
// implicit dimensionality equals ambient dimensionality. Labels alternate
// between two classes and are independent of the features.
func UniformCube(name string, n, d int, seed int64) *dataset.Dataset {
	if n < 2 || d < 1 {
		panic(fmt.Sprintf("synthetic: UniformCube n=%d d=%d", n, d))
	}
	rng := rand.New(rand.NewSource(seed))
	x := linalg.NewDense(n, d)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		row := x.RawRow(i)
		for j := range row {
			row[j] = rng.Float64() - 0.5
		}
		labels[i] = i % 2
	}
	return dataset.MustNew(name, x, labels)
}

// GaussianClusters returns n points drawn from `classes` spherical Gaussian
// clusters in d dimensions with the given center spread and cluster radius.
// Unlike the latent-factor model every direction carries class signal, so it
// exercises the "no single dominant concept" regime.
func GaussianClusters(name string, n, d, classes int, centerSpread, radius float64, seed int64) *dataset.Dataset {
	if n < 2 || d < 1 || classes < 2 {
		panic(fmt.Sprintf("synthetic: GaussianClusters n=%d d=%d classes=%d", n, d, classes))
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, classes)
	for c := range centers {
		center := make([]float64, d)
		for j := range center {
			center[j] = rng.NormFloat64() * centerSpread
		}
		centers[c] = center
	}
	x := linalg.NewDense(n, d)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		labels[i] = c
		row := x.RawRow(i)
		for j := range row {
			row[j] = centers[c][j] + rng.NormFloat64()*radius
		}
	}
	return dataset.MustNew(name, x, labels)
}
