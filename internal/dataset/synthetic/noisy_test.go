package synthetic

import (
	"testing"

	"repro/internal/stats"
)

func TestNoisyDataA(t *testing.T) {
	ds, cols := NoisyDataA(1)
	if ds.N() != 351 || ds.Dims() != 34 {
		t.Fatalf("shape: %s", ds)
	}
	if len(cols) != NoisyDimensions {
		t.Fatalf("corrupted columns: %v", cols)
	}
	if ds.Name != "noisy-A" {
		t.Fatalf("name: %q", ds.Name)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// The injected noise dominates: corrupted columns have variance near
	// a²/12 = 3, far above the rescaled signal columns (sd 0.5 → var 0.25).
	vars := stats.ColumnVariances(ds.X)
	corrupted := map[int]bool{}
	for _, c := range cols {
		corrupted[c] = true
	}
	for j, v := range vars {
		if corrupted[j] {
			if v < 1.5 {
				t.Errorf("corrupted column %d variance %v too small", j, v)
			}
		} else if v > 1 {
			t.Errorf("signal column %d variance %v too large", j, v)
		}
	}
	// Deterministic.
	again, cols2 := NoisyDataA(1)
	if !again.X.Equal(ds.X, 0) {
		t.Fatalf("NoisyDataA not deterministic")
	}
	for i := range cols {
		if cols[i] != cols2[i] {
			t.Fatalf("column choice not deterministic")
		}
	}
}

func TestNoisyDataB(t *testing.T) {
	ds, cols := NoisyDataB(1)
	if ds.N() != 452 || ds.Dims() != 279 {
		t.Fatalf("shape: %s", ds)
	}
	if len(cols) != NoisyDimensions {
		t.Fatalf("corrupted columns: %v", cols)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Labels come from the base Arrhythmia analogue (8 classes).
	if ds.NumClasses() != 8 {
		t.Fatalf("classes = %d", ds.NumClasses())
	}
}

func TestSubspaceMixtureDeterministic(t *testing.T) {
	cfg := SubspaceMixtureConfig{
		Name: "m", N: 60, Dims: 10, Clusters: 3, LatentPerCluster: 2,
		ConceptStrength: 2, ClassSeparation: 1, CenterSpread: 4, NoiseStdDev: 0.3, Seed: 9,
	}
	a, err := SubspaceMixture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SubspaceMixture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.X.Equal(b.X, 0) {
		t.Fatalf("SubspaceMixture not deterministic")
	}
	cfg.Seed = 10
	c, err := SubspaceMixture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.X.Equal(c.X, 0) {
		t.Fatalf("different seeds gave identical data")
	}
}
