package synthetic

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// RowStream generates the latent-factor model row by row with O(d·k)
// memory, so cmd/datagen can emit million-point sets straight into the
// quantized store format without ever materializing the float64 matrix.
// For a given config it draws from exactly the same random stream as
// Generate: the first N rows of NewRowStream(c) are bit-identical to
// Generate(c).X's rows.
type RowStream struct {
	cfg    LatentFactorConfig
	w      *linalg.Dense // d×k mixing matrix, strength-scaled
	mus    [][]float64
	scales []float64
	rng    *rand.Rand
	next   int
	z, row []float64
}

// NewRowStream validates the config and builds the model prelude (mixing
// matrix, class means, per-dimension scales).
func NewRowStream(c LatentFactorConfig) (*RowStream, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	k := len(c.ConceptStrengths)
	d := c.Dims

	// The prelude draws mirror Generate exactly, in the same order, so the
	// two construction paths share one distribution per seed.
	raw := linalg.NewDense(d, k)
	for i := 0; i < d; i++ {
		for j := 0; j < k; j++ {
			raw.Set(i, j, rng.NormFloat64())
		}
	}
	w := linalg.GramSchmidt(raw)
	if w.Cols() < k {
		return nil, fmt.Errorf("synthetic: degenerate mixing matrix (%d of %d concepts)", w.Cols(), k)
	}
	for j := 0; j < k; j++ {
		col := w.Col(j)
		linalg.ScaleVec(c.ConceptStrengths[j], col)
		w.SetCol(j, col)
	}
	mus := make([][]float64, c.Classes)
	for cls := range mus {
		mu := make([]float64, k)
		for j := range mu {
			mu[j] = rng.NormFloat64() * c.ClassSeparation
		}
		mus[cls] = mu
	}
	scales := make([]float64, d)
	for j := range scales {
		if c.ScaleSpread == 0 {
			scales[j] = 1
		} else {
			scales[j] = math.Pow(10, (rng.Float64()-0.5)*c.ScaleSpread)
		}
	}
	return &RowStream{
		cfg: c, w: w, mus: mus, scales: scales, rng: rng,
		z: make([]float64, k), row: make([]float64, d),
	}, nil
}

// N returns the configured row count.
func (s *RowStream) N() int { return s.cfg.N }

// Dims returns the ambient dimensionality.
func (s *RowStream) Dims() int { return s.cfg.Dims }

// Next returns the next row and its class label. The returned slice is
// reused by the following Next call; copy it to retain. It panics past row
// N−1 (the stream is finite by construction, like the matrix it replaces).
func (s *RowStream) Next() ([]float64, int) {
	if s.next >= s.cfg.N {
		panic(fmt.Sprintf("synthetic: RowStream read past %d rows", s.cfg.N))
	}
	k := len(s.z)
	cls := s.next % s.cfg.Classes // balanced classes, as in Generate
	for j := 0; j < k; j++ {
		s.z[j] = s.mus[cls][j] + s.rng.NormFloat64()
	}
	for dd := 0; dd < s.cfg.Dims; dd++ {
		v := 0.0
		for j := 0; j < k; j++ {
			v += s.w.At(dd, j) * s.z[j]
		}
		v += s.rng.NormFloat64() * s.cfg.NoiseStdDev
		s.row[dd] = v * s.scales[dd]
	}
	s.next++
	return s.row, cls
}

// Reset rewinds the stream to row 0: the model prelude is rebuilt from the
// seed, so a second pass replays the identical rows. This is how the
// two-pass store build (scale pass, encode pass) reads the data twice with
// O(d) memory.
func (s *RowStream) Reset() error {
	fresh, err := NewRowStream(s.cfg)
	if err != nil {
		return err
	}
	*s = *fresh
	return nil
}
