package synthetic

import "repro/internal/dataset"

// Preset analogues of the paper's three UCI data sets. The ambient
// dimensionalities and point counts match the originals (Musk v1: 476 x 166,
// Ionosphere: 351 x 34, Arrhythmia: 452 x 279); the latent structure is
// chosen so the paper's qualitative phenomena appear at comparable
// dimensionalities (see DESIGN.md §4). Strength profiles are tiered to
// produce the eigenvalue-scatter geometry described in §4 of the paper:
// Musk has ~11-13 separated eigenvectors, Ionosphere a cluster of 5 strong
// plus 5 medium, Arrhythmia ~10 separated out of 279.

// tier returns a strength profile with `counts[i]` concepts at
// `levels[i]`.
func tier(levels []float64, counts []int) []float64 {
	var out []float64
	for i, c := range counts {
		for j := 0; j < c; j++ {
			out = append(out, levels[i])
		}
	}
	return out
}

// MuskLikeConfig is the analogue of UCI Musk (version 1): 476 points in 166
// dimensions, 2 classes, ~13 meaningful concepts.
func MuskLikeConfig(seed int64) LatentFactorConfig {
	return LatentFactorConfig{
		Name:             "musk-like",
		N:                476,
		Dims:             166,
		Classes:          2,
		ConceptStrengths: tier([]float64{6, 3.5, 2}, []int{4, 4, 5}),
		ClassSeparation:  0.9,
		NoiseStdDev:      2.2,
		ScaleSpread:      1.4,
		Seed:             seed,
	}
}

// MuskLike generates the Musk analogue.
func MuskLike(seed int64) *dataset.Dataset { return MustGenerate(MuskLikeConfig(seed)) }

// IonosphereLikeConfig is the analogue of UCI Ionosphere: 351 points in 34
// dimensions, 2 classes, a cluster of 5 strong concepts plus 5 medium ones
// (the paper: "the largest 5 eigenvalues are somewhat isolated ... when the
// next cluster of 5 eigenvalues was also included, this results in the
// optimal prediction accuracy").
func IonosphereLikeConfig(seed int64) LatentFactorConfig {
	return LatentFactorConfig{
		Name:             "ionosphere-like",
		N:                351,
		Dims:             34,
		Classes:          2,
		ConceptStrengths: tier([]float64{5, 2.2}, []int{5, 5}),
		ClassSeparation:  1.5,
		NoiseStdDev:      1.6,
		ScaleSpread:      1.0,
		Seed:             seed,
	}
}

// IonosphereLike generates the Ionosphere analogue.
func IonosphereLike(seed int64) *dataset.Dataset { return MustGenerate(IonosphereLikeConfig(seed)) }

// ArrhythmiaLikeConfig is the analogue of UCI Arrhythmia: 452 points in 279
// dimensions, multiple diagnostic classes, ~10 separated concepts (the
// paper: "the 10 eigenvectors tend to be separated from the rest of the
// data ... the optimum prediction accuracy is obtained by picking the top 10
// eigenvectors").
func ArrhythmiaLikeConfig(seed int64) LatentFactorConfig {
	return LatentFactorConfig{
		Name:             "arrhythmia-like",
		N:                452,
		Dims:             279,
		Classes:          8,
		ConceptStrengths: tier([]float64{7, 4}, []int{5, 5}),
		ClassSeparation:  1.8,
		NoiseStdDev:      1.8,
		ScaleSpread:      1.6,
		Seed:             seed,
	}
}

// ArrhythmiaLike generates the Arrhythmia analogue.
func ArrhythmiaLike(seed int64) *dataset.Dataset { return MustGenerate(ArrhythmiaLikeConfig(seed)) }
