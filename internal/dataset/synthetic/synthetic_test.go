package synthetic

import (
	"math"
	"sort"
	"testing"

	"repro/internal/linalg"
	"repro/internal/stats"
)

func TestGenerateValidation(t *testing.T) {
	base := LatentFactorConfig{
		Name: "x", N: 10, Dims: 5, Classes: 2,
		ConceptStrengths: []float64{1, 1}, NoiseStdDev: 0.1,
	}
	cases := []func(*LatentFactorConfig){
		func(c *LatentFactorConfig) { c.N = 1 },
		func(c *LatentFactorConfig) { c.Dims = 0 },
		func(c *LatentFactorConfig) { c.Classes = 1 },
		func(c *LatentFactorConfig) { c.ConceptStrengths = nil },
		func(c *LatentFactorConfig) { c.ConceptStrengths = []float64{1, 1, 1, 1, 1, 1} },
		func(c *LatentFactorConfig) { c.ConceptStrengths = []float64{1, -1} },
		func(c *LatentFactorConfig) { c.NoiseStdDev = -0.5 },
	}
	for i, mutate := range cases {
		c := base
		c.ConceptStrengths = append([]float64{}, base.ConceptStrengths...)
		mutate(&c)
		if _, err := Generate(c); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
	if _, err := Generate(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := MuskLikeConfig(42)
	a := MustGenerate(c)
	b := MustGenerate(c)
	if !a.X.Equal(b.X, 0) {
		t.Fatalf("same seed produced different data")
	}
	c2 := MuskLikeConfig(43)
	d := MustGenerate(c2)
	if a.X.Equal(d.X, 0) {
		t.Fatalf("different seeds produced identical data")
	}
}

func TestGenerateShapeAndLabels(t *testing.T) {
	d := MustGenerate(LatentFactorConfig{
		Name: "t", N: 90, Dims: 12, Classes: 3,
		ConceptStrengths: []float64{3, 2}, ClassSeparation: 2, NoiseStdDev: 0.2, Seed: 7,
	})
	if d.N() != 90 || d.Dims() != 12 {
		t.Fatalf("shape %dx%d", d.N(), d.Dims())
	}
	counts := d.ClassCounts()
	if len(counts) != 3 || counts[0] != 30 || counts[2] != 30 {
		t.Fatalf("classes not balanced: %v", counts)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLatentFactorLowImplicitDimensionality(t *testing.T) {
	// The covariance spectrum must be dominated by the latent concepts:
	// with k strong concepts and small noise, the top-k eigenvalues carry
	// most of the variance.
	k := 4
	d := MustGenerate(LatentFactorConfig{
		Name: "lowdim", N: 400, Dims: 30, Classes: 2,
		ConceptStrengths: []float64{5, 5, 5, 5}, ClassSeparation: 1, NoiseStdDev: 0.3, Seed: 11,
	})
	cov := stats.CovarianceMatrix(d.X)
	ed, err := linalg.EigSym(cov)
	if err != nil {
		t.Fatal(err)
	}
	vals, _ := ed.Descending()
	total, top := 0.0, 0.0
	for i, v := range vals {
		total += v
		if i < k {
			top += v
		}
	}
	if frac := top / total; frac < 0.9 {
		t.Fatalf("top-%d eigenvalues carry only %.2f of variance", k, frac)
	}
}

func TestScaleSpreadChangesVarianceSpread(t *testing.T) {
	base := LatentFactorConfig{
		Name: "s", N: 300, Dims: 20, Classes: 2,
		ConceptStrengths: []float64{2, 2}, NoiseStdDev: 1, Seed: 5,
	}
	flat := MustGenerate(base)
	spread := base
	spread.ScaleSpread = 2
	wide := MustGenerate(spread)
	ratio := func(x *linalg.Dense) float64 {
		vars := stats.ColumnVariances(x)
		sort.Float64s(vars)
		return vars[len(vars)-1] / vars[0]
	}
	if ratio(wide.X) < 10*ratio(flat.X) {
		t.Fatalf("ScaleSpread did not widen variance spread: %v vs %v", ratio(wide.X), ratio(flat.X))
	}
}

func TestClassSeparationDrivesFeatureLabelDependence(t *testing.T) {
	// With separation, class centroids in feature space must be far apart
	// relative to the no-separation case.
	gen := func(sep float64) float64 {
		d := MustGenerate(LatentFactorConfig{
			Name: "c", N: 400, Dims: 15, Classes: 2,
			ConceptStrengths: []float64{3, 3}, ClassSeparation: sep, NoiseStdDev: 0.3, Seed: 9,
		})
		var c0, c1 []float64
		n0, n1 := 0, 0
		c0 = make([]float64, d.Dims())
		c1 = make([]float64, d.Dims())
		for i := 0; i < d.N(); i++ {
			row := d.X.RawRow(i)
			if d.Labels[i] == 0 {
				linalg.Axpy(1, row, c0)
				n0++
			} else {
				linalg.Axpy(1, row, c1)
				n1++
			}
		}
		linalg.ScaleVec(1/float64(n0), c0)
		linalg.ScaleVec(1/float64(n1), c1)
		return linalg.Dist2(c0, c1)
	}
	if gen(3) < 4*gen(0) {
		t.Fatalf("class separation has no effect: sep=3 dist %v, sep=0 dist %v", gen(3), gen(0))
	}
}

func TestPresets(t *testing.T) {
	musk := MuskLike(1)
	if musk.N() != 476 || musk.Dims() != 166 || musk.NumClasses() != 2 {
		t.Fatalf("musk shape: %s", musk)
	}
	ion := IonosphereLike(1)
	if ion.N() != 351 || ion.Dims() != 34 || ion.NumClasses() != 2 {
		t.Fatalf("ionosphere shape: %s", ion)
	}
	arr := ArrhythmiaLike(1)
	if arr.N() != 452 || arr.Dims() != 279 || arr.NumClasses() != 8 {
		t.Fatalf("arrhythmia shape: %s", arr)
	}
	for _, d := range []interface{ Validate() error }{musk, ion, arr} {
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUniformCube(t *testing.T) {
	d := UniformCube("u", 1000, 8, 3)
	if d.N() != 1000 || d.Dims() != 8 {
		t.Fatalf("shape %dx%d", d.N(), d.Dims())
	}
	// All values in [-0.5, 0.5); means near 0, variance near 1/12.
	means := stats.ColumnMeans(d.X)
	vars := stats.ColumnVariances(d.X)
	for j := 0; j < d.Dims(); j++ {
		if math.Abs(means[j]) > 0.05 {
			t.Fatalf("mean[%d] = %v", j, means[j])
		}
		if math.Abs(vars[j]-1.0/12.0) > 0.01 {
			t.Fatalf("var[%d] = %v, want ~1/12", j, vars[j])
		}
	}
	for i := 0; i < d.N(); i++ {
		for _, v := range d.X.RawRow(i) {
			if v < -0.5 || v >= 0.5 {
				t.Fatalf("value %v outside cube", v)
			}
		}
	}
}

func TestGaussianClusters(t *testing.T) {
	d := GaussianClusters("g", 300, 5, 3, 10, 0.5, 4)
	if d.N() != 300 || d.NumClasses() != 3 {
		t.Fatalf("shape wrong: %s", d)
	}
	// Clusters with large separation and small radius: a point's nearest
	// same-class centroid should be much closer than other centroids —
	// verified indirectly by within-class variance << total variance.
	within := 0.0
	centroids := make([][]float64, 3)
	counts := make([]int, 3)
	for c := range centroids {
		centroids[c] = make([]float64, d.Dims())
	}
	for i := 0; i < d.N(); i++ {
		linalg.Axpy(1, d.X.RawRow(i), centroids[d.Labels[i]])
		counts[d.Labels[i]]++
	}
	for c := range centroids {
		linalg.ScaleVec(1/float64(counts[c]), centroids[c])
	}
	for i := 0; i < d.N(); i++ {
		dd := linalg.Dist2(d.X.RawRow(i), centroids[d.Labels[i]])
		within += dd * dd
	}
	within /= float64(d.N())
	total := 0.0
	for _, v := range stats.ColumnVariances(d.X) {
		total += v
	}
	if within > total/4 {
		t.Fatalf("clusters not separated: within %v vs total %v", within, total)
	}
}

func TestCorrupt(t *testing.T) {
	d := MustGenerate(LatentFactorConfig{
		Name: "c", N: 50, Dims: 10, Classes: 2,
		ConceptStrengths: []float64{2}, NoiseStdDev: 0.1, Seed: 6,
	})
	cols := []int{1, 4, 7}
	noisy := Corrupt(d, cols, 6, 99)
	// Corrupted columns lie in [0, 6); untouched columns identical.
	for i := 0; i < noisy.N(); i++ {
		row := noisy.X.RawRow(i)
		orig := d.X.RawRow(i)
		for j := range row {
			switch j {
			case 1, 4, 7:
				if row[j] < 0 || row[j] >= 6 {
					t.Fatalf("corrupted value %v outside [0,6)", row[j])
				}
			default:
				if row[j] != orig[j] {
					t.Fatalf("untouched column %d changed", j)
				}
			}
		}
	}
	// Original untouched, labels preserved.
	if noisy.Labels[3] != d.Labels[3] {
		t.Fatalf("labels changed")
	}
	// Determinism.
	again := Corrupt(d, cols, 6, 99)
	if !again.X.Equal(noisy.X, 0) {
		t.Fatalf("Corrupt not deterministic")
	}
}

func TestCorruptPanics(t *testing.T) {
	d := UniformCube("u", 10, 4, 1)
	for name, fn := range map[string]func(){
		"amplitude":  func() { Corrupt(d, []int{0}, 0, 1) },
		"oob column": func() { Corrupt(d, []int{9}, 1, 1) },
		"duplicate":  func() { Corrupt(d, []int{1, 1}, 1, 1) },
		"count zero": func() { CorruptRandom(d, 0, 1, 1) },
		"count big":  func() { CorruptRandom(d, 5, 1, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestCorruptRandom(t *testing.T) {
	d := UniformCube("u", 40, 12, 2)
	noisy, cols := CorruptRandom(d, 4, 6, 77)
	if len(cols) != 4 {
		t.Fatalf("cols = %v", cols)
	}
	seen := map[int]bool{}
	for _, c := range cols {
		if seen[c] {
			t.Fatalf("duplicate column %d", c)
		}
		seen[c] = true
	}
	// Corrupted columns have much larger variance than the base cube
	// columns (U(0,6) variance 3 vs 1/12).
	vars := stats.ColumnVariances(noisy.X)
	for _, c := range cols {
		if vars[c] < 1 {
			t.Fatalf("corrupted column %d variance %v too small", c, vars[c])
		}
	}
}
