package synthetic

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
)

// Corrupt implements the paper's noisy-data-set construction (§4.1): it
// returns a copy of d in which the features at the given column indices are
// replaced by values drawn uniformly from [0, amplitude). The paper's
// "noisy data set A" replaces 10 of Ionosphere's 34 dimensions with uniform
// noise of amplitude a = 6; "noisy data set B" does the same to 10 of
// Arrhythmia's 279 dimensions.
func Corrupt(d *dataset.Dataset, cols []int, amplitude float64, seed int64) *dataset.Dataset {
	if amplitude <= 0 {
		panic(fmt.Sprintf("synthetic: Corrupt amplitude=%v must be > 0", amplitude))
	}
	seen := make(map[int]bool, len(cols))
	for _, j := range cols {
		if j < 0 || j >= d.Dims() {
			panic(fmt.Sprintf("synthetic: Corrupt column %d out of range [0,%d)", j, d.Dims()))
		}
		if seen[j] {
			panic(fmt.Sprintf("synthetic: Corrupt duplicate column %d", j))
		}
		seen[j] = true
	}
	rng := rand.New(rand.NewSource(seed))
	out := d.Clone()
	out.Name = d.Name + " (corrupted)"
	for i := 0; i < out.N(); i++ {
		row := out.X.RawRow(i)
		for _, j := range cols {
			row[j] = rng.Float64() * amplitude
		}
	}
	return out
}

// CorruptRandom replaces `count` randomly chosen distinct dimensions with
// uniform noise of the given amplitude and returns the corrupted data set
// together with the chosen column indices (sorted by choice order).
func CorruptRandom(d *dataset.Dataset, count int, amplitude float64, seed int64) (*dataset.Dataset, []int) {
	if count <= 0 || count > d.Dims() {
		panic(fmt.Sprintf("synthetic: CorruptRandom count=%d out of range (0,%d]", count, d.Dims()))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(d.Dims())[:count]
	cols := append([]int(nil), perm...)
	// Use a distinct stream for the noise so the column choice and the
	// noise values are independently reproducible.
	return Corrupt(d, cols, amplitude, seed+1), cols
}
