package synthetic

import (
	"math"
	"testing"
)

func streamTestConfig() LatentFactorConfig {
	c := MuskLikeConfig(41)
	c.N = 257 // not a multiple of Classes, exercises the label cycle
	c.Dims = 23
	return c
}

// TestRowStreamMatchesGenerate pins the contract that makes two-pass store
// builds sound: the streamed rows are bit-identical to the materialized
// matrix for the same config.
func TestRowStreamMatchesGenerate(t *testing.T) {
	c := streamTestConfig()
	ds, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewRowStream(c)
	if err != nil {
		t.Fatal(err)
	}
	if st.N() != c.N || st.Dims() != c.Dims {
		t.Fatalf("stream reports %dx%d, want %dx%d", st.N(), st.Dims(), c.N, c.Dims)
	}
	for i := 0; i < c.N; i++ {
		row, label := st.Next()
		if label != ds.Labels[i] {
			t.Fatalf("row %d: label %d, want %d", i, label, ds.Labels[i])
		}
		want := ds.X.RawRow(i)
		for j := range row {
			if math.Float64bits(row[j]) != math.Float64bits(want[j]) {
				t.Fatalf("row %d dim %d: %v != %v", i, j, row[j], want[j])
			}
		}
	}
}

// TestRowStreamReset verifies that a second pass replays identical rows.
func TestRowStreamReset(t *testing.T) {
	c := streamTestConfig()
	st, err := NewRowStream(c)
	if err != nil {
		t.Fatal(err)
	}
	first := make([][]float64, c.N)
	for i := range first {
		row, _ := st.Next()
		first[i] = append([]float64(nil), row...)
	}
	if err := st.Reset(); err != nil {
		t.Fatal(err)
	}
	for i := range first {
		row, _ := st.Next()
		for j := range row {
			if math.Float64bits(row[j]) != math.Float64bits(first[i][j]) {
				t.Fatalf("after Reset, row %d dim %d: %v != %v", i, j, row[j], first[i][j])
			}
		}
	}
}

// TestRowStreamExhaustionPanics pins the finite-stream contract.
func TestRowStreamExhaustionPanics(t *testing.T) {
	c := streamTestConfig()
	st, err := NewRowStream(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.N; i++ {
		st.Next()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Next past N did not panic")
		}
	}()
	st.Next()
}

func TestRowStreamRejectsInvalidConfig(t *testing.T) {
	c := streamTestConfig()
	c.Classes = 1
	if _, err := NewRowStream(c); err == nil {
		t.Fatal("invalid config accepted")
	}
}
