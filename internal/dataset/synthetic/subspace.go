package synthetic

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/linalg"
)

// SubspaceMixtureConfig describes the data regime of the paper's §3.1
// extension: the data is a union of clusters, each living in its own
// low-dimensional subspace with its own class structure. Globally the
// implicit dimensionality is the sum of the per-cluster latent
// dimensionalities (high — no single reduction fits everyone); inside each
// cluster it is small, so local (projected-clustering) reduction succeeds
// where a single global transform cannot.
type SubspaceMixtureConfig struct {
	Name string
	// N is the number of points.
	N int
	// Dims is the ambient dimensionality.
	Dims int
	// Clusters is the number of subspace clusters.
	Clusters int
	// LatentPerCluster is each cluster's own concept count.
	LatentPerCluster int
	// ConceptStrength scales the latent signal inside each cluster.
	ConceptStrength float64
	// ClassSeparation separates the two classes inside each cluster's
	// latent space (the label is the within-cluster class, shared across
	// clusters, so it cannot be predicted from the cluster identity).
	ClassSeparation float64
	// CenterSpread separates the cluster centers in ambient space.
	CenterSpread float64
	// NoiseStdDev is isotropic ambient noise.
	NoiseStdDev float64
	Seed        int64
}

// Validate reports configuration errors.
func (c *SubspaceMixtureConfig) Validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("synthetic: N=%d must be >= 2", c.N)
	case c.Dims < 1:
		return fmt.Errorf("synthetic: Dims=%d must be >= 1", c.Dims)
	case c.Clusters < 1:
		return fmt.Errorf("synthetic: Clusters=%d must be >= 1", c.Clusters)
	case c.LatentPerCluster < 1 || c.LatentPerCluster > c.Dims:
		return fmt.Errorf("synthetic: LatentPerCluster=%d out of [1,%d]", c.LatentPerCluster, c.Dims)
	case c.ConceptStrength <= 0:
		return fmt.Errorf("synthetic: ConceptStrength=%v must be > 0", c.ConceptStrength)
	case c.NoiseStdDev < 0:
		return fmt.Errorf("synthetic: NoiseStdDev=%v must be >= 0", c.NoiseStdDev)
	}
	return nil
}

// SubspaceMixture generates the data set. Point i belongs to cluster
// i%Clusters and to within-cluster class (i/Clusters)%2; the returned labels
// are the classes (0/1), NOT the cluster identities.
func SubspaceMixture(c SubspaceMixtureConfig) (*dataset.Dataset, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	d, k := c.Dims, c.LatentPerCluster

	type clusterModel struct {
		center []float64
		w      *linalg.Dense // d x k orthonormal basis
		mu     [2][]float64  // per-class latent means
	}
	models := make([]clusterModel, c.Clusters)
	for ci := range models {
		center := make([]float64, d)
		for j := range center {
			center[j] = rng.NormFloat64() * c.CenterSpread
		}
		raw := linalg.NewDense(d, k)
		for i := 0; i < d; i++ {
			for j := 0; j < k; j++ {
				raw.Set(i, j, rng.NormFloat64())
			}
		}
		w := linalg.GramSchmidt(raw)
		if w.Cols() < k {
			return nil, fmt.Errorf("synthetic: degenerate subspace basis for cluster %d", ci)
		}
		var mu [2][]float64
		for class := 0; class < 2; class++ {
			m := make([]float64, k)
			for j := range m {
				m[j] = rng.NormFloat64() * c.ClassSeparation
			}
			mu[class] = m
		}
		models[ci] = clusterModel{center: center, w: w, mu: mu}
	}

	x := linalg.NewDense(c.N, d)
	labels := make([]int, c.N)
	z := make([]float64, k)
	for i := 0; i < c.N; i++ {
		ci := i % c.Clusters
		class := (i / c.Clusters) % 2
		labels[i] = class
		m := models[ci]
		for j := 0; j < k; j++ {
			z[j] = (m.mu[class][j] + rng.NormFloat64()) * c.ConceptStrength
		}
		row := x.RawRow(i)
		for dd := 0; dd < d; dd++ {
			v := m.center[dd]
			for j := 0; j < k; j++ {
				v += m.w.At(dd, j) * z[j]
			}
			row[dd] = v + rng.NormFloat64()*c.NoiseStdDev
		}
	}
	ds, err := dataset.New(c.Name, x, labels)
	if err != nil {
		return nil, err
	}
	ds.ClassNames = []string{"class-0", "class-1"}
	return ds, nil
}
