package synthetic

import "repro/internal/dataset"

// NoisyDimensions is the number of features the paper replaces with uniform
// noise when constructing its corrupted data sets ("we picked 10 of the
// original set of ... dimensions and replaced them with data generated from
// a uniform distribution").
const NoisyDimensions = 10

// NoisyAmplitude is the paper's uniform-noise amplitude a = 6.
const NoisyAmplitude = 6

// NoisyDataA reproduces the paper's "noisy data set A": the Ionosphere
// analogue with 10 of its 34 dimensions replaced by uniform noise of
// amplitude 6. The base data is standardized and rescaled to the raw
// Ionosphere feature range (features in [-1, 1], standard deviation ~0.5);
// the injected noise (variance a²/12 = 3) then owns the largest covariance
// eigenvalues while carrying no class information — the regime where
// eigenvalue-ordered reduction fails (Figures 12–13). The chosen column
// indices are returned for inspection.
func NoisyDataA(seed int64) (*dataset.Dataset, []int) {
	base := rescaled(IonosphereLike(seed), 0.5)
	ds, cols := CorruptRandom(base, NoisyDimensions, NoisyAmplitude, seed+1000)
	ds.Name = "noisy-A"
	return ds, cols
}

// NoisyDataB reproduces the paper's "noisy data set B": the Arrhythmia
// analogue (279 dimensions) with 10 dimensions replaced by uniform noise of
// amplitude 6, constructed the same way as NoisyDataA (Figures 14–15).
// Arrhythmia's concepts spread over far more dimensions, so the base is
// rescaled to a smaller per-feature deviation to keep the paper's noise
// amplitude dominant, as it is in its Figure 14 spectrum.
func NoisyDataB(seed int64) (*dataset.Dataset, []int) {
	base := rescaled(ArrhythmiaLike(seed), 0.25)
	ds, cols := CorruptRandom(base, NoisyDimensions, NoisyAmplitude, seed+2000)
	ds.Name = "noisy-B"
	return ds, cols
}

// rescaled standardizes the data set and multiplies every feature by sd, so
// every dimension has standard deviation sd.
func rescaled(d *dataset.Dataset, sd float64) *dataset.Dataset {
	out := d.Standardized()
	out.X.Scale(sd)
	return out
}
