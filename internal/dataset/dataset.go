// Package dataset provides the data-handling substrate: an in-memory
// labelled data set abstraction, CSV and ARFF loaders for real data, and
// (in the synthetic subpackage) generators that stand in for the UCI data
// sets used by the paper.
//
// A Dataset couples an n x d feature matrix with an integer class label per
// row. The label is the "semantic variable" of the paper's feature-stripping
// methodology: it is never part of the feature matrix, and similarity search
// quality is judged by how often a point's nearest neighbors share its label.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/stats"
)

// Dataset is an immutable-by-convention labelled point set. Rows of X are
// points; Labels[i] is the class of row i.
type Dataset struct {
	// Name identifies the data set in reports.
	Name string
	// X is the n x d feature matrix (rows are points).
	X *linalg.Dense
	// Labels holds the class index for every row (len = n).
	Labels []int
	// ClassNames optionally maps class indices to names.
	ClassNames []string
	// FeatureNames optionally names the d features.
	FeatureNames []string
}

// New validates and constructs a Dataset.
func New(name string, x *linalg.Dense, labels []int) (*Dataset, error) {
	n, _ := x.Dims()
	if len(labels) != n {
		return nil, fmt.Errorf("dataset: %d labels for %d rows", len(labels), n)
	}
	for i, l := range labels {
		if l < 0 {
			return nil, fmt.Errorf("dataset: negative label %d at row %d", l, i)
		}
	}
	return &Dataset{Name: name, X: x, Labels: labels}, nil
}

// MustNew is New but panics on error; for tests and generators with
// known-valid shapes.
func MustNew(name string, x *linalg.Dense, labels []int) *Dataset {
	d, err := New(name, x, labels)
	if err != nil {
		panic(err)
	}
	return d
}

// N returns the number of points.
func (d *Dataset) N() int { return d.X.Rows() }

// Dims returns the ambient dimensionality.
func (d *Dataset) Dims() int { return d.X.Cols() }

// Point returns row i as a fresh slice.
func (d *Dataset) Point(i int) []float64 { return d.X.Row(i) }

// NumClasses returns 1 + the maximum label (0 for an empty set).
func (d *Dataset) NumClasses() int {
	max := -1
	for _, l := range d.Labels {
		if l > max {
			max = l
		}
	}
	return max + 1
}

// ClassCounts returns the number of points in each class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses())
	for _, l := range d.Labels {
		counts[l]++
	}
	return counts
}

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	labels := make([]int, len(d.Labels))
	copy(labels, d.Labels)
	out := &Dataset{Name: d.Name, X: d.X.Clone(), Labels: labels}
	if d.ClassNames != nil {
		out.ClassNames = append([]string(nil), d.ClassNames...)
	}
	if d.FeatureNames != nil {
		out.FeatureNames = append([]string(nil), d.FeatureNames...)
	}
	return out
}

// WithMatrix returns a Dataset sharing this one's labels but with a new
// feature matrix (e.g. after projection). The row count must match.
func (d *Dataset) WithMatrix(name string, x *linalg.Dense) *Dataset {
	if x.Rows() != d.N() {
		panic(fmt.Sprintf("dataset: WithMatrix row mismatch %d vs %d", x.Rows(), d.N()))
	}
	return &Dataset{Name: name, X: x, Labels: d.Labels, ClassNames: d.ClassNames}
}

// Subset returns a Dataset containing only the given rows, in order.
func (d *Dataset) Subset(rows []int) *Dataset {
	labels := make([]int, len(rows))
	for k, i := range rows {
		labels[k] = d.Labels[i]
	}
	out := &Dataset{Name: d.Name, X: d.X.SliceRows(rows), Labels: labels, ClassNames: d.ClassNames}
	if d.FeatureNames != nil {
		out.FeatureNames = append([]string(nil), d.FeatureNames...)
	}
	return out
}

// Shuffled returns a copy with rows permuted by the given source.
func (d *Dataset) Shuffled(rng *rand.Rand) *Dataset {
	perm := rng.Perm(d.N())
	return d.Subset(perm)
}

// Split partitions the rows into two data sets: the first gets every row
// whose index mod k is nonzero, the second every k-th row. It is a simple
// deterministic holdout used to separate reference points from queries.
func (d *Dataset) Split(k int) (ref, query *Dataset) {
	if k < 2 {
		panic(fmt.Sprintf("dataset: Split k=%d must be >= 2", k))
	}
	var refRows, qRows []int
	for i := 0; i < d.N(); i++ {
		if i%k == 0 {
			qRows = append(qRows, i)
		} else {
			refRows = append(refRows, i)
		}
	}
	return d.Subset(refRows), d.Subset(qRows)
}

// DropConstantColumns removes features whose population variance is below
// eps (the paper: "if the initial variance is zero along any dimension, then
// that dimension may be discarded"). It returns the reduced data set and the
// indices of the retained columns. If every column is retained the receiver
// is returned unchanged.
func (d *Dataset) DropConstantColumns(eps float64) (*Dataset, []int) {
	vars := stats.ColumnVariances(d.X)
	var keep []int
	for j, v := range vars {
		if v > eps {
			keep = append(keep, j)
		}
	}
	if len(keep) == d.Dims() {
		all := make([]int, d.Dims())
		for i := range all {
			all[i] = i
		}
		return d, all
	}
	if len(keep) == 0 {
		panic("dataset: all columns are constant")
	}
	out := &Dataset{Name: d.Name, X: d.X.SliceCols(keep), Labels: d.Labels, ClassNames: d.ClassNames}
	if d.FeatureNames != nil {
		names := make([]string, len(keep))
		for k, j := range keep {
			names[k] = d.FeatureNames[j]
		}
		out.FeatureNames = names
	}
	return out, keep
}

// Standardized returns a copy whose columns are centered and scaled to unit
// variance (the paper's studentization, §2.2).
func (d *Dataset) Standardized() *Dataset {
	x, _, _ := stats.Standardize(d.X, 1e-12)
	return &Dataset{Name: d.Name + " (scaled)", X: x, Labels: d.Labels, ClassNames: d.ClassNames, FeatureNames: d.FeatureNames}
}

// Centered returns a copy with column means removed but scales untouched.
func (d *Dataset) Centered() *Dataset {
	x, _ := stats.Center(d.X)
	return &Dataset{Name: d.Name, X: x, Labels: d.Labels, ClassNames: d.ClassNames, FeatureNames: d.FeatureNames}
}

// Validate checks internal consistency and that no feature is NaN or Inf.
func (d *Dataset) Validate() error {
	n, dims := d.X.Dims()
	if len(d.Labels) != n {
		return fmt.Errorf("dataset %q: %d labels for %d rows", d.Name, len(d.Labels), n)
	}
	if d.FeatureNames != nil && len(d.FeatureNames) != dims {
		return fmt.Errorf("dataset %q: %d feature names for %d dims", d.Name, len(d.FeatureNames), dims)
	}
	nc := d.NumClasses()
	if d.ClassNames != nil && len(d.ClassNames) < nc {
		return fmt.Errorf("dataset %q: %d class names for %d classes", d.Name, len(d.ClassNames), nc)
	}
	for i := 0; i < n; i++ {
		for _, v := range d.X.RawRow(i) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("dataset %q: non-finite value in row %d", d.Name, i)
			}
		}
	}
	return nil
}

// String summarizes the data set.
func (d *Dataset) String() string {
	return fmt.Sprintf("%s: %d points, %d dims, %d classes", d.Name, d.N(), d.Dims(), d.NumClasses())
}
