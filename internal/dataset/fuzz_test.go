package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the two parsers: whatever bytes arrive, the parsers must
// either return an error or a structurally valid data set — never panic,
// never return a set that fails Validate.

func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("1,2,a\n3,4,b\n"), true, -1)
	f.Add([]byte("h1,h2,class\n1,2,a\n"), true, 0)
	f.Add([]byte(""), false, -1)
	f.Add([]byte("1\n"), false, 0)
	f.Add([]byte("1,2\n3\n"), false, -1)
	f.Add([]byte("NaN,Inf,x\n"), false, -1)
	f.Add([]byte(`"quoted,comma",2,y`+"\n"), false, -1)
	f.Fuzz(func(t *testing.T, data []byte, header bool, labelCol int) {
		if labelCol > 64 || labelCol < -64 {
			return
		}
		ds, err := ReadCSV(bytes.NewReader(data), "fuzz", CSVOptions{HasHeader: header, LabelColumn: labelCol})
		if err != nil {
			return
		}
		if ds.N() < 1 || ds.Dims() < 1 {
			t.Fatalf("parser returned empty dataset without error")
		}
		if len(ds.Labels) != ds.N() {
			t.Fatalf("label count mismatch")
		}
		for _, l := range ds.Labels {
			if l < 0 || l >= len(ds.ClassNames) {
				t.Fatalf("label %d outside class table of %d", l, len(ds.ClassNames))
			}
		}
		// Round trip: anything we parsed we can serialize and re-parse.
		var buf bytes.Buffer
		if err := WriteCSV(&buf, ds); err != nil {
			t.Fatalf("WriteCSV of parsed set failed: %v", err)
		}
		opts := CSVOptions{LabelColumn: -1, HasHeader: ds.FeatureNames != nil}
		back, err := ReadCSV(&buf, "fuzz2", opts)
		if err != nil {
			t.Fatalf("re-parse of serialized set failed: %v", err)
		}
		if back.N() != ds.N() || back.Dims() != ds.Dims() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d", back.N(), back.Dims(), ds.N(), ds.Dims())
		}
	})
}

func FuzzReadARFF(f *testing.F) {
	f.Add("@relation r\n@attribute a numeric\n@attribute c {x,y}\n@data\n1,x\n")
	f.Add("@relation r\n@attribute 'q a' real\n@attribute c {x}\n@data\n2,x\n")
	f.Add("% comment\n@data\n")
	f.Add("@attribute only numeric\n")
	f.Add("@relation r\n@attribute a {p,q}\n@attribute c {x,y}\n@data\np,x\nq,y\n")
	f.Add("@relation r\n@attribute a numeric\n@attribute c {x,y}\n@data\n?,x\n")
	// Quoted attribute names — terminated, unterminated, and mixed quotes.
	f.Add("@relation 'my rel'\n@attribute \"dotted.name\" numeric\n@attribute 'the class' {x,y}\n@data\n3,y\n")
	f.Add("@relation r\n@attribute 'unterminated numeric\n@attribute c {x}\n@data\n1,x\n")
	f.Add("@relation r\n@attribute \"mixed' real\n@attribute c {x}\n@data\n1,x\n")
	// Weka sparse data format: explicitly unsupported, must error cleanly.
	f.Add("@relation r\n@attribute a numeric\n@attribute c {x,y}\n@data\n{0 1, 1 x}\n")
	f.Add("@relation r\n@attribute a numeric\n@attribute c {x,y}\n@data\n{}\n")
	// Truncated files: header only, cut mid-declaration, cut mid-row.
	f.Add("@relation r\n@attribute a numeric\n@attribute c {x,y}\n@data\n")
	f.Add("@relation r\n@attribute a num")
	f.Add("@relation r\n@attribute a numeric\n@attribute c {x,y\n@data\n1,x\n")
	f.Add("@relation r\n@attribute a numeric\n@attribute c {x,y}\n@data\n1,\n")
	f.Add("@relation r\n@attribute a numeric\n@attribute c {x,y}\n@data\n1")
	f.Fuzz(func(t *testing.T, data string) {
		ds, err := ReadARFF(strings.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("parser returned invalid dataset: %v", err)
		}
		if ds.Dims() < 1 || ds.N() < 1 {
			t.Fatalf("parser returned empty dataset without error")
		}
	})
}
