package dataset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/linalg"
)

func TestReadCSVBasic(t *testing.T) {
	in := "1.5,2,cat\n3,4,dog\n5,6,cat\n"
	d, err := ReadCSV(strings.NewReader(in), "pets", CSVOptions{LabelColumn: -1})
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 3 || d.Dims() != 2 {
		t.Fatalf("shape = %dx%d", d.N(), d.Dims())
	}
	if d.X.At(0, 0) != 1.5 || d.X.At(2, 1) != 6 {
		t.Fatalf("values wrong")
	}
	if d.Labels[0] != 0 || d.Labels[1] != 1 || d.Labels[2] != 0 {
		t.Fatalf("labels = %v", d.Labels)
	}
	if len(d.ClassNames) != 2 || d.ClassNames[0] != "cat" {
		t.Fatalf("class names = %v", d.ClassNames)
	}
}

func TestReadCSVHeaderAndLabelColumn(t *testing.T) {
	in := "class,f1,f2\nA,1,2\nB,3,4\n"
	d, err := ReadCSV(strings.NewReader(in), "x", CSVOptions{HasHeader: true, LabelColumn: 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.Dims() != 2 || d.N() != 2 {
		t.Fatalf("shape = %dx%d", d.N(), d.Dims())
	}
	if d.FeatureNames[0] != "f1" || d.FeatureNames[1] != "f2" {
		t.Fatalf("features = %v", d.FeatureNames)
	}
	if d.X.At(1, 1) != 4 {
		t.Fatalf("value wrong")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]struct {
		in   string
		opts CSVOptions
	}{
		"empty":         {"", CSVOptions{}},
		"only header":   {"a,b\n", CSVOptions{HasHeader: true}},
		"single column": {"1\n2\n", CSVOptions{}},
		"bad number":    {"1,x,A\n", CSVOptions{LabelColumn: 2}},
		"label oob":     {"1,2\n", CSVOptions{LabelColumn: 5}},
		"ragged rows":   {"1,2,A\n1,B\n", CSVOptions{LabelColumn: -1}},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tc.in), "x", tc.opts); err == nil {
				t.Fatalf("expected error")
			}
		})
	}
}

func TestCSVRoundTrip(t *testing.T) {
	x := linalg.FromRows([][]float64{{1.25, -3}, {0.5, 7}})
	d := MustNew("rt", x, []int{1, 0})
	d.ClassNames = []string{"neg", "pos"}
	d.FeatureNames = []string{"a", "b"}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "rt", CSVOptions{HasHeader: true, LabelColumn: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !back.X.Equal(d.X, 0) {
		t.Fatalf("matrix round trip failed")
	}
	// Class indices are re-interned in first-appearance order; the names
	// must still correspond per row.
	for i := range d.Labels {
		want := d.ClassNames[d.Labels[i]]
		got := back.ClassNames[back.Labels[i]]
		if want != got {
			t.Fatalf("row %d class %q != %q", i, got, want)
		}
	}
}

func TestWriteCSVWithoutNames(t *testing.T) {
	d := MustNew("plain", linalg.FromRows([][]float64{{1, 2}}), []int{3})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "1,2,3" {
		t.Fatalf("csv = %q", got)
	}
}

const arffSample = `% a comment
@relation weather

@attribute temperature numeric
@attribute humidity real
@attribute windy {true, false}
@attribute play {yes, no}

@data
85, 85, false, no
80, 90, true, no
83, 86, false, yes
`

func TestReadARFF(t *testing.T) {
	d, err := ReadARFF(strings.NewReader(arffSample), "fallback")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "weather" {
		t.Fatalf("name = %q", d.Name)
	}
	if d.N() != 3 || d.Dims() != 3 {
		t.Fatalf("shape = %dx%d", d.N(), d.Dims())
	}
	// Class = last nominal attribute (play); windy became a 0/1 feature.
	if len(d.ClassNames) != 2 || d.ClassNames[0] != "yes" {
		t.Fatalf("classes = %v", d.ClassNames)
	}
	if d.Labels[0] != 1 || d.Labels[2] != 0 {
		t.Fatalf("labels = %v", d.Labels)
	}
	// windy false -> index 1.
	if d.X.At(0, 2) != 1 || d.X.At(1, 2) != 0 {
		t.Fatalf("windy encoding wrong: %v %v", d.X.At(0, 2), d.X.At(1, 2))
	}
	if d.FeatureNames[0] != "temperature" || d.FeatureNames[2] != "windy" {
		t.Fatalf("features = %v", d.FeatureNames)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadARFFQuotedAttributeName(t *testing.T) {
	in := "@relation r\n@attribute 'my attr' numeric\n@attribute class {a,b}\n@data\n1,a\n"
	d, err := ReadARFF(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	if d.FeatureNames[0] != "my attr" {
		t.Fatalf("quoted name = %q", d.FeatureNames[0])
	}
}

func TestReadARFFErrors(t *testing.T) {
	cases := map[string]string{
		"no data":         "@relation r\n@attribute a numeric\n@attribute c {x,y}\n@data\n",
		"no class":        "@relation r\n@attribute a numeric\n@attribute b numeric\n@data\n1,2\n",
		"missing value":   "@relation r\n@attribute a numeric\n@attribute c {x,y}\n@data\n?,x\n",
		"unknown class":   "@relation r\n@attribute a numeric\n@attribute c {x,y}\n@data\n1,z\n",
		"bad number":      "@relation r\n@attribute a numeric\n@attribute c {x,y}\n@data\nfoo,x\n",
		"short row":       "@relation r\n@attribute a numeric\n@attribute c {x,y}\n@data\n1\n",
		"bad type":        "@relation r\n@attribute a string\n@attribute c {x,y}\n@data\nhi,x\n",
		"too few attrs":   "@relation r\n@attribute c {x,y}\n@data\nx\n",
		"bad header line": "@relation r\nbogus\n@data\n",
		"empty nominal":   "@relation r\n@attribute a numeric\n@attribute c {}\n@data\n1,x\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadARFF(strings.NewReader(in), "x"); err == nil {
				t.Fatalf("expected error")
			}
		})
	}
}
