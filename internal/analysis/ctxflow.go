package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces context propagation in the serving layer and its CLI:
// a request's deadline only means anything if every stage of the request
// sees the same context. Two shapes break that chain:
//
//  1. context.Background() / context.TODO() in non-main, non-test code —
//     a fresh root context silently discards the caller's deadline and
//     cancellation, so ErrDeadline accounting stops matching what clients
//     asked for. Roots belong in func main (and tests), nowhere else.
//  2. an exported function that accepts a context.Context but hands a
//     different, underived context to a context-accepting call it makes —
//     the compiler is satisfied, the deadline is dropped.
//
// A context derived from the incoming one (context.WithTimeout(ctx, ...),
// context.WithCancel(ctx), or an alias) counts as propagation.
var CtxFlow = &Analyzer{
	Name:       "ctxflow",
	Family:     "type-aware",
	Doc:        "exported context-accepting functions in internal/serve and cmd/drtool must propagate their context; context roots only in main and tests",
	NeedsTypes: true,
	Run:        runCtxFlow,
}

// ctxFlowPackages are the import-path suffixes the rule applies to.
var ctxFlowPackages = []string{"internal/serve", "cmd/drtool"}

func runCtxFlow(pass *Pass) {
	applies := false
	for _, suffix := range ctxFlowPackages {
		if strings.HasSuffix(pass.Pkg.Path, suffix) {
			applies = true
		}
	}
	if !applies {
		return
	}
	info := pass.Pkg.TypesInfo
	for _, f := range pass.SourceFiles() {
		pkgIsMain := f.AST.Name.Name == "main"
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			isMain := pkgIsMain && fn.Recv == nil && fn.Name.Name == "main"
			if !isMain {
				reportContextRoots(pass, info, fn)
			}
			if fn.Name.IsExported() {
				checkCtxPropagation(pass, info, fn)
			}
		}
	}
}

// reportContextRoots flags context.Background()/TODO() calls anywhere in
// fn, including nested function literals.
func reportContextRoots(pass *Pass, info *types.Info, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := contextCallName(info, call); name == "Background" || name == "TODO" {
			pass.Reportf(call.Pos(),
				"context.%s() outside main/tests discards the caller's deadline and cancellation; accept and propagate a context.Context instead",
				name)
		}
		return true
	})
}

// checkCtxPropagation verifies that an exported function taking a
// context.Context passes that context (or a derivative) to every
// context-accepting call in its body.
func checkCtxPropagation(pass *Pass, info *types.Info, fn *ast.FuncDecl) {
	good := map[types.Object]bool{}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil && isContextType(obj.Type()) {
				good[obj] = true
			}
		}
	}
	if len(good) == 0 {
		return
	}

	// Grow the good set: aliases and derivations (ctx2, cancel :=
	// context.WithTimeout(ctx, d)) of a good context are good. Iterate to a
	// fixpoint so chains resolve regardless of order.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) == 0 {
				return true
			}
			derived := false
			if len(as.Rhs) == 1 {
				rhs := as.Rhs[0]
				if id, ok := rhs.(*ast.Ident); ok && good[identObj(info, id)] {
					derived = true
				}
				if call, ok := rhs.(*ast.CallExpr); ok && isGoodDerivation(info, call, good) {
					derived = true
				}
			}
			if !derived {
				return true
			}
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				obj := identObj(info, id)
				if obj != nil && !good[obj] && isContextType(obj.Type()) {
					good[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			t := info.TypeOf(arg)
			if t == nil || !isContextType(t) {
				continue
			}
			if isGoodCtxArg(info, arg, good) {
				continue
			}
			if name := contextCallName(info, arg.(ast.Expr)); name == "Background" || name == "TODO" {
				// Already reported as a context root.
				continue
			}
			pass.Reportf(arg.Pos(),
				"call passes a context that is not derived from %s's context parameter; the caller's deadline is dropped",
				fn.Name.Name)
		}
		return true
	})
}

// isGoodCtxArg reports whether arg is a good context: the parameter, an
// alias/derivative, or an inline derivation from one.
func isGoodCtxArg(info *types.Info, arg ast.Expr, good map[types.Object]bool) bool {
	switch x := arg.(type) {
	case *ast.Ident:
		return good[identObj(info, x)]
	case *ast.CallExpr:
		return isGoodDerivation(info, x, good)
	case *ast.ParenExpr:
		return isGoodCtxArg(info, x.X, good)
	}
	return false
}

// isGoodDerivation reports whether call is context.WithX(good, ...).
func isGoodDerivation(info *types.Info, call *ast.CallExpr, good map[types.Object]bool) bool {
	switch contextCallName(info, call) {
	case "WithCancel", "WithTimeout", "WithDeadline", "WithValue", "WithCancelCause", "WithTimeoutCause", "WithDeadlineCause", "WithoutCancel":
	default:
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	return isGoodCtxArg(info, call.Args[0], good)
}

// contextCallName returns the function name when e is a call into the
// context package ("Background", "WithTimeout", ...), else "".
func contextCallName(info *types.Info, e ast.Expr) string {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "context" {
		return ""
	}
	return sel.Sel.Name
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
