package analysis

import (
	"sort"
	"sync"
	"time"
)

// This file is the per-rule wall-clock accounting behind drlint's -timing
// flag. Collection is off by default so library callers and tests pay
// nothing; the CLI opts in once before its runs and reads the totals after.
// Compiler-witness rules share one `go build` per module (see witness.go),
// so the first witness rule to run absorbs the build cost in its total —
// the report is for spotting regressions, not for attributing shared work.

// RuleTiming is the accumulated wall-clock time one analyzer spent across
// every package (and module pass) of a run.
type RuleTiming struct {
	Rule    string
	Elapsed time.Duration
}

var ruleTimings struct {
	sync.Mutex
	enabled bool
	total   map[string]time.Duration
}

// EnableTimings turns on per-rule wall-clock collection for subsequent
// RunPackages/RunModule calls and clears any prior totals.
func EnableTimings() {
	ruleTimings.Lock()
	defer ruleTimings.Unlock()
	ruleTimings.enabled = true
	ruleTimings.total = map[string]time.Duration{}
}

// Timings returns the accumulated per-rule totals, slowest first (ties by
// name so output is stable). Empty unless EnableTimings was called.
func Timings() []RuleTiming {
	ruleTimings.Lock()
	defer ruleTimings.Unlock()
	out := make([]RuleTiming, 0, len(ruleTimings.total))
	for rule, d := range ruleTimings.total {
		out = append(out, RuleTiming{Rule: rule, Elapsed: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Elapsed != out[j].Elapsed {
			return out[i].Elapsed > out[j].Elapsed
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// timeRule runs fn, charging its wall-clock time to rule when collection is
// enabled. The enabled check is a locked bool read per analyzer per package
// — noise next to parsing and type-checking.
func timeRule(rule string, fn func()) {
	ruleTimings.Lock()
	enabled := ruleTimings.enabled
	ruleTimings.Unlock()
	if !enabled {
		fn()
		return
	}
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	ruleTimings.Lock()
	ruleTimings.total[rule] += elapsed
	ruleTimings.Unlock()
}
