package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix enforces the serving layer's snapshot/counter discipline: once
// any code path touches a struct field through sync/atomic operations
// (atomic.AddUint64(&s.epoch, 1), atomic.LoadPointer(&s.p), ...), every
// access to that field must be atomic. A plain read or write of the same
// field elsewhere is a data race the -race stress tests can only catch
// probabilistically — the exact bug class the engine avoids by construction
// with atomic.Pointer snapshots and atomic.Uint64 counters. Fields declared
// with the sync/atomic wrapper types are safe by construction (the type
// system forbids plain access); this rule covers the legacy pattern where a
// plain-typed field's address is passed to the atomic functions.
var AtomicMix = &Analyzer{
	Name:       "atomicmix",
	Family:     "type-aware",
	Doc:        "a struct field accessed with sync/atomic operations must never be read or written plainly",
	NeedsTypes: true,
	Run:        runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	info := pass.Pkg.TypesInfo
	files := pass.SourceFiles()

	// Pass 1: fields whose address is taken inside a sync/atomic call. The
	// selector nodes used in those calls are recorded so pass 2 does not
	// report the atomic sites themselves.
	atomicFields := map[*types.Var]token.Position{} // field -> first atomic site
	atomicSites := map[*ast.SelectorExpr]bool{}
	for _, f := range files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicPkgCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				fld := fieldObject(info, sel)
				if fld == nil {
					continue
				}
				if _, seen := atomicFields[fld]; !seen {
					atomicFields[fld] = pass.Pkg.Fset.Position(call.Pos())
				}
				atomicSites[sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: every other selector resolving to one of those fields is a
	// plain (non-atomic) access.
	for _, f := range files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSites[sel] {
				return true
			}
			fld := fieldObject(info, sel)
			if fld == nil {
				return true
			}
			site, ok := atomicFields[fld]
			if !ok {
				return true
			}
			pass.Reportf(sel.Pos(),
				"plain access to field %s, which is accessed atomically at %s:%d; every access must go through sync/atomic",
				fld.Name(), site.Filename, site.Line)
			return true
		})
	}
}

// isAtomicPkgCall reports whether call invokes a function of sync/atomic
// (alias-aware: the package identity comes from the type checker, not the
// identifier spelling).
func isAtomicPkgCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// fieldObject resolves sel to the struct field it selects, or nil when sel
// is not a field selection (package member, method value, ...).
func fieldObject(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
