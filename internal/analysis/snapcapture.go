package analysis

import (
	"go/ast"
	"go/types"
)

// SnapCapture enforces the snapshot-capture discipline in internal/serve:
// an atomic.Pointer field is a published snapshot, and correctness of a
// read path depends on every decision in that path seeing the SAME
// snapshot. Loading the pointer twice in one function scope is a
// time-of-check/time-of-use race — a concurrent publisher (compaction,
// rebuild, delta flush) can swap the snapshot between the two Loads, so
// the second Load observes different segments, counts, or tombstones than
// the first validated against.
//
// The rule counts Load() calls per (atomic.Pointer field, receiver
// expression) pair within the innermost function literal or declaration:
// the first Load captures the snapshot; every subsequent Load in the same
// scope is flagged. Separate closures are separate scopes — a worker
// goroutine legitimately re-Loads its own view. The fix is mechanical:
// Load once into a local, thread the local through.
var SnapCapture = &Analyzer{
	Name: "snapcapture",
	Doc: "in internal/serve an atomic.Pointer snapshot field must be Loaded at " +
		"most once per function scope; a second Load is a TOCTOU race",
	Family:     "determinism",
	NeedsTypes: true,
	Run:        runSnapCapture,
}

func runSnapCapture(pass *Pass) {
	if pass.Pkg.Path != modulePath+"/internal/serve" {
		return
	}
	info := pass.Pkg.TypesInfo
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSnapLoads(pass, info, fd.Body)
		}
	}
}

// checkSnapLoads walks one function scope. Nested function literals are
// their own scopes: the walk skips their bodies and recurses into each
// with a fresh seen map.
func checkSnapLoads(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	seen := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			checkSnapLoads(pass, info, fl.Body)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		field, recv := snapPointerLoad(info, call)
		if field == nil {
			return true
		}
		key := field.Pkg().Path() + "." + field.Name() + "\x00" + recv
		if seen[key] {
			pass.Reportf(call.Pos(), "second Load of atomic snapshot %s.%s in this scope is a TOCTOU race; Load once into a local and reuse it", recv, field.Name())
			return true
		}
		seen[key] = true
		return true
	})
}

// snapPointerLoad matches `X.field.Load()` where field's type is
// sync/atomic.Pointer[T] (or a named type wrapping it), returning the
// field object and a stable string form of X. Loads of local
// atomic.Pointer variables don't match: only shared struct fields race.
func snapPointerLoad(info *types.Info, call *ast.CallExpr) (*types.Var, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" || len(call.Args) != 0 {
		return nil, ""
	}
	fieldSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fsel, ok := info.Selections[fieldSel]
	if !ok || fsel.Kind() != types.FieldVal {
		return nil, ""
	}
	field, ok := fsel.Obj().(*types.Var)
	if !ok || !isAtomicPointer(field.Type()) {
		return nil, ""
	}
	return field, types.ExprString(ast.Unparen(fieldSel.X))
}

// isAtomicPointer reports whether t is sync/atomic.Pointer[T] (any
// instantiation, aliases resolved).
func isAtomicPointer(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Origin().Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}
