package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags the classic silent nondeterminism: iterating a map and
// letting the iteration order leak into an ordered artifact. Go randomizes
// map iteration per run, so a map-range value flowing into a returned or
// channel-sent slice, a knn.Collector offer, or a JSON encoding produces
// results that differ between identical executions — exactly what the
// bit-identity contracts (merge-equivalence, rebuild-equivalence, recall
// experiments) cannot tolerate.
//
// The accepted idiom is collect-then-sort: appending into a slice is fine
// when a recognized sort (sort.*, slices.Sort*, or a module Sort* helper
// like knn.SortNeighbors) runs on that slice after the loop. Commutative
// folds (sums, max, set membership) never flag — only flows into the three
// order-sensitive sinks do.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "map iteration order must not flow into returned/sent slices, " +
		"knn.Collector offers, or JSON encoding without an intervening sort",
	Family:     "determinism",
	NeedsTypes: true,
	Run:        runMapOrder,
}

func runMapOrder(pass *Pass) {
	info := pass.Pkg.TypesInfo
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapOrder(pass, info, fd)
		}
	}
}

func checkMapOrder(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	sinks := sinkVars(info, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		loopVars := rangeLoopVars(info, rs)
		if len(loopVars) == 0 {
			return true
		}
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.AssignStmt:
				checkMapAppend(pass, info, fd, rs, m, loopVars, sinks)
			case *ast.CallExpr:
				checkMapCall(pass, info, rs, m, loopVars)
			}
			return true
		})
		return true
	})
}

// rangeLoopVars returns the objects bound to the range's key and value.
func rangeLoopVars(info *types.Info, rs *ast.RangeStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// checkMapAppend flags `s = append(s, ...loopVar...)` inside a map range
// when s is a result sink (reaches a return or send) and no recognized
// sort runs on s after the loop.
func checkMapAppend(pass *Pass, info *types.Info, fd *ast.FuncDecl, rs *ast.RangeStmt, as *ast.AssignStmt, loopVars, sinks map[types.Object]bool) {
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			continue
		}
		if !exprReferences(info, call, loopVars) {
			continue
		}
		lhs, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := info.ObjectOf(lhs)
		if obj == nil || !sinks[obj] {
			continue
		}
		if sortedAfter(info, fd, obj, rs.End()) {
			continue
		}
		pass.Reportf(call.Pos(), "map iteration order flows into result slice %s without a sort; collect, then sort before returning or sending", lhs.Name)
	}
}

// checkMapCall flags order-sensitive calls fed by map-range variables:
// knn.Collector offers (insertion order decides ties) and JSON encoding.
func checkMapCall(pass *Pass, info *types.Info, rs *ast.RangeStmt, call *ast.CallExpr, loopVars map[types.Object]bool) {
	callee := calleeOf(info, call)
	if callee == nil {
		return
	}
	if !argsReference(info, call, loopVars) {
		return
	}
	full := callee.FullName()
	switch {
	case strings.HasSuffix(full, "/internal/knn.Collector).Offer"),
		strings.HasSuffix(full, "/internal/knn.Collector).Add"):
		pass.Reportf(call.Pos(), "map iteration order flows into %s; ties resolve by insertion order, so offer in a sorted or index order", callee.Name())
	case full == "encoding/json.Marshal", full == "encoding/json.MarshalIndent",
		full == "(*encoding/json.Encoder).Encode":
		pass.Reportf(call.Pos(), "map iteration order flows into JSON encoding via %s; collect into a sorted slice first", callee.Name())
	}
}

// sortedAfter reports whether a recognized sort call on obj appears after
// pos in fd's body — the collect-then-sort idiom.
func sortedAfter(info *types.Info, fd *ast.FuncDecl, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return true
		}
		callee := calleeOf(info, call)
		if callee == nil || !isSortFunc(callee) || len(call.Args) == 0 {
			return true
		}
		if exprReferencesObj(info, call.Args[0], obj) {
			found = true
		}
		return true
	})
	return found
}

// isSortFunc recognizes the stdlib sorters and any module helper whose
// name starts with Sort (knn.SortNeighbors and friends).
func isSortFunc(f *types.Func) bool {
	pkg := f.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "sort":
		switch f.Name() {
		case "Sort", "Stable", "Slice", "SliceStable", "Ints", "Strings", "Float64s":
			return true
		}
	case "slices":
		switch f.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return strings.HasPrefix(pkg.Path(), modulePath) && strings.HasPrefix(f.Name(), "Sort")
}

// exprReferences reports whether any identifier inside e resolves to one
// of the given objects.
func exprReferences(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// argsReference is exprReferences over a call's arguments only (the callee
// expression itself does not carry loop data).
func argsReference(info *types.Info, call *ast.CallExpr, objs map[types.Object]bool) bool {
	for _, a := range call.Args {
		if exprReferences(info, a, objs) {
			return true
		}
	}
	// A method receiver built from the loop variable is a flow too:
	// m[k].Offer(...) offers in map order.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if exprReferences(info, sel.X, objs) {
			return true
		}
	}
	return false
}

// exprReferencesObj is exprReferences for a single object.
func exprReferencesObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	return exprReferences(info, e, map[types.Object]bool{obj: true})
}
