package analysis

import (
	"go/token"
	"strings"
)

// ignorePrefix starts a suppression directive comment. The full form is
//
//	//drlint:ignore rule1[,rule2...] reason text
//
// placed either at the end of the offending line or on the line directly
// above it. The reason is required: a suppression without a recorded
// justification is itself a finding.
const ignorePrefix = "drlint:ignore"

// directive is one parsed //drlint:ignore comment.
type directive struct {
	rules  []string
	reason string
	line   int
	pos    token.Pos
}

func (d directive) covers(rule string) bool {
	for _, r := range d.rules {
		if r == rule {
			return true
		}
	}
	return false
}

// parseDirectives extracts every drlint:ignore directive in f, reporting
// malformed ones (no rule list or no reason) as findings in their own right
// so a bare, unjustified ignore cannot silently disable a rule.
func parseDirectives(pkg *Package, f File, report func(Diagnostic)) []directive {
	var out []directive
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
			fields := strings.Fields(rest)
			pos := pkg.Fset.Position(c.Pos())
			if len(fields) < 2 {
				report(Diagnostic{
					Pos:     pos,
					Rule:    "drlint",
					Message: "malformed //drlint:ignore directive: want `//drlint:ignore <rule>[,<rule>] <reason>` with a non-empty reason",
				})
				continue
			}
			out = append(out, directive{
				rules:  strings.Split(fields[0], ","),
				reason: strings.Join(fields[1:], " "),
				line:   pos.Line,
				pos:    c.Pos(),
			})
		}
	}
	return out
}

// filterIgnored removes diagnostics suppressed by a directive on the same
// line or the line above, and appends diagnostics for malformed directives.
// Suppressed findings are returned alongside the directive that silenced
// them, so baseline gating can flag redundant directives.
func filterIgnored(pkg *Package, diags []Diagnostic) ([]Diagnostic, []Suppressed) {
	// fileDirectives: filename -> directives in that file.
	fileDirectives := map[string][]directive{}
	var extra []Diagnostic
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.AST.Pos()).Filename
		fileDirectives[name] = parseDirectives(pkg, f, func(d Diagnostic) { extra = append(extra, d) })
	}
	out := diags[:0]
	var sup []Suppressed
	for _, d := range diags {
		suppressed := false
		for _, dir := range fileDirectives[d.Pos.Filename] {
			if dir.covers(d.Rule) && (dir.line == d.Pos.Line || dir.line == d.Pos.Line-1) {
				suppressed = true
				sup = append(sup, Suppressed{Diag: d, DirectivePos: pkg.Fset.Position(dir.pos)})
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return append(out, extra...), sup
}
