package analysis

import (
	"go/token"
	"strings"
)

// ignorePrefix starts a suppression directive comment. The full form is
//
//	//drlint:ignore rule1[,rule2...] reason text
//
// placed either at the end of the offending line or on the line directly
// above it. The reason is required: a suppression without a recorded
// justification is itself a finding.
const ignorePrefix = "drlint:ignore"

// directive is one parsed //drlint:ignore comment.
type directive struct {
	rules  []string
	reason string
	line   int
	pos    token.Pos
}

// ignoreParse classifies one comment's relation to the directive grammar.
type ignoreParse int

const (
	// notIgnore: the comment is not an ignore directive at all. This
	// includes tokens that merely share the prefix ("drlint:ignores",
	// "drlint:ignorefoo") — a directive is the exact word or nothing, so
	// prose mentioning the syntax can never silence a rule.
	notIgnore ignoreParse = iota
	// malformedIgnore: starts as a directive but violates the grammar
	// (no rule list, an empty rule element, or no reason).
	malformedIgnore
	// wellFormedIgnore: rules and reason both parsed.
	wellFormedIgnore
)

// parseIgnoreComment classifies raw comment text (leading "//" optional)
// against the grammar //drlint:ignore rule[,rule...] reason. It is a pure
// function of the text — no token positions, no package state — so the
// fuzzer drives it directly with arbitrary bytes.
func parseIgnoreComment(text string) (rules []string, reason string, res ignoreParse) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, ignorePrefix) {
		return nil, "", notIgnore
	}
	rest := text[len(ignorePrefix):]
	if rest != "" {
		if r := rest[0]; r != ' ' && r != '\t' {
			return nil, "", notIgnore
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil, "", malformedIgnore
	}
	rules = strings.Split(fields[0], ",")
	for _, r := range rules {
		if r == "" {
			return nil, "", malformedIgnore
		}
	}
	return rules, strings.Join(fields[1:], " "), wellFormedIgnore
}

func (d directive) covers(rule string) bool {
	for _, r := range d.rules {
		if r == rule {
			return true
		}
	}
	return false
}

// parseDirectives extracts every drlint:ignore directive in f, reporting
// malformed ones (no rule list or no reason) as findings in their own right
// so a bare, unjustified ignore cannot silently disable a rule.
func parseDirectives(pkg *Package, f File, report func(Diagnostic)) []directive {
	var out []directive
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			rules, reason, res := parseIgnoreComment(c.Text)
			if res == notIgnore {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			if res == malformedIgnore {
				report(Diagnostic{
					Pos:     pos,
					Rule:    "drlint",
					Message: "malformed //drlint:ignore directive: want `//drlint:ignore <rule>[,<rule>] <reason>` with a non-empty reason",
				})
				continue
			}
			out = append(out, directive{
				rules:  rules,
				reason: reason,
				line:   pos.Line,
				pos:    c.Pos(),
			})
		}
	}
	return out
}

// filterIgnored removes diagnostics suppressed by a directive on the same
// line or the line above, and appends diagnostics for malformed directives.
// Suppressed findings are returned alongside the directive that silenced
// them, so baseline gating can flag redundant directives.
func filterIgnored(pkg *Package, diags []Diagnostic) ([]Diagnostic, []Suppressed) {
	// fileDirectives: filename -> directives in that file.
	fileDirectives := map[string][]directive{}
	var extra []Diagnostic
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.AST.Pos()).Filename
		fileDirectives[name] = parseDirectives(pkg, f, func(d Diagnostic) { extra = append(extra, d) })
	}
	out := diags[:0]
	var sup []Suppressed
	for _, d := range diags {
		suppressed := false
		for _, dir := range fileDirectives[d.Pos.Filename] {
			if dir.covers(d.Rule) && (dir.line == d.Pos.Line || dir.line == d.Pos.Line-1) {
				suppressed = true
				sup = append(sup, Suppressed{Diag: d, DirectivePos: pkg.Fset.Position(dir.pos)})
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return append(out, extra...), sup
}
