package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file builds the module-local static call graph the dataflow rules
// (hotalloc, unsafelife) run over. Only statically resolvable edges are
// recorded: calls to package-level functions and to methods with a concrete
// receiver type, resolved through go/types object identity. Calls through
// interface values, function-typed variables, or method values are NOT
// followed — a documented gap shared with every context-insensitive static
// call graph; the rules that consume this graph say so in their docs.

// funcInfo is one function or method declared in a typed, non-test file.
type funcInfo struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// callGraph indexes every module function and its statically resolvable
// callees (module-internal only), in deterministic source order.
type callGraph struct {
	// funcs lists every declared function in package order, then file
	// order, then declaration order — the iteration order every consumer
	// uses, so findings come out deterministically.
	funcs []*funcInfo
	byObj map[*types.Func]*funcInfo
	// callees maps a function to the module functions it calls (deduped,
	// in first-call order). Calls inside nested FuncLits are attributed to
	// the enclosing declared function: a closure runs with its creator's
	// dynamic context, which is the approximation the hot-path and
	// lock-domination analyses want.
	callees map[*types.Func][]*types.Func
	// callers is the reverse adjacency of callees.
	callers map[*types.Func][]*types.Func
}

// buildCallGraph indexes the typed packages of the pass. Packages without
// type information (test-only packages) contribute nothing.
func buildCallGraph(pass *ModulePass) *callGraph {
	g := &callGraph{
		byObj:   map[*types.Func]*funcInfo{},
		callees: map[*types.Func][]*types.Func{},
		callers: map[*types.Func][]*types.Func{},
	}
	for _, pkg := range pass.Pkgs {
		if pkg.TypesInfo == nil {
			continue
		}
		for _, f := range pass.SourceFiles(pkg) {
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				fi := &funcInfo{obj: obj, decl: fd, pkg: pkg}
				g.funcs = append(g.funcs, fi)
				g.byObj[obj] = fi
			}
		}
	}
	for _, fi := range g.funcs {
		if fi.decl.Body == nil {
			continue
		}
		seen := map[*types.Func]bool{}
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(fi.pkg.TypesInfo, call)
			if callee == nil || g.byObj[callee] == nil || seen[callee] {
				return true
			}
			seen[callee] = true
			g.callees[fi.obj] = append(g.callees[fi.obj], callee)
			g.callers[callee] = append(g.callers[callee], fi.obj)
			return true
		})
	}
	return g
}

// calleeOf resolves a call expression to the *types.Func it statically
// invokes, or nil for dynamic calls (interface methods, func-typed values),
// builtins, and conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			f, _ := sel.Obj().(*types.Func)
			if f != nil && !isInterfaceMethod(f) {
				return f
			}
			return nil
		}
		// Qualified package function: pkg.Func.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isInterfaceMethod reports whether f is declared on an interface type —
// a dynamic dispatch site the static graph cannot follow.
func isInterfaceMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// reach returns every function reachable from the given roots along callee
// edges, mapped to the (qualified) name of the root that first reached it.
// Roots map to themselves, so annotated functions are in the result.
func (g *callGraph) reach(roots []*types.Func) map[*types.Func]string {
	out := map[*types.Func]string{}
	var queue []*types.Func
	for _, r := range roots {
		if _, ok := out[r]; ok {
			continue
		}
		out[r] = qualifiedName(r)
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, c := range g.callees[f] {
			if _, ok := out[c]; ok {
				continue
			}
			out[c] = out[f]
			queue = append(queue, c)
		}
	}
	return out
}

// qualifiedName renders a function as pkg.Func or pkg.(*Recv).Method for
// diagnostics, trimming the module path prefix.
func qualifiedName(f *types.Func) string {
	name := f.FullName()
	name = strings.ReplaceAll(name, modulePath+"/", "")
	return name
}
