package analysis

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzIgnoreDirective drives the //drlint:ignore grammar with arbitrary
// comment text. The directive parser is the one component of the linter
// that processes attacker-ish input (any comment in any analyzed file) and
// whose misreads are security-relevant in miniature: a comment that parses
// as a directive it shouldn't be silences a rule, and a directive that
// fails to parse reports a confusing finding. The invariants pinned here:
//
//   - the parser never panics, whatever the bytes;
//   - a well-formed parse yields at least one rule, no empty rule
//     element, no whitespace or comma inside a rule, and a non-blank
//     reason;
//   - canonical re-rendering of a well-formed parse reparses to the
//     identical rules and reason (round-trip stability);
//   - text whose token merely extends the prefix ("drlint:ignores ...")
//     is NOT a directive, so prose can never suppress a finding.
func FuzzIgnoreDirective(f *testing.F) {
	seeds := []string{
		"//drlint:ignore floatcmp tolerance set by the paper's table 2",
		"//drlint:ignore hotalloc,unsafelife two rules one reason",
		"//drlint:ignore",
		"// drlint:ignore   ",
		"//drlint:ignore floatcmp",
		"//drlint:ignorefoo bar baz",
		"//drlint:ignores the obvious",
		"//drlint:ignore a,,b double comma",
		"//drlint:ignore ,lead comma reason",
		"//drlint:ignore trail, comma reason",
		"//drlint:ignore rule\treason after tab",
		"//drlint:ignore rule\r\ncrlf tail",
		"//drlint:ignore règle süß unicode ✓ reason",
		"//drlint:ignore nbsp separated",
		"/*drlint:ignore block comment*/",
		"//   drlint:ignore spaced rule ok",
		"//drlint:ignore r \x00 nul reason",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		rules, reason, res := parseIgnoreComment(text)
		switch res {
		case notIgnore, malformedIgnore:
			if rules != nil || reason != "" {
				t.Fatalf("non-well-formed parse leaked data: rules=%q reason=%q", rules, reason)
			}
		case wellFormedIgnore:
			if len(rules) == 0 {
				t.Fatalf("well-formed directive with no rules: %q", text)
			}
			for _, r := range rules {
				if r == "" {
					t.Fatalf("empty rule element from %q", text)
				}
				if strings.ContainsRune(r, ',') {
					t.Fatalf("comma inside rule %q from %q", r, text)
				}
				for _, c := range r {
					if unicode.IsSpace(c) {
						t.Fatalf("whitespace inside rule %q from %q", r, text)
					}
				}
			}
			if strings.TrimSpace(reason) == "" {
				t.Fatalf("blank reason from %q", text)
			}
			canonical := "//drlint:ignore " + strings.Join(rules, ",") + " " + reason
			r2, why2, res2 := parseIgnoreComment(canonical)
			if res2 != wellFormedIgnore {
				t.Fatalf("canonical form %q did not reparse as well-formed", canonical)
			}
			if strings.Join(r2, "\x00") != strings.Join(rules, "\x00") || why2 != reason {
				t.Fatalf("round-trip drift: %q -> rules=%q reason=%q, reparsed rules=%q reason=%q",
					text, rules, reason, r2, why2)
			}
		default:
			t.Fatalf("unknown parse result %d", res)
		}
	})
}

// TestIgnorePrefixIsExactWord pins the fix for the prefix-match bug: a
// token that merely extends "drlint:ignore" used to parse as a directive
// with the first rule silently misread.
func TestIgnorePrefixIsExactWord(t *testing.T) {
	for _, text := range []string{
		"//drlint:ignorefoo bar reason",
		"//drlint:ignores everything here",
		"//drlint:ignore-this too",
	} {
		if _, _, res := parseIgnoreComment(text); res != notIgnore {
			t.Errorf("%q parsed as directive (res=%d), want notIgnore", text, res)
		}
	}
	for _, text := range []string{
		"//drlint:ignore a,,b reason",
		"//drlint:ignore ,a reason",
		"//drlint:ignore onlyrules",
		"//drlint:ignore",
	} {
		if _, _, res := parseIgnoreComment(text); res != malformedIgnore {
			t.Errorf("%q parsed as res=%d, want malformedIgnore", text, res)
		}
	}
	rules, reason, res := parseIgnoreComment("//drlint:ignore a,b  why  not")
	if res != wellFormedIgnore || strings.Join(rules, ",") != "a,b" || reason != "why not" {
		t.Errorf("got rules=%q reason=%q res=%d", rules, reason, res)
	}
}
