//go:build !amd64

package asmabi

// SumFloats is the portable twin of the amd64 dispatcher.
func SumFloats(x []float64) float64 {
	s := 0.0
	for _, f := range x {
		s += f
	}
	return s
}

// DriftTwin deliberately dropped a parameter relative to the amd64 side.
func DriftTwin(a, b uint64) uint64 { return a + b }

// Untested matches its amd64 signature exactly.
func Untested(v []uint32) uint64 {
	var s uint64
	for _, u := range v {
		s += uint64(u)
	}
	return s
}
