package asmabi

import "testing"

// TestSumFloatsParity references SumFloats directly, which is what the
// asmabi parity check looks for. Untested is deliberately absent here.
func TestSumFloatsParity(t *testing.T) {
	got := SumFloats([]float64{1, 2, 3})
	if got != 6 {
		t.Fatalf("SumFloats = %v, want 6", got)
	}
}
