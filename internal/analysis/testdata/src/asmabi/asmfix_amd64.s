// Deliberately broken fixture for the asmabi rule. Never assembled — the
// analyzer parses TEXT directives and FP references textually.
#include "textflag.h"

// sumAsm is correct on every axis: $0 frame, 32 argument bytes, FP offsets
// matching the ABI0 layout of func sumAsm(x []float64) float64.
TEXT ·sumAsm(SB), NOSPLIT, $0-32
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), CX
	XORPS X0, X0
	MOVSD X0, ret+24(FP)
	RET

// badFrame claims a 16-byte frame; kernels must be $0 NOSPLIT leaves.
TEXT ·badFrame(SB), NOSPLIT, $16-16
	MOVQ p+0(FP), SI
	MOVQ $0, ret+8(FP)
	RET

// badArgs under-declares the argument bytes (24 vs the 32 the three-param
// signature needs).
TEXT ·badArgs(SB), NOSPLIT, $0-24
	MOVQ a+0(FP), AX
	MOVQ AX, ret+24(FP)
	RET

// badOffset reads the slice length from the wrong word.
TEXT ·badOffset(SB), NOSPLIT, $0-32
	MOVQ v_base+0(FP), SI
	MOVQ v_len+16(FP), CX
	MOVQ $0, ret+24(FP)
	RET

// orphanKernel has no Go stub declaration at all.
TEXT ·orphanKernel(SB), NOSPLIT, $0-8
	RET
