package asmabi // want "TEXT ·orphanKernel has no Go asm stub declaration"

//go:noescape
func sumAsm(x []float64) float64

//go:noescape
func badFrame(p *byte) uint64 // want "frame size \$16"

//go:noescape
func badArgs(a, b, c uint64) uint64 // want "declares 24 argument bytes, Go signature needs 32"

//go:noescape
func badOffset(v []uint32) uint64 // want "v_len\+16\(FP\); ABI0 offset of v_len is 8"

//go:noescape
func noText(n int) int // want "no TEXT directive"

// SumFloats is referenced from unconstrained code, has a matching twin, and
// is referenced directly from the parity test: clean.
func SumFloats(x []float64) float64 { return sumAsm(x) }

// MissingTwin is referenced from unconstrained code but only exists here.
func MissingTwin(p *byte) uint64 { return badFrame(p) } // want "add a !amd64 twin"

// DriftTwin's fallback signature diverged from this one.
func DriftTwin(a, b, c uint64) uint64 { return badArgs(a, b, c) } // want "signature drifted"

// Untested has a faithful twin but no direct parity-test reference.
func Untested(v []uint32) uint64 { return badOffset(v) } // want "no direct parity-test reference"

func archOnlyHelper(n int) int { return noText(n) }
