// Package asmabi is a deliberately broken asm/stub pair exercising the
// asmabi rule: wrong frame size, wrong argument bytes, a bad FP offset, an
// orphan TEXT symbol, a missing TEXT directive, a missing !amd64 twin, a
// drifted twin signature, and a dispatcher with no parity-test reference.
package asmabi

// Sum is the portable entry point; referencing every dispatcher from this
// unconstrained file is what obliges each to exist on all architectures.
func Sum(x []float64, v []uint32, a, b, c uint64, p *byte) float64 {
	s := SumFloats(x)
	s += float64(DriftTwin(a, b, c))
	s += float64(Untested(v))
	s += float64(MissingTwin(p))
	return s
}
