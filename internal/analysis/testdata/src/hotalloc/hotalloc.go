// Package hotalloc exercises the hotalloc dataflow rule: functions
// annotated //drlint:hotpath and their transitive module callees must not
// allocate, while pool-backed scratch, cap-guarded growth, result
// materialization, and crash paths stay clean.
package hotalloc

import (
	"fmt"
	"strconv"
	"sync"
)

type scratch struct{ buf []float64 }

type vec struct{ x, y float64 }

var pool sync.Pool

func release() {}

func sink(v interface{}) { _ = v }

func freshFloats(n int) []float64 {
	out := make([]float64, n)
	return out
}

// dot is reached transitively from Accumulate and must stay clean too.
func dot(a, b []float64) float64 {
	var acc [4]float64 // fixed-size array: a value, not an allocation
	for i := range a {
		acc[i%4] += a[i] * b[i]
	}
	m := map[int]int{} // want "composite literal allocates"
	_ = m
	return acc[0] + acc[1] + acc[2] + acc[3]
}

// Accumulate is the annotated hot root.
//
//drlint:hotpath
func Accumulate(dst, src []float64) float64 {
	if len(dst) != len(src) {
		// The crash path is off the hot path by definition.
		panic(fmt.Sprintf("hotalloc: length mismatch %d != %d", len(dst), len(src)))
	}
	sc, _ := pool.Get().(*scratch)
	if sc == nil {
		sc = &scratch{buf: make([]float64, 0, 64)} // pool-miss refill is clean
	}
	if cap(sc.buf) < len(src) {
		sc.buf = make([]float64, len(src)) // cap-guarded growth is clean
	}
	total := dot(dst, src)
	tmp := make([]float64, len(src)) // want "make allocates each call"
	_ = tmp
	box := new(vec) // want "new allocates each call"
	_ = box
	lit := []int{1, 2, 3} // want "composite literal allocates"
	_ = lit
	ptr := &vec{x: 1} // want "composite literal allocates"
	_ = ptr
	v := vec{x: total}                // value composite: no allocation
	dst = append(dst, v.x)            // want "append may grow"
	defer release()                   // want "defer allocates"
	add := func() { total += dst[0] } // want "closure capture of"
	add()
	sink(total)         // want "boxes into interface"
	bs := []byte("key") // want "conversion copies and allocates"
	_ = bs
	name := strconv.Itoa(len(dst)) // want "call into strconv.Itoa may allocate"
	_ = name
	fresh := freshFloats(len(src)) // want "returns freshly allocated memory"
	_ = fresh
	pool.Put(sc)
	return total
}

// Snapshot materializes its result: allocations flowing into the return
// value are the caller's cost, not a hidden hot-path allocation.
//
//drlint:hotpath
func Snapshot(src []float64) []float64 {
	out := make([]float64, len(src))
	copy(out, src)
	return out
}

// Cold is unannotated and unreached from any hot root: it may allocate.
func Cold(n int) []int {
	tmp := make([]int, n)
	for i := range tmp {
		tmp[i] = i
	}
	return append(tmp, n)
}
