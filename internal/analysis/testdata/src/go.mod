// This nested module makes the witness-gate fixture packages buildable:
// the compiler-witness rules shell out to `go build` with diagnostic
// flags, and the fixture tests point that build at these directories. The
// parent module never sees this file — the go tool skips testdata trees.
module fixtures

go 1.22
