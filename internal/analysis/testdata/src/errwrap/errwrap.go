// Fixture for the errwrap rule: module sentinel errors are compared with
// errors.Is and wrapped with %w — never ==/!=, switch cases, or string
// matching on Error() text.
package errwrap

import (
	"errors"
	"fmt"
	"strings"
)

// The serving layer's sentinel family, redeclared in miniature.
var (
	ErrOverloaded = errors.New("engine overloaded")
	ErrDeadline   = errors.New("deadline exceeded")
)

func classify(err error) string {
	if err == ErrOverloaded { // want "sentinel ErrOverloaded compared with =="
		return "overloaded"
	}
	if ErrDeadline != err { // want "sentinel ErrDeadline compared with !="
		return "other"
	}
	return "deadline"
}

func classifySwitch(err error) string {
	switch err {
	case ErrOverloaded: // want "sentinel ErrOverloaded in a switch case"
		return "overloaded"
	default:
		return "other"
	}
}

func wrapBad() error {
	return fmt.Errorf("admission: %v", ErrOverloaded) // want "sentinel ErrOverloaded wrapped without %w"
}

func matchText(err error) bool {
	return strings.Contains(err.Error(), "overloaded") // want "string matching on Error\(\) text"
}

func compareText(err error) bool {
	return err.Error() == "engine overloaded" // want "string comparison on Error\(\) text"
}

// Good: errors.Is and %w keep the chain intact through wrapping.
func wrapGood(err error) error {
	if errors.Is(err, ErrDeadline) {
		return fmt.Errorf("request: %w", ErrDeadline)
	}
	return err
}
