// Fixture for the lockhold rule: no blocking operations while a
// sync.Mutex/RWMutex is held. Loaded with a pretend import path under
// internal/serve, where the rule applies.
package lockhold

import (
	"sync"
	"time"
)

type engine struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	state int
	ch    chan int
	wg    sync.WaitGroup
}

func (e *engine) slowUpdate() {
	e.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding mu"
	e.mu.Unlock()
}

// A deferred unlock keeps the mutex held through the receive — exactly the
// shape the rule exists for.
func (e *engine) deferRecv() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return <-e.ch // want "channel receive while holding mu"
}

func (e *engine) sendLocked(v int) {
	e.rw.RLock()
	e.ch <- v // want "channel send while holding rw"
	e.rw.RUnlock()
}

func (e *engine) joinLocked() {
	e.mu.Lock()
	e.wg.Wait() // want "sync Wait while holding mu"
	e.mu.Unlock()
}

func (e *engine) selectLocked() {
	e.mu.Lock()
	defer e.mu.Unlock()
	select { // want "select without a default case while holding mu"
	case v := <-e.ch:
		e.state = v
	case e.ch <- e.state:
	}
}

// Blocking propagates through same-package calls: drain blocks, so calling
// it under the lock is flagged.
func (e *engine) helperBlocked() {
	e.mu.Lock()
	e.drain() // want "call to blocking function drain while holding mu"
	e.mu.Unlock()
}

func (e *engine) drain() {
	for range e.ch {
	}
}

// Good: release before blocking.
func (e *engine) unlockThenRecv() int {
	e.mu.Lock()
	e.state++
	e.mu.Unlock()
	return <-e.ch
}

// Good: a select with a default case never blocks.
func (e *engine) tryReserve() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	select {
	case e.ch <- 1:
		return true
	default:
		return false
	}
}

// Good: every surviving branch releases the lock before the receive.
func (e *engine) branchRelease(fast bool) int {
	e.mu.Lock()
	if fast {
		e.mu.Unlock()
	} else {
		e.state++
		e.mu.Unlock()
	}
	return <-e.ch
}
