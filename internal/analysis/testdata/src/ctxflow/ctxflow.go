// Fixture for the ctxflow rule: context roots belong in main and tests
// only, and an exported function that accepts a context must hand that
// context (or a derivative) to the context-accepting calls it makes.
// Loaded with a pretend import path under internal/serve.
package ctxflow

import (
	"context"
	"time"
)

type engine struct{}

func (e *engine) search(ctx context.Context, k int) error { return ctx.Err() }

// A fresh root context discards the caller's deadline.
func Verify(e *engine) error {
	return e.search(context.Background(), 10) // want "context.Background\(\) outside main/tests"
}

func Drive(ctx context.Context, e *engine) error {
	return e.search(context.TODO(), 1) // want "context.TODO\(\) outside main/tests"
}

type server struct {
	base context.Context
}

// A stored context is not the caller's: the deadline is dropped even
// though the compiler is satisfied.
func (s *server) Run(ctx context.Context, e *engine) error {
	return e.search(s.base, 2) // want "not derived from Run's context parameter"
}

// Good: direct propagation.
func Exec(ctx context.Context, e *engine) error {
	return e.search(ctx, 4)
}

// Good: a derived context counts as propagation.
func ExecTimed(ctx context.Context, e *engine, d time.Duration) error {
	tctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	return e.search(tctx, 4)
}

// Good: inline derivation propagates too.
func ExecValue(ctx context.Context, e *engine) error {
	return e.search(context.WithValue(ctx, struct{}{}, 1), 4)
}
