package escapegate

type node struct{ v int }

var published *node

var captured *int

//drlint:hotpath
func hotEscape(vs []int) int {
	n := &node{v: len(vs)} // want "escapes to heap"
	published = n
	s := 0
	for _, v := range vs {
		s += v + n.v
	}
	return s
}

//drlint:hotpath
func hotMoved(vs []int) {
	total := 0 // want "local total is moved to the heap"
	for _, v := range vs {
		total += v
	}
	capture(&total)
}

func capture(p *int) { captured = p }

//drlint:hotpath
func hotClean(vs []int) int {
	acc := node{v: 1}
	s := 0
	for _, v := range vs {
		s += v * acc.v
	}
	return s
}

// Result materialization is exempt: the slice is the function's value.
//
//drlint:hotpath
func hotResult(vs []int) []int {
	out := make([]int, 0, len(vs))
	for _, v := range vs {
		out = append(out, v)
	}
	return out
}
