// Fixture for the dimguard analyzer. The test harness presents this
// package under the pretend import path repro/internal/linalg so the
// path-scoped rule applies.
package linalg

import "fmt"

// Dense is a minimal stand-in for the real matrix type.
type Dense struct {
	rows, cols int
	data       []float64
}

func (m *Dense) Rows() int           { return m.rows }
func (m *Dense) Cols() int           { return m.cols }
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }
func (m *Dense) RawRow(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols]
}

func checkLens(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("len %d vs %d", len(a), len(b)))
	}
}

// Bad indexes both vectors with no guard anywhere.
func Bad(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i] // want "indexes parameter"
	}
	return s
}

// GuardAfterUse validates too late: the first index precedes the check.
func GuardAfterUse(a, b []float64) float64 {
	s := a[0] * b[0] // want "indexes parameter"
	if len(a) != len(b) {
		panic("len")
	}
	return s
}

// MatBad reads matrix storage with no dimension check.
func MatBad(a, b *Dense) float64 {
	return a.At(0, 0) * b.At(0, 0) // want "indexes parameter"
}

// GoodHelper guards through the recognized helper.
func GoodHelper(a, b []float64) float64 {
	checkLens(a, b)
	return a[0] * b[0]
}

// GoodIf guards with an explicit length comparison.
func GoodIf(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("len")
	}
	return a[0] + b[0]
}

// MatGood compares dimensions up front.
func MatGood(a, b *Dense) float64 {
	if a.Cols() != b.Cols() {
		panic("dims")
	}
	return a.At(0, 0) * b.At(0, 0)
}

// MixedGood validates the vector against the matrix's dimension.
func MixedGood(m *Dense, q []float64) float64 {
	if len(q) != m.Cols() {
		panic("dims")
	}
	return m.RawRow(0)[0] * q[0]
}

// Delegate never indexes; the callee owns the guard.
func Delegate(a, b []float64) float64 {
	return GoodHelper(a, b)
}

// unexportedBad is out of scope: the rule covers the exported API surface.
func unexportedBad(a, b []float64) float64 {
	return a[0] * b[0]
}

// OneVector is out of scope: nothing to cross-validate.
func OneVector(a []float64) float64 {
	return a[0]
}

// Suppressed documents an intentionally unguarded kernel.
func Suppressed(a, b []float64) float64 {
	//drlint:ignore dimguard fixture: caller-validated hot kernel, guard hoisted by contract
	return a[0] * b[0]
}

// WrongRuleNamed shows a directive for a different rule does not suppress.
func WrongRuleNamed(a, b []float64) float64 {
	//drlint:ignore floatcmp fixture: names the wrong rule on purpose
	return a[0] * b[0] // want "indexes parameter"
}

// QuantBad is the quantized-store scan-kernel shape — float weights against
// uint8 codes — with no guard: code vectors carry per-dimension lengths
// that must agree with their float peers.
func QuantBad(t []float64, c []uint8) float64 {
	s := 0.0
	for i := range t {
		s += t[i] * float64(c[i]) // want "indexes parameter"
	}
	return s
}

// QuantGood guards the float/code pair before indexing (uint16 codes).
func QuantGood(t []float64, c []uint16) float64 {
	if len(t) != len(c) {
		panic("len")
	}
	return t[0] * float64(c[0])
}

// CodesBad: two byte slices are two vectors too.
func CodesBad(a, b []byte) int {
	return int(a[0]) + int(b[0]) // want "indexes parameter"
}

// CodeRowGood validates a code row against the matrix width before reading.
func CodeRowGood(m *Dense, c []uint8) float64 {
	if len(c) != m.Cols() {
		panic("dims")
	}
	return m.At(0, 0) * float64(c[0])
}
