// Package unsafeleak uses unsafe outside internal/store; the unsafelife
// rule flags every use regardless of provenance — zero-copy
// reinterpretation is confined to the store.
package unsafeleak

import "unsafe"

// Reinterpret is the kind of cast helper that must live in internal/store.
func Reinterpret(b []byte) []float64 {
	p := unsafe.Pointer(&b[0]) // want "unsafe.Pointer outside internal/store"
	n := len(b) / 8
	return unsafe.Slice((*float64)(p), n) // want "unsafe.Slice outside internal/store"
}
