// Fixture for the goroutinehygiene analyzer.
package fixtures

import "sync"

func work(i int) int { return i * i }

// leak: loop-spawned goroutines with no join whatsoever.
func leak(n int) {
	for i := 0; i < n; i++ {
		go work(i) // want "goroutine launched in a loop"
	}
}

// rangeLeak: the same over a range loop, goroutine body is a closure.
func rangeLeak(xs []int) {
	for _, x := range xs {
		go func(x int) { // want "goroutine launched in a loop"
			work(x)
		}(x)
	}
}

// waitGroupJoin is the canonical panel shape: Add before spawn, Done in the
// worker, Wait at the end.
func waitGroupJoin(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}

// channelJoin is the result-channel handshake: every worker sends exactly
// once and the function receives n times.
func channelJoin(n int) []int {
	ch := make(chan int)
	for i := 0; i < n; i++ {
		go func(i int) {
			ch <- work(i)
		}(i)
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, <-ch)
	}
	return out
}

// singleGoroutine is out of scope: not inside a loop.
func singleGoroutine() {
	done := make(chan struct{})
	go func() {
		work(1)
		close(done)
	}()
	<-done
}

// nestedLitLeak: the loop lives in a function literal; the literal is the
// function judged, and it joins nothing.
func nestedLitLeak(n int) func() {
	return func() {
		for i := 0; i < n; i++ {
			go work(i) // want "goroutine launched in a loop"
		}
	}
}

// nestedLitJoin: same shape, properly joined inside the literal.
func nestedLitJoin(n int) func() {
	return func() {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				work(i)
			}(i)
		}
		wg.Wait()
	}
}

// suppressedLeak documents deliberate fire-and-forget.
func suppressedLeak(n int) {
	for i := 0; i < n; i++ {
		//drlint:ignore goroutinehygiene fixture: fire-and-forget telemetry is acceptable here
		go work(i)
	}
}
