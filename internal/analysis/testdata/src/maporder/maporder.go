package maporder

import (
	"encoding/json"
	"sort"
)

type kv struct {
	K string
	V float64
}

func keysBad(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "map iteration order flows into result slice out"
	}
	return out
}

func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Commutative folds never flag: the sum is order-independent.
func sum(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// A local that never reaches a return or send is not an ordered artifact.
func localOnly(m map[string]int) bool {
	var tmp []int
	for _, v := range m {
		tmp = append(tmp, v)
	}
	nonEmpty := len(tmp) > 0
	return nonEmpty
}

func encodeBad(m map[string]float64, enc *json.Encoder) {
	for k, v := range m {
		_ = enc.Encode(kv{K: k, V: v}) // want "map iteration order flows into JSON encoding via Encode"
	}
}

func marshalBad(m map[string]int) []byte {
	var last []byte
	for k := range m {
		b, _ := json.Marshal(k) // want "map iteration order flows into JSON encoding via Marshal"
		last = b
	}
	return last
}
