// Fixture for the atomicmix rule: once a struct field's address is passed
// to sync/atomic, every access to that field must be atomic.
package atomicmix

import "sync/atomic"

type counterSet struct {
	served uint64
	epoch  uint64
	name   string // never touched atomically; plain access is fine
}

func (c *counterSet) record() {
	atomic.AddUint64(&c.served, 1)
	atomic.StoreUint64(&c.epoch, 7)
}

func (c *counterSet) snapshot() (uint64, string) {
	n := c.served // want "plain access to field served"
	c.epoch = 0   // want "plain access to field epoch"
	return n + atomic.LoadUint64(&c.epoch), c.name
}

// A justified directive suppresses the finding on its line.
func (c *counterSet) debugPeek() uint64 {
	return c.served //drlint:ignore atomicmix monitor-only read, torn values acceptable
}

// wrapped uses the sync/atomic wrapper types: safe by construction, the
// rule has nothing to say.
type wrapped struct {
	served atomic.Uint64
}

func (w *wrapped) bump() uint64 {
	w.served.Add(1)
	return w.served.Load()
}

// storeHandle mirrors the store-side lifecycle fields: a generation number
// bumped atomically on snapshot swap and a reader refcount. Once those
// addresses reach sync/atomic, a plain decrement or read races with them.
type storeHandle struct {
	epoch uint64
	refs  int64
}

func (h *storeHandle) acquire() {
	atomic.AddInt64(&h.refs, 1)
	atomic.StoreUint64(&h.epoch, 1)
}

func (h *storeHandle) release() {
	h.refs-- // want "plain access to field refs"
}

func (h *storeHandle) generation() uint64 {
	return h.epoch // want "plain access to field epoch"
}
