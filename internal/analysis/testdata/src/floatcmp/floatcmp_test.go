package fixtures

// Tests are exempt: asserting exact float equality against golden values is
// legitimate there, so nothing in this file may be reported.
func testOnlyExact(a, b float64) bool {
	return a == b && b != 3.25
}
