// Fixture for the floatcmp analyzer.
package fixtures

import "math"

type point struct {
	Dist float64
	Idx  int
}

type series struct {
	Vals []float64
}

func declaredFloat() float64 { return 0.5 }

// paramCompare: two float parameters compared exactly.
func paramCompare(a, b float64) bool {
	return a == b // want "floating-point =="
}

// indexedCompare: elements of []float64 parameters.
func indexedCompare(xs, ys []float64) bool {
	return xs[0] != ys[1] // want "floating-point !="
}

// fieldCompare: struct fields declared float64 in this package.
func fieldCompare(p, q point) bool {
	return p.Dist == q.Dist // want "floating-point =="
}

// sliceFieldCompare: indexing a []float64 struct field.
func sliceFieldCompare(s series) bool {
	return s.Vals[0] == 1.5 // want "floating-point =="
}

// arithmeticCompare: float-ness propagates through arithmetic.
func arithmeticCompare(a, b float64) bool {
	return a*2 == b+1.0 // want "floating-point =="
}

// mathCompare: math.* results are floats.
func mathCompare(x float64) bool {
	return math.Sqrt(x) == 2 // want "floating-point =="
}

// localInference: float-ness flows through := chains.
func localInference() bool {
	s := 0.5
	t := s * 3
	return t == 1 // want "floating-point =="
}

// funcResultCompare: same-package functions declared to return float64.
func funcResultCompare() bool {
	return declaredFloat() != 0.25 // want "floating-point !="
}

// rangeCompare: range values over []float64.
func rangeCompare(xs []float64) bool {
	for _, v := range xs {
		if v == 1.5 { // want "floating-point =="
			return true
		}
	}
	return false
}

// zeroGuard is allowed: exact zero is the degenerate-case idiom.
func zeroGuard(x float64) bool {
	return x == 0
}

// zeroFloatGuard: 0.0 spellings count as zero too.
func zeroFloatGuard(x float64) bool {
	return x != 0.0
}

// intCompare: integers are out of scope.
func intCompare(i, j int) bool {
	return i == j
}

// toleranceCompare is the approved pattern.
func toleranceCompare(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9
}

// orderedCompare: <, <=, >, >= are fine.
func orderedCompare(a, b float64) bool {
	return a < b || a >= b*2
}

// suppressedCompare documents an intentional exact comparison.
func suppressedCompare(a, b float64) bool {
	//drlint:ignore floatcmp fixture: exact tie-break on values copied from one computation
	return a == b
}
