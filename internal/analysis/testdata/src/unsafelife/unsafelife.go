// Package unsafelife exercises the unsafelife dataflow rule under the
// pretend import path repro/internal/store: mmap-derived views must not
// escape the region's guarded lifetime, and dereferences must be dominated
// by the owner's reader lock.
package unsafelife

import (
	"sync"
	"syscall"
	"unsafe"
)

// Leaked is a package-level escape target.
var Leaked []byte

// region owns a mapped range but carries no lock of its own; only the Mmap
// constructor may populate it.
type region struct {
	bytes []byte
}

// unguarded has no mutex: storing a view into it escapes the lifetime.
type unguarded struct {
	view []byte
}

// holder is built by wrap and retains whatever it is given.
type holder struct {
	view []byte
}

// Guarded owns the mapping lifetime behind a reader lock.
type Guarded struct {
	mu   sync.RWMutex
	data []byte
}

// mapRegion is the Mmap owner: wrapping the fresh mapping is its job.
func mapRegion(fd, n int) (region, error) {
	b, err := syscall.Mmap(fd, 0, n, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return region{}, err
	}
	return region{bytes: b}, nil
}

// castU32 reinterprets in place; its result aliases its argument, so taint
// flows through it by summary.
func castU32(b []byte) []uint32 {
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// wrap retains its argument in an unguarded struct.
func wrap(b []byte) *holder {
	return &holder{view: b}
}

// Open publishes the mapping into the guarded owner — and, wrongly, into
// every kind of escape hatch the rule knows about.
func Open(fd, n int) (*Guarded, error) {
	r, err := mapRegion(fd, n)
	if err != nil {
		return nil, err
	}
	g := &Guarded{data: r.bytes} // guarded owner: clean
	Leaked = r.bytes             // want "package-level"
	var u unguarded
	u.view = r.bytes // want "no mutex guarding"
	_ = u
	view := r.bytes
	go func() { // want "goroutine captures"
		_ = view[0]
	}()
	return g, nil
}

// View hands the raw mapping to callers; the lock cannot protect a caller
// that holds the slice after Close.
func (g *Guarded) View() []byte {
	return g.data // want "returns an mmap-backed view"
}

// Words reinterprets under the lock, but still returns the alias.
func (g *Guarded) Words() []uint32 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return castU32(g.data) // want "returns an mmap-backed view"
}

// At indexes the view without holding the lock on any path.
func (g *Guarded) At(i int) byte {
	return g.data[i] // want "without the owner's reader lock"
}

// Checked locks before dereferencing: clean.
func (g *Guarded) Checked(i int) byte {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.data[i]
}

// Sum locks and delegates; sum inherits coverage from its only caller.
func (g *Guarded) Sum() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.sum()
}

func (g *Guarded) sum() int {
	t := 0
	for i := range g.data {
		t += int(g.data[i])
	}
	return t
}

// publish passes the view to a retaining constructor whose result has no
// lifetime guard.
func (g *Guarded) publish() *holder {
	h := wrap(g.data) // want "retained by"
	return h
}
