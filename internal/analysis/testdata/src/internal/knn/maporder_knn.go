// Package knn is a miniature stand-in for the module's real knn package:
// it lives under testdata/src/internal/knn so the type-checked method
// (*Collector).Offer carries the "/internal/knn" path suffix maporder's
// sink matching keys on.
package knn

import "sort"

type Neighbor struct {
	Index int
	Dist  float64
}

type Collector struct{ ns []Neighbor }

func (c *Collector) Offer(i int, d float64) {
	c.ns = append(c.ns, Neighbor{Index: i, Dist: d})
}

func offerBad(c *Collector, m map[int]float64) {
	for i, d := range m {
		c.Offer(i, d) // want "map iteration order flows into Offer"
	}
}

func offerSortedKeys(c *Collector, m map[int]float64) {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		c.Offer(k, m[k])
	}
}
