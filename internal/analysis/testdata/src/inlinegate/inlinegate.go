package inlinegate

//drlint:hotpath
func hotCalls(vs []int) int {
	s := 0
	for _, v := range vs {
		s += small(v)
		s += walk(v, 3) // want "call to inlinegate\.walk is not inlined \(recursive\)"
	}
	return s
}

//drlint:hotpath inline=1
func budgeted(vs []int) int {
	s := 0
	for _, v := range vs {
		s += walk(v, 2)
	}
	return s
}

func small(v int) int { return v*2 + 1 }

//drlint:hotpath inline=lots // want "malformed //drlint:hotpath annotation"
func badBudget(vs []int) int {
	s := 0
	for _, v := range vs {
		s += walk(v, 1)
	}
	return s
}

// walk is recursive, so the compiler can never inline it.
func walk(v, n int) int {
	if n == 0 {
		return v
	}
	return walk(v+1, n-1)
}
