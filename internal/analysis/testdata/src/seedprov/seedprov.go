package seedprov

import (
	"math/rand"
	"os"
	"time"
)

type Config struct {
	Seed int64
}

// flagSeed stands in for a main-registered flag target.
var flagSeed int64

func fromConfig(cfg Config) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed))
}

func fromFlag() *rand.Rand {
	return rand.New(rand.NewSource(flagSeed))
}

func fromLiteral() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// splitmix-style derivation chains stay blessed as long as their leaves are.
func derived(cfg Config, shard int) *rand.Rand {
	s := splitmix(cfg.Seed + int64(shard))
	return rand.New(rand.NewSource(s))
}

func splitmix(seed int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return int64(z ^ (z >> 31))
}

func fromClock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seed derives from time\.UnixNano"
}

func fromPid() *rand.Rand {
	return rand.New(rand.NewSource(int64(os.Getpid()))) // want "seed derives from os\.Getpid"
}

func fromMap(m map[int64]bool) {
	for k := range m {
		_ = rand.NewSource(k) // want "seed derives from map iteration order"
	}
}

func fromChan(ch chan int64) {
	_ = rand.NewSource(<-ch) // want "seed derives from a channel receive"
}

func setSeedField(cfg *Config) {
	cfg.Seed = time.Now().UnixNano() // want "seed derives from time\.UnixNano"
}

func buildConfig() Config {
	return Config{Seed: time.Now().UnixNano()} // want "seed derives from time\.UnixNano"
}

// A module call binding a *seed* parameter is judged at the call site.
func useShard(cfg Config) {
	_ = rand.NewSource(splitmix(cfg.Seed))
	_ = rand.NewSource(splitmix(time.Now().Unix())) // want "seed derives from time\.Unix"
}

// Parameters are the caller's responsibility, judged where the value is bound.
func fromParam(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
