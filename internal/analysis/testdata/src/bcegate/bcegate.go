package bcegate

//drlint:hotpath
func gather(dst, src []float64, idx []int) {
	for i := range dst {
		j := idx[i]     // want "retained a bounds check \(IsInBounds\)"
		dst[i] = src[j] // want "retained a bounds check \(IsInBounds\)"
	}
}

//drlint:hotpath
func sum4(a, b []float64) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	for len(a) >= 4 && len(b) >= 4 {
		s0 += a[0] * b[0]
		s1 += a[1] * b[1]
		s2 += a[2] * b[2]
		s3 += a[3] * b[3]
		a, b = a[4:], b[4:]
	}
	s := (s0 + s2) + (s1 + s3)
	b = b[:len(a)]
	for i, av := range a {
		s += av * b[i]
	}
	return s
}
