package snapcapture

import "sync/atomic"

type snapshot struct {
	n     int
	epoch uint64
}

type Engine struct {
	snap  atomic.Pointer[snapshot]
	stats atomic.Pointer[snapshot]
}

func (e *Engine) doubleLoad() int {
	if e.snap.Load() == nil {
		return 0
	}
	return e.snap.Load().n // want "second Load of atomic snapshot e\.snap"
}

func (e *Engine) capture() int {
	s := e.snap.Load()
	if s == nil {
		return 0
	}
	return s.n
}

// Distinct fields are distinct snapshots; one Load each is fine.
func (e *Engine) distinctFields() (int, int) {
	a := e.snap.Load()
	b := e.stats.Load()
	if a == nil || b == nil {
		return 0, 0
	}
	return a.n, b.n
}

// Closures are their own scopes: a worker legitimately re-Loads its view.
func (e *Engine) perClosure() {
	work := func() int {
		s := e.snap.Load()
		if s == nil {
			return 0
		}
		return s.n
	}
	_ = work()
	_ = e.snap.Load()
}

func (e *Engine) tripleLoad() uint64 {
	first := e.snap.Load()
	if first == nil {
		return 0
	}
	second := e.snap.Load() // want "second Load of atomic snapshot e\.snap"
	_ = second
	return e.snap.Load().epoch // want "second Load of atomic snapshot e\.snap"
}
