package fixtures

import "math/rand"

// Tests are exempt: global draws and literal seeds are fine here, so no
// diagnostic is expected anywhere in this file.
func testOnlyGlobals() float64 {
	rand.Seed(1)
	return rand.Float64() + float64(rand.Intn(3))
}

func testOnlySeed() *rand.Rand {
	return rand.New(rand.NewSource(99))
}
