// Fixture for the globalrand analyzer.
package fixtures

import "math/rand"

// globalDraw uses the shared source: ordering-dependent, unseedable.
func globalDraw() float64 {
	return rand.Float64() // want "global"
}

// globalShuffle is the same problem through a different entry point.
func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global"
}

// hardcodedSeed pins a stream callers cannot vary.
func hardcodedSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want "hardcoded seed 42"
}

// negativeSeed is still a literal.
func negativeSeed() *rand.Rand {
	return rand.New(rand.NewSource(-7)) // want "hardcoded seed -7"
}

// threaded is the approved pattern: the seed flows in from the caller.
func threaded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// derived seeds computed from a threaded root seed are fine too.
func derived(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*6364136223846793005 + 1))
}

// injected draws through a caller-provided stream.
func injected(rng *rand.Rand) float64 {
	return rng.NormFloat64()
}

// shadowed: a local named rand is not the package.
func shadowed() float64 {
	rand := struct{ v float64 }{v: 1}
	return rand.v
}

// suppressed documents a deliberate fixed stream.
func suppressed() *rand.Rand {
	//drlint:ignore globalrand fixture: fixed stream is part of this function's contract
	return rand.New(rand.NewSource(7))
}
