package fixtures

import mr "math/rand"

// aliasedGlobal shows the import alias is tracked.
func aliasedGlobal() int {
	return mr.Intn(10) // want "global"
}
