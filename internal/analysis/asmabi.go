package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// AsmABI cross-checks the hand-written amd64 assembly kernels against their
// Go declarations, on three axes:
//
//   - Every bodyless func in an amd64-gated file must have a matching
//     `TEXT ·name(SB)` in one of the package's .s files, with a $0 frame
//     (the kernels are NOSPLIT leaves), an argument-bytes annotation equal
//     to the ABI0 layout computed from the Go signature, and every named
//     FP reference (name+off, name_base/name_len/name_cap for slices)
//     resolving to the correct offset. Orphan TEXT symbols with no Go
//     declaration are flagged too.
//   - Every bodied function in an amd64-gated file that is referenced from
//     unconstrained files must have a build-tag-paired !amd64 twin with a
//     byte-identical signature, so the module keeps compiling (and behaving)
//     on other architectures.
//   - Every twin-paired dispatcher must be referenced directly from a
//     package test file: the forced-generic parity tests are the only thing
//     asserting that asm and fallback agree, so an untested dispatcher is a
//     silent drift channel.
//
// Findings are always anchored at Go-side positions (the stub, the
// dispatcher, or the arch file's package clause) — .s files cannot carry
// suppression directives. The rule is inert when the analysis itself runs on
// a non-amd64 host, where the amd64-gated files are not loaded.
var AsmABI = &Analyzer{
	Name: "asmabi",
	Doc: "amd64 asm kernels must match their Go stubs (frame size, argument bytes, FP " +
		"offsets) and every asm-backed dispatcher needs a signature-identical !amd64 twin " +
		"plus a direct parity-test reference",
	Family:     "dataflow",
	NeedsTypes: true,
	Run:        runAsmABI,
}

var (
	textDirectiveRE = regexp.MustCompile(`^TEXT\s+·([A-Za-z0-9_]+)\(SB\)\s*,\s*(?:[A-Z0-9|]+\s*,\s*)?\$(-?\d+)(?:-(\d+))?`)
	fpRefRE         = regexp.MustCompile(`([A-Za-z_][A-Za-z0-9_]*)\+(\d+)\(FP\)`)
)

// asmSymbol is one TEXT block parsed from a .s file.
type asmSymbol struct {
	name     string
	frame    int64
	argBytes int64 // -1 when the $frame-argbytes annotation omits the size
	fpRefs   []fpRef
}

type fpRef struct {
	name string
	off  int64
}

func runAsmABI(pass *Pass) {
	if runtime.GOARCH != "amd64" {
		return
	}
	pkg := pass.Pkg
	if len(pkg.Files) == 0 {
		return
	}
	dir := filepath.Dir(pkg.Files[0].Name)

	symbols := parseAsmDir(dir)
	archFiles, stubs, dispatchers := collectArchDecls(pkg)
	if len(symbols) == 0 && len(stubs) == 0 && len(dispatchers) == 0 {
		return
	}
	sizes := types.SizesFor("gc", "amd64")
	stubNames := map[string]bool{}
	for _, stub := range stubs {
		stubNames[stub.decl.Name.Name] = true
	}

	// Stub-side checks: TEXT present, frame $0, argument bytes, FP offsets.
	for _, stub := range stubs {
		sym, ok := symbols[stub.decl.Name.Name]
		if !ok {
			pass.Reportf(stub.decl.Pos(), "asm stub %s has no TEXT directive in any %s .s file", stub.decl.Name.Name, filepath.Base(dir))
			continue
		}
		layout := stubLayout(pkg, stub.decl, sizes)
		if layout == nil {
			continue // no type info for the stub; typecheck diagnostics cover it
		}
		if sym.frame != 0 {
			pass.Reportf(stub.decl.Pos(), "TEXT ·%s frame size $%d; kernels are NOSPLIT leaves and must use $0", sym.name, sym.frame)
		}
		if sym.argBytes < 0 {
			pass.Reportf(stub.decl.Pos(), "TEXT ·%s omits the argument-bytes annotation; want $0-%d", sym.name, layout.argBytes)
		} else if sym.argBytes != layout.argBytes {
			pass.Reportf(stub.decl.Pos(), "TEXT ·%s declares %d argument bytes, Go signature needs %d", sym.name, sym.argBytes, layout.argBytes)
		}
		for _, ref := range sym.fpRefs {
			want, err := layout.resolve(ref.name)
			if err != "" {
				pass.Reportf(stub.decl.Pos(), "TEXT ·%s references %s+%d(FP): %s", sym.name, ref.name, ref.off, err)
				continue
			}
			if want != ref.off {
				pass.Reportf(stub.decl.Pos(), "TEXT ·%s references %s+%d(FP); ABI0 offset of %s is %d", sym.name, ref.name, ref.off, ref.name, want)
			}
		}
	}

	// Orphan TEXT symbols: no bodyless Go declaration. Anchored at the arch
	// file's package clause, the closest Go-side position there is.
	if len(archFiles) > 0 {
		var orphans []string
		for name := range symbols {
			if !stubNames[name] {
				orphans = append(orphans, name)
			}
		}
		sort.Strings(orphans)
		anchor := archFiles[0].AST.Name.Pos()
		for _, name := range orphans {
			pass.Reportf(anchor, "TEXT ·%s has no Go asm stub declaration in this package", name)
		}
	}

	// Twin + parity checks for asm-backed dispatchers referenced from
	// unconstrained code.
	referenced, testRefs := referenceSets(pkg)
	twins := parseExcludedDecls(pkg, dir)
	for _, d := range dispatchers {
		name := d.decl.Name.Name
		if !referenced[name] {
			continue // arch-internal helper; nothing outside amd64 needs it
		}
		twin, ok := twins[name]
		if !ok {
			pass.Reportf(d.decl.Pos(), "%s is amd64-only but referenced from unconstrained code; add a !amd64 twin with the same signature", name)
			continue
		}
		got := types.ExprString(d.decl.Type)
		want := types.ExprString(twin.Type)
		if got != want {
			pass.Reportf(d.decl.Pos(), "%s signature drifted from its !amd64 twin: amd64 %s, fallback %s", name, got, want)
			continue
		}
		if !testRefs[name] {
			pass.Reportf(d.decl.Pos(), "%s has no direct parity-test reference; add a forced-generic comparison test", name)
		}
	}
}

type archStub struct {
	decl *ast.FuncDecl
	file File
}

// collectArchDecls splits the loaded package's amd64-gated non-test files
// into bodyless asm stubs and bodied dispatchers, in declaration order.
func collectArchDecls(pkg *Package) (archFiles []File, stubs, dispatchers []archStub) {
	for _, f := range pkg.Files {
		if f.Test || !fileIsAmd64Gated(f) {
			continue
		}
		archFiles = append(archFiles, f)
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			if fd.Body == nil {
				stubs = append(stubs, archStub{decl: fd, file: f})
			} else {
				dispatchers = append(dispatchers, archStub{decl: fd, file: f})
			}
		}
	}
	return archFiles, stubs, dispatchers
}

// fileIsAmd64Gated reports whether the file only builds on amd64, via the
// _amd64 filename suffix or a //go:build constraint that matches amd64 and
// not arm64.
func fileIsAmd64Gated(f File) bool {
	base := strings.TrimSuffix(filepath.Base(f.Name), ".go")
	if strings.HasSuffix(base, "_amd64") {
		return true
	}
	expr := buildConstraintExpr(f.AST)
	if expr == nil {
		return false
	}
	return evalConstraintForArch(expr, "amd64") && !evalConstraintForArch(expr, "arm64")
}

// buildConstraintExpr extracts the //go:build expression from a parsed file.
func buildConstraintExpr(f *ast.File) constraint.Expr {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if constraint.IsGoBuild(c.Text) {
				expr, err := constraint.Parse(c.Text)
				if err == nil {
					return expr
				}
			}
		}
	}
	return nil
}

func evalConstraintForArch(expr constraint.Expr, arch string) bool {
	return expr.Eval(func(tag string) bool {
		return tag == arch || tag == "linux" || tag == "gc"
	})
}

// referenceSets scans identifiers in the package's unconstrained files:
// referenced holds every name used outside amd64-gated files (so it must
// exist on all architectures); testRefs holds names used directly in test
// files (parity coverage).
func referenceSets(pkg *Package) (referenced, testRefs map[string]bool) {
	referenced = map[string]bool{}
	testRefs = map[string]bool{}
	for _, f := range pkg.Files {
		gated := fileIsAmd64Gated(f)
		if gated && !f.Test {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if !gated {
				referenced[id.Name] = true
			}
			if f.Test {
				testRefs[id.Name] = true
			}
			return true
		})
	}
	return referenced, testRefs
}

// parseExcludedDecls parses the package directory's .go files that the
// loader excluded on this platform (the !amd64 twins live there) and returns
// their bodied top-level functions by name.
func parseExcludedDecls(pkg *Package, dir string) map[string]*ast.FuncDecl {
	loaded := map[string]bool{}
	for _, f := range pkg.Files {
		loaded[filepath.Base(f.Name)] = true
	}
	out := map[string]*ast.FuncDecl{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return out
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || loaded[name] {
			continue
		}
		af, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil || af.Name.Name != pkg.Files[0].AST.Name.Name {
			continue
		}
		for _, decl := range af.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Body != nil {
				out[fd.Name.Name] = fd
			}
		}
	}
	return out
}

// parseAsmDir scans every .s file in dir for TEXT blocks and their FP
// references. Comments are stripped; file-local symbols (name<>) and
// GLOBL/DATA directives are ignored.
func parseAsmDir(dir string) map[string]*asmSymbol {
	out := map[string]*asmSymbol{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return out
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".s") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		var cur *asmSymbol
		for _, line := range strings.Split(string(data), "\n") {
			if i := strings.Index(line, "//"); i >= 0 {
				line = line[:i]
			}
			line = strings.TrimSpace(line)
			if m := textDirectiveRE.FindStringSubmatch(line); m != nil {
				frame, _ := strconv.ParseInt(m[2], 10, 64)
				argBytes := int64(-1)
				if m[3] != "" {
					argBytes, _ = strconv.ParseInt(m[3], 10, 64)
				}
				cur = &asmSymbol{name: m[1], frame: frame, argBytes: argBytes}
				out[cur.name] = cur
				continue
			}
			if strings.HasPrefix(line, "TEXT") {
				cur = nil // file-local or unparsable TEXT: stop attributing refs
				continue
			}
			if cur == nil {
				continue
			}
			for _, m := range fpRefRE.FindAllStringSubmatch(line, -1) {
				off, _ := strconv.ParseInt(m[2], 10, 64)
				cur.fpRefs = append(cur.fpRefs, fpRef{name: m[1], off: off})
			}
		}
	}
	return out
}

// abiLayout is the ABI0 argument frame computed from a Go signature: every
// parameter packed with natural alignment, results starting 8-aligned after
// the parameters, total rounded up to 8.
type abiLayout struct {
	offsets  map[string]int64
	sliceish map[string]bool // slice or string: has _len
	capable  map[string]bool // slice: has _cap
	argBytes int64
}

func stubLayout(pkg *Package, fd *ast.FuncDecl, sizes types.Sizes) *abiLayout {
	if pkg.TypesInfo == nil {
		return nil
	}
	obj, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return nil
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	l := &abiLayout{offsets: map[string]int64{}, sliceish: map[string]bool{}, capable: map[string]bool{}}
	off := int64(0)
	place := func(name string, t types.Type) {
		off = alignTo(off, sizes.Alignof(t))
		if name != "" && name != "_" {
			l.offsets[name] = off
			switch t.Underlying().(type) {
			case *types.Slice:
				l.sliceish[name] = true
				l.capable[name] = true
			case *types.Basic:
				if t.Underlying().(*types.Basic).Info()&types.IsString != 0 {
					l.sliceish[name] = true
				}
			}
		}
		off += sizes.Sizeof(t)
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		place(params.At(i).Name(), params.At(i).Type())
	}
	off = alignTo(off, 8)
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		name := results.At(i).Name()
		if name == "" {
			if results.Len() == 1 {
				name = "ret"
			} else {
				name = fmt.Sprintf("ret%d", i)
			}
		}
		place(name, results.At(i).Type())
	}
	l.argBytes = alignTo(off, 8)
	return l
}

func alignTo(off, a int64) int64 {
	if a <= 0 {
		return off
	}
	return (off + a - 1) / a * a
}

// resolve maps an FP symbol name to its expected offset: a plain parameter
// name addresses its first word; name_base/name_len/name_cap address slice
// header words.
func (l *abiLayout) resolve(name string) (int64, string) {
	if off, ok := l.offsets[name]; ok {
		return off, ""
	}
	for suffix, extra := range map[string]int64{"_base": 0, "_len": 8, "_cap": 16} {
		if !strings.HasSuffix(name, suffix) {
			continue
		}
		base := strings.TrimSuffix(name, suffix)
		off, ok := l.offsets[base]
		if !ok {
			break
		}
		switch suffix {
		case "_len":
			if !l.sliceish[base] {
				return 0, fmt.Sprintf("%s is not a slice or string; %s has no length word", base, name)
			}
		case "_cap":
			if !l.capable[base] {
				return 0, fmt.Sprintf("%s is not a slice; %s has no capacity word", base, name)
			}
		}
		return off + extra, ""
	}
	return 0, "no parameter or result of this name in the Go stub signature"
}
