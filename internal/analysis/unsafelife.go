package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// UnsafeLife tracks zero-copy views derived from mmap'd regions. The store
// maps column files and reinterprets the bytes in place (unsafe.Slice /
// unsafe.Pointer casts); any such view is only valid while the mapping is
// alive, and the mapping's lifetime is guarded by the owning struct's reader
// lock. The rule enforces three contracts:
//
//   - Confinement: unsafe.Pointer / unsafe.Slice may only appear in
//     internal/store. Anywhere else, zero-copy reinterpretation is a
//     lifetime bug waiting to happen and is flagged outright.
//   - Escape: a value tainted by syscall.Mmap (directly or through cast
//     helpers, slicing, or alias-returning functions) must not be returned
//     from an exported function, stored in a package-level variable, stored
//     into a struct with no mutex guarding its lifetime, passed to a
//     function that retains it in an unguarded struct, or captured by a
//     goroutine.
//   - Liveness: any function that indexes or reslices a tainted view must
//     hold the owner's lock — directly, by being a constructor that has not
//     published the owner yet, or by being reachable only from functions
//     that do.
//
// The function that calls syscall.Mmap itself (the region owner's
// constructor) is exempt: wrapping the fresh mapping is its job. Taint flows
// context-insensitively through the module call graph via one-hop summaries
// (result-aliases-parameter, retains-parameter), so helpers like castF64 or
// Dense.RawRow propagate taint without special cases. Scalar element reads
// drop taint. Calls through interfaces are not followed (documented gap
// shared with hotalloc).
var UnsafeLife = &Analyzer{
	Name: "unsafelife",
	Doc: "mmap-derived zero-copy views must stay confined to internal/store, must not " +
		"escape the region's lifetime, and must only be dereferenced under the owner's reader lock",
	Family:     "dataflow",
	NeedsTypes: true,
	RunModule:  runUnsafeLife,
}

const storePkgPath = modulePath + "/internal/store"

func isStorePkg(path string) bool {
	return path == storePkgPath || strings.HasPrefix(path, storePkgPath+"/")
}

func runUnsafeLife(pass *ModulePass) {
	// Confinement: unsafe selectors outside internal/store.
	for _, pkg := range pass.Pkgs {
		if pkg.TypesInfo == nil || isStorePkg(pkg.Path) {
			continue
		}
		for _, f := range pass.SourceFiles(pkg) {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := pkg.TypesInfo.Uses[id].(*types.PkgName)
				if !ok || pn.Imported().Path() != "unsafe" {
					return true
				}
				pass.Reportf(pkg, sel.Pos(), "unsafe.%s outside internal/store: zero-copy reinterpretation of mapped memory is confined to internal/store", sel.Sel.Name)
				return true
			})
		}
	}

	g := buildCallGraph(pass)
	uc := &unsafeChecker{
		pass:      pass,
		g:         g,
		facts:     computeFuncFacts(g),
		owners:    map[*types.Func]bool{},
		fields:    map[*types.Var]bool{},
		params:    map[*types.Func]map[int]bool{},
		results:   map[*types.Func]bool{},
		vars:      map[*types.Func]map[types.Object]bool{},
		storePkgs: map[*types.Package]bool{},
	}
	for _, pkg := range pass.Pkgs {
		if isStorePkg(pkg.Path) && pkg.Types != nil {
			uc.storePkgs[pkg.Types] = true
		}
	}
	for _, fi := range g.funcs {
		if !isStorePkg(fi.pkg.Path) || fi.decl.Body == nil {
			continue
		}
		uc.storeFns = append(uc.storeFns, fi)
		if containsMmapCall(fi) {
			uc.owners[fi.obj] = true
		}
	}
	if len(uc.storeFns) == 0 {
		return
	}
	for iter := 0; iter < 12; iter++ {
		uc.changed = false
		for _, fi := range uc.storeFns {
			uc.propagate(fi)
		}
		if !uc.changed {
			break
		}
	}
	uc.report()
}

type unsafeChecker struct {
	pass     *ModulePass
	g        *callGraph
	facts    map[*types.Func]*funcFacts
	storeFns []*funcInfo

	owners    map[*types.Func]bool                  // functions calling syscall.Mmap: region constructors, exempt
	fields    map[*types.Var]bool                   // tainted struct fields (store-defined structs only)
	params    map[*types.Func]map[int]bool          // tainted parameters (receiver -1), context-insensitive
	results   map[*types.Func]bool                  // functions returning tainted values
	vars      map[*types.Func]map[types.Object]bool // tainted locals per function
	storePkgs map[*types.Package]bool               // type-level identities of the store packages
	changed   bool
}

func containsMmapCall(fi *funcInfo) bool {
	found := false
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isSyscallMmap(fi.pkg.TypesInfo, call) {
			found = true
		}
		return true
	})
	return found
}

func isSyscallMmap(info *types.Info, call *ast.CallExpr) bool {
	f := calleeOf(info, call)
	return f != nil && f.FullName() == "syscall.Mmap"
}

// pointerLike reports whether values of t carry a reference to backing
// memory (slices, pointers, unsafe.Pointer). Scalars copied out of a view
// drop taint.
func pointerLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Pointer:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func (uc *unsafeChecker) localVars(f *types.Func) map[types.Object]bool {
	m := uc.vars[f]
	if m == nil {
		m = map[types.Object]bool{}
		uc.vars[f] = m
	}
	return m
}

func (uc *unsafeChecker) paramSet(f *types.Func) map[int]bool {
	m := uc.params[f]
	if m == nil {
		m = map[int]bool{}
		uc.params[f] = m
	}
	return m
}

// tainted evaluates whether expr may hold mmap-derived memory under the
// current (partially converged) facts.
func (uc *unsafeChecker) tainted(fi *funcInfo, e ast.Expr) bool {
	info := fi.pkg.TypesInfo
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return false
		}
		if uc.localVars(fi.obj)[obj] {
			return true
		}
		if i, isParam := paramIndexOf(fi, obj); isParam {
			return uc.paramSet(fi.obj)[i]
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if fv, ok := sel.Obj().(*types.Var); ok && uc.fields[fv] {
				return true
			}
		}
	case *ast.SliceExpr:
		return uc.tainted(fi, e.X)
	case *ast.StarExpr:
		return uc.tainted(fi, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if ix, ok := ast.Unparen(e.X).(*ast.IndexExpr); ok {
				return uc.tainted(fi, ix.X)
			}
			return uc.tainted(fi, e.X)
		}
	case *ast.CallExpr:
		if isSyscallMmap(info, e) {
			return true
		}
		// Conversions ((*float64)(p), unsafe.Pointer(x), mytype(v)).
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return uc.tainted(fi, e.Args[0])
		}
		// unsafe.Slice / unsafe.SliceData / unsafe.Add on tainted inputs.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "unsafe" {
					for _, a := range e.Args {
						if uc.tainted(fi, a) {
							return true
						}
					}
					return false
				}
			}
		}
		callee := calleeOf(info, e)
		if callee == nil || uc.g.byObj[callee] == nil {
			return false
		}
		// A call producing a scalar cannot carry the view out, whatever its
		// arguments alias (tuple results are filtered per-value at the
		// assignment).
		if tv, ok := info.Types[e]; ok && tv.Type != nil {
			if _, isTuple := tv.Type.(*types.Tuple); !isTuple && !pointerLike(tv.Type) {
				return false
			}
		}
		if uc.results[callee] {
			return true
		}
		f := uc.facts[callee]
		if f == nil {
			return false
		}
		if f.aliasParams[-1] {
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && uc.tainted(fi, sel.X) {
				return true
			}
		}
		for i, a := range e.Args {
			if (f.aliasParams[i] || f.retainsParams[i]) && pointerLike(info.Types[a].Type) && uc.tainted(fi, a) {
				return true
			}
		}
	}
	return false
}

// propagate runs one intra-procedural pass over fi, folding new taint into
// the global maps.
func (uc *unsafeChecker) propagate(fi *funcInfo) {
	info := fi.pkg.TypesInfo
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			uc.propagateAssign(fi, n)
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || !uc.tainted(fi, kv.Value) {
					continue
				}
				if fv, ok := info.Uses[key].(*types.Var); ok {
					uc.taintField(fv)
				}
			}
		case *ast.CallExpr:
			callee := calleeOf(info, n)
			if callee == nil || uc.g.byObj[callee] == nil {
				return true
			}
			for i, a := range n.Args {
				if pointerLike(info.Types[a].Type) && uc.tainted(fi, a) {
					uc.taintParam(callee, i)
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil && uc.tainted(fi, sel.X) {
					uc.taintParam(callee, -1)
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if pointerLike(info.Types[r].Type) && uc.tainted(fi, r) && !uc.results[fi.obj] {
					uc.results[fi.obj] = true
					uc.changed = true
				}
			}
		}
		return true
	})
}

func (uc *unsafeChecker) propagateAssign(fi *funcInfo, as *ast.AssignStmt) {
	info := fi.pkg.TypesInfo
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		if uc.tainted(fi, as.Rhs[0]) {
			for _, lhs := range as.Lhs {
				uc.taintLHS(fi, lhs)
			}
		}
		return
	}
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		if uc.tainted(fi, rhs) {
			uc.taintLHS(fi, as.Lhs[i])
		}
	}
	_ = info
}

func (uc *unsafeChecker) taintLHS(fi *funcInfo, lhs ast.Expr) {
	info := fi.pkg.TypesInfo
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := info.ObjectOf(lhs)
		if obj == nil || !pointerLike(obj.Type()) {
			return
		}
		m := uc.localVars(fi.obj)
		if !m[obj] {
			m[obj] = true
			uc.changed = true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			if fv, ok := sel.Obj().(*types.Var); ok {
				uc.taintField(fv)
			}
		}
	}
}

func (uc *unsafeChecker) taintField(fv *types.Var) {
	if fv.Pkg() == nil || !uc.storePkgs[fv.Pkg()] || !pointerLike(fv.Type()) {
		return
	}
	if !uc.fields[fv] {
		uc.fields[fv] = true
		uc.changed = true
	}
}

func (uc *unsafeChecker) taintParam(f *types.Func, i int) {
	m := uc.paramSet(f)
	if !m[i] {
		m[i] = true
		uc.changed = true
	}
}

// hasMutexField reports whether t's underlying struct carries a sync.Mutex
// or sync.RWMutex field — the marker of a lifetime-guarded owner.
func hasMutexField(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if named, ok := ft.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
				(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
				return true
			}
		}
	}
	return false
}

// hasOwnerLockCall reports whether body calls Lock/RLock on a sync mutex.
func hasOwnerLockCall(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if f, ok := info.Uses[sel.Sel].(*types.Func); ok {
			switch f.FullName() {
			case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
				found = true
			}
		}
		return true
	})
	return found
}

// isGuardedConstructor reports whether body builds a mutex-bearing owner
// struct from scratch — taint handling before the owner is published needs
// no lock.
func isGuardedConstructor(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		if tv, ok := info.Types[lit]; ok && hasMutexField(tv.Type) {
			found = true
		}
		return true
	})
	return found
}

// report emits findings using the converged taint facts.
func (uc *unsafeChecker) report() {
	type deref struct {
		fi  *funcInfo
		pos token.Pos
	}
	var derefs []deref
	seenDeref := map[*types.Func]bool{}

	for _, fi := range uc.storeFns {
		if uc.owners[fi.obj] {
			continue
		}
		info := fi.pkg.TypesInfo
		// Exported-return check: walk the body without descending into
		// closures, so only the function's own returns are attributed.
		if fi.obj.Exported() {
			ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, r := range ret.Results {
					if pointerLike(info.Types[r].Type) && uc.tainted(fi, r) {
						uc.pass.Reportf(fi.pkg, r.Pos(), "exported %s returns an mmap-backed view; the region can be unmapped while the caller still holds it — copy, or document and lock", qualifiedName(fi.obj))
					}
				}
				return true
			})
		}
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				uc.reportAssign(fi, n)
			case *ast.CallExpr:
				uc.reportRetention(fi, n)
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					uc.reportGoroutineCapture(fi, lit)
				}
			case *ast.IndexExpr:
				if uc.tainted(fi, n.X) && !seenDeref[fi.obj] {
					seenDeref[fi.obj] = true
					derefs = append(derefs, deref{fi, n.Pos()})
				}
			case *ast.SliceExpr:
				if uc.tainted(fi, n.X) && !seenDeref[fi.obj] {
					seenDeref[fi.obj] = true
					derefs = append(derefs, deref{fi, n.Pos()})
				}
			}
			return true
		})
	}

	// Liveness: a dereferencing function is covered if it locks, is a
	// constructor of the guarded owner, owns the mapping, or is reachable
	// only from covered functions.
	covered := map[*types.Func]bool{}
	inStore := map[*types.Func]bool{}
	for _, fi := range uc.storeFns {
		inStore[fi.obj] = true
		if uc.owners[fi.obj] ||
			hasOwnerLockCall(fi.pkg.TypesInfo, fi.decl.Body) ||
			isGuardedConstructor(fi.pkg.TypesInfo, fi.decl.Body) {
			covered[fi.obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range uc.storeFns {
			if covered[fi.obj] {
				continue
			}
			callers := uc.g.callers[fi.obj]
			if len(callers) == 0 {
				continue
			}
			all := true
			for _, c := range callers {
				if !inStore[c] || !covered[c] {
					all = false
					break
				}
			}
			if all {
				covered[fi.obj] = true
				changed = true
			}
		}
	}
	for _, d := range derefs {
		if covered[d.fi.obj] {
			continue
		}
		uc.pass.Reportf(d.fi.pkg, d.pos, "%s dereferences an mmap-derived view without the owner's reader lock held on every path to it", qualifiedName(d.fi.obj))
	}
}

func (uc *unsafeChecker) reportAssign(fi *funcInfo, as *ast.AssignStmt) {
	info := fi.pkg.TypesInfo
	check := func(lhs, rhs ast.Expr) {
		if !uc.tainted(fi, rhs) {
			return
		}
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := info.ObjectOf(lhs)
			if v, ok := obj.(*types.Var); ok && !v.IsField() {
				if scope := v.Parent(); scope != nil && scope.Parent() == types.Universe {
					uc.pass.Reportf(fi.pkg, as.Pos(), "mmap-derived view stored in package-level %s outlives the region; findable long after Close", v.Name())
				}
			}
		case *ast.SelectorExpr:
			sel, ok := info.Selections[lhs]
			if !ok || sel.Kind() != types.FieldVal {
				return
			}
			// Scalar fields copy the value out; only reference-carrying
			// fields pin the mapping.
			if fv, ok := sel.Obj().(*types.Var); !ok || !pointerLike(fv.Type()) {
				return
			}
			if hasMutexField(sel.Recv()) {
				return
			}
			uc.pass.Reportf(fi.pkg, as.Pos(), "mmap-derived view stored into %s, whose struct has no mutex guarding the region's lifetime", types.ExprString(lhs))
		}
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		for _, lhs := range as.Lhs {
			check(lhs, as.Rhs[0])
		}
		return
	}
	for i, rhs := range as.Rhs {
		if i < len(as.Lhs) {
			check(as.Lhs[i], rhs)
		}
	}
}

func (uc *unsafeChecker) reportRetention(fi *funcInfo, call *ast.CallExpr) {
	info := fi.pkg.TypesInfo
	callee := calleeOf(info, call)
	if callee == nil || uc.g.byObj[callee] == nil {
		return
	}
	f := uc.facts[callee]
	if f == nil {
		return
	}
	for i, a := range call.Args {
		if !f.retainsParams[i] || !pointerLike(info.Types[a].Type) || !uc.tainted(fi, a) {
			continue
		}
		// Retention into a lifetime-guarded owner is the intended pattern.
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Results().Len() > 0 {
			if hasMutexField(sig.Results().At(0).Type()) {
				continue
			}
		}
		uc.pass.Reportf(fi.pkg, a.Pos(), "mmap-derived view retained by %s in a struct with no lifetime guard; it can outlive the mapping", qualifiedName(callee))
	}
}

func (uc *unsafeChecker) reportGoroutineCapture(fi *funcInfo, lit *ast.FuncLit) {
	info := fi.pkg.TypesInfo
	reported := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || !uc.localVars(fi.obj)[obj] {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true
		}
		reported = true
		uc.pass.Reportf(fi.pkg, lit.Pos(), "goroutine captures mmap-derived view %s; the region may be unmapped while the goroutine still runs", obj.Name())
		return false
	})
}
