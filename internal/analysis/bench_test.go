package analysis

import "testing"

// BenchmarkDrlintModule measures one full drlint pass over the module:
// parse every package, type-check it with the file-system importer, and
// run all seventeen analyzers — including the dataflow rules' call-graph
// construction, taint fixpoint, asm parsing, and the compiler-witness
// layer's `go build` shell-out (cached per process, so the first
// iteration pays it). This is the cost
// `go test ./...` and CI pay on every run, so scripts/bench.sh records it
// next to the numeric kernels; it must stay well under 5 s per pass.
func BenchmarkDrlintModule(b *testing.B) {
	root, err := moduleRoot()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := RunModule(root, All())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Diags) != 0 {
			b.Fatalf("module has findings: %v", res.Diags)
		}
	}
}
