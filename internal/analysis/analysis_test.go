package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"
)

// wantRe matches expectation annotations in fixtures: // want "regexp"
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)+)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// runFixture loads one testdata package, runs a single analyzer (with
// suppression filtering), and checks the diagnostics against the fixture's
// // want annotations: every want must fire and every diagnostic must be
// wanted.
func runFixture(t *testing.T, a *Analyzer, dir, pretendPath string) {
	t.Helper()
	root := filepath.Join("testdata", "src")
	pkg, err := LoadDir(root, filepath.Join(root, dir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s has no Go files", dir)
	}
	if pretendPath != "" {
		pkg.Path = pretendPath
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}

	diags := RunPackages([]*Package{pkg}, []*Analyzer{a})
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestDimGuardFixture(t *testing.T) {
	runFixture(t, DimGuard, "dimguard", "repro/internal/linalg")
}

func TestDimGuardSkipsOtherPackages(t *testing.T) {
	// The same fixture under a non-kernel import path must be silent.
	root := filepath.Join("testdata", "src")
	pkg, err := LoadDir(root, filepath.Join(root, "dimguard"))
	if err != nil || pkg == nil {
		t.Fatalf("loading fixture: %v", err)
	}
	pkg.Path = "repro/internal/experiments"
	if diags := RunPackages([]*Package{pkg}, []*Analyzer{DimGuard}); len(diags) != 0 {
		t.Fatalf("dimguard fired outside its packages: %v", diags)
	}
}

func TestGlobalRandFixture(t *testing.T) {
	runFixture(t, GlobalRand, "globalrand", "")
}

func TestFloatCmpFixture(t *testing.T) {
	runFixture(t, FloatCmp, "floatcmp", "")
}

func TestGoroutineHygieneFixture(t *testing.T) {
	runFixture(t, GoroutineHygiene, "goroutinehygiene", "")
}

func TestAtomicMixFixture(t *testing.T) {
	runFixture(t, AtomicMix, "atomicmix", "")
}

func TestLockHoldFixture(t *testing.T) {
	runFixture(t, LockHold, "lockhold", "repro/internal/serve")
}

func TestLockHoldSkipsOtherPackages(t *testing.T) {
	root := filepath.Join("testdata", "src")
	pkg, err := LoadDir(root, filepath.Join(root, "lockhold"))
	if err != nil || pkg == nil {
		t.Fatalf("loading fixture: %v", err)
	}
	pkg.Path = "repro/internal/knn"
	if diags := RunPackages([]*Package{pkg}, []*Analyzer{LockHold}); len(diags) != 0 {
		t.Fatalf("lockhold fired outside internal/serve: %v", diags)
	}
}

func TestCtxFlowFixture(t *testing.T) {
	runFixture(t, CtxFlow, "ctxflow", "repro/internal/serve")
}

func TestCtxFlowSkipsOtherPackages(t *testing.T) {
	root := filepath.Join("testdata", "src")
	pkg, err := LoadDir(root, filepath.Join(root, "ctxflow"))
	if err != nil || pkg == nil {
		t.Fatalf("loading fixture: %v", err)
	}
	pkg.Path = "repro/internal/linalg"
	if diags := RunPackages([]*Package{pkg}, []*Analyzer{CtxFlow}); len(diags) != 0 {
		t.Fatalf("ctxflow fired outside its packages: %v", diags)
	}
}

func TestErrWrapFixture(t *testing.T) {
	runFixture(t, ErrWrap, "errwrap", "")
}

func TestHotAllocFixture(t *testing.T) {
	runFixture(t, HotAlloc, "hotalloc", "repro/internal/hotfix")
}

func TestUnsafeLifeStoreFixture(t *testing.T) {
	// Under the store's own import path: taint, escape, and liveness checks.
	runFixture(t, UnsafeLife, "unsafelife", "repro/internal/store")
}

func TestUnsafeLifeConfinementFixture(t *testing.T) {
	// Under any other import path every unsafe use is flagged outright.
	runFixture(t, UnsafeLife, "unsafeleak", "repro/internal/leak")
}

func TestAsmABIFixture(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		t.Skip("asmabi is inert off amd64")
	}
	runFixture(t, AsmABI, "asmabi", "repro/internal/asmfix")
}

// requireWitnessToolchain skips tests that need a real witness build: the
// compiler-witness fixtures run `go build` against the nested fixture
// module under testdata/src, which requires a go tool whose diagnostic
// format the parser has been validated against.
func requireWitnessToolchain(t *testing.T) {
	t.Helper()
	out, err := exec.Command("go", "env", "GOVERSION").Output()
	if err != nil {
		t.Skipf("no go tool available: %v", err)
	}
	if v := strings.TrimSpace(string(out)); !witnessVersionSupported(v) {
		t.Skipf("witness parser not validated against %s; gates degrade to disabled", v)
	}
}

func TestEscapeGateFixture(t *testing.T) {
	requireWitnessToolchain(t)
	runFixture(t, EscapeGate, "escapegate", "")
}

func TestInlineGateFixture(t *testing.T) {
	requireWitnessToolchain(t)
	runFixture(t, InlineGate, "inlinegate", "")
}

func TestBceGateFixture(t *testing.T) {
	requireWitnessToolchain(t)
	// The fixture pretends to be the kernel package; bcegate is scoped to
	// internal/linalg and the store's scanBlock family.
	runFixture(t, BceGate, "bcegate", "repro/internal/linalg")
}

func TestBceGateSkipsOtherPackages(t *testing.T) {
	requireWitnessToolchain(t)
	root := filepath.Join("testdata", "src")
	pkg, err := LoadDir(root, filepath.Join(root, "bcegate"))
	if err != nil || pkg == nil {
		t.Fatalf("loading fixture: %v", err)
	}
	pkg.Path = "repro/internal/experiments"
	if diags := RunPackages([]*Package{pkg}, []*Analyzer{BceGate}); len(diags) != 0 {
		t.Fatalf("bcegate fired outside the kernel packages: %v", diags)
	}
}

func TestMapOrderFixture(t *testing.T) {
	runFixture(t, MapOrder, "maporder", "")
}

func TestMapOrderCollectorFixture(t *testing.T) {
	// The knn stand-in package carries the /internal/knn path suffix the
	// Collector.Offer sink matching keys on.
	runFixture(t, MapOrder, filepath.Join("internal", "knn"), "")
}

func TestSeedProvFixture(t *testing.T) {
	runFixture(t, SeedProv, "seedprov", "")
}

func TestSnapCaptureFixture(t *testing.T) {
	runFixture(t, SnapCapture, "snapcapture", "repro/internal/serve")
}

func TestSnapCaptureSkipsOtherPackages(t *testing.T) {
	root := filepath.Join("testdata", "src")
	pkg, err := LoadDir(root, filepath.Join(root, "snapcapture"))
	if err != nil || pkg == nil {
		t.Fatalf("loading fixture: %v", err)
	}
	pkg.Path = "repro/internal/store"
	if diags := RunPackages([]*Package{pkg}, []*Analyzer{SnapCapture}); len(diags) != 0 {
		t.Fatalf("snapcapture fired outside internal/serve: %v", diags)
	}
}

func TestSortDiagnosticsDedup(t *testing.T) {
	mk := func(file string, line, col int, rule, msg string) Diagnostic {
		return Diagnostic{
			Pos:     token.Position{Filename: file, Line: line, Column: col},
			Rule:    rule,
			Message: msg,
		}
	}
	dup := mk("b.go", 4, 2, "maporder", "dup finding")
	in := []Diagnostic{
		mk("b.go", 9, 1, "seedprov", "later"),
		dup,
		mk("a.go", 1, 1, "floatcmp", "first"),
		dup,
		mk("b.go", 4, 2, "maporder", "same position, different message"),
	}
	out := sortDiagnostics(in)
	if len(out) != 4 {
		t.Fatalf("want 4 diagnostics after dedup, got %d: %v", len(out), out)
	}
	for i := 1; i < len(out); i++ {
		a, b := out[i-1], out[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Fatalf("diagnostics out of order: %v before %v", a, b)
		}
	}
	seen := map[string]bool{}
	for _, d := range out {
		k := d.String()
		if seen[k] {
			t.Fatalf("duplicate survived dedup: %s", k)
		}
		seen[k] = true
	}
}

// parseSrc builds an in-memory single-file package for directive tests.
func parseSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &Package{Dir: ".", Path: "repro/fixture", Fset: fset, Files: []File{{AST: f, Name: "src.go"}}}
}

func TestMalformedDirectiveIsReported(t *testing.T) {
	pkg := parseSrc(t, `package p

//drlint:ignore floatcmp
var x = 1
`)
	diags := RunPackages([]*Package{pkg}, All())
	if len(diags) != 1 || diags[0].Rule != "drlint" || !strings.Contains(diags[0].Message, "malformed") {
		t.Fatalf("want one malformed-directive finding, got %v", diags)
	}
}

func TestDirectiveRequiresReason(t *testing.T) {
	pkg := parseSrc(t, `package p

//drlint:ignore
var x = 1
`)
	diags := RunPackages([]*Package{pkg}, All())
	if len(diags) != 1 || diags[0].Rule != "drlint" {
		t.Fatalf("want one malformed-directive finding, got %v", diags)
	}
}

func TestDirectiveSameLineSuppresses(t *testing.T) {
	pkg := parseSrc(t, `package p

func cmp(a, b float64) bool {
	return a == b //drlint:ignore floatcmp exactness intended here
}
`)
	if diags := RunPackages([]*Package{pkg}, []*Analyzer{FloatCmp}); len(diags) != 0 {
		t.Fatalf("same-line directive did not suppress: %v", diags)
	}
}

func TestDirectiveMultiRule(t *testing.T) {
	pkg := parseSrc(t, `package p

import "math/rand"

func draw(a, b float64) float64 {
	//drlint:ignore globalrand,floatcmp one directive may cover several rules
	if a != b && rand.Float64() > 0.5 {
		return a
	}
	return b
}
`)
	if diags := RunPackages([]*Package{pkg}, All()); len(diags) != 0 {
		t.Fatalf("multi-rule directive did not suppress: %v", diags)
	}
}

func TestDirectiveDoesNotLeakToOtherLines(t *testing.T) {
	pkg := parseSrc(t, `package p

func cmp(a, b float64) bool {
	//drlint:ignore floatcmp covers only the next line
	_ = a == b
	return a != b
}
`)
	diags := RunPackages([]*Package{pkg}, []*Analyzer{FloatCmp})
	if len(diags) != 1 {
		t.Fatalf("want exactly the uncovered comparison reported, got %v", diags)
	}
}

// loadTempPkg writes src as a one-file package in a temp dir and loads it
// with the type-checking loader, so type-aware rules see resolved objects.
func loadTempPkg(t *testing.T, src string) (string, *Package) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, dir)
	if err != nil || pkg == nil {
		t.Fatalf("loading temp package: %v", err)
	}
	return dir, pkg
}

const atomicMixViolation = `package p

import "sync/atomic"

type c struct{ n uint64 }

func bump(x *c) { atomic.AddUint64(&x.n, 1) }

func peek(x *c) uint64 {
	return x.n %s
}
`

func TestDirectiveSuppressesTypeAwareFinding(t *testing.T) {
	_, pkg := loadTempPkg(t, fmt.Sprintf(atomicMixViolation,
		"//drlint:ignore atomicmix monitor-only read, torn values acceptable"))
	res := RunPackagesResult([]*Package{pkg}, []*Analyzer{AtomicMix})
	if len(res.Diags) != 0 {
		t.Fatalf("directive did not suppress: %v", res.Diags)
	}
	if len(res.Suppressed) != 1 || res.Suppressed[0].Diag.Rule != "atomicmix" {
		t.Fatalf("suppression not recorded: %+v", res.Suppressed)
	}
}

func TestDirectiveWrongRuleDoesNotSuppress(t *testing.T) {
	_, pkg := loadTempPkg(t, fmt.Sprintf(atomicMixViolation,
		"//drlint:ignore floatcmp names the wrong rule"))
	res := RunPackagesResult([]*Package{pkg}, []*Analyzer{AtomicMix})
	if len(res.Diags) != 1 || res.Diags[0].Rule != "atomicmix" {
		t.Fatalf("want the atomicmix finding to survive a wrong-rule directive, got %v", res.Diags)
	}
	if len(res.Suppressed) != 0 {
		t.Fatalf("wrong-rule directive recorded a suppression: %+v", res.Suppressed)
	}
}

func TestBaselineAbsorbsSuppressedFindingAndFlagsDirective(t *testing.T) {
	dir, pkg := loadTempPkg(t, fmt.Sprintf(atomicMixViolation,
		"//drlint:ignore atomicmix monitor-only read, torn values acceptable"))
	res := RunPackagesResult([]*Package{pkg}, []*Analyzer{AtomicMix})
	if len(res.Suppressed) != 1 {
		t.Fatalf("want one suppressed finding, got %+v", res.Suppressed)
	}
	// The same finding is also in the baseline: the baseline wins and the
	// now-pointless directive is itself flagged.
	b := NewBaseline(dir, []Diagnostic{res.Suppressed[0].Diag})
	out := Gate(dir, res, b)
	if len(out) != 1 || out[0].Rule != "drlint" || !strings.Contains(out[0].Message, "redundant") {
		t.Fatalf("want exactly one redundant-directive finding, got %v", out)
	}
}

func TestByName(t *testing.T) {
	got, err := ByName([]string{"floatcmp", "dimguard"})
	if err != nil || len(got) != 2 || got[0] != FloatCmp || got[1] != DimGuard {
		t.Fatalf("ByName: got %v, %v", got, err)
	}
	if _, err := ByName([]string{"nope"}); err == nil {
		t.Fatal("ByName accepted an unknown rule")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "a/b.go", Line: 3, Column: 7},
		Rule:    "floatcmp",
		Message: "msg",
	}
	if got, want := d.String(), "a/b.go:3:7: [floatcmp] msg"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestAllAnalyzersHaveDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	families := map[string]bool{
		"syntactic":        true,
		"type-aware":       true,
		"dataflow":         true,
		"compiler-witness": true,
		"determinism":      true,
	}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" {
			t.Fatalf("analyzer %+v incomplete", a)
		}
		if (a.Run == nil) == (a.RunModule == nil) {
			t.Fatalf("analyzer %q must set exactly one of Run and RunModule", a.Name)
		}
		if !families[a.Family] {
			t.Fatalf("analyzer %q has unknown family %q", a.Name, a.Family)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) < 17 {
		t.Fatalf("want at least 17 analyzers, got %d", len(seen))
	}
}

func TestLoadSkipsTestdata(t *testing.T) {
	pkgs, err := Load(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if strings.Contains(p.Dir, "testdata") {
			t.Fatalf("Load descended into %s", p.Dir)
		}
	}
	if len(pkgs) == 0 {
		t.Fatal("Load found no packages")
	}
}

func ExampleDiagnostic() {
	d := Diagnostic{
		Pos:     token.Position{Filename: "internal/knn/knn.go", Line: 88, Column: 18},
		Rule:    "floatcmp",
		Message: "floating-point != comparison",
	}
	fmt.Println(d)
	// Output: internal/knn/knn.go:88:18: [floatcmp] floating-point != comparison
}
