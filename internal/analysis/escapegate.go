package analysis

import (
	"go/ast"
)

// EscapeGate proves hot paths allocation-free with the compiler's own
// escape analysis instead of syntactic pattern matching: any expression the
// optimizer reports as escaping to the heap inside a //drlint:hotpath
// closure is flagged, unless the shared exemption walk recognizes it as an
// amortized-to-zero idiom (pool-miss refill, cap-guarded growth, result
// materialization, panic path). hotalloc approximates allocation sites from
// the AST; escapegate is the ground truth check that the approximation did
// not miss one the compiler actually emits.
//
// Escape facts the compiler attributes to a call site (the inlined copy of
// a callee's allocation) are skipped here: the callee is in the closure and
// its own compile carries the same fact at the real source position, so
// every allocation is judged exactly once, in the function that wrote it.
//
// When the witness build is unavailable — unknown toolchain, unrecognized
// diagnostic format, sandbox without a go tool — the rule reports nothing
// and cmd/drlint surfaces the degradation via WitnessNotice.
var EscapeGate = &Analyzer{
	Name: "escapegate",
	Doc: "no compiler-witnessed heap escape may survive in a //drlint:hotpath " +
		"closure; pool refills, cap-guarded growth, and result materialization " +
		"are exempt as in hotalloc",
	Family:          "compiler-witness",
	NeedsAnnotation: true,
	NeedsTypes:      true,
	RunModule:       runEscapeGate,
}

func runEscapeGate(pass *ModulePass) {
	wc := newWitnessContext(pass)
	if wc == nil {
		return
	}
	for _, fi := range wc.graph.funcs {
		root, ok := wc.hot[fi.obj]
		if !ok || fi.decl.Body == nil {
			continue
		}
		checkEscapes(pass, wc, fi, root)
	}
}

func checkEscapes(pass *ModulePass, wc *witnessContext, fi *funcInfo, root string) {
	info := fi.pkg.TypesInfo
	fset := fi.pkg.Fset
	ex := newAllocExempt(info, fi.decl.Body)

	var stack []ast.Node
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		key := witnessKey(wc.root, fset.Position(n.Pos()))
		switch n := n.(type) {
		case *ast.CompositeLit, *ast.FuncLit, *ast.CallExpr, *ast.UnaryExpr:
			// Allocating expressions carry their escape fact at their own
			// position; facts keyed at a call's left parenthesis (inlined
			// callee copies) never coincide with a node position, so they
			// are skipped by construction.
			if what, ok := wc.report.escapes[key]; ok && !ex.exempted(stack) {
				pass.Reportf(fi.pkg, n.Pos(), "%s: %s escapes to heap (compiler escape analysis); hoist it, pool it, or justify with //drlint:ignore escapegate",
					hotWhere(fi, root), what)
			}
		case *ast.Ident:
			// "moved to heap: x" facts key at the variable's declaration;
			// match the name so an unrelated identifier sharing a position
			// line cannot alias the fact.
			if name, ok := wc.report.moved[key]; ok && name == n.Name && !ex.exempted(stack) {
				pass.Reportf(fi.pkg, n.Pos(), "%s: local %s is moved to the heap (compiler escape analysis); avoid capturing its address or justify with //drlint:ignore escapegate",
					hotWhere(fi, root), name)
			}
		}
		return true
	})
}
