package analysis

import (
	"go/ast"
	"go/token"
)

// GoroutineHygiene checks the fan-out shape used by the GEMM panels,
// knn.SearchSetParallel, and the LSH batch build: a `go` statement inside a
// loop spawns an unbounded number of goroutines, so the spawning function
// must provably wait for them — either a sync.WaitGroup with Add paired
// with Done/Wait, or a result-channel handshake (the goroutine sends, the
// function receives). A loop-spawned goroutine with neither is a leak: the
// function returns while workers still mutate shared buffers, which is
// exactly the data race the batch engine's deterministic reductions cannot
// tolerate.
var GoroutineHygiene = &Analyzer{
	Name:   "goroutinehygiene",
	Family: "syntactic",
	Doc:    "go statements inside loops must be joined via WaitGroup Add/Done-Wait or a result-channel handshake in the same function",
	Run:    runGoroutineHygiene,
}

func runGoroutineHygiene(pass *Pass) {
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGoroutines(pass, fn)
		}
	}
}

// checkGoroutines finds loop-nested go statements in fn (including those in
// nested function literals, attributed to the literal when the loop is
// inside it) and verifies the enclosing function joins its workers.
func checkGoroutines(pass *Pass, fn *ast.FuncDecl) {
	// Walk with an explicit stack of "function frames"; each frame tracks
	// loop depth so a `go` inside a FuncLit's loop is judged against the
	// FuncLit, not the outer function.
	type frame struct {
		body  *ast.BlockStmt
		loops int
	}
	var stack []*frame
	push := func(body *ast.BlockStmt) { stack = append(stack, &frame{body: body}) }
	push(fn.Body)

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		switch node := n.(type) {
		case *ast.FuncLit:
			push(node.Body)
			walk(node.Body)
			stack = stack[:len(stack)-1]
			return
		case *ast.ForStmt, *ast.RangeStmt:
			top := stack[len(stack)-1]
			top.loops++
			ast.Inspect(n, func(m ast.Node) bool {
				if m == n {
					return true
				}
				walkChild(m, &walk)
				return false
			})
			top.loops--
			return
		case *ast.GoStmt:
			top := stack[len(stack)-1]
			if top.loops > 0 && !joinsWorkers(top.body, node) {
				pass.Reportf(node.Pos(),
					"goroutine launched in a loop without a WaitGroup Add/Done-Wait pair or result-channel handshake in the enclosing function")
			}
			walk(node.Call)
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			walkChild(m, &walk)
			return false
		})
	}
	walk(fn.Body)
}

// walkChild dispatches one immediate child into walk without re-entering
// ast.Inspect's own recursion.
func walkChild(n ast.Node, walk *func(ast.Node)) {
	if n != nil {
		(*walk)(n)
	}
}

// joinsWorkers reports whether body contains evidence that loop-spawned
// goroutines are joined:
//
//   - WaitGroup pattern: an .Add(...) call plus a .Done() or .Wait() call
//     (Done usually lives inside the goroutine, Wait in the function), or
//   - result-channel pattern: the goroutine body sends on a channel and the
//     function performs a channel receive (or the mirror: the function
//     sends work and the goroutine ranges over the channel, which only
//     terminates via close + a join elsewhere — that shape still requires
//     the WaitGroup evidence, so it is not accepted alone).
func joinsWorkers(body *ast.BlockStmt, g *ast.GoStmt) bool {
	var hasAdd, hasDoneOrWait bool
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Add":
				hasAdd = true
			case "Done", "Wait":
				hasDoneOrWait = true
			}
		}
		return true
	})
	if hasAdd && hasDoneOrWait {
		return true
	}

	// Result-channel handshake: goroutine sends, enclosing function receives.
	goroutineSends := false
	ast.Inspect(g.Call, func(n ast.Node) bool {
		if _, ok := n.(*ast.SendStmt); ok {
			goroutineSends = true
			return false
		}
		return true
	})
	if !goroutineSends {
		return false
	}
	receives := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				receives = true
				return false
			}
		}
		return true
	})
	return receives
}
