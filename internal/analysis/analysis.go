// Package analysis is a project-specific static-analysis framework for the
// numeric, concurrency, and reproducibility invariants this codebase relies
// on but the Go compiler cannot check. It is stdlib-only (go/ast, go/parser,
// go/token) and ships four analyzers:
//
//   - dimguard: exported linalg/knn kernels taking two or more vector or
//     matrix arguments must validate dimensions before indexing.
//   - globalrand: randomness must flow through an injected seeded
//     *rand.Rand — no global math/rand state, no hardcoded literal seeds in
//     library code. This is the determinism contract: a root seed threaded
//     through Options/configs yields bit-identical outputs on every run.
//   - floatcmp: no ==/!= between floating-point expressions outside tests
//     (comparison against the exact literal 0 is allowed — that is the IEEE
//     degenerate-case guard, not an approximate-equality bug).
//   - goroutinehygiene: every `go` statement launched inside a loop must be
//     paired with a sync.WaitGroup Add/Done (or a result-channel handshake)
//     in the same function, the shape used by the GEMM panels and the
//     parallel searchers.
//
// Findings can be suppressed with a justified directive on the offending
// line or the line above it:
//
//	//drlint:ignore <rule>[,<rule>...] <reason>
//
// The reason is mandatory; a directive names exactly the rules it silences.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Diagnostic is one finding, positioned for file:line reporting.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// File is one parsed source file of a package.
type File struct {
	AST  *ast.File
	Name string // path as given to the parser
	Test bool   // *_test.go
}

// Package is a directory of parsed files sharing one *token.FileSet.
type Package struct {
	Dir   string // directory relative to the module root (".", "internal/knn", ...)
	Path  string // import path ("repro/internal/knn")
	Fset  *token.FileSet
	Files []File
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// SourceFiles returns the package's files, skipping tests when the analyzer
// does not apply to them.
func (p *Pass) SourceFiles() []File {
	if p.Analyzer.IncludeTests {
		return p.Pkg.Files
	}
	out := make([]File, 0, len(p.Pkg.Files))
	for _, f := range p.Pkg.Files {
		if !f.Test {
			out = append(out, f)
		}
	}
	return out
}

// Analyzer is one named rule.
type Analyzer struct {
	Name string
	Doc  string
	// IncludeTests runs the rule over *_test.go files too. All shipped
	// analyzers enforce production invariants and leave tests alone.
	IncludeTests bool
	Run          func(pass *Pass)
}

// All returns the analyzers this project enforces, in stable order.
func All() []*Analyzer {
	return []*Analyzer{DimGuard, GlobalRand, FloatCmp, GoroutineHygiene}
}

// ByName returns the subset of All whose names appear in names, erroring on
// unknown names.
func ByName(names []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown rule %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunPackages applies each analyzer to each package and returns the
// surviving diagnostics (suppressed findings removed), sorted by position.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &pkgDiags}
			a.Run(pass)
		}
		diags = append(diags, filterIgnored(pkg, pkgDiags)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}

// Run loads every package under root and applies the analyzers.
func Run(root string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(root)
	if err != nil {
		return nil, err
	}
	return RunPackages(pkgs, analyzers), nil
}
