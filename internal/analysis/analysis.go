// Package analysis is a project-specific static-analysis framework for the
// numeric, concurrency, and reproducibility invariants this codebase relies
// on but the Go compiler cannot check. It is stdlib-only (go/ast, go/parser,
// go/token, go/types): the loader parses every package of the module and
// type-checks it with a file-system importer over the module's own packages
// plus a source importer for the standard library, so analyzers see
// resolved objects, method sets, and underlying types instead of raw
// identifiers.
//
// Four syntactic rules enforce kernel and determinism contracts:
//
//   - dimguard: exported linalg/knn kernels taking ≥2 vector or matrix
//     arguments must validate dimensions before indexing.
//   - globalrand: randomness must flow through an injected seeded
//     *rand.Rand — no global math/rand state, no hardcoded literal seeds in
//     library code.
//   - floatcmp: no ==/!= between floating-point expressions outside tests
//     (comparison against the exact literal 0 is allowed).
//   - goroutinehygiene: every `go` statement launched inside a loop must be
//     paired with a sync.WaitGroup Add/Done (or a result-channel handshake)
//     in the same function.
//
// Four type-aware rules enforce the serving layer's concurrency and
// error-contract idioms:
//
//   - atomicmix: a struct field accessed through sync/atomic operations
//     anywhere in the package must never be read or written plainly
//     elsewhere.
//   - lockhold: no blocking operation (channel send/receive, selects
//     without a default, Wait, time.Sleep, or a call into a same-package
//     function that blocks) while a sync.Mutex/RWMutex is held in
//     internal/serve.
//   - ctxflow: exported context-accepting functions in internal/serve and
//     cmd/drtool must propagate their context to every context-accepting
//     call they make; context.Background()/TODO() is reserved for main and
//     tests.
//   - errwrap: the serving layer's typed sentinel errors must be compared
//     with errors.Is and wrapped with %w — never ==/!=, switch cases, or
//     string matching on Error() text.
//
// Three dataflow rules reason over a module-local call graph:
//
//   - hotalloc: no per-call heap allocation in functions reachable from a
//     //drlint:hotpath annotation, unless exempted (pool refills, result
//     materialization, cold error paths).
//   - unsafelife: mmap-derived views must stay confined to their mapping's
//     lifetime — no escaping to globals, returns past Close, or goroutines.
//   - asmabi: Go declarations for the amd64 assembly kernels must match the
//     contracts the .s files actually implement.
//
// Three compiler-witness rules join real `go build` diagnostics
// (-gcflags='-m=2 -d=ssa/check_bce/debug=1') against the hot-path closure,
// gating on what the compiler did rather than what the source suggests
// (see witness.go; the family degrades to disabled on toolchain skew):
//
//   - escapegate: no compiler-witnessed heap escape or moved-to-heap local
//     in a hot function.
//   - inlinegate: non-inlined calls in a hot function must fit the
//     function's declared budget (//drlint:hotpath inline=N).
//   - bcegate: no retained bounds check inside loops of asm-adjacent
//     kernels (internal/linalg, internal/store scan kernels).
//
// Three determinism rules guard reproducibility of reported results:
//
//   - maporder: map iteration order must not flow into slices that are
//     returned or sent, ordered sinks like knn.Collector.Offer, or JSON
//     encoding, without an intervening sort.
//   - seedprov: RNG seeds must come from configuration, flags, or fixed
//     literals — not time, PIDs, map order, or channel scheduling.
//   - snapcapture: an atomic snapshot pointer must be loaded once per
//     scope and reused, never re-loaded (a TOCTOU race window).
//
// Findings can be suppressed with a justified directive on the offending
// line or the line above it:
//
//	//drlint:ignore <rule>[,<rule>...] <reason>
//
// The reason is mandatory; a directive names exactly the rules it silences.
// Beyond directives, a baseline file (see Baseline) can absorb a known set
// of findings so only new ones gate CI.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding, positioned for file:line reporting.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// File is one parsed source file of a package.
type File struct {
	AST  *ast.File
	Name string // path as given to the parser
	Test bool   // *_test.go
}

// Package is a directory of parsed files sharing one *token.FileSet.
// After loading, the non-test files are type-checked: Types is the
// resulting package object, TypesInfo maps expressions and identifiers to
// their resolved types and objects, and TypeErrors collects go/types
// failures (empty on a compilable package). Test files are parsed but not
// type-checked; packages with only test files stay untyped (TypesInfo nil).
type Package struct {
	Dir   string // directory relative to the module root (".", "internal/knn", ...)
	Path  string // import path ("repro/internal/knn")
	Fset  *token.FileSet
	Files []File

	Types      *types.Package
	TypesInfo  *types.Info
	TypeErrors []error
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// ModulePass carries one module-scope analyzer's run over every loaded
// package at once. Rules that need a cross-package view — a call graph, or
// taint that flows through another package's constructor — run here instead
// of package by package. Findings are attributed to the package owning the
// file they point at, so //drlint:ignore directives filter them exactly
// like package-scope findings.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	diags    []Diagnostic
}

// Reportf records a finding at pos, resolved through pkg's FileSet.
func (p *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     pkg.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// SourceFiles returns pkg's files, skipping tests when the analyzer does
// not apply to them (mirrors Pass.SourceFiles).
func (p *ModulePass) SourceFiles(pkg *Package) []File {
	if p.Analyzer.IncludeTests {
		return pkg.Files
	}
	out := make([]File, 0, len(pkg.Files))
	for _, f := range pkg.Files {
		if !f.Test {
			out = append(out, f)
		}
	}
	return out
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// SourceFiles returns the package's files, skipping tests when the analyzer
// does not apply to them.
func (p *Pass) SourceFiles() []File {
	if p.Analyzer.IncludeTests {
		return p.Pkg.Files
	}
	out := make([]File, 0, len(p.Pkg.Files))
	for _, f := range p.Pkg.Files {
		if !f.Test {
			out = append(out, f)
		}
	}
	return out
}

// Analyzer is one named rule.
type Analyzer struct {
	Name string
	Doc  string
	// Family classifies how deep the rule looks: "syntactic" (pure AST),
	// "type-aware" (needs go/types objects), or "dataflow" (value/alias
	// tracking over the module call graph). Informational — drives the
	// cmd/drlint -list output.
	Family string
	// NeedsAnnotation marks rules that only fire on code opted in via a
	// source annotation (e.g. hotalloc's //drlint:hotpath roots).
	NeedsAnnotation bool
	// IncludeTests runs the rule over *_test.go files too. All shipped
	// analyzers enforce production invariants and leave tests alone.
	IncludeTests bool
	// NeedsTypes marks rules that require a successful type check; they
	// skip packages whose TypesInfo is unavailable.
	NeedsTypes bool
	// Exactly one of Run (package scope) and RunModule (module scope) is
	// set. Module-scope rules see every loaded package in one pass.
	Run       func(pass *Pass)
	RunModule func(pass *ModulePass)
}

// All returns the analyzers this project enforces, in stable order: the
// four syntactic rules from the first drlint, the four type-aware rules,
// the three dataflow rules, the three compiler-witness gates, and the
// three determinism rules.
func All() []*Analyzer {
	return []*Analyzer{
		DimGuard, GlobalRand, FloatCmp, GoroutineHygiene,
		AtomicMix, LockHold, CtxFlow, ErrWrap,
		HotAlloc, UnsafeLife, AsmABI,
		EscapeGate, InlineGate, BceGate,
		MapOrder, SeedProv, SnapCapture,
	}
}

// ByName returns the subset of All whose names appear in names, erroring on
// unknown names.
func ByName(names []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown rule %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Suppressed is a finding silenced by a //drlint:ignore directive, kept for
// baseline redundancy reporting.
type Suppressed struct {
	Diag         Diagnostic
	DirectivePos token.Position
}

// RunResult is the outcome of applying analyzers to a set of packages.
type RunResult struct {
	// Diags are the surviving findings (directive-suppressed ones removed,
	// type-check errors included under the rule name "typecheck"), sorted
	// by position.
	Diags []Diagnostic
	// Suppressed are the findings a directive silenced.
	Suppressed []Suppressed
}

// RunPackages applies each analyzer to each package and returns the
// surviving diagnostics (suppressed findings removed), sorted by position.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunPackagesResult(pkgs, analyzers).Diags
}

// RunPackagesResult is RunPackages keeping the suppressed findings too, so
// callers gating against a baseline can flag directives the baseline makes
// redundant.
func RunPackagesResult(pkgs []*Package, analyzers []*Analyzer) RunResult {
	perPkg := make([][]Diagnostic, len(pkgs))
	for i, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			if a.NeedsTypes && pkg.TypesInfo == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &perPkg[i]}
			timeRule(a.Name, func() { a.Run(pass) })
		}
		perPkg[i] = append(perPkg[i], typeErrorDiagnostics(pkg)...)
	}

	// Module-scope analyzers run once over the whole package set; their
	// findings are routed back to the package owning each file so directive
	// filtering applies uniformly.
	var res RunResult
	fileOwner := map[string]int{}
	for i, pkg := range pkgs {
		for _, f := range pkg.Files {
			fileOwner[pkg.Fset.Position(f.AST.Pos()).Filename] = i
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{Analyzer: a, Pkgs: pkgs}
		timeRule(a.Name, func() { a.RunModule(mp) })
		for _, d := range mp.diags {
			if i, ok := fileOwner[d.Pos.Filename]; ok {
				perPkg[i] = append(perPkg[i], d)
			} else {
				// Positions outside any loaded Go file (none today; a
				// belt-and-braces route for future rules) skip directive
				// filtering — there is no file to carry a directive.
				res.Diags = append(res.Diags, d)
			}
		}
	}

	for i, pkg := range pkgs {
		kept, sup := filterIgnored(pkg, perPkg[i])
		res.Diags = append(res.Diags, kept...)
		res.Suppressed = append(res.Suppressed, sup...)
	}
	res.Diags = sortDiagnostics(res.Diags)
	sortSuppressed(res.Suppressed)
	return res
}

// sortDiagnostics orders findings by (file, line, column, rule, message) and
// collapses exact duplicates. A file compiled into more than one package unit
// (e.g. a non-test file seen by both the package and its external test
// harness) would otherwise surface module-scope findings twice, and output
// order would depend on package iteration order.
func sortDiagnostics(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 {
			p := diags[i-1]
			if p.Pos == d.Pos && p.Rule == d.Rule && p.Message == d.Message {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// sortSuppressed mirrors sortDiagnostics for the suppressed list, so
// -write-baseline and redundancy reports are position-ordered too.
func sortSuppressed(sup []Suppressed) {
	sort.Slice(sup, func(i, j int) bool {
		a, b := sup[i].Diag, sup[j].Diag
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// Run loads every package under root and applies the analyzers.
func Run(root string, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := RunModule(root, analyzers)
	if err != nil {
		return nil, err
	}
	return res.Diags, nil
}

// RunModule loads every package under root and applies the analyzers,
// keeping suppressed findings for baseline gating.
func RunModule(root string, analyzers []*Analyzer) (RunResult, error) {
	pkgs, err := Load(root)
	if err != nil {
		return RunResult{}, err
	}
	return RunPackagesResult(pkgs, analyzers), nil
}
